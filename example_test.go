package asyncg_test

import (
	"fmt"
	"time"

	"asyncg"
)

// ExampleSession_Run shows the §III ordering surprise: callbacks run by
// queue priority, not registration order.
func ExampleSession_Run() {
	session := asyncg.New()
	_, _ = session.Run(func(ctx *asyncg.Context) {
		ctx.Then(ctx.Resolve("p"), asyncg.F("reaction", func(args []asyncg.Value) asyncg.Value {
			fmt.Println("2: promise reaction")
			return asyncg.Undefined
		}), nil)
		ctx.SetTimeout(asyncg.F("timer", func(args []asyncg.Value) asyncg.Value {
			fmt.Println("3: timer")
			return asyncg.Undefined
		}), 0)
		ctx.NextTick(asyncg.F("tick", func(args []asyncg.Value) asyncg.Value {
			fmt.Println("1: nextTick")
			return asyncg.Undefined
		}))
	})
	// Output:
	// 1: nextTick
	// 2: promise reaction
	// 3: timer
}

// ExampleReport_HasWarning shows automatic bug detection: a dead emit is
// flagged because the event fires before any listener exists.
func ExampleReport_HasWarning() {
	session := asyncg.New()
	report, _ := session.Run(func(ctx *asyncg.Context) {
		e := ctx.NewEmitter("bus")
		ctx.Emit(e, "ready") // nobody is listening yet
		ctx.On(e, "ready", asyncg.F("late", func(args []asyncg.Value) asyncg.Value {
			return asyncg.Undefined
		}))
	})
	fmt.Println("dead emit:", report.HasWarning("dead-emit"))
	fmt.Println("dead listener:", report.HasWarning("dead-listener"))
	// Output:
	// dead emit: true
	// dead listener: true
}

// ExampleContext_Async shows async/await over the virtual clock: a
// one-hour timeout completes instantly in wall time.
func ExampleContext_Async() {
	session := asyncg.New()
	_, _ = session.Run(func(ctx *asyncg.Context) {
		slow := ctx.NewPromise(nil)
		ctx.SetTimeout(asyncg.F("resolver", func(args []asyncg.Value) asyncg.Value {
			slow.Resolve(lochere(), "done after an hour")
			return asyncg.Undefined
		}), time.Hour)
		done := ctx.Async("waiter", func(aw *asyncg.Awaiter) asyncg.Value {
			v := ctx.Await(aw, slow)
			fmt.Printf("%v at virtual t=%v\n", v, ctx.Now())
			return asyncg.Undefined
		})
		ctx.Catch(done, asyncg.F("err", func(args []asyncg.Value) asyncg.Value {
			return asyncg.Undefined
		}))
	})
	// Output:
	// done after an hour at virtual t=1h0m0s
}

// ExampleGraph_ticks shows how the Async Graph groups executions into
// event-loop ticks.
func Example_graphTicks() {
	session := asyncg.New()
	report, _ := session.Run(func(ctx *asyncg.Context) {
		ctx.NextTick(asyncg.F("a", func(args []asyncg.Value) asyncg.Value {
			return asyncg.Undefined
		}))
		ctx.SetImmediate(asyncg.F("b", func(args []asyncg.Value) asyncg.Value {
			return asyncg.Undefined
		}))
	})
	for _, tick := range report.Graph.Ticks {
		fmt.Println(tick.Name())
	}
	// Output:
	// t1:main
	// t2:nextTick
	// t3:immediate
}
