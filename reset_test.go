package asyncg_test

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"asyncg"
	"asyncg/internal/loc"
	"asyncg/internal/mongosim"
	"asyncg/internal/trace"
)

// workload exercises every substrate that participates in Session.Reset:
// timers, microtasks, promises, async/await, emitters, HTTP over the
// simulated network, the database, and the file system.
func resetWorkload(ctx *asyncg.Context) {
	// Timers + microtasks.
	ctx.SetTimeout(asyncg.F("later", func([]asyncg.Value) asyncg.Value {
		ctx.NextTick(asyncg.F("tick", func([]asyncg.Value) asyncg.Value {
			return asyncg.Undefined
		}))
		return asyncg.Undefined
	}), 3*time.Millisecond)

	// Promises + async/await.
	p := ctx.Resolve("seed")
	ctx.Async("worker", func(aw *asyncg.Awaiter) asyncg.Value {
		return ctx.Await(aw, p)
	})

	// Emitters.
	em := ctx.NewEmitter("bus")
	ctx.On(em, "ping", asyncg.F("onPing", func([]asyncg.Value) asyncg.Value {
		return asyncg.Undefined
	}))
	ctx.SetImmediate(asyncg.F("fire", func([]asyncg.Value) asyncg.Value {
		ctx.Emit(em, "ping", 1)
		return asyncg.Undefined
	}))

	// HTTP server + client over the simulated network.
	srv := ctx.CreateServer(asyncg.F("handler", func(args []asyncg.Value) asyncg.Value {
		res := args[1].(*asyncg.ServerResponse)
		res.EndString(loc.Here(), "pong")
		return asyncg.Undefined
	}))
	if err := ctx.ListenHTTP(srv, 8080); err != nil {
		panic(err)
	}
	ctx.HTTPGet(8080, "/ping", asyncg.F("onResponse", func([]asyncg.Value) asyncg.Value {
		return asyncg.Undefined
	}))

	// Database.
	users := ctx.DB().C("users")
	users.Insert(loc.Here(), mongosim.Document{"name": "ada"}, asyncg.F("inserted", func([]asyncg.Value) asyncg.Value {
		users.FindOne(loc.Here(), "name=ada",
			asyncg.F("found", func([]asyncg.Value) asyncg.Value { return asyncg.Undefined }))
		return asyncg.Undefined
	}))

	// File system.
	fs := ctx.FS()
	fs.WriteFile(loc.Here(), "/tmp/x", []byte("data"), asyncg.F("wrote", func([]asyncg.Value) asyncg.Value {
		fs.ReadFile(loc.Here(), "/tmp/x", asyncg.F("read", func([]asyncg.Value) asyncg.Value {
			return asyncg.Undefined
		}))
		return asyncg.Undefined
	}))
}

// renderReport serializes everything observable about a report so runs
// can be compared byte for byte.
func renderReport(r *asyncg.Report) string {
	var b strings.Builder
	fmt.Fprintf(&b, "ticks=%d\n", r.Ticks)
	fmt.Fprintf(&b, "fingerprint=%s\n", r.Graph.Fingerprint())
	b.WriteString(r.Graph.DOT("run"))
	for _, w := range r.Warnings {
		b.WriteString(w.String())
		b.WriteByte('\n')
	}
	for _, a := range r.Anomalies {
		b.WriteString(a)
		b.WriteByte('\n')
	}
	for _, u := range r.Uncaught {
		fmt.Fprintf(&b, "uncaught=%v\n", u)
	}
	return b.String()
}

// TestSessionResetByteIdentical is the core Reset contract: a reset
// session re-running the same deterministic program must produce a
// report byte-identical to both its own first run and a fresh session's.
func TestSessionResetByteIdentical(t *testing.T) {
	fresh, err := asyncg.New().Run(resetWorkload)
	if err != nil {
		t.Fatal(err)
	}
	want := renderReport(fresh)

	session := asyncg.New()
	for i := 0; i < 3; i++ {
		report, err := session.Run(resetWorkload)
		if err != nil {
			t.Fatalf("reused run %d: %v", i, err)
		}
		if got := renderReport(report); got != want {
			t.Fatalf("reused run %d diverged from fresh run:\n--- fresh ---\n%s\n--- reused ---\n%s", i, want, got)
		}
		session.Reset()
	}
}

// TestSessionResetWithMetricsAndTrace checks the probe consumers rewind
// too: snapshots and retained trace events match across Reset.
func TestSessionResetWithMetricsAndTrace(t *testing.T) {
	session := asyncg.New(asyncg.WithMetrics(), asyncg.WithTraceConfig(trace.ExporterConfig{}))
	first, err := session.Run(resetWorkload)
	if err != nil {
		t.Fatal(err)
	}
	firstMetrics := fmt.Sprintf("%+v", *first.Metrics)
	firstEvents := len(session.Exporter().Events())

	session.Reset()
	if got := len(session.Exporter().Events()); got != 0 {
		t.Fatalf("exporter retained %d events across Reset", got)
	}
	second, err := session.Run(resetWorkload)
	if err != nil {
		t.Fatal(err)
	}
	if got := fmt.Sprintf("%+v", *second.Metrics); got != firstMetrics {
		t.Fatalf("metrics diverged after Reset:\nfirst:  %s\nsecond: %s", firstMetrics, got)
	}
	if got := len(session.Exporter().Events()); got != firstEvents {
		t.Fatalf("trace event count diverged: %d vs %d", got, firstEvents)
	}
}

// TestSessionResetSteadyStateAllocs pins the point of the redesign:
// once warm, a Reset+Run cycle must allocate an order of magnitude less
// than a fresh session per run.
func TestSessionResetSteadyStateAllocs(t *testing.T) {
	session := asyncg.New()
	// Warm the pools.
	for i := 0; i < 3; i++ {
		if _, err := session.Run(resetWorkload); err != nil {
			t.Fatal(err)
		}
		session.Reset()
	}
	avg := testing.AllocsPerRun(10, func() {
		if _, err := session.Run(resetWorkload); err != nil {
			t.Fatal(err)
		}
		session.Reset()
	})
	// A fresh session costs thousands of allocations for this workload;
	// the warm path must stay well under that. The bound is deliberately
	// loose to absorb map-rehash noise, and tightened further by the
	// explore benchmarks.
	if avg > 600 {
		t.Fatalf("steady-state Reset+Run costs %.0f allocs/run, want <= 600", avg)
	}
}
