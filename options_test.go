package asyncg_test

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"asyncg"
	"asyncg/internal/eventloop"
	"asyncg/internal/trace"
)

// countdown schedules a small deterministic program.
func countdown(ctx *asyncg.Context) {
	ctx.SetTimeout(asyncg.F("tock", func(args []asyncg.Value) asyncg.Value {
		return asyncg.Undefined
	}), 2*time.Millisecond)
	ctx.NextTick(asyncg.F("tick", func(args []asyncg.Value) asyncg.Value {
		ctx.Work(time.Millisecond)
		return asyncg.Undefined
	}))
}

func TestWithLoopConfiguresTickLimit(t *testing.T) {
	report, err := asyncg.New(asyncg.WithLoop(eventloop.Options{TickLimit: 50})).Run(countdown)
	if err != nil {
		t.Fatal(err)
	}
	if report.Graph == nil {
		t.Fatal("session lost the graph")
	}
	if report.Ticks == 0 {
		t.Fatal("no ticks ran")
	}
}

func TestWithTraceStreamsNDJSON(t *testing.T) {
	var buf bytes.Buffer
	report, err := asyncg.New(asyncg.WithTrace(&buf, asyncg.TraceNDJSON)).Run(countdown)
	if err != nil {
		t.Fatal(err)
	}
	if report.Graph == nil {
		t.Fatal("tracing must not disable the tool")
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) < 5 {
		t.Fatalf("trace has only %d lines:\n%s", len(lines), buf.String())
	}
	var last trace.Event
	if err := json.Unmarshal([]byte(lines[len(lines)-1]), &last); err != nil {
		t.Fatal(err)
	}
	if last.Kind != trace.KindSummary || last.Events != len(lines)-1 {
		t.Fatalf("bad summary line: %+v over %d lines", last, len(lines))
	}
}

func TestWithTraceChromeValidates(t *testing.T) {
	var buf bytes.Buffer
	if _, err := asyncg.New(asyncg.WithTrace(&buf, asyncg.TraceChrome)).Run(countdown); err != nil {
		t.Fatal(err)
	}
	var arr []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &arr); err != nil {
		t.Fatalf("chrome trace does not parse: %v", err)
	}
	for i, ev := range arr {
		for _, field := range []string{"name", "ph", "ts", "pid", "tid"} {
			if _, ok := ev[field]; !ok {
				t.Fatalf("chrome event %d lacks %q: %v", i, field, ev)
			}
		}
	}
}

func TestWithMetricsPopulatesReport(t *testing.T) {
	report, err := asyncg.New(asyncg.WithMetrics()).Run(countdown)
	if err != nil {
		t.Fatal(err)
	}
	m := report.Metrics
	if m == nil {
		t.Fatal("Report.Metrics is nil despite WithMetrics")
	}
	if m.PerAPI["setTimeout"].Count != 1 || m.PerAPI["process.nextTick"].Count != 1 {
		t.Fatalf("per-API counts: %v", m.APIExecutions())
	}
	if m.Ticks != int64(report.Ticks) {
		t.Fatalf("metrics saw %d ticks, loop ran %d", m.Ticks, report.Ticks)
	}
	if m.TimerLag.Count != 1 {
		t.Fatalf("timer lag count = %d", m.TimerLag.Count)
	}
}

func TestWithoutMetricsReportHasNone(t *testing.T) {
	report, err := asyncg.New().Run(countdown)
	if err != nil {
		t.Fatal(err)
	}
	if report.Metrics != nil {
		t.Fatal("Report.Metrics set without WithMetrics")
	}
}

func TestDisabledKeepsTraceAttached(t *testing.T) {
	var buf bytes.Buffer
	session := asyncg.New(asyncg.Disabled(), asyncg.WithTrace(&buf, asyncg.TraceNDJSON), asyncg.WithMetrics())
	report, err := session.Run(countdown)
	if err != nil {
		t.Fatal(err)
	}
	if report.Graph != nil {
		t.Fatal("Disabled still built a graph")
	}
	if buf.Len() == 0 {
		t.Fatal("Disabled suppressed the trace")
	}
	if report.Metrics == nil || report.Metrics.Ticks == 0 {
		t.Fatal("Disabled suppressed metrics")
	}
}

func TestWithTraceConfigBoundsRing(t *testing.T) {
	session := asyncg.New(asyncg.WithTraceConfig(trace.ExporterConfig{Capacity: 4}))
	if _, err := session.Run(countdown); err != nil {
		t.Fatal(err)
	}
	exp := session.Exporter()
	if exp == nil {
		t.Fatal("WithTraceConfig did not create an exporter")
	}
	if got := len(exp.Events()); got != 4 {
		t.Fatalf("ring holds %d events, want 4", got)
	}
	if exp.Dropped() == 0 {
		t.Fatal("tiny ring recorded no drops")
	}
}
