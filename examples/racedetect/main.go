// Racedetect: the paper's §IX ongoing-research extension — detecting
// race conditions caused by non-deterministic event ordering — run on a
// small program where two network replies update the same shared state.
// The Async Graph shows the two callbacks are causally unordered, so
// which write "wins" depends on timing.
//
//	go run ./examples/racedetect
package main

import (
	"fmt"

	"asyncg"
	"asyncg/internal/detect"
	"asyncg/internal/loc"
	"asyncg/internal/mongosim"
)

func main() {
	session := asyncg.New()
	report, err := session.Run(func(ctx *asyncg.Context) {
		// A "latest result" cache written by two concurrent lookups.
		latest := ctx.NewCell("latestPrice", asyncg.Undefined)

		prices := ctx.DB().C("prices")
		prices.InsertSync(mongosim.Document{"sym": "GOOG", "price": 101})
		prices.InsertSync(mongosim.Document{"sym": "AAPL", "price": 202})

		lookup := func(sym string) {
			prices.FindOne(loc.Here(), `sym == "`+sym+`"`,
				asyncg.F("store-"+sym, func(args []asyncg.Value) asyncg.Value {
					doc := args[1].(mongosim.Document)
					// RACE: both callbacks write the same cell; the
					// surviving value depends on I/O completion order.
					ctx.CellSet(latest, doc["price"])
					return asyncg.Undefined
				}))
		}
		lookup("GOOG")
		lookup("AAPL")
	})
	if err != nil {
		fmt.Println("run error:", err)
		return
	}

	fmt.Println("warnings:")
	for _, w := range report.Warnings {
		fmt.Println("  ⚡", w)
	}
	if !report.HasWarning(detect.CatRace) {
		fmt.Println("  (no race found — unexpected)")
	}

	fmt.Println("\nThe fixed pattern chains the lookups, so the graph orders the writes:")
	fixedReport, err := asyncg.New().Run(func(ctx *asyncg.Context) {
		latest := ctx.NewCell("latestPrice", asyncg.Undefined)
		prices := ctx.DB().C("prices")
		prices.InsertSync(mongosim.Document{"sym": "GOOG", "price": 101})
		prices.InsertSync(mongosim.Document{"sym": "AAPL", "price": 202})
		prices.FindOne(loc.Here(), `sym == "GOOG"`,
			asyncg.F("first", func(args []asyncg.Value) asyncg.Value {
				ctx.CellSet(latest, args[1].(mongosim.Document)["price"])
				prices.FindOne(loc.Here(), `sym == "AAPL"`,
					asyncg.F("second", func(args []asyncg.Value) asyncg.Value {
						ctx.CellSet(latest, args[1].(mongosim.Document)["price"])
						return asyncg.Undefined
					}))
				return asyncg.Undefined
			}))
	})
	if err != nil {
		fmt.Println("run error:", err)
		return
	}
	if fixedReport.HasWarning(detect.CatRace) {
		fmt.Println("  still racy — unexpected")
	} else {
		fmt.Println("  no race warnings ✓")
	}
}
