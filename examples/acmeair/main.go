// Acmeair: boot the reproduced AcmeAir flight-booking service on the
// simulated runtime, drive it with the JMeter-substitute workload, and
// print the throughput and per-operation statistics plus the async-API
// usage profile — a miniature of the paper's §VII-B evaluation setup.
//
//	go run ./examples/acmeair
package main

import (
	"fmt"
	"sort"
	"time"

	"asyncg/internal/acmeair"
	"asyncg/internal/eventloop"
	"asyncg/internal/instrument"
	"asyncg/internal/loc"
	"asyncg/internal/mongosim"
	"asyncg/internal/netio"
	"asyncg/internal/vm"
	"asyncg/internal/workload"
)

func main() {
	const requests = 1000
	loop := eventloop.New(eventloop.Options{TickLimit: 50_000_000})
	counter := instrument.NewCounter()
	loop.Probes().Attach(counter)

	net := netio.New(loop, netio.Options{})
	db := mongosim.New(loop, mongosim.Options{})
	acmeair.LoadSampleData(db, acmeair.DefaultDataSpec())
	app := acmeair.New(loop, net, db, acmeair.Config{UsePromises: true})
	driver := workload.NewDriver(net, workload.Options{
		Port:     app.Port(),
		Clients:  16,
		Requests: requests,
		Seed:     1,
	})

	main := vm.NewFunc("main", func([]vm.Value) vm.Value {
		if err := app.Listen(loc.Here()); err != nil {
			panic(err)
		}
		driver.Start()
		return vm.Undefined
	})
	start := time.Now()
	if err := loop.Run(main); err != nil {
		fmt.Println("run error:", err)
		return
	}
	elapsed := time.Since(start)

	stats := driver.Stats()
	fmt.Printf("AcmeAir served %d requests (%d failed) in %v wall / %v virtual\n",
		stats.Completed, stats.Failed, elapsed.Round(time.Millisecond), loop.Now().Round(time.Millisecond))
	fmt.Printf("throughput: %.0f requests/second (wall clock)\n\n",
		float64(stats.Completed)/elapsed.Seconds())

	fmt.Println("operation mix:")
	ops := make([]string, 0, len(stats.ByOp))
	for op := range stats.ByOp {
		ops = append(ops, op)
	}
	sort.Strings(ops)
	for _, op := range ops {
		fmt.Printf("  %-16s %5d\n", op, stats.ByOp[op])
	}

	n := float64(stats.Completed)
	fmt.Printf("\nasync-API executions per request (Fig. 6(b) measurement):\n")
	fmt.Printf("  nextTick %.2f   emitter %.2f   promise %.2f\n",
		float64(counter.NextTick)/n, float64(counter.Emitter)/n, float64(counter.Promise)/n)

	fmt.Println("\nbusiest callback-dispatching APIs:")
	type kv struct {
		api string
		n   int64
	}
	var top []kv
	for api, count := range counter.ByAPI {
		top = append(top, kv{api, count})
	}
	sort.Slice(top, func(i, j int) bool { return top[i].n > top[j].n })
	for i, e := range top {
		if i == 8 {
			break
		}
		fmt.Printf("  %-28s %7d\n", e.api, e.n)
	}
}
