// Chat: a broadcast chat server over raw simulated sockets — the
// net-module style of event-driven Node programming (connection, data,
// end, close events), exercising the I/O poll and close-handler phases.
// Three clients connect, exchange messages, and disconnect; the Async
// Graph timeline of the whole session is printed at the end.
//
//	go run ./examples/chat
package main

import (
	"fmt"
	"os"
	"strings"

	"asyncg"
	"asyncg/internal/loc"
	"asyncg/internal/netio"
)

func main() {
	session := asyncg.New()
	transcript := []string{}
	report, err := session.Run(func(ctx *asyncg.Context) {
		net := ctx.Net()

		// --- Server ---
		var clients []*netio.Socket
		broadcast := func(from *netio.Socket, msg string) {
			for _, c := range clients {
				if c != from && c.Connected() {
					c.WriteString(loc.Here(), msg)
				}
			}
		}
		srv, err := net.Listen(loc.Here(), 7000)
		if err != nil {
			panic(err)
		}
		srv.On(loc.Here(), netio.EventConnection, asyncg.F("acceptClient",
			func(args []asyncg.Value) asyncg.Value {
				sock := args[0].(*netio.Socket)
				clients = append(clients, sock)
				sock.On(loc.Here(), netio.EventData, asyncg.F("relay",
					func(args []asyncg.Value) asyncg.Value {
						broadcast(sock, string(args[0].([]byte)))
						return asyncg.Undefined
					}))
				sock.On(loc.Here(), netio.EventClose, asyncg.F("dropClient",
					func(args []asyncg.Value) asyncg.Value {
						for i, c := range clients {
							if c == sock {
								clients = append(clients[:i], clients[i+1:]...)
								break
							}
						}
						broadcast(nil, "* someone left *")
						return asyncg.Undefined
					}))
				return asyncg.Undefined
			}))

		// --- Clients ---
		say := func(name string, sock *netio.Socket, text string) {
			sock.WriteString(loc.Here(), name+": "+text)
		}
		join := func(name string) *netio.Socket {
			sock := net.Connect(loc.Here(), 7000)
			sock.On(loc.Here(), netio.EventData, asyncg.F(name+".recv",
				func(args []asyncg.Value) asyncg.Value {
					transcript = append(transcript, fmt.Sprintf("%-6s got: %s", name, args[0].([]byte)))
					return asyncg.Undefined
				}))
			return sock
		}
		alice := join("alice")
		bob := join("bob")
		carol := join("carol")

		alice.On(loc.Here(), netio.EventConnect, asyncg.F("aliceTalks",
			func(args []asyncg.Value) asyncg.Value {
				say("alice", alice, "hello everyone")
				return asyncg.Undefined
			}))
		bob.On(loc.Here(), netio.EventConnect, asyncg.F("bobTalks",
			func(args []asyncg.Value) asyncg.Value {
				say("bob", bob, "hi alice")
				// Bob leaves after speaking.
				ctx.SetTimeout(asyncg.F("bobLeaves", func(args []asyncg.Value) asyncg.Value {
					bob.End(loc.Here(), nil)
					return asyncg.Undefined
				}), 5_000_000) // 5ms of virtual time
				return asyncg.Undefined
			}))
		carol.On(loc.Here(), netio.EventConnect, asyncg.F("carolTalks",
			func(args []asyncg.Value) asyncg.Value {
				say("carol", carol, "good morning")
				return asyncg.Undefined
			}))

		// Shut the room down once the conversation settles.
		ctx.SetTimeout(asyncg.F("closeRoom", func(args []asyncg.Value) asyncg.Value {
			alice.End(loc.Here(), nil)
			carol.End(loc.Here(), nil)
			srv.Close(loc.Here())
			return asyncg.Undefined
		}), 20_000_000) // 20ms of virtual time
	})
	if err != nil {
		fmt.Println("run error:", err)
		return
	}

	fmt.Println("chat transcript:")
	for _, line := range transcript {
		fmt.Println(" ", line)
	}
	stats := report.Graph.ComputeStats()
	fmt.Printf("\nsession summary: %d ticks (%v), %d registrations, %d executions\n",
		stats.Ticks, phaseSummary(stats.ByPhase), stats.Registrations, stats.Executions)
	fmt.Println("\ntimeline (first 25 lines):")
	var sb strings.Builder
	if err := report.Graph.WriteTimeline(&sb); err != nil {
		fmt.Fprintln(os.Stderr, err)
		return
	}
	lines := strings.Split(sb.String(), "\n")
	if len(lines) > 25 {
		lines = lines[:25]
	}
	fmt.Println(strings.Join(lines, "\n"))
}

func phaseSummary(byPhase map[string]int) string {
	var parts []string
	for _, phase := range []string{"main", "nextTick", "promise", "timer", "io", "immediate", "close"} {
		if byPhase[phase] > 0 {
			parts = append(parts, fmt.Sprintf("%s×%d", phase, byPhase[phase]))
		}
	}
	return strings.Join(parts, " ")
}
