// Bugdetect: run the paper's Fig. 4 example (a buggy combination of
// promises and emitters) and its fixed version under AsyncG, showing how
// the detector findings disappear after the fix — the paper's Fig. 5(a)
// vs Fig. 5(b). Every warning is printed with its async causal chain
// (the "async stack trace" walked backwards over the graph's CE/CT/CR
// edges); docs/DEBUGGING.md reads this output hop by hop.
//
//	go run ./examples/bugdetect
package main

import (
	"fmt"
	"os"

	"asyncg"
	"asyncg/internal/loc"
	"asyncg/internal/provenance"
)

// buggy is the Fig. 4 listing: the promise reaction registers the 'foo'
// listener one tick after the event was emitted, and the then-chain has
// no exception handler.
func buggy(ctx *asyncg.Context) {
	ee := ctx.NewEmitter("ee")
	p := ctx.NewPromise(asyncg.F("executor", func(args []asyncg.Value) asyncg.Value {
		args[0].(*asyncg.Promise).Resolve(loc.Here(), 0)
		return asyncg.Undefined
	}))
	ctx.Then(p, asyncg.F("reaction", func(args []asyncg.Value) asyncg.Value {
		ctx.On(ee, "foo", asyncg.F("listener", func(args []asyncg.Value) asyncg.Value {
			fmt.Println("  (listener ran)")
			return asyncg.Undefined
		}))
		return asyncg.Undefined
	}), nil) // missing exception handler
	ctx.Emit(ee, "foo") // dead emit
}

// fixed applies both Fig. 4 fixes: .catch at the chain end and the emit
// deferred past the promise micro-task with setImmediate.
func fixed(ctx *asyncg.Context) {
	ee := ctx.NewEmitter("ee")
	p := ctx.NewPromise(asyncg.F("executor", func(args []asyncg.Value) asyncg.Value {
		args[0].(*asyncg.Promise).Resolve(loc.Here(), 0)
		return asyncg.Undefined
	}))
	r := ctx.Then(p, asyncg.F("reaction", func(args []asyncg.Value) asyncg.Value {
		ctx.On(ee, "foo", asyncg.F("listener", func(args []asyncg.Value) asyncg.Value {
			fmt.Println("  (listener ran)")
			return asyncg.Undefined
		}))
		return asyncg.Undefined
	}), nil)
	ctx.Catch(r, asyncg.F("handler", func(args []asyncg.Value) asyncg.Value {
		return asyncg.Undefined
	}))
	ctx.SetImmediate(asyncg.F("deferEmit", func(args []asyncg.Value) asyncg.Value {
		ctx.Emit(ee, "foo")
		return asyncg.Undefined
	}))
}

func run(name string, program func(*asyncg.Context)) {
	fmt.Printf("--- %s ---\n", name)
	report, err := asyncg.New().Run(program)
	if err != nil {
		fmt.Println("run error:", err)
		return
	}
	if len(report.Warnings) == 0 {
		fmt.Println("  no warnings")
	}
	pw := provenance.NewWalker(report.Graph)
	for _, w := range report.Warnings {
		fmt.Println("  ⚡", w)
		if chain := pw.Chain(w.Node); len(chain) > 0 {
			fmt.Println("     async stack trace:")
			provenance.Render(os.Stdout, chain, "       ")
		}
	}
	fmt.Println()
}

func main() {
	run("Fig. 4 buggy (→ Fig. 5(a))", buggy)
	run("Fig. 4 fixed (→ Fig. 5(b))", fixed)
}
