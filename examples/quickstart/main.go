// Quickstart: run a small asynchronous program on the simulated Node.js
// event loop, build its Async Graph, and print the graph and any
// detector warnings.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"time"

	"asyncg"
)

func main() {
	session := asyncg.New()
	report, err := session.Run(func(ctx *asyncg.Context) {
		// The §III motivating snippet: three callbacks registered in
		// one order, executed in another.
		ctx.Then(ctx.Resolve("value"), asyncg.F("promiseReaction", func(args []asyncg.Value) asyncg.Value {
			fmt.Println("2. promise reaction:", args[0])
			return asyncg.Undefined
		}), nil)
		ctx.SetTimeout(asyncg.F("timeout", func(args []asyncg.Value) asyncg.Value {
			fmt.Println("3. setTimeout callback")
			return asyncg.Undefined
		}), 0)
		ctx.NextTick(asyncg.F("tick", func(args []asyncg.Value) asyncg.Value {
			fmt.Println("1. nextTick callback")
			return asyncg.Undefined
		}))
		// Timers on the virtual clock: no real waiting happens.
		ctx.SetTimeout(asyncg.F("lastWords", func(args []asyncg.Value) asyncg.Value {
			fmt.Printf("4. one virtual hour later (wall time is instant), t=%v\n", ctx.Now())
			return asyncg.Undefined
		}), time.Hour)
	})
	if err != nil {
		fmt.Println("run error:", err)
		return
	}

	fmt.Printf("\nexecuted %d ticks; Async Graph: %d nodes, %d edges, %d ticks\n",
		report.Ticks, len(report.Graph.Nodes), len(report.Graph.Edges), len(report.Graph.Ticks))
	for _, tk := range report.Graph.Ticks {
		fmt.Printf("  %s: %d node(s)\n", tk.Name(), len(tk.Nodes))
	}
	fmt.Println("\nwarnings:")
	if len(report.Warnings) == 0 {
		fmt.Println("  (none)")
	}
	for _, w := range report.Warnings {
		fmt.Println("  ⚡", w)
	}
	fmt.Println("\nDOT (render with: dot -Tsvg):")
	fmt.Print(report.Graph.DOT("quickstart"))
}
