// Webserver: the paper's §II-A example — an HTTP server that accumulates
// the request body over 'data'/'end' events and defers the heavy
// processing with setImmediate before responding. A simulated client
// drives it, and the resulting Async Graph shows the full chain
// (http-request → data receiving → setImmediate → processing → response)
// across event-loop ticks.
//
//	go run ./examples/webserver
package main

import (
	"fmt"
	"strings"

	"asyncg"
	"asyncg/internal/loc"
)

func main() {
	session := asyncg.New()
	report, err := session.Run(func(ctx *asyncg.Context) {
		srv := ctx.CreateServer(asyncg.F("accept", func(args []asyncg.Value) asyncg.Value {
			req := args[0].(*asyncg.IncomingMessage)
			res := args[1].(*asyncg.ServerResponse)
			var body []byte
			req.On(loc.Here(), "data", asyncg.F("data", func(args []asyncg.Value) asyncg.Value {
				body = append(body, args[0].([]byte)...)
				return asyncg.Undefined
			}))
			req.On(loc.Here(), "end", asyncg.F("end", func(args []asyncg.Value) asyncg.Value {
				ctx.SetImmediate(asyncg.F("defer", func(args []asyncg.Value) asyncg.Value {
					processed := strings.ToUpper(string(body))
					res.EndString(loc.Here(), processed)
					return asyncg.Undefined
				}))
				return asyncg.Undefined
			}))
			return asyncg.Undefined
		}))
		if err := ctx.ListenHTTP(srv, 5000); err != nil {
			panic(err)
		}

		// Two clients post bodies and print the processed responses.
		for i, payload := range []string{"hello event loop", "async graphs"} {
			i := i
			ctx.HTTPRequest(asyncg.RequestOptions{
				Port: 5000, Method: "POST", Path: "/process",
				Body: []byte(payload),
			}, asyncg.F("response", func(args []asyncg.Value) asyncg.Value {
				resp := args[0].(*asyncg.IncomingMessage)
				var body []byte
				resp.On(loc.Here(), "data", asyncg.F("respData", func(args []asyncg.Value) asyncg.Value {
					body = append(body, args[0].([]byte)...)
					return asyncg.Undefined
				}))
				resp.On(loc.Here(), "end", asyncg.F("respEnd", func(args []asyncg.Value) asyncg.Value {
					fmt.Printf("client %d got %d: %s\n", i, resp.StatusCode, body)
					return asyncg.Undefined
				}))
				return asyncg.Undefined
			}))
		}
	})
	if err != nil {
		fmt.Println("run error:", err)
		return
	}

	fmt.Printf("\n%d ticks across phases: ", len(report.Graph.Ticks))
	counts := map[string]int{}
	for _, tk := range report.Graph.Ticks {
		counts[tk.Phase]++
	}
	for _, phase := range []string{"main", "nextTick", "promise", "timer", "io", "immediate", "close"} {
		if counts[phase] > 0 {
			fmt.Printf("%s×%d ", phase, counts[phase])
		}
	}
	fmt.Println()
	fmt.Println("warnings:")
	if len(report.Warnings) == 0 {
		fmt.Println("  (none — the deferred-processing pattern is clean)")
	}
	for _, w := range report.Warnings {
		fmt.Println("  ⚡", w)
	}
}
