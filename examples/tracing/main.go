// Tracing: run a small event-loop program with the observability layer
// attached — a Chrome trace (load trace.json in chrome://tracing or
// https://ui.perfetto.dev) and an online metrics report.
//
//	go run ./examples/tracing
package main

import (
	"fmt"
	"os"
	"time"

	"asyncg"
)

func main() {
	traceFile, err := os.Create("trace.json")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer traceFile.Close()

	session := asyncg.New(
		asyncg.WithTrace(traceFile, asyncg.TraceChrome),
		asyncg.WithMetrics(),
	)
	report, err := session.Run(func(ctx *asyncg.Context) {
		// A busy interval competing with a slow timer: the trace shows
		// the phase spans, the metrics show the loop lag it causes.
		var n int
		var id uint64
		id = ctx.SetInterval(asyncg.F("heartbeat", func(args []asyncg.Value) asyncg.Value {
			n++
			ctx.Work(500 * time.Microsecond)
			if n == 5 {
				ctx.ClearInterval(id)
			}
			return asyncg.Undefined
		}), time.Millisecond)
		ctx.SetTimeout(asyncg.F("slowJob", func(args []asyncg.Value) asyncg.Value {
			ctx.Work(10 * time.Millisecond) // blocks later heartbeats
			return asyncg.Undefined
		}), 2*time.Millisecond)
		ctx.NextTick(asyncg.F("setup", func(args []asyncg.Value) asyncg.Value {
			return asyncg.Undefined
		}))
	})
	if err != nil {
		fmt.Println("run error:", err)
		return
	}

	fmt.Printf("wrote trace.json (%d events, %d dropped)\n",
		len(session.Exporter().Events()), session.Exporter().Dropped())
	fmt.Println()
	if err := report.Metrics.WriteText(os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, err)
	}
}
