#!/bin/sh
# fleet_smoke.sh — end-to-end smoke of the distributed exploration
# coordinator: two local serve workers, one coverage exploration of the
# AcmeAir workload sharded across them, and two assertions:
#
#   1. the coordinator's merged NDJSON stream is byte-identical to a
#      single-process `asyncg explore` of the same plan;
#   2. a coordinator killed with SIGKILL mid-run resumes from its
#      journal without re-running the shards it had completed.
#
# Run from the repository root (make fleet-smoke).
set -eu

. "$(dirname "$0")/serve_lib.sh"

TMP="$(mktemp -d)"
PIDS=""
trap 'for p in $PIDS; do kill "$p" 2>/dev/null || true; done; rm -rf "$TMP"' EXIT

go build -o "$TMP/asyncg" ./cmd/asyncg

TARGET="acmeair:requests=20,clients=3,seed=1"
PLAN_FLAGS="-target $TARGET -strategy coverage -seed 1 -runs 24 -shard-runs 4"

start_worker "$TMP/asyncg" -queue 8 -job-workers 2
W1="$WORKER_URL"
PIDS="$PIDS $WORKER_PID"
start_worker "$TMP/asyncg" -queue 8 -job-workers 2
W2="$WORKER_URL"
PIDS="$PIDS $WORKER_PID"
echo "fleet-smoke: workers $W1 $W2"

# Reference: the same plan in a single process.
"$TMP/asyncg" explore -target "$TARGET" -strategy coverage -seed 1 -runs 24 \
  -ndjson "$TMP/single.ndjson" >/dev/null
echo "fleet-smoke: single-process reference recorded"

# Distributed run: the merged stream must match byte for byte.
# shellcheck disable=SC2086
"$TMP/asyncg" fleet -workers "$W1,$W2" $PLAN_FLAGS \
  -dir "$TMP/journal1" -ndjson "$TMP/fleet.ndjson" >/dev/null
cmp "$TMP/single.ndjson" "$TMP/fleet.ndjson"
echo "fleet-smoke: merged stream identical to single-process explore"

# Crash resume: SIGKILL the coordinator once its journal records a
# completed shard, then -resume must finish the exploration — loading
# at least that many shards from disk — and still match the reference.
DIR="$TMP/journal2"
# shellcheck disable=SC2086
"$TMP/asyncg" fleet -workers "$W1,$W2" $PLAN_FLAGS -dir "$DIR" >/dev/null 2>&1 &
COORD_PID=$!
i=0
until [ -f "$DIR/status.ndjson" ] && grep -q '"event":"done"' "$DIR/status.ndjson" 2>/dev/null; do
  i=$((i + 1))
  if [ "$i" -gt 400 ]; then
    echo "fleet-smoke: coordinator made no journal progress" >&2
    exit 1
  fi
  # A fast machine may finish the whole run first; resume must still work.
  kill -0 "$COORD_PID" 2>/dev/null || break
  sleep 0.05
done
kill -9 "$COORD_PID" 2>/dev/null || true
wait "$COORD_PID" 2>/dev/null || true
DONE_BEFORE=$(grep -c '"event":"done"' "$DIR/status.ndjson" || true)
echo "fleet-smoke: coordinator killed with $DONE_BEFORE shard(s) done"

"$TMP/asyncg" fleet -workers "$W1,$W2" -resume "$DIR" \
  -ndjson "$TMP/resumed.ndjson" >/dev/null
cmp "$TMP/single.ndjson" "$TMP/resumed.ndjson"
RESUMED=$(grep -c '"event":"resumed"' "$DIR/status.ndjson" || true)
if [ "$RESUMED" -lt "$DONE_BEFORE" ]; then
  echo "fleet-smoke: resume re-ran completed shards ($RESUMED resumed < $DONE_BEFORE done before kill)" >&2
  exit 1
fi
echo "fleet-smoke: resume completed ($RESUMED shard(s) loaded from journal)"

for p in $PIDS; do kill -TERM "$p" 2>/dev/null || true; done
for p in $PIDS; do wait "$p" 2>/dev/null || true; done
PIDS=""
echo "fleet-smoke: ok"
