#!/bin/sh
# serve_smoke.sh — end-to-end smoke of the asyncg analysis service:
# boot, health, target listing, a synchronous explore job, the NDJSON
# stream replay, /metrics aggregation, and a clean SIGTERM drain
# (exit 0). Run from the repository root (make serve-smoke).
set -eu

. "$(dirname "$0")/serve_lib.sh"

TMP="$(mktemp -d)"
trap 'kill "${WORKER_PID:-0}" 2>/dev/null || true; rm -rf "$TMP"' EXIT

go build -o "$TMP/asyncg" ./cmd/asyncg

start_worker "$TMP/asyncg" -queue 4 -job-workers 2
BASE="$WORKER_URL"
echo "serve-smoke: healthy at $BASE"

curl -fsS "$BASE/v1/targets" >"$TMP/targets.json"
grep -q '"acmeair"' "$TMP/targets.json"
echo "serve-smoke: target registry lists acmeair"

# Synchronous job: ?wait=1 blocks until the exploration finishes and
# returns the job view with the embedded Result.
OUT="$TMP/job.json"
curl -fsS -X POST "$BASE/v1/jobs?wait=1" \
  -H 'Content-Type: application/json' \
  -d '{"target":"case:SO-17894000","runs":8,"seed":1}' >"$OUT"
grep -q '"status": "done"' "$OUT"
JOB_ID=$(sed -n 's/.*"id": "\(job-[0-9]*\)".*/\1/p' "$OUT" | head -n 1)
[ -n "$JOB_ID" ]
echo "serve-smoke: $JOB_ID done"

# The stream replays the full NDJSON: 8 run lines, then the summary.
STREAM="$TMP/stream.ndjson"
curl -fsS "$BASE/v1/jobs/$JOB_ID/stream" >"$STREAM"
RUNS=$(grep -c '"kind":"explore-run"' "$STREAM")
[ "$RUNS" -eq 8 ]
tail -n 1 "$STREAM" | grep -q '"kind":"explore-summary"'
echo "serve-smoke: stream replayed $RUNS runs + summary"

curl -fsS "$BASE/v1/jobs/$JOB_ID/result" >"$TMP/result.json"
grep -q '"fingerprints"' "$TMP/result.json"
curl -fsS "$BASE/metrics" >"$TMP/metrics.json"
grep -q '"runsExplored": 8' "$TMP/metrics.json"
echo "serve-smoke: result and metrics agree"

# SIGTERM must drain and exit 0.
kill -TERM "$WORKER_PID"
if wait "$WORKER_PID"; then
  echo "serve-smoke: drained cleanly"
else
  echo "serve-smoke: drain exited non-zero" >&2
  exit 1
fi
