#!/usr/bin/env bash
# docs_check.sh — the `make docs-check` body: doc-comment lint over every
# package plus a relative-link check over the user-facing markdown.
# Uses only cmd/doclint (stdlib-only); exits non-zero on any finding.
set -euo pipefail
cd "$(dirname "$0")/.."

GO="${GO:-go}"

echo "doclint: Go doc comments"
pkgs=(.)
for d in internal/*/ cmd/*/ examples/*/; do
  pkgs+=("$d")
done
"$GO" run ./cmd/doclint docs "${pkgs[@]}"

echo "doclint: doc-comment cross-references"
"$GO" run ./cmd/doclint xref "${pkgs[@]}"

echo "doclint: markdown links"
"$GO" run ./cmd/doclint links \
  README.md \
  ARCHITECTURE.md \
  DESIGN.md \
  EXPERIMENTS.md \
  ROADMAP.md \
  docs/DEBUGGING.md

echo "docs-check: OK"
