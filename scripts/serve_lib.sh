# serve_lib.sh — shared helper for the smoke scripts: boot an asyncg
# serve worker on a free port and wait for it to become healthy.
# POSIX sh; source it, don't execute it.

# start_worker <asyncg-binary> [serve flags...]
#
# Starts `asyncg serve -addr 127.0.0.1:0` in the background, parses the
# real bound address from the startup banner, and waits for /healthz.
# Sets the globals (no subshell, so the caller keeps the PID):
#
#   WORKER_URL  the worker's base URL (http://127.0.0.1:<port>)
#   WORKER_PID  the worker's process id, for later kill/wait
start_worker() {
  _bin="$1"
  shift
  _log="$(mktemp)"
  "$_bin" serve -addr 127.0.0.1:0 "$@" 2>"$_log" &
  WORKER_PID=$!
  WORKER_URL=""
  _i=0
  while [ -z "$WORKER_URL" ]; do
    _i=$((_i + 1))
    if [ "$_i" -gt 100 ]; then
      echo "serve_lib: worker never printed its listen address" >&2
      cat "$_log" >&2
      return 1
    fi
    WORKER_URL="$(sed -n 's|^asyncg serve: listening on \([0-9.]*:[0-9]*\).*|http://\1|p' "$_log" | head -n 1)"
    [ -n "$WORKER_URL" ] || sleep 0.1
  done
  _i=0
  until curl -fsS "$WORKER_URL/healthz" >/dev/null 2>&1; do
    _i=$((_i + 1))
    if [ "$_i" -gt 100 ]; then
      echo "serve_lib: $WORKER_URL never became healthy" >&2
      cat "$_log" >&2
      return 1
    fi
    sleep 0.1
  done
  rm -f "$_log"
}
