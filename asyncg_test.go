package asyncg_test

import (
	"strings"
	"testing"
	"time"

	"asyncg"
	"asyncg/internal/detect"
	"asyncg/internal/eventloop"
	"asyncg/internal/loc"
)

// lochere captures the test's call site for direct internal-API use.
func lochere() loc.Loc { return loc.Caller(0) }

func TestSessionRunBuildsGraph(t *testing.T) {
	session := asyncg.New()
	report, err := session.Run(func(ctx *asyncg.Context) {
		ctx.NextTick(asyncg.F("cb", func(args []asyncg.Value) asyncg.Value {
			return asyncg.Undefined
		}))
	})
	if err != nil {
		t.Fatal(err)
	}
	if report.Graph == nil || len(report.Graph.Ticks) != 2 {
		t.Fatalf("graph = %+v", report.Graph)
	}
	if len(report.Anomalies) != 0 {
		t.Fatalf("anomalies: %v", report.Anomalies)
	}
}

func TestSessionDisableTool(t *testing.T) {
	session := asyncg.New(asyncg.Disabled())
	report, err := session.Run(func(ctx *asyncg.Context) {
		ctx.NextTick(asyncg.F("cb", func(args []asyncg.Value) asyncg.Value {
			return asyncg.Undefined
		}))
	})
	if err != nil {
		t.Fatal(err)
	}
	if report.Graph != nil || len(report.Warnings) != 0 {
		t.Fatal("tool artifacts present despite DisableTool")
	}
	if report.Ticks != 2 {
		t.Fatalf("ticks = %d", report.Ticks)
	}
}

func TestSessionDetectsBugs(t *testing.T) {
	session := asyncg.New()
	report, err := session.Run(func(ctx *asyncg.Context) {
		e := ctx.NewEmitter("e")
		ctx.Emit(e, "ghost")
	})
	if err != nil {
		t.Fatal(err)
	}
	if !report.HasWarning(detect.CatDeadEmit) {
		t.Fatalf("warnings = %v", report.Warnings)
	}
	if got := len(report.WarningsOf(detect.CatDeadEmit)); got != 1 {
		t.Fatalf("dead-emit warnings = %d", got)
	}
}

func TestSessionTickLimitReturnsTruncatedGraph(t *testing.T) {
	session := asyncg.New(asyncg.WithLoop(eventloop.Options{TickLimit: 20}))
	report, err := session.Run(func(ctx *asyncg.Context) {
		var loop *asyncg.Function
		loop = asyncg.F("loop", func(args []asyncg.Value) asyncg.Value {
			ctx.NextTick(loop)
			return asyncg.Undefined
		})
		ctx.NextTick(loop)
	})
	if err != eventloop.ErrTickLimit {
		t.Fatalf("err = %v", err)
	}
	if report.Graph == nil || len(report.Graph.Ticks) < 10 {
		t.Fatal("no truncated graph")
	}
	if !report.HasWarning(detect.CatRecursiveMicrotask) {
		t.Fatalf("warnings = %v", report.Warnings)
	}
}

func TestContextTimersAndClocks(t *testing.T) {
	session := asyncg.New()
	var at time.Duration
	_, err := session.Run(func(ctx *asyncg.Context) {
		ctx.SetTimeout(asyncg.F("late", func(args []asyncg.Value) asyncg.Value {
			at = ctx.Now()
			return asyncg.Undefined
		}), 30*time.Second)
	})
	if err != nil {
		t.Fatal(err)
	}
	if at < 30*time.Second {
		t.Fatalf("timer ran at %v", at)
	}
}

func TestContextCallPropagatesThrow(t *testing.T) {
	session := asyncg.New()
	report, err := session.Run(func(ctx *asyncg.Context) {
		ctx.Call(asyncg.F("boom", func(args []asyncg.Value) asyncg.Value {
			asyncg.Throw("bang")
			return asyncg.Undefined
		}))
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Uncaught) != 1 {
		t.Fatalf("uncaught = %v", report.Uncaught)
	}
}

func TestContextAsyncAwait(t *testing.T) {
	session := asyncg.New()
	var got asyncg.Value
	_, err := session.Run(func(ctx *asyncg.Context) {
		data := ctx.Resolve(21)
		done := ctx.Async("doubler", func(aw *asyncg.Awaiter) asyncg.Value {
			return ctx.Await(aw, data).(int) * 2
		})
		use := ctx.Then(done, asyncg.F("use", func(args []asyncg.Value) asyncg.Value {
			got = args[0]
			return asyncg.Undefined
		}), nil)
		ctx.Catch(use, asyncg.F("err", func(args []asyncg.Value) asyncg.Value {
			return asyncg.Undefined
		}))
	})
	if err != nil {
		t.Fatal(err)
	}
	if got != 42 {
		t.Fatalf("got = %v", got)
	}
}

func TestContextHTTPAndDB(t *testing.T) {
	session := asyncg.New()
	var status int
	_, err := session.Run(func(ctx *asyncg.Context) {
		users := ctx.DB().C("users")
		users.InsertSync(asyncg.Document{"name": "fred"})
		srv := ctx.CreateServer(asyncg.F("handler", func(args []asyncg.Value) asyncg.Value {
			res := args[1].(*asyncg.ServerResponse)
			users.FindOne(lochere(), `name == "fred"`, asyncg.F("found", func(args []asyncg.Value) asyncg.Value {
				res.WriteHead(200).End(lochere(), []byte("ok"))
				return asyncg.Undefined
			}))
			return asyncg.Undefined
		}))
		if err := ctx.ListenHTTP(srv, 8080); err != nil {
			t.Error(err)
		}
		ctx.HTTPGet(8080, "/", asyncg.F("resp", func(args []asyncg.Value) asyncg.Value {
			status = args[0].(*asyncg.IncomingMessage).StatusCode
			return asyncg.Undefined
		}))
	})
	if err != nil {
		t.Fatal(err)
	}
	if status != 200 {
		t.Fatalf("status = %d", status)
	}
}

func TestGraphExportsFromFacade(t *testing.T) {
	session := asyncg.New()
	report, err := session.Run(func(ctx *asyncg.Context) {
		ctx.SetImmediate(asyncg.F("x", func(args []asyncg.Value) asyncg.Value {
			return asyncg.Undefined
		}))
	})
	if err != nil {
		t.Fatal(err)
	}
	if dot := report.Graph.DOT("t"); !strings.Contains(dot, "digraph") {
		t.Fatal("bad DOT")
	}
	var sb strings.Builder
	if err := report.Graph.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
}

func TestSessionEnableDisableMidRun(t *testing.T) {
	session := asyncg.New()
	report, err := session.Run(func(ctx *asyncg.Context) {
		ctx.NextTick(asyncg.F("observed1", func(args []asyncg.Value) asyncg.Value {
			session.Disable()
			ctx.NextTick(asyncg.F("hidden", func(args []asyncg.Value) asyncg.Value {
				session.Enable()
				ctx.NextTick(asyncg.F("observed2", func(args []asyncg.Value) asyncg.Value {
					return asyncg.Undefined
				}))
				return asyncg.Undefined
			}))
			return asyncg.Undefined
		}))
	})
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, n := range report.Graph.Nodes {
		names = append(names, n.Func)
	}
	sawHiddenCE := false
	sawObserved2 := false
	for _, n := range report.Graph.Nodes {
		if n.Func == "hidden" && n.Kind.String() == "CE" {
			sawHiddenCE = true
		}
		if n.Func == "observed2" && n.Kind.String() == "CE" {
			sawObserved2 = true
		}
	}
	if sawHiddenCE {
		t.Fatalf("execution observed while disabled: %v", names)
	}
	if !sawObserved2 {
		t.Fatalf("execution missed after re-enable: %v", names)
	}
}

func TestContextFS(t *testing.T) {
	session := asyncg.New()
	var got string
	_, err := session.Run(func(ctx *asyncg.Context) {
		ctx.FS().Seed("/greeting", []byte("hello"))
		ctx.FS().ReadFile(lochere(), "/greeting", asyncg.F("read", func(args []asyncg.Value) asyncg.Value {
			got = string(args[1].([]byte))
			return asyncg.Undefined
		}))
	})
	if err != nil {
		t.Fatal(err)
	}
	if got != "hello" {
		t.Fatalf("got = %q", got)
	}
}

func TestContextCells(t *testing.T) {
	session := asyncg.New()
	_, err := session.Run(func(ctx *asyncg.Context) {
		c := ctx.NewCell("x", 1)
		if ctx.CellGet(c) != 1 {
			t.Error("initial value lost")
		}
		ctx.CellSet(c, 2)
		if ctx.CellGet(c) != 2 {
			t.Error("write lost")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestContextQueueMicrotask(t *testing.T) {
	session := asyncg.New()
	var order []string
	_, err := session.Run(func(ctx *asyncg.Context) {
		ctx.QueueMicrotask(asyncg.F("m", func(args []asyncg.Value) asyncg.Value {
			order = append(order, "microtask")
			return asyncg.Undefined
		}))
		ctx.NextTick(asyncg.F("t", func(args []asyncg.Value) asyncg.Value {
			order = append(order, "nextTick")
			return asyncg.Undefined
		}))
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(order) != 2 || order[0] != "nextTick" || order[1] != "microtask" {
		t.Fatalf("order = %v", order)
	}
}

func TestOnceEventBridgesEmitterToPromise(t *testing.T) {
	session := asyncg.New()
	var got asyncg.Value
	_, err := session.Run(func(ctx *asyncg.Context) {
		e := ctx.NewEmitter("source")
		ctx.Async("waiter", func(aw *asyncg.Awaiter) asyncg.Value {
			got = ctx.Await(aw, ctx.OnceEvent(e, "ready"))
			return asyncg.Undefined
		})
		ctx.SetTimeout(asyncg.F("fire", func(args []asyncg.Value) asyncg.Value {
			ctx.Emit(e, "ready", "payload")
			ctx.Emit(e, "ready", "ignored") // once: only the first counts
			return asyncg.Undefined
		}), time.Millisecond)
	})
	if err != nil {
		t.Fatal(err)
	}
	if got != "payload" {
		t.Fatalf("got = %v", got)
	}
}
