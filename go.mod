module asyncg

go 1.22
