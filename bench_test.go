package asyncg_test

// The benchmark harness regenerating the paper's evaluation:
//
//	Fig. 6(a)  BenchmarkFig6a{Baseline,NoPromise,WithPromise}
//	Fig. 6(b)  BenchmarkFig6bAPIUsage (per-request metrics)
//	Table I    BenchmarkTableI (all bug cases detect under budget)
//	Figs 3/5   BenchmarkGraphConstruction (AG build cost per event)
//
// plus ablations for the design knobs DESIGN.md calls out (chain
// analysis, detector families, probe activation) and micro-benchmarks of
// the substrates. Run with:
//
//	go test -bench=. -benchmem

import (
	"context"
	"runtime"
	"strings"
	"testing"
	"time"

	"asyncg"
	"asyncg/internal/acmeair"
	"asyncg/internal/asyncgraph"
	"asyncg/internal/casestudy"
	"asyncg/internal/detect"
	"asyncg/internal/eventloop"
	"asyncg/internal/events"
	"asyncg/internal/experiments"
	"asyncg/internal/explore"
	"asyncg/internal/loc"
	"asyncg/internal/mongosim"
	"asyncg/internal/netio"
	"asyncg/internal/promise"
	"asyncg/internal/vm"
	"asyncg/internal/workload"
)

// benchLoad is the per-iteration AcmeAir workload for Fig. 6 benches.
func benchLoad() experiments.LoadSpec {
	return experiments.LoadSpec{
		Requests: 500,
		Clients:  16,
		Seed:     1,
		Data:     acmeair.DataSpec{Customers: 50, FlightsPerSegment: 3},
	}
}

// benchFig6a measures one Fig. 6(a) setting, reporting requests/second.
func benchFig6a(b *testing.B, setting experiments.Setting) {
	b.ReportAllocs()
	load := benchLoad()
	var totalReq int
	var totalTime time.Duration
	for i := 0; i < b.N; i++ {
		row, err := experiments.RunSetting(setting, load)
		if err != nil {
			b.Fatal(err)
		}
		totalReq += row.Requests
		totalTime += row.Elapsed
	}
	b.ReportMetric(float64(totalReq)/totalTime.Seconds(), "req/s")
}

func BenchmarkFig6aBaseline(b *testing.B)    { benchFig6a(b, experiments.Baseline) }
func BenchmarkFig6aNoPromise(b *testing.B)   { benchFig6a(b, experiments.NoPromise) }
func BenchmarkFig6aWithPromise(b *testing.B) { benchFig6a(b, experiments.WithPromise) }

// BenchmarkFig6bAPIUsage reports the paper's per-request async-API
// execution counts as benchmark metrics.
func BenchmarkFig6bAPIUsage(b *testing.B) {
	load := benchLoad()
	var row experiments.Fig6bRow
	for i := 0; i < b.N; i++ {
		var err error
		row, err = experiments.RunFig6b(load)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(row.NextTick, "nextTick/req")
	b.ReportMetric(row.Emitter, "emitter/req")
	b.ReportMetric(row.Promise, "promise/req")
}

// BenchmarkTableI runs the full bug corpus (buggy versions) per
// iteration — the cost of the paper's case-study sweep.
func BenchmarkTableI(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for _, c := range casestudy.Table1() {
			res := casestudy.RunBuggy(c)
			if !res.Clean() {
				b.Fatalf("%s missed %v", c.ID, res.Missing)
			}
		}
	}
}

// BenchmarkGraphConstruction measures Async Graph build cost per
// scheduling event (the Figs. 3/5 machinery) on a promise+emitter mix.
func BenchmarkGraphConstruction(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		session := asyncg.New(asyncg.WithLoop(eventloop.Options{TickLimit: 100_000}))
		_, err := session.Run(func(ctx *asyncg.Context) {
			e := ctx.NewEmitter("bench")
			ctx.On(e, "x", asyncg.F("listener", func(args []asyncg.Value) asyncg.Value {
				return asyncg.Undefined
			}))
			for k := 0; k < 100; k++ {
				ctx.Emit(e, "x", k)
				p := ctx.Resolve(k)
				c := ctx.Then(p, asyncg.F("inc", func(args []asyncg.Value) asyncg.Value {
					return args[0].(int) + 1
				}), nil)
				ctx.Catch(c, asyncg.F("err", func(args []asyncg.Value) asyncg.Value {
					return asyncg.Undefined
				}))
			}
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// --- Ablations -------------------------------------------------------

// runAcmeAir executes the AcmeAir workload on a loop prepared by setup.
func runAcmeAir(b *testing.B, load experiments.LoadSpec, setup func(l *eventloop.Loop)) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		loop := eventloop.New(eventloop.Options{TickLimit: 100_000_000})
		setup(loop)
		net := netio.New(loop, netio.Options{})
		db := mongosim.New(loop, mongosim.Options{})
		acmeair.LoadSampleData(db, load.Data)
		app := acmeair.New(loop, net, db, acmeair.Config{UsePromises: true})
		driver := workload.NewDriver(net, workload.Options{
			Port: app.Port(), Clients: load.Clients, Requests: load.Requests, Seed: load.Seed,
		})
		main := vm.NewFunc("benchMain", func([]vm.Value) vm.Value {
			if err := app.Listen(loc.Here()); err != nil {
				panic(err)
			}
			driver.Start()
			return vm.Undefined
		})
		if err := loop.Run(main); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationGraphOnly isolates the builder without detectors.
func BenchmarkAblationGraphOnly(b *testing.B) {
	runAcmeAir(b, benchLoad(), func(l *eventloop.Loop) {
		l.Probes().Attach(asyncgraph.NewBuilder(asyncgraph.DefaultConfig()))
	})
}

// BenchmarkAblationNoChainAnalysis disables the on-the-fly promise
// provenance (stack capture + chain walks), the dominant promise cost.
func BenchmarkAblationNoChainAnalysis(b *testing.B) {
	runAcmeAir(b, benchLoad(), func(l *eventloop.Loop) {
		cfg := asyncgraph.DefaultConfig()
		cfg.ChainAnalysis = false
		builder := asyncgraph.NewBuilder(cfg)
		dcfg := detect.DefaultConfig()
		dcfg.OnTheFlyChains = false
		l.Probes().Attach(builder)
		l.Probes().Attach(detect.NewAnalyzer(builder, dcfg))
	})
}

// BenchmarkAblationFullTracking is the default full configuration
// (builder + detectors, no debug stacks) — the baseline the
// -debug-stacks overhead is measured against.
func BenchmarkAblationFullTracking(b *testing.B) {
	runAcmeAir(b, benchLoad(), func(l *eventloop.Loop) {
		builder := asyncgraph.NewBuilder(asyncgraph.DefaultConfig())
		l.Probes().Attach(builder)
		l.Probes().Attach(detect.NewAnalyzer(builder, detect.DefaultConfig()))
	})
}

// BenchmarkAblationDebugStacks is the full configuration with
// Config.DebugStacks on: runtime.Callers capture plus frame resolution
// at every OB creation, CT trigger, and CR registration. The delta over
// BenchmarkAblationFullTracking is the cost EXPERIMENTS.md records for
// the -debug-stacks opt-in.
func BenchmarkAblationDebugStacks(b *testing.B) {
	runAcmeAir(b, benchLoad(), func(l *eventloop.Loop) {
		cfg := asyncgraph.DefaultConfig()
		cfg.DebugStacks = true
		builder := asyncgraph.NewBuilder(cfg)
		l.Probes().Attach(builder)
		l.Probes().Attach(detect.NewAnalyzer(builder, detect.DefaultConfig()))
	})
}

// BenchmarkAblationDetectorsOnly runs detectors without the graph — not
// a supported configuration in AsyncG (detectors annotate graph nodes),
// measured here with the builder in its cheapest configuration.
func BenchmarkAblationDetectorsOnly(b *testing.B) {
	runAcmeAir(b, benchLoad(), func(l *eventloop.Loop) {
		cfg := asyncgraph.Config{Scheduling: true, Emitters: true, Promises: true, IO: true}
		builder := asyncgraph.NewBuilder(cfg)
		l.Probes().Attach(builder)
		l.Probes().Attach(detect.NewAnalyzer(builder, detect.DefaultConfig()))
	})
}

// --- Schedule exploration --------------------------------------------

// benchExplore measures schedule exploration with a fixed worker count;
// one op explores 64 schedules of the paper's schedule-dependent
// listener case, so ns/op is directly comparable between the
// sequential and parallel configurations (the benchio harness records
// the same pair into BENCH_explore.json).
func benchExplore(b *testing.B, workers int) {
	b.Helper()
	b.ReportAllocs()
	tg, err := explore.CaseTargetByID("SO-17894000", false)
	if err != nil {
		b.Fatal(err)
	}
	const runs = 64
	for i := 0; i < b.N; i++ {
		res, err := explore.Run(context.Background(), tg,
			explore.WithRuns(runs), explore.WithSeed(1), explore.WithWorkers(workers))
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Runs) != runs {
			b.Fatalf("explored %d/%d schedules", len(res.Runs), runs)
		}
	}
	b.ReportMetric(float64(runs*b.N)/b.Elapsed().Seconds(), "schedules/sec")
}

// BenchmarkExploreSeq is the sequential exploration baseline.
func BenchmarkExploreSeq(b *testing.B) { benchExplore(b, 1) }

// BenchmarkExplorePar explores with one worker per CPU; each worker
// owns an isolated event loop, VM, builder, and scheduler, so the
// speedup over BenchmarkExploreSeq tracks available cores.
func BenchmarkExplorePar(b *testing.B) { benchExplore(b, runtime.GOMAXPROCS(0)) }

// --- Substrate micro-benchmarks --------------------------------------

// BenchmarkLoopNextTick measures raw microtask dispatch without hooks.
func BenchmarkLoopNextTick(b *testing.B) {
	b.ReportAllocs()
	l := eventloop.New(eventloop.Options{TickLimit: b.N + 10})
	remaining := b.N
	var tick *vm.Function
	tick = vm.NewFunc("tick", func([]vm.Value) vm.Value {
		remaining--
		if remaining > 0 {
			l.NextTick(loc.Here(), tick)
		}
		return vm.Undefined
	})
	main := vm.NewFunc("main", func([]vm.Value) vm.Value {
		l.NextTick(loc.Here(), tick)
		return vm.Undefined
	})
	b.ResetTimer()
	if err := l.Run(main); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkLoopTimers measures the timer heap under churn.
func BenchmarkLoopTimers(b *testing.B) {
	b.ReportAllocs()
	l := eventloop.New(eventloop.Options{TickLimit: b.N + 10})
	fired := 0
	main := vm.NewFunc("main", func([]vm.Value) vm.Value {
		cb := vm.NewFunc("t", func([]vm.Value) vm.Value {
			fired++
			return vm.Undefined
		})
		for i := 0; i < b.N; i++ {
			l.SetTimeout(loc.Here(), cb, time.Duration(i%50)*time.Millisecond)
		}
		return vm.Undefined
	})
	b.ResetTimer()
	if err := l.Run(main); err != nil {
		b.Fatal(err)
	}
	if fired != b.N {
		b.Fatalf("fired %d/%d", fired, b.N)
	}
}

// BenchmarkEmitterEmit measures synchronous listener dispatch.
func BenchmarkEmitterEmit(b *testing.B) {
	b.ReportAllocs()
	l := eventloop.New(eventloop.Options{})
	main := vm.NewFunc("main", func([]vm.Value) vm.Value {
		e := events.New(l, "bench", loc.Here())
		e.On(loc.Here(), "x", vm.NewFunc("h", func([]vm.Value) vm.Value { return vm.Undefined }))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			e.Emit(loc.Here(), "x", i)
		}
		return vm.Undefined
	})
	if err := l.Run(main); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkPromiseChain measures a resolve→then→then chain per op.
func BenchmarkPromiseChain(b *testing.B) {
	b.ReportAllocs()
	l := eventloop.New(eventloop.Options{TickLimit: 10*b.N + 100})
	main := vm.NewFunc("main", func([]vm.Value) vm.Value {
		inc := vm.NewFunc("inc", func(args []vm.Value) vm.Value { return args[0].(int) + 1 })
		for i := 0; i < b.N; i++ {
			promise.Resolved(l, loc.Here(), i).
				Then(loc.Here(), inc, nil).
				Then(loc.Here(), inc, nil)
		}
		return vm.Undefined
	})
	b.ResetTimer()
	if err := l.Run(main); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkAsyncAwait measures the goroutine-gated async/await frames.
func BenchmarkAsyncAwait(b *testing.B) {
	b.ReportAllocs()
	l := eventloop.New(eventloop.Options{TickLimit: 10*b.N + 100})
	main := vm.NewFunc("main", func([]vm.Value) vm.Value {
		for i := 0; i < b.N; i++ {
			data := promise.Resolved(l, loc.Here(), i)
			promise.Go(l, loc.Here(), "af", func(aw *promise.Awaiter) vm.Value {
				return aw.Await(loc.Here(), data)
			})
		}
		return vm.Undefined
	})
	b.ResetTimer()
	if err := l.Run(main); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkHTTPRoundTrip measures one full simulated HTTP exchange.
func BenchmarkHTTPRoundTrip(b *testing.B) {
	b.ReportAllocs()
	session := asyncg.New(
		asyncg.Disabled(),
		asyncg.WithLoop(eventloop.Options{TickLimit: 100 * (b.N + 10)}),
	)
	served := 0
	_, err := session.Run(func(ctx *asyncg.Context) {
		srv := ctx.CreateServer(asyncg.F("h", func(args []asyncg.Value) asyncg.Value {
			served++
			args[1].(*asyncg.ServerResponse).EndString(loc.Here(), "ok")
			return asyncg.Undefined
		}))
		if err := ctx.ListenHTTP(srv, 5000); err != nil {
			b.Fatal(err)
		}
		var issue func(k int)
		issue = func(k int) {
			if k == 0 {
				return
			}
			ctx.HTTPGet(5000, "/", asyncg.F("resp", func(args []asyncg.Value) asyncg.Value {
				issue(k - 1)
				return asyncg.Undefined
			}))
		}
		b.ResetTimer()
		issue(b.N)
	})
	if err != nil {
		b.Fatal(err)
	}
	if served != b.N {
		b.Fatalf("served %d/%d", served, b.N)
	}
}

// BenchmarkProbesInactive quantifies the "no overhead when disabled"
// claim: the same nextTick loop with zero attached hooks vs an attached
// builder is compared via BenchmarkLoopNextTick / this benchmark.
func BenchmarkProbesActiveNextTick(b *testing.B) {
	b.ReportAllocs()
	l := eventloop.New(eventloop.Options{TickLimit: b.N + 10})
	builder := asyncgraph.NewBuilder(asyncgraph.DefaultConfig())
	l.Probes().Attach(builder)
	remaining := b.N
	var tick *vm.Function
	tick = vm.NewFunc("tick", func([]vm.Value) vm.Value {
		remaining--
		if remaining > 0 {
			l.NextTick(loc.Here(), tick)
		}
		return vm.Undefined
	})
	main := vm.NewFunc("main", func([]vm.Value) vm.Value {
		l.NextTick(loc.Here(), tick)
		return vm.Undefined
	})
	b.ResetTimer()
	if err := l.Run(main); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkMongosimQueryCompile measures the query-language front end.
func BenchmarkMongosimQueryCompile(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := mongosim.Compile(`originPort == "SFO" && destPort == "JFK" && price < 500`); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMongosimQueryMatch measures compiled-query evaluation.
func BenchmarkMongosimQueryMatch(b *testing.B) {
	expr := mongosim.MustCompile(`originPort == "SFO" && destPort == "JFK" && price < 500`)
	doc := mongosim.Document{"originPort": "SFO", "destPort": "JFK", "price": 400}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !expr.Match(doc) {
			b.Fatal("no match")
		}
	}
}

// BenchmarkExportDOT measures DOT generation on a mid-sized graph.
func BenchmarkExportDOT(b *testing.B) {
	g := benchGraph(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(g.DOT("bench")) == 0 {
			b.Fatal("empty DOT")
		}
	}
}

// BenchmarkExportSVG measures SVG generation on a mid-sized graph.
func BenchmarkExportSVG(b *testing.B) {
	g := benchGraph(b)
	var sb strings.Builder
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sb.Reset()
		if err := g.WriteSVG(&sb, "bench"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExportJSONRoundTrip measures serialize+parse of a graph log.
func BenchmarkExportJSONRoundTrip(b *testing.B) {
	g := benchGraph(b)
	var sb strings.Builder
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sb.Reset()
		if err := g.WriteJSON(&sb); err != nil {
			b.Fatal(err)
		}
		if _, err := asyncgraph.ReadJSON(strings.NewReader(sb.String())); err != nil {
			b.Fatal(err)
		}
	}
}

// benchGraph builds a representative graph once per benchmark.
func benchGraph(b *testing.B) *asyncgraph.Graph {
	b.Helper()
	session := asyncg.New(asyncg.WithLoop(eventloop.Options{TickLimit: 100_000}))
	report, err := session.Run(func(ctx *asyncg.Context) {
		e := ctx.NewEmitter("bench")
		ctx.On(e, "x", asyncg.F("l", func(args []asyncg.Value) asyncg.Value { return asyncg.Undefined }))
		for k := 0; k < 200; k++ {
			ctx.Emit(e, "x", k)
			c := ctx.Then(ctx.Resolve(k), asyncg.F("inc", func(args []asyncg.Value) asyncg.Value {
				return args[0].(int) + 1
			}), nil)
			ctx.Catch(c, asyncg.F("e", func(args []asyncg.Value) asyncg.Value { return asyncg.Undefined }))
		}
	})
	if err != nil {
		b.Fatal(err)
	}
	return report.Graph
}
