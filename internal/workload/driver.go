// Package workload drives the AcmeAir server with a closed-loop client
// mix, substituting for the JMeter test suite the paper uses: "The
// measurements are collected with the JMeter test suite of AcmeAir
// simulating realistic workloads on the server" (§VII-B). Each simulated
// client logs in and then issues a weighted stream of requests,
// reusing its session; the driver counts completions, failures and
// per-operation totals, which the Fig. 6 harness turns into throughput
// and per-request API-usage numbers.
package workload

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"sort"
	"time"

	"asyncg/internal/acmeair"
	"asyncg/internal/httpsim"
	"asyncg/internal/loc"
	"asyncg/internal/netio"
	"asyncg/internal/vm"
)

// Op enumerates the driver's request types.
type Op int

// Driver operations, mirroring the AcmeAir JMeter script.
const (
	OpLogin Op = iota
	OpQueryFlights
	OpBookFlight
	OpViewBookings
	OpCancelBooking
	OpViewCustomer
	OpUpdateCustomer
	OpLogout
	numOps
)

// String names the workload operation for logs and metrics.
func (o Op) String() string {
	switch o {
	case OpLogin:
		return "login"
	case OpQueryFlights:
		return "queryFlights"
	case OpBookFlight:
		return "bookFlight"
	case OpViewBookings:
		return "viewBookings"
	case OpCancelBooking:
		return "cancelBooking"
	case OpViewCustomer:
		return "viewCustomer"
	case OpUpdateCustomer:
		return "updateCustomer"
	case OpLogout:
		return "logout"
	default:
		return fmt.Sprintf("Op(%d)", int(o))
	}
}

// WeightedOp is one entry of a request mix.
type WeightedOp struct {
	Op     Op
	Weight int
}

// Mix is a weighted request distribution.
type Mix []WeightedOp

// DefaultMix approximates the AcmeAir JMeter workload: flight queries
// dominate, bookings and profile operations follow.
func DefaultMix() Mix {
	return Mix{
		{OpQueryFlights, 45},
		{OpViewBookings, 12},
		{OpViewCustomer, 10},
		{OpUpdateCustomer, 5},
		{OpBookFlight, 10},
		{OpCancelBooking, 5},
		{OpLogin, 8},
		{OpLogout, 5},
	}
}

func (m Mix) total() int {
	sum := 0
	for _, w := range m {
		sum += w.Weight
	}
	return sum
}

func (m Mix) pick(r *rand.Rand) Op {
	n := r.Intn(m.total())
	for _, w := range m {
		if n < w.Weight {
			return w.Op
		}
		n -= w.Weight
	}
	return m[len(m)-1].Op
}

// Options configures a driver run.
type Options struct {
	Port     int
	Clients  int
	Requests int // total requests across all clients
	Seed     int64
	Mix      Mix
	// Rand, when non-nil, supplies the driver's randomness instead of a
	// private source seeded with Seed. Harnesses that derive the whole
	// run from one master seed (the explore engine, multi-phase
	// benchmarks) inject their generator here; the driver never touches
	// the global math/rand source either way.
	Rand *rand.Rand
}

// Stats accumulates driver-side results.
type Stats struct {
	Issued    int
	Completed int
	Failed    int // non-2xx responses or transport errors
	ByOp      map[string]int
	// Latencies holds one virtual-time duration per completed request
	// (request issue to response-body completion).
	Latencies []time.Duration
}

// AvgLatency returns the mean virtual latency of completed requests.
func (s Stats) AvgLatency() time.Duration {
	if len(s.Latencies) == 0 {
		return 0
	}
	var sum time.Duration
	for _, d := range s.Latencies {
		sum += d
	}
	return sum / time.Duration(len(s.Latencies))
}

// Percentile returns the p-th percentile latency (p in [0,100]).
func (s Stats) Percentile(p float64) time.Duration {
	if len(s.Latencies) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), s.Latencies...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	idx := int(p / 100 * float64(len(sorted)-1))
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// Driver issues the workload. Create one, then call Start from inside
// the loop's main program; when the loop drains, Stats holds the result.
type Driver struct {
	net  *netio.Network
	opts Options
	rng  *rand.Rand

	stats   Stats
	airport []string
	onDone  func()
}

// NewDriver creates a driver.
func NewDriver(n *netio.Network, opts Options) *Driver {
	if opts.Clients <= 0 {
		opts.Clients = 1
	}
	if opts.Requests <= 0 {
		opts.Requests = 100
	}
	if opts.Mix == nil {
		opts.Mix = DefaultMix()
	}
	rng := opts.Rand
	if rng == nil {
		rng = rand.New(rand.NewSource(opts.Seed))
	}
	return &Driver{
		net:     n,
		opts:    opts,
		rng:     rng,
		stats:   Stats{ByOp: make(map[string]int)},
		airport: acmeair.Airports(),
	}
}

// Stats returns the accumulated counters.
func (d *Driver) Stats() Stats { return d.stats }

// OnDone registers a callback invoked once every request has completed
// (e.g. to close the server).
func (d *Driver) OnDone(f func()) { d.onDone = f }

// Start launches the client state machines. Call from loop context.
func (d *Driver) Start() {
	for i := 0; i < d.opts.Clients; i++ {
		c := &client{
			d:    d,
			user: fmt.Sprintf("uid%d", i),
		}
		c.run(OpLogin) // every client starts by logging in
	}
}

// client is one closed-loop virtual user.
type client struct {
	d        *Driver
	user     string
	session  string
	flights  []string // flight ids from the last query
	bookings []string // booking ids available to cancel
}

// next picks and issues the client's next operation, if budget remains.
func (c *client) next() {
	d := c.d
	if d.stats.Issued >= d.opts.Requests {
		if d.stats.Completed >= d.opts.Requests && d.onDone != nil {
			done := d.onDone
			d.onDone = nil
			done()
		}
		return
	}
	op := d.opts.Mix.pick(d.rng)
	// Session-dependent ops need a login first; cancels need a booking.
	if c.session == "" && op != OpLogin && op != OpQueryFlights && op != OpLogout {
		op = OpLogin
	}
	if op == OpCancelBooking && len(c.bookings) == 0 {
		op = OpBookFlight
	}
	if op == OpBookFlight && len(c.flights) == 0 {
		op = OpQueryFlights
	}
	c.run(op)
}

// run issues one request for op.
func (c *client) run(op Op) {
	d := c.d
	start := d.net.Loop().Now()
	d.stats.Issued++
	d.stats.ByOp[op.String()]++
	headers := map[string]string{}
	if c.session != "" {
		headers["x-session"] = c.session
	}
	var ropts httpsim.RequestOptions
	switch op {
	case OpLogin:
		ropts = httpsim.RequestOptions{
			Method: "POST", Path: "/rest/api/login",
			Body: []byte("login=" + c.user + "&password=password"),
		}
	case OpLogout:
		ropts = httpsim.RequestOptions{
			Method: "GET", Path: "/rest/api/login/logout?login=" + c.user,
		}
	case OpQueryFlights:
		from := d.airport[d.rng.Intn(len(d.airport))]
		to := d.airport[d.rng.Intn(len(d.airport))]
		for to == from {
			to = d.airport[d.rng.Intn(len(d.airport))]
		}
		ropts = httpsim.RequestOptions{
			Method: "POST", Path: "/rest/api/flights/queryflights",
			Body: []byte("fromAirport=" + from + "&toAirport=" + to),
		}
	case OpBookFlight:
		flight := c.flights[d.rng.Intn(len(c.flights))]
		ropts = httpsim.RequestOptions{
			Method: "POST", Path: "/rest/api/bookings/bookflights",
			Body: []byte("flightId=" + flight + "&userid=" + c.user),
		}
	case OpViewBookings:
		ropts = httpsim.RequestOptions{
			Method: "GET", Path: "/rest/api/bookings/byuser/" + c.user,
		}
	case OpCancelBooking:
		bid := c.bookings[len(c.bookings)-1]
		c.bookings = c.bookings[:len(c.bookings)-1]
		ropts = httpsim.RequestOptions{
			Method: "POST", Path: "/rest/api/bookings/cancelbooking",
			Body: []byte("number=" + bid + "&userid=" + c.user),
		}
	case OpViewCustomer:
		ropts = httpsim.RequestOptions{
			Method: "GET", Path: "/rest/api/customer/byid/" + c.user,
		}
	case OpUpdateCustomer:
		ropts = httpsim.RequestOptions{
			Method: "POST", Path: "/rest/api/customer/byid/" + c.user,
			Body: []byte("phoneNumber=919-555-0000"),
		}
	}
	ropts.Port = d.opts.Port
	ropts.Headers = headers

	cl := c
	req := httpsim.Request(d.net, loc.Here(), ropts, vm.NewFunc("clientResponse",
		func(args []vm.Value) vm.Value {
			resp := args[0].(*httpsim.IncomingMessage)
			httpsim.CollectBody(resp, func(body []byte) {
				d.stats.Latencies = append(d.stats.Latencies, d.net.Loop().Now()-start)
				cl.handle(op, resp.StatusCode, body)
			})
			return vm.Undefined
		}))
	req.On(loc.Internal, "error", vm.NewFuncAt("(clientError)", loc.Internal,
		func(args []vm.Value) vm.Value {
			d.stats.Completed++
			d.stats.Failed++
			cl.next()
			return vm.Undefined
		}))
}

// handle consumes one response and schedules the next operation.
func (c *client) handle(op Op, status int, body []byte) {
	d := c.d
	d.stats.Completed++
	if status < 200 || status >= 300 {
		d.stats.Failed++
		if status == 403 {
			c.session = "" // stale session: force re-login
		}
		c.next()
		return
	}
	var payload map[string]any
	_ = json.Unmarshal(body, &payload)
	switch op {
	case OpLogin:
		if sid, ok := payload["sessionid"].(string); ok {
			c.session = sid
		}
	case OpLogout:
		c.session = ""
	case OpQueryFlights:
		c.flights = c.flights[:0]
		if flights, ok := payload["flights"].([]any); ok {
			for _, f := range flights {
				if doc, ok := f.(map[string]any); ok {
					if id, ok := doc["flightId"].(string); ok {
						c.flights = append(c.flights, id)
					}
				}
			}
		}
	case OpBookFlight:
		if bid, ok := payload["bookingId"].(string); ok {
			c.bookings = append(c.bookings, bid)
		}
	}
	c.next()
}
