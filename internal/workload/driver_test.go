package workload

import (
	"math/rand"
	"reflect"
	"testing"

	"asyncg/internal/acmeair"
	"asyncg/internal/eventloop"
	"asyncg/internal/instrument"
	"asyncg/internal/loc"
	"asyncg/internal/mongosim"
	"asyncg/internal/netio"
	"asyncg/internal/vm"
)

// runLoad boots AcmeAir and drives it with the given options, returning
// the driver and the loop.
func runLoad(t *testing.T, usePromises bool, opts Options) (*Driver, *eventloop.Loop) {
	t.Helper()
	l := eventloop.New(eventloop.Options{TickLimit: 5_000_000})
	n := netio.New(l, netio.Options{})
	db := mongosim.New(l, mongosim.Options{})
	acmeair.LoadSampleData(db, acmeair.DataSpec{Customers: 20, FlightsPerSegment: 3})
	app := acmeair.New(l, n, db, acmeair.Config{Port: opts.Port, UsePromises: usePromises})
	opts.Port = app.Port()
	d := NewDriver(n, opts)
	main := vm.NewFunc("main", func([]vm.Value) vm.Value {
		if err := app.Listen(loc.Here()); err != nil {
			t.Error(err)
			return vm.Undefined
		}
		d.Start()
		return vm.Undefined
	})
	if err := l.Run(main); err != nil {
		t.Fatal(err)
	}
	if got := l.Uncaught(); len(got) != 0 {
		t.Fatalf("uncaught: %v", got[0])
	}
	return d, l
}

func TestDriverCompletesAllRequests(t *testing.T) {
	d, _ := runLoad(t, false, Options{Clients: 4, Requests: 120, Seed: 1})
	s := d.Stats()
	if s.Completed != 120 || s.Issued != 120 {
		t.Fatalf("stats = %+v", s)
	}
	if s.Failed != 0 {
		t.Fatalf("failed = %d (%+v)", s.Failed, s.ByOp)
	}
}

func TestDriverCompletesWithPromises(t *testing.T) {
	d, _ := runLoad(t, true, Options{Clients: 4, Requests: 120, Seed: 2})
	s := d.Stats()
	if s.Completed != 120 || s.Failed != 0 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestMixCoversAllOperations(t *testing.T) {
	d, _ := runLoad(t, false, Options{Clients: 8, Requests: 600, Seed: 3})
	s := d.Stats()
	for _, op := range []Op{OpLogin, OpQueryFlights, OpBookFlight, OpViewBookings, OpCancelBooking, OpViewCustomer, OpUpdateCustomer, OpLogout} {
		if s.ByOp[op.String()] == 0 {
			t.Errorf("operation %s never issued: %+v", op, s.ByOp)
		}
	}
}

func TestDeterministicGivenSeed(t *testing.T) {
	d1, l1 := runLoad(t, false, Options{Clients: 3, Requests: 90, Seed: 42})
	d2, l2 := runLoad(t, false, Options{Clients: 3, Requests: 90, Seed: 42})
	s1, s2 := d1.Stats(), d2.Stats()
	if len(s1.ByOp) != len(s2.ByOp) {
		t.Fatalf("op maps differ: %v vs %v", s1.ByOp, s2.ByOp)
	}
	for k, v := range s1.ByOp {
		if s2.ByOp[k] != v {
			t.Fatalf("op %s: %d vs %d", k, v, s2.ByOp[k])
		}
	}
	if l1.Tick() != l2.Tick() {
		t.Fatalf("tick counts differ: %d vs %d", l1.Tick(), l2.Tick())
	}
	if l1.Now() != l2.Now() {
		t.Fatalf("virtual clocks differ: %v vs %v", l1.Now(), l2.Now())
	}
}

func TestInjectedRandMatchesSeed(t *testing.T) {
	// An injected *rand.Rand built from the same source as Seed must
	// reproduce the Seed-based run exactly: harnesses that derive all
	// randomness from one master generator get byte-identical workloads.
	d1, l1 := runLoad(t, false, Options{Clients: 3, Requests: 90, Seed: 42})
	d2, l2 := runLoad(t, false, Options{Clients: 3, Requests: 90, Rand: rand.New(rand.NewSource(42))})
	s1, s2 := d1.Stats(), d2.Stats()
	if !reflect.DeepEqual(s1.ByOp, s2.ByOp) {
		t.Fatalf("op maps differ: %v vs %v", s1.ByOp, s2.ByOp)
	}
	if l1.Tick() != l2.Tick() || l1.Now() != l2.Now() {
		t.Fatalf("runs diverged: ticks %d/%d clocks %v/%v", l1.Tick(), l2.Tick(), l1.Now(), l2.Now())
	}
	// And an injected generator with a different seed must actually be
	// used (not silently replaced by the zero Seed field).
	d3, _ := runLoad(t, false, Options{Clients: 3, Requests: 90, Rand: rand.New(rand.NewSource(7))})
	if reflect.DeepEqual(s1.ByOp, d3.Stats().ByOp) {
		t.Fatal("different injected generators produced identical op mixes")
	}
}

func TestOnDoneFires(t *testing.T) {
	l := eventloop.New(eventloop.Options{TickLimit: 5_000_000})
	n := netio.New(l, netio.Options{})
	db := mongosim.New(l, mongosim.Options{})
	acmeair.LoadSampleData(db, acmeair.DataSpec{Customers: 5, FlightsPerSegment: 2})
	app := acmeair.New(l, n, db, acmeair.Config{})
	d := NewDriver(n, Options{Port: app.Port(), Clients: 2, Requests: 30, Seed: 4})
	fired := false
	d.OnDone(func() {
		fired = true
		app.Close(loc.Here())
	})
	main := vm.NewFunc("main", func([]vm.Value) vm.Value {
		if err := app.Listen(loc.Here()); err != nil {
			t.Error(err)
		}
		d.Start()
		return vm.Undefined
	})
	if err := l.Run(main); err != nil {
		t.Fatal(err)
	}
	if !fired {
		t.Fatal("OnDone never fired")
	}
}

func TestFig6bStyleAPIUsageCounters(t *testing.T) {
	// The Fig. 6(b) measurement: per-request executions of nextTick,
	// emitter, and promise callbacks, with nextTick > emitter > promise.
	l := eventloop.New(eventloop.Options{TickLimit: 5_000_000})
	n := netio.New(l, netio.Options{})
	db := mongosim.New(l, mongosim.Options{})
	acmeair.LoadSampleData(db, acmeair.DataSpec{Customers: 20, FlightsPerSegment: 3})
	app := acmeair.New(l, n, db, acmeair.Config{UsePromises: true})
	counter := instrument.NewCounter()
	l.Probes().Attach(counter)
	requests := 200
	d := NewDriver(n, Options{Port: app.Port(), Clients: 4, Requests: requests, Seed: 5})
	main := vm.NewFunc("main", func([]vm.Value) vm.Value {
		if err := app.Listen(loc.Here()); err != nil {
			t.Error(err)
		}
		d.Start()
		return vm.Undefined
	})
	if err := l.Run(main); err != nil {
		t.Fatal(err)
	}
	perReq := func(v int64) float64 { return float64(v) / float64(requests) }
	nt, em, pr := perReq(counter.NextTick), perReq(counter.Emitter), perReq(counter.Promise)
	t.Logf("per-request: nextTick=%.2f emitter=%.2f promise=%.2f", nt, em, pr)
	if !(nt > em && em > pr) {
		t.Fatalf("expected nextTick > emitter > promise, got %.2f / %.2f / %.2f", nt, em, pr)
	}
	if pr <= 0 {
		t.Fatal("no promise activity despite UsePromises")
	}
}

func TestLatencyStatistics(t *testing.T) {
	d, l := runLoad(t, false, Options{Clients: 4, Requests: 100, Seed: 9})
	s := d.Stats()
	if len(s.Latencies) != 100 {
		t.Fatalf("latency samples = %d", len(s.Latencies))
	}
	avg := s.AvgLatency()
	if avg <= 0 || avg > l.Now() {
		t.Fatalf("avg latency = %v (run virtual time %v)", avg, l.Now())
	}
	p50, p95 := s.Percentile(50), s.Percentile(95)
	if p50 > p95 {
		t.Fatalf("p50 %v > p95 %v", p50, p95)
	}
	if s.Percentile(0) > p50 || p95 > s.Percentile(100) {
		t.Fatal("percentiles not monotone")
	}
}
