package loc

import "testing"

func TestHereCapturesThisFile(t *testing.T) {
	l := Here()
	if l.File != "loc_test.go" || l.Line == 0 {
		t.Fatalf("Here() = %v", l)
	}
}

func TestCallerSkips(t *testing.T) {
	inner := func() Loc { return Caller(0) } // captures inner's caller
	l := inner()
	if l.File != "loc_test.go" {
		t.Fatalf("Caller(0) = %v", l)
	}
}

func TestInternalRendering(t *testing.T) {
	if !Internal.IsInternal() {
		t.Fatal("Internal not internal")
	}
	if Internal.String() != "*" || Internal.Short() != "*" {
		t.Fatalf("internal renders as %q / %q", Internal.String(), Internal.Short())
	}
}

func TestRendering(t *testing.T) {
	l := Loc{File: "app.go", Line: 42}
	if l.String() != "app.go:42" {
		t.Fatalf("String() = %q", l.String())
	}
	if l.Short() != "L42" {
		t.Fatalf("Short() = %q", l.Short())
	}
	if l.IsInternal() {
		t.Fatal("user loc reported internal")
	}
}

func TestLocIsComparable(t *testing.T) {
	a := Loc{File: "x.go", Line: 1}
	b := Loc{File: "x.go", Line: 1}
	if a != b {
		t.Fatal("equal locs compare unequal")
	}
}
