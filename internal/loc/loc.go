// Package loc captures and formats source-code locations. Async Graph
// nodes are labelled with the location of the originating API use, so the
// graph reader can map every node back to code ("L7: createServer" in the
// paper's figures).
package loc

import (
	"fmt"
	"path/filepath"
	"runtime"
	"sync"
)

// Loc identifies a source position. The zero Loc means "internal library"
// and renders as "*", matching the paper's convention for nodes that
// originate inside Node.js internals.
type Loc struct {
	File string
	Line int
}

// Internal is the zero location used for runtime-internal callbacks.
var Internal = Loc{}

// pcCache memoizes program counter → Loc. A given PC always resolves to
// the same logical frame (the mapping lives in the binary's line
// tables), so the cache is sound; it is keyed on the raw PC from
// runtime.Callers and shared by every goroutine capturing locations.
var pcCache sync.Map // uintptr → Loc

// Caller captures the location skip+1 frames above the caller of Caller
// (skip=0 means the direct caller of the function invoking Caller).
//
// It open-codes runtime.Caller as runtime.Callers on a stack-resident
// PC buffer plus a PC-keyed cache: runtime.Caller heap-allocates its
// one-element PC slice on every call (and symbolizing the frame costs
// two more), and Caller sits on every facade API's hot path — each
// timer, promise and I/O registration captures a location — where those
// allocations dominated the steady-state profile of schedule
// exploration. The skip arithmetic matches runtime.Caller(skip+2):
// runtime.Callers counts itself as frame 0 where runtime.Caller counts
// its own caller, and both count logical (inline-expanded) frames.
func Caller(skip int) Loc {
	var pcs [1]uintptr
	if runtime.Callers(skip+3, pcs[:]) < 1 {
		return Internal
	}
	if v, ok := pcCache.Load(pcs[0]); ok {
		return v.(Loc)
	}
	return resolvePC(pcs[0])
}

// resolvePC symbolizes one PC and fills the cache — the miss path of
// Caller, kept out of line so Caller's own PC buffer never escapes:
// runtime.CallersFrames retains the slice it is given, and escape
// analysis would otherwise heap-allocate the buffer on every call,
// cache hit or not.
//
//go:noinline
func resolvePC(pc uintptr) Loc {
	pcs := [1]uintptr{pc}
	frame, _ := runtime.CallersFrames(pcs[:]).Next()
	if frame.PC == 0 {
		return Internal
	}
	l := Loc{File: filepath.Base(frame.File), Line: frame.Line}
	pcCache.Store(pc, l)
	return l
}

// Here captures the immediate caller's location.
func Here() Loc { return Caller(0) }

// IsInternal reports whether the location refers to runtime internals.
func (l Loc) IsInternal() bool { return l.File == "" }

// String renders the location as "file:line" ("<internal>" for
// runtime-internal locations).
func (l Loc) String() string {
	if l.IsInternal() {
		return "*"
	}
	return fmt.Sprintf("%s:%d", l.File, l.Line)
}

// Parse inverts String: "file:line" becomes a Loc, "*" (and anything
// unparsable) becomes Internal. Graph logs store locations in rendered
// form; readers use Parse so a deserialized graph keeps location
// identity (fingerprints and warning keys compare rendered locations).
func Parse(s string) Loc {
	for i := len(s) - 1; i > 0; i-- {
		if s[i] == ':' {
			line := 0
			if _, err := fmt.Sscanf(s[i+1:], "%d", &line); err == nil && line > 0 {
				return Loc{File: s[:i], Line: line}
			}
			break
		}
	}
	return Internal
}

// Short renders the paper's node-name prefix: "L<line>" for user code,
// "*" for internals.
func (l Loc) Short() string {
	if l.IsInternal() {
		return "*"
	}
	return fmt.Sprintf("L%d", l.Line)
}
