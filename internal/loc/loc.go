// Package loc captures and formats source-code locations. Async Graph
// nodes are labelled with the location of the originating API use, so the
// graph reader can map every node back to code ("L7: createServer" in the
// paper's figures).
package loc

import (
	"fmt"
	"path/filepath"
	"runtime"
)

// Loc identifies a source position. The zero Loc means "internal library"
// and renders as "*", matching the paper's convention for nodes that
// originate inside Node.js internals.
type Loc struct {
	File string
	Line int
}

// Internal is the zero location used for runtime-internal callbacks.
var Internal = Loc{}

// Caller captures the location skip+1 frames above the caller of Caller
// (skip=0 means the direct caller of the function invoking Caller).
func Caller(skip int) Loc {
	_, file, line, ok := runtime.Caller(skip + 2)
	if !ok {
		return Internal
	}
	return Loc{File: filepath.Base(file), Line: line}
}

// Here captures the immediate caller's location.
func Here() Loc { return Caller(0) }

// IsInternal reports whether the location refers to runtime internals.
func (l Loc) IsInternal() bool { return l.File == "" }

// String renders the location as "file:line" ("<internal>" for
// runtime-internal locations).
func (l Loc) String() string {
	if l.IsInternal() {
		return "*"
	}
	return fmt.Sprintf("%s:%d", l.File, l.Line)
}

// Parse inverts String: "file:line" becomes a Loc, "*" (and anything
// unparsable) becomes Internal. Graph logs store locations in rendered
// form; readers use Parse so a deserialized graph keeps location
// identity (fingerprints and warning keys compare rendered locations).
func Parse(s string) Loc {
	for i := len(s) - 1; i > 0; i-- {
		if s[i] == ':' {
			line := 0
			if _, err := fmt.Sscanf(s[i+1:], "%d", &line); err == nil && line > 0 {
				return Loc{File: s[:i], Line: line}
			}
			break
		}
	}
	return Internal
}

// Short renders the paper's node-name prefix: "L<line>" for user code,
// "*" for internals.
func (l Loc) Short() string {
	if l.IsInternal() {
		return "*"
	}
	return fmt.Sprintf("L%d", l.Line)
}
