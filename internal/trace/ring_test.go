package trace

import (
	"fmt"
	"testing"
	"time"
)

func mkEvent(i int) Event {
	return Event{Seq: uint64(i + 1), Kind: KindCE, TS: time.Duration(i) * time.Microsecond}
}

func TestRingBelowCapacityKeepsEverything(t *testing.T) {
	r := NewRing(8, DropOldest)
	for i := 0; i < 5; i++ {
		r.Push(mkEvent(i))
	}
	if r.Len() != 5 || r.Dropped() != 0 {
		t.Fatalf("len=%d dropped=%d", r.Len(), r.Dropped())
	}
	evs := r.Events()
	for i, ev := range evs {
		if ev.Seq != uint64(i+1) {
			t.Fatalf("event %d has seq %d", i, ev.Seq)
		}
	}
}

func TestRingDropOldestKeepsSuffix(t *testing.T) {
	r := NewRing(4, DropOldest)
	for i := 0; i < 10; i++ {
		r.Push(mkEvent(i))
	}
	if r.Len() != 4 || r.Dropped() != 6 {
		t.Fatalf("len=%d dropped=%d", r.Len(), r.Dropped())
	}
	evs := r.Events()
	want := []uint64{7, 8, 9, 10}
	for i, ev := range evs {
		if ev.Seq != want[i] {
			t.Fatalf("events = %v, want seqs %v", evs, want)
		}
	}
}

func TestRingDropNewestKeepsPrefix(t *testing.T) {
	r := NewRing(4, DropNewest)
	for i := 0; i < 10; i++ {
		r.Push(mkEvent(i))
	}
	if r.Len() != 4 || r.Dropped() != 6 {
		t.Fatalf("len=%d dropped=%d", r.Len(), r.Dropped())
	}
	evs := r.Events()
	want := []uint64{1, 2, 3, 4}
	for i, ev := range evs {
		if ev.Seq != want[i] {
			t.Fatalf("events = %v, want seqs %v", evs, want)
		}
	}
}

// TestRingBoundsMemoryAtScale is the acceptance check: a 100k-event
// stream through a 1k ring retains exactly 1k events and accounts for
// every drop.
func TestRingBoundsMemoryAtScale(t *testing.T) {
	const total, capacity = 100_000, 1_000
	for _, policy := range []DropPolicy{DropOldest, DropNewest} {
		r := NewRing(capacity, policy)
		for i := 0; i < total; i++ {
			r.Push(mkEvent(i))
		}
		if r.Len() != capacity {
			t.Fatalf("%v: retained %d events, want %d", policy, r.Len(), capacity)
		}
		if got := r.Dropped(); got != total-capacity {
			t.Fatalf("%v: dropped %d, want %d", policy, got, total-capacity)
		}
		if got := len(r.Events()); got != capacity {
			t.Fatalf("%v: snapshot has %d events", policy, got)
		}
	}
}

func TestRingReset(t *testing.T) {
	r := NewRing(2, DropOldest)
	for i := 0; i < 5; i++ {
		r.Push(mkEvent(i))
	}
	r.Reset()
	if r.Len() != 0 || r.Dropped() != 0 || len(r.Events()) != 0 {
		t.Fatalf("reset left len=%d dropped=%d", r.Len(), r.Dropped())
	}
	r.Push(mkEvent(0))
	if r.Len() != 1 {
		t.Fatalf("push after reset: len=%d", r.Len())
	}
}

func TestRingTinyCapacity(t *testing.T) {
	r := NewRing(0, DropOldest) // clamped to 1
	if r.Cap() != 1 {
		t.Fatalf("cap = %d", r.Cap())
	}
	r.Push(mkEvent(0))
	r.Push(mkEvent(1))
	if r.Len() != 1 || r.Events()[0].Seq != 2 {
		t.Fatalf("events = %v", r.Events())
	}
}

func TestDropPolicyString(t *testing.T) {
	for policy, want := range map[DropPolicy]string{DropOldest: "drop-oldest", DropNewest: "drop-newest"} {
		if got := fmt.Sprint(policy); got != want {
			t.Fatalf("%d renders as %q", policy, got)
		}
	}
}
