// Package trace is the streaming observability layer of the tool: it
// turns the probe stream of the simulated event loop into structured
// trace events (NDJSON or Chrome trace_event JSON, loadable in
// chrome://tracing and Perfetto) and into online metrics — per-phase tick
// counts and virtual-time durations, queue-depth high-water marks, timer
// loop lag, and per-API callback-latency histograms.
//
// Both consumers implement eventloop.Probe (plus the optional phase,
// loop-iteration, and timer extensions) and attach through the same
// Loop.Probes() fan-out as the Async Graph builder and the bug
// detectors. The exporter buffers events in a bounded ring with a
// configurable drop policy, so a run with millions of requests holds
// O(capacity) memory instead of O(events); the metrics registry is
// O(distinct APIs) regardless of run length.
package trace

import (
	"fmt"
	"time"

	"asyncg/internal/vm"
)

// Clock supplies virtual time to trace consumers. *eventloop.Loop
// implements it; probe hooks run synchronously on the loop goroutine, so
// reading the clock inside a hook observes the dispatch-time instant.
type Clock interface {
	Now() time.Duration
}

// Kind classifies a trace event. The first four kinds mirror the Async
// Graph node vocabulary of the paper (§IV-A); the rest are loop-level
// events the graph does not materialize.
type Kind string

// Trace event kinds.
const (
	// KindCR is a callback registration (setTimeout, emitter.on, ...).
	KindCR Kind = "CR"
	// KindCE is a callback execution. CE events are emitted at callback
	// exit and carry both the start timestamp and the virtual duration
	// (like a Chrome "complete" event), so registrations made inside the
	// callback appear before their enclosing CE in stream order; sort by
	// TS to recover execution order.
	KindCE Kind = "CE"
	// KindCT is a callback trigger (emitter.emit, resolve, reject).
	KindCT Kind = "CT"
	// KindOB is an object binding (new Promise, new EventEmitter, ...).
	KindOB Kind = "OB"
	// KindAPI is any other async-API use (clearTimeout, removeListener).
	KindAPI Kind = "API"
	// KindPhaseEnter / KindPhaseExit bracket a macro phase that had
	// runnable work.
	KindPhaseEnter Kind = "phase-enter"
	KindPhaseExit  Kind = "phase-exit"
	// KindLoop is one event-loop iteration with its queue depths.
	KindLoop Kind = "loop"
	// KindTimerFire is an imminent timer dispatch with its loop lag.
	KindTimerFire Kind = "timer-fire"
	// KindSummary is the trailer event NDJSON output ends with, carrying
	// the retained/dropped accounting of the ring buffer.
	KindSummary Kind = "summary"
)

// Event is one structured trace record. All timestamps and durations are
// virtual time. Fields are omitted from JSON when empty, so NDJSON lines
// stay close to the information the originating probe carried.
type Event struct {
	// Seq numbers events in emission order (1-based, monotonic even
	// across ring-buffer drops).
	Seq uint64 `json:"seq"`
	// Kind classifies the event.
	Kind Kind `json:"kind"`
	// TS is the event's virtual timestamp; for CE events the execution's
	// start instant.
	TS time.Duration `json:"ts"`
	// Dur is the virtual duration of CE events.
	Dur time.Duration `json:"dur,omitempty"`
	// Tick is the 1-based top-level callback index for CE events.
	Tick int `json:"tick,omitempty"`
	// Phase is the event-loop phase (CE, phase-enter/exit events).
	Phase string `json:"phase,omitempty"`
	// API is the async API involved ("setTimeout", "emitter.emit", ...).
	API string `json:"api,omitempty"`
	// Name is the callback or emitter-event name.
	Name string `json:"name,omitempty"`
	// Loc is the user source location of the API use.
	Loc string `json:"loc,omitempty"`
	// Obj identifies the bound runtime object (timer, emitter, promise).
	Obj uint64 `json:"obj,omitempty"`
	// ObjKind is the bound object's kind.
	ObjKind string `json:"objKind,omitempty"`
	// RegSeq links CR events to the CE they eventually dispatch.
	RegSeq uint64 `json:"regSeq,omitempty"`
	// TrigSeq links CT events to the executions they cause.
	TrigSeq uint64 `json:"trigSeq,omitempty"`
	// Zone tags the simulated process ("" = server, "client" = workload
	// driver) for CE events.
	Zone string `json:"zone,omitempty"`
	// Thrown marks CE events whose callback raised.
	Thrown bool `json:"thrown,omitempty"`
	// Iteration is the loop-iteration count (loop, phase events).
	Iteration uint64 `json:"iter,omitempty"`
	// Runnable is the phase's dispatchable-callback census (phase events).
	Runnable int `json:"runnable,omitempty"`
	// Depths is the queue census of loop events.
	Depths *vm.QueueDepths `json:"depths,omitempty"`
	// Lag is the scheduled-to-fired delay of timer-fire events.
	Lag time.Duration `json:"lag,omitempty"`
	// Dropped is the ring's drop count (summary events only).
	Dropped uint64 `json:"dropped,omitempty"`
	// Events is the retained-event count (summary events only).
	Events int `json:"events,omitempty"`
}

// Format selects a trace serialization.
type Format string

// Supported trace formats.
const (
	// FormatNDJSON writes one Event per line, closing with a summary
	// line — the machine-readable streaming format.
	FormatNDJSON Format = "ndjson"
	// FormatChrome writes the Chrome trace_event JSON array format,
	// loadable in chrome://tracing and https://ui.perfetto.dev.
	FormatChrome Format = "chrome"
)

// ParseFormat validates a format name from a CLI flag.
func ParseFormat(s string) (Format, error) {
	switch Format(s) {
	case FormatNDJSON, FormatChrome:
		return Format(s), nil
	default:
		return "", fmt.Errorf("trace: unknown format %q (want %q or %q)", s, FormatNDJSON, FormatChrome)
	}
}
