package trace_test

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
	"time"

	"asyncg/internal/eventloop"
	"asyncg/internal/events"
	"asyncg/internal/loc"
	"asyncg/internal/trace"
	"asyncg/internal/vm"
)

var update = flag.Bool("update", false, "rewrite the golden trace files")

// The exporter and metrics registry must attach through the unified
// probe surface, including every optional extension.
var (
	_ eventloop.Probe      = (*trace.Exporter)(nil)
	_ eventloop.PhaseProbe = (*trace.Exporter)(nil)
	_ eventloop.LoopProbe  = (*trace.Exporter)(nil)
	_ eventloop.TimerProbe = (*trace.Exporter)(nil)
	_ eventloop.Probe      = (*trace.Metrics)(nil)
	_ eventloop.PhaseProbe = (*trace.Metrics)(nil)
	_ eventloop.LoopProbe  = (*trace.Metrics)(nil)
	_ eventloop.TimerProbe = (*trace.Metrics)(nil)
)

// gl fabricates a stable source location, so golden files do not depend
// on this file's line numbers.
func gl(line int) loc.Loc { return loc.Loc{File: "golden.js", Line: line} }

// runGoldenProgram executes a small deterministic program covering every
// event kind: nextTick (CR/CE), timers with work (CR/CE/timer-fire and a
// phase span), an interval cleared after two fires (API), a dead
// clearTimeout (API), an emitter (OB/CR/CT), and an immediate.
func runGoldenProgram(t *testing.T, cfg trace.ExporterConfig) *trace.Exporter {
	t.Helper()
	loop := eventloop.New(eventloop.Options{})
	exp := trace.NewExporter(loop, cfg)
	loop.Probes().Attach(exp)

	fires := 0
	var intervalID uint64
	main := vm.NewFuncAt("main", gl(1), func([]vm.Value) vm.Value {
		loop.NextTick(gl(2), vm.NewFuncAt("tick1", gl(2), func([]vm.Value) vm.Value {
			loop.Work(500 * time.Microsecond)
			return vm.Undefined
		}))
		em := events.New(loop, "chan", gl(3))
		em.On(gl(4), "msg", vm.NewFuncAt("onMsg", gl(4), func([]vm.Value) vm.Value {
			return vm.Undefined
		}))
		loop.SetTimeout(gl(5), vm.NewFuncAt("timer1", gl(5), func([]vm.Value) vm.Value {
			loop.Work(2 * time.Millisecond)
			em.Emit(gl(6), "msg", "hello")
			loop.SetImmediate(gl(7), vm.NewFuncAt("imm1", gl(7), func([]vm.Value) vm.Value {
				return vm.Undefined
			}))
			return vm.Undefined
		}), 5*time.Millisecond)
		intervalID = loop.SetInterval(gl(8), vm.NewFuncAt("beat", gl(8), func([]vm.Value) vm.Value {
			fires++
			if fires == 2 {
				loop.ClearInterval(gl(9), intervalID)
			}
			return vm.Undefined
		}), 3*time.Millisecond)
		loop.ClearTimeout(gl(10), 9999) // unknown id: bare API event
		return vm.Undefined
	})
	if err := loop.Run(main); err != nil {
		t.Fatal(err)
	}
	if fires != 2 {
		t.Fatalf("interval fired %d times", fires)
	}
	return exp
}

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run `go test ./internal/trace -run Golden -update` to create it)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s drifted from golden output.\n--- got ---\n%s\n--- want ---\n%s", name, got, want)
	}
}

func TestGoldenNDJSON(t *testing.T) {
	exp := runGoldenProgram(t, trace.ExporterConfig{Loops: true})
	var buf bytes.Buffer
	if err := exp.WriteTo(&buf, trace.FormatNDJSON); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "golden.ndjson", buf.Bytes())
}

func TestGoldenChrome(t *testing.T) {
	exp := runGoldenProgram(t, trace.ExporterConfig{Loops: true})
	var buf bytes.Buffer
	if err := exp.WriteTo(&buf, trace.FormatChrome); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "golden_chrome.json", buf.Bytes())
}

// TestChromeSchema validates the acceptance shape: the chrome output is
// a JSON array whose every element carries name, ph, ts, pid, and tid.
func TestChromeSchema(t *testing.T) {
	exp := runGoldenProgram(t, trace.ExporterConfig{Loops: true})
	var buf bytes.Buffer
	if err := exp.WriteTo(&buf, trace.FormatChrome); err != nil {
		t.Fatal(err)
	}
	var arr []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &arr); err != nil {
		t.Fatalf("chrome output is not a JSON array: %v", err)
	}
	if len(arr) == 0 {
		t.Fatal("empty trace")
	}
	phases := map[string]bool{}
	for i, ev := range arr {
		for _, field := range []string{"name", "ph", "ts", "pid", "tid"} {
			if _, ok := ev[field]; !ok {
				t.Fatalf("event %d lacks %q: %v", i, field, ev)
			}
		}
		phases[ev["ph"].(string)] = true
	}
	// Complete slices, instants, phase spans, and counters all present.
	for _, ph := range []string{"X", "i", "B", "E", "C"} {
		if !phases[ph] {
			t.Errorf("no %q events in chrome trace", ph)
		}
	}
}

// TestNDJSONStreamShape decodes every line and checks kind coverage and
// the closing summary.
func TestNDJSONStreamShape(t *testing.T) {
	exp := runGoldenProgram(t, trace.ExporterConfig{Loops: true})
	var buf bytes.Buffer
	if err := exp.WriteTo(&buf, trace.FormatNDJSON); err != nil {
		t.Fatal(err)
	}
	dec := json.NewDecoder(&buf)
	var (
		kinds = map[trace.Kind]int{}
		last  trace.Event
		n     int
	)
	for dec.More() {
		var ev trace.Event
		if err := dec.Decode(&ev); err != nil {
			t.Fatal(err)
		}
		kinds[ev.Kind]++
		last = ev
		n++
	}
	for _, k := range []trace.Kind{
		trace.KindCR, trace.KindCE, trace.KindCT, trace.KindOB, trace.KindAPI,
		trace.KindPhaseEnter, trace.KindPhaseExit, trace.KindLoop,
		trace.KindTimerFire, trace.KindSummary,
	} {
		if kinds[k] == 0 {
			t.Errorf("no %s events (kinds: %v)", k, kinds)
		}
	}
	if last.Kind != trace.KindSummary {
		t.Fatalf("stream does not end with a summary: %+v", last)
	}
	if last.Events != n-1 || last.Dropped != 0 {
		t.Fatalf("summary accounting: events=%d dropped=%d, stream had %d", last.Events, last.Dropped, n-1)
	}
	// Three timers dispatched: one timeout and two interval fires.
	if kinds[trace.KindTimerFire] != 3 {
		t.Errorf("timer-fire events = %d, want 3", kinds[trace.KindTimerFire])
	}
}

// TestExporterRingCapsDroppedRuns wires a tiny ring through a real run
// and checks the exporter-level accounting.
func TestExporterRingCapsDroppedRuns(t *testing.T) {
	exp := runGoldenProgram(t, trace.ExporterConfig{Capacity: 8, Loops: true})
	if got := len(exp.Events()); got != 8 {
		t.Fatalf("retained %d events, want 8", got)
	}
	if exp.Dropped() == 0 {
		t.Fatal("no drops recorded despite tiny capacity")
	}
	var buf bytes.Buffer
	if err := exp.WriteTo(&buf, trace.FormatNDJSON); err != nil {
		t.Fatal(err)
	}
	dec := json.NewDecoder(&buf)
	var last trace.Event
	for dec.More() {
		if err := dec.Decode(&last); err != nil {
			t.Fatal(err)
		}
	}
	if last.Kind != trace.KindSummary || last.Dropped != exp.Dropped() {
		t.Fatalf("summary = %+v, want dropped %d", last, exp.Dropped())
	}
}

func TestParseFormat(t *testing.T) {
	for _, good := range []string{"ndjson", "chrome"} {
		if _, err := trace.ParseFormat(good); err != nil {
			t.Errorf("ParseFormat(%q) = %v", good, err)
		}
	}
	if _, err := trace.ParseFormat("xml"); err == nil {
		t.Error("ParseFormat accepted xml")
	}
}
