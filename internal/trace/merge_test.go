package trace_test

import (
	"testing"
	"time"

	"asyncg/internal/trace"
	"asyncg/internal/vm"
)

// TestSnapshotMerge: merging sums counters, takes maxima for high-water
// marks, and is commutative.
func TestSnapshotMerge(t *testing.T) {
	mk := func(ticks int64, api string, n int64, lat time.Duration, hwIO int) *trace.Snapshot {
		var h trace.Histogram
		for i := int64(0); i < n; i++ {
			h.Observe(lat)
		}
		return &trace.Snapshot{
			Ticks:      ticks,
			Executions: n,
			Iterations: 2,
			PerPhase:   map[string]trace.PhaseStats{"io": {Ticks: ticks, Busy: lat}},
			PerAPI:     map[string]trace.APIStats{api: {Count: n, Latency: h}},
			QueueHighWater: vm.QueueDepths{
				IO: hwIO,
			},
			TimerLag: trace.LagStats{Count: 1, Total: lat, Max: lat},
		}
	}
	a := mk(3, "setTimeout", 2, 5*time.Millisecond, 4)
	b := mk(5, "socket.on", 3, 9*time.Millisecond, 2)

	merged := &trace.Snapshot{}
	merged.Merge(a)
	merged.Merge(b)

	if merged.Ticks != 8 || merged.Executions != 5 || merged.Iterations != 4 {
		t.Fatalf("merged counters = %d/%d/%d, want 8/5/4", merged.Ticks, merged.Executions, merged.Iterations)
	}
	if got := merged.PerPhase["io"]; got.Ticks != 8 || got.Busy != 14*time.Millisecond {
		t.Fatalf("merged io phase = %+v", got)
	}
	if got := merged.PerAPI["setTimeout"].Count; got != 2 {
		t.Fatalf("setTimeout count = %d, want 2", got)
	}
	if got := merged.PerAPI["socket.on"].Latency.Max; got != 9*time.Millisecond {
		t.Fatalf("socket.on latency max = %v", got)
	}
	if merged.QueueHighWater.IO != 4 {
		t.Fatalf("high-water IO = %d, want max(4,2)", merged.QueueHighWater.IO)
	}
	if merged.TimerLag.Count != 2 || merged.TimerLag.Max != 9*time.Millisecond {
		t.Fatalf("timer lag = %+v", merged.TimerLag)
	}

	// Commutativity: the opposite merge order yields the same aggregate.
	other := &trace.Snapshot{}
	other.Merge(b)
	other.Merge(a)
	if other.Ticks != merged.Ticks || other.PerAPI["setTimeout"].Count != merged.PerAPI["setTimeout"].Count ||
		other.QueueHighWater.IO != merged.QueueHighWater.IO {
		t.Fatal("merge is not commutative")
	}

	// Merging nil is a no-op.
	before := merged.Ticks
	merged.Merge(nil)
	if merged.Ticks != before {
		t.Fatal("Merge(nil) changed the snapshot")
	}
}
