package trace

// DropPolicy decides which event loses when the ring buffer is full.
type DropPolicy int

// Drop policies.
const (
	// DropOldest overwrites the oldest retained event — the trace keeps
	// the most recent window, the right default for "what just
	// happened?" debugging.
	DropOldest DropPolicy = iota
	// DropNewest discards the incoming event — the trace keeps the run's
	// prefix, useful for startup analysis.
	DropNewest
)

// String names the drop policy for configuration output.
func (p DropPolicy) String() string {
	switch p {
	case DropOldest:
		return "drop-oldest"
	case DropNewest:
		return "drop-newest"
	default:
		return "drop-?"
	}
}

// Ring is a bounded event buffer: Push is O(1), memory is O(capacity),
// and the drop counter records how much of the stream fell outside the
// window. It is not safe for concurrent use — probe hooks all run on the
// loop goroutine.
type Ring struct {
	buf     []Event
	head    int // index of the oldest retained event
	n       int // retained count
	dropped uint64
	policy  DropPolicy
}

// NewRing creates a ring holding at most capacity events; capacity < 1
// is treated as 1.
func NewRing(capacity int, policy DropPolicy) *Ring {
	if capacity < 1 {
		capacity = 1
	}
	return &Ring{buf: make([]Event, capacity), policy: policy}
}

// Push records an event, applying the drop policy when full.
func (r *Ring) Push(ev Event) {
	if r.n < len(r.buf) {
		r.buf[(r.head+r.n)%len(r.buf)] = ev
		r.n++
		return
	}
	r.dropped++
	if r.policy == DropNewest {
		return
	}
	// DropOldest: overwrite the head slot and advance the window.
	r.buf[r.head] = ev
	r.head = (r.head + 1) % len(r.buf)
}

// Len returns the number of retained events.
func (r *Ring) Len() int { return r.n }

// Cap returns the ring capacity.
func (r *Ring) Cap() int { return len(r.buf) }

// Dropped returns how many events the policy discarded.
func (r *Ring) Dropped() uint64 { return r.dropped }

// Events returns the retained events, oldest first.
func (r *Ring) Events() []Event {
	out := make([]Event, 0, r.n)
	for i := 0; i < r.n; i++ {
		out = append(out, r.buf[(r.head+i)%len(r.buf)])
	}
	return out
}

// Reset empties the ring and zeroes the drop counter.
func (r *Ring) Reset() {
	r.head, r.n, r.dropped = 0, 0, 0
}
