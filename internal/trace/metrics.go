package trace

import (
	"fmt"
	"io"
	"sort"
	"time"

	"asyncg/internal/vm"
)

// MetricsConfig parameterizes a Metrics registry.
type MetricsConfig struct {
	// IncludeClientZone also counts callbacks of the simulated workload
	// driver. Off by default: the paper's measurements run inside the
	// server process, and the default keeps per-API counts identical to
	// instrument.Counter (Fig. 6b).
	IncludeClientZone bool
}

// PhaseStats aggregates the top-level callbacks of one loop phase.
type PhaseStats struct {
	// Ticks counts top-level callback executions in the phase.
	Ticks int64
	// Busy sums their virtual durations.
	Busy time.Duration
}

// APIStats aggregates the callback executions registered by one API.
type APIStats struct {
	Count int64
	// Latency is the virtual-time execution-duration histogram.
	Latency Histogram
}

// LagStats aggregates timer loop lag (fire time minus deadline).
type LagStats struct {
	Count int64
	Total time.Duration
	Max   time.Duration
}

// Mean returns the average lag.
func (l LagStats) Mean() time.Duration {
	if l.Count == 0 {
		return 0
	}
	return l.Total / time.Duration(l.Count)
}

// Snapshot is a point-in-time copy of the registry, safe to retain after
// the run.
type Snapshot struct {
	// Ticks counts all top-level callback executions.
	Ticks int64
	// Executions counts dispatched callback executions in scope (the
	// Fig. 6b population: nested listener/reaction frames included,
	// engine plumbing and out-of-zone callbacks excluded).
	Executions int64
	// Iterations counts event-loop turns.
	Iterations uint64
	// PerPhase maps phase name to its tick stats.
	PerPhase map[string]PhaseStats
	// PerAPI maps registering API to execution count and latency.
	PerAPI map[string]APIStats
	// QueueHighWater holds the maximum observed depth of each queue.
	QueueHighWater vm.QueueDepths
	// TimerLag aggregates timer fire delays.
	TimerLag LagStats
}

// Merge adds other's aggregates into s: counters and busy times add,
// queue high-water marks and maxima take the larger value, and loop
// iterations add (the merged snapshot describes the union of the runs).
// Merging is commutative, so an aggregate over many runs is independent
// of merge order — the property the analysis server relies on when it
// folds per-job snapshots into its /metrics report.
func (s *Snapshot) Merge(other *Snapshot) {
	if other == nil {
		return
	}
	s.Ticks += other.Ticks
	s.Executions += other.Executions
	s.Iterations += other.Iterations
	if s.PerPhase == nil {
		s.PerPhase = make(map[string]PhaseStats, len(other.PerPhase))
	}
	for phase, ps := range other.PerPhase {
		cur := s.PerPhase[phase]
		cur.Ticks += ps.Ticks
		cur.Busy += ps.Busy
		s.PerPhase[phase] = cur
	}
	if s.PerAPI == nil {
		s.PerAPI = make(map[string]APIStats, len(other.PerAPI))
	}
	for api, as := range other.PerAPI {
		cur := s.PerAPI[api]
		cur.Count += as.Count
		cur.Latency.Merge(as.Latency)
		s.PerAPI[api] = cur
	}
	hw := &s.QueueHighWater
	o := other.QueueHighWater
	if o.NextTick > hw.NextTick {
		hw.NextTick = o.NextTick
	}
	if o.Promise > hw.Promise {
		hw.Promise = o.Promise
	}
	if o.Timer > hw.Timer {
		hw.Timer = o.Timer
	}
	if o.IO > hw.IO {
		hw.IO = o.IO
	}
	if o.Immediate > hw.Immediate {
		hw.Immediate = o.Immediate
	}
	if o.Close > hw.Close {
		hw.Close = o.Close
	}
	s.TimerLag.Count += other.TimerLag.Count
	s.TimerLag.Total += other.TimerLag.Total
	if other.TimerLag.Max > s.TimerLag.Max {
		s.TimerLag.Max = other.TimerLag.Max
	}
}

// APIExecutions returns the per-API execution counts alone — the Fig. 6b
// comparison surface.
func (s *Snapshot) APIExecutions() map[string]int64 {
	out := make(map[string]int64, len(s.PerAPI))
	for api, st := range s.PerAPI {
		out[api] = st.Count
	}
	return out
}

// mframe tracks one in-flight callback frame.
type mframe struct {
	start    time.Duration
	api      string
	phase    string
	counted  bool
	topLevel bool
}

// Metrics computes observability metrics online from the probe stream in
// O(distinct APIs) memory. It implements eventloop.Probe plus the phase,
// loop, and timer extensions and attaches through Loop.Probes() like
// every other consumer.
type Metrics struct {
	clock Clock
	cfg   MetricsConfig

	ticks      int64
	executions int64
	iterations uint64
	perPhase   map[string]*PhaseStats
	perAPI     map[string]*APIStats
	highWater  vm.QueueDepths
	lag        LagStats
	stack      []mframe
}

// NewMetrics creates a registry reading virtual time from clock
// (normally the *eventloop.Loop it attaches to).
func NewMetrics(clock Clock, cfg MetricsConfig) *Metrics {
	return &Metrics{
		clock:    clock,
		cfg:      cfg,
		perPhase: make(map[string]*PhaseStats),
		perAPI:   make(map[string]*APIStats),
	}
}

// Reset returns the registry to its initial state while retaining its
// allocations: per-phase and per-API entries are zeroed in place (and
// skipped by Snapshot until they count again), so a reset registry is
// indistinguishable from a fresh one to every consumer.
func (m *Metrics) Reset() {
	m.ticks, m.executions, m.iterations = 0, 0, 0
	for _, ps := range m.perPhase {
		*ps = PhaseStats{}
	}
	for _, as := range m.perAPI {
		*as = APIStats{}
	}
	m.highWater = vm.QueueDepths{}
	m.lag = LagStats{}
	for i := range m.stack {
		m.stack[i] = mframe{}
	}
	m.stack = m.stack[:0]
}

// inScope mirrors instrument.Counter's population: dispatched callbacks
// only, excluding the synthetic main tick, engine-internal promise
// plumbing, and (by default) the client zone.
func (m *Metrics) inScope(d *vm.Dispatch) bool {
	if d == nil || d.API == "main" || d.API == "promise.passthrough" {
		return false
	}
	if d.Zone == "client" && !m.cfg.IncludeClientZone {
		return false
	}
	return true
}

// FunctionEnter implements eventloop.Probe.
func (m *Metrics) FunctionEnter(fn *vm.Function, info *vm.CallInfo) {
	f := mframe{start: m.clock.Now(), phase: info.Phase, topLevel: info.TopLevel}
	if d := info.Dispatch; m.inScope(d) {
		f.counted = true
		f.api = d.API
		m.executions++
		if _, ok := m.perAPI[f.api]; !ok {
			m.perAPI[f.api] = &APIStats{}
		}
		m.perAPI[f.api].Count++
	}
	if info.TopLevel {
		m.ticks++
		ps, ok := m.perPhase[f.phase]
		if !ok {
			ps = &PhaseStats{}
			m.perPhase[f.phase] = ps
		}
		ps.Ticks++
	}
	m.stack = append(m.stack, f)
}

// FunctionExit implements eventloop.Probe.
func (m *Metrics) FunctionExit(fn *vm.Function, ret vm.Value, thrown *vm.Thrown) {
	if len(m.stack) == 0 {
		return
	}
	f := m.stack[len(m.stack)-1]
	m.stack = m.stack[:len(m.stack)-1]
	dur := m.clock.Now() - f.start
	if f.counted {
		m.perAPI[f.api].Latency.Observe(dur)
	}
	if f.topLevel {
		m.perPhase[f.phase].Busy += dur
	}
}

// APICall implements eventloop.Probe. Registrations and triggers carry
// no metric of their own; execution counting happens at dispatch.
func (m *Metrics) APICall(ev *vm.APIEvent) {}

// PhaseEnter implements the optional phase extension.
func (m *Metrics) PhaseEnter(info *vm.PhaseInfo) {}

// PhaseExit implements the optional phase extension.
func (m *Metrics) PhaseExit(info *vm.PhaseInfo) {}

// LoopIteration implements the optional loop extension, tracking queue
// high-water marks.
func (m *Metrics) LoopIteration(info *vm.LoopInfo) {
	m.iterations = info.Iteration
	d := info.Depths
	if d.NextTick > m.highWater.NextTick {
		m.highWater.NextTick = d.NextTick
	}
	if d.Promise > m.highWater.Promise {
		m.highWater.Promise = d.Promise
	}
	if d.Timer > m.highWater.Timer {
		m.highWater.Timer = d.Timer
	}
	if d.IO > m.highWater.IO {
		m.highWater.IO = d.IO
	}
	if d.Immediate > m.highWater.Immediate {
		m.highWater.Immediate = d.Immediate
	}
	if d.Close > m.highWater.Close {
		m.highWater.Close = d.Close
	}
}

// TimerFired implements the optional timer extension.
func (m *Metrics) TimerFired(info *vm.TimerFire) {
	lag := info.Lag()
	if lag < 0 {
		lag = 0
	}
	m.lag.Count++
	m.lag.Total += lag
	if lag > m.lag.Max {
		m.lag.Max = lag
	}
}

// Snapshot copies the registry's current state.
func (m *Metrics) Snapshot() *Snapshot {
	s := &Snapshot{
		Ticks:          m.ticks,
		Executions:     m.executions,
		Iterations:     m.iterations,
		PerPhase:       make(map[string]PhaseStats, len(m.perPhase)),
		PerAPI:         make(map[string]APIStats, len(m.perAPI)),
		QueueHighWater: m.highWater,
		TimerLag:       m.lag,
	}
	for phase, ps := range m.perPhase {
		if ps.Ticks == 0 && ps.Busy == 0 {
			continue // zeroed by Reset, not yet re-counted
		}
		s.PerPhase[phase] = *ps
	}
	for api, as := range m.perAPI {
		if as.Count == 0 {
			continue // zeroed by Reset, not yet re-counted
		}
		s.PerAPI[api] = *as
	}
	return s
}

// phaseOrder lists phases in the loop's dispatch order for rendering.
var phaseOrder = []string{"main", "nextTick", "promise", "timer", "io", "immediate", "close"}

// WriteText renders the snapshot as an aligned report.
func (s *Snapshot) WriteText(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "metrics — %d ticks over %d loop iterations\n", s.Ticks, s.Iterations); err != nil {
		return err
	}
	fmt.Fprintf(w, "%-10s %10s %14s\n", "phase", "ticks", "busy(vtime)")
	seen := make(map[string]bool)
	writePhase := func(phase string) {
		ps, ok := s.PerPhase[phase]
		if !ok {
			return
		}
		seen[phase] = true
		fmt.Fprintf(w, "%-10s %10d %14s\n", phase, ps.Ticks, ps.Busy)
	}
	for _, phase := range phaseOrder {
		writePhase(phase)
	}
	var rest []string
	for phase := range s.PerPhase {
		if !seen[phase] {
			rest = append(rest, phase)
		}
	}
	sort.Strings(rest)
	for _, phase := range rest {
		writePhase(phase)
	}
	hw := s.QueueHighWater
	fmt.Fprintf(w, "queue high-water: nextTick=%d promise=%d timer=%d io=%d immediate=%d close=%d\n",
		hw.NextTick, hw.Promise, hw.Timer, hw.IO, hw.Immediate, hw.Close)
	if s.TimerLag.Count > 0 {
		fmt.Fprintf(w, "timer lag: %d fires, mean %s, max %s\n",
			s.TimerLag.Count, s.TimerLag.Mean(), s.TimerLag.Max)
	}
	fmt.Fprintf(w, "%-24s %10s %12s %12s %12s\n", "api", "execs", "lat mean", "lat p95", "lat max")
	apis := make([]string, 0, len(s.PerAPI))
	for api := range s.PerAPI {
		apis = append(apis, api)
	}
	sort.Slice(apis, func(i, j int) bool {
		if s.PerAPI[apis[i]].Count != s.PerAPI[apis[j]].Count {
			return s.PerAPI[apis[i]].Count > s.PerAPI[apis[j]].Count
		}
		return apis[i] < apis[j]
	})
	for _, api := range apis {
		as := s.PerAPI[api]
		_, err := fmt.Fprintf(w, "%-24s %10d %12s %12s %12s\n",
			api, as.Count, as.Latency.Mean(), as.Latency.Quantile(0.95), as.Latency.Max)
		if err != nil {
			return err
		}
	}
	return nil
}
