package trace

import (
	"math/bits"
	"time"
)

// histBuckets is the number of power-of-two latency buckets: bucket 0
// holds [0, 1µs), bucket i holds [2^(i-1), 2^i) µs, and the last bucket
// absorbs everything above ~17 minutes of virtual time.
const histBuckets = 31

// Histogram is a fixed-size log₂ latency histogram over virtual time.
// The zero value is ready to use; Observe is O(1) with no allocation, so
// a million-request run costs a constant 31 counters per tracked API.
type Histogram struct {
	Buckets [histBuckets]int64
	Count   int64
	Sum     time.Duration
	Max     time.Duration
}

// bucketOf maps a duration to its bucket index.
func bucketOf(d time.Duration) int {
	us := d.Microseconds()
	if us <= 0 {
		return 0
	}
	b := bits.Len64(uint64(us)) // [2^(b-1), 2^b) µs
	if b >= histBuckets {
		b = histBuckets - 1
	}
	return b
}

// BucketBound returns the exclusive upper bound of bucket i.
func BucketBound(i int) time.Duration {
	if i <= 0 {
		return time.Microsecond
	}
	return time.Duration(1<<uint(i)) * time.Microsecond
}

// Observe records one latency sample.
func (h *Histogram) Observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	h.Buckets[bucketOf(d)]++
	h.Count++
	h.Sum += d
	if d > h.Max {
		h.Max = d
	}
}

// Merge adds other's samples into h. Sums and counts add, Max takes the
// larger value; merging is commutative and associative, so aggregating
// per-run histograms in any order yields the same result.
func (h *Histogram) Merge(other Histogram) {
	for i, c := range other.Buckets {
		h.Buckets[i] += c
	}
	h.Count += other.Count
	h.Sum += other.Sum
	if other.Max > h.Max {
		h.Max = other.Max
	}
}

// Mean returns the average observed latency.
func (h *Histogram) Mean() time.Duration {
	if h.Count == 0 {
		return 0
	}
	return h.Sum / time.Duration(h.Count)
}

// Quantile returns an upper bound for the q-quantile (0 < q <= 1) using
// the containing bucket's bound — the usual log-histogram estimate.
func (h *Histogram) Quantile(q float64) time.Duration {
	if h.Count == 0 {
		return 0
	}
	target := int64(q * float64(h.Count))
	if target < 1 {
		target = 1
	}
	var seen int64
	for i, c := range h.Buckets {
		seen += c
		if seen >= target {
			b := BucketBound(i)
			if b > h.Max {
				return h.Max
			}
			return b
		}
	}
	return h.Max
}
