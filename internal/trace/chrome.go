package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"time"
)

// Chrome trace_event constants: one synthetic process, the callback
// track, and a separate track for loop-phase spans so phase B/E pairs
// never interleave with callback slices.
const (
	chromePID      = 1
	chromeTIDMain  = 1
	chromeTIDPhase = 2
)

// chromeEvent is one record of the Chrome trace_event JSON array format
// (the subset Perfetto and chrome://tracing load: name/ph/ts/pid/tid plus
// optional dur and args).
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"` // microseconds
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	Dur  float64        `json:"dur,omitempty"`
	Cat  string         `json:"cat,omitempty"`
	S    string         `json:"s,omitempty"` // instant-event scope
	Args map[string]any `json:"args,omitempty"`
}

func micros(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e3 }

// chromeFrom maps one trace Event to its Chrome representation, or
// returns false for events with no sensible rendering.
func chromeFrom(ev *Event) (chromeEvent, bool) {
	switch ev.Kind {
	case KindCE:
		name := ev.Name
		if name == "" {
			name = ev.API
		}
		return chromeEvent{
			Name: name, Ph: "X", TS: micros(ev.TS), Dur: micros(ev.Dur),
			PID: chromePID, TID: chromeTIDMain, Cat: "callback",
			Args: map[string]any{
				"tick": ev.Tick, "phase": ev.Phase, "api": ev.API,
				"zone": ev.Zone, "thrown": ev.Thrown,
			},
		}, true
	case KindCR, KindCT, KindOB, KindAPI:
		return chromeEvent{
			Name: fmt.Sprintf("%s %s", ev.Kind, ev.API),
			Ph:   "i", TS: micros(ev.TS), PID: chromePID, TID: chromeTIDMain,
			Cat: "api", S: "t",
			Args: map[string]any{
				"name": ev.Name, "loc": ev.Loc, "obj": ev.Obj,
				"regSeq": ev.RegSeq, "trigSeq": ev.TrigSeq,
			},
		}, true
	case KindPhaseEnter, KindPhaseExit:
		ph := "B"
		if ev.Kind == KindPhaseExit {
			ph = "E"
		}
		return chromeEvent{
			Name: "phase:" + ev.Phase, Ph: ph, TS: micros(ev.TS),
			PID: chromePID, TID: chromeTIDPhase, Cat: "phase",
			Args: map[string]any{"iteration": ev.Iteration, "runnable": ev.Runnable},
		}, true
	case KindLoop:
		ce := chromeEvent{
			Name: "queues", Ph: "C", TS: micros(ev.TS),
			PID: chromePID, TID: chromeTIDPhase,
		}
		if d := ev.Depths; d != nil {
			ce.Args = map[string]any{
				"nextTick": d.NextTick, "promise": d.Promise, "timer": d.Timer,
				"io": d.IO, "immediate": d.Immediate, "close": d.Close,
			}
		}
		return ce, true
	case KindTimerFire:
		return chromeEvent{
			Name: "timer-fire", Ph: "i", TS: micros(ev.TS),
			PID: chromePID, TID: chromeTIDMain, Cat: "timer", S: "t",
			Args: map[string]any{"timer": ev.Obj, "lag_us": micros(ev.Lag)},
		}, true
	default:
		return chromeEvent{}, false
	}
}

// WriteChrome serializes events as a Chrome trace_event JSON array.
// Open the file in chrome://tracing or https://ui.perfetto.dev. A final
// instant event reports the ring's drop count when events were lost.
func WriteChrome(w io.Writer, events []Event, dropped uint64) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString("[\n"); err != nil {
		return err
	}
	first := true
	write := func(ce chromeEvent) error {
		if !first {
			if _, err := bw.WriteString(",\n"); err != nil {
				return err
			}
		}
		first = false
		buf, err := json.Marshal(ce)
		if err != nil {
			return err
		}
		_, err = bw.Write(buf)
		return err
	}
	var last time.Duration
	for i := range events {
		ce, ok := chromeFrom(&events[i])
		if !ok {
			continue
		}
		if events[i].TS > last {
			last = events[i].TS
		}
		if err := write(ce); err != nil {
			return err
		}
	}
	if dropped > 0 {
		if err := write(chromeEvent{
			Name: "trace-dropped", Ph: "i", TS: micros(last),
			PID: chromePID, TID: chromeTIDMain, S: "g",
			Args: map[string]any{"dropped": dropped},
		}); err != nil {
			return err
		}
	}
	if _, err := bw.WriteString("\n]\n"); err != nil {
		return err
	}
	return bw.Flush()
}
