package trace

import (
	"io"
	"strings"
	"time"

	"asyncg/internal/vm"
)

// DefaultCapacity is the exporter's ring size when the config leaves it 0.
const DefaultCapacity = 65536

// ExporterConfig parameterizes an Exporter.
type ExporterConfig struct {
	// Capacity bounds the retained event count; 0 means DefaultCapacity.
	Capacity int
	// Policy picks which events to discard when the ring is full.
	Policy DropPolicy
	// Functions also records nested (non-top-level) callback frames as
	// CE events. Off by default: top-level CEs are the tick structure;
	// nested frames multiply event volume.
	Functions bool
	// Loops records one event per loop iteration with queue depths. Off
	// by default; metrics consume iteration data without the ring cost.
	Loops bool
}

// frame tracks one in-flight callback execution.
type frame struct {
	start    time.Duration
	tick     int
	phase    string
	api      string
	name     string
	zone     string
	topLevel bool
}

// Exporter converts the probe stream into structured Events in a bounded
// ring buffer. It implements eventloop.Probe plus the phase, loop, and
// timer extensions, so it attaches exactly like the Async Graph builder:
//
//	exp := trace.NewExporter(loop, trace.ExporterConfig{})
//	loop.Probes().Attach(exp)
//	... run ...
//	exp.WriteTo(w, trace.FormatNDJSON)
type Exporter struct {
	clock Clock
	cfg   ExporterConfig
	ring  *Ring
	seq   uint64
	tick  int
	stack []frame
}

// NewExporter creates an exporter reading virtual time from clock
// (normally the *eventloop.Loop it attaches to).
func NewExporter(clock Clock, cfg ExporterConfig) *Exporter {
	if cfg.Capacity == 0 {
		cfg.Capacity = DefaultCapacity
	}
	return &Exporter{clock: clock, cfg: cfg, ring: NewRing(cfg.Capacity, cfg.Policy)}
}

// Reset returns the exporter to its initial state — empty ring, sequence
// and tick counters back to zero — while keeping the ring's backing
// storage, so a reset exporter records a subsequent run exactly as a
// fresh one would.
func (e *Exporter) Reset() {
	e.ring.Reset()
	e.seq = 0
	e.tick = 0
	for i := range e.stack {
		e.stack[i] = frame{}
	}
	e.stack = e.stack[:0]
}

// emit stamps the sequence number and pushes the event.
func (e *Exporter) emit(ev Event) {
	e.seq++
	ev.Seq = e.seq
	e.ring.Push(ev)
}

// Ring exposes the underlying buffer (tests, custom sinks).
func (e *Exporter) Ring() *Ring { return e.ring }

// Dropped returns how many events fell outside the ring window.
func (e *Exporter) Dropped() uint64 { return e.ring.Dropped() }

// Events returns the retained events, oldest first.
func (e *Exporter) Events() []Event { return e.ring.Events() }

// FunctionEnter implements eventloop.Probe.
func (e *Exporter) FunctionEnter(fn *vm.Function, info *vm.CallInfo) {
	f := frame{start: e.clock.Now(), phase: info.Phase, topLevel: info.TopLevel, name: fn.Name}
	if info.TopLevel {
		e.tick++
		f.tick = e.tick
	}
	if d := info.Dispatch; d != nil {
		f.api = d.API
		f.zone = d.Zone
	}
	e.stack = append(e.stack, f)
}

// FunctionExit implements eventloop.Probe. The CE event is emitted here
// so it can carry the execution's virtual duration.
func (e *Exporter) FunctionExit(fn *vm.Function, ret vm.Value, thrown *vm.Thrown) {
	if len(e.stack) == 0 {
		return
	}
	f := e.stack[len(e.stack)-1]
	e.stack = e.stack[:len(e.stack)-1]
	if !f.topLevel && !e.cfg.Functions {
		return
	}
	e.emit(Event{
		Kind: KindCE, TS: f.start, Dur: e.clock.Now() - f.start,
		Tick: f.tick, Phase: f.phase, API: f.api, Name: f.name,
		Zone: f.zone, Thrown: thrown != nil,
	})
}

// APICall implements eventloop.Probe: object bindings become OB events,
// registrations CR events, triggers CT events, and anything else (clears,
// removals) a generic API event.
func (e *Exporter) APICall(ev *vm.APIEvent) {
	now := e.clock.Now()
	loc := ev.Loc.String()
	structural := false
	if strings.HasPrefix(ev.API, "new ") {
		structural = true
		e.emit(Event{
			Kind: KindOB, TS: now, API: ev.API, Loc: loc,
			Obj: ev.Receiver.ID, ObjKind: string(ev.Receiver.Kind),
		})
	}
	for _, reg := range ev.Regs {
		structural = true
		name := ""
		if reg.Callback != nil {
			name = reg.Callback.Name
		}
		e.emit(Event{
			Kind: KindCR, TS: now, API: ev.API, Name: name, Loc: loc,
			Obj: ev.Receiver.ID, ObjKind: string(ev.Receiver.Kind),
			RegSeq: reg.Seq, Phase: reg.Phase,
		})
	}
	if ev.TriggerSeq != 0 {
		structural = true
		e.emit(Event{
			Kind: KindCT, TS: now, API: ev.API, Name: ev.Event, Loc: loc,
			Obj: ev.Receiver.ID, ObjKind: string(ev.Receiver.Kind),
			TrigSeq: ev.TriggerSeq,
		})
	}
	if !structural {
		e.emit(Event{
			Kind: KindAPI, TS: now, API: ev.API, Name: ev.Event, Loc: loc,
			Obj: ev.Receiver.ID, ObjKind: string(ev.Receiver.Kind),
		})
	}
}

// PhaseEnter implements the optional phase extension.
func (e *Exporter) PhaseEnter(info *vm.PhaseInfo) {
	e.emit(Event{
		Kind: KindPhaseEnter, TS: info.Now, Phase: info.Phase,
		Iteration: info.Iteration, Runnable: info.Runnable,
	})
}

// PhaseExit implements the optional phase extension.
func (e *Exporter) PhaseExit(info *vm.PhaseInfo) {
	e.emit(Event{
		Kind: KindPhaseExit, TS: info.Now, Phase: info.Phase,
		Iteration: info.Iteration, Runnable: info.Runnable,
	})
}

// LoopIteration implements the optional loop extension.
func (e *Exporter) LoopIteration(info *vm.LoopInfo) {
	if !e.cfg.Loops {
		return
	}
	depths := info.Depths
	e.emit(Event{
		Kind: KindLoop, TS: info.Now, Iteration: info.Iteration, Depths: &depths,
	})
}

// TimerFired implements the optional timer extension.
func (e *Exporter) TimerFired(info *vm.TimerFire) {
	e.emit(Event{
		Kind: KindTimerFire, TS: info.Fired, Obj: info.ID,
		ObjKind: string(vm.ObjTimer), Lag: info.Lag(),
	})
}

// WriteTo serializes the retained events in the given format.
func (e *Exporter) WriteTo(w io.Writer, format Format) error {
	switch format {
	case FormatChrome:
		return WriteChrome(w, e.Events(), e.Dropped())
	default:
		return WriteNDJSON(w, e.Events(), e.Dropped())
	}
}
