package trace

import (
	"bufio"
	"encoding/json"
	"io"
)

// WriteNDJSON streams events as newline-delimited JSON, one Event per
// line, closing with a summary line that carries the retained/dropped
// accounting — the format online consumers (and the golden tests) read.
func WriteNDJSON(w io.Writer, events []Event, dropped uint64) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for i := range events {
		if err := enc.Encode(&events[i]); err != nil {
			return err
		}
	}
	if err := enc.Encode(Event{Kind: KindSummary, Events: len(events), Dropped: dropped}); err != nil {
		return err
	}
	return bw.Flush()
}
