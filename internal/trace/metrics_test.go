package trace_test

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"asyncg/internal/eventloop"
	"asyncg/internal/trace"
	"asyncg/internal/vm"
)

func runMetricsProgram(t *testing.T, cfg trace.MetricsConfig) *trace.Metrics {
	t.Helper()
	// Disable the per-iteration charge so lag arithmetic below is exact.
	loop := eventloop.New(eventloop.Options{IterationCost: -1})
	m := trace.NewMetrics(loop, cfg)
	loop.Probes().Attach(m)

	main := vm.NewFuncAt("main", gl(1), func([]vm.Value) vm.Value {
		for i := 0; i < 3; i++ {
			loop.NextTick(gl(2), vm.NewFuncAt("tick", gl(2), func([]vm.Value) vm.Value {
				loop.Work(100 * time.Microsecond)
				return vm.Undefined
			}))
		}
		loop.SetTimeout(gl(3), vm.NewFuncAt("t1", gl(3), func([]vm.Value) vm.Value {
			loop.Work(4 * time.Millisecond) // delays the second timer: loop lag
			return vm.Undefined
		}), time.Millisecond)
		loop.SetTimeout(gl(4), vm.NewFuncAt("t2", gl(4), func([]vm.Value) vm.Value {
			return vm.Undefined
		}), 2*time.Millisecond)
		loop.SetImmediate(gl(5), vm.NewFuncAt("imm", gl(5), func([]vm.Value) vm.Value {
			return vm.Undefined
		}))
		return vm.Undefined
	})
	if err := loop.Run(main); err != nil {
		t.Fatal(err)
	}
	return m
}

func TestMetricsSnapshot(t *testing.T) {
	m := runMetricsProgram(t, trace.MetricsConfig{})
	s := m.Snapshot()

	// 1 main + 3 ticks + 2 timers + 1 immediate top-level callbacks.
	if s.Ticks != 7 {
		t.Errorf("Ticks = %d, want 7", s.Ticks)
	}
	// Everything except the synthetic main tick is a dispatched, in-scope
	// execution.
	if s.Executions != 6 {
		t.Errorf("Executions = %d, want 6", s.Executions)
	}
	wantPhaseTicks := map[string]int64{"main": 1, "nextTick": 3, "timer": 2, "immediate": 1}
	for phase, want := range wantPhaseTicks {
		if got := s.PerPhase[phase].Ticks; got != want {
			t.Errorf("PerPhase[%q].Ticks = %d, want %d", phase, got, want)
		}
	}
	// Virtual-time accounting: the three ticks burned 300µs total.
	if got := s.PerPhase["nextTick"].Busy; got != 300*time.Microsecond {
		t.Errorf("nextTick Busy = %s, want 300µs", got)
	}
	wantAPI := map[string]int64{"process.nextTick": 3, "setTimeout": 2, "setImmediate": 1}
	for api, want := range wantAPI {
		if got := s.PerAPI[api].Count; got != want {
			t.Errorf("PerAPI[%q].Count = %d, want %d", api, got, want)
		}
	}
	if got := s.APIExecutions()["setTimeout"]; got != 2 {
		t.Errorf("APIExecutions()[setTimeout] = %d", got)
	}
	// setTimeout latencies: one 4ms, one ~0. Mean is half the sum; max 4ms.
	if got := s.PerAPI["setTimeout"].Latency.Max; got != 4*time.Millisecond {
		t.Errorf("setTimeout latency max = %s, want 4ms", got)
	}
	if s.PerAPI["setTimeout"].Latency.Count != 2 {
		t.Errorf("setTimeout latency count = %d", s.PerAPI["setTimeout"].Latency.Count)
	}
	// Depths are sampled at iteration boundaries: the first boundary sees
	// both timers pending and the immediate armed (the tick queue has
	// already drained — microtasks never survive to a boundary).
	if s.QueueHighWater.Timer != 2 {
		t.Errorf("timer high-water = %d, want 2", s.QueueHighWater.Timer)
	}
	if s.QueueHighWater.Immediate != 1 {
		t.Errorf("immediate high-water = %d, want 1", s.QueueHighWater.Immediate)
	}
	if s.QueueHighWater.NextTick != 0 {
		t.Errorf("nextTick high-water = %d, want 0", s.QueueHighWater.NextTick)
	}
	// t1 fires on time; t2 (due at 2ms) is delayed behind t1's 4ms of
	// work until 5ms: 3ms of loop lag.
	if s.TimerLag.Count != 2 {
		t.Errorf("TimerLag.Count = %d, want 2", s.TimerLag.Count)
	}
	if got := s.TimerLag.Max; got != 3*time.Millisecond {
		t.Errorf("TimerLag.Max = %s, want 3ms", got)
	}
	if s.Iterations == 0 {
		t.Error("Iterations = 0, loop extension never fired")
	}
}

func TestMetricsSnapshotIsACopy(t *testing.T) {
	m := runMetricsProgram(t, trace.MetricsConfig{})
	s1 := m.Snapshot()
	s1.PerAPI["setTimeout"] = trace.APIStats{Count: 999}
	s1.PerPhase["main"] = trace.PhaseStats{Ticks: 999}
	s2 := m.Snapshot()
	if s2.PerAPI["setTimeout"].Count == 999 || s2.PerPhase["main"].Ticks == 999 {
		t.Fatal("Snapshot shares state with the registry")
	}
}

func TestMetricsWriteText(t *testing.T) {
	m := runMetricsProgram(t, trace.MetricsConfig{})
	var buf bytes.Buffer
	if err := m.Snapshot().WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"metrics —", "nextTick", "setTimeout", "queue high-water", "timer lag"} {
		if !strings.Contains(out, want) {
			t.Errorf("text report lacks %q:\n%s", want, out)
		}
	}
}

func TestHistogram(t *testing.T) {
	var h trace.Histogram
	if h.Mean() != 0 || h.Quantile(0.5) != 0 {
		t.Fatal("zero histogram not zero")
	}
	h.Observe(0)
	h.Observe(time.Microsecond)
	h.Observe(3 * time.Microsecond)
	h.Observe(100 * time.Microsecond)
	h.Observe(-time.Second) // clamped to 0
	if h.Count != 5 {
		t.Fatalf("count = %d", h.Count)
	}
	if h.Max != 100*time.Microsecond {
		t.Fatalf("max = %s", h.Max)
	}
	if got := h.Mean(); got != 104*time.Microsecond/5 {
		t.Fatalf("mean = %s", got)
	}
	// p100 never exceeds the observed max.
	if got := h.Quantile(1); got != 100*time.Microsecond {
		t.Fatalf("p100 = %s", got)
	}
	if got := h.Quantile(0.5); got > 4*time.Microsecond {
		t.Fatalf("p50 = %s", got)
	}
	// A huge sample lands in the final bucket without overflow.
	h.Observe(48 * time.Hour)
	if h.Max != 48*time.Hour {
		t.Fatalf("max = %s", h.Max)
	}
}
