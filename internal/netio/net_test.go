package netio

import (
	"strings"
	"testing"

	"asyncg/internal/eventloop"
	"asyncg/internal/loc"
	"asyncg/internal/vm"
)

// run executes program on a fresh loop+network.
func run(t *testing.T, program func(l *eventloop.Loop, n *Network)) *eventloop.Loop {
	t.Helper()
	l := eventloop.New(eventloop.Options{TickLimit: 10_000})
	n := New(l, Options{})
	main := vm.NewFunc("main", func([]vm.Value) vm.Value {
		program(l, n)
		return vm.Undefined
	})
	if err := l.Run(main); err != nil {
		t.Fatal(err)
	}
	return l
}

func fn(name string, f func(args []vm.Value)) *vm.Function {
	return vm.NewFunc(name, func(args []vm.Value) vm.Value {
		f(args)
		return vm.Undefined
	})
}

func TestConnectDeliversConnectionEvent(t *testing.T) {
	var gotConn, gotConnect bool
	run(t, func(l *eventloop.Loop, n *Network) {
		srv, err := n.Listen(loc.Here(), 5000)
		if err != nil {
			t.Fatal(err)
		}
		srv.On(loc.Here(), EventConnection, fn("accept", func(args []vm.Value) {
			if _, ok := args[0].(*Socket); !ok {
				t.Errorf("connection arg = %T", args[0])
			}
			gotConn = true
		}))
		client := n.Connect(loc.Here(), 5000)
		client.On(loc.Here(), EventConnect, fn("onconnect", func([]vm.Value) {
			gotConnect = true
		}))
	})
	if !gotConn || !gotConnect {
		t.Fatalf("connection=%v connect=%v", gotConn, gotConnect)
	}
}

func TestListenTwiceFails(t *testing.T) {
	run(t, func(l *eventloop.Loop, n *Network) {
		if _, err := n.Listen(loc.Here(), 80); err != nil {
			t.Fatal(err)
		}
		if _, err := n.Listen(loc.Here(), 80); err == nil {
			t.Error("second Listen on same port succeeded")
		}
	})
}

func TestConnectToClosedPortEmitsError(t *testing.T) {
	var errMsg string
	run(t, func(l *eventloop.Loop, n *Network) {
		c := n.Connect(loc.Here(), 9999)
		c.On(loc.Here(), EventError, fn("onerr", func(args []vm.Value) {
			errMsg = vm.ToString(args[0])
		}))
	})
	if !strings.Contains(errMsg, "ECONNREFUSED") {
		t.Fatalf("error = %q", errMsg)
	}
}

func TestDataFlowsBothDirections(t *testing.T) {
	var serverGot, clientGot string
	run(t, func(l *eventloop.Loop, n *Network) {
		srv, _ := n.Listen(loc.Here(), 5000)
		srv.On(loc.Here(), EventConnection, fn("accept", func(args []vm.Value) {
			remote := args[0].(*Socket)
			remote.On(loc.Here(), EventData, fn("srvData", func(args []vm.Value) {
				serverGot += string(args[0].([]byte))
				remote.WriteString(loc.Here(), "pong")
			}))
		}))
		client := n.Connect(loc.Here(), 5000)
		client.On(loc.Here(), EventConnect, fn("go", func([]vm.Value) {
			client.WriteString(loc.Here(), "ping")
		}))
		client.On(loc.Here(), EventData, fn("cliData", func(args []vm.Value) {
			clientGot += string(args[0].([]byte))
			client.End(loc.Here(), nil)
		}))
	})
	if serverGot != "ping" || clientGot != "pong" {
		t.Fatalf("server=%q client=%q", serverGot, clientGot)
	}
}

func TestEndDeliversEndThenClose(t *testing.T) {
	var order []string
	run(t, func(l *eventloop.Loop, n *Network) {
		srv, _ := n.Listen(loc.Here(), 5000)
		srv.On(loc.Here(), EventConnection, fn("accept", func(args []vm.Value) {
			remote := args[0].(*Socket)
			remote.On(loc.Here(), EventEnd, fn("onEnd", func([]vm.Value) {
				order = append(order, "end")
			}))
			remote.On(loc.Here(), EventClose, fn("onClose", func([]vm.Value) {
				order = append(order, "close")
			}))
		}))
		client := n.Connect(loc.Here(), 5000)
		client.On(loc.Here(), EventConnect, fn("go", func([]vm.Value) {
			client.End(loc.Here(), nil)
		}))
	})
	if len(order) != 2 || order[0] != "end" || order[1] != "close" {
		t.Fatalf("order = %v", order)
	}
}

func TestWriteAfterEndEmitsError(t *testing.T) {
	var gotErr bool
	run(t, func(l *eventloop.Loop, n *Network) {
		a, _ := n.Pipe(loc.Here())
		a.On(loc.Here(), EventError, fn("onerr", func([]vm.Value) { gotErr = true }))
		a.End(loc.Here(), nil)
		a.WriteString(loc.Here(), "too late")
	})
	if !gotErr {
		t.Fatal("no error for write-after-end")
	}
}

func TestCloseEventsRunInClosePhase(t *testing.T) {
	// The paper's §II-B: close handlers have the lowest priority. The
	// socket 'close' must arrive after an immediate scheduled in the
	// same iteration window.
	var order []string
	run(t, func(l *eventloop.Loop, n *Network) {
		a, b := n.Pipe(loc.Here())
		b.On(loc.Here(), EventClose, fn("onClose", func([]vm.Value) {
			order = append(order, "close")
		}))
		a.On(loc.Here(), EventClose, fn("onCloseA", func([]vm.Value) {}))
		a.End(loc.Here(), nil)
		l.SetImmediate(loc.Here(), fn("imm", func([]vm.Value) {
			order = append(order, "immediate")
		}))
	})
	if len(order) != 2 || order[0] != "immediate" || order[1] != "close" {
		t.Fatalf("order = %v", order)
	}
}

func TestServerCloseStopsAccepting(t *testing.T) {
	var refused, closed bool
	run(t, func(l *eventloop.Loop, n *Network) {
		srv, _ := n.Listen(loc.Here(), 5000)
		srv.On(loc.Here(), EventClose, fn("srvClose", func([]vm.Value) { closed = true }))
		srv.Close(loc.Here())
		c := n.Connect(loc.Here(), 5000)
		c.On(loc.Here(), EventError, fn("onerr", func([]vm.Value) { refused = true }))
	})
	if !refused || !closed {
		t.Fatalf("refused=%v closed=%v", refused, closed)
	}
}

func TestDeliveriesArriveInIOPhaseTicks(t *testing.T) {
	run(t, func(l *eventloop.Loop, n *Network) {
		a, b := n.Pipe(loc.Here())
		b.On(loc.Here(), EventData, fn("onData", func([]vm.Value) {
			if got := l.Phase(); got != eventloop.PhaseIO {
				t.Errorf("data delivered in phase %s, want io", got)
			}
		}))
		a.WriteString(loc.Here(), "x")
	})
}

func TestLatencyAdvancesVirtualClock(t *testing.T) {
	l := run(t, func(l *eventloop.Loop, n *Network) {
		a, b := n.Pipe(loc.Here())
		b.On(loc.Here(), EventData, fn("onData", func([]vm.Value) {}))
		a.WriteString(loc.Here(), "x")
	})
	if l.Now() < DefaultLatency {
		t.Fatalf("clock = %v, want >= %v", l.Now(), DefaultLatency)
	}
}

func TestChunksArriveInOrder(t *testing.T) {
	var got []string
	run(t, func(l *eventloop.Loop, n *Network) {
		a, b := n.Pipe(loc.Here())
		b.On(loc.Here(), EventData, fn("onData", func(args []vm.Value) {
			got = append(got, string(args[0].([]byte)))
		}))
		a.WriteString(loc.Here(), "one")
		a.WriteString(loc.Here(), "two")
		a.WriteString(loc.Here(), "three")
	})
	if strings.Join(got, ",") != "one,two,three" {
		t.Fatalf("got = %v", got)
	}
}

func TestDestroySkipsEndEvent(t *testing.T) {
	var sawEnd, sawClose bool
	run(t, func(l *eventloop.Loop, n *Network) {
		a, b := n.Pipe(loc.Here())
		b.On(loc.Here(), EventEnd, fn("onEnd", func([]vm.Value) { sawEnd = true }))
		b.On(loc.Here(), EventClose, fn("onClose", func([]vm.Value) { sawClose = true }))
		a.Destroy(loc.Here())
	})
	if sawEnd {
		t.Error("destroy delivered 'end'")
	}
	if !sawClose {
		t.Error("destroy did not deliver 'close'")
	}
}
