// Package netio simulates a non-blocking network on the event loop's
// virtual clock — the substrate that plays the role of the OS/libuv I/O
// layer in the paper's external-scheduling category. Listeners, sockets
// and their 'connection' / 'data' / 'end' / 'close' events are delivered
// through the loop's I/O poll phase with deterministic latencies, so a
// program's Async Graph is reproducible run after run.
//
// Sockets and servers are event emitters: all user-visible callback
// registration happens through the events package, which means the Async
// Graph models network I/O with the same OB/CR/CT/CE machinery as any
// other emitter (exactly how Node's net module looks to AsyncG).
package netio

import (
	"fmt"
	"time"

	"asyncg/internal/eventloop"
	"asyncg/internal/events"
	"asyncg/internal/loc"
	"asyncg/internal/vm"
)

// Socket / server event names, matching Node's net module.
const (
	EventConnection = "connection"
	EventConnect    = "connect"
	EventData       = "data"
	EventEnd        = "end"
	EventClose      = "close"
	EventError      = "error"
	EventListening  = "listening"
)

// DefaultLatency is the one-way delivery latency applied when Options
// leaves Latency zero.
const DefaultLatency = 500 * time.Microsecond

// Options configures a Network.
type Options struct {
	// Latency is the one-way virtual latency of every delivery.
	Latency time.Duration
}

// Network owns the simulated wires: port bindings and in-flight
// deliveries. One Network per loop.
type Network struct {
	loop      *eventloop.Loop
	latency   time.Duration
	listeners map[int]*Server
	connSeq   int
}

// New creates a network bound to the loop.
func New(l *eventloop.Loop, opts Options) *Network {
	if opts.Latency == 0 {
		opts.Latency = DefaultLatency
	}
	return &Network{
		loop:      l,
		latency:   opts.Latency,
		listeners: make(map[int]*Server),
	}
}

// Loop returns the event loop this network schedules on.
func (n *Network) Loop() *eventloop.Loop { return n.loop }

// Latency returns the configured one-way latency.
func (n *Network) Latency() time.Duration { return n.latency }

// deliver schedules fn on the I/O poll phase after the network latency.
// Internal deliveries dispatch with the given API tag and no
// registration: the Async Graph shows the externally-triggered work via
// the emitter events fired inside, as with real Node internals.
//
// key is the delivery's independence key for partial-order reduction:
// deliveries on distinct connections (distinct non-zero keys) touch
// disjoint socket state, so their poll-batch order commutes. Deliveries
// that touch shared network state (handshakes mutate the listener's
// accept queue and allocate the server-side socket) pass 0.
func (n *Network) deliver(api string, key uint64, fn func()) {
	wrapped := vm.NewFuncAt("("+api+")", loc.Internal, func([]vm.Value) vm.Value {
		fn()
		return vm.Undefined
	})
	n.loop.ScheduleIOKeyedAt(n.loop.Now()+n.loop.PerturbLatency(n.latency), key, wrapped, nil, &vm.Dispatch{API: api})
}

// Server is a listening endpoint. It is an event emitter: 'connection'
// fires with the server-side *Socket of each accepted connection,
// 'listening' after Listen, and 'close' after Close.
type Server struct {
	*events.Emitter
	net     *Network
	port    int
	open    bool
	sockets []*Socket
	key     uint64 // independence key for server-scoped deliveries
}

// Listen binds a server to the port. Binding an occupied port returns an
// error (EADDRINUSE).
func (n *Network) Listen(at loc.Loc, port int) (*Server, error) {
	if _, taken := n.listeners[port]; taken {
		return nil, fmt.Errorf("netio: listen :%d: address already in use", port)
	}
	s := &Server{
		Emitter: events.New(n.loop, fmt.Sprintf("server:%d", port), at),
		net:     n,
		port:    port,
		open:    true,
		key:     n.loop.NextIOKey(),
	}
	n.listeners[port] = s
	n.loop.EmitAPIEvent(&vm.APIEvent{
		API:      "server.listen",
		Loc:      at,
		Receiver: s.Ref(),
		Args:     []vm.Value{port},
	})
	n.deliver("net.listening", s.key, func() {
		s.Emit(loc.Internal, EventListening)
	})
	return s, nil
}

// Port returns the bound port.
func (s *Server) Port() int { return s.port }

// Listening reports whether the server still accepts connections.
func (s *Server) Listening() bool { return s.open }

// Close stops accepting connections and emits 'close' through the close
// phase once pending work drains.
func (s *Server) Close(at loc.Loc) {
	if !s.open {
		return
	}
	s.open = false
	delete(s.net.listeners, s.port)
	emitter := s.Emitter
	closeFn := vm.NewFuncAt("(server.close)", loc.Internal, func([]vm.Value) vm.Value {
		emitter.Emit(loc.Internal, EventClose)
		return vm.Undefined
	})
	s.net.loop.ScheduleClose(closeFn, nil, &vm.Dispatch{API: "server.close"})
}

// Socket is one endpoint of a connection. It is an event emitter:
// 'connect' (client side, once established), 'data' per delivered chunk,
// 'end' when the peer half-closes, 'close' when fully closed, and
// 'error' on failures.
type Socket struct {
	*events.Emitter
	net    *Network
	peer   *Socket
	server bool
	ended  bool // we sent end
	closed bool
	// key is the connection's independence key, shared by both endpoints
	// (an end/reset delivery touches both sides of its connection but no
	// other connection). 0 until the socket joins a connection.
	key uint64
}

func (n *Network) newSocket(at loc.Loc, name string, server bool) *Socket {
	s := &Socket{
		Emitter: events.New(n.loop, name, at),
		net:     n,
		server:  server,
	}
	if !server {
		// Initiating sockets belong to the simulated client process;
		// measurement hooks scoped to the server skip their dispatches.
		s.SetZone("client")
	}
	return s
}

// Connect opens a client connection to the port. The returned client
// socket emits 'connect' once the (virtual) handshake completes; the
// server emits 'connection' with the server-side socket. Connecting to a
// closed port emits 'error' on the client socket.
func (n *Network) Connect(at loc.Loc, port int) *Socket {
	n.connSeq++
	id := n.connSeq
	client := n.newSocket(at, fmt.Sprintf("conn%d:client", id), false)
	n.loop.EmitAPIEvent(&vm.APIEvent{
		API:      "net.connect",
		Loc:      at,
		Receiver: client.Ref(),
		Args:     []vm.Value{port},
	})
	client.key = n.loop.NextIOKey()
	// The handshake mutates the listener map and allocates the
	// server-side socket (shared state and object identities), so it is
	// never independent: key 0.
	n.deliver("net.handshake", 0, func() {
		srv, ok := n.listeners[port]
		if !ok || !srv.open {
			client.closed = true
			client.Emit(loc.Internal, EventError, fmt.Sprintf("connect ECONNREFUSED :%d", port))
			return
		}
		remote := n.newSocket(loc.Internal, fmt.Sprintf("conn%d:server", id), true)
		remote.key = client.key
		client.peer = remote
		remote.peer = client
		srv.sockets = append(srv.sockets, remote)
		srv.Emit(loc.Internal, EventConnection, remote)
		n.deliver("net.connected", client.key, func() {
			if !client.closed {
				client.Emit(loc.Internal, EventConnect)
			}
		})
	})
	return client
}

// Pipe creates a directly-connected socket pair without a listening
// server — handy for protocol tests.
func (n *Network) Pipe(at loc.Loc) (*Socket, *Socket) {
	n.connSeq++
	id := n.connSeq
	a := n.newSocket(at, fmt.Sprintf("pipe%d:a", id), false)
	z := n.newSocket(at, fmt.Sprintf("pipe%d:b", id), true)
	a.peer, z.peer = z, a
	a.key = n.loop.NextIOKey()
	z.key = a.key
	return a, z
}

// Connected reports whether the socket has an established peer.
func (s *Socket) Connected() bool { return s.peer != nil && !s.closed }

// Write sends data to the peer, which receives it as a 'data' event
// after the network latency. Writing on an ended or closed socket emits
// 'error'.
func (s *Socket) Write(at loc.Loc, data []byte) bool {
	s.net.loop.EmitAPIEvent(&vm.APIEvent{
		API:      "socket.write",
		Loc:      at,
		Receiver: s.Ref(),
		Args:     []vm.Value{len(data)},
	})
	if s.ended || s.closed || s.peer == nil {
		s.Emit(loc.Internal, EventError, "write after end")
		return false
	}
	peer := s.peer
	buf := append([]byte(nil), data...)
	s.net.deliver("net.data", s.key, func() {
		if !peer.closed {
			peer.Emit(loc.Internal, EventData, buf)
		}
	})
	return true
}

// WriteString is Write for string payloads.
func (s *Socket) WriteString(at loc.Loc, data string) bool {
	return s.Write(at, []byte(data))
}

// End half-closes the socket after optionally sending final data: the
// peer gets 'end' and then 'close'; this side gets 'close' too (the
// simulation closes both directions, like an HTTP/1.0-style exchange).
func (s *Socket) End(at loc.Loc, data []byte) {
	if s.ended || s.closed {
		return
	}
	if len(data) > 0 {
		s.Write(at, data)
	}
	s.net.loop.EmitAPIEvent(&vm.APIEvent{
		API:      "socket.end",
		Loc:      at,
		Receiver: s.Ref(),
	})
	s.ended = true
	peer := s.peer
	s.net.deliver("net.end", s.key, func() {
		if peer != nil && !peer.closed {
			peer.Emit(loc.Internal, EventEnd)
			peer.scheduleClose()
		}
		s.scheduleClose()
	})
}

// Destroy closes both directions immediately (no 'end' events).
func (s *Socket) Destroy(at loc.Loc) {
	if s.closed {
		return
	}
	s.net.loop.EmitAPIEvent(&vm.APIEvent{
		API:      "socket.destroy",
		Loc:      at,
		Receiver: s.Ref(),
	})
	peer := s.peer
	s.scheduleClose()
	if peer != nil {
		s.net.deliver("net.reset", s.key, func() { peer.scheduleClose() })
	}
}

// scheduleClose emits 'close' through the close-handlers phase, the
// lowest-priority queue (§II-B).
func (s *Socket) scheduleClose() {
	if s.closed {
		return
	}
	s.closed = true
	emitter := s.Emitter
	closeFn := vm.NewFuncAt("(socket.close)", loc.Internal, func([]vm.Value) vm.Value {
		emitter.Emit(loc.Internal, EventClose)
		return vm.Undefined
	})
	s.net.loop.ScheduleClose(closeFn, nil, &vm.Dispatch{API: "socket.close"})
}
