// Package netio simulates a non-blocking network on the event loop's
// virtual clock — the substrate that plays the role of the OS/libuv I/O
// layer in the paper's external-scheduling category. Listeners, sockets
// and their 'connection' / 'data' / 'end' / 'close' events are delivered
// through the loop's I/O poll phase with deterministic latencies, so a
// program's Async Graph is reproducible run after run.
//
// Sockets and servers are event emitters: all user-visible callback
// registration happens through the events package, which means the Async
// Graph models network I/O with the same OB/CR/CT/CE machinery as any
// other emitter (exactly how Node's net module looks to AsyncG).
//
// The network participates in the session Reset protocol: it registers a
// reset hook on its loop, and returns every socket, server and in-flight
// delivery record to internal free lists when the loop is reset. A reset
// network replays the next run with the same announcements (emitter
// re-creation via events.Reinit, interned names) a freshly-constructed
// network would make.
package netio

import (
	"fmt"
	"time"

	"asyncg/internal/eventloop"
	"asyncg/internal/events"
	"asyncg/internal/loc"
	"asyncg/internal/vm"
)

// Socket / server event names, matching Node's net module.
const (
	EventConnection = "connection"
	EventConnect    = "connect"
	EventData       = "data"
	EventEnd        = "end"
	EventClose      = "close"
	EventError      = "error"
	EventListening  = "listening"
)

// DefaultLatency is the one-way delivery latency applied when Options
// leaves Latency zero.
const DefaultLatency = 500 * time.Microsecond

// Options configures a Network.
type Options struct {
	// Latency is the one-way virtual latency of every delivery.
	Latency time.Duration
}

// nameKey interns the per-connection diagnostic names: connection ids
// restart from 1 after a reset, so the same names recur run after run.
type nameKey struct {
	form byte // 'c'/'s' conn client/server, 'a'/'b' pipe ends, 'L' listener
	n    int
}

// Network owns the simulated wires: port bindings and in-flight
// deliveries. One Network per loop.
type Network struct {
	loop      *eventloop.Loop
	latency   time.Duration
	listeners map[int]*Server
	connSeq   int

	// Allocation reuse across loop resets: every socket/server ever
	// handed out is tracked in all*, returned to the free lists by
	// reset(), and revived through events.Reinit on its next use.
	allSocks  []*Socket
	sockFree  []*Socket
	allSrvs   []*Server
	srvFree   []*Server
	delivFree [dkCount][]*delivery
	names     map[nameKey]string
}

// New creates a network bound to the loop and registers its reset hook.
func New(l *eventloop.Loop, opts Options) *Network {
	if opts.Latency == 0 {
		opts.Latency = DefaultLatency
	}
	n := &Network{
		loop:      l,
		latency:   opts.Latency,
		listeners: make(map[int]*Server),
		names:     make(map[nameKey]string),
	}
	l.OnReset(n.reset)
	return n
}

// reset returns the network to its cold state, keeping sockets, servers
// and delivery records for reuse. Name interning survives: ids repeat.
func (n *Network) reset() {
	clear(n.listeners)
	n.connSeq = 0
	for i, s := range n.allSocks {
		s.peer = nil
		s.ended = false
		s.closed = false
		s.key = 0
		n.sockFree = append(n.sockFree, s)
		n.allSocks[i] = nil
	}
	n.allSocks = n.allSocks[:0]
	for i, s := range n.allSrvs {
		s.open = false
		s.key = 0
		for j := range s.sockets {
			s.sockets[j] = nil
		}
		s.sockets = s.sockets[:0]
		n.srvFree = append(n.srvFree, s)
		n.allSrvs[i] = nil
	}
	n.allSrvs = n.allSrvs[:0]
}

// cachedName interns the fmt.Sprintf-built diagnostic labels.
func (n *Network) cachedName(form byte, id int) string {
	key := nameKey{form: form, n: id}
	if s, ok := n.names[key]; ok {
		return s
	}
	var s string
	switch form {
	case 'c':
		s = fmt.Sprintf("conn%d:client", id)
	case 's':
		s = fmt.Sprintf("conn%d:server", id)
	case 'a':
		s = fmt.Sprintf("pipe%d:a", id)
	case 'b':
		s = fmt.Sprintf("pipe%d:b", id)
	case 'L':
		s = fmt.Sprintf("server:%d", id)
	}
	n.names[key] = s
	return s
}

// Loop returns the event loop this network schedules on.
func (n *Network) Loop() *eventloop.Loop { return n.loop }

// Latency returns the configured one-way latency.
func (n *Network) Latency() time.Duration { return n.latency }

// Delivery kinds. Each kind has its own free list because the wrapped
// vm.Function — allocated once per record — carries the kind's API name.
type delivKind uint8

const (
	dkListening delivKind = iota
	dkHandshake
	dkConnected
	dkData
	dkEnd
	dkReset
	dkCount
)

var delivAPIs = [dkCount]string{
	dkListening: "net.listening",
	dkHandshake: "net.handshake",
	dkConnected: "net.connected",
	dkData:      "net.data",
	dkEnd:       "net.end",
	dkReset:     "net.reset",
}

// delivery is one in-flight I/O callback. Records are pooled per kind:
// the vm.Function wrapper closes over the record and is created once; the
// payload fields are refilled per delivery and the record returns itself
// to the free list when its run completes.
type delivery struct {
	net  *Network
	kind delivKind
	fn   *vm.Function

	sock *Socket // primary endpoint (client for handshake/connected)
	peer *Socket
	srv  *Server
	buf  []byte
	port int
	id   int
}

func (n *Network) borrowDelivery(kind delivKind) *delivery {
	free := n.delivFree[kind]
	if len(free) > 0 {
		d := free[len(free)-1]
		free[len(free)-1] = nil
		n.delivFree[kind] = free[:len(free)-1]
		return d
	}
	d := &delivery{net: n, kind: kind}
	d.fn = vm.NewFuncAt("("+delivAPIs[kind]+")", loc.Internal, d.invoke)
	return d
}

// release clears the payload and returns the record to its free list.
func (d *delivery) release() {
	d.sock, d.peer, d.srv, d.buf = nil, nil, nil, nil
	d.port, d.id = 0, 0
	d.net.delivFree[d.kind] = append(d.net.delivFree[d.kind], d)
}

// invoke is the delivery's run body, dispatched on the I/O poll phase.
func (d *delivery) invoke([]vm.Value) vm.Value {
	// The body may schedule further deliveries (which borrow fresh
	// records); this record frees itself only after the body is done.
	switch d.kind {
	case dkListening:
		d.srv.Emit(loc.Internal, EventListening)
	case dkHandshake:
		d.handshake()
	case dkConnected:
		if !d.sock.closed {
			d.sock.Emit(loc.Internal, EventConnect)
		}
	case dkData:
		if !d.peer.closed {
			d.peer.Emit(loc.Internal, EventData, d.buf)
		}
	case dkEnd:
		if d.peer != nil && !d.peer.closed {
			d.peer.Emit(loc.Internal, EventEnd)
			d.peer.scheduleClose()
		}
		d.sock.scheduleClose()
	case dkReset:
		d.peer.scheduleClose()
	}
	d.release()
	return vm.Undefined
}

func (d *delivery) handshake() {
	n, client := d.net, d.sock
	srv, ok := n.listeners[d.port]
	if !ok || !srv.open {
		client.closed = true
		client.Emit(loc.Internal, EventError, fmt.Sprintf("connect ECONNREFUSED :%d", d.port))
		return
	}
	remote := n.newSocket(loc.Internal, n.cachedName('s', d.id), true)
	remote.key = client.key
	client.peer = remote
	remote.peer = client
	srv.sockets = append(srv.sockets, remote)
	srv.Emit(loc.Internal, EventConnection, remote)
	next := n.borrowDelivery(dkConnected)
	next.sock = client
	n.send(next, client.key)
}

// send queues a filled delivery record on the I/O poll phase after the
// network latency, dispatching with a loop-pooled dispatch.
//
// key is the delivery's independence key for partial-order reduction:
// deliveries on distinct connections (distinct non-zero keys) touch
// disjoint socket state, so their poll-batch order commutes. Deliveries
// that touch shared network state (handshakes mutate the listener's
// accept queue and allocate the server-side socket) pass 0.
func (n *Network) send(d *delivery, key uint64) {
	dp := n.loop.ScheduleIOKeyedDispatch(n.loop.Now()+n.loop.PerturbLatency(n.latency), key, d.fn, nil)
	dp.API = delivAPIs[d.kind]
}

// Server is a listening endpoint. It is an event emitter: 'connection'
// fires with the server-side *Socket of each accepted connection,
// 'listening' after Listen, and 'close' after Close.
type Server struct {
	*events.Emitter
	net     *Network
	port    int
	open    bool
	sockets []*Socket
	key     uint64 // independence key for server-scoped deliveries
	closeFn *vm.Function
}

// Listen binds a server to the port. Binding an occupied port returns an
// error (EADDRINUSE).
func (n *Network) Listen(at loc.Loc, port int) (*Server, error) {
	if _, taken := n.listeners[port]; taken {
		return nil, fmt.Errorf("netio: listen :%d: address already in use", port)
	}
	name := n.cachedName('L', port)
	var s *Server
	if len(n.srvFree) > 0 {
		s = n.srvFree[len(n.srvFree)-1]
		n.srvFree[len(n.srvFree)-1] = nil
		n.srvFree = n.srvFree[:len(n.srvFree)-1]
		s.Emitter.Reinit(name, at)
	} else {
		s = &Server{net: n, Emitter: events.New(n.loop, name, at)}
		srv := s
		s.closeFn = vm.NewFuncAt("(server.close)", loc.Internal, func([]vm.Value) vm.Value {
			srv.Emit(loc.Internal, EventClose)
			return vm.Undefined
		})
	}
	s.port = port
	s.open = true
	s.key = n.loop.NextIOKey()
	n.allSrvs = append(n.allSrvs, s)
	n.listeners[port] = s
	ev := n.loop.BorrowAPIEvent()
	ev.API = "server.listen"
	ev.Loc = at
	ev.Receiver = s.Ref()
	ev.SetOneArg(port)
	n.loop.EmitAPIEvent(ev)
	n.loop.ReturnAPIEvent(ev)
	d := n.borrowDelivery(dkListening)
	d.srv = s
	n.send(d, s.key)
	return s, nil
}

// Port returns the bound port.
func (s *Server) Port() int { return s.port }

// Listening reports whether the server still accepts connections.
func (s *Server) Listening() bool { return s.open }

// Close stops accepting connections and emits 'close' through the close
// phase once pending work drains.
func (s *Server) Close(at loc.Loc) {
	if !s.open {
		return
	}
	s.open = false
	delete(s.net.listeners, s.port)
	d := s.net.loop.NewDispatch()
	d.API = "server.close"
	s.net.loop.ScheduleClose(s.closeFn, nil, d)
}

// Socket is one endpoint of a connection. It is an event emitter:
// 'connect' (client side, once established), 'data' per delivered chunk,
// 'end' when the peer half-closes, 'close' when fully closed, and
// 'error' on failures.
type Socket struct {
	*events.Emitter
	net    *Network
	peer   *Socket
	server bool
	ended  bool // we sent end
	closed bool
	// key is the connection's independence key, shared by both endpoints
	// (an end/reset delivery touches both sides of its connection but no
	// other connection). 0 until the socket joins a connection.
	key     uint64
	closeFn *vm.Function
}

func (n *Network) newSocket(at loc.Loc, name string, server bool) *Socket {
	var s *Socket
	if len(n.sockFree) > 0 {
		s = n.sockFree[len(n.sockFree)-1]
		n.sockFree[len(n.sockFree)-1] = nil
		n.sockFree = n.sockFree[:len(n.sockFree)-1]
		s.Emitter.Reinit(name, at)
		s.server = server
	} else {
		s = &Socket{net: n, Emitter: events.New(n.loop, name, at), server: server}
		sock := s
		s.closeFn = vm.NewFuncAt("(socket.close)", loc.Internal, func([]vm.Value) vm.Value {
			sock.Emit(loc.Internal, EventClose)
			return vm.Undefined
		})
	}
	n.allSocks = append(n.allSocks, s)
	if !server {
		// Initiating sockets belong to the simulated client process;
		// measurement hooks scoped to the server skip their dispatches.
		s.SetZone("client")
	}
	return s
}

// Connect opens a client connection to the port. The returned client
// socket emits 'connect' once the (virtual) handshake completes; the
// server emits 'connection' with the server-side socket. Connecting to a
// closed port emits 'error' on the client socket.
func (n *Network) Connect(at loc.Loc, port int) *Socket {
	n.connSeq++
	id := n.connSeq
	client := n.newSocket(at, n.cachedName('c', id), false)
	ev := n.loop.BorrowAPIEvent()
	ev.API = "net.connect"
	ev.Loc = at
	ev.Receiver = client.Ref()
	ev.SetOneArg(port)
	n.loop.EmitAPIEvent(ev)
	n.loop.ReturnAPIEvent(ev)
	client.key = n.loop.NextIOKey()
	// The handshake mutates the listener map and allocates the
	// server-side socket (shared state and object identities), so it is
	// never independent: key 0.
	d := n.borrowDelivery(dkHandshake)
	d.sock = client
	d.port = port
	d.id = id
	n.send(d, 0)
	return client
}

// Pipe creates a directly-connected socket pair without a listening
// server — handy for protocol tests.
func (n *Network) Pipe(at loc.Loc) (*Socket, *Socket) {
	n.connSeq++
	id := n.connSeq
	a := n.newSocket(at, n.cachedName('a', id), false)
	z := n.newSocket(at, n.cachedName('b', id), true)
	a.peer, z.peer = z, a
	a.key = n.loop.NextIOKey()
	z.key = a.key
	return a, z
}

// Connected reports whether the socket has an established peer.
func (s *Socket) Connected() bool { return s.peer != nil && !s.closed }

// Write sends data to the peer, which receives it as a 'data' event
// after the network latency. Writing on an ended or closed socket emits
// 'error'.
func (s *Socket) Write(at loc.Loc, data []byte) bool {
	ev := s.net.loop.BorrowAPIEvent()
	ev.API = "socket.write"
	ev.Loc = at
	ev.Receiver = s.Ref()
	ev.SetOneArg(len(data))
	s.net.loop.EmitAPIEvent(ev)
	s.net.loop.ReturnAPIEvent(ev)
	if s.ended || s.closed || s.peer == nil {
		s.Emit(loc.Internal, EventError, "write after end")
		return false
	}
	// The chunk is copied: listeners may retain it past the delivery.
	d := s.net.borrowDelivery(dkData)
	d.peer = s.peer
	d.buf = append([]byte(nil), data...)
	s.net.send(d, s.key)
	return true
}

// WriteString is Write for string payloads.
func (s *Socket) WriteString(at loc.Loc, data string) bool {
	return s.Write(at, []byte(data))
}

// End half-closes the socket after optionally sending final data: the
// peer gets 'end' and then 'close'; this side gets 'close' too (the
// simulation closes both directions, like an HTTP/1.0-style exchange).
func (s *Socket) End(at loc.Loc, data []byte) {
	if s.ended || s.closed {
		return
	}
	if len(data) > 0 {
		s.Write(at, data)
	}
	ev := s.net.loop.BorrowAPIEvent()
	ev.API = "socket.end"
	ev.Loc = at
	ev.Receiver = s.Ref()
	s.net.loop.EmitAPIEvent(ev)
	s.net.loop.ReturnAPIEvent(ev)
	s.ended = true
	d := s.net.borrowDelivery(dkEnd)
	d.sock = s
	d.peer = s.peer
	s.net.send(d, s.key)
}

// Destroy closes both directions immediately (no 'end' events).
func (s *Socket) Destroy(at loc.Loc) {
	if s.closed {
		return
	}
	ev := s.net.loop.BorrowAPIEvent()
	ev.API = "socket.destroy"
	ev.Loc = at
	ev.Receiver = s.Ref()
	s.net.loop.EmitAPIEvent(ev)
	s.net.loop.ReturnAPIEvent(ev)
	peer := s.peer
	key := s.key
	s.scheduleClose()
	if peer != nil {
		d := s.net.borrowDelivery(dkReset)
		d.peer = peer
		s.net.send(d, key)
	}
}

// scheduleClose emits 'close' through the close-handlers phase, the
// lowest-priority queue (§II-B).
func (s *Socket) scheduleClose() {
	if s.closed {
		return
	}
	s.closed = true
	d := s.net.loop.NewDispatch()
	d.API = "socket.close"
	s.net.loop.ScheduleClose(s.closeFn, nil, d)
}
