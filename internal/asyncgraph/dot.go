package asyncgraph

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// WriteDOT renders the graph in the DOT language, one cluster per
// event-loop tick, matching the visual conventions of the paper's
// figures: boxes for CR, ellipses for CE, stars for CT, triangles for
// OB; solid arrows for direct causal edges and dashed (optionally
// labelled) arrows for binding and relation edges. Nodes carrying
// warnings are highlighted.
//
// Emission order is canonical — ticks by index, stray nodes by id,
// edges by (from, to, kind, label) — so equal graphs render to equal
// bytes regardless of construction order. Diffing two runs' DOT files
// (the explore engine's witness vs. counter-witness) then shows only
// real structural differences.
func (g *Graph) WriteDOT(w io.Writer, title string) error {
	var b strings.Builder
	b.WriteString("digraph AsyncGraph {\n")
	b.WriteString("  rankdir=LR;\n")
	b.WriteString("  fontname=\"Helvetica\";\n")
	b.WriteString("  node [fontname=\"Helvetica\", fontsize=10];\n")
	b.WriteString("  edge [fontname=\"Helvetica\", fontsize=9];\n")
	if title != "" {
		fmt.Fprintf(&b, "  label=%q;\n  labelloc=t;\n", title)
	}
	ticks := append([]*Tick(nil), g.Ticks...)
	sort.Slice(ticks, func(i, j int) bool { return ticks[i].Index < ticks[j].Index })
	inTick := make(map[NodeID]bool)
	for _, t := range ticks {
		fmt.Fprintf(&b, "  subgraph cluster_t%d {\n", t.Index)
		fmt.Fprintf(&b, "    label=%q;\n    style=dashed;\n", t.Name())
		ids := append([]NodeID(nil), t.Nodes...)
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		for _, id := range ids {
			inTick[id] = true
			b.WriteString("    " + g.nodeDOT(id) + "\n")
		}
		b.WriteString("  }\n")
	}
	// Nodes from an uncommitted tick (truncated run) still render.
	var stray []NodeID
	for _, n := range g.Nodes {
		if !inTick[n.ID] {
			stray = append(stray, n.ID)
		}
	}
	sort.Slice(stray, func(i, j int) bool { return stray[i] < stray[j] })
	for _, id := range stray {
		b.WriteString("  " + g.nodeDOT(id) + "\n")
	}
	edges := append([]Edge(nil), g.Edges...)
	sort.Slice(edges, func(i, j int) bool {
		a, b := edges[i], edges[j]
		if a.From != b.From {
			return a.From < b.From
		}
		if a.To != b.To {
			return a.To < b.To
		}
		if a.Kind != b.Kind {
			return a.Kind < b.Kind
		}
		return a.Label < b.Label
	})
	for _, e := range edges {
		b.WriteString("  " + edgeDOT(e) + "\n")
	}
	b.WriteString("}\n")
	_, err := io.WriteString(w, b.String())
	return err
}

// DOT returns the DOT rendering as a string.
func (g *Graph) DOT(title string) string {
	var sb strings.Builder
	_ = g.WriteDOT(&sb, title) // strings.Builder never fails
	return sb.String()
}

func (g *Graph) nodeDOT(id NodeID) string {
	n := g.Node(id)
	shape, style := "box", "solid"
	switch n.Kind {
	case CE:
		shape = "ellipse"
	case CT:
		shape = "star"
	case OB:
		shape = "triangle"
	}
	label := n.Label
	color := "black"
	if len(n.Warnings) > 0 {
		color = "red"
		label = "⚡ " + label + "\\n" + strings.Join(n.Warnings, "\\n")
	}
	if n.Removed {
		style = "dotted"
	}
	return fmt.Sprintf("n%d [shape=%s, style=%s, color=%s, label=%q];",
		n.ID, shape, style, color, label)
}

func edgeDOT(e Edge) string {
	switch e.Kind {
	case EdgeBinding:
		return fmt.Sprintf("n%d -> n%d [style=dashed, arrowhead=onormal];", e.From, e.To)
	case EdgeRelation:
		return fmt.Sprintf("n%d -> n%d [style=dashed, label=%q];", e.From, e.To, e.Label)
	default:
		return fmt.Sprintf("n%d -> n%d;", e.From, e.To)
	}
}
