package asyncgraph

import (
	"fmt"

	"asyncg/internal/loc"
	"asyncg/internal/vm"
)

// NodeKind distinguishes the four Async Graph node types.
type NodeKind int

// Async Graph node kinds (paper §IV-A).
const (
	CR NodeKind = iota // □ callback registration
	CE                 // ○ callback execution
	CT                 // ★ callback trigger (emit / resolve / reject)
	OB                 // △ object binding (promise / emitter creation)
)

// String renders the paper's two-letter node-kind tag ("CR", "CE", ...).
func (k NodeKind) String() string {
	switch k {
	case CR:
		return "CR"
	case CE:
		return "CE"
	case CT:
		return "CT"
	case OB:
		return "OB"
	default:
		return fmt.Sprintf("NodeKind(%d)", int(k))
	}
}

// NodeID indexes into Graph.Nodes.
type NodeID int

// NoNode is the absent-node sentinel.
const NoNode NodeID = -1

// Node is one Async Graph node.
type Node struct {
	// ID is the node's index in Graph.Nodes.
	ID NodeID
	// Kind is the node class: CR, CE, CT, or OB.
	Kind NodeKind
	// Tick is the 1-based index of the containing tick, or 0 until the
	// tick is committed.
	Tick int
	// Loc is the source location of the originating API use.
	Loc loc.Loc
	// API is the async API that produced the node ("setTimeout",
	// "emitter.on", "promise.then", ...).
	API string
	// Event is the emitter event name or promise relation detail.
	Event string
	// Label is the display name ("L7: createServer", "P1", "E2").
	Label string
	// Obj is the bound runtime object, if any.
	Obj vm.ObjRef
	// Func names the registered/executed callback (CR and CE nodes).
	Func string
	// RegSeq is the registration sequence for CR nodes.
	RegSeq uint64
	// TrigSeq is the trigger sequence for CT nodes.
	TrigSeq uint64
	// Executions counts CE nodes mapped to this CR node.
	Executions int
	// Removed marks CR nodes whose registration was explicitly
	// retired (clearTimeout, removeListener) before executing.
	Removed bool
	// Warnings lists bug-detector annotations (the ⚡ marks of the
	// paper's figures).
	Warnings []string
	// ValueStr is the rendered settlement value for promise trigger
	// nodes (Fig. 5 labels the value flowing from p1 to p2).
	ValueStr string
	// Stack is the resolved Go call stack captured at the node's
	// creation site under the opt-in debug-stacks mode
	// (Config.DebugStacks) — the creation-site provenance a promise
	// debugger shows. Capturing and resolving it on every tracked API
	// call is the mode's dominant cost, which is why it is off by
	// default (see EXPERIMENTS.md for the measured overhead).
	Stack []string
}

// EdgeKind distinguishes Async Graph edge styles.
type EdgeKind int

// Edge kinds (paper §IV-A).
const (
	// EdgeDirect is the solid causal edge →: CR→CE, CT→CE, and the
	// happens-in edge CE→(nodes created during it).
	EdgeDirect EdgeKind = iota
	// EdgeBinding is the dashed CE⇠CR edge binding an execution to its
	// registration.
	EdgeBinding
	// EdgeRelation is a dashed labelled edge between object-binding
	// nodes and related nodes ("then", "link", "connection", ...).
	EdgeRelation
)

// String renders the edge kind as the dot-style name used in output
// ("direct", "binding", "relation").
func (k EdgeKind) String() string {
	switch k {
	case EdgeDirect:
		return "direct"
	case EdgeBinding:
		return "binding"
	case EdgeRelation:
		return "relation"
	default:
		return fmt.Sprintf("EdgeKind(%d)", int(k))
	}
}

// Edge connects two Async Graph nodes.
type Edge struct {
	// From and To are the endpoint node IDs, in arrow direction.
	From, To NodeID
	// Kind selects the edge style (solid causal, dashed binding, or
	// labelled relation).
	Kind EdgeKind
	// Label annotates relation edges ("then", "link", ...); empty
	// otherwise.
	Label string
}

// Tick is one committed event-loop tick: a single top-level callback
// execution (or the main program), labelled with its phase.
type Tick struct {
	Index int    // 1-based
	Phase string // "main", "nextTick", "promise", "timer", "io", ...
	// Nodes lists the nodes committed during this tick, in creation
	// order.
	Nodes []NodeID
}

// Name renders the paper's tick label, e.g. "t3:io".
func (t *Tick) Name() string { return fmt.Sprintf("t%d:%s", t.Index, t.Phase) }

// Category identifies a warning's bug class. The detect package defines
// the canonical constants (one per detector of the paper's §VI); typed
// categories keep callers from silently filtering on a typo'd string.
type Category string

// Warning is a bug-detector finding attached to a node.
type Warning struct {
	// Category is the bug class (one of the detect package constants).
	Category Category
	// Message is the human-readable finding.
	Message string
	// Node is the graph node the warning is anchored to, or NoNode.
	Node NodeID
	// Loc is the source location the warning points at.
	Loc loc.Loc
	// Chain is the async causal chain walked backwards from Node — the
	// warning's "async stack trace". Filled post-hoc by
	// provenance.Annotate (and by explore.Replay); empty until then.
	Chain []ChainHop `json:"chain,omitempty"`
	// ReplayToken is the schedule token that reproduces the run this
	// warning was observed in (`asyncg explore -replay <token>`).
	// Stamped by the explore layer; empty for plain single runs.
	ReplayToken string `json:"replayToken,omitempty"`
}

// String renders the warning as "[category] message (file:line)".
func (w Warning) String() string {
	return fmt.Sprintf("[%s] %s (%s)", w.Category, w.Message, w.Loc)
}

// Graph is a complete Async Graph.
type Graph struct {
	// Ticks is the committed tick sequence, in execution order.
	Ticks []*Tick
	// Nodes holds every node, indexed by NodeID.
	Nodes []*Node
	// Edges holds every edge, in creation order.
	Edges []Edge
	// Warnings accumulates detector findings over the whole run.
	Warnings []Warning

	objNodes map[uint64]NodeID // OB node per runtime object

	// nodeFree and tickFree recycle node and tick records across Reset,
	// so one allocation set serves a whole stream of runs.
	nodeFree []*Node
	tickFree []*Tick

	// fp is Fingerprint's reusable working storage, created on first
	// use and retained across Reset for the same reason as the free
	// lists above.
	fp *fpScratch

	// warnLabels interns rendered node-warning labels across Reset;
	// see warnLabel.
	warnLabels map[warnLabelKey]string
}

// NewGraph creates an empty graph.
func NewGraph() *Graph {
	return &Graph{
		Nodes:    make([]*Node, 0, 64),
		Edges:    make([]Edge, 0, 128),
		Ticks:    make([]*Tick, 0, 32),
		objNodes: make(map[uint64]NodeID, 16),
	}
}

// Reset empties the graph for reuse, returning node and tick records to
// the free lists while keeping every backing allocation. The previous
// contents become invalid: callers that retained the graph (for example
// through a Report) must be done with it before Reset.
func (g *Graph) Reset() {
	for i, t := range g.Ticks {
		g.recycleTick(t)
		g.Ticks[i] = nil
	}
	g.Ticks = g.Ticks[:0]
	for i, n := range g.Nodes {
		g.recycleNode(n)
		g.Nodes[i] = nil
	}
	g.Nodes = g.Nodes[:0]
	for i := range g.Edges {
		g.Edges[i] = Edge{}
	}
	g.Edges = g.Edges[:0]
	for i := range g.Warnings {
		g.Warnings[i] = Warning{}
	}
	g.Warnings = g.Warnings[:0]
	clear(g.objNodes)
}

// blankNode returns a cleared node from the free list (its Warnings and
// Stack slices keep their capacity).
func (g *Graph) blankNode() *Node {
	if n := len(g.nodeFree); n > 0 {
		nd := g.nodeFree[n-1]
		g.nodeFree = g.nodeFree[:n-1]
		return nd
	}
	return &Node{}
}

// recycleNode clears a node and returns it to the free list.
func (g *Graph) recycleNode(n *Node) {
	warnings, stack := n.Warnings, n.Stack
	for i := range warnings {
		warnings[i] = ""
	}
	for i := range stack {
		stack[i] = ""
	}
	*n = Node{}
	n.Warnings = warnings[:0]
	n.Stack = stack[:0]
	g.nodeFree = append(g.nodeFree, n)
}

// blankTick returns a tick from the free list with the given phase.
func (g *Graph) blankTick(phase string) *Tick {
	if n := len(g.tickFree); n > 0 {
		t := g.tickFree[n-1]
		g.tickFree = g.tickFree[:n-1]
		t.Phase = phase
		return t
	}
	return &Tick{Phase: phase}
}

// recycleTick clears a tick and returns it to the free list.
func (g *Graph) recycleTick(t *Tick) {
	t.Index = 0
	t.Phase = ""
	t.Nodes = t.Nodes[:0]
	g.tickFree = append(g.tickFree, t)
}

// Node returns the node with the given id, or nil.
func (g *Graph) Node(id NodeID) *Node {
	if id < 0 || int(id) >= len(g.Nodes) {
		return nil
	}
	return g.Nodes[id]
}

// ObjNode returns the OB node for a runtime object id, or NoNode.
func (g *Graph) ObjNode(objID uint64) NodeID {
	if id, ok := g.objNodes[objID]; ok {
		return id
	}
	return NoNode
}

// addNode appends a node and returns it.
func (g *Graph) addNode(n *Node) *Node {
	n.ID = NodeID(len(g.Nodes))
	g.Nodes = append(g.Nodes, n)
	if n.Kind == OB && !n.Obj.IsZero() {
		g.objNodes[n.Obj.ID] = n.ID
	}
	return n
}

// AddEdge appends an edge between existing nodes.
func (g *Graph) AddEdge(from, to NodeID, kind EdgeKind, label string) {
	if from == NoNode || to == NoNode {
		return
	}
	g.Edges = append(g.Edges, Edge{From: from, To: to, Kind: kind, Label: label})
}

// AddWarning attaches a detector finding to a node (NoNode allowed for
// program-level warnings).
func (g *Graph) AddWarning(node NodeID, category Category, message string, at loc.Loc) {
	g.Warnings = append(g.Warnings, Warning{Category: category, Message: message, Node: node, Loc: at})
	if n := g.Node(node); n != nil {
		n.Warnings = append(n.Warnings, g.warnLabel(category, message))
	}
}

// warnLabel renders "category: message", interned in a cache that
// survives Reset: a reused graph re-derives the same warnings run after
// run, so each distinct label is built once per graph lifetime.
func (g *Graph) warnLabel(category Category, message string) string {
	k := warnLabelKey{cat: category, msg: message}
	if s, ok := g.warnLabels[k]; ok {
		return s
	}
	if g.warnLabels == nil {
		g.warnLabels = make(map[warnLabelKey]string)
	}
	s := string(category) + ": " + message
	g.warnLabels[k] = s
	return s
}

// warnLabelKey identifies one interned node-warning label.
type warnLabelKey struct {
	cat Category
	msg string
}

// NodesOfKind returns all nodes of the given kind, in creation order.
func (g *Graph) NodesOfKind(kind NodeKind) []*Node {
	var out []*Node
	for _, n := range g.Nodes {
		if n.Kind == kind {
			out = append(out, n)
		}
	}
	return out
}

// EdgesFrom returns the edges leaving a node.
func (g *Graph) EdgesFrom(id NodeID) []Edge {
	var out []Edge
	for _, e := range g.Edges {
		if e.From == id {
			out = append(out, e)
		}
	}
	return out
}

// EdgesTo returns the edges entering a node.
func (g *Graph) EdgesTo(id NodeID) []Edge {
	var out []Edge
	for _, e := range g.Edges {
		if e.To == id {
			out = append(out, e)
		}
	}
	return out
}

// TickRange extracts the sub-graph of ticks from..to (1-based,
// inclusive): the view the paper's figures use ("as the graph grows
// infinitely ... we only show the first 3 ticks"). Nodes keep their
// original labels and warnings; edges with an endpoint outside the
// window are dropped; node ids are re-assigned densely.
func (g *Graph) TickRange(from, to int) *Graph {
	if from < 1 {
		from = 1
	}
	if to > len(g.Ticks) {
		to = len(g.Ticks)
	}
	out := NewGraph()
	remap := make(map[NodeID]NodeID)
	for _, tk := range g.Ticks {
		if tk.Index < from || tk.Index > to {
			continue
		}
		newTick := &Tick{Index: len(out.Ticks) + 1, Phase: tk.Phase}
		for _, id := range tk.Nodes {
			orig := g.Node(id)
			copied := *orig
			copied.Warnings = append([]string(nil), orig.Warnings...)
			copied.Stack = append([]string(nil), orig.Stack...)
			node := out.addNode(&copied)
			node.Tick = newTick.Index
			newTick.Nodes = append(newTick.Nodes, node.ID)
			remap[id] = node.ID
		}
		out.Ticks = append(out.Ticks, newTick)
	}
	for _, e := range g.Edges {
		nf, okF := remap[e.From]
		nt, okT := remap[e.To]
		if okF && okT {
			out.AddEdge(nf, nt, e.Kind, e.Label)
		}
	}
	for _, w := range g.Warnings {
		if id, ok := remap[w.Node]; ok {
			out.Warnings = append(out.Warnings, Warning{
				Category: w.Category, Message: w.Message, Node: id, Loc: w.Loc,
			})
		}
	}
	return out
}

// TickOf returns the committed tick containing the node, or nil.
func (g *Graph) TickOf(id NodeID) *Tick {
	n := g.Node(id)
	if n == nil || n.Tick == 0 || n.Tick > len(g.Ticks) {
		return nil
	}
	return g.Ticks[n.Tick-1]
}
