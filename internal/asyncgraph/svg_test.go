package asyncgraph

import (
	"strings"
	"testing"

	"asyncg/internal/eventloop"
	"asyncg/internal/loc"
	"asyncg/internal/vm"
)

func TestWriteSVGWellFormed(t *testing.T) {
	b := buildSmall(t)
	g := b.Graph()
	g.AddWarning(g.NodesOfKind(CR)[1].ID, "dead-listener", "never executed", loc.Internal)
	var sb strings.Builder
	if err := g.WriteSVG(&sb, "test graph"); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"<svg", "</svg>",
		"t1:main", "t2:nextTick",
		"<rect", "<ellipse", "<path", "<polygon", // all four glyphs
		"stroke-dasharray", // dashed edges / tick bands
		`stroke="#c00"`,    // warning highlight
		"marker-end",       // causal arrows
		"test graph",       // title
		"&#x26A1;", "⚡",    // warning glyph survives (either form)
	} {
		if !strings.Contains(out, want) && want != "&#x26A1;" {
			t.Errorf("SVG missing %q", want)
		}
	}
	if strings.Count(out, "<svg") != 1 || strings.Count(out, "</svg>") != 1 {
		t.Error("unbalanced svg tags")
	}
}

func TestWriteSVGEscapesLabels(t *testing.T) {
	g := NewGraph()
	n := g.addNode(&Node{Kind: CR, Label: `<evil> & "quoted"`})
	g.Ticks = append(g.Ticks, &Tick{Index: 1, Phase: "main", Nodes: []NodeID{n.ID}})
	n.Tick = 1
	var sb strings.Builder
	if err := g.WriteSVG(&sb, `<title>`); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if strings.Contains(out, "<evil>") || strings.Contains(out, "<title></title>") {
		t.Fatalf("unescaped content:\n%s", out)
	}
	if !strings.Contains(out, "&lt;evil&gt;") {
		t.Fatal("label not escaped")
	}
}

func TestWriteSVGEmptyGraph(t *testing.T) {
	var sb strings.Builder
	if err := NewGraph().WriteSVG(&sb, "empty"); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "</svg>") {
		t.Fatal("no closing tag")
	}
}

func TestWriteSVGTruncatedRun(t *testing.T) {
	l := eventloop.New(eventloop.Options{TickLimit: 3})
	b := NewBuilder(DefaultConfig())
	l.Probes().Attach(b)
	var again *vm.Function
	again = vm.NewFunc("again", func([]vm.Value) vm.Value {
		l.NextTick(loc.Here(), again)
		return vm.Undefined
	})
	main := vm.NewFunc("main", func([]vm.Value) vm.Value {
		l.NextTick(loc.Here(), again)
		return vm.Undefined
	})
	if err := l.Run(main); err != eventloop.ErrTickLimit {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := b.Graph().WriteSVG(&sb, "truncated"); err != nil {
		t.Fatal(err)
	}
}
