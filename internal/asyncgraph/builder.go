package asyncgraph

import (
	"fmt"
	"runtime"

	"asyncg/internal/events"
	"asyncg/internal/instrument"
	"asyncg/internal/loc"
	"asyncg/internal/promise"
	"asyncg/internal/vm"
)

// renderValue stringifies a settlement value for graph display,
// truncated to keep node labels readable.
func renderValue(v vm.Value) string {
	s := vm.ToString(v)
	if len(s) > 120 {
		s = s[:117] + "..."
	}
	return s
}

// captureStack resolves the current call stack into display frames for
// creation-site provenance (the debug-stacks mode of async stack
// traces). Capturing and resolving frames on every tracked API call is
// deliberate, measured overhead — which is why Config.DebugStacks is
// opt-in.
func captureStack() []string {
	var pcs [24]uintptr
	n := runtime.Callers(3, pcs[:])
	frames := runtime.CallersFrames(pcs[:n])
	out := make([]string, 0, n)
	for {
		f, more := frames.Next()
		out = append(out, fmt.Sprintf("%s (%s:%d)", f.Function, f.File, f.Line))
		if !more {
			break
		}
	}
	return out
}

// Config selects which API families the builder tracks. Disabling
// promise tracking reproduces the paper's "nopromise" evaluation setting
// of Fig. 6(a).
type Config struct {
	// Promises tracks promise creation, settlement, and reactions.
	Promises bool
	// Emitters tracks EventEmitter listener registration and emits.
	Emitters bool
	// Scheduling tracks timers, immediates, and nextTick callbacks.
	Scheduling bool
	// IO tracks file/network I/O requests and their completions.
	IO bool
	// ChainAnalysis maintains per-settlement promise-chain bookkeeping
	// (walking the chain on every settle, as the tool's on-the-fly
	// promise analyses do). It is the costly part of promise tracking
	// and exists as an explicit knob for the overhead ablation.
	ChainAnalysis bool
	// DebugStacks captures the Go call stack (runtime.Callers, resolved
	// to display frames) at every promise/emitter creation, trigger, and
	// callback registration, attaching it to the created node
	// (Node.Stack) so provenance chains can show *where in the program*
	// each hop originated. Off by default: capture + symbolization on
	// every tracked API call is the dominant cost of the mode (see
	// EXPERIMENTS.md), exactly like the WithDebugMode promise-stack
	// capture of real event-loop libraries.
	DebugStacks bool
}

// DefaultConfig tracks everything; DebugStacks stays opt-in.
func DefaultConfig() Config {
	return Config{Promises: true, Emitters: true, Scheduling: true, IO: true, ChainAnalysis: true}
}

// pendingCR is one entry of the paper's L_pending lists: a registration
// awaiting executions. Entries for one callback form a singly-linked
// list in registration order (the list head lives in Builder.pending),
// so appending and unlinking never allocate; retired entries return to
// the builder's free list.
type pendingCR struct {
	node  *Node
	reg   vm.Registration
	api   string
	obj   vm.ObjRef
	event string
	next  *pendingCR
}

// frame is one shadow-stack entry.
type frame struct {
	fn *vm.Function
	ce NodeID // CE node for this invocation, or NoNode
}

// Builder constructs the Async Graph of a running program from probe
// events. It implements vm.Hooks; attach it to a loop's probes before the
// events you want captured (it may be attached and detached mid-run).
//
// The construction follows the paper's algorithms: Algorithm 1 delimits
// event-loop ticks with a shadow stack (a tick begins when the stack is
// empty and is committed, if non-empty, when the outermost frame pops);
// Algorithm 2 turns async-API calls into CR nodes and pending-list
// entries; Algorithm 3 maps each callback execution to its registration
// with a context validator and draws the causal and binding edges.
type Builder struct {
	cfg Config
	g   *Graph

	sstack  []frame
	curTick *Tick

	pending  map[*vm.Function]*pendingCR
	byRegSeq map[uint64]*pendingCR
	ctByTrig map[uint64]NodeID
	pcrFree  *pendingCR

	// chainUp records, for ChainAnalysis, each promise's upstream
	// promise in the chain (derived → source).
	chainUp map[uint64]uint64

	// labels interns rendered node labels: a hot call site (a server
	// handler registering the same callback per request, a loop
	// resolving promises at one line) renders its label once instead of
	// re-running fmt.Sprintf per node.
	labels map[labelKey]string
	// countLabels interns the per-object "P%d"/"E%d[:name]" labels: the
	// object counters restart at every Reset, so a stream of runs keeps
	// re-rendering the same small id set.
	countLabels map[countKey]string

	promiseCount int
	emitterCount int
	anomalies    []string
}

// labelKey identifies one distinct rendered label: the form
// (registration / trigger / execution) plus the attributes the
// rendering reads.
type labelKey struct {
	form  byte // 'r' registration, 't' trigger, 'e' execution
	api   string
	event string
	fn    string
	loc   loc.Loc
}

// countKey identifies one rendered per-object label.
type countKey struct {
	form byte // 'P' promise, 'E' emitter
	n    int
	name string
}

// NewBuilder creates a builder with the given config.
func NewBuilder(cfg Config) *Builder {
	return &Builder{
		cfg:      cfg,
		g:        NewGraph(),
		sstack:   make([]frame, 0, 16),
		pending:  make(map[*vm.Function]*pendingCR, 32),
		byRegSeq: make(map[uint64]*pendingCR, 32),
		ctByTrig: make(map[uint64]NodeID, 32),
		chainUp:  make(map[uint64]uint64, 32),
		labels:   make(map[labelKey]string, 32),

		countLabels: make(map[countKey]string, 16),
	}
}

// cachedCountLabel interns "P%d"/"E%d[:name]" renderings.
func (b *Builder) cachedCountLabel(form byte, n int, name string) string {
	key := countKey{form: form, n: n, name: name}
	if s, ok := b.countLabels[key]; ok {
		return s
	}
	var s string
	if name != "" {
		s = fmt.Sprintf("%c%d:%s", form, n, name)
	} else {
		s = fmt.Sprintf("%c%d", form, n)
	}
	b.countLabels[key] = s
	return s
}

// cachedTriggerLabel interns triggerLabel renderings.
func (b *Builder) cachedTriggerLabel(ev *vm.APIEvent) string {
	key := labelKey{form: 't', api: ev.API, event: ev.Event, loc: ev.Loc}
	if s, ok := b.labels[key]; ok {
		return s
	}
	s := triggerLabel(ev)
	b.labels[key] = s
	return s
}

// cachedRegistrationLabel interns registrationLabel renderings.
func (b *Builder) cachedRegistrationLabel(ev *vm.APIEvent) string {
	key := labelKey{form: 'r', api: ev.API, event: ev.Event, loc: ev.Loc}
	if s, ok := b.labels[key]; ok {
		return s
	}
	s := registrationLabel(ev)
	b.labels[key] = s
	return s
}

// cachedExecutionLabel interns CE-node labels ("L12: handler").
func (b *Builder) cachedExecutionLabel(at loc.Loc, name string) string {
	key := labelKey{form: 'e', fn: name, loc: at}
	if s, ok := b.labels[key]; ok {
		return s
	}
	s := fmt.Sprintf("%s: %s", at.Short(), name)
	b.labels[key] = s
	return s
}

// Graph returns the graph built so far. It keeps growing while the
// builder stays attached.
func (b *Builder) Graph() *Graph { return b.g }

// Reset returns the builder (and its graph) to the empty state while
// retaining every allocation: node/tick/pending free lists, map buckets,
// and the interned-label cache, which is keyed by source location and
// stays valid across runs of the same program. The previously built
// graph becomes invalid — callers must be done with it first.
func (b *Builder) Reset() {
	// Live pending entries sit in the per-callback lists; walk them back
	// into the free list before dropping the maps.
	for _, head := range b.pending {
		for cr := head; cr != nil; {
			next := cr.next
			b.recyclePCR(cr)
			cr = next
		}
	}
	clear(b.pending)
	clear(b.byRegSeq)
	clear(b.ctByTrig)
	clear(b.chainUp)
	for i := range b.sstack {
		b.sstack[i] = frame{}
	}
	b.sstack = b.sstack[:0]
	if b.curTick != nil {
		b.g.recycleTick(b.curTick)
		b.curTick = nil
	}
	b.promiseCount = 0
	b.emitterCount = 0
	b.anomalies = nil
	b.g.Reset()
}

// borrowPCR returns a cleared pending entry from the free list.
func (b *Builder) borrowPCR() *pendingCR {
	if cr := b.pcrFree; cr != nil {
		b.pcrFree = cr.next
		cr.next = nil
		return cr
	}
	return &pendingCR{}
}

// recyclePCR clears an unlinked pending entry and returns it to the
// free list. The caller must have removed it from pending and byRegSeq.
func (b *Builder) recyclePCR(cr *pendingCR) {
	*cr = pendingCR{next: b.pcrFree}
	b.pcrFree = cr
}

// Anomalies returns validator mismatches (executions whose scheduling
// context did not validate against the registration the runtime
// reported). A correct simulator produces none.
func (b *Builder) Anomalies() []string { return b.anomalies }

// CurrentTick returns the uncommitted tick under construction, or nil
// between ticks.
func (b *Builder) CurrentTick() *Tick { return b.curTick }

// CommittedTicks returns the number of ticks appended to the graph.
func (b *Builder) CommittedTicks() int { return len(b.g.Ticks) }

// NodeByRegSeq returns the CR node for a registration sequence, or nil.
func (b *Builder) NodeByRegSeq(seq uint64) *Node {
	if cr, ok := b.byRegSeq[seq]; ok {
		return cr.node
	}
	return nil
}

// NodeByTrigSeq returns the CT node for a trigger sequence, or NoNode
// (implicit engine-internal triggers have no ★ node).
func (b *Builder) NodeByTrigSeq(seq uint64) NodeID {
	if id, ok := b.ctByTrig[seq]; ok {
		return id
	}
	return NoNode
}

// EnclosingCE returns the CE node of the innermost executing callback,
// or NoNode.
func (b *Builder) EnclosingCE() NodeID {
	for i := len(b.sstack) - 1; i >= 0; i-- {
		if b.sstack[i].ce != NoNode {
			return b.sstack[i].ce
		}
	}
	return NoNode
}

// tracked reports whether the builder's config covers the API.
func (b *Builder) tracked(api string) bool {
	switch instrument.Categorize(api) {
	case instrument.CatPromise:
		return b.cfg.Promises
	case instrument.CatEmitter:
		return b.cfg.Emitters
	case instrument.CatScheduling:
		return b.cfg.Scheduling
	case instrument.CatIO:
		return b.cfg.IO
	default:
		return true
	}
}

// ensureTick guards against API events arriving outside any tracked
// invocation (e.g. the builder attached mid-callback).
func (b *Builder) ensureTick(phase string) *Tick {
	if b.curTick == nil {
		if phase == "" {
			phase = "main"
		}
		b.curTick = b.g.blankTick(phase)
	}
	return b.curTick
}

// newNode adds a node to the graph and the current tick, drawing the
// happens-in edge (○→) from the enclosing callback execution.
func (b *Builder) newNode(n *Node, phase string) *Node {
	tick := b.ensureTick(phase)
	b.g.addNode(n)
	tick.Nodes = append(tick.Nodes, n.ID)
	if enc := b.EnclosingCE(); enc != NoNode && n.Kind != CE {
		b.g.AddEdge(enc, n.ID, EdgeDirect, "")
	}
	return n
}

// APICall implements vm.Hooks: Algorithm 2 plus OB/CT/relation handling.
func (b *Builder) APICall(ev *vm.APIEvent) {
	if !b.tracked(ev.API) {
		return
	}
	switch ev.API {
	case promise.APICreate:
		b.addPromiseOB(ev)
		return
	case events.APINew:
		b.addEmitterOB(ev)
		return
	case promise.APILink:
		// The promise returned from a then callback joins the chain:
		// △⇠link⇠△.
		b.g.AddEdge(b.g.ObjNode(ev.Receiver.ID), b.relatedOB(ev, 0), EdgeRelation, "link")
		if b.cfg.ChainAnalysis && len(ev.Related) > 0 {
			b.chainUp[ev.Related[0].ID] = ev.Receiver.ID
		}
		return
	case "clearTimeout", "clearInterval", "clearImmediate",
		events.APIRemoveListener, events.APIRemoveAllListeners:
		for _, reg := range ev.Regs {
			b.retire(reg.Seq)
		}
		return
	case promise.APIPassthrough:
		return // engine-internal plumbing: not part of the model
	}

	if ev.TriggerSeq != 0 {
		b.addTrigger(ev)
		return
	}
	if len(ev.Regs) > 0 {
		b.addRegistration(ev)
		return
	}
	// A handler-less then/catch still extends the promise chain.
	if len(ev.Related) > 0 && ev.Receiver.Kind == vm.ObjPromise {
		b.g.AddEdge(b.g.ObjNode(ev.Receiver.ID), b.relatedOB(ev, 0), EdgeRelation, ev.Event)
		if b.cfg.ChainAnalysis {
			b.chainUp[ev.Related[0].ID] = ev.Receiver.ID
		}
	}
}

// addPromiseOB creates the △ node for a new promise and relation edges
// for combinator inputs.
func (b *Builder) addPromiseOB(ev *vm.APIEvent) {
	b.promiseCount++
	n := b.g.blankNode()
	n.Kind = OB
	n.Loc = ev.Loc
	n.API = ev.API
	n.Event = ev.Event
	n.Obj = ev.Receiver
	n.Label = b.cachedCountLabel('P', b.promiseCount, "")
	b.newNode(n, "")
	if b.cfg.DebugStacks {
		n.Stack = captureStack()
	}
	for _, in := range ev.Related {
		b.g.AddEdge(b.g.ObjNode(in.ID), n.ID, EdgeRelation, ev.Event)
		if b.cfg.ChainAnalysis {
			b.chainUp[ev.Receiver.ID] = in.ID
		}
	}
}

// addEmitterOB creates the △ node for a new emitter.
func (b *Builder) addEmitterOB(ev *vm.APIEvent) {
	b.emitterCount++
	var name string
	if len(ev.Args) > 0 {
		if s, ok := ev.Args[0].(string); ok {
			name = s
		}
	}
	n := b.g.blankNode()
	n.Kind = OB
	n.Loc = ev.Loc
	n.API = ev.API
	n.Obj = ev.Receiver
	n.Label = b.cachedCountLabel('E', b.emitterCount, name)
	b.newNode(n, "")
	if b.cfg.DebugStacks {
		n.Stack = captureStack()
	}
}

// addTrigger creates the ★ node for an emit / resolve / reject. Implicit
// settles performed by the engine (derived-promise resolution from a
// handler result) carry an internal location and get no ★ node — the
// paper only stars explicit trigger API uses; the downstream execution
// then falls back to the □→○ causal edge.
func (b *Builder) addTrigger(ev *vm.APIEvent) {
	if ev.Loc.IsInternal() {
		if b.cfg.ChainAnalysis && ev.Receiver.Kind == vm.ObjPromise {
			b.walkChain(ev.Receiver.ID)
		}
		return
	}
	n := b.g.blankNode()
	n.Kind = CT
	n.Loc = ev.Loc
	n.API = ev.API
	n.Event = ev.Event
	n.Obj = ev.Receiver
	n.TrigSeq = ev.TriggerSeq
	n.Label = b.cachedTriggerLabel(ev)
	b.newNode(n, "")
	b.ctByTrig[ev.TriggerSeq] = n.ID
	if b.cfg.DebugStacks {
		n.Stack = captureStack()
	}
	if b.cfg.ChainAnalysis && ev.Receiver.Kind == vm.ObjPromise && len(ev.Args) > 0 {
		n.ValueStr = renderValue(ev.Args[0])
	}
	// Tie the trigger to its object for readability (emit('x') ⇠ E1).
	if ob := b.g.ObjNode(ev.Receiver.ID); ob != NoNode {
		b.g.AddEdge(n.ID, ob, EdgeRelation, ev.Event)
	}
	if b.cfg.ChainAnalysis && ev.Receiver.Kind == vm.ObjPromise {
		b.walkChain(ev.Receiver.ID)
	}
}

// walkChain traverses a promise's upstream chain. The traversal result
// feeds the tool's on-the-fly promise analyses; its cost is what the
// ChainAnalysis knob toggles.
func (b *Builder) walkChain(id uint64) int {
	depth := 0
	for cur, ok := b.chainUp[id]; ok && depth < 1024; cur, ok = b.chainUp[cur] {
		depth++
	}
	return depth
}

// addRegistration creates the □ node for a callback-registering API use
// (Algorithm 2) and pushes pending entries for Algorithm 3.
func (b *Builder) addRegistration(ev *vm.APIEvent) {
	n := b.g.blankNode()
	n.Kind = CR
	n.Loc = ev.Loc
	n.API = ev.API
	n.Event = ev.Event
	n.Obj = ev.Receiver
	n.RegSeq = ev.Regs[0].Seq
	n.Func = ev.Regs[0].Callback.Name
	n.Label = b.cachedRegistrationLabel(ev)
	b.newNode(n, "")
	for _, reg := range ev.Regs {
		cr := b.borrowPCR()
		cr.node, cr.reg, cr.api, cr.obj, cr.event = n, reg, ev.API, ev.Receiver, ev.Event
		// Append at the list tail: L_pending keeps registration order.
		if head := b.pending[reg.Callback]; head == nil {
			b.pending[reg.Callback] = cr
		} else {
			for head.next != nil {
				head = head.next
			}
			head.next = cr
		}
		b.byRegSeq[reg.Seq] = cr
	}
	if b.cfg.DebugStacks {
		n.Stack = captureStack()
	}
	// Relation edges to bound objects: listener-on-emitter
	// (□⇠'connection'⇠△) and promise-chain edges (△⇠then⇠△).
	if ob := b.g.ObjNode(ev.Receiver.ID); ob != NoNode {
		b.g.AddEdge(n.ID, ob, EdgeRelation, ev.Event)
	}
	if len(ev.Related) > 0 && ev.Receiver.Kind == vm.ObjPromise {
		b.g.AddEdge(b.g.ObjNode(ev.Receiver.ID), b.relatedOB(ev, 0), EdgeRelation, ev.Event)
		if b.cfg.ChainAnalysis {
			b.chainUp[ev.Related[0].ID] = ev.Receiver.ID
		}
	}
}

// retire drops a registration whose callback can no longer fire
// (clearTimeout, removeListener).
func (b *Builder) retire(seq uint64) {
	cr, ok := b.byRegSeq[seq]
	if !ok {
		return
	}
	cr.node.Removed = true
	delete(b.byRegSeq, seq)
	var prev *pendingCR
	for entry := b.pending[cr.reg.Callback]; entry != nil; prev, entry = entry, entry.next {
		if entry == cr {
			if prev == nil {
				b.pending[cr.reg.Callback] = entry.next
			} else {
				prev.next = entry.next
			}
			b.recyclePCR(cr)
			break
		}
	}
}

func (b *Builder) relatedOB(ev *vm.APIEvent, i int) NodeID {
	if i >= len(ev.Related) {
		return NoNode
	}
	return b.g.ObjNode(ev.Related[i].ID)
}

// FunctionEnter implements vm.Hooks: Algorithm 1 (tick delimitation) and
// Algorithm 3 (execution-to-registration mapping).
func (b *Builder) FunctionEnter(fn *vm.Function, info *vm.CallInfo) {
	if len(b.sstack) == 0 {
		if !info.TopLevel {
			// Attached in the middle of a tick: as in the paper, wait
			// for the current tick to finish and construct the shadow
			// stack from the following one.
			return
		}
		// A new tick starts whenever the shadow stack is empty; its
		// type is the loop phase under which the callback runs
		// (Algorithm 1, getIterType).
		b.curTick = b.g.blankTick(info.Phase)
	}
	ce := NoNode
	d := info.Dispatch
	if d != nil && d.API != "main" && d.API != promise.APIPassthrough && b.tracked(d.API) {
		if cr := b.matchPending(fn, info); cr != nil {
			ce = b.executeCR(cr, fn, info)
			if cr.reg.Once {
				// matchPending unlinked a once-registration; its fields
				// are consumed, so the entry can go back to the pool.
				b.recyclePCR(cr)
			}
		}
	}
	b.sstack = append(b.sstack, frame{fn: fn, ce: ce})
}

// matchPending runs the context validator over L_pending[fn] and returns
// the matching registration, removing it if it fires once.
func (b *Builder) matchPending(fn *vm.Function, info *vm.CallInfo) *pendingCR {
	var prev *pendingCR
	for cr := b.pending[fn]; cr != nil; prev, cr = cr, cr.next {
		if !b.validate(cr, info) {
			continue
		}
		if cr.reg.Once {
			if prev == nil {
				b.pending[fn] = cr.next
			} else {
				prev.next = cr.next
			}
			cr.next = nil
			delete(b.byRegSeq, cr.reg.Seq)
		}
		return cr
	}
	// The runtime claims a registration we either never saw (attached
	// late) or failed to validate (a real anomaly).
	if d := info.Dispatch; d.RegSeq != 0 {
		if cr, ok := b.byRegSeq[d.RegSeq]; ok {
			b.anomalies = append(b.anomalies,
				fmt.Sprintf("validator rejected %s for %s (reg %d)", cr.api, fn, d.RegSeq))
		}
	}
	return nil
}

// validate is the paper's context validator: it checks that the current
// execution context (tick type, bound object, event name) matches the
// pending registration. When the dispatch carries the runtime's own
// registration sequence, it must agree — a disagreement is an anomaly,
// not a match.
func (b *Builder) validate(cr *pendingCR, info *vm.CallInfo) bool {
	d := info.Dispatch
	if d.RegSeq != 0 && d.RegSeq != cr.reg.Seq {
		return false
	}
	switch cr.reg.Phase {
	case events.PhaseAny:
		// Emitter listeners run synchronously under any tick; match on
		// the emitter identity and event name.
		return d.Obj == cr.obj && d.Event == cr.event
	case "sync":
		// Immediately-invoked callbacks (promise executors, async
		// function bodies): match on API and object.
		return d.API == cr.api && (cr.obj.IsZero() || d.Obj == cr.obj)
	default:
		if info.Phase != cr.reg.Phase {
			return false
		}
		if !cr.obj.IsZero() && d.Obj != cr.obj {
			return false
		}
		return true
	}
}

// executeCR creates the ○ node for an execution mapped to cr, with the
// binding edge (○⇠□) and the causal edge (★→○ when a trigger caused the
// execution, □→○ otherwise) — Algorithm 3.
func (b *Builder) executeCR(cr *pendingCR, fn *vm.Function, info *vm.CallInfo) NodeID {
	name := fn.Name
	if name == "" {
		name = "anonymous"
	}
	n := b.g.blankNode()
	n.Kind = CE
	n.Loc = fn.Loc
	n.API = cr.api
	n.Event = cr.event
	n.Obj = cr.obj
	n.Func = fn.Name
	n.Label = b.cachedExecutionLabel(fn.Loc, name)
	b.newNode(n, info.Phase)
	cr.node.Executions++
	b.g.AddEdge(n.ID, cr.node.ID, EdgeBinding, "")
	if ct, ok := b.ctByTrig[info.Dispatch.TriggerSeq]; ok && info.Dispatch.TriggerSeq != 0 {
		b.g.AddEdge(ct, n.ID, EdgeDirect, "")
	} else {
		b.g.AddEdge(cr.node.ID, n.ID, EdgeDirect, "")
	}
	if enc := b.EnclosingCE(); enc != NoNode {
		b.g.AddEdge(enc, n.ID, EdgeDirect, "")
	}
	return n.ID
}

// FunctionExit implements vm.Hooks: it pops the shadow stack and commits
// the tick when the outermost frame exits (Algorithm 1).
func (b *Builder) FunctionExit(fn *vm.Function, ret vm.Value, thrown *vm.Thrown) {
	if len(b.sstack) == 0 {
		return // attached mid-invocation: ignore the unmatched exit
	}
	top := b.sstack[len(b.sstack)-1]
	if top.fn != fn {
		b.anomalies = append(b.anomalies,
			fmt.Sprintf("shadow stack mismatch: popped %s, expected %s", fn, top.fn))
	}
	b.sstack = b.sstack[:len(b.sstack)-1]
	if len(b.sstack) == 0 && b.curTick != nil {
		if len(b.curTick.Nodes) > 0 {
			b.commitTick()
		}
		b.curTick = nil
	}
}

func (b *Builder) commitTick() {
	t := b.curTick
	t.Index = len(b.g.Ticks) + 1
	for _, id := range t.Nodes {
		b.g.Nodes[id].Tick = t.Index
	}
	b.g.Ticks = append(b.g.Ticks, t)
}

// triggerLabel renders ★ labels like "L15: emit('foo')" or "L3: resolve".
func triggerLabel(ev *vm.APIEvent) string {
	switch ev.API {
	case events.APIEmit:
		return fmt.Sprintf("%s: emit('%s')", ev.Loc.Short(), ev.Event)
	case promise.APIResolve:
		return fmt.Sprintf("%s: resolve", ev.Loc.Short())
	case promise.APIReject:
		return fmt.Sprintf("%s: reject", ev.Loc.Short())
	default:
		return fmt.Sprintf("%s: %s", ev.Loc.Short(), ev.API)
	}
}

// registrationLabel renders □ labels like "L7: createServer",
// "L9: on('foo')", "L5: nextTick".
func registrationLabel(ev *vm.APIEvent) string {
	name := ev.API
	switch ev.API {
	case "process.nextTick":
		name = "nextTick"
	case events.APIOn:
		name = fmt.Sprintf("on('%s')", ev.Event)
	case events.APIOnce:
		name = fmt.Sprintf("once('%s')", ev.Event)
	case events.APIPrepend:
		name = fmt.Sprintf("prependListener('%s')", ev.Event)
	case events.APIPrependOnce:
		name = fmt.Sprintf("prependOnceListener('%s')", ev.Event)
	case promise.APIThen:
		name = "then"
	case promise.APICatch:
		name = "catch"
	case promise.APIFinally:
		name = "finally"
	case promise.APIExecutor:
		name = "Promise"
	case promise.APIAsync:
		name = "async"
	case promise.APIAwait:
		name = "await"
	}
	return fmt.Sprintf("%s: %s", ev.Loc.Short(), name)
}
