// Package asyncgraph implements the Async Graph (AG) of the paper — a
// time-oriented graph describing the asynchronous flow of a program on
// the simulated Node.js event loop — together with the builder that
// constructs it from probe events (the paper's Algorithms 1–3) and DOT
// and JSON exporters.
//
// # Node kinds
//
// Nodes come in four kinds, drawn with the paper's symbols throughout
// this repository's output:
//
//	CR  □  callback registration  (on, then, setTimeout, ...)
//	CE  ○  callback execution     (the registered callback running)
//	CT  ★  callback trigger       (emit, resolve, reject, I/O ready)
//	OB  △  object binding         (promise / emitter creation)
//
// Nodes are grouped into event-loop ticks (one top-level callback
// execution each, labelled "t3:io"); edges are either solid direct
// causal edges (→) or dashed binding/relation edges (⇠).
//
// # The edge model
//
// Three edge shapes carry all causality. For the canonical snippet
//
//	// t1:main                        t2:promise
//	p.then(cb)                        cb() runs
//	p.resolve()
//
// the builder emits:
//
//		 t1:main                 │    t2:promise
//		                         │
//		  □ then ──────────────────────→ ○ cb ─────→ (nodes created in cb)
//		      ▲                  │      ╱   direct: happens-in
//		      ┆ binding (CE ⇠ CR)│     ╱
//		      └┄┄┄┄┄┄┄┄┄┄┄┄┄┄┄┄┄┄┄┄┄┄┄╱
//		  ★ resolve ───────────────→ ○ cb
//		                direct: trigger (CT → CE)
//
//	  - CR → CE (direct): the registration caused this execution. When a
//	    CT exists it is the primary cause; the CR edge still records
//	    which registration the callback came from.
//	  - CT → CE (direct): the trigger (resolve/emit/expiry) that made the
//	    callback runnable.
//	  - CE → n (direct, "happens-in"): every node n created while a
//	    callback executes hangs off that execution — this is what lets a
//	    backward walk recover "who created this?".
//	  - CE ⇠ CR (binding, dashed): each execution is bound back to its
//	    registration node.
//	  - OB relation edges (dashed, labelled "then", "link", ...) connect
//	    object-binding nodes to related nodes.
//
// The provenance package inverts exactly these edges to produce the
// async causal chain ("async stack trace") behind a detector warning.
//
// # Warnings and provenance
//
// Detector findings attach to nodes as Warning values; each carries its
// anchor NodeID, and — once the provenance or explore layer has run —
// its Chain ([]ChainHop, defined here so every layer can embed chains
// without importing the walker) and ReplayToken.
//
// # Debug stacks
//
// With Config.DebugStacks set, the builder captures the resolved Go
// call stack at every OB creation, CT trigger, and CR registration, so
// chain hops can show the program call sites that produced them. The
// capture is off by default: it is the mode's dominant cost (see
// EXPERIMENTS.md for measurements).
package asyncgraph
