package asyncgraph

import (
	"strings"
	"testing"

	"asyncg/internal/eventloop"
	"asyncg/internal/events"
	"asyncg/internal/loc"
	"asyncg/internal/vm"
)

func buildSmall(t *testing.T) *Builder {
	t.Helper()
	return build(t, DefaultConfig(), func(l *eventloop.Loop) {
		e := events.New(l, "srv", loc.Here())
		e.On(loc.Here(), "req", vm.NewFunc("handler", func([]vm.Value) vm.Value { return vm.Undefined }))
		e.Emit(loc.Here(), "req")
		e.On(loc.Here(), "never", vm.NewFunc("dead", func([]vm.Value) vm.Value { return vm.Undefined }))
		l.NextTick(loc.Here(), vm.NewFunc("tick", func([]vm.Value) vm.Value { return vm.Undefined }))
	})
}

func TestWriteTimeline(t *testing.T) {
	b := buildSmall(t)
	g := b.Graph()
	g.AddWarning(g.NodesOfKind(CR)[1].ID, "dead-listener", "never executed", loc.Internal)
	var sb strings.Builder
	if err := g.WriteTimeline(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"t1:main", "t2:nextTick",
		"△ E1:srv", "□", "○", "★",
		"(ran 1×)",
		"⚡ dead-listener: never executed",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("timeline missing %q:\n%s", want, out)
		}
	}
}

func TestTimelineRendersUncommittedNodes(t *testing.T) {
	// A truncated run leaves the last tick uncommitted; the timeline
	// must still show its nodes.
	l := eventloop.New(eventloop.Options{TickLimit: 3})
	b := NewBuilder(DefaultConfig())
	l.Probes().Attach(b)
	var again *vm.Function
	again = vm.NewFunc("again", func([]vm.Value) vm.Value {
		l.NextTick(loc.Here(), again)
		return vm.Undefined
	})
	main := vm.NewFunc("main", func([]vm.Value) vm.Value {
		l.NextTick(loc.Here(), again)
		return vm.Undefined
	})
	if err := l.Run(main); err != eventloop.ErrTickLimit {
		t.Fatal(err)
	}
	// Force an uncommitted node situation by checking output renders.
	var sb strings.Builder
	if err := b.Graph().WriteTimeline(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "t1:main") {
		t.Fatalf("timeline:\n%s", sb.String())
	}
}

func TestComputeStats(t *testing.T) {
	b := buildSmall(t)
	s := b.Graph().ComputeStats()
	if s.Ticks != 2 {
		t.Errorf("Ticks = %d", s.Ticks)
	}
	if s.Registrations != 3 { // two listeners + one nextTick
		t.Errorf("Registrations = %d", s.Registrations)
	}
	if s.Executions != 2 { // handler + tick
		t.Errorf("Executions = %d", s.Executions)
	}
	if s.DeadCRs != 1 { // the 'never' listener
		t.Errorf("DeadCRs = %d", s.DeadCRs)
	}
	if s.ByKind["OB"] != 1 || s.ByKind["CT"] != 1 {
		t.Errorf("ByKind = %v", s.ByKind)
	}
	if s.ByPhase["main"] != 1 || s.ByPhase["nextTick"] != 1 {
		t.Errorf("ByPhase = %v", s.ByPhase)
	}
}
