package asyncgraph

// ChainHop is one step of an async causal chain: a single Async Graph
// node on the backward walk from a warning's anchor towards the main
// tick. A chain reads like a stack trace — hop 0 is the warning's own
// node, the last hop is the oldest cause the graph records (typically a
// registration performed by the main program). The provenance package
// computes chains; this type lives here so every layer that carries
// warnings (detect, explore, server, fleet) can embed chains without
// importing the walker.
type ChainHop struct {
	// Node is the hop's graph node ID (valid for the graph the chain was
	// walked on; chains survive serialization, node IDs do not resolve
	// across different runs).
	Node NodeID `json:"node"`
	// Kind is the node class tag: "CR", "CE", "CT", or "OB".
	Kind string `json:"kind"`
	// Step names the causal edge that led from the previous (more
	// recent) hop to this one: "" for the anchor hop, "trigger" for the
	// ★ whose firing ran the previous execution, "registration" for the
	// □ that registered the previous execution's callback, and "context"
	// for the ○ during which the previous hop's node was created.
	Step string `json:"step,omitempty"`
	// Tick is the committed tick label ("t3:io"), or "" for nodes in an
	// uncommitted tick.
	Tick string `json:"tick,omitempty"`
	// Label is the node's display label ("L7: on('foo')", "P1").
	Label string `json:"label"`
	// Loc is the source location of the originating API use
	// ("file.go:12", or "*" when unknown).
	Loc string `json:"loc"`
	// Func names the registered/executed callback, when the node has one.
	Func string `json:"func,omitempty"`
	// Stack is the Go call stack captured at the node's creation site —
	// populated only under the opt-in debug-stacks mode
	// (Config.DebugStacks), filtered to user frames.
	Stack []string `json:"stack,omitempty"`
}
