package asyncgraph

import (
	"bytes"
	"strings"
	"testing"
)

// TestDOTCanonicalOrder: DOT emission must not depend on the in-memory
// order of the tick, node, and edge slices — equal graphs render to
// equal bytes, so two runs (or a run and its replay) can be diffed.
func TestDOTCanonicalOrder(t *testing.T) {
	a := fpGraph([]int{0, 1, 2})
	b := fpGraph([]int{0, 1, 2})
	// Scramble every slice whose order WriteDOT must not observe.
	b.Edges[0], b.Edges[1] = b.Edges[1], b.Edges[0]
	b.Ticks[0].Nodes[0], b.Ticks[0].Nodes[2] = b.Ticks[0].Nodes[2], b.Ticks[0].Nodes[0]
	if got, want := b.DOT("t"), a.DOT("t"); got != want {
		t.Errorf("DOT depends on slice order:\n--- canonical ---\n%s\n--- scrambled ---\n%s", want, got)
	}
}

// TestDOTStableAcrossJSONRoundtrip: a graph written to the JSON log
// format and read back renders to the identical DOT bytes, so agviz
// output of a dumped log matches asyncg -dot of the live run.
func TestDOTStableAcrossJSONRoundtrip(t *testing.T) {
	g := fpGraph([]int{2, 0, 1})
	var buf bytes.Buffer
	if err := g.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := back.DOT("t"), g.DOT("t"); got != want {
		t.Errorf("DOT changed across JSON roundtrip:\n--- live ---\n%s\n--- roundtrip ---\n%s", want, got)
	}
}

// TestDOTSortsEdgesByEndpoints guards the canonical edge order: an
// edge added "late" between early nodes still sorts next to its peers.
func TestDOTSortsEdgesByEndpoints(t *testing.T) {
	g := fpGraph([]int{0, 1, 2})
	g.AddEdge(g.Nodes[0].ID, g.Nodes[2].ID, EdgeDirect, "")
	dot := g.DOT("t")
	first := strings.Index(dot, "n0 ->")
	last := strings.LastIndex(dot, "n2 ->")
	if first == -1 || last == -1 || first > last {
		t.Fatalf("edges not sorted by source id:\n%s", dot)
	}
}
