package asyncgraph

import (
	"fmt"
	"io"
	"strings"
)

// WriteTimeline renders the graph tick by tick in plain text — a
// terminal-friendly view of the same information the paper's figures
// lay out horizontally. Each tick lists its nodes with the paper's
// glyphs (□ CR, ○ CE, ★ CT, △ OB) and any warnings.
func (g *Graph) WriteTimeline(w io.Writer) error {
	glyph := map[NodeKind]string{CR: "□", CE: "○", CT: "★", OB: "△"}
	var b strings.Builder
	for _, tk := range g.Ticks {
		fmt.Fprintf(&b, "%s\n", tk.Name())
		for _, id := range tk.Nodes {
			n := g.Node(id)
			detail := ""
			if n.Kind == CR && n.Executions > 0 {
				detail = fmt.Sprintf("  (ran %d×)", n.Executions)
			}
			if n.Removed {
				detail += "  (removed)"
			}
			fmt.Fprintf(&b, "  %s %-34s %s%s\n", glyph[n.Kind], n.Label, n.API, detail)
			for _, warn := range n.Warnings {
				fmt.Fprintf(&b, "      ⚡ %s\n", warn)
			}
		}
	}
	// Nodes of an uncommitted final tick (truncated runs).
	var loose []*Node
	for _, n := range g.Nodes {
		if n.Tick == 0 {
			loose = append(loose, n)
		}
	}
	if len(loose) > 0 {
		fmt.Fprintf(&b, "t%d:(truncated)\n", len(g.Ticks)+1)
		for _, n := range loose {
			fmt.Fprintf(&b, "  %s %-34s %s\n", glyph[n.Kind], n.Label, n.API)
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// Stats summarizes a graph for reporting.
type Stats struct {
	Ticks         int            // committed event-loop ticks
	Nodes         int            // total graph nodes
	Edges         int            // total graph edges
	ByKind        map[string]int // node count per kind (CR/CE/CT/OB)
	ByPhase       map[string]int // tick count per loop phase
	Registrations int            // CR nodes
	Executions    int            // total CE nodes
	DeadCRs       int            // never-executed, never-removed registrations
	Warnings      int            // detector findings
}

// ComputeStats derives summary statistics.
func (g *Graph) ComputeStats() Stats {
	s := Stats{
		Ticks:    len(g.Ticks),
		Nodes:    len(g.Nodes),
		Edges:    len(g.Edges),
		ByKind:   make(map[string]int),
		ByPhase:  make(map[string]int),
		Warnings: len(g.Warnings),
	}
	for _, n := range g.Nodes {
		s.ByKind[n.Kind.String()]++
		switch n.Kind {
		case CR:
			s.Registrations++
			if n.Executions == 0 && !n.Removed {
				s.DeadCRs++
			}
		case CE:
			s.Executions++
		}
	}
	for _, tk := range g.Ticks {
		s.ByPhase[tk.Phase]++
	}
	return s
}
