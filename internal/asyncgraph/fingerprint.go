package asyncgraph

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"sort"
)

// fingerprintRounds is the number of Weisfeiler-Lehman refinement
// rounds. Three rounds propagate structure across CR→CE→(created nodes)
// chains far enough to separate every graph shape the detectors care
// about, while staying O(rounds · edges · log).
const fingerprintRounds = 3

// Fingerprint returns a canonical hash of the graph's structure: the
// multiset of CR/CE/CT/OB nodes (kind, API, event, callback name, source
// location, removal state, containing phase) connected by direct,
// binding and relation edges. It is invariant under node numbering, edge
// order and tick numbering, so two runs of a program produce the same
// fingerprint exactly when they built the same Async Graph shape —
// the equivalence the explore package uses to diff schedules.
//
// Volatile decoration is deliberately excluded: display labels and
// object ids (both depend on allocation order), registration/trigger
// sequence numbers, execution counters (already represented by CE nodes
// and binding edges), warnings (classified separately), and promise
// stacks.
func (g *Graph) Fingerprint() string {
	n := len(g.Nodes)
	labels := make([]uint64, n)
	for i, node := range g.Nodes {
		labels[i] = nodeBaseLabel(g, node)
	}

	type arc struct {
		tag uint64 // edge kind + edge label
		nbr int
	}
	out := make([][]arc, n)
	in := make([][]arc, n)
	for _, e := range g.Edges {
		if g.Node(e.From) == nil || g.Node(e.To) == nil {
			continue
		}
		tag := hashStrings("edge", e.Kind.String(), e.Label)
		out[e.From] = append(out[e.From], arc{tag: tag, nbr: int(e.To)})
		in[e.To] = append(in[e.To], arc{tag: tag, nbr: int(e.From)})
	}

	next := make([]uint64, n)
	neigh := make([]uint64, 0, 16)
	for round := 0; round < fingerprintRounds; round++ {
		for i := 0; i < n; i++ {
			h := fnv.New64a()
			putUint64(h, labels[i])
			for dir, arcs := range [2][]arc{out[i], in[i]} {
				neigh = neigh[:0]
				for _, a := range arcs {
					neigh = append(neigh, a.tag^mix(labels[a.nbr]))
				}
				sort.Slice(neigh, func(x, y int) bool { return neigh[x] < neigh[y] })
				putUint64(h, uint64(dir)<<32|uint64(len(neigh)))
				for _, v := range neigh {
					putUint64(h, v)
				}
			}
			next[i] = h.Sum64()
		}
		labels, next = next, labels
	}

	sorted := append([]uint64(nil), labels...)
	sort.Slice(sorted, func(x, y int) bool { return sorted[x] < sorted[y] })
	final := sha256.New()
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(n))
	final.Write(buf[:])
	binary.LittleEndian.PutUint64(buf[:], uint64(len(g.Edges)))
	final.Write(buf[:])
	for _, v := range sorted {
		binary.LittleEndian.PutUint64(buf[:], v)
		final.Write(buf[:])
	}
	sum := final.Sum(nil)
	return fmt.Sprintf("ag1-%x", sum[:8])
}

// nodeBaseLabel hashes the schedule-stable attributes of one node. The
// containing tick's phase participates (a callback running in the timer
// phase is different behaviour from the same callback in the I/O phase)
// but the tick index does not.
func nodeBaseLabel(g *Graph, n *Node) uint64 {
	phase := ""
	if tk := g.TickOf(n.ID); tk != nil {
		phase = tk.Phase
	}
	removed := "live"
	if n.Removed {
		removed = "removed"
	}
	return hashStrings("node", n.Kind.String(), n.API, n.Event, n.Func, n.Loc.String(), phase, removed)
}

func hashStrings(parts ...string) uint64 {
	h := fnv.New64a()
	for _, p := range parts {
		h.Write([]byte(p))
		h.Write([]byte{0})
	}
	return h.Sum64()
}

func putUint64(h interface{ Write([]byte) (int, error) }, v uint64) {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], v)
	h.Write(buf[:])
}

// mix finalizes a label before it joins a neighbour multiset, so that a
// node label and an edge tag cannot cancel structurally (xor without
// mixing would make a-tag-b and b-tag-a collide).
func mix(v uint64) uint64 {
	v ^= v >> 33
	v *= 0xff51afd7ed558ccd
	v ^= v >> 33
	v *= 0xc4ceb9fe1a85ec53
	v ^= v >> 33
	return v
}
