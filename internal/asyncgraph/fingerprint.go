package asyncgraph

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"slices"

	"asyncg/internal/loc"
)

// fingerprintRounds is the number of Weisfeiler-Lehman refinement
// rounds. Three rounds propagate structure across CR→CE→(created nodes)
// chains far enough to separate every graph shape the detectors care
// about, while staying O(rounds · edges · log).
const fingerprintRounds = 3

// Inline FNV-1a over the exact byte stream hash/fnv would see. The
// refinement loop hashes every node every round; going through a heap-
// allocated hash.Hash64 there dominated the per-run allocation profile
// of schedule exploration, so the hashing is open-coded on uint64
// state instead (same constants, same result).
const (
	fnvOffset64 uint64 = 14695981039346656037
	fnvPrime64  uint64 = 1099511628211
)

// fnvByte folds one byte into an FNV-1a state.
func fnvByte(h uint64, b byte) uint64 { return (h ^ uint64(b)) * fnvPrime64 }

// fnvUint64 folds v's 8 little-endian bytes into the state, matching
// putUint64-into-fnv byte order.
func fnvUint64(h, v uint64) uint64 {
	for i := 0; i < 8; i++ {
		h = fnvByte(h, byte(v>>(8*i)))
	}
	return h
}

// fnvString folds a string plus a 0 separator into the state, without
// the []byte conversion a hash.Hash64 Write would force.
func fnvString(h uint64, s string) uint64 {
	for i := 0; i < len(s); i++ {
		h = fnvByte(h, s[i])
	}
	return fnvByte(h, 0)
}

// arc is one edge endpoint as the refinement sees it: the edge's tag
// (kind + label) and the neighbour's index.
type arc struct {
	tag uint64
	nbr int32
}

// fpScratch holds the working storage one Fingerprint call needs. It
// lives on the Graph (created lazily on first use) so a graph that is
// fingerprinted after every run — the explore engine's steady state —
// reuses one allocation set instead of rebuilding labels, CSR views and
// the hash stream each call.
type fpScratch struct {
	labels, next, tags, neigh []uint64
	outArcs, inArcs           []arc
	outOff, inOff, fill       []int32
	stream                    []byte
}

// growU64 resizes buf to n elements, reallocating only when capacity is
// short. Contents are unspecified; callers overwrite every element.
func growU64(buf *[]uint64, n int) []uint64 {
	if cap(*buf) < n {
		*buf = make([]uint64, n)
	}
	*buf = (*buf)[:n]
	return *buf
}

// growI32 resizes buf to n zeroed elements.
func growI32(buf *[]int32, n int) []int32 {
	if cap(*buf) < n {
		*buf = make([]int32, n)
	}
	*buf = (*buf)[:n]
	clear(*buf)
	return *buf
}

// growArcs resizes buf to n arcs. Contents are unspecified; buildArcs
// overwrites every slot.
func growArcs(buf *[]arc, n int) []arc {
	if cap(*buf) < n {
		*buf = make([]arc, n)
	}
	*buf = (*buf)[:n]
	return *buf
}

// Fingerprint returns a canonical hash of the graph's structure: the
// multiset of CR/CE/CT/OB nodes (kind, API, event, callback name, source
// location, removal state, containing phase) connected by direct,
// binding and relation edges. It is invariant under node numbering, edge
// order and tick numbering, so two runs of a program produce the same
// fingerprint exactly when they built the same Async Graph shape —
// the equivalence the explore package uses to diff schedules.
//
// Volatile decoration is deliberately excluded: display labels and
// object ids (both depend on allocation order), registration/trigger
// sequence numbers, execution counters (already represented by CE nodes
// and binding edges), warnings (classified separately), and promise
// stacks.
func (g *Graph) Fingerprint() string {
	if g.fp == nil {
		g.fp = &fpScratch{}
	}
	s := g.fp
	n := len(g.Nodes)
	labels := growU64(&s.labels, n)
	for i, node := range g.Nodes {
		labels[i] = nodeBaseLabel(g, node)
	}

	// Adjacency in CSR form: one flat arc slice per direction with a
	// count-then-fill layout, instead of n append-grown slices.
	tags := growU64(&s.tags, len(g.Edges))
	for i, e := range g.Edges {
		tags[i] = edgeTag(e)
	}
	outArcs, outOff := buildArcs(g, n, tags, false, &s.outArcs, &s.outOff, &s.fill)
	inArcs, inOff := buildArcs(g, n, tags, true, &s.inArcs, &s.inOff, &s.fill)

	next := growU64(&s.next, n)
	neigh := s.neigh[:0]
	for round := 0; round < fingerprintRounds; round++ {
		for i := 0; i < n; i++ {
			h := fnvUint64(fnvOffset64, labels[i])
			for dir, view := range [2]struct {
				arcs []arc
				off  []int32
			}{{outArcs, outOff}, {inArcs, inOff}} {
				neigh = neigh[:0]
				for _, a := range view.arcs[view.off[i]:view.off[i+1]] {
					neigh = append(neigh, a.tag^mix(labels[a.nbr]))
				}
				slices.Sort(neigh)
				h = fnvUint64(h, uint64(dir)<<32|uint64(len(neigh)))
				for _, v := range neigh {
					h = fnvUint64(h, v)
				}
			}
			next[i] = h
		}
		labels, next = next, labels
	}
	s.labels, s.next, s.neigh = labels, next, neigh

	slices.Sort(labels)
	stream := s.stream[:0]
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(n))
	stream = append(stream, buf[:]...)
	binary.LittleEndian.PutUint64(buf[:], uint64(len(g.Edges)))
	stream = append(stream, buf[:]...)
	for _, v := range labels {
		binary.LittleEndian.PutUint64(buf[:], v)
		stream = append(stream, buf[:]...)
	}
	s.stream = stream
	sum := sha256.Sum256(stream)
	var out [20]byte
	copy(out[:], "ag1-")
	hex.Encode(out[4:], sum[:8])
	return string(out[:])
}

// buildArcs lays the graph's edges out as a CSR adjacency view for one
// direction: arcs for node i live at arcs[off[i]:off[i+1]]. Edges with
// a dangling endpoint are skipped, matching the defensive check the
// refinement historically performed.
func buildArcs(g *Graph, n int, tags []uint64, inbound bool, arcBuf *[]arc, offBuf, fillBuf *[]int32) ([]arc, []int32) {
	off := growI32(offBuf, n+1)
	valid := func(e Edge) bool {
		return e.From >= 0 && int(e.From) < n && e.To >= 0 && int(e.To) < n
	}
	anchor := func(e Edge) int {
		if inbound {
			return int(e.To)
		}
		return int(e.From)
	}
	other := func(e Edge) int32 {
		if inbound {
			return int32(e.From)
		}
		return int32(e.To)
	}
	for _, e := range g.Edges {
		if valid(e) {
			off[anchor(e)+1]++
		}
	}
	for i := 0; i < n; i++ {
		off[i+1] += off[i]
	}
	arcs := growArcs(arcBuf, int(off[n]))
	fill := growI32(fillBuf, n)
	for i, e := range g.Edges {
		if !valid(e) {
			continue
		}
		a := anchor(e)
		arcs[off[a]+fill[a]] = arc{tag: tags[i], nbr: other(e)}
		fill[a]++
	}
	return arcs, off
}

// edgeTag hashes an edge's schedule-stable attributes, matching the
// historical hashStrings("edge", kind, label) byte stream.
func edgeTag(e Edge) uint64 {
	h := fnvString(fnvOffset64, "edge")
	h = fnvString(h, e.Kind.String())
	return fnvString(h, e.Label)
}

// nodeBaseLabel hashes the schedule-stable attributes of one node. The
// containing tick's phase participates (a callback running in the timer
// phase is different behaviour from the same callback in the I/O phase)
// but the tick index does not.
func nodeBaseLabel(g *Graph, n *Node) uint64 {
	phase := ""
	if tk := g.TickOf(n.ID); tk != nil {
		phase = tk.Phase
	}
	removed := "live"
	if n.Removed {
		removed = "removed"
	}
	h := fnvString(fnvOffset64, "node")
	h = fnvString(h, n.Kind.String())
	h = fnvString(h, n.API)
	h = fnvString(h, n.Event)
	h = fnvString(h, n.Func)
	h = fnvLoc(h, n.Loc)
	h = fnvString(h, phase)
	return fnvString(h, removed)
}

// fnvLoc folds a location's rendered form ("file:line" or "*") into the
// state without materializing the string Loc.String would allocate.
func fnvLoc(h uint64, l loc.Loc) uint64 {
	if l.IsInternal() {
		return fnvString(h, "*")
	}
	for i := 0; i < len(l.File); i++ {
		h = fnvByte(h, l.File[i])
	}
	h = fnvByte(h, ':')
	var digits [20]byte
	i := len(digits)
	v := l.Line
	if v <= 0 {
		i--
		digits[i] = '0'
	}
	for v > 0 {
		i--
		digits[i] = byte('0' + v%10)
		v /= 10
	}
	for ; i < len(digits); i++ {
		h = fnvByte(h, digits[i])
	}
	return fnvByte(h, 0)
}

// mix finalizes a label before it joins a neighbour multiset, so that a
// node label and an edge tag cannot cancel structurally (xor without
// mixing would make a-tag-b and b-tag-a collide).
func mix(v uint64) uint64 {
	v ^= v >> 33
	v *= 0xff51afd7ed558ccd
	v ^= v >> 33
	v *= 0xc4ceb9fe1a85ec53
	v ^= v >> 33
	return v
}
