package asyncgraph

import (
	"encoding/json"
	"io"
	"strings"

	"asyncg/internal/loc"
	"asyncg/internal/vm"
)

// jsonGraph is the serialized form of a graph: the log format the
// paper's artifact uploads to its visualization website.
type jsonGraph struct {
	Ticks    []jsonTick    `json:"ticks"`
	Nodes    []jsonNode    `json:"nodes"`
	Edges    []jsonEdge    `json:"edges"`
	Warnings []jsonWarning `json:"warnings,omitempty"`
}

type jsonTick struct {
	Index int    `json:"index"`
	Phase string `json:"phase"`
	Nodes []int  `json:"nodes"`
}

type jsonNode struct {
	ID       int      `json:"id"`
	Kind     string   `json:"kind"`
	Tick     int      `json:"tick"`
	Loc      string   `json:"loc"`
	API      string   `json:"api"`
	Event    string   `json:"event,omitempty"`
	Label    string   `json:"label"`
	Obj      uint64   `json:"obj,omitempty"`
	Func     string   `json:"func,omitempty"`
	Execs    int      `json:"executions,omitempty"`
	Removed  bool     `json:"removed,omitempty"`
	Warnings []string `json:"warnings,omitempty"`
	Value    string   `json:"value,omitempty"`
	Stack    []string `json:"stack,omitempty"`
}

type jsonEdge struct {
	From  int    `json:"from"`
	To    int    `json:"to"`
	Kind  string `json:"kind"`
	Label string `json:"label,omitempty"`
}

type jsonWarning struct {
	Category string `json:"category"`
	Message  string `json:"message"`
	Node     int    `json:"node"`
	Loc      string `json:"loc"`
}

// ReadJSON parses a graph previously serialized with WriteJSON — the
// upload path of the paper's visualization website: AsyncG dumps a log,
// the viewer reconstructs and renders the graph.
func ReadJSON(r io.Reader) (*Graph, error) {
	var in jsonGraph
	if err := json.NewDecoder(r).Decode(&in); err != nil {
		return nil, err
	}
	g := NewGraph()
	kinds := map[string]NodeKind{"CR": CR, "CE": CE, "CT": CT, "OB": OB}
	for _, jn := range in.Nodes {
		n := &Node{
			Kind:     kinds[jn.Kind],
			Tick:     jn.Tick,
			Loc:      loc.Parse(jn.Loc),
			API:      jn.API,
			Event:    jn.Event,
			Label:    jn.Label,
			Func:     jn.Func,
			Obj:      objRefFor(jn.Obj, jn.API),
			Removed:  jn.Removed,
			Warnings: jn.Warnings,
			ValueStr: jn.Value,
			Stack:    jn.Stack,
		}
		n.Executions = jn.Execs
		g.addNode(n)
	}
	kindNames := map[string]EdgeKind{"direct": EdgeDirect, "binding": EdgeBinding, "relation": EdgeRelation}
	for _, je := range in.Edges {
		g.AddEdge(NodeID(je.From), NodeID(je.To), kindNames[je.Kind], je.Label)
	}
	for _, jt := range in.Ticks {
		t := &Tick{Index: jt.Index, Phase: jt.Phase}
		for _, id := range jt.Nodes {
			t.Nodes = append(t.Nodes, NodeID(id))
		}
		g.Ticks = append(g.Ticks, t)
	}
	for _, jw := range in.Warnings {
		g.Warnings = append(g.Warnings, Warning{
			Category: Category(jw.Category),
			Message:  jw.Message,
			Node:     NodeID(jw.Node),
			Loc:      loc.Parse(jw.Loc),
		})
	}
	return g, nil
}

// objRefFor reconstructs enough object identity for graph queries; the
// original ObjKind is recovered from the node's API family.
func objRefFor(id uint64, api string) vm.ObjRef {
	if id == 0 {
		return vm.ObjRef{}
	}
	ref := vm.ObjRef{ID: id}
	switch {
	case strings.HasPrefix(api, "promise") || strings.HasPrefix(api, "Promise") || api == "await":
		ref.Kind = vm.ObjPromise
	case strings.HasPrefix(api, "set") || strings.HasPrefix(api, "clear"):
		ref.Kind = vm.ObjTimer
	default:
		// Emitters, including wrapped listener APIs (http.createServer).
		ref.Kind = vm.ObjEmitter
	}
	return ref
}

// WriteJSON serializes the graph as indented JSON.
func (g *Graph) WriteJSON(w io.Writer) error {
	out := jsonGraph{}
	for _, t := range g.Ticks {
		jt := jsonTick{Index: t.Index, Phase: t.Phase, Nodes: make([]int, len(t.Nodes))}
		for i, id := range t.Nodes {
			jt.Nodes[i] = int(id)
		}
		out.Ticks = append(out.Ticks, jt)
	}
	for _, n := range g.Nodes {
		out.Nodes = append(out.Nodes, jsonNode{
			ID:       int(n.ID),
			Kind:     n.Kind.String(),
			Tick:     n.Tick,
			Loc:      n.Loc.String(),
			API:      n.API,
			Event:    n.Event,
			Label:    n.Label,
			Obj:      n.Obj.ID,
			Func:     n.Func,
			Execs:    n.Executions,
			Removed:  n.Removed,
			Warnings: n.Warnings,
			Value:    n.ValueStr,
			Stack:    n.Stack,
		})
	}
	for _, e := range g.Edges {
		out.Edges = append(out.Edges, jsonEdge{
			From: int(e.From), To: int(e.To), Kind: e.Kind.String(), Label: e.Label,
		})
	}
	for _, warn := range g.Warnings {
		out.Warnings = append(out.Warnings, jsonWarning{
			Category: string(warn.Category),
			Message:  warn.Message,
			Node:     int(warn.Node),
			Loc:      warn.Loc.String(),
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}
