package asyncgraph

import (
	"strings"
	"testing"

	"asyncg/internal/eventloop"
	"asyncg/internal/loc"
	"asyncg/internal/vm"
)

// buildChain produces a graph with N nextTick ticks.
func buildChain(t *testing.T, n int) *Builder {
	t.Helper()
	return build(t, DefaultConfig(), func(l *eventloop.Loop) {
		var step func(k int)
		step = func(k int) {
			if k == 0 {
				return
			}
			l.NextTick(loc.Here(), vm.NewFunc("step", func([]vm.Value) vm.Value {
				step(k - 1)
				return vm.Undefined
			}))
		}
		step(n)
	})
}

func TestTickRangeExtractsWindow(t *testing.T) {
	b := buildChain(t, 8) // main + 8 nextTick ticks
	g := b.Graph()
	if len(g.Ticks) != 9 {
		t.Fatalf("ticks = %d", len(g.Ticks))
	}
	sub := g.TickRange(1, 3)
	if len(sub.Ticks) != 3 {
		t.Fatalf("sub ticks = %d", len(sub.Ticks))
	}
	if sub.Ticks[0].Phase != "main" || sub.Ticks[1].Phase != "nextTick" {
		t.Fatalf("phases = %v %v", sub.Ticks[0].Phase, sub.Ticks[1].Phase)
	}
	// Indexes are re-densified.
	for i, tk := range sub.Ticks {
		if tk.Index != i+1 {
			t.Fatalf("tick %d index %d", i, tk.Index)
		}
	}
	// Every edge endpoint lives in the window.
	for _, e := range sub.Edges {
		if sub.Node(e.From) == nil || sub.Node(e.To) == nil {
			t.Fatalf("dangling edge %+v", e)
		}
	}
	// The window renders.
	if !strings.Contains(sub.DOT("w"), "t3:nextTick") {
		t.Fatal("DOT of window missing tick")
	}
}

func TestTickRangeMiddleWindowDropsCrossEdges(t *testing.T) {
	b := buildChain(t, 8)
	g := b.Graph()
	sub := g.TickRange(4, 5)
	if len(sub.Ticks) != 2 {
		t.Fatalf("sub ticks = %d", len(sub.Ticks))
	}
	// Each middle tick holds one CE and one CR; the CE's binding edge
	// targets the previous tick's CR, which is outside for tick 4 —
	// so tick 4's CE has no binding edge here, while tick 5's does.
	stats := sub.ComputeStats()
	if stats.ByKind["CE"] != 2 || stats.ByKind["CR"] != 2 {
		t.Fatalf("kinds = %v", stats.ByKind)
	}
}

func TestTickRangeClampsBounds(t *testing.T) {
	b := buildChain(t, 3)
	g := b.Graph()
	sub := g.TickRange(-5, 99)
	if len(sub.Ticks) != len(g.Ticks) {
		t.Fatalf("clamped range ticks = %d, want %d", len(sub.Ticks), len(g.Ticks))
	}
}

func TestTickRangePreservesWarnings(t *testing.T) {
	b := buildChain(t, 3)
	g := b.Graph()
	target := g.Ticks[1].Nodes[0]
	g.AddWarning(target, "test-cat", "windowed", loc.Internal)
	sub := g.TickRange(1, 2)
	found := false
	for _, w := range sub.Warnings {
		if w.Category == "test-cat" && sub.Node(w.Node) != nil {
			found = true
		}
	}
	if !found {
		t.Fatalf("warning lost in window: %v", sub.Warnings)
	}
}
