package asyncgraph

import (
	"bytes"
	"testing"

	"asyncg/internal/loc"
)

// fpGraph builds a three-node graph (OB → CR → CE) inserting the nodes
// in the given order, so tests can check the fingerprint is invariant
// under node numbering.
func fpGraph(order []int) *Graph {
	specs := []*Node{
		{Kind: OB, API: "new EventEmitter", Label: "E1", Loc: loc.Loc{File: "a.go", Line: 1}},
		{Kind: CR, API: "emitter.on", Event: "data", Func: "onData", Label: "L2: on", Loc: loc.Loc{File: "a.go", Line: 2}},
		{Kind: CE, API: "emitter.on", Event: "data", Func: "onData", Loc: loc.Loc{File: "a.go", Line: 2}},
	}
	g := NewGraph()
	tick := &Tick{Index: 1, Phase: "main"}
	ids := make(map[int]NodeID)
	for _, idx := range order {
		n := *specs[idx]
		node := g.addNode(&n)
		node.Tick = 1
		tick.Nodes = append(tick.Nodes, node.ID)
		ids[idx] = node.ID
	}
	g.Ticks = append(g.Ticks, tick)
	g.AddEdge(ids[0], ids[1], EdgeRelation, "link")
	g.AddEdge(ids[2], ids[1], EdgeBinding, "")
	return g
}

func TestFingerprintInvariantUnderNodeOrder(t *testing.T) {
	a := fpGraph([]int{0, 1, 2})
	b := fpGraph([]int{2, 0, 1})
	if a.Fingerprint() != b.Fingerprint() {
		t.Errorf("fingerprints differ under node renumbering: %s vs %s", a.Fingerprint(), b.Fingerprint())
	}
	// Edge insertion order must not matter either.
	c := fpGraph([]int{0, 1, 2})
	c.Edges[0], c.Edges[1] = c.Edges[1], c.Edges[0]
	if a.Fingerprint() != c.Fingerprint() {
		t.Errorf("fingerprints differ under edge reordering: %s vs %s", a.Fingerprint(), c.Fingerprint())
	}
}

func TestFingerprintSeparatesStructure(t *testing.T) {
	base := fpGraph([]int{0, 1, 2})
	seen := map[string]string{base.Fingerprint(): "base"}

	mutations := []struct {
		name string
		make func() *Graph
	}{
		{"removed CR", func() *Graph {
			g := fpGraph([]int{0, 1, 2})
			g.Nodes[1].Removed = true
			return g
		}},
		{"different phase", func() *Graph {
			g := fpGraph([]int{0, 1, 2})
			g.Ticks[0].Phase = "io"
			return g
		}},
		{"extra edge", func() *Graph {
			g := fpGraph([]int{0, 1, 2})
			g.AddEdge(0, 2, EdgeDirect, "")
			return g
		}},
		{"different event", func() *Graph {
			g := fpGraph([]int{0, 1, 2})
			g.Nodes[1].Event = "end"
			return g
		}},
	}
	for _, m := range mutations {
		fp := m.make().Fingerprint()
		if prev, dup := seen[fp]; dup {
			t.Errorf("%s collides with %s (%s)", m.name, prev, fp)
		}
		seen[fp] = m.name
	}
}

func TestFingerprintIgnoresVolatileDecoration(t *testing.T) {
	a := fpGraph([]int{0, 1, 2})
	b := fpGraph([]int{0, 1, 2})
	// Display labels, sequence numbers and execution counters depend on
	// allocation order across schedules and must not affect the hash.
	b.Nodes[0].Label = "E7"
	b.Nodes[1].RegSeq = 99
	b.Nodes[1].Executions = 3
	b.Nodes[2].TrigSeq = 42
	b.Warnings = append(b.Warnings, Warning{Category: "dead-listener", Message: "x", Node: 1})
	if a.Fingerprint() != b.Fingerprint() {
		t.Errorf("volatile decoration changed the fingerprint: %s vs %s", a.Fingerprint(), b.Fingerprint())
	}
}

func TestFingerprintStableAcrossJSONRoundtrip(t *testing.T) {
	g := fpGraph([]int{0, 1, 2})
	var buf bytes.Buffer
	if err := g.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g.Fingerprint() != back.Fingerprint() {
		t.Errorf("JSON roundtrip changed the fingerprint: %s vs %s", g.Fingerprint(), back.Fingerprint())
	}
}
