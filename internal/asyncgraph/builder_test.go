package asyncgraph

import (
	"strings"
	"testing"
	"time"

	"asyncg/internal/eventloop"
	"asyncg/internal/events"
	"asyncg/internal/loc"
	"asyncg/internal/promise"
	"asyncg/internal/vm"
)

// build runs program with a builder attached and returns the builder.
func build(t *testing.T, cfg Config, program func(l *eventloop.Loop)) *Builder {
	t.Helper()
	b, err := buildErr(t, cfg, program)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func buildErr(t *testing.T, cfg Config, program func(l *eventloop.Loop)) (*Builder, error) {
	t.Helper()
	l := eventloop.New(eventloop.Options{TickLimit: 10_000})
	b := NewBuilder(cfg)
	l.Probes().Attach(b)
	main := vm.NewFunc("main", func([]vm.Value) vm.Value {
		program(l)
		return vm.Undefined
	})
	err := l.Run(main)
	if got := b.Anomalies(); len(got) != 0 {
		t.Fatalf("validator anomalies: %v", got)
	}
	return b, err
}

func tickPhases(g *Graph) []string {
	out := make([]string, len(g.Ticks))
	for i, tk := range g.Ticks {
		out[i] = tk.Phase
	}
	return out
}

func TestMainTickIsFirst(t *testing.T) {
	b := build(t, DefaultConfig(), func(l *eventloop.Loop) {
		l.NextTick(loc.Here(), vm.NewFunc("cb", func([]vm.Value) vm.Value { return vm.Undefined }))
	})
	g := b.Graph()
	if len(g.Ticks) != 2 {
		t.Fatalf("ticks = %v", tickPhases(g))
	}
	if g.Ticks[0].Phase != "main" || g.Ticks[0].Index != 1 {
		t.Fatalf("first tick = %+v", g.Ticks[0])
	}
	if g.Ticks[1].Phase != "nextTick" {
		t.Fatalf("second tick = %+v", g.Ticks[1])
	}
}

func TestCRAndCENodesWithBindingEdge(t *testing.T) {
	b := build(t, DefaultConfig(), func(l *eventloop.Loop) {
		l.NextTick(loc.Here(), vm.NewFunc("cb", func([]vm.Value) vm.Value { return vm.Undefined }))
	})
	g := b.Graph()
	crs := g.NodesOfKind(CR)
	ces := g.NodesOfKind(CE)
	if len(crs) != 1 || len(ces) != 1 {
		t.Fatalf("CR=%d CE=%d", len(crs), len(ces))
	}
	cr, ce := crs[0], ces[0]
	if cr.Tick != 1 || ce.Tick != 2 {
		t.Fatalf("cr.Tick=%d ce.Tick=%d", cr.Tick, ce.Tick)
	}
	if cr.Executions != 1 {
		t.Fatalf("cr.Executions = %d", cr.Executions)
	}
	var binding, direct bool
	for _, e := range g.Edges {
		if e.Kind == EdgeBinding && e.From == ce.ID && e.To == cr.ID {
			binding = true
		}
		if e.Kind == EdgeDirect && e.From == cr.ID && e.To == ce.ID {
			direct = true
		}
	}
	if !binding || !direct {
		t.Fatalf("binding=%v direct=%v edges=%v", binding, direct, g.Edges)
	}
}

func TestEmptyTicksAreDropped(t *testing.T) {
	// A timer whose callback does nothing trackable still makes a CE
	// node (it was registered), but a loop iteration with no executed
	// callbacks must not commit ticks.
	b := build(t, DefaultConfig(), func(l *eventloop.Loop) {
		l.SetTimeout(loc.Here(), vm.NewFunc("t", func([]vm.Value) vm.Value { return vm.Undefined }), 10*time.Millisecond)
	})
	g := b.Graph()
	if len(g.Ticks) != 2 { // main + timer
		t.Fatalf("ticks = %v", tickPhases(g))
	}
}

func TestMicrotaskTicksArePerCallback(t *testing.T) {
	// Two nextTick callbacks produce two separate nextTick ticks, as in
	// Fig. 3(a) where each micro-task execution is its own tick.
	b := build(t, DefaultConfig(), func(l *eventloop.Loop) {
		l.NextTick(loc.Here(), vm.NewFunc("a", func([]vm.Value) vm.Value { return vm.Undefined }))
		l.NextTick(loc.Here(), vm.NewFunc("b", func([]vm.Value) vm.Value { return vm.Undefined }))
	})
	got := tickPhases(b.Graph())
	want := []string{"main", "nextTick", "nextTick"}
	if strings.Join(got, ",") != strings.Join(want, ",") {
		t.Fatalf("ticks = %v", got)
	}
}

func TestNestedRegistrationGetsHappensInEdge(t *testing.T) {
	b := build(t, DefaultConfig(), func(l *eventloop.Loop) {
		l.NextTick(loc.Here(), vm.NewFunc("outer", func([]vm.Value) vm.Value {
			l.SetImmediate(loc.Here(), vm.NewFunc("inner", func([]vm.Value) vm.Value { return vm.Undefined }))
			return vm.Undefined
		}))
	})
	g := b.Graph()
	var outerCE, innerCR *Node
	for _, n := range g.Nodes {
		if n.Kind == CE && n.Func == "outer" {
			outerCE = n
		}
		if n.Kind == CR && n.API == "setImmediate" {
			innerCR = n
		}
	}
	if outerCE == nil || innerCR == nil {
		t.Fatal("missing nodes")
	}
	if innerCR.Tick != outerCE.Tick {
		t.Fatalf("inner CR tick %d, outer CE tick %d (must share)", innerCR.Tick, outerCE.Tick)
	}
	found := false
	for _, e := range g.EdgesFrom(outerCE.ID) {
		if e.To == innerCR.ID && e.Kind == EdgeDirect {
			found = true
		}
	}
	if !found {
		t.Fatal("missing happens-in edge from outer CE to inner CR")
	}
}

func TestEmitterGraph(t *testing.T) {
	b := build(t, DefaultConfig(), func(l *eventloop.Loop) {
		e := events.New(l, "e", loc.Here())
		e.On(loc.Here(), "x", vm.NewFunc("listener", func([]vm.Value) vm.Value { return vm.Undefined }))
		e.Emit(loc.Here(), "x", 1)
	})
	g := b.Graph()
	obs := g.NodesOfKind(OB)
	cts := g.NodesOfKind(CT)
	ces := g.NodesOfKind(CE)
	if len(obs) != 1 || len(cts) != 1 || len(ces) != 1 {
		t.Fatalf("OB=%d CT=%d CE=%d", len(obs), len(cts), len(ces))
	}
	if !strings.HasPrefix(obs[0].Label, "E1") {
		t.Fatalf("emitter label = %q", obs[0].Label)
	}
	// ★→○ causal edge from the emit to the listener execution.
	found := false
	for _, e := range g.EdgesFrom(cts[0].ID) {
		if e.To == ces[0].ID && e.Kind == EdgeDirect {
			found = true
		}
	}
	if !found {
		t.Fatal("missing CT→CE edge for emitter dispatch")
	}
	// Listener CR relates to the emitter OB with the event name.
	crs := g.NodesOfKind(CR)
	related := false
	for _, e := range g.EdgesFrom(crs[0].ID) {
		if e.To == obs[0].ID && e.Kind == EdgeRelation && e.Label == "x" {
			related = true
		}
	}
	if !related {
		t.Fatal("missing CR⇠event⇠OB relation edge")
	}
}

func TestEmitterListenerSharesTickWithEmit(t *testing.T) {
	// Listeners run synchronously under the emitting tick.
	b := build(t, DefaultConfig(), func(l *eventloop.Loop) {
		e := events.New(l, "e", loc.Here())
		e.On(loc.Here(), "x", vm.NewFunc("listener", func([]vm.Value) vm.Value { return vm.Undefined }))
		l.SetTimeout(loc.Here(), vm.NewFunc("timercb", func([]vm.Value) vm.Value {
			e.Emit(loc.Here(), "x")
			return vm.Undefined
		}), time.Millisecond)
	})
	g := b.Graph()
	var emitCT, listenerCE *Node
	for _, n := range g.Nodes {
		if n.Kind == CT {
			emitCT = n
		}
		if n.Kind == CE && n.Func == "listener" {
			listenerCE = n
		}
	}
	if emitCT == nil || listenerCE == nil {
		t.Fatal("missing nodes")
	}
	if emitCT.Tick != listenerCE.Tick {
		t.Fatalf("emit tick %d != listener tick %d", emitCT.Tick, listenerCE.Tick)
	}
	if g.Ticks[emitCT.Tick-1].Phase != "timer" {
		t.Fatalf("phase = %s, want timer", g.Ticks[emitCT.Tick-1].Phase)
	}
}

func TestPromiseChainRelationEdges(t *testing.T) {
	b := build(t, DefaultConfig(), func(l *eventloop.Loop) {
		p := promise.Resolved(l, loc.Here(), 1)
		p.Then(loc.Here(), vm.NewFunc("h", func(args []vm.Value) vm.Value { return 2 }), nil).
			Catch(loc.Here(), vm.NewFunc("c", func(args []vm.Value) vm.Value { return vm.Undefined }))
	})
	g := b.Graph()
	obs := g.NodesOfKind(OB)
	if len(obs) != 3 { // p, then-derived, catch-derived
		t.Fatalf("OB count = %d", len(obs))
	}
	var thenEdge, catchEdge bool
	for _, e := range g.Edges {
		if e.Kind == EdgeRelation && e.Label == "then" && e.From == obs[0].ID && e.To == obs[1].ID {
			thenEdge = true
		}
		if e.Kind == EdgeRelation && e.Label == "catch" && e.From == obs[1].ID && e.To == obs[2].ID {
			catchEdge = true
		}
	}
	if !thenEdge || !catchEdge {
		t.Fatalf("then=%v catch=%v", thenEdge, catchEdge)
	}
}

func TestPromiseReactionRunsInPromiseTick(t *testing.T) {
	b := build(t, DefaultConfig(), func(l *eventloop.Loop) {
		promise.Resolved(l, loc.Here(), 1).Then(loc.Here(),
			vm.NewFunc("h", func(args []vm.Value) vm.Value { return vm.Undefined }), nil)
	})
	g := b.Graph()
	ces := g.NodesOfKind(CE)
	if len(ces) != 1 {
		t.Fatalf("CE = %d", len(ces))
	}
	if tk := g.TickOf(ces[0].ID); tk == nil || tk.Phase != "promise" {
		t.Fatalf("reaction tick = %+v", tk)
	}
}

func TestResolveProducesTriggerNodeLinkedToCE(t *testing.T) {
	b := build(t, DefaultConfig(), func(l *eventloop.Loop) {
		p := promise.New(l, loc.Here(), vm.NewFunc("exec", func(args []vm.Value) vm.Value {
			args[0].(*promise.Promise).Resolve(loc.Here(), 0)
			return vm.Undefined
		}))
		p.Then(loc.Here(), vm.NewFunc("h", func(args []vm.Value) vm.Value { return vm.Undefined }), nil)
	})
	g := b.Graph()
	var resolveCT, reactionCE *Node
	for _, n := range g.Nodes {
		if n.Kind == CT && n.API == promise.APIResolve {
			resolveCT = n
		}
		if n.Kind == CE && n.Func == "h" {
			reactionCE = n
		}
	}
	if resolveCT == nil || reactionCE == nil {
		t.Fatal("missing trigger or reaction node")
	}
	found := false
	for _, e := range g.EdgesFrom(resolveCT.ID) {
		if e.To == reactionCE.ID && e.Kind == EdgeDirect {
			found = true
		}
	}
	if !found {
		t.Fatal("missing ★→○ edge from resolve to reaction")
	}
	// The executor runs synchronously in the main tick, so the resolve
	// trigger must be in tick 1.
	if resolveCT.Tick != 1 {
		t.Fatalf("resolve tick = %d", resolveCT.Tick)
	}
}

func TestIntervalCRHasMultipleExecutions(t *testing.T) {
	b := build(t, DefaultConfig(), func(l *eventloop.Loop) {
		count := 0
		var id uint64
		id = l.SetInterval(loc.Here(), vm.NewFunc("tick", func([]vm.Value) vm.Value {
			count++
			if count == 3 {
				l.ClearInterval(loc.Here(), id)
			}
			return vm.Undefined
		}), time.Millisecond)
	})
	g := b.Graph()
	crs := g.NodesOfKind(CR)
	if len(crs) != 1 || crs[0].Executions != 3 {
		t.Fatalf("crs = %+v", crs)
	}
	if len(g.NodesOfKind(CE)) != 3 {
		t.Fatalf("CE count = %d", len(g.NodesOfKind(CE)))
	}
}

func TestClearTimeoutRetiresRegistration(t *testing.T) {
	b := build(t, DefaultConfig(), func(l *eventloop.Loop) {
		id := l.SetTimeout(loc.Here(), vm.NewFunc("t", func([]vm.Value) vm.Value { return vm.Undefined }), time.Millisecond)
		l.ClearTimeout(loc.Here(), id)
	})
	g := b.Graph()
	crs := g.NodesOfKind(CR)
	if len(crs) != 1 || !crs[0].Removed || crs[0].Executions != 0 {
		t.Fatalf("crs = %+v", crs[0])
	}
}

func TestNoPromiseConfigSkipsPromiseNodes(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Promises = false
	b := build(t, cfg, func(l *eventloop.Loop) {
		promise.Resolved(l, loc.Here(), 1).Then(loc.Here(),
			vm.NewFunc("h", func(args []vm.Value) vm.Value { return vm.Undefined }), nil)
		l.NextTick(loc.Here(), vm.NewFunc("t", func([]vm.Value) vm.Value { return vm.Undefined }))
	})
	g := b.Graph()
	for _, n := range g.Nodes {
		if strings.HasPrefix(n.API, "promise.") {
			t.Fatalf("promise node tracked despite Promises=false: %+v", n)
		}
	}
	// nextTick still tracked.
	if len(g.NodesOfKind(CE)) != 1 {
		t.Fatalf("CE = %d, want 1 (the nextTick)", len(g.NodesOfKind(CE)))
	}
}

func TestTickLimitTruncationKeepsGraph(t *testing.T) {
	l := eventloop.New(eventloop.Options{TickLimit: 10})
	b := NewBuilder(DefaultConfig())
	l.Probes().Attach(b)
	var compute *vm.Function
	compute = vm.NewFunc("compute", func([]vm.Value) vm.Value {
		l.NextTick(loc.Here(), compute)
		return vm.Undefined
	})
	main := vm.NewFunc("main", func([]vm.Value) vm.Value {
		l.NextTick(loc.Here(), compute)
		return vm.Undefined
	})
	if err := l.Run(main); err != eventloop.ErrTickLimit {
		t.Fatalf("err = %v", err)
	}
	g := b.Graph()
	if len(g.Ticks) < 5 {
		t.Fatalf("graph truncated too hard: %d ticks", len(g.Ticks))
	}
	for _, tk := range g.Ticks[1:] {
		if tk.Phase != "nextTick" {
			t.Fatalf("unexpected phase %s", tk.Phase)
		}
	}
}

func TestAttachDetachMidRun(t *testing.T) {
	l := eventloop.New(eventloop.Options{})
	b := NewBuilder(DefaultConfig())
	main := vm.NewFunc("main", func([]vm.Value) vm.Value {
		l.NextTick(loc.Here(), vm.NewFunc("first", func([]vm.Value) vm.Value {
			l.Probes().Attach(b)
			l.NextTick(loc.Here(), vm.NewFunc("second", func([]vm.Value) vm.Value {
				l.Probes().Detach(b)
				l.NextTick(loc.Here(), vm.NewFunc("third", func([]vm.Value) vm.Value { return vm.Undefined }))
				return vm.Undefined
			}))
			return vm.Undefined
		}))
		return vm.Undefined
	})
	if err := l.Run(main); err != nil {
		t.Fatal(err)
	}
	g := b.Graph()
	// Only the 'second' registration+execution window was observed.
	if len(g.NodesOfKind(CR)) != 1 {
		t.Fatalf("CR = %d", len(g.NodesOfKind(CR)))
	}
	for _, n := range g.Nodes {
		if n.Func == "third" && n.Kind == CE {
			t.Fatal("saw execution after detach")
		}
	}
}

func TestDOTOutputIsWellFormed(t *testing.T) {
	b := build(t, DefaultConfig(), func(l *eventloop.Loop) {
		e := events.New(l, "server", loc.Here())
		e.On(loc.Here(), "request", vm.NewFunc("accept", func([]vm.Value) vm.Value { return vm.Undefined }))
		e.Emit(loc.Here(), "request")
		promise.Resolved(l, loc.Here(), 1).Then(loc.Here(),
			vm.NewFunc("h", func(args []vm.Value) vm.Value { return vm.Undefined }), nil)
	})
	dot := b.Graph().DOT("test")
	for _, want := range []string{
		"digraph AsyncGraph", "cluster_t1", "t1:main",
		"shape=box", "shape=ellipse", "shape=star", "shape=triangle",
		"style=dashed",
	} {
		if !strings.Contains(dot, want) {
			t.Errorf("DOT missing %q:\n%s", want, dot)
		}
	}
	if strings.Count(dot, "{") != strings.Count(dot, "}") {
		t.Error("unbalanced braces in DOT output")
	}
}

func TestJSONRoundTripsNodeCount(t *testing.T) {
	b := build(t, DefaultConfig(), func(l *eventloop.Loop) {
		l.NextTick(loc.Here(), vm.NewFunc("cb", func([]vm.Value) vm.Value { return vm.Undefined }))
	})
	var sb strings.Builder
	if err := b.Graph().WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, `"kind": "CR"`) || !strings.Contains(out, `"kind": "CE"`) {
		t.Fatalf("JSON missing node kinds:\n%s", out)
	}
	if !strings.Contains(out, `"phase": "nextTick"`) {
		t.Fatalf("JSON missing tick phase:\n%s", out)
	}
}

func TestAsyncAwaitGraph(t *testing.T) {
	b := build(t, DefaultConfig(), func(l *eventloop.Loop) {
		data := promise.Resolved(l, loc.Here(), 42)
		promise.Go(l, loc.Here(), "fetch", func(aw *promise.Awaiter) vm.Value {
			return aw.Await(loc.Here(), data)
		})
	})
	g := b.Graph()
	var awaitCR *Node
	for _, n := range g.Nodes {
		if n.Kind == CR && n.API == promise.APIAwait {
			awaitCR = n
		}
	}
	if awaitCR == nil {
		t.Fatal("no await CR node")
	}
	if awaitCR.Executions != 1 {
		t.Fatalf("await executions = %d", awaitCR.Executions)
	}
}

func TestNoIOConfigSkipsNetworkNodes(t *testing.T) {
	cfg := DefaultConfig()
	cfg.IO = false
	l := eventloop.New(eventloop.Options{TickLimit: 10_000})
	b := NewBuilder(cfg)
	l.Probes().Attach(b)
	main := vm.NewFunc("main", func([]vm.Value) vm.Value {
		// An IO-categorized registration event must be ignored...
		seq := l.NextRegSeq()
		cb := vm.NewFunc("ioCb", func([]vm.Value) vm.Value { return vm.Undefined })
		l.EmitAPIEvent(&vm.APIEvent{
			API:  "fs.readFile",
			Loc:  loc.Here(),
			Regs: []vm.Registration{{Seq: seq, Callback: cb, Phase: "nextTick", Once: true, Role: "callback"}},
		})
		l.ScheduleTickJob(cb, nil, &vm.Dispatch{API: "fs.readFile", RegSeq: seq})
		// ...while scheduling APIs stay tracked.
		l.NextTick(loc.Here(), vm.NewFunc("t", func([]vm.Value) vm.Value { return vm.Undefined }))
		return vm.Undefined
	})
	if err := l.Run(main); err != nil {
		t.Fatal(err)
	}
	g := b.Graph()
	for _, n := range g.Nodes {
		if n.API == "fs.readFile" {
			t.Fatalf("IO node tracked despite IO=false: %+v", n)
		}
	}
	if len(g.NodesOfKind(CE)) != 1 {
		t.Fatalf("CE count = %d, want 1 (the nextTick)", len(g.NodesOfKind(CE)))
	}
}
