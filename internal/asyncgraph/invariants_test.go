package asyncgraph

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"asyncg/internal/eventloop"
	"asyncg/internal/events"
	"asyncg/internal/loc"
	"asyncg/internal/promise"
	"asyncg/internal/vm"
)

// randomProgram schedules a random mix of async operations, including
// nested scheduling from callbacks, driven deterministically by seed.
func randomProgram(l *eventloop.Loop, seed int64, ops int) *vm.Function {
	rng := rand.New(rand.NewSource(seed))
	var emitters []*events.Emitter
	var promises []*promise.Promise
	var schedule func(budget *int)
	oneOp := func(budget *int) {
		if *budget <= 0 {
			return
		}
		*budget--
		switch rng.Intn(10) {
		case 0:
			l.NextTick(loc.Here(), vm.NewFunc("tick", func([]vm.Value) vm.Value {
				schedule(budget)
				return vm.Undefined
			}))
		case 1:
			l.SetTimeout(loc.Here(), vm.NewFunc("timer", func([]vm.Value) vm.Value {
				schedule(budget)
				return vm.Undefined
			}), time.Duration(rng.Intn(5))*time.Millisecond)
		case 2:
			l.SetImmediate(loc.Here(), vm.NewFunc("imm", func([]vm.Value) vm.Value {
				schedule(budget)
				return vm.Undefined
			}))
		case 3:
			emitters = append(emitters, events.New(l, fmt.Sprintf("e%d", len(emitters)), loc.Here()))
		case 4:
			if len(emitters) > 0 {
				e := emitters[rng.Intn(len(emitters))]
				e.On(loc.Here(), fmt.Sprintf("ev%d", rng.Intn(3)), vm.NewFunc("listener", func([]vm.Value) vm.Value {
					schedule(budget)
					return vm.Undefined
				}))
			}
		case 5:
			if len(emitters) > 0 {
				e := emitters[rng.Intn(len(emitters))]
				e.Emit(loc.Here(), fmt.Sprintf("ev%d", rng.Intn(3)), rng.Intn(100))
			}
		case 6:
			promises = append(promises, promise.New(l, loc.Here(), nil))
		case 7:
			if len(promises) > 0 {
				p := promises[rng.Intn(len(promises))]
				derived := p.Then(loc.Here(), vm.NewFunc("reaction", func(args []vm.Value) vm.Value {
					schedule(budget)
					return args[0]
				}), nil)
				promises = append(promises, derived)
			}
		case 8:
			if len(promises) > 0 {
				p := promises[rng.Intn(len(promises))]
				if rng.Intn(2) == 0 {
					p.Resolve(loc.Here(), rng.Intn(100))
				} else {
					p.Reject(loc.Here(), "err")
				}
			}
		case 9:
			if len(promises) > 0 {
				p := promises[rng.Intn(len(promises))]
				promises = append(promises, p.Catch(loc.Here(), vm.NewFunc("onerr", func(args []vm.Value) vm.Value {
					return vm.Undefined
				})))
			}
		}
	}
	schedule = func(budget *int) {
		n := rng.Intn(3)
		for i := 0; i < n; i++ {
			oneOp(budget)
		}
	}
	return vm.NewFunc("main", func([]vm.Value) vm.Value {
		budget := ops
		for budget > 0 {
			oneOp(&budget)
		}
		return vm.Undefined
	})
}

// buildRandom runs a random program under a builder and returns it.
func buildRandom(seed int64, ops int) (*Builder, error) {
	l := eventloop.New(eventloop.Options{TickLimit: 50_000})
	b := NewBuilder(DefaultConfig())
	l.Probes().Attach(b)
	err := l.Run(randomProgram(l, seed, ops))
	return b, err
}

// checkInvariants asserts the structural invariants every Async Graph
// must satisfy, regardless of program.
func checkInvariants(t *testing.T, b *Builder) {
	t.Helper()
	g := b.Graph()
	if anomalies := b.Anomalies(); len(anomalies) != 0 {
		t.Fatalf("validator anomalies: %v", anomalies)
	}
	// Edges reference valid nodes.
	for _, e := range g.Edges {
		if g.Node(e.From) == nil || g.Node(e.To) == nil {
			t.Fatalf("dangling edge %+v", e)
		}
	}
	// Tick indexes are dense and 1-based; nodes in a tick point back.
	seen := make(map[NodeID]int)
	for i, tk := range g.Ticks {
		if tk.Index != i+1 {
			t.Fatalf("tick %d has index %d", i, tk.Index)
		}
		if len(tk.Nodes) == 0 {
			t.Fatalf("empty tick committed: %+v", tk)
		}
		for _, id := range tk.Nodes {
			if prev, dup := seen[id]; dup {
				t.Fatalf("node %d in ticks %d and %d", id, prev, tk.Index)
			}
			seen[id] = tk.Index
			if g.Node(id).Tick != tk.Index {
				t.Fatalf("node %d says tick %d, contained in %d", id, g.Node(id).Tick, tk.Index)
			}
		}
	}
	// Every CE has exactly one binding edge, targeting a CR.
	bindingFrom := make(map[NodeID]int)
	for _, e := range g.Edges {
		if e.Kind == EdgeBinding {
			bindingFrom[e.From]++
			if g.Node(e.To).Kind != CR {
				t.Fatalf("binding edge to non-CR node %+v", g.Node(e.To))
			}
			if g.Node(e.From).Kind != CE {
				t.Fatalf("binding edge from non-CE node %+v", g.Node(e.From))
			}
		}
	}
	for _, n := range g.NodesOfKind(CE) {
		if bindingFrom[n.ID] != 1 {
			t.Fatalf("CE %d has %d binding edges", n.ID, bindingFrom[n.ID])
		}
	}
	// CR execution counters match incoming binding edges.
	bindingsTo := make(map[NodeID]int)
	for _, e := range g.Edges {
		if e.Kind == EdgeBinding {
			bindingsTo[e.To]++
		}
	}
	for _, n := range g.NodesOfKind(CR) {
		if n.Executions != bindingsTo[n.ID] {
			t.Fatalf("CR %d: Executions=%d, binding edges=%d", n.ID, n.Executions, bindingsTo[n.ID])
		}
	}
	// Valid phases only.
	valid := map[string]bool{
		"main": true, "nextTick": true, "promise": true,
		"timer": true, "io": true, "immediate": true, "close": true,
	}
	for _, tk := range g.Ticks {
		if !valid[tk.Phase] {
			t.Fatalf("invalid phase %q", tk.Phase)
		}
	}
}

// TestQuickGraphInvariants: the structural invariants hold for random
// programs.
func TestQuickGraphInvariants(t *testing.T) {
	f := func(seed int64) bool {
		b, err := buildRandom(seed, 40)
		if err != nil {
			return false
		}
		checkInvariants(t, b)
		return !t.Failed()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickDeterministicGraphs: the same seed yields the same graph
// shape (node kind/API sequence and tick phases).
func TestQuickDeterministicGraphs(t *testing.T) {
	shape := func(b *Builder) string {
		out := ""
		for _, n := range b.Graph().Nodes {
			out += fmt.Sprintf("%s:%s;", n.Kind, n.API)
		}
		for _, tk := range b.Graph().Ticks {
			out += tk.Phase + ","
		}
		return out
	}
	f := func(seed int64) bool {
		b1, err1 := buildRandom(seed, 30)
		b2, err2 := buildRandom(seed, 30)
		if err1 != nil || err2 != nil {
			return false
		}
		return shape(b1) == shape(b2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickExportsNeverFail: DOT and JSON generation succeed on any
// random graph, and the JSON round-trips with identical node counts.
func TestQuickExportsNeverFail(t *testing.T) {
	f := func(seed int64) bool {
		b, err := buildRandom(seed, 30)
		if err != nil {
			return false
		}
		g := b.Graph()
		if len(g.DOT("q")) == 0 {
			return false
		}
		var sb strings.Builder
		if err := g.WriteJSON(&sb); err != nil {
			return false
		}
		back, err := ReadJSON(strings.NewReader(sb.String()))
		if err != nil {
			return false
		}
		return len(back.Nodes) == len(g.Nodes) &&
			len(back.Edges) == len(g.Edges) &&
			len(back.Ticks) == len(g.Ticks)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
