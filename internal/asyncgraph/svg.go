package asyncgraph

import (
	"fmt"
	"io"
	"strings"
)

// The SVG exporter renders an Async Graph the way the paper's figures
// and the artifact's website do: event-loop ticks as vertical bands laid
// out left to right, nodes inside their tick using the paper's shapes
// (box=CR, circle=CE, star=CT, triangle=OB), solid arrows for causal
// edges and dashed ones for bindings and relations. The output is a
// self-contained SVG document viewable in any browser.

// svg layout constants (pixels).
const (
	svgNodeW    = 170
	svgNodeH    = 34
	svgVGap     = 22
	svgHGap     = 70
	svgTopPad   = 64
	svgLeftPad  = 30
	svgTickPadY = 16
)

// svgPos is a node's layout slot.
type svgPos struct {
	x, y int // center coordinates
}

// WriteSVG renders the graph as a standalone SVG document.
func (g *Graph) WriteSVG(w io.Writer, title string) error {
	// Layout: one column per committed tick, plus one trailing column
	// for nodes of an uncommitted (truncated) tick.
	columns := make([][]NodeID, len(g.Ticks))
	for i, tk := range g.Ticks {
		columns[i] = tk.Nodes
	}
	var loose []NodeID
	for _, n := range g.Nodes {
		if n.Tick == 0 {
			loose = append(loose, n.ID)
		}
	}
	if len(loose) > 0 {
		columns = append(columns, loose)
	}

	pos := make(map[NodeID]svgPos)
	maxRows := 0
	for col, nodes := range columns {
		if len(nodes) > maxRows {
			maxRows = len(nodes)
		}
		for row, id := range nodes {
			pos[id] = svgPos{
				x: svgLeftPad + col*(svgNodeW+svgHGap) + svgNodeW/2,
				y: svgTopPad + svgTickPadY + row*(svgNodeH+svgVGap) + svgNodeH/2,
			}
		}
	}
	width := svgLeftPad*2 + len(columns)*(svgNodeW+svgHGap)
	height := svgTopPad + svgTickPadY*2 + maxRows*(svgNodeH+svgVGap) + 40
	if maxRows == 0 {
		height = svgTopPad + 80
	}

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" font-family="Helvetica,Arial,sans-serif">`+"\n", width, height)
	b.WriteString(`<defs><marker id="arrow" viewBox="0 0 10 10" refX="9" refY="5" markerWidth="7" markerHeight="7" orient="auto-start-reverse"><path d="M 0 0 L 10 5 L 0 10 z"/></marker></defs>` + "\n")
	fmt.Fprintf(&b, `<text x="%d" y="28" font-size="16" font-weight="bold">%s</text>`+"\n", svgLeftPad, escapeXML(title))

	// Tick bands and labels.
	for col := range columns {
		x := svgLeftPad + col*(svgNodeW+svgHGap) - svgHGap/4
		label := "(truncated)"
		if col < len(g.Ticks) {
			label = g.Ticks[col].Name()
		}
		fmt.Fprintf(&b,
			`<rect x="%d" y="%d" width="%d" height="%d" fill="none" stroke="#999" stroke-dasharray="6 4"/>`+"\n",
			x, svgTopPad, svgNodeW+svgHGap/2, height-svgTopPad-12)
		fmt.Fprintf(&b, `<text x="%d" y="%d" font-size="13" fill="#444">%s</text>`+"\n",
			x+6, svgTopPad-6, escapeXML(label))
	}

	// Edges under nodes.
	for _, e := range g.Edges {
		from, okF := pos[e.From]
		to, okT := pos[e.To]
		if !okF || !okT {
			continue
		}
		style := `stroke="#333"`
		marker := ` marker-end="url(#arrow)"`
		if e.Kind != EdgeDirect {
			style = `stroke="#777" stroke-dasharray="5 4"`
		}
		fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" %s%s/>`+"\n",
			from.x, from.y, to.x, to.y, style, marker)
		if e.Label != "" {
			fmt.Fprintf(&b, `<text x="%d" y="%d" font-size="10" fill="#777">%s</text>`+"\n",
				(from.x+to.x)/2, (from.y+to.y)/2-4, escapeXML(e.Label))
		}
	}

	// Nodes.
	for id, p := range pos {
		n := g.Node(id)
		stroke := "#222"
		if len(n.Warnings) > 0 {
			stroke = "#c00"
		}
		b.WriteString(nodeShapeSVG(n, p, stroke))
		label := n.Label
		if len(n.Warnings) > 0 {
			label = "⚡ " + label
		}
		fmt.Fprintf(&b, `<text x="%d" y="%d" font-size="11" text-anchor="middle">%s</text>`+"\n",
			p.x, p.y+4, escapeXML(truncateLabel(label, 26)))
		if len(n.Warnings) > 0 {
			fmt.Fprintf(&b, `<title>%s</title>`+"\n", escapeXML(strings.Join(n.Warnings, "\n")))
		}
	}
	b.WriteString("</svg>\n")
	_, err := io.WriteString(w, b.String())
	return err
}

// nodeShapeSVG draws the paper's glyph for the node kind.
func nodeShapeSVG(n *Node, p svgPos, stroke string) string {
	w, h := svgNodeW-14, svgNodeH-6
	switch n.Kind {
	case CE:
		return fmt.Sprintf(`<ellipse cx="%d" cy="%d" rx="%d" ry="%d" fill="#fff" stroke="%s"/>`+"\n",
			p.x, p.y, w/2, h/2, stroke)
	case CT:
		return fmt.Sprintf(`<path d="%s" fill="#fff" stroke="%s"/>`+"\n", starPath(p.x, p.y, h), stroke)
	case OB:
		return fmt.Sprintf(`<polygon points="%d,%d %d,%d %d,%d" fill="#fff" stroke="%s"/>`+"\n",
			p.x, p.y-h/2-4, p.x-w/3, p.y+h/2+2, p.x+w/3, p.y+h/2+2, stroke)
	default: // CR
		return fmt.Sprintf(`<rect x="%d" y="%d" width="%d" height="%d" fill="#fff" stroke="%s"/>`+"\n",
			p.x-w/2, p.y-h/2, w, h, stroke)
	}
}

// starPath draws a five-pointed star centered at (cx, cy).
func starPath(cx, cy, size int) string {
	// Precomputed unit-star offsets (outer/inner alternating), scaled.
	type pt struct{ dx, dy float64 }
	unit := []pt{
		{0, -1}, {0.2245, -0.309}, {0.951, -0.309}, {0.3633, 0.118},
		{0.5878, 0.809}, {0, 0.382}, {-0.5878, 0.809}, {-0.3633, 0.118},
		{-0.951, -0.309}, {-0.2245, -0.309},
	}
	s := float64(size) * 0.75
	var sb strings.Builder
	for i, u := range unit {
		cmd := "L"
		if i == 0 {
			cmd = "M"
		}
		fmt.Fprintf(&sb, "%s %.1f %.1f ", cmd, float64(cx)+u.dx*s, float64(cy)+u.dy*s)
	}
	sb.WriteString("Z")
	return sb.String()
}

func truncateLabel(s string, max int) string {
	runes := []rune(s)
	if len(runes) <= max {
		return s
	}
	return string(runes[:max-1]) + "…"
}

func escapeXML(s string) string {
	r := strings.NewReplacer(
		"&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;", "'", "&apos;",
	)
	return r.Replace(s)
}
