// Package instrument provides the tool-side building blocks shared by
// the Async Graph builder and the bug detectors: classification of async
// APIs into the paper's categories (the per-API "templates" of Algorithm
// 2 — which argument is the callback, where it is scheduled, and whether
// it fires once are carried by the probe protocol itself), lightweight
// API-usage counters (Fig. 6(b)), and an event tracer.
package instrument

import "strings"

// Category groups async APIs the way the paper's evaluation does.
type Category int

// API categories.
const (
	CatOther      Category = iota
	CatScheduling          // process.nextTick, timers, immediates
	CatEmitter             // EventEmitter APIs
	CatPromise             // promises and async/await
	CatIO                  // simulated network / fs APIs
)

// String names the category for diagnostics and trace output.
func (c Category) String() string {
	switch c {
	case CatScheduling:
		return "scheduling"
	case CatEmitter:
		return "emitter"
	case CatPromise:
		return "promise"
	case CatIO:
		return "io"
	default:
		return "other"
	}
}

// Categorize maps an API name from the probe protocol to its category.
func Categorize(api string) Category {
	switch api {
	case "process.nextTick", "queueMicrotask",
		"setTimeout", "setInterval", "setImmediate",
		"clearTimeout", "clearInterval", "clearImmediate":
		return CatScheduling
	case "await", "async function":
		return CatPromise
	}
	switch {
	case strings.HasPrefix(api, "promise.") || strings.HasPrefix(api, "Promise."):
		return CatPromise
	case strings.HasPrefix(api, "emitter.") || api == "new EventEmitter":
		return CatEmitter
	case strings.HasPrefix(api, "net.") || strings.HasPrefix(api, "http.") ||
		strings.HasPrefix(api, "fs.") || strings.HasPrefix(api, "socket.") ||
		strings.HasPrefix(api, "server.") || strings.HasPrefix(api, "db."):
		return CatIO
	default:
		return CatOther
	}
}

// IsNextTick reports whether the API is process.nextTick, which the
// paper's Fig. 6(b) counts separately from other scheduling APIs.
func IsNextTick(api string) bool { return api == "process.nextTick" }
