package instrument

import (
	"fmt"
	"io"
	"strings"

	"asyncg/internal/vm"
)

// Tracer is a hook that writes a human-readable line per probe event —
// useful when debugging programs (or the simulator) without building a
// full Async Graph.
type Tracer struct {
	w     io.Writer
	depth int
}

// NewTracer creates a tracer writing to w.
func NewTracer(w io.Writer) *Tracer { return &Tracer{w: w} }

func (t *Tracer) indent() string { return strings.Repeat("  ", t.depth) }

// FunctionEnter implements vm.Hooks.
func (t *Tracer) FunctionEnter(fn *vm.Function, info *vm.CallInfo) {
	api := ""
	if info.Dispatch != nil {
		api = " via " + info.Dispatch.API
	}
	fmt.Fprintf(t.w, "%s> %s [%s]%s\n", t.indent(), fn, info.Phase, api)
	t.depth++
}

// FunctionExit implements vm.Hooks.
func (t *Tracer) FunctionExit(fn *vm.Function, ret vm.Value, thrown *vm.Thrown) {
	if t.depth > 0 {
		t.depth--
	}
	if thrown != nil {
		fmt.Fprintf(t.w, "%s< %s threw %s\n", t.indent(), fn.Name, vm.ToString(thrown.Value))
		return
	}
	fmt.Fprintf(t.w, "%s< %s\n", t.indent(), fn.Name)
}

// APICall implements vm.Hooks.
func (t *Tracer) APICall(ev *vm.APIEvent) {
	detail := ""
	if ev.Event != "" {
		detail = fmt.Sprintf("(%s)", ev.Event)
	}
	fmt.Fprintf(t.w, "%s* %s%s at %s\n", t.indent(), ev.API, detail, ev.Loc)
}
