package instrument

import (
	"fmt"
	"io"
	"strings"

	"asyncg/internal/vm"
)

// Tracer is a probe that writes a human-readable line per event —
// useful when debugging programs (or the simulator) without building a
// full Async Graph. It implements eventloop.Probe plus the optional
// phase and timer extensions; for structured, machine-readable output
// use internal/trace instead.
type Tracer struct {
	w     io.Writer
	depth int
}

// The unified probe surface (eventloop.Probe and its extensions, aliased
// from these vm interfaces) is what every consumer implements.
var (
	_ vm.Hooks      = (*Tracer)(nil)
	_ vm.PhaseHooks = (*Tracer)(nil)
	_ vm.TimerHooks = (*Tracer)(nil)
	_ vm.Hooks      = (*Counter)(nil)
)

// NewTracer creates a tracer writing to w.
func NewTracer(w io.Writer) *Tracer { return &Tracer{w: w} }

func (t *Tracer) indent() string { return strings.Repeat("  ", t.depth) }

// FunctionEnter implements vm.Hooks.
func (t *Tracer) FunctionEnter(fn *vm.Function, info *vm.CallInfo) {
	api := ""
	if info.Dispatch != nil {
		api = " via " + info.Dispatch.API
	}
	fmt.Fprintf(t.w, "%s> %s [%s]%s\n", t.indent(), fn, info.Phase, api)
	t.depth++
}

// FunctionExit implements vm.Hooks.
func (t *Tracer) FunctionExit(fn *vm.Function, ret vm.Value, thrown *vm.Thrown) {
	if t.depth > 0 {
		t.depth--
	}
	if thrown != nil {
		fmt.Fprintf(t.w, "%s< %s threw %s\n", t.indent(), fn.Name, vm.ToString(thrown.Value))
		return
	}
	fmt.Fprintf(t.w, "%s< %s\n", t.indent(), fn.Name)
}

// APICall implements vm.Hooks.
func (t *Tracer) APICall(ev *vm.APIEvent) {
	detail := ""
	if ev.Event != "" {
		detail = fmt.Sprintf("(%s)", ev.Event)
	}
	fmt.Fprintf(t.w, "%s* %s%s at %s\n", t.indent(), ev.API, detail, ev.Loc)
}

// PhaseEnter implements the optional phase extension.
func (t *Tracer) PhaseEnter(info *vm.PhaseInfo) {
	fmt.Fprintf(t.w, "%s-- phase %s (%d runnable) @%s\n", t.indent(), info.Phase, info.Runnable, info.Now)
}

// PhaseExit implements the optional phase extension.
func (t *Tracer) PhaseExit(info *vm.PhaseInfo) {}

// TimerFired implements the optional timer extension, reporting loop lag.
func (t *Tracer) TimerFired(info *vm.TimerFire) {
	fmt.Fprintf(t.w, "%s-- timer %d fires (scheduled %s, lag %s)\n", t.indent(), info.ID, info.Scheduled, info.Lag())
}
