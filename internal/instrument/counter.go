package instrument

import "asyncg/internal/vm"

// Counter is a minimal hook that counts callback executions per API and
// per category. It reproduces the measurement behind the paper's
// Fig. 6(b): "average number of callback executions per client request
// for the most used asynchronous APIs: process.nextTick, emitter, and
// promise".
type Counter struct {
	// ByAPI counts dispatched callback executions per registering API.
	ByAPI map[string]int64
	// NextTick, Emitter, Promise are the Fig. 6(b) headline counters.
	NextTick int64
	Emitter  int64
	Promise  int64
	// APICalls counts async-API uses (registrations, triggers, ...).
	APICalls int64
	// Executions counts all dispatched callback executions.
	Executions int64
}

// NewCounter creates an empty counter.
func NewCounter() *Counter {
	return &Counter{ByAPI: make(map[string]int64)}
}

// Reset zeroes all counters.
func (c *Counter) Reset() {
	c.ByAPI = make(map[string]int64)
	c.NextTick, c.Emitter, c.Promise = 0, 0, 0
	c.APICalls, c.Executions = 0, 0
}

// FunctionEnter implements vm.Hooks.
func (c *Counter) FunctionEnter(fn *vm.Function, info *vm.CallInfo) {
	d := info.Dispatch
	if d == nil || d.API == "main" {
		return
	}
	if d.Zone == "client" {
		// The paper's measurement runs inside the server process; the
		// simulated workload driver's callbacks are out of scope.
		return
	}
	if d.API == "promise.passthrough" {
		// Engine-internal plumbing jobs (handler-less reaction slots,
		// adoption), not user promise reactions.
		return
	}
	c.Executions++
	c.ByAPI[d.API]++
	switch {
	case IsNextTick(d.API):
		c.NextTick++
	case Categorize(d.API) == CatEmitter:
		c.Emitter++
	case Categorize(d.API) == CatPromise:
		c.Promise++
	}
}

// FunctionExit implements vm.Hooks.
func (c *Counter) FunctionExit(fn *vm.Function, ret vm.Value, thrown *vm.Thrown) {}

// APICall implements vm.Hooks.
func (c *Counter) APICall(ev *vm.APIEvent) { c.APICalls++ }
