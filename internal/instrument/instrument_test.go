package instrument

import (
	"strings"
	"testing"
	"time"

	"asyncg/internal/eventloop"
	"asyncg/internal/events"
	"asyncg/internal/loc"
	"asyncg/internal/promise"
	"asyncg/internal/vm"
)

func TestCategorize(t *testing.T) {
	cases := []struct {
		api  string
		want Category
	}{
		{"process.nextTick", CatScheduling},
		{"setTimeout", CatScheduling},
		{"clearImmediate", CatScheduling},
		{"emitter.on", CatEmitter},
		{"emitter.emit", CatEmitter},
		{"new EventEmitter", CatEmitter},
		{"promise.then", CatPromise},
		{"promise.create", CatPromise},
		{"Promise.all", CatPromise},
		{"await", CatPromise},
		{"async function", CatPromise},
		{"net.connect", CatIO},
		{"http.createServer", CatIO},
		{"socket.write", CatIO},
		{"server.listen", CatIO},
		{"db.users.find", CatIO},
		{"main", CatOther},
	}
	for _, tc := range cases {
		if got := Categorize(tc.api); got != tc.want {
			t.Errorf("Categorize(%q) = %v, want %v", tc.api, got, tc.want)
		}
	}
}

func TestCategoryStrings(t *testing.T) {
	for cat, want := range map[Category]string{
		CatScheduling: "scheduling",
		CatEmitter:    "emitter",
		CatPromise:    "promise",
		CatIO:         "io",
		CatOther:      "other",
	} {
		if cat.String() != want {
			t.Errorf("%v.String() = %q", int(cat), cat.String())
		}
	}
}

// run executes a program with the given hooks attached.
func run(t *testing.T, hooks vm.Hooks, program func(l *eventloop.Loop)) {
	t.Helper()
	l := eventloop.New(eventloop.Options{TickLimit: 10_000})
	l.Probes().Attach(hooks)
	main := vm.NewFunc("main", func([]vm.Value) vm.Value {
		program(l)
		return vm.Undefined
	})
	if err := l.Run(main); err != nil {
		t.Fatal(err)
	}
}

func TestCounterCountsByCategory(t *testing.T) {
	c := NewCounter()
	run(t, c, func(l *eventloop.Loop) {
		l.NextTick(loc.Here(), vm.NewFunc("t", func([]vm.Value) vm.Value { return vm.Undefined }))
		l.NextTick(loc.Here(), vm.NewFunc("t2", func([]vm.Value) vm.Value { return vm.Undefined }))
		e := events.New(l, "e", loc.Here())
		e.On(loc.Here(), "x", vm.NewFunc("h", func([]vm.Value) vm.Value { return vm.Undefined }))
		e.Emit(loc.Here(), "x")
		p := promise.Resolved(l, loc.Here(), 1)
		p.Then(loc.Here(), vm.NewFunc("r", func(args []vm.Value) vm.Value { return vm.Undefined }), nil).
			Catch(loc.Here(), vm.NewFunc("c", func(args []vm.Value) vm.Value { return vm.Undefined }))
	})
	if c.NextTick != 2 {
		t.Errorf("NextTick = %d, want 2", c.NextTick)
	}
	if c.Emitter != 1 {
		t.Errorf("Emitter = %d, want 1", c.Emitter)
	}
	if c.Promise != 1 { // the then handler; the catch slot is a passthrough
		t.Errorf("Promise = %d, want 1", c.Promise)
	}
	if c.ByAPI["process.nextTick"] != 2 {
		t.Errorf("ByAPI = %v", c.ByAPI)
	}
	if c.APICalls == 0 || c.Executions < 4 {
		t.Errorf("APICalls=%d Executions=%d", c.APICalls, c.Executions)
	}
}

func TestCounterSkipsClientZone(t *testing.T) {
	c := NewCounter()
	run(t, c, func(l *eventloop.Loop) {
		e := events.New(l, "client-side", loc.Here())
		e.SetZone("client")
		e.On(loc.Here(), "x", vm.NewFunc("h", func([]vm.Value) vm.Value { return vm.Undefined }))
		e.Emit(loc.Here(), "x")
	})
	if c.Emitter != 0 {
		t.Fatalf("client-zone emitter executions counted: %d", c.Emitter)
	}
}

func TestCounterReset(t *testing.T) {
	c := NewCounter()
	run(t, c, func(l *eventloop.Loop) {
		l.NextTick(loc.Here(), vm.NewFunc("t", func([]vm.Value) vm.Value { return vm.Undefined }))
	})
	c.Reset()
	if c.NextTick != 0 || c.Executions != 0 || len(c.ByAPI) != 0 {
		t.Fatalf("reset incomplete: %+v", c)
	}
}

func TestTracerOutput(t *testing.T) {
	var sb strings.Builder
	tr := NewTracer(&sb)
	run(t, tr, func(l *eventloop.Loop) {
		l.SetTimeout(loc.Here(), vm.NewFunc("timerCb", func([]vm.Value) vm.Value {
			return vm.Undefined
		}), time.Millisecond)
		l.NextTick(loc.Here(), vm.NewFunc("boom", func([]vm.Value) vm.Value {
			vm.Throw("traced-error")
			return vm.Undefined
		}))
	})
	out := sb.String()
	for _, want := range []string{
		"* setTimeout", "* process.nextTick",
		"> timerCb", "via setTimeout",
		"threw traced-error",
		"[main]", "[timer]",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("trace missing %q:\n%s", want, out)
		}
	}
}
