package benchio

import (
	"context"
	"flag"
	"fmt"
	"runtime"
	"testing"

	"asyncg/internal/explore"
)

// Canonical benchmark names of the exploration pair; NewReport derives
// SpeedupParVsSeq from records carrying them.
const (
	// BenchExploreSeq is the sequential (Workers=1) exploration.
	BenchExploreSeq = "ExploreSeq"
	// BenchExplorePar is the parallel (Workers=GOMAXPROCS) exploration.
	BenchExplorePar = "ExplorePar"
	// BenchExploreCoverage is the coverage-guided (fingerprint corpus)
	// exploration at the parallel worker count.
	BenchExploreCoverage = "ExploreCoverage"
)

// ExploreOptions sizes the recorded exploration benchmarks.
type ExploreOptions struct {
	// CaseID selects the explored case study; empty means SO-17894000
	// (the paper's schedule-dependent listener case).
	CaseID string
	// Runs is the number of schedules per benchmark operation; 0 means
	// 64.
	Runs int
	// Workers is the parallel worker count for ExplorePar; 0 means
	// runtime.GOMAXPROCS(0).
	Workers int
}

func (o ExploreOptions) withDefaults() ExploreOptions {
	if o.CaseID == "" {
		o.CaseID = "SO-17894000"
	}
	if o.Runs == 0 {
		o.Runs = 64
	}
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	return o
}

// ExploreSuite builds the BenchmarkExplore{Seq,Par,Coverage} triple:
// the same exploration of one case study, executed with one worker,
// with opts.Workers workers, and with the coverage strategy at the
// parallel worker count. One benchmark op explores opts.Runs schedules,
// and each record reports schedules/sec and uniqueGraphs/sec (the
// fingerprint discovery rate — the throughput that actually matters for
// a feedback-guided walk) as extra metrics.
func ExploreSuite(opts ExploreOptions) ([]Benchmark, error) {
	opts = opts.withDefaults()
	tg, err := explore.CaseTargetByID(opts.CaseID, false)
	if err != nil {
		return nil, err
	}
	coverage := func() explore.Option { return explore.WithStrategy(explore.NewCoverage(1)) }
	return []Benchmark{
		{Name: BenchExploreSeq, Bench: benchExplore(tg, opts.Runs, 1, nil)},
		{Name: BenchExplorePar, Bench: benchExplore(tg, opts.Runs, opts.Workers, nil)},
		{Name: BenchExploreCoverage, Bench: benchExplore(tg, opts.Runs, opts.Workers, coverage)},
	}, nil
}

// benchExplore measures one exploration configuration; the schedule
// count per op is fixed so ns/op is directly comparable between the
// sequential and parallel records. strategy builds a fresh Strategy
// option per op (instances are single-use); nil means the default
// random walk.
func benchExplore(tg explore.Target, runs, workers int, strategy func() explore.Option) func(b *testing.B) {
	return func(b *testing.B) {
		b.ReportAllocs()
		unique := 0
		for i := 0; i < b.N; i++ {
			opts := []explore.Option{
				explore.WithRuns(runs), explore.WithSeed(1), explore.WithWorkers(workers),
			}
			if strategy != nil {
				opts = append(opts, strategy())
			}
			res, err := explore.Run(context.Background(), tg, opts...)
			if err != nil {
				b.Fatal(err)
			}
			if len(res.Runs) != runs {
				b.Fatalf("explored %d/%d schedules", len(res.Runs), runs)
			}
			unique += res.NewGraphs
		}
		b.ReportMetric(float64(runs*b.N)/b.Elapsed().Seconds(), "schedules/sec")
		b.ReportMetric(float64(unique)/b.Elapsed().Seconds(), "uniqueGraphs/sec")
	}
}

// SetBenchtime sets the standard -test.benchtime flag (e.g. "2s" or
// "5x") from a non-test binary. testing.Init must have been called
// first; the asyncg bench subcommand does both.
func SetBenchtime(v string) error {
	if err := flag.Set("test.benchtime", v); err != nil {
		return fmt.Errorf("benchio: benchtime %q: %w", v, err)
	}
	return nil
}
