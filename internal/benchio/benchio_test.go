package benchio

import (
	"bytes"
	"flag"
	"strings"
	"testing"
)

// fastBenchtime pins testing.Benchmark to a single iteration so the
// smoke tests stay fast; the previous value is restored on cleanup.
func fastBenchtime(t *testing.T) {
	t.Helper()
	f := flag.Lookup("test.benchtime")
	if f == nil {
		t.Fatal("test.benchtime flag not registered")
	}
	prev := f.Value.String()
	if err := SetBenchtime("1x"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = flag.Set("test.benchtime", prev) })
}

// TestExploreSuiteEmitsValidJSON is the harness smoke test: running the
// recorded exploration pair through testing.Benchmark must produce a
// report that round-trips through its own JSON serialization with the
// measurements intact.
func TestExploreSuiteEmitsValidJSON(t *testing.T) {
	fastBenchtime(t)
	suite, err := ExploreSuite(ExploreOptions{Runs: 4, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	rep := NewReport(RunSuite(suite))

	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadReport(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("report does not round-trip: %v\n%s", err, buf.String())
	}
	if len(back.Benchmarks) != 3 {
		t.Fatalf("got %d benchmark records, want 3", len(back.Benchmarks))
	}
	for _, rec := range back.Benchmarks {
		if rec.Name != BenchExploreSeq && rec.Name != BenchExplorePar && rec.Name != BenchExploreCoverage {
			t.Errorf("unexpected record name %q", rec.Name)
		}
		if rec.Iterations < 1 || rec.NsPerOp <= 0 {
			t.Errorf("%s: implausible measurement %+v", rec.Name, rec)
		}
		if rec.Extra["schedules/sec"] <= 0 {
			t.Errorf("%s: missing schedules/sec extra metric", rec.Name)
		}
		if rec.Extra["uniqueGraphs/sec"] <= 0 {
			t.Errorf("%s: missing uniqueGraphs/sec extra metric", rec.Name)
		}
	}
	if back.SpeedupParVsSeq <= 0 {
		t.Errorf("speedup not derived: %+v", back)
	}
	if back.GoVersion == "" || back.CPUs < 1 || back.GOMAXPROCS < 1 {
		t.Errorf("environment not recorded: %+v", back)
	}
}

// TestExploreSuiteUnknownCase: the suite surfaces a bad case id instead
// of recording an empty report.
func TestExploreSuiteUnknownCase(t *testing.T) {
	if _, err := ExploreSuite(ExploreOptions{CaseID: "no-such-case"}); err == nil {
		t.Fatal("unknown case accepted")
	}
}

// TestReadReportRejectsWrongSchema guards the schema tag.
func TestReadReportRejectsWrongSchema(t *testing.T) {
	if _, err := ReadReport(strings.NewReader(`{"schema":"other/v9"}`)); err == nil {
		t.Fatal("wrong schema accepted")
	}
	if _, err := ReadReport(strings.NewReader(`not json`)); err == nil {
		t.Fatal("invalid JSON accepted")
	}
}

// TestCompareRendersDeltas: Compare lists per-benchmark changes plus
// added and removed entries.
func TestCompareRendersDeltas(t *testing.T) {
	old := NewReport([]Record{
		{Name: "A", NsPerOp: 1000, AllocsPerOp: 10},
		{Name: "Gone", NsPerOp: 5},
	})
	new := NewReport([]Record{
		{Name: "A", NsPerOp: 500, AllocsPerOp: 8},
		{Name: "Fresh", NsPerOp: 42},
	})
	out := Compare(old, new)
	for _, want := range []string{"-50.0%", "allocs 10 -> 8", "Fresh", "added", "Gone", "removed"} {
		if !strings.Contains(out, want) {
			t.Errorf("Compare output missing %q:\n%s", want, out)
		}
	}
}
