package benchio

import (
	"bytes"
	"flag"
	"strings"
	"testing"
)

// fastBenchtime pins testing.Benchmark to a single iteration so the
// smoke tests stay fast; the previous value is restored on cleanup.
func fastBenchtime(t *testing.T) {
	t.Helper()
	f := flag.Lookup("test.benchtime")
	if f == nil {
		t.Fatal("test.benchtime flag not registered")
	}
	prev := f.Value.String()
	if err := SetBenchtime("1x"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = flag.Set("test.benchtime", prev) })
}

// TestExploreSuiteEmitsValidJSON is the harness smoke test: running the
// recorded exploration pair through testing.Benchmark must produce a
// report that round-trips through its own JSON serialization with the
// measurements intact.
func TestExploreSuiteEmitsValidJSON(t *testing.T) {
	fastBenchtime(t)
	suite, err := ExploreSuite(ExploreOptions{Runs: 4, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	rep := NewReport(RunSuite(suite))

	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadReport(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("report does not round-trip: %v\n%s", err, buf.String())
	}
	if len(back.Benchmarks) != 3 {
		t.Fatalf("got %d benchmark records, want 3", len(back.Benchmarks))
	}
	for _, rec := range back.Benchmarks {
		if rec.Name != BenchExploreSeq && rec.Name != BenchExplorePar && rec.Name != BenchExploreCoverage {
			t.Errorf("unexpected record name %q", rec.Name)
		}
		if rec.Iterations < 1 || rec.NsPerOp <= 0 {
			t.Errorf("%s: implausible measurement %+v", rec.Name, rec)
		}
		if rec.Extra["schedules/sec"] <= 0 {
			t.Errorf("%s: missing schedules/sec extra metric", rec.Name)
		}
		if rec.Extra["uniqueGraphs/sec"] <= 0 {
			t.Errorf("%s: missing uniqueGraphs/sec extra metric", rec.Name)
		}
	}
	if back.SpeedupParVsSeq <= 0 {
		t.Errorf("speedup not derived: %+v", back)
	}
	if back.GoVersion == "" || back.CPUs < 1 || back.GOMAXPROCS < 1 {
		t.Errorf("environment not recorded: %+v", back)
	}
}

// TestExploreSuiteUnknownCase: the suite surfaces a bad case id instead
// of recording an empty report.
func TestExploreSuiteUnknownCase(t *testing.T) {
	if _, err := ExploreSuite(ExploreOptions{CaseID: "no-such-case"}); err == nil {
		t.Fatal("unknown case accepted")
	}
}

// TestReadReportRejectsWrongSchema guards the schema tag.
func TestReadReportRejectsWrongSchema(t *testing.T) {
	if _, err := ReadReport(strings.NewReader(`{"schema":"other/v9"}`)); err == nil {
		t.Fatal("wrong schema accepted")
	}
	if _, err := ReadReport(strings.NewReader(`not json`)); err == nil {
		t.Fatal("invalid JSON accepted")
	}
}

// TestSpeedupNote: a recording without hardware or scheduler
// parallelism carries the caveat; a genuinely parallel one does not.
func TestSpeedupNote(t *testing.T) {
	for _, tc := range []struct {
		cpus, gomaxprocs int
		want             bool
	}{
		{1, 1, true},
		{1, 8, true},
		{8, 1, true},
		{2, 2, false},
		{8, 8, false},
	} {
		note := speedupNote(tc.cpus, tc.gomaxprocs)
		if (note != "") != tc.want {
			t.Errorf("speedupNote(%d, %d) = %q, want note=%v", tc.cpus, tc.gomaxprocs, note, tc.want)
		}
	}
	rep := NewReport([]Record{
		{Name: BenchExploreSeq, NsPerOp: 1000},
		{Name: BenchExplorePar, NsPerOp: 900},
	})
	if rep.SingleCore() && rep.SpeedupNote == "" {
		t.Errorf("single-core recording (cpus=%d gomaxprocs=%d) missing speedupNote", rep.CPUs, rep.GOMAXPROCS)
	}
	if !rep.SingleCore() && rep.SpeedupNote != "" {
		t.Errorf("multi-core recording (cpus=%d gomaxprocs=%d) carries speedupNote %q", rep.CPUs, rep.GOMAXPROCS, rep.SpeedupNote)
	}
}

// TestCompareSingleCoreWarns: a single-core recording on either side of
// a comparison replaces the speedup line with a warning — quoting the
// ~1.0x a one-core host measures would misreport the pool overhead as
// absent scaling.
func TestCompareSingleCoreWarns(t *testing.T) {
	multi := func(ns float64) *Report {
		return &Report{
			CPUs: 8, GOMAXPROCS: 8, SpeedupParVsSeq: 3.5,
			Benchmarks: []Record{{Name: BenchExploreSeq, NsPerOp: ns}},
		}
	}
	single := &Report{
		CPUs: 1, GOMAXPROCS: 1, SpeedupParVsSeq: 0.98,
		Benchmarks: []Record{{Name: BenchExploreSeq, NsPerOp: 1000}},
	}
	out := Compare(multi(1000), single)
	if !strings.Contains(out, "warning: single-core recording") {
		t.Errorf("Compare with a single-core recording missing warning:\n%s", out)
	}
	if strings.Contains(out, "speedup (par vs seq)") {
		t.Errorf("Compare quoted a speedup for a single-core recording:\n%s", out)
	}
	out = Compare(multi(1000), multi(800))
	if !strings.Contains(out, "speedup (par vs seq): 3.50x -> 3.50x") {
		t.Errorf("Compare between multi-core recordings missing speedup line:\n%s", out)
	}
	if strings.Contains(out, "warning") {
		t.Errorf("Compare between multi-core recordings warns spuriously:\n%s", out)
	}
}

// TestGate: within-tolerance measurements pass, regressions and missing
// benchmarks fail, extra measured benchmarks are ignored.
func TestGate(t *testing.T) {
	committed := &Report{Benchmarks: []Record{
		{Name: "A", AllocsPerOp: 1000},
		{Name: "B", AllocsPerOp: 200},
	}}
	pass := &Report{Benchmarks: []Record{
		{Name: "A", AllocsPerOp: 1100}, // +10%, inside 25%
		{Name: "B", AllocsPerOp: 150},  // improved
		{Name: "New", AllocsPerOp: 1 << 30},
	}}
	if text, ok := Gate(committed, pass, 0.25); !ok {
		t.Errorf("in-tolerance measurement failed the gate:\n%s", text)
	}
	regress := &Report{Benchmarks: []Record{
		{Name: "A", AllocsPerOp: 1300}, // +30%, outside 25%
		{Name: "B", AllocsPerOp: 200},
	}}
	if text, ok := Gate(committed, regress, 0.25); ok {
		t.Errorf("regressed measurement passed the gate:\n%s", text)
	} else if !strings.Contains(text, "FAIL") {
		t.Errorf("gate verdict missing FAIL marker:\n%s", text)
	}
	shrunk := &Report{Benchmarks: []Record{{Name: "A", AllocsPerOp: 1000}}}
	if text, ok := Gate(committed, shrunk, 0.25); ok {
		t.Errorf("measurement missing a committed benchmark passed the gate:\n%s", text)
	} else if !strings.Contains(text, "missing from measurement") {
		t.Errorf("gate verdict missing missing-benchmark finding:\n%s", text)
	}
}

// TestCompareRendersDeltas: Compare lists per-benchmark changes plus
// added and removed entries.
func TestCompareRendersDeltas(t *testing.T) {
	old := NewReport([]Record{
		{Name: "A", NsPerOp: 1000, AllocsPerOp: 10},
		{Name: "Gone", NsPerOp: 5},
	})
	new := NewReport([]Record{
		{Name: "A", NsPerOp: 500, AllocsPerOp: 8},
		{Name: "Fresh", NsPerOp: 42},
	})
	out := Compare(old, new)
	for _, want := range []string{"-50.0%", "allocs 10 -> 8", "Fresh", "added", "Gone", "removed"} {
		if !strings.Contains(out, want) {
			t.Errorf("Compare output missing %q:\n%s", want, out)
		}
	}
}
