// Package benchio is the recorded benchmark harness: it runs named
// benchmark functions in-process through testing.Benchmark and
// serializes the measurements — ns/op, allocs/op, bytes/op, and any
// b.ReportMetric extras such as schedules/sec — as a machine-readable
// JSON report (the BENCH_explore.json trajectory the roadmap calls
// for). Reports embed the recording environment (Go version, GOOS,
// GOARCH, CPU count, GOMAXPROCS) so two recordings are comparable, and
// Compare renders the deltas between two of them.
//
// The harness exists so perf numbers are a first-class, reproducible
// artifact: `asyncg bench -out BENCH_explore.json` (or `make
// bench-record`) regenerates the file, and CI uploads it from every
// run.
package benchio

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"sort"
	"strings"
	"testing"
	"time"
)

// Schema identifies the report format; bump on incompatible change.
const Schema = "asyncg-bench/v1"

// Benchmark is one named benchmark function the harness can run.
type Benchmark struct {
	// Name labels the record ("ExploreSeq", "ExplorePar", ...).
	Name string
	// Bench is a standard testing benchmark body.
	Bench func(b *testing.B)
}

// Record is one benchmark measurement.
type Record struct {
	// Name is the benchmark's name.
	Name string `json:"name"`
	// Iterations is the b.N testing.Benchmark settled on.
	Iterations int `json:"iterations"`
	// NsPerOp is wall time per operation in nanoseconds.
	NsPerOp float64 `json:"nsPerOp"`
	// AllocsPerOp is heap allocations per operation.
	AllocsPerOp int64 `json:"allocsPerOp"`
	// BytesPerOp is heap bytes allocated per operation.
	BytesPerOp int64 `json:"bytesPerOp"`
	// Extra carries b.ReportMetric values, e.g. "schedules/sec".
	Extra map[string]float64 `json:"extra,omitempty"`
}

// Report is a complete recording: environment plus measurements.
type Report struct {
	// Schema is the format identifier (the Schema constant).
	Schema string `json:"schema"`
	// RecordedAt is the RFC 3339 recording time.
	RecordedAt string `json:"recordedAt"`
	// GoVersion is runtime.Version() of the recording binary.
	GoVersion string `json:"go"`
	// GOOS and GOARCH identify the recording platform.
	GOOS   string `json:"goos"`
	GOARCH string `json:"goarch"`
	// CPUs is runtime.NumCPU() — the hardware parallelism available.
	CPUs int `json:"cpus"`
	// GOMAXPROCS is the scheduler parallelism the recording ran with.
	GOMAXPROCS int `json:"gomaxprocs"`
	// Benchmarks holds one record per benchmark, in suite order.
	Benchmarks []Record `json:"benchmarks"`
	// SpeedupParVsSeq is ExploreSeq ns/op divided by ExplorePar ns/op
	// (0 when the suite did not include the pair). On a single-core
	// recording host this is expected to hover near 1.
	SpeedupParVsSeq float64 `json:"speedupParVsSeq,omitempty"`
	// SpeedupNote flags recordings whose Seq-vs-Par ratio cannot measure
	// parallel scaling: with one CPU or GOMAXPROCS=1 the parallel pool's
	// workers time-slice a single core, so the ratio reflects pool
	// overhead, not speedup. Readers (Compare, the bench subcommand)
	// surface the note instead of quoting the meaningless ~1.0x.
	SpeedupNote string `json:"speedupNote,omitempty"`
}

// SingleCore reports whether the recording ran without hardware or
// scheduler parallelism — the condition under which SpeedupParVsSeq is
// not a scaling measurement.
func (r *Report) SingleCore() bool { return r.CPUs <= 1 || r.GOMAXPROCS <= 1 }

// speedupNote derives the single-core caveat for a recording
// environment; empty when the parallel comparison is meaningful.
func speedupNote(cpus, gomaxprocs int) string {
	if cpus > 1 && gomaxprocs > 1 {
		return ""
	}
	return fmt.Sprintf("recorded with cpus=%d gomaxprocs=%d: the parallel workers time-slice one core, so speedupParVsSeq measures pool overhead, not parallel scaling", cpus, gomaxprocs)
}

// RunSuite measures every benchmark in order. Benchmark duration is
// governed by the standard -test.benchtime flag (see SetBenchtime for
// non-test binaries).
func RunSuite(suite []Benchmark) []Record {
	records := make([]Record, 0, len(suite))
	for _, bm := range suite {
		r := testing.Benchmark(bm.Bench)
		rec := Record{
			Name:        bm.Name,
			Iterations:  r.N,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
		}
		if len(r.Extra) > 0 {
			rec.Extra = make(map[string]float64, len(r.Extra))
			for k, v := range r.Extra {
				rec.Extra[k] = v
			}
		}
		records = append(records, rec)
	}
	return records
}

// NewReport wraps measurements with the recording environment and the
// derived Seq-vs-Par speedup.
func NewReport(records []Record) *Report {
	rep := &Report{
		Schema:     Schema,
		RecordedAt: time.Now().UTC().Format(time.RFC3339),
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		CPUs:       runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Benchmarks: records,
	}
	var seq, par float64
	for _, r := range records {
		switch r.Name {
		case BenchExploreSeq:
			seq = r.NsPerOp
		case BenchExplorePar:
			par = r.NsPerOp
		}
	}
	if seq > 0 && par > 0 {
		rep.SpeedupParVsSeq = seq / par
		rep.SpeedupNote = speedupNote(rep.CPUs, rep.GOMAXPROCS)
	}
	return rep
}

// WriteJSON serializes the report, indented for diff-friendly storage.
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// ReadReport parses a report written by WriteJSON and validates its
// schema tag.
func ReadReport(rd io.Reader) (*Report, error) {
	var rep Report
	if err := json.NewDecoder(rd).Decode(&rep); err != nil {
		return nil, fmt.Errorf("benchio: parse report: %w", err)
	}
	if rep.Schema != Schema {
		return nil, fmt.Errorf("benchio: report schema %q, want %q", rep.Schema, Schema)
	}
	return &rep, nil
}

// Gate checks a fresh measurement against a committed recording: every
// benchmark present in the committed report must be present in the
// measurement with allocsPerOp no higher than (1+tolerance)× the
// committed value. Allocation counts are the gated quantity because
// they are hardware-independent — ns/op on a shared CI box is noise,
// but a run path that suddenly allocates more has regressed regardless
// of the clock. Returns the rendered verdict table and whether the
// gate passes; benchmarks missing from the measurement fail the gate
// (a silently shrunken suite must not pass), extra measured benchmarks
// are ignored.
func Gate(committed, measured *Report, tolerance float64) (string, bool) {
	measuredBy := make(map[string]Record, len(measured.Benchmarks))
	for _, r := range measured.Benchmarks {
		measuredBy[r.Name] = r
	}
	var sb strings.Builder
	pass := true
	fmt.Fprintf(&sb, "allocs/op gate (tolerance %+.0f%%):\n", tolerance*100)
	for _, cr := range committed.Benchmarks {
		mr, ok := measuredBy[cr.Name]
		if !ok {
			fmt.Fprintf(&sb, "%-24s FAIL: missing from measurement\n", cr.Name)
			pass = false
			continue
		}
		limit := int64(float64(cr.AllocsPerOp) * (1 + tolerance))
		verdict := "ok"
		if mr.AllocsPerOp > limit {
			verdict = "FAIL"
			pass = false
		}
		fmt.Fprintf(&sb, "%-24s %8d -> %8d allocs/op (limit %d)  %s\n",
			cr.Name, cr.AllocsPerOp, mr.AllocsPerOp, limit, verdict)
	}
	return sb.String(), pass
}

// Compare renders a per-benchmark delta table between two recordings:
// old→new ns/op with the percentage change, and allocs/op when it
// moved. Benchmarks present in only one report are listed as added or
// removed.
func Compare(old, new *Report) string {
	oldBy := make(map[string]Record, len(old.Benchmarks))
	for _, r := range old.Benchmarks {
		oldBy[r.Name] = r
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "old: %s (%s, %d cpu)\n", old.RecordedAt, old.GoVersion, old.CPUs)
	fmt.Fprintf(&sb, "new: %s (%s, %d cpu)\n", new.RecordedAt, new.GoVersion, new.CPUs)
	switch {
	case old.SingleCore() || new.SingleCore():
		fmt.Fprintf(&sb, "warning: single-core recording (old cpus=%d gomaxprocs=%d, new cpus=%d gomaxprocs=%d): par-vs-seq speedup is not a scaling measurement and is omitted\n",
			old.CPUs, old.GOMAXPROCS, new.CPUs, new.GOMAXPROCS)
	case old.SpeedupParVsSeq > 0 && new.SpeedupParVsSeq > 0:
		fmt.Fprintf(&sb, "speedup (par vs seq): %.2fx -> %.2fx\n", old.SpeedupParVsSeq, new.SpeedupParVsSeq)
	}
	seen := make(map[string]bool)
	for _, nr := range new.Benchmarks {
		seen[nr.Name] = true
		or, ok := oldBy[nr.Name]
		if !ok {
			fmt.Fprintf(&sb, "%-24s added: %.0f ns/op\n", nr.Name, nr.NsPerOp)
			continue
		}
		pct := 0.0
		if or.NsPerOp > 0 {
			pct = (nr.NsPerOp - or.NsPerOp) / or.NsPerOp * 100
		}
		fmt.Fprintf(&sb, "%-24s %12.0f -> %12.0f ns/op  (%+.1f%%)", nr.Name, or.NsPerOp, nr.NsPerOp, pct)
		if or.AllocsPerOp != nr.AllocsPerOp {
			fmt.Fprintf(&sb, "  allocs %d -> %d", or.AllocsPerOp, nr.AllocsPerOp)
		}
		sb.WriteByte('\n')
	}
	removed := make([]string, 0)
	for name := range oldBy {
		if !seen[name] {
			removed = append(removed, name)
		}
	}
	sort.Strings(removed)
	for _, name := range removed {
		fmt.Fprintf(&sb, "%-24s removed\n", name)
	}
	return sb.String()
}
