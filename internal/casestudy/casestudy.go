// Package casestudy reproduces the paper's bug corpus: the fourteen
// StackOverflow / GitHub issues of Table I, the motivating examples of
// Fig. 1 / Fig. 4 (with their Async Graphs, Fig. 3 / Fig. 5), and the
// §III ordering snippet. Each case is a small runnable program written
// against the asyncg facade, with its buggy version (expected to trigger
// specific detector categories) and, where the paper shows one, the
// fixed version (expected to be clean of those categories).
package casestudy

import (
	"fmt"

	"asyncg"
	"asyncg/internal/asyncgraph"
	"asyncg/internal/detect"
	"asyncg/internal/eventloop"
)

// Case is one reproduced bug report.
type Case struct {
	// ID is the paper's identifier, e.g. "SO-33330277".
	ID string
	// Title summarizes the bug.
	Title string
	// Category is the paper's Table I classification.
	Category string
	// Expect lists the detector categories the buggy version must
	// trigger (usually one; the Table I category's detector).
	Expect []detect.Category
	// TickLimit bounds non-terminating programs; 0 means 500.
	TickLimit int
	// Buggy is the program as reported.
	Buggy func(ctx *asyncg.Context)
	// Fixed is the repaired program (nil when the paper shows none);
	// it must not trigger any category in Expect.
	Fixed func(ctx *asyncg.Context)
	// Manual, when set, performs the §VI-B graph-assisted query for
	// categories that need developer-driven inspection, returning the
	// warnings it derives from the graph.
	Manual func(r *asyncg.Report) []asyncgraph.Warning
}

// Result bundles a case run.
type Result struct {
	Case    Case
	Report  *asyncg.Report
	Err     error // ErrTickLimit is expected for starvation bugs
	Fixed   bool
	Matched []detect.Category // which Expect categories were found (buggy runs)
	Missing []detect.Category // Expect categories not found (buggy runs)
	Leaked  []detect.Category // Expect categories found in a fixed run
}

// Clean reports whether the run met its expectation.
func (r Result) Clean() bool {
	if r.Fixed {
		return len(r.Leaked) == 0
	}
	return len(r.Missing) == 0
}

// All returns every reproduced case: Table I first (paper order), then
// the extra §VI / §VII cases and the figure examples.
func All() []Case {
	return []Case{
		caseSO38140113(),
		caseSO32559324(),
		caseSO33330277(),
		caseSO30515037(),
		caseSO50996870(),
		caseSO28830663(),
		caseSO30724625(),
		caseSO43422932(),
		caseSO10444077(),
		caseSO45881685(),
		caseSO31978347(),
		caseGHVuex2(),
		caseGHFlock13(),
		caseGHNpm12754(),
		caseSO17894000(),
		caseFig4(),
		caseMotivation(),
		caseFanoutJoin(),
	}
}

// Table1 returns the fourteen Table I entries only.
func Table1() []Case { return All()[:14] }

// aliases maps friendly names onto canonical case IDs. "bugdetect" is
// the Fig. 4 program as packaged in examples/bugdetect — the anchor of
// the docs/DEBUGGING.md walkthrough.
var aliases = map[string]string{
	"bugdetect": "fig4",
}

// ByID finds a case by identifier or alias.
func ByID(id string) (Case, bool) {
	if canon, ok := aliases[id]; ok {
		id = canon
	}
	for _, c := range All() {
		if c.ID == id {
			return c, true
		}
	}
	return Case{}, false
}

// session creates the analysis session for a case; extra options (e.g.
// asyncg.WithTrace, asyncg.WithMetrics from the CLI) ride along.
func session(c Case, extra ...asyncg.Option) *asyncg.Session {
	limit := c.TickLimit
	if limit == 0 {
		limit = 500
	}
	opts := append([]asyncg.Option{asyncg.WithLoop(eventloop.Options{TickLimit: limit})}, extra...)
	return asyncg.New(opts...)
}

// SessionFor creates the analysis session a case runs under — the same
// configuration RunBuggy and RunFixed build internally (the case's tick
// limit plus the caller's extra options). Exported so reusable runners
// can construct the session once and Reset it between runs.
func SessionFor(c Case, extra ...asyncg.Option) *asyncg.Session {
	return session(c, extra...)
}

// SessionRunner executes one version of a case repeatedly on a reusable
// session: the first Run builds the session from the given options,
// later Runs reuse its allocation set. It satisfies the explore
// package's Runner contract — Reset must be called between Runs, and
// per-run options (scheduler, context) are re-applied through
// asyncg.Session.Apply while structural options stay fixed at the first
// call. Manual graph queries (Case.Manual) are appended to the buggy
// report exactly as RunBuggy does, so a reused runner's report is
// byte-identical to a one-shot run's.
type SessionRunner struct {
	c       Case
	program func(ctx *asyncg.Context)
	manual  func(*asyncg.Report) []asyncgraph.Warning
	session *asyncg.Session
}

// NewRunner creates a reusable runner for the case's buggy or fixed
// version. The fixed version of a case without one runs an empty program
// (mirroring RunFixed's no-op result path is the caller's concern;
// explore targets reject such cases before constructing runners).
func NewRunner(c Case, fixed bool) *SessionRunner {
	r := &SessionRunner{c: c, program: c.Buggy}
	if fixed {
		r.program = c.Fixed
	} else {
		r.manual = c.Manual
	}
	return r
}

// Run executes the case once. The runner must be cold: freshly created,
// or Reset since the previous Run.
func (r *SessionRunner) Run(extra ...asyncg.Option) (*asyncg.Report, error) {
	if r.program == nil {
		// Fixed version of a case without one: mirror RunFixed's no-op.
		return nil, nil
	}
	if r.session == nil {
		r.session = session(r.c, extra...)
	} else {
		r.session.Apply(extra...)
	}
	report, err := r.session.Run(r.program)
	if r.manual != nil {
		report.Warnings = append(report.Warnings, r.manual(report)...)
	}
	return report, err
}

// Reset returns the runner's session to cold-start state, retaining its
// allocations. Objects from the previous run's report are invalidated.
func (r *SessionRunner) Reset() {
	if r.session != nil {
		r.session.Reset()
	}
}

// RunBuggy executes the buggy program under AsyncG and checks the
// expected categories.
func RunBuggy(c Case, extra ...asyncg.Option) Result {
	report, err := session(c, extra...).Run(c.Buggy)
	if c.Manual != nil {
		report.Warnings = append(report.Warnings, c.Manual(report)...)
	}
	res := Result{Case: c, Report: report, Err: err}
	for _, cat := range c.Expect {
		if report.HasWarning(cat) {
			res.Matched = append(res.Matched, cat)
		} else {
			res.Missing = append(res.Missing, cat)
		}
	}
	return res
}

// RunFixed executes the fixed program (when present) and checks that the
// buggy categories are gone.
func RunFixed(c Case, extra ...asyncg.Option) Result {
	if c.Fixed == nil {
		return Result{Case: c, Fixed: true}
	}
	report, err := session(c, extra...).Run(c.Fixed)
	res := Result{Case: c, Report: report, Err: err, Fixed: true}
	for _, cat := range c.Expect {
		if report.HasWarning(cat) {
			res.Leaked = append(res.Leaked, cat)
		}
	}
	return res
}

// Summary renders a Table I-style row.
func (r Result) Summary() string {
	status := "ok"
	if !r.Clean() {
		status = "FAIL"
	}
	kind := "buggy"
	if r.Fixed {
		kind = "fixed"
	}
	warnings := 0
	if r.Report != nil {
		warnings = len(r.Report.Warnings)
	}
	return fmt.Sprintf("%-14s %-30s %-6s %-4s warnings=%d", r.Case.ID, r.Case.Category, kind, status, warnings)
}
