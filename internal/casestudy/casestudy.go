// Package casestudy reproduces the paper's bug corpus: the fourteen
// StackOverflow / GitHub issues of Table I, the motivating examples of
// Fig. 1 / Fig. 4 (with their Async Graphs, Fig. 3 / Fig. 5), and the
// §III ordering snippet. Each case is a small runnable program written
// against the asyncg facade, with its buggy version (expected to trigger
// specific detector categories) and, where the paper shows one, the
// fixed version (expected to be clean of those categories).
package casestudy

import (
	"fmt"

	"asyncg"
	"asyncg/internal/asyncgraph"
	"asyncg/internal/detect"
	"asyncg/internal/eventloop"
)

// Case is one reproduced bug report.
type Case struct {
	// ID is the paper's identifier, e.g. "SO-33330277".
	ID string
	// Title summarizes the bug.
	Title string
	// Category is the paper's Table I classification.
	Category string
	// Expect lists the detector categories the buggy version must
	// trigger (usually one; the Table I category's detector).
	Expect []detect.Category
	// TickLimit bounds non-terminating programs; 0 means 500.
	TickLimit int
	// Buggy is the program as reported.
	Buggy func(ctx *asyncg.Context)
	// Fixed is the repaired program (nil when the paper shows none);
	// it must not trigger any category in Expect.
	Fixed func(ctx *asyncg.Context)
	// Manual, when set, performs the §VI-B graph-assisted query for
	// categories that need developer-driven inspection, returning the
	// warnings it derives from the graph.
	Manual func(r *asyncg.Report) []asyncgraph.Warning
}

// Result bundles a case run.
type Result struct {
	Case    Case
	Report  *asyncg.Report
	Err     error // ErrTickLimit is expected for starvation bugs
	Fixed   bool
	Matched []detect.Category // which Expect categories were found (buggy runs)
	Missing []detect.Category // Expect categories not found (buggy runs)
	Leaked  []detect.Category // Expect categories found in a fixed run
}

// Clean reports whether the run met its expectation.
func (r Result) Clean() bool {
	if r.Fixed {
		return len(r.Leaked) == 0
	}
	return len(r.Missing) == 0
}

// All returns every reproduced case: Table I first (paper order), then
// the extra §VI / §VII cases and the figure examples.
func All() []Case {
	return []Case{
		caseSO38140113(),
		caseSO32559324(),
		caseSO33330277(),
		caseSO30515037(),
		caseSO50996870(),
		caseSO28830663(),
		caseSO30724625(),
		caseSO43422932(),
		caseSO10444077(),
		caseSO45881685(),
		caseSO31978347(),
		caseGHVuex2(),
		caseGHFlock13(),
		caseGHNpm12754(),
		caseSO17894000(),
		caseFig4(),
		caseMotivation(),
		caseFanoutJoin(),
	}
}

// Table1 returns the fourteen Table I entries only.
func Table1() []Case { return All()[:14] }

// aliases maps friendly names onto canonical case IDs. "bugdetect" is
// the Fig. 4 program as packaged in examples/bugdetect — the anchor of
// the docs/DEBUGGING.md walkthrough.
var aliases = map[string]string{
	"bugdetect": "fig4",
}

// ByID finds a case by identifier or alias.
func ByID(id string) (Case, bool) {
	if canon, ok := aliases[id]; ok {
		id = canon
	}
	for _, c := range All() {
		if c.ID == id {
			return c, true
		}
	}
	return Case{}, false
}

// session creates the analysis session for a case; extra options (e.g.
// asyncg.WithTrace, asyncg.WithMetrics from the CLI) ride along.
func session(c Case, extra ...asyncg.Option) *asyncg.Session {
	limit := c.TickLimit
	if limit == 0 {
		limit = 500
	}
	opts := append([]asyncg.Option{asyncg.WithLoop(eventloop.Options{TickLimit: limit})}, extra...)
	return asyncg.New(opts...)
}

// RunBuggy executes the buggy program under AsyncG and checks the
// expected categories.
func RunBuggy(c Case, extra ...asyncg.Option) Result {
	report, err := session(c, extra...).Run(c.Buggy)
	if c.Manual != nil {
		report.Warnings = append(report.Warnings, c.Manual(report)...)
	}
	res := Result{Case: c, Report: report, Err: err}
	for _, cat := range c.Expect {
		if report.HasWarning(cat) {
			res.Matched = append(res.Matched, cat)
		} else {
			res.Missing = append(res.Missing, cat)
		}
	}
	return res
}

// RunFixed executes the fixed program (when present) and checks that the
// buggy categories are gone.
func RunFixed(c Case, extra ...asyncg.Option) Result {
	if c.Fixed == nil {
		return Result{Case: c, Fixed: true}
	}
	report, err := session(c, extra...).Run(c.Fixed)
	res := Result{Case: c, Report: report, Err: err, Fixed: true}
	for _, cat := range c.Expect {
		if report.HasWarning(cat) {
			res.Leaked = append(res.Leaked, cat)
		}
	}
	return res
}

// Summary renders a Table I-style row.
func (r Result) Summary() string {
	status := "ok"
	if !r.Clean() {
		status = "FAIL"
	}
	kind := "buggy"
	if r.Fixed {
		kind = "fixed"
	}
	warnings := 0
	if r.Report != nil {
		warnings = len(r.Report.Warnings)
	}
	return fmt.Sprintf("%-14s %-30s %-6s %-4s warnings=%d", r.Case.ID, r.Case.Category, kind, status, warnings)
}
