package casestudy

import (
	"strings"
	"testing"

	"asyncg/internal/asyncgraph"
	"asyncg/internal/detect"
)

// TestTableI reproduces the paper's Table I: every reproduced bug
// triggers its detector category, and every fixed version is clean of
// those categories.
func TestTableI(t *testing.T) {
	cases := Table1()
	if len(cases) != 14 {
		t.Fatalf("Table I has %d cases, want 14", len(cases))
	}
	for _, c := range cases {
		c := c
		t.Run(c.ID, func(t *testing.T) {
			res := RunBuggy(c)
			if len(res.Missing) != 0 {
				t.Errorf("buggy run missed categories %v; warnings: %v",
					res.Missing, res.Report.Warnings)
			}
			if len(res.Report.Anomalies) != 0 {
				t.Errorf("validator anomalies: %v", res.Report.Anomalies)
			}
			fixed := RunFixed(c)
			if len(fixed.Leaked) != 0 {
				t.Errorf("fixed run still triggers %v; warnings: %v",
					fixed.Leaked, fixed.Report.Warnings)
			}
		})
	}
}

func TestExtraCases(t *testing.T) {
	for _, id := range []string{"SO-17894000", "fig4", "motivation"} {
		c, ok := ByID(id)
		if !ok {
			t.Fatalf("case %s missing", id)
		}
		t.Run(id, func(t *testing.T) {
			res := RunBuggy(c)
			if len(res.Missing) != 0 {
				t.Errorf("missed %v; warnings: %v", res.Missing, res.Report.Warnings)
			}
			fixed := RunFixed(c)
			if len(fixed.Leaked) != 0 {
				t.Errorf("fixed still triggers %v; warnings: %v", fixed.Leaked, fixed.Report.Warnings)
			}
		})
	}
}

func TestMotivationCrashesBuggyOnly(t *testing.T) {
	c, _ := ByID("motivation")
	buggy := RunBuggy(c)
	if len(buggy.Report.Uncaught) != 1 {
		t.Fatalf("buggy uncaught = %d, want 1 (the TypeError)", len(buggy.Report.Uncaught))
	}
	fixed := RunFixed(c)
	if len(fixed.Report.Uncaught) != 0 {
		t.Fatalf("fixed uncaught = %v", fixed.Report.Uncaught)
	}
}

// TestFig3GraphShape checks the Async Graph of the Fig. 1 program
// against Fig. 3(a): t1 is main with the createServer registration, the
// following ticks are all nextTick ticks of the recursing compute, and
// the server callback never executes.
func TestFig3GraphShape(t *testing.T) {
	c, _ := ByID("SO-33330277")
	res := RunBuggy(c)
	g := res.Report.Graph
	if g.Ticks[0].Phase != "main" {
		t.Fatalf("t1 = %s", g.Ticks[0].Phase)
	}
	for _, tk := range g.Ticks[1:] {
		if tk.Phase != "nextTick" {
			t.Fatalf("tick %d phase = %s, want nextTick (starvation)", tk.Index, tk.Phase)
		}
	}
	var serverCR *asyncgraph.Node
	for _, n := range g.NodesOfKind(asyncgraph.CR) {
		if n.API == "http.createServer" {
			serverCR = n
		}
	}
	if serverCR == nil {
		t.Fatal("no createServer CR node")
	}
	if serverCR.Tick != 1 || serverCR.Executions != 0 {
		t.Fatalf("createServer CR: tick=%d executions=%d", serverCR.Tick, serverCR.Executions)
	}
	hasDead := false
	for _, w := range serverCR.Warnings {
		if strings.Contains(w, string(detect.CatDeadListener)) {
			hasDead = true
		}
	}
	if !hasDead {
		t.Fatalf("createServer node lacks dead-listener annotation: %v", serverCR.Warnings)
	}
}

// TestFig3FixedGraphShape checks Fig. 3(b): with setImmediate, the graph
// interleaves immediate ticks with the io tick that serves the request.
func TestFig3FixedGraphShape(t *testing.T) {
	c, _ := ByID("SO-33330277")
	res := RunFixed(c)
	g := res.Report.Graph
	var sawImmediate, sawIO bool
	for _, tk := range g.Ticks {
		switch tk.Phase {
		case "immediate":
			sawImmediate = true
		case "io":
			sawIO = true
		}
	}
	if !sawImmediate || !sawIO {
		t.Fatalf("fixed graph: immediate=%v io=%v (phases: %v)", sawImmediate, sawIO, phases(g))
	}
	var serverCR *asyncgraph.Node
	for _, n := range g.NodesOfKind(asyncgraph.CR) {
		if n.API == "http.createServer" {
			serverCR = n
		}
	}
	if serverCR == nil || serverCR.Executions == 0 {
		t.Fatal("createServer callback never executed in the fixed version")
	}
}

// TestFig5GraphShape checks the Fig. 4 example's graph against Fig. 5:
// the promise OB and its resolve trigger sit in t1 together with the
// dead emit; the reaction (and the listener registration inside it) run
// in a later promise tick.
func TestFig5GraphShape(t *testing.T) {
	c, _ := ByID("fig4")
	res := RunBuggy(c)
	g := res.Report.Graph
	var resolveCT, emitCT *asyncgraph.Node
	var reactionCE *asyncgraph.Node
	var listenerCR *asyncgraph.Node
	for _, n := range g.Nodes {
		switch {
		case n.Kind == asyncgraph.CT && n.API == "promise.resolve":
			resolveCT = n
		case n.Kind == asyncgraph.CT && n.API == "emitter.emit":
			emitCT = n
		case n.Kind == asyncgraph.CE && n.Func == "reaction":
			reactionCE = n
		case n.Kind == asyncgraph.CR && n.Event == "foo" && n.Func == "fooListener":
			listenerCR = n
		}
	}
	if resolveCT == nil || emitCT == nil || reactionCE == nil || listenerCR == nil {
		t.Fatalf("missing nodes: resolve=%v emit=%v reaction=%v listener=%v",
			resolveCT, emitCT, reactionCE, listenerCR)
	}
	if resolveCT.Tick != 1 || emitCT.Tick != 1 {
		t.Fatalf("resolve tick=%d emit tick=%d, want both in t1", resolveCT.Tick, emitCT.Tick)
	}
	if reactionCE.Tick <= 1 {
		t.Fatalf("reaction tick = %d, want after t1", reactionCE.Tick)
	}
	if tk := g.TickOf(reactionCE.ID); tk.Phase != "promise" {
		t.Fatalf("reaction phase = %s", tk.Phase)
	}
	if listenerCR.Tick != reactionCE.Tick {
		t.Fatalf("listener CR tick %d, reaction CE tick %d (must be inside the reaction)",
			listenerCR.Tick, reactionCE.Tick)
	}
}

// TestGraphsExport ensures every case produces exportable DOT and JSON.
func TestGraphsExport(t *testing.T) {
	for _, c := range All() {
		res := RunBuggy(c)
		dot := res.Report.Graph.DOT(c.ID)
		if !strings.Contains(dot, "digraph AsyncGraph") {
			t.Fatalf("%s: bad DOT", c.ID)
		}
		var sb strings.Builder
		if err := res.Report.Graph.WriteJSON(&sb); err != nil {
			t.Fatalf("%s: JSON: %v", c.ID, err)
		}
	}
}

// TestSummaries exercises the reporting helpers.
func TestSummaries(t *testing.T) {
	c, _ := ByID("SO-33330277")
	res := RunBuggy(c)
	s := res.Summary()
	if !strings.Contains(s, "SO-33330277") || !strings.Contains(s, "ok") {
		t.Fatalf("summary = %q", s)
	}
	if !res.Clean() {
		t.Fatal("expected clean result")
	}
}

func phases(g *asyncgraph.Graph) []string {
	out := make([]string, len(g.Ticks))
	for i, tk := range g.Ticks {
		out[i] = tk.Phase
	}
	return out
}
