package casestudy

import (
	"asyncg"
	"asyncg/internal/detect"
	"asyncg/internal/loc"
	"asyncg/internal/netio"
)

// caseSO38140113: a constructor that emits its event synchronously; the
// listener registered after construction never hears it. The working
// variant defers the emission with process.nextTick.
func caseSO38140113() Case {
	build := func(ctx *asyncg.Context, deferEmit bool) {
		makeMyEmitter := func() *asyncg.Emitter {
			e := ctx.NewEmitter("MyEmitter")
			if deferEmit {
				ctx.NextTick(asyncg.F("emitLater", func(args []asyncg.Value) asyncg.Value {
					ctx.Emit(e, "e")
					return asyncg.Undefined
				}))
			} else {
				ctx.Emit(e, "e") // BUG: nobody is listening yet
			}
			return e
		}
		e := makeMyEmitter()
		ctx.On(e, "e", asyncg.F("onE", func(args []asyncg.Value) asyncg.Value {
			return asyncg.Undefined
		}))
	}
	return Case{
		ID:       "SO-38140113",
		Title:    "emit inside the constructor vs inside nextTick",
		Category: "Dead Emits",
		Expect:   []detect.Category{detect.CatDeadEmit},
		Buggy:    func(ctx *asyncg.Context) { build(ctx, false) },
		Fixed:    func(ctx *asyncg.Context) { build(ctx, true) },
	}
}

// caseSO32559324: a function that starts producing data and emits
// synchronously before the caller had a chance to attach listeners.
func caseSO32559324() Case {
	build := func(ctx *asyncg.Context, deferEmit bool) {
		startStream := func() *asyncg.Emitter {
			s := ctx.NewEmitter("stream")
			emitAll := asyncg.F("produce", func(args []asyncg.Value) asyncg.Value {
				ctx.Emit(s, "data", "chunk-1")
				ctx.Emit(s, "data", "chunk-2")
				ctx.Emit(s, "end")
				return asyncg.Undefined
			})
			if deferEmit {
				ctx.SetImmediate(emitAll)
			} else {
				ctx.Call(emitAll) // BUG: emits before listeners exist
			}
			return s
		}
		s := startStream()
		ctx.On(s, "data", asyncg.F("onData", func(args []asyncg.Value) asyncg.Value {
			return asyncg.Undefined
		}))
		ctx.On(s, "end", asyncg.F("onEnd", func(args []asyncg.Value) asyncg.Value {
			return asyncg.Undefined
		}))
	}
	return Case{
		ID:       "SO-32559324",
		Title:    "stream emits synchronously before listeners attach",
		Category: "Dead Emits",
		Expect:   []detect.Category{detect.CatDeadEmit, detect.CatDeadListener},
		Buggy:    func(ctx *asyncg.Context) { build(ctx, false) },
		Fixed:    func(ctx *asyncg.Context) { build(ctx, true) },
	}
}

// caseSO30724625: the listener is attached to one emitter instance while
// the event is emitted on a freshly created second instance.
func caseSO30724625() Case {
	return Case{
		ID:       "SO-30724625",
		Title:    "listener and emit on different emitter instances",
		Category: "Dead Emits",
		Expect:   []detect.Category{detect.CatDeadEmit, detect.CatDeadListener},
		Buggy: func(ctx *asyncg.Context) {
			newClient := func() *asyncg.Emitter { return ctx.NewEmitter("client") }
			a := newClient()
			ctx.On(a, "ready", asyncg.F("onReady", func(args []asyncg.Value) asyncg.Value {
				return asyncg.Undefined
			}))
			b := newClient() // BUG: a second instance
			ctx.Emit(b, "ready")
		},
		Fixed: func(ctx *asyncg.Context) {
			client := ctx.NewEmitter("client")
			ctx.On(client, "ready", asyncg.F("onReady", func(args []asyncg.Value) asyncg.Value {
				return asyncg.Undefined
			}))
			ctx.Emit(client, "ready")
		},
	}
}

// caseSO10444077: removeListener is passed a fresh closure that merely
// looks like the registered one, so nothing is removed.
func caseSO10444077() Case {
	return Case{
		ID:       "SO-10444077",
		Title:    "removeListener with a different function identity",
		Category: "Invalid Listener Removal",
		Expect:   []detect.Category{detect.CatInvalidRemoval},
		Buggy: func(ctx *asyncg.Context) {
			e := ctx.NewEmitter("e")
			makeHandler := func() *asyncg.Function {
				return asyncg.F("handler", func(args []asyncg.Value) asyncg.Value {
					return asyncg.Undefined
				})
			}
			ctx.On(e, "tick", makeHandler())
			// BUG: a new closure — not the registered listener.
			ctx.RemoveListener(e, "tick", makeHandler())
			ctx.Emit(e, "tick") // the "removed" handler still runs
		},
		Fixed: func(ctx *asyncg.Context) {
			e := ctx.NewEmitter("e")
			handler := asyncg.F("handler", func(args []asyncg.Value) asyncg.Value {
				return asyncg.Undefined
			})
			ctx.On(e, "tick", handler)
			ctx.Emit(e, "tick")
			ctx.RemoveListener(e, "tick", handler) // same identity
		},
	}
}

// caseSO45881685: a subscribe helper that is called repeatedly keeps
// adding the same listener.
func caseSO45881685() Case {
	return Case{
		ID:       "SO-45881685",
		Title:    "the same listener registered on every subscribe call",
		Category: "Duplicate Listeners",
		Expect:   []detect.Category{detect.CatDuplicateListener},
		Buggy: func(ctx *asyncg.Context) {
			bus := ctx.NewEmitter("bus")
			onUpdate := asyncg.F("onUpdate", func(args []asyncg.Value) asyncg.Value {
				return asyncg.Undefined
			})
			subscribe := func() { ctx.On(bus, "update", onUpdate) }
			subscribe()
			subscribe()             // BUG: second registration of the same function
			ctx.Emit(bus, "update") // the handler runs twice
		},
		Fixed: func(ctx *asyncg.Context) {
			bus := ctx.NewEmitter("bus")
			onUpdate := asyncg.F("onUpdate", func(args []asyncg.Value) asyncg.Value {
				return asyncg.Undefined
			})
			subscribe := func() {
				ctx.RemoveListener(bus, "update", onUpdate)
				ctx.On(bus, "update", onUpdate)
			}
			subscribe()
			subscribe()
			ctx.Emit(bus, "update")
		},
	}
}

// caseSO17894000: the 'close' listener is registered inside the 'data'
// listener of the same connection; if the connection closes before any
// data arrives, the close handler is lost.
func caseSO17894000() Case {
	return Case{
		ID:       "SO-17894000",
		Title:    "'close' listener registered inside the 'data' listener",
		Category: "Add Listener within Listener",
		Expect:   []detect.Category{detect.CatListenerInListener},
		Buggy: func(ctx *asyncg.Context) {
			client, server := ctx.Net().Pipe(loc.Here())
			server.On(loc.Here(), netio.EventData, asyncg.F("onData", func(args []asyncg.Value) asyncg.Value {
				// BUG: registered only once data has arrived.
				server.On(loc.Here(), netio.EventClose, asyncg.F("onClose", func(args []asyncg.Value) asyncg.Value {
					return asyncg.Undefined
				}))
				return asyncg.Undefined
			}))
			client.WriteString(loc.Here(), "payload")
			client.End(loc.Here(), nil)
		},
		Fixed: func(ctx *asyncg.Context) {
			client, server := ctx.Net().Pipe(loc.Here())
			server.On(loc.Here(), netio.EventData, asyncg.F("onData", func(args []asyncg.Value) asyncg.Value {
				return asyncg.Undefined
			}))
			server.On(loc.Here(), netio.EventClose, asyncg.F("onClose", func(args []asyncg.Value) asyncg.Value {
				return asyncg.Undefined
			}))
			client.WriteString(loc.Here(), "payload")
			client.End(loc.Here(), nil)
		},
	}
}
