package casestudy

import (
	"time"

	"asyncg"
	"asyncg/internal/asyncgraph"
	"asyncg/internal/detect"
	"asyncg/internal/loc"
	"asyncg/internal/mongosim"
)

// caseSO50996870: database promises chained for dependent queries, but a
// reaction forgets its return, disconnecting the inner promise from the
// chain — the consumer receives undefined.
func caseSO50996870() Case {
	return Case{
		ID:        "SO-50996870",
		Title:     "missing return disconnects the DB promise chain",
		Category:  "Broken Promise Chain",
		Expect:    []detect.Category{detect.CatBrokenChain, detect.CatMissingReturn},
		TickLimit: 2000,
		Buggy: func(ctx *asyncg.Context) {
			users := ctx.DB().C("users")
			users.InsertSync(mongosim.Document{"name": "fred", "group": "admins"})
			groups := ctx.DB().C("groups")
			groups.InsertSync(mongosim.Document{"name": "admins", "quota": 100})
			chain := ctx.Then(users.FindOneP(loc.Here(), `name == "fred"`),
				asyncg.F("loadGroup", func(args []asyncg.Value) asyncg.Value {
					user := args[0].(mongosim.Document)
					inner := groups.FindOneP(loc.Here(), `name == "`+user["group"].(string)+`"`)
					ctx.Then(inner, asyncg.F("logGroup", func(args []asyncg.Value) asyncg.Value {
						return args[0]
					}), nil)
					return asyncg.Undefined // BUG: should be `return inner`
				}), nil)
			chain = ctx.Then(chain, asyncg.F("useGroup", func(args []asyncg.Value) asyncg.Value {
				// args[0] is undefined here — the chain is broken.
				return asyncg.Undefined
			}), nil)
			ctx.Catch(chain, asyncg.F("onErr", func(args []asyncg.Value) asyncg.Value {
				return asyncg.Undefined
			}))
		},
		Fixed: func(ctx *asyncg.Context) {
			users := ctx.DB().C("users")
			users.InsertSync(mongosim.Document{"name": "fred", "group": "admins"})
			groups := ctx.DB().C("groups")
			groups.InsertSync(mongosim.Document{"name": "admins", "quota": 100})
			chain := ctx.Then(users.FindOneP(loc.Here(), `name == "fred"`),
				asyncg.F("loadGroup", func(args []asyncg.Value) asyncg.Value {
					user := args[0].(mongosim.Document)
					return groups.FindOneP(loc.Here(), `name == "`+user["group"].(string)+`"`)
				}), nil)
			chain = ctx.Then(chain, asyncg.F("useGroup", func(args []asyncg.Value) asyncg.Value {
				return asyncg.Undefined
			}), nil)
			ctx.Catch(chain, asyncg.F("onErr", func(args []asyncg.Value) asyncg.Value {
				return asyncg.Undefined
			}))
		},
	}
}

// caseSO43422932: an async function is called without await, so its
// promise — not the fetched value — flows into the rest of the program
// and nobody ever reacts to it.
func caseSO43422932() Case {
	fetchJSON := func(ctx *asyncg.Context) *asyncg.Promise {
		data := ctx.NewPromise(nil)
		ctx.SetTimeout(asyncg.F("timeoutResolve", func(args []asyncg.Value) asyncg.Value {
			data.Resolve(loc.Here(), map[string]asyncg.Value{"json": "payload"})
			return asyncg.Undefined
		}), 5*time.Millisecond)
		return ctx.Async("fetchJSON", func(aw *asyncg.Awaiter) asyncg.Value {
			return ctx.Await(aw, data)
		})
	}
	return Case{
		ID:       "SO-43422932",
		Title:    "async function called without await",
		Category: "Missing Reaction",
		Expect:   []detect.Category{detect.CatMissingReaction},
		Buggy: func(ctx *asyncg.Context) {
			result := fetchJSON(ctx) // BUG: missing await
			_ = result               // used as if it were the JSON value
		},
		Fixed: func(ctx *asyncg.Context) {
			top := ctx.Async("main", func(aw *asyncg.Awaiter) asyncg.Value {
				result := ctx.Await(aw, fetchJSON(ctx))
				_ = result
				return asyncg.Undefined
			})
			ctx.Catch(top, asyncg.F("topErr", func(args []asyncg.Value) asyncg.Value {
				return asyncg.Undefined
			}))
		},
	}
}

// caseGHVuex2: action functions each perform async work and produce a
// promise; the orchestrating then-callback never returns (or collects)
// them, so the chain continues with undefined.
func caseGHVuex2() Case {
	return Case{
		ID:        "GH-vuex-2",
		Title:     "then callback ignores the promises its actions produce",
		Category:  "Missing Return In Then",
		Expect:    []detect.Category{detect.CatMissingReturn},
		TickLimit: 2000,
		Buggy: func(ctx *asyncg.Context) {
			runAction := func(name string) *asyncg.Promise {
				p := ctx.NewPromise(nil)
				ctx.SetTimeout(asyncg.F(name+"Done", func(args []asyncg.Value) asyncg.Value {
					p.Resolve(loc.Here(), name)
					return asyncg.Undefined
				}), time.Millisecond)
				return p
			}
			chain := ctx.Then(ctx.Resolve("start"),
				asyncg.F("dispatchActions", func(args []asyncg.Value) asyncg.Value {
					a := runAction("a")
					b := runAction("b")
					ctx.Catch(a, asyncg.F("aErr", func([]asyncg.Value) asyncg.Value { return asyncg.Undefined }))
					ctx.Catch(b, asyncg.F("bErr", func([]asyncg.Value) asyncg.Value { return asyncg.Undefined }))
					return asyncg.Undefined // BUG: should return Promise.all(a, b)
				}), nil)
			chain = ctx.Then(chain, asyncg.F("afterActions", func(args []asyncg.Value) asyncg.Value {
				// Runs before the actions finish; args[0] is undefined.
				return asyncg.Undefined
			}), nil)
			ctx.Catch(chain, asyncg.F("onErr", func([]asyncg.Value) asyncg.Value { return asyncg.Undefined }))
		},
		Fixed: func(ctx *asyncg.Context) {
			runAction := func(name string) *asyncg.Promise {
				p := ctx.NewPromise(nil)
				ctx.SetTimeout(asyncg.F(name+"Done", func(args []asyncg.Value) asyncg.Value {
					p.Resolve(loc.Here(), name)
					return asyncg.Undefined
				}), time.Millisecond)
				return p
			}
			chain := ctx.Then(ctx.Resolve("start"),
				asyncg.F("dispatchActions", func(args []asyncg.Value) asyncg.Value {
					return ctx.All(runAction("a"), runAction("b"))
				}), nil)
			chain = ctx.Then(chain, asyncg.F("afterActions", func(args []asyncg.Value) asyncg.Value {
				return asyncg.Undefined
			}), nil)
			ctx.Catch(chain, asyncg.F("onErr", func([]asyncg.Value) asyncg.Value { return asyncg.Undefined }))
		},
	}
}

// caseGHFlock13: a multi-step migration promise chain with no rejection
// handler anywhere — an error in any step is silently lost. AsyncG finds
// it structurally, without an exception being thrown.
func caseGHFlock13() Case {
	return Case{
		ID:        "GH-flock-13",
		Title:     "migration chain without exception handler",
		Category:  "Missing Exceptional Reaction",
		Expect:    []detect.Category{detect.CatMissingRejectHandler},
		TickLimit: 2000,
		Buggy: func(ctx *asyncg.Context) {
			migrations := ctx.DB().C("migrations")
			chain := ctx.Then(migrations.InsertP(loc.Here(), mongosim.Document{"step": 1}),
				asyncg.F("step2", func(args []asyncg.Value) asyncg.Value {
					return migrations.InsertP(loc.Here(), mongosim.Document{"step": 2})
				}), nil)
			ctx.Then(chain, asyncg.F("step3", func(args []asyncg.Value) asyncg.Value {
				return migrations.InsertP(loc.Here(), mongosim.Document{"step": 3})
			}), nil)
			// BUG: no .catch — a failing migration would vanish.
		},
		Fixed: func(ctx *asyncg.Context) {
			migrations := ctx.DB().C("migrations")
			chain := ctx.Then(migrations.InsertP(loc.Here(), mongosim.Document{"step": 1}),
				asyncg.F("step2", func(args []asyncg.Value) asyncg.Value {
					return migrations.InsertP(loc.Here(), mongosim.Document{"step": 2})
				}), nil)
			chain = ctx.Then(chain, asyncg.F("step3", func(args []asyncg.Value) asyncg.Value {
				return migrations.InsertP(loc.Here(), mongosim.Document{"step": 3})
			}), nil)
			ctx.Catch(chain, asyncg.F("onMigrationError", func(args []asyncg.Value) asyncg.Value {
				return asyncg.Undefined
			}))
		},
	}
}

// caseSO31978347: code calls an asynchronous API and reads the "result"
// variable immediately afterwards — expecting the callback to have run
// synchronously. This is a §VI-B manual pattern: the Async Graph shows
// the registration in the main tick and the execution ticks later; the
// Manual query packages that inspection.
func caseSO31978347() Case {
	var regAt loc.Loc
	return Case{
		ID:        "SO-31978347",
		Title:     "reads state before the async callback populated it",
		Category:  "Expect Sync Callback",
		Expect:    []detect.Category{detect.CatExpectSyncCallback},
		TickLimit: 2000,
		Buggy: func(ctx *asyncg.Context) {
			users := ctx.DB().C("users")
			users.InsertSync(mongosim.Document{"name": "fred"})
			var result asyncg.Value = asyncg.Undefined
			regAt = loc.Here()
			users.FindOne(regAt, `name == "fred"`, asyncg.F("assignResult",
				func(args []asyncg.Value) asyncg.Value {
					result = args[1]
					return asyncg.Undefined
				}))
			// BUG: result is still undefined here.
			_ = asyncg.Undefined == result
		},
		Manual: func(r *asyncg.Report) []asyncgraph.Warning {
			exp := detect.ExplainCallbackDelay(r.Graph, regAt)
			if exp != nil && exp.Asynchronous() {
				return []asyncgraph.Warning{exp.Warning()}
			}
			return nil
		},
		Fixed: func(ctx *asyncg.Context) {
			users := ctx.DB().C("users")
			users.InsertSync(mongosim.Document{"name": "fred"})
			users.FindOne(loc.Here(), `name == "fred"`, asyncg.F("useResult",
				func(args []asyncg.Value) asyncg.Value {
					// All use of the result happens inside the callback.
					_ = args[1]
					return asyncg.Undefined
				}))
		},
	}
}

// caseFanoutJoin: two database reads on distinct collections fan out in
// the same tick and are joined with Promise.all, but the join has no
// rejection handler — a failing read would vanish. The reads touch
// disjoint state, so their completion order is a prime partial-order-
// reduction target: every interleaving yields the same graph, and the
// exhaustive strategy with POR enabled proves it by pruning the
// io-order siblings instead of executing them.
func caseFanoutJoin() Case {
	return Case{
		ID:        "fanout-join",
		Title:     "parallel DB reads joined without rejection handler",
		Category:  "Missing Exceptional Reaction",
		Expect:    []detect.Category{detect.CatMissingRejectHandler},
		TickLimit: 2000,
		Buggy: func(ctx *asyncg.Context) {
			users := ctx.DB().C("users")
			users.InsertSync(mongosim.Document{"name": "fred"})
			orders := ctx.DB().C("orders")
			orders.InsertSync(mongosim.Document{"owner": "fred", "total": 42})
			joined := ctx.All(
				users.FindOneP(loc.Here(), `name == "fred"`),
				orders.FindOneP(loc.Here(), `owner == "fred"`),
			)
			ctx.Then(joined, asyncg.F("render", func(args []asyncg.Value) asyncg.Value {
				return asyncg.Undefined
			}), nil)
			// BUG: no .catch — a failing read rejects the join silently.
		},
		Fixed: func(ctx *asyncg.Context) {
			users := ctx.DB().C("users")
			users.InsertSync(mongosim.Document{"name": "fred"})
			orders := ctx.DB().C("orders")
			orders.InsertSync(mongosim.Document{"owner": "fred", "total": 42})
			joined := ctx.All(
				users.FindOneP(loc.Here(), `name == "fred"`),
				orders.FindOneP(loc.Here(), `owner == "fred"`),
			)
			rendered := ctx.Then(joined, asyncg.F("render", func(args []asyncg.Value) asyncg.Value {
				return asyncg.Undefined
			}), nil)
			ctx.Catch(rendered, asyncg.F("onErr", func(args []asyncg.Value) asyncg.Value {
				return asyncg.Undefined
			}))
		},
	}
}

// caseFig4 is the paper's Example 2 (Fig. 4 / Fig. 5): a promise
// reaction registers the listener one tick after the event was emitted
// (dead emit + dead listener), and the then-chain lacks an exception
// handler. The fix defers the emission with setImmediate and appends the
// catch.
func caseFig4() Case {
	return Case{
		ID:       "fig4",
		Title:    "Example 2: promises and emitters combined (Fig. 4)",
		Category: "Dead Emits + Missing Exceptional Reaction",
		Expect: []detect.Category{
			detect.CatDeadEmit,
			detect.CatDeadListener,
			detect.CatMissingRejectHandler,
		},
		Buggy: func(ctx *asyncg.Context) {
			ee := ctx.NewEmitter("ee")
			p := ctx.NewPromise(asyncg.F("executor", func(args []asyncg.Value) asyncg.Value {
				args[0].(*asyncg.Promise).Resolve(loc.Here(), 0)
				return asyncg.Undefined
			}))
			ctx.Then(p, asyncg.F("reaction", func(args []asyncg.Value) asyncg.Value {
				ctx.On(ee, "foo", asyncg.F("fooListener", func(args []asyncg.Value) asyncg.Value {
					return asyncg.Undefined
				}))
				return asyncg.Undefined
			}), nil) // BUG: missing exception handler
			ctx.Emit(ee, "foo") // BUG: dead emit — the listener comes later
		},
		Fixed: func(ctx *asyncg.Context) {
			ee := ctx.NewEmitter("ee")
			p := ctx.NewPromise(asyncg.F("executor", func(args []asyncg.Value) asyncg.Value {
				args[0].(*asyncg.Promise).Resolve(loc.Here(), 0)
				return asyncg.Undefined
			}))
			reaction := ctx.Then(p, asyncg.F("reaction", func(args []asyncg.Value) asyncg.Value {
				ctx.On(ee, "foo", asyncg.F("fooListener", func(args []asyncg.Value) asyncg.Value {
					return asyncg.Undefined
				}))
				return asyncg.Undefined
			}), nil)
			ctx.Catch(reaction, asyncg.F("onErr", func(args []asyncg.Value) asyncg.Value {
				return asyncg.Undefined
			}))
			ctx.SetImmediate(asyncg.F("deferredEmit", func(args []asyncg.Value) asyncg.Value {
				ctx.Emit(ee, "foo")
				return asyncg.Undefined
			}))
		},
	}
}
