package casestudy

import (
	"time"

	"asyncg"
	"asyncg/internal/detect"
	"asyncg/internal/loc"
)

// caseSO33330277 is the paper's Fig. 1: an HTTP server starved by a
// compute function that reschedules itself with process.nextTick. The
// fix (also Fig. 1) replaces nextTick with setImmediate, giving the
// Fig. 3(b) graph where I/O is served between compute steps.
func caseSO33330277() Case {
	return Case{
		ID:       "SO-33330277",
		Title:    "recursive nextTick blocks the event loop (Fig. 1)",
		Category: "Recursive Micro Tasks",
		Expect:   []detect.Category{detect.CatRecursiveMicrotask, detect.CatDeadListener},
		// The graph "grows infinitely"; the paper shows the first
		// ticks, we keep the first ~60.
		TickLimit: 60,
		Buggy: func(ctx *asyncg.Context) {
			var compute *asyncg.Function
			compute = asyncg.F("compute", func(args []asyncg.Value) asyncg.Value {
				ctx.Work(100 * time.Microsecond) // performSomeComputation()
				ctx.NextTick(compute)            // BUG: starves every other phase
				return asyncg.Undefined
			})
			srv := ctx.CreateServer(asyncg.F("handleRequest", func(args []asyncg.Value) asyncg.Value {
				args[1].(*asyncg.ServerResponse).EndString(loc.Here(), "Hello World!")
				return asyncg.Undefined
			}))
			if err := ctx.ListenHTTP(srv, 5000); err != nil {
				panic(err)
			}
			// A client tries to connect; the request is never served.
			ctx.HTTPGet(5000, "/", asyncg.F("clientResponse", func(args []asyncg.Value) asyncg.Value {
				return asyncg.Undefined
			}))
			ctx.Call(compute) // the listing's trailing compute();
		},
		Fixed: func(ctx *asyncg.Context) {
			var compute *asyncg.Function
			rounds := 0
			compute = asyncg.F("compute", func(args []asyncg.Value) asyncg.Value {
				ctx.Work(100 * time.Microsecond)
				rounds++
				if rounds < 40 {
					ctx.SetImmediate(compute) // FIX: I/O gets its turn
				}
				return asyncg.Undefined
			})
			srv := ctx.CreateServer(asyncg.F("handleRequest", func(args []asyncg.Value) asyncg.Value {
				args[1].(*asyncg.ServerResponse).EndString(loc.Here(), "Hello World!")
				return asyncg.Undefined
			}))
			if err := ctx.ListenHTTP(srv, 5000); err != nil {
				panic(err)
			}
			ctx.HTTPGet(5000, "/", asyncg.F("clientResponse", func(args []asyncg.Value) asyncg.Value {
				return asyncg.Undefined
			}))
			ctx.Call(compute)
		},
	}
}

// caseSO30515037 busy-waits on a flag with nextTick; the timer that
// would set the flag never fires.
func caseSO30515037() Case {
	buggy := func(ctx *asyncg.Context, useImmediate bool) {
		done := false
		ctx.SetTimeout(asyncg.F("setDone", func(args []asyncg.Value) asyncg.Value {
			done = true
			return asyncg.Undefined
		}), 5*time.Millisecond)
		var wait *asyncg.Function
		wait = asyncg.F("wait", func(args []asyncg.Value) asyncg.Value {
			if !done {
				if useImmediate {
					ctx.SetImmediate(wait)
				} else {
					ctx.NextTick(wait) // BUG: the timer can never fire
				}
			}
			return asyncg.Undefined
		})
		ctx.NextTick(wait)
	}
	return Case{
		ID:        "SO-30515037",
		Title:     "nextTick busy-wait on a flag set by a timer",
		Category:  "Recursive Micro Tasks",
		Expect:    []detect.Category{detect.CatRecursiveMicrotask},
		TickLimit: 100,
		Buggy:     func(ctx *asyncg.Context) { buggy(ctx, false) },
		Fixed:     func(ctx *asyncg.Context) { buggy(ctx, true) },
	}
}

// caseGHNpm12754 reproduces npm's recursive nextTick: a queue drainer
// reschedules itself with nextTick while waiting for I/O completions
// that can never be delivered.
func caseGHNpm12754() Case {
	return Case{
		ID:        "GH-npm-12754",
		Title:     "npm work-queue drainer loops on process.nextTick",
		Category:  "Recursive Micro Tasks",
		Expect:    []detect.Category{detect.CatRecursiveMicrotask},
		TickLimit: 100,
		Buggy: func(ctx *asyncg.Context) {
			pendingIO := 1
			db := ctx.DB()
			db.C("cache").FindOne(loc.Here(), `key == "x"`,
				asyncg.F("ioDone", func(args []asyncg.Value) asyncg.Value {
					pendingIO = 0
					return asyncg.Undefined
				}))
			var drain *asyncg.Function
			drain = asyncg.F("drainQueue", func(args []asyncg.Value) asyncg.Value {
				if pendingIO > 0 {
					ctx.NextTick(drain) // BUG: the I/O callback is starved
				}
				return asyncg.Undefined
			})
			ctx.NextTick(drain)
		},
		Fixed: func(ctx *asyncg.Context) {
			pendingIO := 1
			db := ctx.DB()
			db.C("cache").FindOne(loc.Here(), `key == "x"`,
				asyncg.F("ioDone", func(args []asyncg.Value) asyncg.Value {
					pendingIO = 0
					return asyncg.Undefined
				}))
			var drain *asyncg.Function
			drain = asyncg.F("drainQueue", func(args []asyncg.Value) asyncg.Value {
				if pendingIO > 0 {
					ctx.SetImmediate(drain)
				}
				return asyncg.Undefined
			})
			ctx.SetImmediate(drain)
		},
	}
}

// caseSO28830663 mixes setImmediate and nextTick assuming registration
// order is execution order.
func caseSO28830663() Case {
	return Case{
		ID:       "SO-28830663",
		Title:    "direct call vs nextTick vs setImmediate ordering",
		Category: "Mixing Similar APIs",
		Expect:   []detect.Category{detect.CatMixedAPIs},
		Buggy: func(ctx *asyncg.Context) {
			var order []string
			ctx.SetImmediate(asyncg.F("first", func(args []asyncg.Value) asyncg.Value {
				order = append(order, "first")
				return asyncg.Undefined
			}))
			// Registered second, but nextTick has higher priority —
			// "first" actually runs last.
			ctx.NextTick(asyncg.F("second", func(args []asyncg.Value) asyncg.Value {
				order = append(order, "second")
				return asyncg.Undefined
			}))
		},
		Fixed: func(ctx *asyncg.Context) {
			var order []string
			// Registration order now matches scheduling priority.
			ctx.NextTick(asyncg.F("first", func(args []asyncg.Value) asyncg.Value {
				order = append(order, "first")
				return asyncg.Undefined
			}))
			ctx.SetImmediate(asyncg.F("second", func(args []asyncg.Value) asyncg.Value {
				order = append(order, "second")
				return asyncg.Undefined
			}))
		},
	}
}

// caseMotivation is the §III snippet: the programmer assumes the
// callbacks run in registration order (promise, setTimeout, nextTick),
// but the actual order is nextTick, promise, setTimeout — and the
// nextTick callback crashes on the not-yet-assigned variable.
func caseMotivation() Case {
	return Case{
		ID:       "motivation",
		Title:    "§III: assumed registration order crashes on nextTick",
		Category: "Mixing Similar APIs",
		Expect:   []detect.Category{detect.CatMixedAPIs},
		Buggy: func(ctx *asyncg.Context) {
			var foo asyncg.Value = asyncg.Undefined
			p := ctx.Resolve(map[string]asyncg.Value{})
			ctx.Then(p, asyncg.F("assignFoo", func(args []asyncg.Value) asyncg.Value {
				foo = args[0]
				return asyncg.Undefined
			}), nil)
			ctx.SetTimeout(asyncg.F("defineBar", func(args []asyncg.Value) asyncg.Value {
				foo.(map[string]asyncg.Value)["bar"] = "function"
				return asyncg.Undefined
			}), 0)
			ctx.NextTick(asyncg.F("callBar", func(args []asyncg.Value) asyncg.Value {
				if _, ok := foo.(map[string]asyncg.Value); !ok {
					asyncg.Throw("TypeError: cannot read property 'bar' of undefined")
				}
				return asyncg.Undefined
			}))
		},
		Fixed: func(ctx *asyncg.Context) {
			// Sequence the steps through the promise chain instead of
			// relying on queue priorities.
			var foo asyncg.Value = asyncg.Undefined
			p := ctx.Resolve(map[string]asyncg.Value{})
			chained := ctx.Then(p, asyncg.F("assignFoo", func(args []asyncg.Value) asyncg.Value {
				foo = args[0]
				return foo
			}), nil)
			chained = ctx.Then(chained, asyncg.F("defineBar", func(args []asyncg.Value) asyncg.Value {
				foo.(map[string]asyncg.Value)["bar"] = "function"
				return foo
			}), nil)
			chained = ctx.Then(chained, asyncg.F("callBar", func(args []asyncg.Value) asyncg.Value {
				return asyncg.Undefined
			}), nil)
			ctx.Catch(chained, asyncg.F("onError", func(args []asyncg.Value) asyncg.Value {
				return asyncg.Undefined
			}))
		},
	}
}
