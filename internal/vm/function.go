package vm

import (
	"fmt"
	"sync/atomic"

	"asyncg/internal/loc"
)

// Impl is the Go implementation of a simulated function. Arguments arrive
// as a Value slice; the return value resolves to Undefined when the
// implementation has nothing to return (return vm.Undefined).
type Impl func(args []Value) Value

// Function is a first-class callback value. It carries a stable identity
// (pointer), a name, and the source location where it was created, which
// the Async Graph uses to label nodes ("L<line>" in the paper's figures).
type Function struct {
	ID   uint64
	Name string
	Loc  loc.Loc
	impl Impl
}

var funcSeq atomic.Uint64

// NewFunc creates a function value, capturing the caller's source location.
func NewFunc(name string, impl Impl) *Function {
	return NewFuncAt(name, loc.Caller(0), impl)
}

// NewFuncAt creates a function value with an explicit source location.
// Library code uses it to attribute internal callbacks to the user call
// site rather than to the library.
func NewFuncAt(name string, at loc.Loc, impl Impl) *Function {
	return &Function{
		ID:   funcSeq.Add(1),
		Name: name,
		Loc:  at,
		impl: impl,
	}
}

// Invoke runs the function body directly, without announcing anything to
// probes. The runtime's dispatcher is responsible for probe events; user
// code should never call Invoke.
func (f *Function) Invoke(args []Value) Value {
	if f == nil || f.impl == nil {
		return Undefined
	}
	v := f.impl(args)
	if v == nil {
		return Undefined
	}
	return v
}

// String returns the function's diagnostic name ("<nil>" for a nil
// function).
func (f *Function) String() string {
	if f == nil {
		return "<nil func>"
	}
	name := f.Name
	if name == "" {
		name = "anonymous"
	}
	return fmt.Sprintf("%s@%s", name, f.Loc)
}

// Arg returns args[i], or Undefined when the argument is absent,
// mirroring JavaScript's permissive arity.
func Arg(args []Value, i int) Value {
	if i < 0 || i >= len(args) {
		return Undefined
	}
	if args[i] == nil {
		return Undefined
	}
	return args[i]
}
