package vm

import (
	"time"

	"asyncg/internal/loc"
)

// ObjKind classifies runtime objects that async callbacks can be bound to.
type ObjKind string

// Object kinds observable through probe events.
const (
	ObjNone    ObjKind = ""
	ObjEmitter ObjKind = "emitter"
	ObjPromise ObjKind = "promise"
	ObjTimer   ObjKind = "timer"
	ObjIO      ObjKind = "io"
	ObjCell    ObjKind = "cell"
)

// ObjRef identifies a runtime object (emitter, promise, ...) in probe
// events. The zero ObjRef means "no bound object".
type ObjRef struct {
	ID   uint64
	Kind ObjKind
}

// IsZero reports whether the reference is empty.
func (r ObjRef) IsZero() bool { return r.ID == 0 }

// Registration describes one callback registered by an async API use.
// The runtime assigns Seq at registration time and repeats it in the
// Dispatch of the eventual execution, which lets tools cross-check the
// context-validator mapping of the paper's Algorithm 3.
type Registration struct {
	Seq      uint64
	Callback *Function
	// Phase is the tick type in which the callback is scheduled to run
	// ("nextTick", "promise", "timer", "immediate", "io", "close"), or
	// "sync" for callbacks invoked immediately (promise executors).
	Phase string
	// Once reports whether the registration fires at most one execution
	// (setTimeout, once) as opposed to many (setInterval, emitter.on).
	Once bool
	// Role describes the callback's position in the API: "callback"
	// (plain scheduling), "listener" (emitter), "fulfill" / "reject" /
	// "finally" / "await" (promise reactions), "executor", "async".
	Role string
}

// APIEvent announces one async-API call: a callback registration
// (process.nextTick, setTimeout, emitter.on, promise.then, ...), a
// trigger (emitter.emit, promise resolve/reject), an object binding
// (new EventEmitter, new Promise), or a de-registration (clearTimeout,
// removeListener). This is the information AsyncG's per-API templates
// extract in Algorithm 2.
type APIEvent struct {
	// API is the canonical API name, e.g. "process.nextTick",
	// "setTimeout", "emitter.on", "emitter.emit", "promise.then",
	// "promise.resolve", "new Promise", "new EventEmitter".
	API string
	// Loc is the user call site of the API use.
	Loc loc.Loc
	// Receiver is the bound object (emitter or promise), if any.
	Receiver ObjRef
	// Event carries the emitter event name, or a detail string for
	// promise operations (e.g. the relation label "then", "catch").
	Event string
	// Regs lists the callback registrations made by this API call.
	Regs []Registration
	// TriggerSeq is nonzero for trigger APIs (emit, resolve, reject);
	// executions caused by the trigger repeat it in their Dispatch.
	TriggerSeq uint64
	// Related references further objects for relation edges, e.g. the
	// derived promise created by promise.then, or the input promises of
	// Promise.all.
	Related []ObjRef
	// Args carries API-specific details (timeout durations, emitted
	// values, resolve values) for tools that want them.
	Args []Value

	// Inline backing arrays for the One* helpers below. They let a
	// pooled event carry the single registration / argument / relation
	// that dominates the probe protocol without allocating a slice.
	regs1    [1]Registration
	args1    [1]Value
	related1 [1]ObjRef
}

// SetOneReg points Regs at a single registration stored inline in the
// event, avoiding the slice allocation. The registration is only valid
// while the event is; hooks must copy what they keep (they already must —
// see Hooks).
func (ev *APIEvent) SetOneReg(r Registration) {
	ev.regs1[0] = r
	ev.Regs = ev.regs1[:1]
}

// SetOneArg points Args at a single value stored inline in the event.
func (ev *APIEvent) SetOneArg(v Value) {
	ev.args1[0] = v
	ev.Args = ev.args1[:1]
}

// SetOneRelated points Related at a single object reference stored
// inline in the event.
func (ev *APIEvent) SetOneRelated(r ObjRef) {
	ev.related1[0] = r
	ev.Related = ev.related1[:1]
}

// Dispatch describes why a callback execution is happening: which API
// registered it, on which object, for which event, and which trigger (if
// any) caused it. The runtime attaches it to top-level and emitter/promise
// dispatched invocations; plain nested calls carry a nil Dispatch.
type Dispatch struct {
	API        string
	RegSeq     uint64
	Obj        ObjRef
	Event      string
	TriggerSeq uint64
	// Zone tags which simulated process the callback belongs to.
	// The simulation runs server and workload-driver code on one loop;
	// client-side emitters set Zone "client" so measurement tools can
	// scope themselves to the server process, as the paper's
	// instrumentation (which runs inside the server) naturally does.
	Zone string
	// Pooled marks a dispatch borrowed from the owning loop's free list
	// (eventloop.Loop.NewDispatch); the loop reclaims it after the
	// callback it is attached to finishes executing. Hooks may read a
	// pooled dispatch until their FunctionExit for that callback returns,
	// and must copy fields they keep longer — the contract Hooks already
	// states for every probe payload.
	Pooled bool
}

// CallInfo accompanies every FunctionEnter probe event.
type CallInfo struct {
	// Phase is the current event-loop phase ("main", "nextTick",
	// "promise", "timer", "immediate", "io", "close"). Tools use it as
	// the tick type when the shadow stack indicates a new tick.
	Phase string
	// TopLevel reports whether this invocation starts with an empty
	// runtime stack (i.e. it is directly dispatched by the event loop).
	TopLevel bool
	// Dispatch is the scheduling context, nil for plain nested calls.
	Dispatch *Dispatch
}

// Hooks is the interface instrumentation tools implement. It corresponds
// to NodeProf's analysis callbacks used by AsyncG: functionEnter,
// functionExit, and interception of async-API calls.
//
// All hook methods run on the event-loop goroutine; implementations need
// no locking but must not block. Event payloads (*APIEvent, *CallInfo,
// and a pooled *Dispatch) may be recycled by the runtime after the hook
// returns, so hooks copy the fields they retain rather than the pointers
// — every in-tree hook already does.
type Hooks interface {
	FunctionEnter(fn *Function, info *CallInfo)
	FunctionExit(fn *Function, ret Value, thrown *Thrown)
	APICall(ev *APIEvent)
}

// QueueDepths is a point-in-time census of the loop's pending work, one
// field per queue in phase order. Tools use it for backlog metrics
// (high-water marks) without walking loop internals.
type QueueDepths struct {
	NextTick  int
	Promise   int
	Timer     int // active (non-cleared) timers, due or not
	IO        int
	Immediate int
	Close     int
}

// Total sums the pending work across all queues.
func (q QueueDepths) Total() int {
	return q.NextTick + q.Promise + q.Timer + q.IO + q.Immediate + q.Close
}

// PhaseInfo accompanies PhaseEnter/PhaseExit probe events.
type PhaseInfo struct {
	// Phase is the macro phase being entered or left ("timer", "io",
	// "immediate", "close").
	Phase string
	// Now is the virtual time at the boundary.
	Now time.Duration
	// Iteration is the 1-based loop-iteration count.
	Iteration uint64
	// Runnable is the number of callbacks dispatchable in this phase at
	// entry (for PhaseExit it repeats the entry census).
	Runnable int
}

// LoopInfo accompanies LoopIteration probe events, announced once per
// event-loop iteration before the timer phase runs.
type LoopInfo struct {
	Iteration uint64
	Now       time.Duration
	Depths    QueueDepths
}

// TimerFire accompanies TimerFired probe events: the loop is about to
// dispatch a due timer. Fired-Scheduled is the loop lag — how long after
// its deadline the callback actually runs, the paper's event-loop
// responsiveness signal.
type TimerFire struct {
	ID        uint64
	Scheduled time.Duration // the deadline the timer was due at
	Fired     time.Duration // virtual time at dispatch
	Interval  bool          // true for setInterval re-fires
}

// Lag returns how far past its deadline the timer fired.
func (t TimerFire) Lag() time.Duration { return t.Fired - t.Scheduled }

// PhaseHooks is an optional probe extension: hooks that also implement
// it observe macro-phase boundaries. Phases with nothing runnable are
// not announced, keeping traces proportional to work done.
type PhaseHooks interface {
	PhaseEnter(info *PhaseInfo)
	PhaseExit(info *PhaseInfo)
}

// LoopHooks is an optional probe extension: hooks that also implement
// it observe one event per loop iteration with queue depths.
type LoopHooks interface {
	LoopIteration(info *LoopInfo)
}

// TimerHooks is an optional probe extension: hooks that also implement
// it observe timer dispatches with scheduled-vs-fired timestamps.
type TimerHooks interface {
	TimerFired(info *TimerFire)
}

// Probes dispatches runtime events to attached hooks. Attaching and
// detaching is allowed at any point during execution (AsyncG is
// "pluggable" and can be enabled/disabled at runtime); with no hooks
// attached every probe site costs a single length check.
//
// Beyond the required Hooks methods, a hook may implement any of the
// optional extension interfaces (PhaseHooks, LoopHooks, TimerHooks).
// Attach discovers them once, so extended dispatch costs nothing when no
// attached hook subscribes.
type Probes struct {
	hooks []Hooks

	phase []PhaseHooks
	loops []LoopHooks
	timer []TimerHooks
}

// Attach adds a hook and discovers its optional extension interfaces.
// It is a no-op if the hook is already attached.
func (p *Probes) Attach(h Hooks) {
	for _, existing := range p.hooks {
		if existing == h {
			return
		}
	}
	// Copy-on-write so an attach during dispatch cannot disturb the
	// iteration in flight.
	next := make([]Hooks, len(p.hooks), len(p.hooks)+1)
	copy(next, p.hooks)
	p.hooks = append(next, h)
	p.rediscover()
}

// Detach removes a hook. It is a no-op if the hook is not attached.
func (p *Probes) Detach(h Hooks) {
	for i, existing := range p.hooks {
		if existing == h {
			next := make([]Hooks, 0, len(p.hooks)-1)
			next = append(next, p.hooks[:i]...)
			next = append(next, p.hooks[i+1:]...)
			p.hooks = next
			p.rediscover()
			return
		}
	}
}

// rediscover rebuilds the optional-interface fan-out lists, preserving
// attachment order within each extension.
func (p *Probes) rediscover() {
	p.phase, p.loops, p.timer = nil, nil, nil
	for _, h := range p.hooks {
		if ph, ok := h.(PhaseHooks); ok {
			p.phase = append(p.phase, ph)
		}
		if lh, ok := h.(LoopHooks); ok {
			p.loops = append(p.loops, lh)
		}
		if th, ok := h.(TimerHooks); ok {
			p.timer = append(p.timer, th)
		}
	}
}

// Active reports whether any hook is attached.
func (p *Probes) Active() bool { return len(p.hooks) > 0 }

// FunctionEnter announces a function invocation to all hooks.
func (p *Probes) FunctionEnter(fn *Function, info *CallInfo) {
	for _, h := range p.hooks {
		h.FunctionEnter(fn, info)
	}
}

// FunctionExit announces a function return (or throw) to all hooks.
func (p *Probes) FunctionExit(fn *Function, ret Value, thrown *Thrown) {
	for _, h := range p.hooks {
		h.FunctionExit(fn, ret, thrown)
	}
}

// APICall announces an async-API use to all hooks.
func (p *Probes) APICall(ev *APIEvent) {
	for _, h := range p.hooks {
		h.APICall(ev)
	}
}

// WantPhases reports whether any attached hook subscribes to phase
// boundaries, so emitters can skip building PhaseInfo.
func (p *Probes) WantPhases() bool { return len(p.phase) > 0 }

// WantLoop reports whether any attached hook subscribes to per-iteration
// events.
func (p *Probes) WantLoop() bool { return len(p.loops) > 0 }

// WantTimers reports whether any attached hook subscribes to timer
// dispatches.
func (p *Probes) WantTimers() bool { return len(p.timer) > 0 }

// PhaseEnter announces a macro-phase entry to subscribing hooks.
func (p *Probes) PhaseEnter(info *PhaseInfo) {
	for _, h := range p.phase {
		h.PhaseEnter(info)
	}
}

// PhaseExit announces a macro-phase exit to subscribing hooks.
func (p *Probes) PhaseExit(info *PhaseInfo) {
	for _, h := range p.phase {
		h.PhaseExit(info)
	}
}

// LoopIteration announces one loop iteration to subscribing hooks.
func (p *Probes) LoopIteration(info *LoopInfo) {
	for _, h := range p.loops {
		h.LoopIteration(info)
	}
}

// TimerFired announces an imminent timer dispatch to subscribing hooks.
func (p *Probes) TimerFired(info *TimerFire) {
	for _, h := range p.timer {
		h.TimerFired(info)
	}
}
