package vm

import (
	"strings"
	"testing"

	"asyncg/internal/loc"
)

func TestUndefinedIdentity(t *testing.T) {
	if !IsUndefined(Undefined) {
		t.Fatal("Undefined is not undefined")
	}
	if IsUndefined(nil) || IsUndefined(0) || IsUndefined("") {
		t.Fatal("non-undefined values reported undefined")
	}
	if Undefined != Undefined {
		t.Fatal("Undefined not comparable to itself")
	}
}

func TestToString(t *testing.T) {
	cases := []struct {
		in   Value
		want string
	}{
		{nil, "null"},
		{Undefined, "undefined"},
		{"text", "text"},
		{42, "42"},
		{3.5, "3.5"},
		{true, "true"},
	}
	for _, tc := range cases {
		if got := ToString(tc.in); got != tc.want {
			t.Errorf("ToString(%v) = %q, want %q", tc.in, got, tc.want)
		}
	}
}

func TestToStringUsesStringer(t *testing.T) {
	fn := NewFunc("named", func([]Value) Value { return Undefined })
	if got := ToString(fn); !strings.Contains(got, "named") {
		t.Fatalf("ToString(fn) = %q", got)
	}
}

func TestNewFuncCapturesCallerLocation(t *testing.T) {
	fn := NewFunc("f", func([]Value) Value { return Undefined })
	if fn.Loc.File != "vm_test.go" {
		t.Fatalf("loc = %v", fn.Loc)
	}
	if fn.Loc.Line == 0 {
		t.Fatal("line not captured")
	}
}

func TestFunctionIdentityAndIDs(t *testing.T) {
	impl := func([]Value) Value { return Undefined }
	a := NewFunc("x", impl)
	b := NewFunc("x", impl)
	if a == b || a.ID == b.ID {
		t.Fatal("distinct functions share identity")
	}
}

func TestInvokeNormalizesNilReturn(t *testing.T) {
	fn := NewFunc("n", func([]Value) Value { return nil })
	if !IsUndefined(fn.Invoke(nil)) {
		t.Fatal("nil return not normalized to Undefined")
	}
	var nilFn *Function
	if !IsUndefined(nilFn.Invoke(nil)) {
		t.Fatal("nil function did not return Undefined")
	}
}

func TestArgIsPermissive(t *testing.T) {
	args := []Value{"a", nil}
	if Arg(args, 0) != "a" {
		t.Fatal("Arg(0)")
	}
	if !IsUndefined(Arg(args, 1)) {
		t.Fatal("nil arg should read as Undefined")
	}
	if !IsUndefined(Arg(args, 5)) || !IsUndefined(Arg(args, -1)) {
		t.Fatal("out-of-range args should read as Undefined")
	}
}

func TestThrowAndCatch(t *testing.T) {
	thrown := CatchThrown(func() { Throw("boom") })
	if thrown == nil || ToString(thrown.Value) != "boom" {
		t.Fatalf("thrown = %+v", thrown)
	}
	if thrown.Loc.File != "vm_test.go" {
		t.Fatalf("throw site = %v", thrown.Loc)
	}
	if CatchThrown(func() {}) != nil {
		t.Fatal("phantom exception")
	}
}

func TestCatchThrownDoesNotSwallowRealPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("real panic was swallowed")
		}
	}()
	CatchThrown(func() { panic("simulator bug") })
}

func TestThrownIsAnError(t *testing.T) {
	th := &Thrown{Value: "reason", Loc: loc.Loc{File: "x.go", Line: 7}}
	msg := th.Error()
	if !strings.Contains(msg, "reason") || !strings.Contains(msg, "x.go:7") {
		t.Fatalf("Error() = %q", msg)
	}
}

func TestProbesAttachDetachIdempotent(t *testing.T) {
	var p Probes
	h := &countingHooks{}
	p.Attach(h)
	p.Attach(h) // no duplicate dispatch
	if !p.Active() {
		t.Fatal("not active after attach")
	}
	p.FunctionEnter(nil, &CallInfo{})
	if h.enters != 1 {
		t.Fatalf("enters = %d, want 1", h.enters)
	}
	p.Detach(h)
	p.Detach(h) // harmless
	if p.Active() {
		t.Fatal("active after detach")
	}
	p.FunctionEnter(nil, &CallInfo{})
	if h.enters != 1 {
		t.Fatal("detached hook saw an event")
	}
}

func TestProbesDispatchOrderIsAttachOrder(t *testing.T) {
	var p Probes
	var order []string
	a := &namedHooks{name: "a", order: &order}
	b := &namedHooks{name: "b", order: &order}
	p.Attach(a)
	p.Attach(b)
	p.APICall(&APIEvent{})
	if len(order) != 2 || order[0] != "a" || order[1] != "b" {
		t.Fatalf("order = %v", order)
	}
}

func TestObjRefZero(t *testing.T) {
	if !(ObjRef{}).IsZero() {
		t.Fatal("zero ref not zero")
	}
	if (ObjRef{ID: 1, Kind: ObjEmitter}).IsZero() {
		t.Fatal("non-zero ref zero")
	}
}

type countingHooks struct{ enters int }

func (c *countingHooks) FunctionEnter(*Function, *CallInfo)     { c.enters++ }
func (c *countingHooks) FunctionExit(*Function, Value, *Thrown) {}
func (c *countingHooks) APICall(*APIEvent)                      {}

type namedHooks struct {
	name  string
	order *[]string
}

func (n *namedHooks) FunctionEnter(*Function, *CallInfo)     {}
func (n *namedHooks) FunctionExit(*Function, Value, *Thrown) {}
func (n *namedHooks) APICall(*APIEvent)                      { *n.order = append(*n.order, n.name) }
