// Package vm provides the primitive value and function model for the
// simulated JavaScript-like runtime, together with the probe dispatcher
// that instrumentation tools (such as the Async Graph builder) attach to.
//
// The package plays the role that the JavaScript engine plus the NodeProf
// instrumentation framework play in the paper: callbacks are first-class
// Function values carrying source locations, and every invocation and
// async-API call is announced to pluggable hooks.
package vm

import "fmt"

// Value is the dynamic value type of the simulated runtime. Any Go value
// may flow through; Undefined is the distinguished "no value" sentinel
// mirroring JavaScript's undefined.
type Value = any

// undefinedType is unexported so that Undefined is the only value of it.
type undefinedType struct{}

func (undefinedType) String() string { return "undefined" }

// Undefined is the distinguished "no value" value, analogous to
// JavaScript's undefined. A callback that does not explicitly return a
// value returns Undefined.
var Undefined Value = undefinedType{}

// IsUndefined reports whether v is the Undefined sentinel.
func IsUndefined(v Value) bool {
	_, ok := v.(undefinedType)
	return ok
}

// ToString renders a value the way the runtime's diagnostics print it.
func ToString(v Value) string {
	if v == nil {
		return "null"
	}
	if IsUndefined(v) {
		return "undefined"
	}
	switch t := v.(type) {
	case string:
		return t
	case fmt.Stringer:
		return t.String()
	default:
		return fmt.Sprintf("%v", v)
	}
}
