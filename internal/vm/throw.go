package vm

import (
	"fmt"

	"asyncg/internal/loc"
)

// Thrown represents a simulated JavaScript exception in flight. Runtime
// code raises it with Throw and confines it with CatchThrown; a Thrown
// that escapes a top-level callback becomes an uncaught exception recorded
// by the event loop.
type Thrown struct {
	Value Value
	Loc   loc.Loc
}

// Error makes Thrown usable as a Go error for reporting.
func (t *Thrown) Error() string {
	return fmt.Sprintf("uncaught %s (thrown at %s)", ToString(t.Value), t.Loc)
}

// Throw raises a simulated exception carrying v. It does not return.
func Throw(v Value) {
	panic(&Thrown{Value: v, Loc: loc.Caller(0)})
}

// ThrowAt raises a simulated exception with an explicit origin location.
func ThrowAt(v Value, at loc.Loc) {
	panic(&Thrown{Value: v, Loc: at})
}

// CatchThrown runs f and captures a simulated exception if one escapes.
// Genuine Go panics (including runtime errors) are not intercepted: they
// indicate bugs in the simulator itself and must crash loudly.
func CatchThrown(f func()) (thrown *Thrown) {
	defer func() {
		if r := recover(); r != nil {
			t, ok := r.(*Thrown)
			if !ok {
				panic(r)
			}
			thrown = t
		}
	}()
	f()
	return nil
}
