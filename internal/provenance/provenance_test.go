package provenance_test

import (
	"strings"
	"testing"

	"asyncg"
	"asyncg/internal/asyncgraph"
	"asyncg/internal/casestudy"
	"asyncg/internal/provenance"
)

// TestWalkSemantics checks the hop grammar on the Fig. 4 dead-listener
// warning: the anchor □, the ○ it was created in, that ○'s ★ trigger
// and □ registration — ending at the main tick.
func TestWalkSemantics(t *testing.T) {
	c, ok := casestudy.ByID("fig4")
	if !ok {
		t.Fatal("fig4 missing")
	}
	res := casestudy.RunBuggy(c)
	pw := provenance.NewWalker(res.Report.Graph)

	var chain []asyncgraph.ChainHop
	for _, w := range res.Report.Warnings {
		if strings.Contains(string(w.Category), "dead-listener") {
			chain = pw.Chain(w.Node)
		}
	}
	if len(chain) < 4 {
		t.Fatalf("dead-listener chain has %d hops, want >= 4: %+v", len(chain), chain)
	}
	wantKinds := []string{"CR", "CE", "CT", "CR"}
	wantSteps := []string{"", provenance.StepContext, provenance.StepTrigger, provenance.StepRegistration}
	for i := range wantKinds {
		if chain[i].Kind != wantKinds[i] || chain[i].Step != wantSteps[i] {
			t.Errorf("hop %d = kind %s step %q, want kind %s step %q",
				i, chain[i].Kind, chain[i].Step, wantKinds[i], wantSteps[i])
		}
	}
	if !strings.HasPrefix(chain[0].Tick, "t") {
		t.Errorf("anchor hop has no tick name: %+v", chain[0])
	}
	if last := chain[len(chain)-1]; !strings.Contains(last.Tick, "main") {
		t.Errorf("chain does not end at the main tick: %+v", last)
	}
}

// TestChainUnknownAnchor: program-level warnings have no anchor node;
// the walk must yield nil, not panic.
func TestChainUnknownAnchor(t *testing.T) {
	c, _ := casestudy.ByID("fig4")
	res := casestudy.RunBuggy(c)
	pw := provenance.NewWalker(res.Report.Graph)
	if got := pw.Chain(asyncgraph.NoNode); got != nil {
		t.Errorf("Chain(NoNode) = %+v, want nil", got)
	}
	if got := pw.Chain(asyncgraph.NodeID(1 << 30)); got != nil {
		t.Errorf("Chain(out-of-range) = %+v, want nil", got)
	}
}

// TestAnnotate fills every warning's chain in place.
func TestAnnotate(t *testing.T) {
	c, _ := casestudy.ByID("fig4")
	res := casestudy.RunBuggy(c)
	provenance.Annotate(res.Report.Graph)
	annotated := 0
	for _, w := range res.Report.Graph.Warnings {
		if len(w.Chain) > 0 {
			annotated++
		}
	}
	if annotated == 0 {
		t.Error("Annotate left every warning without a chain")
	}
}

// TestDebugStackFrames: under WithDebugStacks the hops carry filtered Go
// creation frames — the program's own call sites survive, the
// simulator's machinery frames do not. Frames hold absolute paths, so
// this asserts substrings, never golden bytes.
func TestDebugStackFrames(t *testing.T) {
	c, _ := casestudy.ByID("fig4")
	res := casestudy.RunBuggy(c, asyncg.WithDebugStacks())
	pw := provenance.NewWalker(res.Report.Graph)
	sawFrame := false
	for _, w := range res.Report.Warnings {
		for _, hop := range pw.Chain(w.Node) {
			for _, f := range hop.Stack {
				sawFrame = true
				if strings.Contains(f, "asyncg/internal/eventloop.") ||
					strings.HasPrefix(f, "runtime.") {
					t.Errorf("machinery frame leaked into chain: %s", f)
				}
			}
		}
	}
	if !sawFrame {
		t.Fatal("no hop carried a debug stack under WithDebugStacks")
	}

	// Without the opt-in, no hop may carry frames at all.
	plain := casestudy.RunBuggy(c)
	pw = provenance.NewWalker(plain.Report.Graph)
	for _, w := range plain.Report.Warnings {
		for _, hop := range pw.Chain(w.Node) {
			if len(hop.Stack) > 0 {
				t.Fatalf("debug stack captured without opt-in: %+v", hop)
			}
		}
	}
}
