// Package provenance reconstructs the causal story behind a detector
// warning by walking the Async Graph backwards from the warning's
// anchor node — the cross-tick "async stack trace" of the paper's
// debugging narrative.
//
// The walk inverts the graph's causal edges. From a callback execution
// (○, CE) it recovers the trigger that fired it (★, CT, when one
// exists), the registration that created the callback (□, CR, via the
// ○⇠□ binding edge), and then continues from the execution *during
// which that registration happened* (the CE→□ happens-in edge) — the
// same "who registered this callback, and who ran them" recursion an
// async-aware debugger performs over async_hooks. From a CR/CT/OB
// anchor it first steps to the enclosing execution, then recurses. The
// walk ends at nodes created by the main program (tick t1 has no
// enclosing CE) or when the graph records no further cause.
//
// A Walker precomputes the three inverted indexes in one O(V+E) pass;
// each chain then costs O(hops), bounded by MaxHops. Chains are plain
// data ([]asyncgraph.ChainHop) so every layer that carries warnings can
// embed them; see Render for the human-readable form.
package provenance

import (
	"strings"

	"asyncg/internal/asyncgraph"
)

// Step values for ChainHop.Step: how a hop follows from the previous
// (more recent) one.
const (
	// StepTrigger marks the ★ node whose firing ran the previous ○.
	StepTrigger = "trigger"
	// StepRegistration marks the □ node that registered the previous
	// ○'s callback.
	StepRegistration = "registration"
	// StepContext marks the ○ node during which the previous hop's node
	// was created (the graph's happens-in edge, inverted).
	StepContext = "context"
)

// MaxHops bounds a chain's length as a defensive limit; real chains end
// at the main tick long before this.
const MaxHops = 256

// Walker answers backward-provenance queries over one Async Graph. It
// precomputes the inverted causal indexes once (O(V+E)); build a fresh
// Walker per graph.
type Walker struct {
	g *asyncgraph.Graph
	// trigOf maps a CE node to the CT node whose firing ran it (NoNode
	// when the execution had no explicit trigger).
	trigOf []asyncgraph.NodeID
	// regOf maps a CE node to the CR node it is bound to (the ○⇠□
	// binding edge; NoNode for untracked executions).
	regOf []asyncgraph.NodeID
	// encOf maps any node to the CE node it was created during (the
	// happens-in edge, inverted; NoNode for main-tick nodes).
	encOf []asyncgraph.NodeID
}

// NewWalker indexes the graph for backward walks.
func NewWalker(g *asyncgraph.Graph) *Walker {
	w := &Walker{
		g:      g,
		trigOf: make([]asyncgraph.NodeID, len(g.Nodes)),
		regOf:  make([]asyncgraph.NodeID, len(g.Nodes)),
		encOf:  make([]asyncgraph.NodeID, len(g.Nodes)),
	}
	for i := range w.trigOf {
		w.trigOf[i] = asyncgraph.NoNode
		w.regOf[i] = asyncgraph.NoNode
		w.encOf[i] = asyncgraph.NoNode
	}
	for _, e := range g.Edges {
		from, to := g.Node(e.From), g.Node(e.To)
		if from == nil || to == nil {
			continue
		}
		switch e.Kind {
		case asyncgraph.EdgeDirect:
			// First edge wins: edges are appended in creation order, so
			// the first is the builder's primary cause.
			switch {
			case from.Kind == asyncgraph.CT && to.Kind == asyncgraph.CE:
				if w.trigOf[to.ID] == asyncgraph.NoNode {
					w.trigOf[to.ID] = from.ID
				}
			case from.Kind == asyncgraph.CE:
				if w.encOf[to.ID] == asyncgraph.NoNode {
					w.encOf[to.ID] = from.ID
				}
			}
		case asyncgraph.EdgeBinding:
			if from.Kind == asyncgraph.CE && to.Kind == asyncgraph.CR &&
				w.regOf[from.ID] == asyncgraph.NoNode {
				w.regOf[from.ID] = to.ID
			}
		}
	}
	return w
}

// Chain walks backwards from a node and returns its async causal chain,
// most recent hop first. A NoNode or out-of-range anchor (program-level
// warnings) yields nil.
func (w *Walker) Chain(anchor asyncgraph.NodeID) []asyncgraph.ChainHop {
	n := w.g.Node(anchor)
	if n == nil {
		return nil
	}
	var hops []asyncgraph.ChainHop
	visited := make(map[asyncgraph.NodeID]bool)
	cur, step := n, ""
	for len(hops) < MaxHops {
		if cur.Kind == asyncgraph.CE {
			if visited[cur.ID] {
				break
			}
			visited[cur.ID] = true
		}
		hops = append(hops, w.hop(cur, step))
		if cur.Kind != asyncgraph.CE {
			// CR/CT/OB: the only backward step is into the execution the
			// node was created during.
			enc := w.encOf[cur.ID]
			if enc == asyncgraph.NoNode {
				break
			}
			cur, step = w.g.Node(enc), StepContext
			continue
		}
		// CE: surface the trigger and the registration as hops, then
		// continue from the registration's context — the execution that
		// created this callback.
		ct, cr := w.trigOf[cur.ID], w.regOf[cur.ID]
		if ct != asyncgraph.NoNode {
			hops = append(hops, w.hop(w.g.Node(ct), StepTrigger))
		}
		next := asyncgraph.NoNode
		switch {
		case cr != asyncgraph.NoNode:
			hops = append(hops, w.hop(w.g.Node(cr), StepRegistration))
			next = w.encOf[cr]
		case ct != asyncgraph.NoNode:
			next = w.encOf[ct]
		default:
			next = w.encOf[cur.ID]
		}
		if next == asyncgraph.NoNode {
			break
		}
		cur, step = w.g.Node(next), StepContext
	}
	return hops
}

// hop renders one node as a chain hop.
func (w *Walker) hop(n *asyncgraph.Node, step string) asyncgraph.ChainHop {
	h := asyncgraph.ChainHop{
		Node:  n.ID,
		Kind:  n.Kind.String(),
		Step:  step,
		Label: n.Label,
		Loc:   n.Loc.String(),
		Func:  n.Func,
	}
	if t := w.g.TickOf(n.ID); t != nil {
		h.Tick = t.Name()
	}
	if len(n.Stack) > 0 {
		h.Stack = userFrames(n.Stack)
	}
	return h
}

// Annotate fills Warning.Chain for every warning of the graph, in
// place. One Walker serves all of them.
func Annotate(g *asyncgraph.Graph) {
	w := NewWalker(g)
	for i := range g.Warnings {
		g.Warnings[i].Chain = w.Chain(g.Warnings[i].Node)
	}
}

// machineryPrefixes lists the simulator's own packages: frames from
// them describe how the runtime dispatched the API call, not where the
// program made it, so userFrames drops them.
var machineryPrefixes = []string{
	"asyncg/internal/vm.",
	"asyncg/internal/promise.",
	"asyncg/internal/events.",
	"asyncg/internal/eventloop.",
	"asyncg/internal/asyncgraph.",
	"asyncg/internal/detect.",
	"runtime.",
}

// maxUserFrames caps the debug-stack frames shown per hop.
const maxUserFrames = 10

// userFrames filters a captured creation stack down to the frames a
// user can act on.
func userFrames(stack []string) []string {
	out := make([]string, 0, len(stack))
	for _, f := range stack {
		machinery := false
		for _, p := range machineryPrefixes {
			if strings.HasPrefix(f, p) {
				machinery = true
				break
			}
		}
		if machinery {
			continue
		}
		out = append(out, f)
		if len(out) == maxUserFrames {
			break
		}
	}
	return out
}
