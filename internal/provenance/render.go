package provenance

import (
	"fmt"
	"io"
	"strings"

	"asyncg/internal/asyncgraph"
)

// symbolFor maps a hop's node-kind tag to the paper's glyph.
func symbolFor(kind string) string {
	switch kind {
	case "CR":
		return "□"
	case "CE":
		return "○"
	case "CT":
		return "★"
	case "OB":
		return "△"
	default:
		return "?"
	}
}

// connectorFor renders the causal step into the hop ("" for the anchor).
func connectorFor(step string) string {
	switch step {
	case StepTrigger:
		return "↑ triggered by  "
	case StepRegistration:
		return "↑ registered at "
	case StepContext:
		return "↑ created in    "
	default:
		return ""
	}
}

// Render writes a chain as a human-readable async stack trace, one hop
// per line, each prefixed with indent. The anchor hop comes first; every
// later line names the causal step that led to it. Debug-stack frames
// (when captured under -debug-stacks) follow their hop, indented further.
//
//	□ t2:promise  L307: on('foo') (promise_cases.go:307)
//	  ↑ created in    ○ t2:promise  L306: reaction (promise_cases.go:306)
//	  ↑ registered at □ t1:main  L306: then (promise_cases.go:306)
func Render(w io.Writer, chain []asyncgraph.ChainHop, indent string) error {
	for i, h := range chain {
		prefix := indent
		if i > 0 {
			prefix += "  " + connectorFor(h.Step)
		}
		tick := h.Tick
		if tick == "" {
			tick = "t?"
		}
		if _, err := fmt.Fprintf(w, "%s%s %-12s %s (%s)\n", prefix, symbolFor(h.Kind), tick, h.Label, h.Loc); err != nil {
			return err
		}
		for _, f := range h.Stack {
			if _, err := fmt.Fprintf(w, "%s      at %s\n", indent, f); err != nil {
				return err
			}
		}
	}
	return nil
}

// Sprint renders the chain to a string (see Render).
func Sprint(chain []asyncgraph.ChainHop, indent string) string {
	var b strings.Builder
	Render(&b, chain, indent)
	return b.String()
}
