package provenance_test

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"asyncg/internal/casestudy"
	"asyncg/internal/provenance"
)

var update = flag.Bool("update", false, "rewrite the golden chain files in testdata/")

// goldenCases are the case-study targets whose chains are pinned byte
// for byte. They span the anchor kinds the walker handles: □ dead
// listeners, ★ dead emits, △ promise bindings, and CE-rooted warnings,
// from single-hop (main-tick) to multi-hop (registration inside a
// promise reaction). Debug stacks stay OFF here: golden files must not
// contain environment-specific absolute paths.
var goldenCases = []string{
	"fig4",
	"motivation",
	"fanout-join",
	"SO-17894000",
	"SO-33330277",
	"SO-38140113",
}

// renderChains runs the buggy program under the default schedule and
// renders every warning with its chain — the exact hop sequence the
// golden file asserts.
func renderChains(t *testing.T, id string) []byte {
	t.Helper()
	c, ok := casestudy.ByID(id)
	if !ok {
		t.Fatalf("unknown case %q", id)
	}
	res := casestudy.RunBuggy(c)
	if res.Report == nil || res.Report.Graph == nil {
		t.Fatalf("%s: no graph (err=%v)", id, res.Err)
	}
	var buf bytes.Buffer
	pw := provenance.NewWalker(res.Report.Graph)
	for _, w := range res.Report.Warnings {
		fmt.Fprintf(&buf, "⚡ %s\n", w)
		chain := pw.Chain(w.Node)
		if len(chain) == 0 {
			fmt.Fprintf(&buf, "  (no chain: program-level warning)\n")
			continue
		}
		if err := provenance.Render(&buf, chain, "  "); err != nil {
			t.Fatal(err)
		}
	}
	return buf.Bytes()
}

// TestGoldenChains pins the chain extraction over the case-study corpus.
// Run with -update after an intentional change to the walk or renderer.
func TestGoldenChains(t *testing.T) {
	for _, id := range goldenCases {
		t.Run(id, func(t *testing.T) {
			got := renderChains(t, id)
			path := filepath.Join("testdata", id+".golden")
			if *update {
				if err := os.MkdirAll("testdata", 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, got, 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("%v (run `go test ./internal/provenance -run TestGoldenChains -update`)", err)
			}
			if !bytes.Equal(got, want) {
				t.Errorf("chains changed for %s:\n--- got ---\n%s--- want ---\n%s", id, got, want)
			}
		})
	}
}

// TestGoldenChainsDeterministic: two fresh runs must render identical
// bytes — the precondition for golden files (and for the fleet merge
// invariant, which re-derives chains from witness tokens).
func TestGoldenChainsDeterministic(t *testing.T) {
	a := renderChains(t, "fig4")
	b := renderChains(t, "fig4")
	if !bytes.Equal(a, b) {
		t.Errorf("same program rendered differently:\n%s\nvs\n%s", a, b)
	}
}
