package events

import (
	"testing"

	"asyncg/internal/eventloop"
	"asyncg/internal/loc"
	"asyncg/internal/vm"
)

// run executes program on a fresh loop and fails the test on loop error.
func run(t *testing.T, program func(l *eventloop.Loop)) *eventloop.Loop {
	t.Helper()
	l := eventloop.New(eventloop.Options{})
	main := vm.NewFunc("main", func([]vm.Value) vm.Value {
		program(l)
		return vm.Undefined
	})
	if err := l.Run(main); err != nil {
		t.Fatal(err)
	}
	return l
}

func logFn(trace *[]string, label string) *vm.Function {
	return vm.NewFunc(label, func(args []vm.Value) vm.Value {
		*trace = append(*trace, label)
		return vm.Undefined
	})
}

func TestEmitInvokesListenersInOrder(t *testing.T) {
	var trace []string
	run(t, func(l *eventloop.Loop) {
		e := New(l, "e", loc.Here())
		e.On(loc.Here(), "x", logFn(&trace, "a"))
		e.On(loc.Here(), "x", logFn(&trace, "b"))
		if !e.Emit(loc.Here(), "x") {
			t.Error("Emit returned false with listeners present")
		}
	})
	if len(trace) != 2 || trace[0] != "a" || trace[1] != "b" {
		t.Fatalf("trace = %v", trace)
	}
}

func TestEmitWithNoListenersReturnsFalse(t *testing.T) {
	run(t, func(l *eventloop.Loop) {
		e := New(l, "e", loc.Here())
		if e.Emit(loc.Here(), "ghost") {
			t.Error("Emit returned true with no listeners")
		}
	})
}

func TestOnceFiresExactlyOnce(t *testing.T) {
	var trace []string
	run(t, func(l *eventloop.Loop) {
		e := New(l, "e", loc.Here())
		e.Once(loc.Here(), "x", logFn(&trace, "once"))
		e.Emit(loc.Here(), "x")
		e.Emit(loc.Here(), "x")
	})
	if len(trace) != 1 {
		t.Fatalf("once listener ran %d times", len(trace))
	}
}

func TestPrependListenerRunsFirst(t *testing.T) {
	var trace []string
	run(t, func(l *eventloop.Loop) {
		e := New(l, "e", loc.Here())
		e.On(loc.Here(), "x", logFn(&trace, "second"))
		e.PrependListener(loc.Here(), "x", logFn(&trace, "first"))
		e.Emit(loc.Here(), "x")
	})
	if trace[0] != "first" || trace[1] != "second" {
		t.Fatalf("trace = %v", trace)
	}
}

func TestEmitPassesArguments(t *testing.T) {
	var got []vm.Value
	run(t, func(l *eventloop.Loop) {
		e := New(l, "e", loc.Here())
		e.On(loc.Here(), "data", vm.NewFunc("h", func(args []vm.Value) vm.Value {
			got = args
			return vm.Undefined
		}))
		e.Emit(loc.Here(), "data", "chunk", 42)
	})
	if len(got) != 2 || got[0] != "chunk" || got[1] != 42 {
		t.Fatalf("args = %v", got)
	}
}

func TestListenerAddedDuringEmitDoesNotRunForThatEmit(t *testing.T) {
	var trace []string
	run(t, func(l *eventloop.Loop) {
		e := New(l, "e", loc.Here())
		e.On(loc.Here(), "x", vm.NewFunc("adder", func([]vm.Value) vm.Value {
			trace = append(trace, "adder")
			e.On(loc.Here(), "x", logFn(&trace, "late"))
			return vm.Undefined
		}))
		e.Emit(loc.Here(), "x")
	})
	if len(trace) != 1 || trace[0] != "adder" {
		t.Fatalf("trace = %v", trace)
	}
}

func TestListenerRemovedDuringEmitDoesNotRun(t *testing.T) {
	var trace []string
	run(t, func(l *eventloop.Loop) {
		e := New(l, "e", loc.Here())
		victim := logFn(&trace, "victim")
		e.On(loc.Here(), "x", vm.NewFunc("remover", func([]vm.Value) vm.Value {
			trace = append(trace, "remover")
			e.RemoveListener(loc.Here(), "x", victim)
			return vm.Undefined
		}))
		e.On(loc.Here(), "x", victim)
		e.Emit(loc.Here(), "x")
	})
	if len(trace) != 1 || trace[0] != "remover" {
		t.Fatalf("trace = %v", trace)
	}
}

func TestRemoveListenerRemovesOnlyOneInstance(t *testing.T) {
	var trace []string
	run(t, func(l *eventloop.Loop) {
		e := New(l, "e", loc.Here())
		dup := logFn(&trace, "dup")
		e.On(loc.Here(), "x", dup)
		e.On(loc.Here(), "x", dup)
		e.RemoveListener(loc.Here(), "x", dup)
		e.Emit(loc.Here(), "x")
	})
	if len(trace) != 1 {
		t.Fatalf("listener ran %d times, want 1", len(trace))
	}
}

func TestRemoveAllListeners(t *testing.T) {
	var trace []string
	run(t, func(l *eventloop.Loop) {
		e := New(l, "e", loc.Here())
		e.On(loc.Here(), "x", logFn(&trace, "x1"))
		e.On(loc.Here(), "x", logFn(&trace, "x2"))
		e.On(loc.Here(), "y", logFn(&trace, "y1"))
		e.RemoveAllListeners(loc.Here(), "x")
		e.Emit(loc.Here(), "x")
		e.Emit(loc.Here(), "y")
		e.RemoveAllListeners(loc.Here(), "")
		e.Emit(loc.Here(), "y")
	})
	if len(trace) != 1 || trace[0] != "y1" {
		t.Fatalf("trace = %v", trace)
	}
}

func TestUnhandledErrorEventThrows(t *testing.T) {
	l := eventloop.New(eventloop.Options{})
	main := vm.NewFunc("main", func([]vm.Value) vm.Value {
		e := New(l, "e", loc.Here())
		e.Emit(loc.Here(), "error", "disk on fire")
		return vm.Undefined
	})
	if err := l.Run(main); err != nil {
		t.Fatal(err)
	}
	if len(l.Uncaught()) != 1 {
		t.Fatalf("uncaught = %d, want 1", len(l.Uncaught()))
	}
}

func TestHandledErrorEventDoesNotThrow(t *testing.T) {
	var handled bool
	run(t, func(l *eventloop.Loop) {
		e := New(l, "e", loc.Here())
		e.On(loc.Here(), "error", vm.NewFunc("h", func(args []vm.Value) vm.Value {
			handled = true
			return vm.Undefined
		}))
		e.Emit(loc.Here(), "error", "caught")
	})
	if !handled {
		t.Fatal("error listener did not run")
	}
}

func TestThrowInListenerStopsRemainingListeners(t *testing.T) {
	var trace []string
	l := eventloop.New(eventloop.Options{})
	main := vm.NewFunc("main", func([]vm.Value) vm.Value {
		e := New(l, "e", loc.Here())
		e.On(loc.Here(), "x", vm.NewFunc("thrower", func([]vm.Value) vm.Value {
			trace = append(trace, "thrower")
			vm.Throw("listener bug")
			return vm.Undefined
		}))
		e.On(loc.Here(), "x", logFn(&trace, "never"))
		e.Emit(loc.Here(), "x")
		trace = append(trace, "after-emit") // unreachable: throw propagates
		return vm.Undefined
	})
	if err := l.Run(main); err != nil {
		t.Fatal(err)
	}
	if len(trace) != 1 || trace[0] != "thrower" {
		t.Fatalf("trace = %v", trace)
	}
	if len(l.Uncaught()) != 1 {
		t.Fatalf("uncaught = %d, want 1", len(l.Uncaught()))
	}
}

func TestNewListenerMetaEventFiresBeforeAdd(t *testing.T) {
	var sawCount = -1
	run(t, func(l *eventloop.Loop) {
		e := New(l, "e", loc.Here())
		e.On(loc.Here(), EventNewListener, vm.NewFunc("meta", func(args []vm.Value) vm.Value {
			if vm.Arg(args, 0) == "x" {
				sawCount = e.ListenerCount("x")
			}
			return vm.Undefined
		}))
		e.On(loc.Here(), "x", vm.NewFunc("h", func([]vm.Value) vm.Value { return vm.Undefined }))
	})
	if sawCount != 0 {
		t.Fatalf("newListener saw count %d, want 0 (fired before add)", sawCount)
	}
}

func TestRemoveListenerMetaEvent(t *testing.T) {
	var removedEvents []string
	run(t, func(l *eventloop.Loop) {
		e := New(l, "e", loc.Here())
		e.On(loc.Here(), EventRemoveListener, vm.NewFunc("meta", func(args []vm.Value) vm.Value {
			removedEvents = append(removedEvents, vm.Arg(args, 0).(string))
			return vm.Undefined
		}))
		h := vm.NewFunc("h", func([]vm.Value) vm.Value { return vm.Undefined })
		e.On(loc.Here(), "x", h)
		e.RemoveListener(loc.Here(), "x", h)
		// Once-listener removal also fires the meta event.
		e.Once(loc.Here(), "y", vm.NewFunc("o", func([]vm.Value) vm.Value { return vm.Undefined }))
		e.Emit(loc.Here(), "y")
	})
	if len(removedEvents) != 2 || removedEvents[0] != "x" || removedEvents[1] != "y" {
		t.Fatalf("removeListener meta events = %v", removedEvents)
	}
}

func TestListenerIntrospection(t *testing.T) {
	run(t, func(l *eventloop.Loop) {
		e := New(l, "e", loc.Here())
		a := vm.NewFunc("a", func([]vm.Value) vm.Value { return vm.Undefined })
		b := vm.NewFunc("b", func([]vm.Value) vm.Value { return vm.Undefined })
		e.On(loc.Here(), "x", a)
		e.On(loc.Here(), "x", b)
		e.On(loc.Here(), "y", a)
		if n := e.ListenerCount("x"); n != 2 {
			t.Errorf("ListenerCount(x) = %d", n)
		}
		fns := e.Listeners("x")
		if len(fns) != 2 || fns[0] != a || fns[1] != b {
			t.Errorf("Listeners(x) = %v", fns)
		}
		names := e.EventNames()
		if len(names) != 2 {
			t.Errorf("EventNames() = %v", names)
		}
	})
}

func TestMaxListenersWarning(t *testing.T) {
	run(t, func(l *eventloop.Loop) {
		e := New(l, "e", loc.Here())
		e.SetMaxListeners(2)
		for i := 0; i < 3; i++ {
			e.On(loc.Here(), "x", vm.NewFunc("h", func([]vm.Value) vm.Value { return vm.Undefined }))
		}
		if !e.MaxListenersExceeded("x") {
			t.Error("expected max-listeners warning")
		}
		if e.MaxListenersExceeded("y") {
			t.Error("unexpected warning for clean event")
		}
	})
}

func TestProbeEventsForEmitterAPIs(t *testing.T) {
	l := eventloop.New(eventloop.Options{})
	rec := &apiRecorder{}
	l.Probes().Attach(rec)
	main := vm.NewFunc("main", func([]vm.Value) vm.Value {
		e := New(l, "e", loc.Here())
		h := vm.NewFunc("h", func([]vm.Value) vm.Value { return vm.Undefined })
		e.On(loc.Here(), "x", h)
		e.Emit(loc.Here(), "x")
		e.RemoveListener(loc.Here(), "x", h)
		ghost := vm.NewFunc("ghost", func([]vm.Value) vm.Value { return vm.Undefined })
		e.RemoveListener(loc.Here(), "x", ghost) // invalid removal: empty Regs
		return vm.Undefined
	})
	if err := l.Run(main); err != nil {
		t.Fatal(err)
	}
	want := []string{APINew, APIOn, APIEmit, APIRemoveListener, APIRemoveListener}
	if len(rec.events) != len(want) {
		t.Fatalf("events = %v", rec.names())
	}
	for i, name := range want {
		if rec.events[i].API != name {
			t.Fatalf("events = %v, want %v", rec.names(), want)
		}
	}
	if len(rec.events[3].Regs) != 1 {
		t.Error("valid removal should carry the removed registration")
	}
	if len(rec.events[4].Regs) != 0 {
		t.Error("invalid removal must carry no registration")
	}
	if rec.events[2].TriggerSeq == 0 {
		t.Error("emit should carry a trigger sequence")
	}
}

func TestListenerDispatchCarriesEmitterContext(t *testing.T) {
	l := eventloop.New(eventloop.Options{})
	var dispatch *vm.Dispatch
	hook := &dispatchRecorder{want: "h", out: &dispatch}
	l.Probes().Attach(hook)
	var emitterID uint64
	main := vm.NewFunc("main", func([]vm.Value) vm.Value {
		e := New(l, "e", loc.Here())
		emitterID = e.ID()
		e.On(loc.Here(), "x", vm.NewFunc("h", func([]vm.Value) vm.Value { return vm.Undefined }))
		e.Emit(loc.Here(), "x")
		return vm.Undefined
	})
	if err := l.Run(main); err != nil {
		t.Fatal(err)
	}
	if dispatch == nil {
		t.Fatal("listener dispatch not observed")
	}
	if dispatch.Obj.ID != emitterID || dispatch.Obj.Kind != vm.ObjEmitter {
		t.Errorf("dispatch.Obj = %+v", dispatch.Obj)
	}
	if dispatch.Event != "x" || dispatch.TriggerSeq == 0 {
		t.Errorf("dispatch = %+v", dispatch)
	}
}

type apiRecorder struct{ events []vm.APIEvent }

func (r *apiRecorder) FunctionEnter(*vm.Function, *vm.CallInfo)        {}
func (r *apiRecorder) FunctionExit(*vm.Function, vm.Value, *vm.Thrown) {}

// APICall deep-copies the event: payloads are scratch owned by the
// emitting API and are recycled after the hook returns.
func (r *apiRecorder) APICall(ev *vm.APIEvent) {
	cp := *ev
	cp.Regs = append([]vm.Registration(nil), ev.Regs...)
	cp.Args = append([]vm.Value(nil), ev.Args...)
	cp.Related = append([]vm.ObjRef(nil), ev.Related...)
	r.events = append(r.events, cp)
}

func (r *apiRecorder) names() []string {
	out := make([]string, len(r.events))
	for i, ev := range r.events {
		out[i] = ev.API
	}
	return out
}

type dispatchRecorder struct {
	want string
	out  **vm.Dispatch
}

func (r *dispatchRecorder) FunctionEnter(fn *vm.Function, info *vm.CallInfo) {
	if fn.Name == r.want && info.Dispatch != nil {
		cp := *info.Dispatch // copy: pooled dispatches are recycled after the call
		*r.out = &cp
	}
}
func (r *dispatchRecorder) FunctionExit(*vm.Function, vm.Value, *vm.Thrown) {}
func (r *dispatchRecorder) APICall(*vm.APIEvent)                            {}

func TestPrependOnceListener(t *testing.T) {
	var trace []string
	run(t, func(l *eventloop.Loop) {
		e := New(l, "e", loc.Here())
		e.On(loc.Here(), "x", logFn(&trace, "steady"))
		e.PrependOnceListener(loc.Here(), "x", logFn(&trace, "front-once"))
		e.Emit(loc.Here(), "x")
		e.Emit(loc.Here(), "x")
	})
	want := []string{"front-once", "steady", "steady"}
	if len(trace) != len(want) {
		t.Fatalf("trace = %v", trace)
	}
	for i := range want {
		if trace[i] != want[i] {
			t.Fatalf("trace = %v, want %v", trace, want)
		}
	}
}

func TestOffAliasRemoves(t *testing.T) {
	var trace []string
	run(t, func(l *eventloop.Loop) {
		e := New(l, "e", loc.Here())
		h := logFn(&trace, "h")
		e.On(loc.Here(), "x", h)
		e.Off(loc.Here(), "x", h)
		e.Emit(loc.Here(), "x")
	})
	if len(trace) != 0 {
		t.Fatalf("trace = %v", trace)
	}
}

func TestZonePropagatesToDispatches(t *testing.T) {
	l := eventloop.New(eventloop.Options{})
	var zone string
	hook := &zoneRecorder{out: &zone}
	l.Probes().Attach(hook)
	main := vm.NewFunc("main", func([]vm.Value) vm.Value {
		e := New(l, "e", loc.Here())
		e.SetZone("client")
		if e.Zone() != "client" {
			t.Error("zone not stored")
		}
		e.On(loc.Here(), "x", vm.NewFunc("h", func([]vm.Value) vm.Value { return vm.Undefined }))
		e.Emit(loc.Here(), "x")
		return vm.Undefined
	})
	if err := l.Run(main); err != nil {
		t.Fatal(err)
	}
	if zone != "client" {
		t.Fatalf("dispatch zone = %q", zone)
	}
}

type zoneRecorder struct{ out *string }

func (z *zoneRecorder) FunctionEnter(fn *vm.Function, info *vm.CallInfo) {
	if fn.Name == "h" && info.Dispatch != nil {
		*z.out = info.Dispatch.Zone
	}
}
func (z *zoneRecorder) FunctionExit(*vm.Function, vm.Value, *vm.Thrown) {}
func (z *zoneRecorder) APICall(*vm.APIEvent)                            {}
