// Package events implements the Node.js EventEmitter API on the
// simulated event loop. Emitters are one of the paper's two "managed
// asynchrony" APIs (with promises): listeners are registered on named
// events and invoked synchronously when the event is emitted, and every
// registration, removal and emission is announced through probe events so
// the Async Graph can model them (OB nodes for emitter creation, CR nodes
// for listener registration, CT nodes for emissions).
package events

import (
	"fmt"
	"sync"

	"asyncg/internal/eventloop"
	"asyncg/internal/loc"
	"asyncg/internal/vm"
)

// API names announced through probe events.
const (
	APINew                = "new EventEmitter"
	APIOn                 = "emitter.on"
	APIOnce               = "emitter.once"
	APIPrepend            = "emitter.prependListener"
	APIPrependOnce        = "emitter.prependOnceListener"
	APIEmit               = "emitter.emit"
	APIRemoveListener     = "emitter.removeListener"
	APIRemoveAllListeners = "emitter.removeAllListeners"
)

// PhaseAny is the Registration.Phase for emitter listeners: they execute
// synchronously under whatever tick the emit happens in, so the context
// validator must not constrain the tick type.
const PhaseAny = "any"

// Meta events Node emits about listener management.
const (
	EventNewListener    = "newListener"
	EventRemoveListener = "removeListener"
	EventError          = "error"
)

// DefaultMaxListeners mirrors Node's default leak-warning threshold.
const DefaultMaxListeners = 10

// listener is one registered callback.
type listener struct {
	fn     *vm.Function
	once   bool
	regSeq uint64
	api    string
}

// Emitter is a simulated Node.js EventEmitter.
type Emitter struct {
	loop         *eventloop.Loop
	id           uint64
	name         string
	zone         string
	listeners    map[string][]*listener
	maxListeners int
	warned       map[string]bool

	// lisFree recycles listener records. Entries are recycled only at
	// Reinit — never during dispatch — so an in-flight Emit snapshot can
	// never alias a reused record.
	lisFree []*listener
	// snapScratch backs the per-emission listener snapshot; snapBusy
	// guards it against nested emits, which fall back to allocating.
	snapScratch []*listener
	snapBusy    bool
}

// boxedNames interns emitter names in probe-argument (boxed) form.
// Substrate pools Reinit emitters under a small rotating set of cached
// names ("sock#3", ...), and boxing the string into a Value on every
// creation announcement was the single largest steady-state allocation
// of schedule exploration. The cache is bounded by the set of distinct
// names, which the substrate's own name caches already bound.
var boxedNames sync.Map // string → Value holding that same string

func boxedName(name string) vm.Value {
	if v, ok := boxedNames.Load(name); ok {
		return v
	}
	v, _ := boxedNames.LoadOrStore(name, vm.Value(name))
	return v
}

// New creates an emitter bound to the loop. name is a diagnostic label
// ("E1", "server", ...); at is the creation site recorded as the Async
// Graph's Object Binding node.
func New(l *eventloop.Loop, name string, at loc.Loc) *Emitter {
	e := &Emitter{
		loop:      l,
		listeners: make(map[string][]*listener),
		warned:    make(map[string]bool),
	}
	e.init(name, at)
	return e
}

// init assigns a fresh object identity and announces the creation event
// — the shared tail of New and Reinit.
func (e *Emitter) init(name string, at loc.Loc) {
	e.id = e.loop.NextObjID()
	e.name = name
	e.maxListeners = DefaultMaxListeners
	ev := e.loop.BorrowAPIEvent()
	ev.API = APINew
	ev.Loc = at
	ev.Receiver = e.Ref()
	ev.SetOneArg(boxedName(name))
	e.loop.EmitAPIEvent(ev)
	e.loop.ReturnAPIEvent(ev)
}

// Reinit returns a pooled emitter to its newly-constructed state under a
// fresh object identity, announcing the creation event exactly as New
// does — a Reinit-ed emitter is observationally identical to a fresh
// one, which is what keeps pooled substrate objects (sockets, servers)
// byte-compatible with cold-start runs. Listener records return to the
// emitter's free list; the zone tag is cleared.
func (e *Emitter) Reinit(name string, at loc.Loc) {
	for event, list := range e.listeners {
		for i, entry := range list {
			*entry = listener{}
			e.lisFree = append(e.lisFree, entry)
			list[i] = nil
		}
		e.listeners[event] = list[:0]
	}
	clear(e.warned)
	scratch := e.snapScratch[:cap(e.snapScratch)]
	for i := range scratch {
		scratch[i] = nil
	}
	e.snapScratch = scratch[:0]
	e.zone = ""
	e.init(name, at)
}

// borrowListener returns a cleared listener record from the free list.
func (e *Emitter) borrowListener() *listener {
	if n := len(e.lisFree); n > 0 {
		entry := e.lisFree[n-1]
		e.lisFree = e.lisFree[:n-1]
		return entry
	}
	return &listener{}
}

// Ref returns the probe-protocol reference for this emitter.
func (e *Emitter) Ref() vm.ObjRef { return vm.ObjRef{ID: e.id, Kind: vm.ObjEmitter} }

// ID returns the emitter's runtime-object identity.
func (e *Emitter) ID() uint64 { return e.id }

// Name returns the diagnostic label.
func (e *Emitter) Name() string { return e.name }

// String renders the emitter as "EventEmitter(name#id)".
func (e *Emitter) String() string { return fmt.Sprintf("EventEmitter(%s#%d)", e.name, e.id) }

// SetMaxListeners adjusts the leak-warning threshold; 0 disables it.
func (e *Emitter) SetMaxListeners(n int) { e.maxListeners = n }

// SetZone tags the simulated process this emitter belongs to ("client"
// for workload-driver objects); listener dispatches repeat the tag so
// measurement hooks can scope themselves to the server side.
func (e *Emitter) SetZone(zone string) { e.zone = zone }

// Zone returns the emitter's process tag.
func (e *Emitter) Zone() string { return e.zone }

// On registers fn for event and returns the emitter for chaining.
func (e *Emitter) On(at loc.Loc, event string, fn *vm.Function) *Emitter {
	return e.add(at, APIOn, event, fn, false, false)
}

// OnWithAPI registers fn for event under a caller-supplied API name in
// probe events. Library wrappers (http.createServer and friends) use it
// so the Async Graph attributes the registration to the user-facing API
// rather than to a generic emitter.on — matching how AsyncG's templates
// recognize Node's internal emitter uses.
func (e *Emitter) OnWithAPI(at loc.Loc, api, event string, fn *vm.Function) *Emitter {
	return e.add(at, api, event, fn, false, false)
}

// Once registers fn to fire at most once.
func (e *Emitter) Once(at loc.Loc, event string, fn *vm.Function) *Emitter {
	return e.add(at, APIOnce, event, fn, true, false)
}

// PrependListener registers fn at the front of the listener list.
func (e *Emitter) PrependListener(at loc.Loc, event string, fn *vm.Function) *Emitter {
	return e.add(at, APIPrepend, event, fn, false, true)
}

// PrependOnceListener registers a front-of-list once listener.
func (e *Emitter) PrependOnceListener(at loc.Loc, event string, fn *vm.Function) *Emitter {
	return e.add(at, APIPrependOnce, event, fn, true, true)
}

func (e *Emitter) add(at loc.Loc, api, event string, fn *vm.Function, once, front bool) *Emitter {
	// Node emits "newListener" before the listener is added, so the
	// new listener does not observe its own registration.
	if len(e.listeners[EventNewListener]) > 0 && event != EventNewListener {
		e.Emit(loc.Internal, EventNewListener, event, fn)
	}
	seq := e.loop.NextRegSeq()
	ev := e.loop.BorrowAPIEvent()
	ev.API = api
	ev.Loc = at
	ev.Receiver = e.Ref()
	ev.Event = event
	ev.SetOneReg(vm.Registration{Seq: seq, Callback: fn, Phase: PhaseAny, Once: once, Role: "listener"})
	e.loop.EmitAPIEvent(ev)
	e.loop.ReturnAPIEvent(ev)
	entry := e.borrowListener()
	entry.fn, entry.once, entry.regSeq, entry.api = fn, once, seq, api
	if front {
		list := append(e.listeners[event], nil)
		copy(list[1:], list)
		list[0] = entry
		e.listeners[event] = list
	} else {
		e.listeners[event] = append(e.listeners[event], entry)
	}
	if e.maxListeners > 0 && len(e.listeners[event]) > e.maxListeners && !e.warned[event] {
		e.warned[event] = true
	}
	return e
}

// MaxListenersExceeded reports whether the leak threshold was crossed for
// the event.
func (e *Emitter) MaxListenersExceeded(event string) bool { return e.warned[event] }

// Emit synchronously invokes the listeners registered for event, in
// order, passing args. It returns true if the event had listeners.
//
// Exceptions thrown by a listener propagate out of Emit (remaining
// listeners are not called), and an "error" event with no listeners
// throws its first argument — both as in Node.
func (e *Emitter) Emit(at loc.Loc, event string, args ...vm.Value) bool {
	trig := e.loop.NextTrigSeq()
	snapshot := e.listeners[event]
	ev := e.loop.BorrowAPIEvent()
	ev.API = APIEmit
	ev.Loc = at
	ev.Receiver = e.Ref()
	ev.Event = event
	ev.TriggerSeq = trig
	ev.Args = args
	e.loop.EmitAPIEvent(ev)
	e.loop.ReturnAPIEvent(ev)
	if len(snapshot) == 0 {
		if event == EventError {
			val := vm.Arg(args, 0)
			vm.ThrowAt(fmt.Sprintf("unhandled 'error' event: %s", vm.ToString(val)), at)
		}
		return false
	}
	// Work over a copy: Node snapshots the listener list at emit time,
	// so listeners added during dispatch do not run for this emission.
	// The outermost emission borrows the emitter's scratch snapshot;
	// nested emits on the same emitter (meta-events, listener-driven
	// emits) fall back to allocating.
	var copied []*listener
	if !e.snapBusy {
		e.snapBusy = true
		defer func() { e.snapBusy = false }()
		copied = append(e.snapScratch[:0], snapshot...)
		e.snapScratch = copied[:0]
	} else {
		copied = make([]*listener, len(snapshot))
		copy(copied, snapshot)
	}
	if at != loc.Internal {
		// Opt-in exploration point: ChoiceListenerOrder is stricter than
		// Node's registration-order contract, so schedulers leave it
		// alone unless explicitly asked (see eventloop.ChoiceKind).
		e.loop.Permute(eventloop.ChoiceListenerOrder, len(copied), func(i, j int) {
			copied[i], copied[j] = copied[j], copied[i]
		})
	}
	for _, entry := range copied {
		if entry.once {
			if !e.removeEntry(event, entry) {
				continue // already removed by an earlier listener
			}
			e.emitRemoveListenerMeta(event, entry.fn)
		} else if !e.contains(event, entry) {
			continue // removed during this emission
		}
		d := e.loop.NewDispatch()
		d.API = entry.api
		d.RegSeq = entry.regSeq
		d.Obj = e.Ref()
		d.Event = event
		d.TriggerSeq = trig
		d.Zone = e.zone
		_, thrown := e.loop.Invoke(entry.fn, args, d)
		e.loop.RecycleDispatch(d)
		if thrown != nil {
			panic(thrown) // propagate synchronously out of Emit
		}
	}
	return true
}

// RemoveListener removes the most recently added registration of fn for
// event. Removing a function that is not registered is a silent no-op in
// Node — and the "Invalid Listener Removal" bug the paper detects.
func (e *Emitter) RemoveListener(at loc.Loc, event string, fn *vm.Function) *Emitter {
	var removed *listener
	list := e.listeners[event]
	for i := len(list) - 1; i >= 0; i-- {
		if list[i].fn == fn {
			removed = list[i]
			e.listeners[event] = append(list[:i:i], list[i+1:]...)
			break
		}
	}
	ev := e.loop.BorrowAPIEvent()
	ev.API = APIRemoveListener
	ev.Loc = at
	ev.Receiver = e.Ref()
	ev.Event = event
	ev.SetOneArg(fn)
	if removed != nil {
		// Regs identifies the registration that was removed, so tools
		// can retire the pending CR; an empty Regs marks an invalid
		// removal.
		ev.SetOneReg(vm.Registration{Seq: removed.regSeq, Callback: fn, Phase: PhaseAny, Once: removed.once, Role: "listener"})
	}
	e.loop.EmitAPIEvent(ev)
	e.loop.ReturnAPIEvent(ev)
	if removed != nil {
		e.emitRemoveListenerMeta(event, fn)
	}
	return e
}

// Off is Node's alias for RemoveListener.
func (e *Emitter) Off(at loc.Loc, event string, fn *vm.Function) *Emitter {
	return e.RemoveListener(at, event, fn)
}

// RemoveAllListeners removes every listener for event, or for all events
// when event is "".
func (e *Emitter) RemoveAllListeners(at loc.Loc, event string) *Emitter {
	var regs []vm.Registration
	collect := func(name string) {
		for _, entry := range e.listeners[name] {
			regs = append(regs, vm.Registration{Seq: entry.regSeq, Callback: entry.fn, Phase: PhaseAny, Once: entry.once, Role: "listener"})
		}
	}
	if event == "" {
		for name := range e.listeners {
			collect(name)
		}
		clear(e.listeners)
	} else {
		collect(event)
		delete(e.listeners, event)
	}
	ev := e.loop.BorrowAPIEvent()
	ev.API = APIRemoveAllListeners
	ev.Loc = at
	ev.Receiver = e.Ref()
	ev.Event = event
	ev.Regs = regs
	e.loop.EmitAPIEvent(ev)
	e.loop.ReturnAPIEvent(ev)
	return e
}

// ListenerCount returns the number of listeners registered for event.
func (e *Emitter) ListenerCount(event string) int { return len(e.listeners[event]) }

// Listeners returns the functions registered for event, in call order.
func (e *Emitter) Listeners(event string) []*vm.Function {
	list := e.listeners[event]
	fns := make([]*vm.Function, len(list))
	for i, entry := range list {
		fns[i] = entry.fn
	}
	return fns
}

// EventNames returns the events that currently have listeners.
func (e *Emitter) EventNames() []string {
	names := make([]string, 0, len(e.listeners))
	for name, list := range e.listeners {
		if len(list) > 0 {
			names = append(names, name)
		}
	}
	return names
}

func (e *Emitter) contains(event string, entry *listener) bool {
	for _, l := range e.listeners[event] {
		if l == entry {
			return true
		}
	}
	return false
}

func (e *Emitter) removeEntry(event string, entry *listener) bool {
	list := e.listeners[event]
	for i, l := range list {
		if l == entry {
			e.listeners[event] = append(list[:i:i], list[i+1:]...)
			return true
		}
	}
	return false
}

func (e *Emitter) emitRemoveListenerMeta(event string, fn *vm.Function) {
	if len(e.listeners[EventRemoveListener]) > 0 && event != EventRemoveListener {
		e.Emit(loc.Internal, EventRemoveListener, event, fn)
	}
}
