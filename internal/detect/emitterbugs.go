package detect

import (
	"fmt"

	"asyncg/internal/asyncgraph"
	"asyncg/internal/events"
	"asyncg/internal/vm"
)

// emListener is the analyzer's mirror of one registered listener.
type emListener struct {
	fn     *vm.Function
	regSeq uint64
	once   bool
}

// emState mirrors one emitter's listener table, maintained purely from
// probe events (the analyzer never peeks at the runtime's own state —
// it observes the program the way AsyncG does).
type emState struct {
	name      string
	listeners map[string][]emListener
}

func (a *Analyzer) emitter(id uint64) *emState {
	st, ok := a.emitters[id]
	if !ok {
		if n := len(a.emFree); n > 0 {
			st = a.emFree[n-1]
			a.emFree = a.emFree[:n-1]
		} else {
			st = &emState{listeners: make(map[string][]emListener)}
		}
		a.emitters[id] = st
	}
	return st
}

// emitterAPICall processes emitter-related API events.
func (a *Analyzer) emitterAPICall(ev *vm.APIEvent) {
	switch ev.API {
	case events.APINew:
		st := a.emitter(ev.Receiver.ID)
		if len(ev.Args) > 0 {
			if s, ok := ev.Args[0].(string); ok {
				st.name = s
			}
		}

	default:
		// Listener registration, identified by role so that wrapper
		// APIs (http.createServer registering on 'request') are
		// covered exactly like plain emitter.on.
		if ev.Receiver.Kind != vm.ObjEmitter || len(ev.Regs) == 0 || ev.Regs[0].Role != "listener" {
			return
		}
		st := a.emitter(ev.Receiver.ID)
		for _, reg := range ev.Regs {
			// §VI-A.2(d): the same function registered twice for the
			// same event on the same emitter.
			for _, existing := range st.listeners[ev.Event] {
				if existing.fn == reg.Callback {
					a.g.AddWarning(a.lastCRNode(ev), CatDuplicateListener,
						fmt.Sprintf("function %q is already registered as a listener for event %q on this emitter",
							reg.Callback.Name, ev.Event),
						ev.Loc)
					break
				}
			}
			// §VI-A.2(e): listener added during execution of another
			// listener of the same emitter — it is lost if the outer
			// listener never runs.
			if a.insideListenerOf(ev.Receiver.ID) && !ev.Loc.IsInternal() {
				a.g.AddWarning(a.lastCRNode(ev), CatListenerInListener,
					fmt.Sprintf("listener for %q added during the execution of another listener of the same emitter: it is never registered if the outer listener does not run",
						ev.Event),
					ev.Loc)
			}
			st.listeners[ev.Event] = append(st.listeners[ev.Event],
				emListener{fn: reg.Callback, regSeq: reg.Seq, once: reg.Once})
		}

	case events.APIEmit:
		if ev.Loc.IsInternal() {
			return // runtime meta-events (newListener etc.)
		}
		st := a.emitter(ev.Receiver.ID)
		// §VI-A.2(b): an event emitted with no registered listener.
		if len(st.listeners[ev.Event]) == 0 {
			a.g.AddWarning(a.b.NodeByTrigSeq(ev.TriggerSeq), CatDeadEmit,
				a.internMsg("event ", ev.Event, " emitted with no listener registered: the emission is lost"),
				ev.Loc)
		}

	case events.APIRemoveListener:
		// §VI-A.2(c): removing a function that is not registered —
		// typically a different closure that merely looks the same.
		if len(ev.Regs) == 0 {
			name := "?"
			if len(ev.Args) > 0 {
				if fn, ok := ev.Args[0].(*vm.Function); ok {
					name = fn.Name
				}
			}
			a.g.AddWarning(asyncgraph.NoNode, CatInvalidRemoval,
				a.internRemovalMsg(ev.Event, name),
				ev.Loc)
			return
		}
		st := a.emitter(ev.Receiver.ID)
		for _, reg := range ev.Regs {
			st.remove(ev.Event, reg.Seq)
		}

	case events.APIRemoveAllListeners:
		st := a.emitter(ev.Receiver.ID)
		if ev.Event == "" {
			st.listeners = make(map[string][]emListener)
		} else {
			delete(st.listeners, ev.Event)
		}
	}
}

// emitterExecution retires once-listeners from the mirror when they run.
func (a *Analyzer) emitterExecution(d *vm.Dispatch) {
	if d.Obj.Kind != vm.ObjEmitter {
		return
	}
	st, ok := a.emitters[d.Obj.ID]
	if !ok {
		return
	}
	for _, l := range st.listeners[d.Event] {
		if l.regSeq == d.RegSeq && l.once {
			st.remove(d.Event, d.RegSeq)
			return
		}
	}
}

func (st *emState) remove(event string, regSeq uint64) {
	list := st.listeners[event]
	for i, l := range list {
		if l.regSeq == regSeq {
			st.listeners[event] = append(list[:i:i], list[i+1:]...)
			return
		}
	}
}

// finishEmitters runs the post-hoc emitter analyses: §VI-A.2(a) dead
// listeners — registrations whose callback never executed (and was never
// deliberately removed).
func (a *Analyzer) finishEmitters() {
	// Iterate g.Nodes directly (it is creation order, the same order
	// NodesOfKind returns) instead of materializing a filtered slice
	// on every run of a reused analyzer.
	for _, n := range a.g.Nodes {
		if n.Kind != asyncgraph.CR || n.Obj.Kind != vm.ObjEmitter {
			continue
		}
		if n.Event == events.EventError {
			// Defensive 'error' handlers are supposed to stay silent
			// on healthy runs; never-executed is the good case.
			continue
		}
		if n.Executions == 0 && !n.Removed && !n.Loc.IsInternal() {
			a.g.AddWarning(n.ID, CatDeadListener,
				a.internMsg("listener for event ", n.Event, " was registered but never executed: the emitter never emits this event"),
				n.Loc)
		}
	}
}
