package detect

import (
	"strings"
	"testing"
	"time"

	"asyncg/internal/asyncgraph"
	"asyncg/internal/eventloop"
	"asyncg/internal/events"
	"asyncg/internal/loc"
	"asyncg/internal/promise"
	"asyncg/internal/state"
	"asyncg/internal/vm"
)

// analyze runs program with builder + analyzer attached and returns the
// finished analyzer. Loop errors other than the tick limit fail the test.
func analyze(t *testing.T, program func(l *eventloop.Loop)) *Analyzer {
	t.Helper()
	l := eventloop.New(eventloop.Options{TickLimit: 200})
	b := asyncgraph.NewBuilder(asyncgraph.DefaultConfig())
	a := NewAnalyzer(b, DefaultConfig())
	l.Probes().Attach(b)
	l.Probes().Attach(a)
	main := vm.NewFunc("main", func([]vm.Value) vm.Value {
		program(l)
		return vm.Undefined
	})
	if err := l.Run(main); err != nil && err != eventloop.ErrTickLimit {
		t.Fatal(err)
	}
	if anomalies := b.Anomalies(); len(anomalies) != 0 {
		t.Fatalf("builder anomalies: %v", anomalies)
	}
	a.Finish()
	return a
}

func wantWarning(t *testing.T, a *Analyzer, category Category) asyncgraph.Warning {
	t.Helper()
	ws := a.WarningsOf(category)
	if len(ws) == 0 {
		t.Fatalf("no %q warning; got %v", category, a.Warnings())
	}
	return ws[0]
}

func wantNoWarning(t *testing.T, a *Analyzer, category Category) {
	t.Helper()
	if ws := a.WarningsOf(category); len(ws) != 0 {
		t.Fatalf("unexpected %q warnings: %v", category, ws)
	}
}

func noop(name string) *vm.Function {
	return vm.NewFunc(name, func([]vm.Value) vm.Value { return vm.Undefined })
}

// --- Scheduling bugs (§VI-A.1) ---

func TestRecursiveNextTickWarning(t *testing.T) {
	a := analyze(t, func(l *eventloop.Loop) {
		var compute *vm.Function
		compute = vm.NewFunc("compute", func([]vm.Value) vm.Value {
			l.NextTick(loc.Here(), compute)
			return vm.Undefined
		})
		l.NextTick(loc.Here(), compute)
	})
	w := wantWarning(t, a, CatRecursiveMicrotask)
	if w.Node == asyncgraph.NoNode {
		t.Error("warning not anchored to a CR node")
	}
}

func TestNonRecursiveNextTickHasNoWarning(t *testing.T) {
	a := analyze(t, func(l *eventloop.Loop) {
		l.NextTick(loc.Here(), vm.NewFunc("once", func([]vm.Value) vm.Value {
			l.NextTick(loc.Here(), noop("other"))
			return vm.Undefined
		}))
	})
	wantNoWarning(t, a, CatRecursiveMicrotask)
}

func TestRecursiveSetImmediateIsFine(t *testing.T) {
	// The Fig. 1 fix must not warn.
	a := analyze(t, func(l *eventloop.Loop) {
		count := 0
		var compute *vm.Function
		compute = vm.NewFunc("compute", func([]vm.Value) vm.Value {
			count++
			if count < 10 {
				l.SetImmediate(loc.Here(), compute)
			}
			return vm.Undefined
		})
		l.SetImmediate(loc.Here(), compute)
	})
	wantNoWarning(t, a, CatRecursiveMicrotask)
	wantNoWarning(t, a, CatMicroStarvation)
}

func TestMicroStarvationWarning(t *testing.T) {
	l := eventloop.New(eventloop.Options{TickLimit: 100})
	b := asyncgraph.NewBuilder(asyncgraph.DefaultConfig())
	cfg := DefaultConfig()
	cfg.MicroStarvationThreshold = 20
	a := NewAnalyzer(b, cfg)
	l.Probes().Attach(b)
	l.Probes().Attach(a)
	// A two-callback cycle: per-callback self-reschedule detection does
	// not fire, but the starvation counter does.
	main := vm.NewFunc("main", func([]vm.Value) vm.Value {
		var ping, pong *vm.Function
		ping = vm.NewFunc("ping", func([]vm.Value) vm.Value {
			l.NextTick(loc.Here(), pong)
			return vm.Undefined
		})
		pong = vm.NewFunc("pong", func([]vm.Value) vm.Value {
			l.NextTick(loc.Here(), ping)
			return vm.Undefined
		})
		l.NextTick(loc.Here(), ping)
		return vm.Undefined
	})
	if err := l.Run(main); err != eventloop.ErrTickLimit {
		t.Fatal(err)
	}
	a.Finish()
	if len(a.WarningsOf(CatMicroStarvation)) == 0 {
		t.Fatalf("no starvation warning: %v", a.Warnings())
	}
}

func TestMixingSimilarAPIsWarning(t *testing.T) {
	// The §III motivating snippet: then on a resolved promise, then
	// setTimeout(0), then nextTick — registration order inverts
	// execution order twice.
	a := analyze(t, func(l *eventloop.Loop) {
		promise.Resolved(l, loc.Here(), vm.Undefined).Then(loc.Here(), noop("L2"), nil)
		l.SetTimeout(loc.Here(), noop("L5"), 0)
		l.NextTick(loc.Here(), noop("L8"))
	})
	wantWarning(t, a, CatMixedAPIs)
}

func TestMixingInRegistrationOrderIsFine(t *testing.T) {
	// nextTick before setImmediate before setTimeout: registration
	// order equals execution order; no warning.
	a := analyze(t, func(l *eventloop.Loop) {
		l.NextTick(loc.Here(), noop("a"))
		l.SetImmediate(loc.Here(), noop("b"))
		l.SetTimeout(loc.Here(), noop("c"), 0)
	})
	wantNoWarning(t, a, CatMixedAPIs)
}

func TestMixingAcrossTicksIsFine(t *testing.T) {
	a := analyze(t, func(l *eventloop.Loop) {
		l.SetTimeout(loc.Here(), vm.NewFunc("t1", func([]vm.Value) vm.Value {
			l.NextTick(loc.Here(), noop("tick"))
			return vm.Undefined
		}), time.Millisecond)
		l.SetTimeout(loc.Here(), vm.NewFunc("t2", func([]vm.Value) vm.Value {
			l.SetImmediate(loc.Here(), noop("imm"))
			return vm.Undefined
		}), 2*time.Millisecond)
	})
	wantNoWarning(t, a, CatMixedAPIs)
}

func TestUnexpectedTimeoutOrderWarning(t *testing.T) {
	// §VI-A.1(c): setTimeout(foo, 101); heavy work; setTimeout(bar,
	// 100). foo (larger timeout) fires first.
	a := analyze(t, func(l *eventloop.Loop) {
		l.SetTimeout(loc.Here(), noop("foo"), 101*time.Millisecond)
		l.Work(5 * time.Millisecond)
		l.SetTimeout(loc.Here(), noop("bar"), 100*time.Millisecond)
	})
	wantWarning(t, a, CatTimeoutOrder)
}

func TestTimeoutOrderRespectedIsFine(t *testing.T) {
	a := analyze(t, func(l *eventloop.Loop) {
		l.SetTimeout(loc.Here(), noop("first"), 50*time.Millisecond)
		l.SetTimeout(loc.Here(), noop("second"), 100*time.Millisecond)
	})
	wantNoWarning(t, a, CatTimeoutOrder)
}

// --- Emitter bugs (§VI-A.2) ---

func TestDeadListenerWarning(t *testing.T) {
	a := analyze(t, func(l *eventloop.Loop) {
		e := events.New(l, "e", loc.Here())
		e.On(loc.Here(), "never", noop("listener"))
		e.Emit(loc.Here(), "other")
	})
	w := wantWarning(t, a, CatDeadListener)
	if w.Node == asyncgraph.NoNode {
		t.Error("dead listener warning not anchored")
	}
}

func TestExecutedListenerIsNotDead(t *testing.T) {
	a := analyze(t, func(l *eventloop.Loop) {
		e := events.New(l, "e", loc.Here())
		e.On(loc.Here(), "x", noop("listener"))
		e.Emit(loc.Here(), "x")
	})
	wantNoWarning(t, a, CatDeadListener)
}

func TestRemovedListenerIsNotDead(t *testing.T) {
	a := analyze(t, func(l *eventloop.Loop) {
		e := events.New(l, "e", loc.Here())
		h := noop("listener")
		e.On(loc.Here(), "x", h)
		e.RemoveListener(loc.Here(), "x", h)
	})
	wantNoWarning(t, a, CatDeadListener)
}

func TestDeadEmitWarning(t *testing.T) {
	a := analyze(t, func(l *eventloop.Loop) {
		e := events.New(l, "e", loc.Here())
		e.Emit(loc.Here(), "ghost")
	})
	wantWarning(t, a, CatDeadEmit)
}

func TestEmitBeforeListenerRegistrationIsDead(t *testing.T) {
	// The Fig. 4 bug: emit in the main tick, listener registered in the
	// promise reaction of the following tick.
	a := analyze(t, func(l *eventloop.Loop) {
		e := events.New(l, "ee", loc.Here())
		p := promise.New(l, loc.Here(), vm.NewFunc("exec", func(args []vm.Value) vm.Value {
			args[0].(*promise.Promise).Resolve(loc.Here(), 0)
			return vm.Undefined
		}))
		p.Then(loc.Here(), vm.NewFunc("reaction", func(args []vm.Value) vm.Value {
			e.On(loc.Here(), "foo", noop("listener"))
			return vm.Undefined
		}), nil)
		e.Emit(loc.Here(), "foo") // dead: the listener is not yet there
	})
	wantWarning(t, a, CatDeadEmit)
	wantWarning(t, a, CatDeadListener)
}

func TestFixedEmitViaSetImmediateIsClean(t *testing.T) {
	// The Fig. 4 fix: defer the emit past the promise micro-task.
	a := analyze(t, func(l *eventloop.Loop) {
		e := events.New(l, "ee", loc.Here())
		p := promise.New(l, loc.Here(), vm.NewFunc("exec", func(args []vm.Value) vm.Value {
			args[0].(*promise.Promise).Resolve(loc.Here(), 0)
			return vm.Undefined
		}))
		p.Then(loc.Here(), vm.NewFunc("reaction", func(args []vm.Value) vm.Value {
			e.On(loc.Here(), "foo", noop("listener"))
			return vm.Undefined
		}), nil).Catch(loc.Here(), noop("handler"))
		l.SetImmediate(loc.Here(), vm.NewFunc("deferred", func([]vm.Value) vm.Value {
			e.Emit(loc.Here(), "foo")
			return vm.Undefined
		}))
	})
	wantNoWarning(t, a, CatDeadEmit)
	wantNoWarning(t, a, CatDeadListener)
	wantNoWarning(t, a, CatMissingRejectHandler)
}

func TestInvalidListenerRemovalWarning(t *testing.T) {
	// SO-10444077: removing a fresh closure that merely looks like the
	// registered one.
	a := analyze(t, func(l *eventloop.Loop) {
		e := events.New(l, "e", loc.Here())
		e.On(loc.Here(), "x", noop("listener"))
		e.RemoveListener(loc.Here(), "x", noop("listener")) // different identity
		e.Emit(loc.Here(), "x")
	})
	wantWarning(t, a, CatInvalidRemoval)
}

func TestValidRemovalHasNoWarning(t *testing.T) {
	a := analyze(t, func(l *eventloop.Loop) {
		e := events.New(l, "e", loc.Here())
		h := noop("listener")
		e.On(loc.Here(), "x", h)
		e.RemoveListener(loc.Here(), "x", h)
	})
	wantNoWarning(t, a, CatInvalidRemoval)
}

func TestDuplicateListenerWarning(t *testing.T) {
	a := analyze(t, func(l *eventloop.Loop) {
		e := events.New(l, "e", loc.Here())
		h := noop("listener")
		e.On(loc.Here(), "x", h)
		e.On(loc.Here(), "x", h)
		e.Emit(loc.Here(), "x")
	})
	wantWarning(t, a, CatDuplicateListener)
}

func TestSameListenerDifferentEventsIsFine(t *testing.T) {
	a := analyze(t, func(l *eventloop.Loop) {
		e := events.New(l, "e", loc.Here())
		h := noop("listener")
		e.On(loc.Here(), "x", h)
		e.On(loc.Here(), "y", h)
		e.Emit(loc.Here(), "x")
		e.Emit(loc.Here(), "y")
	})
	wantNoWarning(t, a, CatDuplicateListener)
}

func TestAddListenerWithinListenerWarning(t *testing.T) {
	// SO-17894000: the 'close' listener is registered inside the 'data'
	// listener; if the connection closes before data arrives it is lost.
	a := analyze(t, func(l *eventloop.Loop) {
		conn := events.New(l, "conn", loc.Here())
		conn.On(loc.Here(), "data", vm.NewFunc("onData", func([]vm.Value) vm.Value {
			conn.On(loc.Here(), "close", noop("onClose"))
			return vm.Undefined
		}))
		conn.Emit(loc.Here(), "data", "chunk")
		conn.Emit(loc.Here(), "close")
	})
	wantWarning(t, a, CatListenerInListener)
}

func TestAddListenerOnOtherEmitterWithinListenerIsFine(t *testing.T) {
	a := analyze(t, func(l *eventloop.Loop) {
		e1 := events.New(l, "e1", loc.Here())
		e2 := events.New(l, "e2", loc.Here())
		e1.On(loc.Here(), "x", vm.NewFunc("h", func([]vm.Value) vm.Value {
			e2.On(loc.Here(), "y", noop("other"))
			return vm.Undefined
		}))
		e1.Emit(loc.Here(), "x")
		e2.Emit(loc.Here(), "y")
	})
	wantNoWarning(t, a, CatListenerInListener)
}

// --- Promise bugs (§VI-A.3) ---

func TestDeadPromiseWarning(t *testing.T) {
	a := analyze(t, func(l *eventloop.Loop) {
		promise.New(l, loc.Here(), nil) // never settled
	})
	wantWarning(t, a, CatDeadPromise)
}

func TestSettledPromiseIsNotDead(t *testing.T) {
	a := analyze(t, func(l *eventloop.Loop) {
		p := promise.New(l, loc.Here(), nil)
		p.Resolve(loc.Here(), 1)
		p.Then(loc.Here(), noop("h"), nil).Catch(loc.Here(), noop("c"))
	})
	wantNoWarning(t, a, CatDeadPromise)
}

func TestDeadPromiseWarnsOnRootOnly(t *testing.T) {
	a := analyze(t, func(l *eventloop.Loop) {
		p := promise.New(l, loc.Here(), nil) // dead root
		p.Then(loc.Here(), noop("h"), nil).Catch(loc.Here(), noop("c"))
	})
	if got := len(a.WarningsOf(CatDeadPromise)); got != 1 {
		t.Fatalf("dead-promise warnings = %d, want 1 (root only): %v", got, a.WarningsOf(CatDeadPromise))
	}
}

func TestMissingReactionWarning(t *testing.T) {
	// GH-vuex-2: a promise is created and settled but nobody reacts.
	a := analyze(t, func(l *eventloop.Loop) {
		p := promise.New(l, loc.Here(), nil)
		p.Resolve(loc.Here(), "ignored")
	})
	wantWarning(t, a, CatMissingReaction)
}

func TestAwaitCountsAsReaction(t *testing.T) {
	// SO-43422932 (fixed version): awaiting the async function's result.
	a := analyze(t, func(l *eventloop.Loop) {
		p := promise.Resolved(l, loc.Here(), 42)
		promise.Go(l, loc.Here(), "af", func(aw *promise.Awaiter) vm.Value {
			return aw.Await(loc.Here(), p)
		}).Then(loc.Here(), noop("use"), noop("err"))
	})
	wantNoWarning(t, a, CatMissingReaction)
}

func TestUnconsumedAsyncResultWarnsMissingReaction(t *testing.T) {
	// SO-43422932: the async function is called without await; the
	// promise it returns is never observed.
	a := analyze(t, func(l *eventloop.Loop) {
		data := promise.Resolved(l, loc.Here(), "json")
		promise.Go(l, loc.Here(), "fetchJSON", func(aw *promise.Awaiter) vm.Value {
			return aw.Await(loc.Here(), data)
		}) // result used "by mistake" as if it were the JSON value
	})
	wantWarning(t, a, CatMissingReaction)
}

func TestCombinatorInputCountsAsReaction(t *testing.T) {
	a := analyze(t, func(l *eventloop.Loop) {
		p1 := promise.Resolved(l, loc.Here(), 1)
		p2 := promise.Resolved(l, loc.Here(), 2)
		promise.All(l, loc.Here(), p1, p2).Then(loc.Here(), noop("h"), nil).Catch(loc.Here(), noop("c"))
	})
	wantNoWarning(t, a, CatMissingReaction)
}

func TestMissingRejectHandlerWarning(t *testing.T) {
	// Fig. 4 line 12: a chain ending on a then without catch.
	a := analyze(t, func(l *eventloop.Loop) {
		promise.Resolved(l, loc.Here(), 0).Then(loc.Here(), noop("h"), nil)
	})
	wantWarning(t, a, CatMissingRejectHandler)
}

func TestCatchTerminatedChainIsClean(t *testing.T) {
	a := analyze(t, func(l *eventloop.Loop) {
		promise.Resolved(l, loc.Here(), 0).
			Then(loc.Here(), noop("h"), nil).
			Catch(loc.Here(), noop("c"))
	})
	wantNoWarning(t, a, CatMissingRejectHandler)
}

func TestThenWithRejectionHandlerTerminatesChain(t *testing.T) {
	a := analyze(t, func(l *eventloop.Loop) {
		promise.Resolved(l, loc.Here(), 0).Then(loc.Here(), noop("h"), noop("r"))
	})
	wantNoWarning(t, a, CatMissingRejectHandler)
}

func TestStructuralDetectionWithoutException(t *testing.T) {
	// "AsyncG ... is able to raise such warnings without the need to
	// have an actual exception thrown": the chain never rejects, yet
	// the missing handler is reported.
	a := analyze(t, func(l *eventloop.Loop) {
		promise.Resolved(l, loc.Here(), "fine").Then(loc.Here(),
			vm.NewFunc("ok", func(args []vm.Value) vm.Value { return args[0] }), nil)
	})
	wantWarning(t, a, CatMissingRejectHandler)
}

func TestMissingReturnWarning(t *testing.T) {
	// SO-50996870 / GH-vuex-2 pattern: a then handler forgets to return
	// while the chain continues.
	a := analyze(t, func(l *eventloop.Loop) {
		promise.Resolved(l, loc.Here(), 1).
			Then(loc.Here(), vm.NewFunc("forgets", func(args []vm.Value) vm.Value {
				return vm.Undefined // should have returned a value
			}), nil).
			Then(loc.Here(), noop("consumer"), nil).
			Catch(loc.Here(), noop("c"))
	})
	wantWarning(t, a, CatMissingReturn)
}

func TestReturningValueHasNoMissingReturn(t *testing.T) {
	a := analyze(t, func(l *eventloop.Loop) {
		promise.Resolved(l, loc.Here(), 1).
			Then(loc.Here(), vm.NewFunc("returns", func(args []vm.Value) vm.Value {
				return args[0]
			}), nil).
			Then(loc.Here(), noop("consumer"), nil).
			Catch(loc.Here(), noop("c"))
	})
	wantNoWarning(t, a, CatMissingReturn)
}

func TestChainEndReturningUndefinedIsFine(t *testing.T) {
	// A final then with no consumers may return nothing.
	a := analyze(t, func(l *eventloop.Loop) {
		promise.Resolved(l, loc.Here(), 1).
			Then(loc.Here(), noop("end"), nil).
			Catch(loc.Here(), noop("c"))
	})
	wantNoWarning(t, a, CatMissingReturn)
}

func TestDoubleResolveWarning(t *testing.T) {
	a := analyze(t, func(l *eventloop.Loop) {
		p := promise.New(l, loc.Here(), nil)
		p.Resolve(loc.Here(), 1)
		p.Resolve(loc.Here(), 2)
		p.Then(loc.Here(), noop("h"), nil).Catch(loc.Here(), noop("c"))
	})
	wantWarning(t, a, CatDoubleSettle)
}

func TestDoubleRejectWarning(t *testing.T) {
	a := analyze(t, func(l *eventloop.Loop) {
		p := promise.New(l, loc.Here(), nil)
		p.Reject(loc.Here(), "e1")
		p.Reject(loc.Here(), "e2")
		p.Catch(loc.Here(), noop("c"))
	})
	wantWarning(t, a, CatDoubleSettle)
}

func TestBrokenChainWarning(t *testing.T) {
	// SO-50996870: a promise created inside a then callback, neither
	// returned nor linked.
	a := analyze(t, func(l *eventloop.Loop) {
		promise.Resolved(l, loc.Here(), 1).
			Then(loc.Here(), vm.NewFunc("dbQuery", func(args []vm.Value) vm.Value {
				floating := promise.New(l, loc.Here(), nil)
				floating.Resolve(loc.Here(), "db-row")
				floating.Then(loc.Here(), noop("use"), nil).Catch(loc.Here(), noop("c"))
				return vm.Undefined // forgot: return floating
			}), nil).
			Then(loc.Here(), noop("consumer"), nil).
			Catch(loc.Here(), noop("c"))
	})
	wantWarning(t, a, CatBrokenChain)
}

func TestReturnedInnerPromiseIsNotBrokenChain(t *testing.T) {
	a := analyze(t, func(l *eventloop.Loop) {
		promise.Resolved(l, loc.Here(), 1).
			Then(loc.Here(), vm.NewFunc("dbQuery", func(args []vm.Value) vm.Value {
				inner := promise.New(l, loc.Here(), nil)
				inner.Resolve(loc.Here(), "db-row")
				return inner
			}), nil).
			Then(loc.Here(), noop("consumer"), nil).
			Catch(loc.Here(), noop("c"))
	})
	wantNoWarning(t, a, CatBrokenChain)
}

// --- Manual / graph-assisted queries (§VI-B) ---

func TestExplainCallbackDelay(t *testing.T) {
	var regAt loc.Loc
	a := analyze(t, func(l *eventloop.Loop) {
		regAt = loc.Here()
		l.SetTimeout(regAt, noop("cb"), 10*time.Millisecond)
	})
	exp := ExplainCallbackDelay(a.g, regAt)
	if exp == nil {
		t.Fatal("registration not found")
	}
	if !exp.Asynchronous() {
		t.Fatalf("TickDistance = %d, want > 0", exp.TickDistance)
	}
	w := exp.Warning()
	if w.Category != CatExpectSyncCallback {
		t.Fatalf("category = %s", w.Category)
	}
}

func TestPromiseChains(t *testing.T) {
	a := analyze(t, func(l *eventloop.Loop) {
		promise.Resolved(l, loc.Here(), 1).
			Then(loc.Here(), noop("a"), nil).
			Then(loc.Here(), noop("b"), nil).
			Catch(loc.Here(), noop("c"))
		promise.Resolved(l, loc.Here(), 2) // a second, single-node chain
	})
	chains := PromiseChains(a.g)
	if len(chains) != 2 {
		t.Fatalf("chains = %d, want 2", len(chains))
	}
	if chains[0].Size != 4 {
		t.Fatalf("chain size = %d, want 4", chains[0].Size)
	}
	if len(chains[0].Leaves) != 1 {
		t.Fatalf("leaves = %d, want 1", len(chains[0].Leaves))
	}
}

// --- Config gating ---

func TestDisabledDetectorsStaySilent(t *testing.T) {
	l := eventloop.New(eventloop.Options{TickLimit: 100})
	b := asyncgraph.NewBuilder(asyncgraph.DefaultConfig())
	a := NewAnalyzer(b, Config{}) // everything off
	l.Probes().Attach(b)
	l.Probes().Attach(a)
	main := vm.NewFunc("main", func([]vm.Value) vm.Value {
		e := events.New(l, "e", loc.Here())
		e.Emit(loc.Here(), "ghost")
		promise.New(l, loc.Here(), nil)
		return vm.Undefined
	})
	if err := l.Run(main); err != nil {
		t.Fatal(err)
	}
	a.Finish()
	if len(a.Warnings()) != 0 {
		t.Fatalf("warnings with all detectors off: %v", a.Warnings())
	}
}

func TestWarningsAnnotateGraphNodes(t *testing.T) {
	a := analyze(t, func(l *eventloop.Loop) {
		e := events.New(l, "e", loc.Here())
		e.On(loc.Here(), "never", noop("listener"))
	})
	w := wantWarning(t, a, CatDeadListener)
	n := a.g.Node(w.Node)
	if n == nil || len(n.Warnings) == 0 {
		t.Fatal("graph node not annotated with the warning")
	}
}

func TestFinishIsIdempotent(t *testing.T) {
	a := analyze(t, func(l *eventloop.Loop) {
		e := events.New(l, "e", loc.Here())
		e.On(loc.Here(), "never", noop("listener"))
	})
	n1 := len(a.Finish())
	n2 := len(a.Finish())
	if n1 != n2 {
		t.Fatalf("Finish not idempotent: %d then %d warnings", n1, n2)
	}
}

func TestThenOnPendingPromiseIsNotSimilarAPI(t *testing.T) {
	// A then() on a *pending* promise schedules nothing now, so it must
	// not participate in the same-tick mixing check.
	a := analyze(t, func(l *eventloop.Loop) {
		p := promise.New(l, loc.Here(), nil)
		p.Then(loc.Here(), noop("h"), noop("r"))
		l.NextTick(loc.Here(), noop("t"))
		l.SetTimeout(loc.Here(), vm.NewFunc("resolver", func([]vm.Value) vm.Value {
			p.Resolve(loc.Here(), 1)
			return vm.Undefined
		}), time.Millisecond)
	})
	wantNoWarning(t, a, CatMixedAPIs)
}

func TestTimeoutOrderGroupWarnsOnlyOnce(t *testing.T) {
	a := analyze(t, func(l *eventloop.Loop) {
		l.SetTimeout(loc.Here(), noop("a"), 30*time.Millisecond)
		l.Work(5 * time.Millisecond)
		l.SetTimeout(loc.Here(), noop("b"), 28*time.Millisecond)
		l.Work(5 * time.Millisecond)
		l.SetTimeout(loc.Here(), noop("c"), 22*time.Millisecond)
	})
	if got := len(a.WarningsOf(CatTimeoutOrder)); got != 1 {
		t.Fatalf("timeout-order warnings = %d, want 1", got)
	}
}

func TestDuplicateListenerThroughWrapperAPI(t *testing.T) {
	// Registrations through wrapper APIs (http.createServer style) are
	// classified by role, so duplicates are still caught.
	a := analyze(t, func(l *eventloop.Loop) {
		e := events.New(l, "server", loc.Here())
		h := noop("handler")
		e.OnWithAPI(loc.Here(), "http.createServer", "request", h)
		e.OnWithAPI(loc.Here(), "http.createServer", "request", h)
		e.Emit(loc.Here(), "request")
	})
	wantWarning(t, a, CatDuplicateListener)
}

func TestWarningStringFormat(t *testing.T) {
	a := analyze(t, func(l *eventloop.Loop) {
		e := events.New(l, "e", loc.Here())
		e.Emit(loc.Here(), "ghost")
	})
	s := wantWarning(t, a, CatDeadEmit).String()
	if !strings.Contains(s, "[dead-emit]") || !strings.Contains(s, "detect_test.go") {
		t.Fatalf("warning string = %q", s)
	}
}

func TestErrorListenersAreNotDead(t *testing.T) {
	// A defensive 'error' handler that never fires is healthy, not a
	// dead listener.
	a := analyze(t, func(l *eventloop.Loop) {
		e := events.New(l, "sock", loc.Here())
		e.On(loc.Here(), "error", noop("onError"))
		e.On(loc.Here(), "data", noop("onData"))
		e.Emit(loc.Here(), "data", "x")
	})
	wantNoWarning(t, a, CatDeadListener)
}

func TestWarningOrderIsDeterministic(t *testing.T) {
	// Post-hoc analyses iterate internal tables; the emitted warning
	// sequence must be identical run after run.
	program := func(l *eventloop.Loop) {
		for i := 0; i < 6; i++ {
			promise.New(l, loc.Here(), nil) // six dead promises
		}
		for i := 0; i < 3; i++ {
			e := events.New(l, "e", loc.Here())
			e.On(loc.Here(), "never", noop("listener"))
		}
		c1 := state.NewCell(l, "a", loc.Here(), 0)
		c2 := state.NewCell(l, "b", loc.Here(), 0)
		w := func(c *state.Cell) *vm.Function {
			return vm.NewFunc("w", func([]vm.Value) vm.Value {
				c.Set(loc.Here(), 1)
				return vm.Undefined
			})
		}
		l.SetTimeout(loc.Here(), w(c1), time.Millisecond)
		l.SetTimeout(loc.Here(), w(c1), 2*time.Millisecond)
		l.SetTimeout(loc.Here(), w(c2), 3*time.Millisecond)
		l.SetTimeout(loc.Here(), w(c2), 4*time.Millisecond)
	}
	render := func() string {
		a := analyze(t, program)
		out := ""
		for _, warn := range a.Warnings() {
			out += warn.String() + "\n"
		}
		return out
	}
	first := render()
	for i := 0; i < 5; i++ {
		if got := render(); got != first {
			t.Fatalf("warning order differs between runs:\n--- run 1 ---\n%s--- run %d ---\n%s", first, i+2, got)
		}
	}
}
