package detect

import (
	"fmt"
	"sort"

	"asyncg/internal/asyncgraph"
	"asyncg/internal/instrument"
	"asyncg/internal/loc"
	"asyncg/internal/state"
	"asyncg/internal/vm"
)

// CatRace is the warning category of the race-detection extension — the
// paper's §IX ongoing research ("race conditions caused by
// non-deterministic event ordering"), implemented here on top of the
// Async Graph's causal edges.
const CatRace Category = "event-race"

// access is one recorded read or write of a shared cell.
type access struct {
	cell  uint64
	write bool
	// ce is the callback execution performing the access (NoNode for
	// the main program, which happens-before every other tick).
	ce asyncgraph.NodeID
	at loc.Loc
}

// raceState accumulates cell accesses during the run.
type raceState struct {
	cellNames map[uint64]string
	accesses  []access
}

func newRaceState() *raceState {
	return &raceState{cellNames: make(map[uint64]string)}
}

// reset clears the per-run access log. Cell names persist across runs:
// ids and names are deterministic program structure, re-announced by
// state.APINew before any access of the next run.
func (s *raceState) reset() {
	for i := range s.accesses {
		s.accesses[i] = access{}
	}
	s.accesses = s.accesses[:0]
}

// raceAPICall records cell traffic.
func (a *Analyzer) raceAPICall(ev *vm.APIEvent) {
	switch ev.API {
	case state.APINew:
		if len(ev.Args) > 0 {
			if s, ok := ev.Args[0].(string); ok {
				a.races.cellNames[ev.Receiver.ID] = s
			}
		}
	case state.APIGet, state.APISet:
		a.races.accesses = append(a.races.accesses, access{
			cell:  ev.Receiver.ID,
			write: ev.API == state.APISet,
			ce:    a.b.EnclosingCE(),
			at:    ev.Loc,
		})
	}
}

// finishRaces reports conflicting accesses (at least one write) whose
// callback executions are not causally ordered by the Async Graph and
// whose relative order therefore depends on externally-timed scheduling.
//
// Ordering rules:
//   - accesses in the same callback execution (or both in main) are
//     sequential;
//   - main happens-before every callback execution;
//   - CE a happens-before CE b when a path of direct (causal) edges
//     leads from a to b — a registered b's callback, triggered it, or
//     encloses it;
//   - unordered pairs are racy only when at least one side runs in an
//     externally-scheduled tick (timer, io, close): microtask FIFO
//     order within one tick family is deterministic in Node, so
//     same-family unordered pairs are not flagged.
func (a *Analyzer) finishRaces() {
	if len(a.races.accesses) == 0 {
		return
	}
	reach := newReachability(a.g)
	type pairKey struct {
		cell uint64
		x, y asyncgraph.NodeID
	}
	reported := make(map[pairKey]bool)
	byCell := make(map[uint64][]access)
	for _, acc := range a.races.accesses {
		byCell[acc.cell] = append(byCell[acc.cell], acc)
	}
	// Deterministic warning order: cells by id.
	cells := make([]uint64, 0, len(byCell))
	for cell := range byCell {
		cells = append(cells, cell)
	}
	sort.Slice(cells, func(i, j int) bool { return cells[i] < cells[j] })
	for _, cell := range cells {
		accs := byCell[cell]
		for i := 0; i < len(accs); i++ {
			for j := i + 1; j < len(accs); j++ {
				x, y := accs[i], accs[j]
				if !x.write && !y.write {
					continue
				}
				if x.ce == y.ce || x.ce == asyncgraph.NoNode || y.ce == asyncgraph.NoNode {
					continue
				}
				if reach.ordered(x.ce, y.ce) {
					continue
				}
				if !a.externallyTimed(x.ce) && !a.externallyTimed(y.ce) {
					continue
				}
				key := pairKey{cell: cell, x: minNode(x.ce, y.ce), y: maxNode(x.ce, y.ce)}
				if reported[key] {
					continue
				}
				reported[key] = true
				name := a.races.cellNames[cell]
				a.g.AddWarning(x.ce, CatRace,
					fmt.Sprintf("accesses to shared state %q at %s and %s are not causally ordered: their order depends on event timing (potential race)",
						name, x.at, y.at),
					x.at)
			}
		}
	}
}

// externallyTimed reports whether the CE's scheduling derives from an
// externally-timed event. It walks the causal ancestry — the CE's
// registration (binding edge) and whatever created or triggered it
// (reverse direct edges) — looking for a node that ran in a timer/io/
// close tick or whose API completes through external I/O (network, fs,
// db). A DB callback delivered via the driver's nextTick deferral is
// therefore still recognized as I/O-ordered.
func (a *Analyzer) externallyTimed(ce asyncgraph.NodeID) bool {
	seen := make(map[asyncgraph.NodeID]bool)
	stack := []asyncgraph.NodeID{ce}
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if seen[cur] {
			continue
		}
		seen[cur] = true
		n := a.g.Node(cur)
		if n == nil {
			continue
		}
		if tk := a.g.TickOf(cur); tk == nil {
			return true // uncommitted (truncated run): be conservative
		} else if tk.Phase == "timer" || tk.Phase == "io" || tk.Phase == "close" {
			return true
		}
		if instrument.Categorize(n.API) == instrument.CatIO {
			// The callback's ancestry includes an I/O-completing API
			// (network, fs, db): its timing is external even when the
			// delivery hop ran on the microtask queue.
			return true
		}
		for _, e := range a.g.EdgesFrom(cur) {
			if e.Kind == asyncgraph.EdgeBinding { // CE → its CR
				stack = append(stack, e.To)
			}
		}
		for _, e := range a.g.EdgesTo(cur) {
			if e.Kind == asyncgraph.EdgeDirect { // creator / trigger / encloser
				stack = append(stack, e.From)
			}
		}
	}
	return false
}

func minNode(a, b asyncgraph.NodeID) asyncgraph.NodeID {
	if a < b {
		return a
	}
	return b
}

func maxNode(a, b asyncgraph.NodeID) asyncgraph.NodeID {
	if a > b {
		return a
	}
	return b
}

// reachability answers causal-ordering queries over the graph's direct
// edges, with memoized forward sets.
type reachability struct {
	next map[asyncgraph.NodeID][]asyncgraph.NodeID
	memo map[asyncgraph.NodeID]map[asyncgraph.NodeID]bool
}

func newReachability(g *asyncgraph.Graph) *reachability {
	r := &reachability{
		next: make(map[asyncgraph.NodeID][]asyncgraph.NodeID),
		memo: make(map[asyncgraph.NodeID]map[asyncgraph.NodeID]bool),
	}
	for _, e := range g.Edges {
		if e.Kind == asyncgraph.EdgeDirect {
			r.next[e.From] = append(r.next[e.From], e.To)
		}
	}
	return r
}

// ordered reports whether a path of direct edges connects the nodes in
// either direction.
func (r *reachability) ordered(a, b asyncgraph.NodeID) bool {
	return r.reaches(a)[b] || r.reaches(b)[a]
}

// reaches returns (computing once) the forward-reachable set of n.
func (r *reachability) reaches(n asyncgraph.NodeID) map[asyncgraph.NodeID]bool {
	if set, ok := r.memo[n]; ok {
		return set
	}
	set := make(map[asyncgraph.NodeID]bool)
	stack := []asyncgraph.NodeID{n}
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, nxt := range r.next[cur] {
			if !set[nxt] {
				set[nxt] = true
				stack = append(stack, nxt)
			}
		}
	}
	r.memo[n] = set
	return set
}
