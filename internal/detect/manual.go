package detect

import (
	"fmt"

	"asyncg/internal/asyncgraph"
	"asyncg/internal/loc"
)

// The §VI-B bug patterns "are not necessarily leading to a bug, and more
// information is required to debug the root cause. Such bugs can be
// manually detected by checking the AG produced by AsyncG." The helpers
// in this file are the tool-assisted queries a developer runs against
// the graph.

// SyncExpectation is the result of ExplainCallbackDelay: evidence for
// (or against) the "expecting callbacks to run synchronously" mistake.
type SyncExpectation struct {
	Registration *asyncgraph.Node
	Executions   []*asyncgraph.Node
	// TickDistance is the number of ticks between registration and the
	// first execution; 0 means the callback ran in the registering tick
	// (synchronously), which is the behaviour the buggy code assumed.
	TickDistance int
}

// Asynchronous reports whether the callback ran in a later tick than its
// registration — i.e. code after the registering call that reads state
// set by the callback observed the pre-callback state.
func (s *SyncExpectation) Asynchronous() bool { return s.TickDistance > 0 }

// Warning converts the evidence into an expect-sync-callback warning.
func (s *SyncExpectation) Warning() asyncgraph.Warning {
	return asyncgraph.Warning{
		Category: CatExpectSyncCallback,
		Message: fmt.Sprintf(
			"callback registered at %s executes %d tick(s) later: code following the registration cannot observe its effects",
			s.Registration.Loc, s.TickDistance),
		Node: s.Registration.ID,
		Loc:  s.Registration.Loc,
	}
}

// ExplainCallbackDelay inspects the graph for the registration made at
// the given source location and reports how far (in ticks) its callback
// executions are from the registration — the §VI-B.1 query. It returns
// nil when no registration at that location is found.
func ExplainCallbackDelay(g *asyncgraph.Graph, at loc.Loc) *SyncExpectation {
	var cr *asyncgraph.Node
	for _, n := range g.NodesOfKind(asyncgraph.CR) {
		if n.Loc == at {
			cr = n
			break
		}
	}
	if cr == nil {
		return nil
	}
	out := &SyncExpectation{Registration: cr}
	for _, e := range g.EdgesTo(cr.ID) {
		if e.Kind != asyncgraph.EdgeBinding {
			continue
		}
		ce := g.Node(e.From)
		out.Executions = append(out.Executions, ce)
		if d := ce.Tick - cr.Tick; out.TickDistance == 0 || d < out.TickDistance {
			out.TickDistance = d
		}
	}
	return out
}

// ChainReport describes one promise chain in the graph: the root OB node
// and the relation path to each leaf — the §VI-B.2 inspection aid.
type ChainReport struct {
	Root   *asyncgraph.Node
	Leaves []*asyncgraph.Node
	Size   int
}

// PromiseChains groups the graph's promise OB nodes into chains via the
// then/catch/finally/link relation edges and returns one report per
// chain root, in creation order.
func PromiseChains(g *asyncgraph.Graph) []ChainReport {
	isPromiseOB := func(n *asyncgraph.Node) bool {
		return n != nil && n.Kind == asyncgraph.OB && n.API == "promise.create"
	}
	children := make(map[asyncgraph.NodeID][]asyncgraph.NodeID)
	hasParent := make(map[asyncgraph.NodeID]bool)
	for _, e := range g.Edges {
		if e.Kind != asyncgraph.EdgeRelation {
			continue
		}
		from, to := g.Node(e.From), g.Node(e.To)
		if !isPromiseOB(from) || !isPromiseOB(to) {
			continue
		}
		children[e.From] = append(children[e.From], e.To)
		hasParent[e.To] = true
	}
	var reports []ChainReport
	for _, n := range g.NodesOfKind(asyncgraph.OB) {
		if !isPromiseOB(n) || hasParent[n.ID] {
			continue
		}
		r := ChainReport{Root: n}
		var walk func(id asyncgraph.NodeID)
		seen := make(map[asyncgraph.NodeID]bool)
		walk = func(id asyncgraph.NodeID) {
			if seen[id] {
				return
			}
			seen[id] = true
			r.Size++
			kids := children[id]
			if len(kids) == 0 {
				r.Leaves = append(r.Leaves, g.Node(id))
				return
			}
			for _, k := range kids {
				walk(k)
			}
		}
		walk(n.ID)
		reports = append(reports, r)
	}
	return reports
}
