package detect

import (
	"testing"
	"time"

	"asyncg/internal/asyncgraph"
	"asyncg/internal/eventloop"
	"asyncg/internal/loc"
	"asyncg/internal/netio"
	"asyncg/internal/promise"
	"asyncg/internal/state"
	"asyncg/internal/vm"
)

func TestRaceTwoTimersWriteSameCell(t *testing.T) {
	// Two independently-registered timer callbacks both write the same
	// shared variable: their order depends on the timer deadlines —
	// the classic event-ordering race.
	a := analyze(t, func(l *eventloop.Loop) {
		counter := state.NewCell(l, "counter", loc.Here(), 0)
		writer := func(name string) *vm.Function {
			return vm.NewFunc(name, func([]vm.Value) vm.Value {
				counter.Set(loc.Here(), counter.Get(loc.Here()).(int)+1)
				return vm.Undefined
			})
		}
		l.SetTimeout(loc.Here(), writer("w1"), time.Millisecond)
		l.SetTimeout(loc.Here(), writer("w2"), 2*time.Millisecond)
	})
	wantWarning(t, a, CatRace)
}

func TestNoRaceWhenCausallyChained(t *testing.T) {
	// The second write happens in a callback registered by the first:
	// the AG orders them.
	a := analyze(t, func(l *eventloop.Loop) {
		counter := state.NewCell(l, "counter", loc.Here(), 0)
		l.SetTimeout(loc.Here(), vm.NewFunc("first", func([]vm.Value) vm.Value {
			counter.Set(loc.Here(), 1)
			l.SetTimeout(loc.Here(), vm.NewFunc("second", func([]vm.Value) vm.Value {
				counter.Set(loc.Here(), 2)
				return vm.Undefined
			}), time.Millisecond)
			return vm.Undefined
		}), time.Millisecond)
	})
	wantNoWarning(t, a, CatRace)
}

func TestNoRaceForReadOnlyAccesses(t *testing.T) {
	a := analyze(t, func(l *eventloop.Loop) {
		cfgCell := state.NewCell(l, "config", loc.Here(), "ro")
		reader := func(name string) *vm.Function {
			return vm.NewFunc(name, func([]vm.Value) vm.Value {
				_ = cfgCell.Get(loc.Here())
				return vm.Undefined
			})
		}
		l.SetTimeout(loc.Here(), reader("r1"), time.Millisecond)
		l.SetTimeout(loc.Here(), reader("r2"), 2*time.Millisecond)
	})
	wantNoWarning(t, a, CatRace)
}

func TestNoRaceWithinMainProgram(t *testing.T) {
	a := analyze(t, func(l *eventloop.Loop) {
		c := state.NewCell(l, "x", loc.Here(), 0)
		c.Set(loc.Here(), 1)
		c.Set(loc.Here(), 2)
	})
	wantNoWarning(t, a, CatRace)
}

func TestMainAccessOrderedBeforeCallbacks(t *testing.T) {
	a := analyze(t, func(l *eventloop.Loop) {
		c := state.NewCell(l, "x", loc.Here(), 0)
		c.Set(loc.Here(), 1) // main happens-before the timer
		l.SetTimeout(loc.Here(), vm.NewFunc("w", func([]vm.Value) vm.Value {
			c.Set(loc.Here(), 2)
			return vm.Undefined
		}), time.Millisecond)
	})
	wantNoWarning(t, a, CatRace)
}

func TestNoRaceForDeterministicMicrotasks(t *testing.T) {
	// Two nextTick callbacks run in FIFO registration order — a
	// deterministic schedule, so no race is flagged even though the AG
	// has no causal path between them.
	a := analyze(t, func(l *eventloop.Loop) {
		c := state.NewCell(l, "x", loc.Here(), 0)
		w := func(name string, v int) *vm.Function {
			return vm.NewFunc(name, func([]vm.Value) vm.Value {
				c.Set(loc.Here(), v)
				return vm.Undefined
			})
		}
		l.NextTick(loc.Here(), w("t1", 1))
		l.NextTick(loc.Here(), w("t2", 2))
	})
	wantNoWarning(t, a, CatRace)
}

func TestRaceBetweenIOCallbacks(t *testing.T) {
	// Two network deliveries writing the same state: arrival order is
	// timing-dependent.
	a := analyze(t, func(l *eventloop.Loop) {
		n := netio.New(l, netio.Options{})
		last := state.NewCell(l, "lastChunk", loc.Here(), vm.Undefined)
		x, y := n.Pipe(loc.Here())
		p, q := n.Pipe(loc.Here())
		record := func(name string) *vm.Function {
			return vm.NewFunc(name, func(args []vm.Value) vm.Value {
				last.Set(loc.Here(), args[0])
				return vm.Undefined
			})
		}
		y.On(loc.Here(), netio.EventData, record("connA"))
		q.On(loc.Here(), netio.EventData, record("connB"))
		x.WriteString(loc.Here(), "from-A")
		p.WriteString(loc.Here(), "from-B")
	})
	wantWarning(t, a, CatRace)
}

func TestRaceThroughPromiseResolutionIsOrdered(t *testing.T) {
	// Write in a timer callback, read in a reaction of a promise that
	// the same timer callback resolves: causally ordered via the ★
	// trigger edge.
	a := analyze(t, func(l *eventloop.Loop) {
		c := state.NewCell(l, "x", loc.Here(), 0)
		p := promise.New(l, loc.Here(), nil)
		p.Then(loc.Here(), vm.NewFunc("reader", func(args []vm.Value) vm.Value {
			_ = c.Get(loc.Here())
			return vm.Undefined
		}), nil).Catch(loc.Here(), noop("c"))
		l.SetTimeout(loc.Here(), vm.NewFunc("writerAndResolver", func([]vm.Value) vm.Value {
			c.Set(loc.Here(), 1)
			p.Resolve(loc.Here(), vm.Undefined)
			return vm.Undefined
		}), time.Millisecond)
	})
	wantNoWarning(t, a, CatRace)
}

func TestRaceWarningDeduplicated(t *testing.T) {
	a := analyze(t, func(l *eventloop.Loop) {
		c := state.NewCell(l, "x", loc.Here(), 0)
		w := func(name string) *vm.Function {
			return vm.NewFunc(name, func([]vm.Value) vm.Value {
				// Multiple accesses per callback must still yield one
				// warning per conflicting callback pair.
				c.Set(loc.Here(), 1)
				c.Set(loc.Here(), 2)
				return vm.Undefined
			})
		}
		l.SetTimeout(loc.Here(), w("w1"), time.Millisecond)
		l.SetTimeout(loc.Here(), w("w2"), 2*time.Millisecond)
	})
	if got := len(a.WarningsOf(CatRace)); got != 1 {
		t.Fatalf("race warnings = %d, want 1 (deduplicated)", got)
	}
}

func TestRacesDisabledByConfig(t *testing.T) {
	l := eventloop.New(eventloop.Options{TickLimit: 200})
	b := asyncgraph.NewBuilder(asyncgraph.DefaultConfig())
	cfg := DefaultConfig()
	cfg.Races = false
	a := NewAnalyzer(b, cfg)
	l.Probes().Attach(b)
	l.Probes().Attach(a)
	main := vm.NewFunc("main", func([]vm.Value) vm.Value {
		c := state.NewCell(l, "x", loc.Here(), 0)
		w := func(name string) *vm.Function {
			return vm.NewFunc(name, func([]vm.Value) vm.Value {
				c.Set(loc.Here(), 1)
				return vm.Undefined
			})
		}
		l.SetTimeout(loc.Here(), w("w1"), time.Millisecond)
		l.SetTimeout(loc.Here(), w("w2"), 2*time.Millisecond)
		return vm.Undefined
	})
	if err := l.Run(main); err != nil {
		t.Fatal(err)
	}
	a.Finish()
	if len(a.WarningsOf(CatRace)) != 0 {
		t.Fatal("race detector ran despite being disabled")
	}
}
