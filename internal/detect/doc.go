// Package detect implements AsyncG's automatic bug detection (§VI of the
// paper) on top of the Async Graph builder: scheduling bugs (recursive
// micro-tasks, mixing similar APIs, unexpected timeout order), emitter
// bugs (dead listeners, dead emits, invalid removal, duplicate listeners,
// add-listener-within-listener), and promise bugs (dead promises, missing
// reactions, missing exceptional reject reactions, missing returns,
// double resolve/reject), plus the graph-assisted manual queries of
// §VI-B.
//
// # Attachment and phases
//
// The Analyzer attaches to the same probe stream as the graph builder
// (attach the builder first so nodes exist when the analyzer annotates
// them). Some warnings fire online while the program runs; the rest are
// produced by Finish once the run ends.
//
// # Warnings, anchors, and provenance
//
// Every finding is an asyncgraph.Warning with a typed Category (the
// constants below — a typo'd category is a compile error, not a
// silently-empty filter) and an anchor node: the □ registration of a
// dead listener, the ★ trigger of a dead emit, the △ binding of an
// unhandled promise. The anchor is what makes a warning debuggable —
// the provenance package walks the graph backwards from it to produce
// the warning's async causal chain, and the explore layer stamps the
// schedule token that reproduces it. Program-level findings with no
// natural node use asyncgraph.NoNode and carry no chain.
package detect
