package detect

import (
	"sort"
	"strconv"

	"asyncg/internal/asyncgraph"
	"asyncg/internal/vm"
)

// Category is the typed identity of a warning's bug class. It aliases
// the graph-level type so detector findings and report filters share one
// vocabulary; using the constants below (rather than bare strings) means
// a typo'd category is a compile error, not a silently-empty filter.
type Category = asyncgraph.Category

// Warning categories, one per bug class of the paper's §VI.
const (
	CatRecursiveMicrotask   Category = "recursive-microtask"
	CatMicroStarvation      Category = "microtask-starvation"
	CatMixedAPIs            Category = "mixing-similar-apis"
	CatTimeoutOrder         Category = "unexpected-timeout-order"
	CatDeadListener         Category = "dead-listener"
	CatDeadEmit             Category = "dead-emit"
	CatInvalidRemoval       Category = "invalid-listener-removal"
	CatDuplicateListener    Category = "duplicate-listener"
	CatListenerInListener   Category = "add-listener-within-listener"
	CatDeadPromise          Category = "dead-promise"
	CatMissingReaction      Category = "missing-reaction"
	CatMissingRejectHandler Category = "missing-reject-handler"
	CatMissingReturn        Category = "missing-return"
	CatDoubleSettle         Category = "double-settle"
	CatExpectSyncCallback   Category = "expect-sync-callback"
	CatBrokenChain          Category = "broken-promise-chain"
)

// Family groups warning categories by the detector subsystem that emits
// them — the paper's §VI section structure.
type Family string

// Detector families.
const (
	FamilyScheduling Family = "scheduling"
	FamilyEmitter    Family = "emitter"
	FamilyPromise    Family = "promise"
	FamilyRace       Family = "race"
)

// families maps every known category to its detector family.
var families = map[Category]Family{
	CatRecursiveMicrotask:   FamilyScheduling,
	CatMicroStarvation:      FamilyScheduling,
	CatMixedAPIs:            FamilyScheduling,
	CatTimeoutOrder:         FamilyScheduling,
	CatDeadListener:         FamilyEmitter,
	CatDeadEmit:             FamilyEmitter,
	CatInvalidRemoval:       FamilyEmitter,
	CatDuplicateListener:    FamilyEmitter,
	CatListenerInListener:   FamilyEmitter,
	CatExpectSyncCallback:   FamilyEmitter,
	CatDeadPromise:          FamilyPromise,
	CatMissingReaction:      FamilyPromise,
	CatMissingRejectHandler: FamilyPromise,
	CatMissingReturn:        FamilyPromise,
	CatDoubleSettle:         FamilyPromise,
	CatBrokenChain:          FamilyPromise,
	CatRace:                 FamilyRace,
}

// FamilyOf returns the detector family of a category, or "" for unknown
// categories (e.g. manual §VI-B query labels).
func FamilyOf(c Category) Family { return families[c] }

// Categories returns every category of a family, or all known categories
// when family is "". The result is sorted for stable iteration.
func Categories(family Family) []Category {
	var out []Category
	for c, f := range families {
		if family == "" || f == family {
			out = append(out, c)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Config enables detector families and sets thresholds.
type Config struct {
	Scheduling bool
	Emitters   bool
	Promises   bool
	// Races enables the experimental race detector (the paper's §IX
	// ongoing work) over state.Cell accesses.
	Races bool
	// RecursiveMicroThreshold is the number of consecutive
	// self-reschedules of the same callback in micro-task ticks before
	// warning. The paper warns from the first recursive tick; 1 keeps
	// that behaviour.
	RecursiveMicroThreshold int
	// MicroStarvationThreshold is the number of consecutive micro-task
	// ticks (without a macro phase in between) before a starvation
	// warning, catching recursion cycles that alternate callbacks.
	MicroStarvationThreshold int
	// OnTheFlyChains re-evaluates promise-chain structure (chain walk
	// to the root plus a leaf rescan) on every promise registration and
	// settlement, as AsyncG's on-the-fly promise analyses do, instead
	// of only at Finish. It changes when warnings become observable,
	// and it is the dominant cost of promise tracking — the overhead
	// the paper's Fig. 6(a) "withpromise" setting measures.
	OnTheFlyChains bool
}

// DefaultConfig enables everything with the paper's behaviour.
func DefaultConfig() Config {
	return Config{
		Scheduling:               true,
		Emitters:                 true,
		Promises:                 true,
		Races:                    true,
		RecursiveMicroThreshold:  1,
		MicroStarvationThreshold: 1000,
		OnTheFlyChains:           true,
	}
}

// aframe is one analyzer shadow-stack entry.
type aframe struct {
	fn       *vm.Function
	dispatch *vm.Dispatch
	// floats lists promises created during this reaction frame
	// (broken-chain candidates); only tracked for promise reactions.
	floats []uint64
}

// Analyzer implements vm.Hooks and accumulates warnings into the
// builder's graph.
type Analyzer struct {
	cfg Config
	b   *asyncgraph.Builder
	g   *asyncgraph.Graph

	stack []aframe

	sched    *schedState
	emitters map[uint64]*emState
	promises map[uint64]*pState
	races    *raceState

	regRole    map[uint64]string
	regDerived map[uint64]uint64 // reaction regSeq → derived promise id
	mrCands    []mrCandidate     // missing-return candidates
	bcCands    []bcCandidate     // broken-chain candidates

	// emFree and pFree recycle per-object state records across Reset.
	emFree []*emState
	pFree  []*pState

	// pSorted is sortedPromises' reusable scratch (pointers into
	// a.promises; rebuilt every call).
	pSorted []*pState

	// msgCache interns warning messages of the prefix+%q(event)+suffix
	// shape. It deliberately survives Reset: reused analyzers re-derive
	// the same warnings run after run, and re-rendering the identical
	// message each run was a measurable share of the steady-state
	// allocation profile of schedule exploration.
	msgCache map[msgKey]string

	finished bool
}

// msgKey identifies one interned warning message: the site's fixed
// prefix plus the one or two dynamic parts interpolated into it.
type msgKey struct {
	prefix string
	event  string
	extra  string
}

// internMsg renders prefix+%q(event)+suffix, caching the result so a
// reused analyzer allocates each distinct message once.
func (a *Analyzer) internMsg(prefix, event, suffix string) string {
	k := msgKey{prefix: prefix, event: event}
	if m, ok := a.msgCache[k]; ok {
		return m
	}
	if a.msgCache == nil {
		a.msgCache = make(map[msgKey]string)
	}
	m := prefix + strconv.Quote(event) + suffix
	a.msgCache[k] = m
	return m
}

// internRemovalMsg renders the invalid-removal message, byte-identical
// to fmt.Sprintf("removeListener(%q, %s) did not match ...", event,
// name), through the same cache.
func (a *Analyzer) internRemovalMsg(event, name string) string {
	k := msgKey{prefix: "removeListener", event: event, extra: name}
	if m, ok := a.msgCache[k]; ok {
		return m
	}
	if a.msgCache == nil {
		a.msgCache = make(map[msgKey]string)
	}
	m := "removeListener(" + strconv.Quote(event) + ", " + name +
		") did not match any registered listener: the function passed is not the one that was registered"
	a.msgCache[k] = m
	return m
}

// NewAnalyzer creates an analyzer bound to the builder whose graph it
// annotates. Attach the builder to the probes before the analyzer.
func NewAnalyzer(b *asyncgraph.Builder, cfg Config) *Analyzer {
	return &Analyzer{
		cfg:        cfg,
		b:          b,
		g:          b.Graph(),
		sched:      newSchedState(cfg),
		emitters:   make(map[uint64]*emState),
		promises:   make(map[uint64]*pState),
		races:      newRaceState(),
		regRole:    make(map[uint64]string),
		regDerived: make(map[uint64]uint64),
	}
}

// Reset returns the analyzer to its initial state while retaining its
// allocation set (per-object state records, map buckets, scratch
// slices), so one analyzer serves a whole stream of runs. The graph it
// annotates is reset separately (Builder.Reset).
func (a *Analyzer) Reset() {
	for i := range a.stack {
		a.stack[i] = aframe{}
	}
	a.stack = a.stack[:0]
	a.sched.reset()
	for _, st := range a.emitters {
		st.name = ""
		for ev, ls := range st.listeners {
			for i := range ls {
				ls[i] = emListener{}
			}
			st.listeners[ev] = ls[:0]
		}
		a.emFree = append(a.emFree, st)
	}
	clear(a.emitters)
	for _, st := range a.promises {
		children := st.children
		for i := range children {
			children[i] = 0
		}
		*st = pState{}
		st.children = children[:0]
		a.pFree = append(a.pFree, st)
	}
	clear(a.promises)
	a.races.reset()
	clear(a.regRole)
	clear(a.regDerived)
	for i := range a.mrCands {
		a.mrCands[i] = mrCandidate{}
	}
	a.mrCands = a.mrCands[:0]
	for i := range a.bcCands {
		a.bcCands[i] = bcCandidate{}
	}
	a.bcCands = a.bcCands[:0]
	a.finished = false
}

// Warnings returns the findings so far (including post-hoc ones after
// Finish).
func (a *Analyzer) Warnings() []asyncgraph.Warning { return a.g.Warnings }

// WarningsOf returns the findings in the given category.
func (a *Analyzer) WarningsOf(category Category) []asyncgraph.Warning {
	var out []asyncgraph.Warning
	for _, w := range a.g.Warnings {
		if w.Category == category {
			out = append(out, w)
		}
	}
	return out
}

// enclosingReaction returns the innermost frame dispatched as a promise
// reaction, or nil.
func (a *Analyzer) enclosingReaction() *aframe {
	for i := len(a.stack) - 1; i >= 0; i-- {
		d := a.stack[i].dispatch
		if d == nil {
			continue
		}
		switch a.regRole[d.RegSeq] {
		case "fulfill", "reject", "finally", "await":
			return &a.stack[i]
		}
	}
	return nil
}

// insideListenerOf reports whether a listener of the given emitter is
// currently executing.
func (a *Analyzer) insideListenerOf(emitterID uint64) bool {
	for i := len(a.stack) - 1; i >= 0; i-- {
		d := a.stack[i].dispatch
		if d != nil && d.Obj.Kind == vm.ObjEmitter && d.Obj.ID == emitterID {
			return true
		}
	}
	return false
}

// FunctionEnter implements vm.Hooks.
func (a *Analyzer) FunctionEnter(fn *vm.Function, info *vm.CallInfo) {
	if len(a.stack) == 0 && a.cfg.Scheduling {
		a.sched.tickStart(a, fn, info)
	}
	if d := info.Dispatch; d != nil {
		if a.cfg.Scheduling {
			a.sched.execution(a, d)
		}
		if a.cfg.Emitters {
			a.emitterExecution(d)
		}
	}
	a.stack = append(a.stack, aframe{fn: fn, dispatch: info.Dispatch})
}

// FunctionExit implements vm.Hooks.
func (a *Analyzer) FunctionExit(fn *vm.Function, ret vm.Value, thrown *vm.Thrown) {
	if len(a.stack) == 0 {
		return
	}
	top := a.stack[len(a.stack)-1]
	a.stack = a.stack[:len(a.stack)-1]
	if a.cfg.Promises && top.dispatch != nil {
		a.reactionExit(top, ret, thrown)
	}
	if len(a.stack) == 0 && a.cfg.Scheduling {
		a.sched.tickEnd(a)
	}
}

// APICall implements vm.Hooks.
func (a *Analyzer) APICall(ev *vm.APIEvent) {
	if a.cfg.Scheduling {
		a.sched.apiCall(a, ev)
	}
	if a.cfg.Emitters {
		a.emitterAPICall(ev)
	}
	if a.cfg.Promises {
		a.promiseAPICall(ev)
	}
	if a.cfg.Races {
		a.raceAPICall(ev)
	}
	for _, reg := range ev.Regs {
		a.regRole[reg.Seq] = reg.Role
	}
}

// Finish runs the post-hoc analyses over the completed graph and returns
// all warnings. It is idempotent.
func (a *Analyzer) Finish() []asyncgraph.Warning {
	if a.finished {
		return a.g.Warnings
	}
	a.finished = true
	if a.cfg.Emitters {
		a.finishEmitters()
	}
	if a.cfg.Promises {
		a.finishPromises()
	}
	if a.cfg.Races {
		a.finishRaces()
	}
	return a.g.Warnings
}
