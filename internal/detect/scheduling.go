package detect

import (
	"fmt"
	"time"

	"asyncg/internal/asyncgraph"
	"asyncg/internal/eventloop"
	"asyncg/internal/loc"
	"asyncg/internal/promise"
	"asyncg/internal/vm"
)

// similar-API priority ranks: a registration with a lower rank executes
// before a later-phase one scheduled in the same tick, regardless of
// registration order. Mixing ranks out of order is the §VI-A(b) bug.
const (
	rankNextTick = iota
	rankPromise
	rankImmediate
	rankTimeoutZero
)

// similarReg is one same-tick registration of a "similar" scheduling API.
type similarReg struct {
	api   string
	rank  int
	node  asyncgraph.NodeID
	loc   string
	order int
}

// timeoutGroup tracks the §VI-A(c) detector: setTimeout registrations
// made in the same tick, watched until the first of them executes.
type timeoutGroup struct {
	entries []timeoutEntry
	fired   bool
}

type timeoutEntry struct {
	regSeq uint64
	delay  time.Duration
	node   asyncgraph.NodeID
}

// schedState is the scheduling-bug detector state.
type schedState struct {
	cfg Config

	// Recursive micro-tasks: the callback whose micro-tick is running,
	// and per-callback counts of consecutive self-reschedules.
	curMicroFn  *vm.Function
	selfResched map[*vm.Function]int
	// Consecutive micro ticks without a macro phase in between.
	microRun int
	starved  bool

	tickSimilar  []similarReg
	tickTimeouts []timeoutEntry
	regToGroup   map[uint64]*timeoutGroup

	// settled promises, for ranking then() on an already-settled
	// promise as a micro-task registration.
	settled map[uint64]bool
}

func newSchedState(cfg Config) *schedState {
	return &schedState{
		cfg:         cfg,
		selfResched: make(map[*vm.Function]int),
		regToGroup:  make(map[uint64]*timeoutGroup),
		settled:     make(map[uint64]bool),
	}
}

// reset returns the detector to its initial state, keeping map buckets
// and scratch-slice capacity.
func (s *schedState) reset() {
	s.curMicroFn = nil
	clear(s.selfResched)
	s.microRun = 0
	s.starved = false
	for i := range s.tickSimilar {
		s.tickSimilar[i] = similarReg{}
	}
	s.tickSimilar = s.tickSimilar[:0]
	for i := range s.tickTimeouts {
		s.tickTimeouts[i] = timeoutEntry{}
	}
	s.tickTimeouts = s.tickTimeouts[:0]
	clear(s.regToGroup)
	clear(s.settled)
}

// tickStart runs when a new top-level callback begins.
func (s *schedState) tickStart(a *Analyzer, fn *vm.Function, info *vm.CallInfo) {
	if eventloop.Phase(info.Phase).IsMicro() {
		s.curMicroFn = fn
		s.microRun++
		if !s.starved && s.microRun >= s.cfg.MicroStarvationThreshold {
			s.starved = true
			a.g.AddWarning(asyncgraph.NoNode, CatMicroStarvation,
				fmt.Sprintf("%d consecutive micro-task ticks without reaching any other event-loop phase", s.microRun),
				fn.Loc)
		}
	} else {
		s.curMicroFn = nil
		s.microRun = 0
		// A macro tick breaks every self-reschedule chain.
		for k := range s.selfResched {
			delete(s.selfResched, k)
		}
	}
}

// tickEnd runs when the outermost callback of a tick returns: evaluate
// the same-tick mixing detector and close the tick's timeout group.
func (s *schedState) tickEnd(a *Analyzer) {
	s.checkMixing(a)
	s.tickSimilar = s.tickSimilar[:0]
	if len(s.tickTimeouts) >= 2 {
		g := &timeoutGroup{entries: append([]timeoutEntry(nil), s.tickTimeouts...)}
		for _, e := range g.entries {
			s.regToGroup[e.regSeq] = g
		}
	}
	s.tickTimeouts = s.tickTimeouts[:0]
	if s.curMicroFn != nil && s.selfResched[s.curMicroFn] == 0 {
		// The micro callback ran without rescheduling itself: its chain
		// (if any) is broken.
		delete(s.selfResched, s.curMicroFn)
	}
	s.curMicroFn = nil
}

// checkMixing warns when similar scheduling APIs used in the same tick
// will execute in an order different from their registration order.
func (s *schedState) checkMixing(a *Analyzer) {
	regs := s.tickSimilar
	for i := 0; i < len(regs); i++ {
		for j := i + 1; j < len(regs); j++ {
			if regs[i].rank > regs[j].rank {
				a.g.AddWarning(regs[j].node, CatMixedAPIs,
					fmt.Sprintf("%s (registered after %s at %s) will execute before it: mixing similar APIs with different scheduling priorities",
						regs[j].api, regs[i].api, regs[i].loc),
					a.nodeLoc(regs[j].node))
				return // one warning per tick is enough
			}
		}
	}
}

func (a *Analyzer) nodeLoc(id asyncgraph.NodeID) loc.Loc {
	if n := a.g.Node(id); n != nil {
		return n.Loc
	}
	return loc.Internal
}

// apiCall records same-tick similar-API registrations, timeout groups,
// and recursive micro-task scheduling.
func (s *schedState) apiCall(a *Analyzer, ev *vm.APIEvent) {
	switch ev.API {
	case eventloop.APINextTick:
		s.addSimilar(a, ev, rankNextTick)
		s.noteMicroReschedule(a, ev, "process.nextTick")
	case eventloop.APISetImmediate:
		s.addSimilar(a, ev, rankImmediate)
	case eventloop.APISetTimeout:
		if len(ev.Args) == 1 {
			if d, ok := ev.Args[0].(time.Duration); ok {
				if d <= time.Millisecond {
					s.addSimilar(a, ev, rankTimeoutZero)
				}
				if len(ev.Regs) == 1 {
					s.tickTimeouts = append(s.tickTimeouts, timeoutEntry{
						regSeq: ev.Regs[0].Seq,
						delay:  d,
						node:   a.lastCRNode(ev),
					})
				}
			}
		}
	case promise.APIResolve, promise.APIReject:
		if ev.Receiver.Kind == vm.ObjPromise {
			s.settled[ev.Receiver.ID] = true
		}
	case promise.APIThen, promise.APICatch, promise.APIFinally, promise.APIAwait:
		if s.settled[ev.Receiver.ID] && len(ev.Regs) > 0 {
			// A reaction on an already-settled promise schedules a
			// micro-task right now: it participates in same-tick
			// ordering like nextTick and setImmediate do.
			s.addSimilar(a, ev, rankPromise)
			s.noteMicroReschedule(a, ev, ev.API)
		}
	}
}

// addSimilar records one similar-API registration in the current tick.
func (s *schedState) addSimilar(a *Analyzer, ev *vm.APIEvent, rank int) {
	s.tickSimilar = append(s.tickSimilar, similarReg{
		api:   ev.API,
		rank:  rank,
		node:  a.lastCRNode(ev),
		loc:   ev.Loc.String(),
		order: len(s.tickSimilar),
	})
}

// noteMicroReschedule detects the §VI-A(a) recursive micro-task bug: the
// currently executing micro-task callback registers itself again on a
// micro-task queue.
func (s *schedState) noteMicroReschedule(a *Analyzer, ev *vm.APIEvent, api string) {
	if s.curMicroFn == nil || len(ev.Regs) == 0 {
		return
	}
	for _, reg := range ev.Regs {
		if reg.Callback != s.curMicroFn {
			continue
		}
		s.selfResched[reg.Callback]++
		if s.selfResched[reg.Callback] >= s.cfg.RecursiveMicroThreshold {
			a.g.AddWarning(a.lastCRNode(ev), CatRecursiveMicrotask,
				fmt.Sprintf("callback %q recursively reschedules itself with %s: micro-tasks have priority over all other phases and will starve the event loop",
					reg.Callback.Name, api),
				ev.Loc)
		}
	}
}

// execution checks the timeout-order detector on every dispatched
// callback execution.
func (s *schedState) execution(a *Analyzer, d *vm.Dispatch) {
	g, ok := s.regToGroup[d.RegSeq]
	if !ok {
		return
	}
	delete(s.regToGroup, d.RegSeq)
	if g.fired {
		return
	}
	g.fired = true
	var mine, min timeoutEntry
	min.delay = -1
	for _, e := range g.entries {
		if e.regSeq == d.RegSeq {
			mine = e
		}
		if min.delay < 0 || e.delay < min.delay {
			min = e
		}
	}
	if mine.delay > min.delay {
		a.g.AddWarning(mine.node, CatTimeoutOrder,
			fmt.Sprintf("setTimeout callback with the larger timeout (%v) executed before the one with %v registered in the same tick: timeout values do not guarantee execution order",
				mine.delay, min.delay),
			a.nodeLoc(mine.node))
	}
}

// lastCRNode resolves the CR node the builder created for ev.
func (a *Analyzer) lastCRNode(ev *vm.APIEvent) asyncgraph.NodeID {
	if len(ev.Regs) == 0 {
		return asyncgraph.NoNode
	}
	if n := a.b.NodeByRegSeq(ev.Regs[0].Seq); n != nil {
		return n.ID
	}
	return asyncgraph.NoNode
}
