package detect

import (
	"fmt"
	"sort"

	"asyncg/internal/asyncgraph"
	"asyncg/internal/loc"
	"asyncg/internal/promise"
	"asyncg/internal/vm"
)

// pState mirrors one promise, maintained purely from probe events.
type pState struct {
	id        uint64
	kind      string // "constructor", "then", "catch", "async", "all", ...
	createdAt loc.Loc
	settled   bool
	rejected  bool

	hasReaction bool // any then/catch/finally/await/combinator/adoption
	// valueConsumed: something observes the fulfillment *value* (a
	// fulfill handler, an await, a combinator, or adoption) — a
	// trailing catch alone does not consume the value.
	valueConsumed bool
	// createdWithReject: the registration that derived this promise
	// included a rejection handler ("catch", or then with onRejected).
	createdWithReject bool
	awaited           bool
	linked            bool

	parent   uint64
	children []uint64
}

// mrCandidate is a potential missing-return bug: a fulfillment handler
// that returned undefined.
type mrCandidate struct {
	derived uint64
	node    asyncgraph.NodeID // the CR node of the reaction
	at      loc.Loc
}

// bcCandidate is a potential broken-chain bug: a promise created inside
// a reaction whose handler returned undefined without linking it.
type bcCandidate struct {
	float   uint64 // the floating promise
	derived uint64 // the enclosing reaction's derived promise
	at      loc.Loc
}

func (a *Analyzer) promiseState(id uint64) *pState {
	st, ok := a.promises[id]
	if !ok {
		if n := len(a.pFree); n > 0 {
			st = a.pFree[n-1]
			a.pFree = a.pFree[:n-1]
		} else {
			st = &pState{}
		}
		st.id = id
		a.promises[id] = st
	}
	return st
}

// chainRoot walks to the top of a promise's chain.
func (a *Analyzer) chainRoot(id uint64) *pState {
	st := a.promises[id]
	for depth := 0; st != nil && st.parent != 0 && depth < 4096; depth++ {
		up, ok := a.promises[st.parent]
		if !ok {
			break
		}
		st = up
	}
	return st
}

// refreshChain is the on-the-fly analysis: starting from the chain root
// of the touched promise, rescan the chain and recompute leaf status.
// The traversal result (leaf count and whether every leaf terminates in
// a rejection handler) is what the live missing-reject analysis keys on;
// performing it per promise event is the tool's promise-tracking cost.
func (a *Analyzer) refreshChain(id uint64) (leaves int, handled bool) {
	root := a.chainRoot(id)
	if root == nil {
		return 0, true
	}
	handled = true
	var walk func(st *pState, depth int)
	walk = func(st *pState, depth int) {
		if depth > 4096 {
			return
		}
		if len(st.children) == 0 {
			leaves++
			if isDerivedKind(st.kind) && st.kind != "catch" &&
				!st.createdWithReject && !st.awaited {
				handled = false
			}
			return
		}
		for _, child := range st.children {
			if cs, ok := a.promises[child]; ok {
				walk(cs, depth+1)
			}
		}
	}
	walk(root, 0)
	return leaves, handled
}

// promiseAPICall processes promise-related API events.
func (a *Analyzer) promiseAPICall(ev *vm.APIEvent) {
	if a.cfg.OnTheFlyChains && ev.Receiver.Kind == vm.ObjPromise {
		switch ev.API {
		case promise.APIThen, promise.APICatch, promise.APIFinally,
			promise.APIResolve, promise.APIReject, promise.APILink:
			defer a.refreshChain(ev.Receiver.ID)
		}
	}
	switch ev.API {
	case promise.APICreate:
		st := a.promiseState(ev.Receiver.ID)
		st.kind = ev.Event
		st.createdAt = ev.Loc
		// Combinator inputs are consumed by the combinator: they have a
		// reaction and their rejections are handled by the result.
		for _, in := range ev.Related {
			inSt := a.promiseState(in.ID)
			inSt.hasReaction = true
			inSt.valueConsumed = true
			inSt.children = append(inSt.children, ev.Receiver.ID)
			if st.parent == 0 {
				st.parent = in.ID
			}
		}
		// Broken-chain candidate collection: a promise born inside a
		// reaction frame may be a float. Derived promises of then/catch
		// are engine-made and excluded.
		if fr := a.enclosingReaction(); fr != nil {
			switch ev.Event {
			case "then", "catch", "finally":
			default:
				fr.floats = append(fr.floats, ev.Receiver.ID)
			}
		}

	case promise.APIThen, promise.APICatch, promise.APIFinally:
		src := a.promiseState(ev.Receiver.ID)
		src.hasReaction = true
		withReject := false
		for _, reg := range ev.Regs {
			switch reg.Role {
			case "reject":
				withReject = true
			case "fulfill":
				src.valueConsumed = true
			}
		}
		if ev.API == promise.APICatch {
			withReject = true
		}
		if len(ev.Related) > 0 {
			derived := a.promiseState(ev.Related[0].ID)
			derived.parent = ev.Receiver.ID
			derived.createdWithReject = withReject
			src.children = append(src.children, ev.Related[0].ID)
			for _, reg := range ev.Regs {
				a.regDerived[reg.Seq] = ev.Related[0].ID
			}
		}

	case promise.APIAwait:
		src := a.promiseState(ev.Receiver.ID)
		src.hasReaction = true
		src.valueConsumed = true
		src.awaited = true

	case promise.APIResolve, promise.APIReject:
		if ev.Receiver.Kind != vm.ObjPromise {
			return
		}
		st := a.promiseState(ev.Receiver.ID)
		if ev.Event == "already-settled" {
			// §VI-A.3(e): double resolve / reject.
			a.g.AddWarning(a.b.NodeByTrigSeq(ev.TriggerSeq), CatDoubleSettle,
				fmt.Sprintf("%s on an already-settled promise has no effect", shortSettle(ev.API)),
				ev.Loc)
			return
		}
		st.settled = true
		st.rejected = ev.API == promise.APIReject

	case promise.APILink:
		inner := a.promiseState(ev.Receiver.ID)
		inner.linked = true
		inner.hasReaction = true
		inner.valueConsumed = true
		if len(ev.Related) > 0 {
			inner.children = append(inner.children, ev.Related[0].ID)
		}
	}
}

func shortSettle(api string) string {
	if api == promise.APIReject {
		return "reject"
	}
	return "resolve"
}

// reactionExit collects missing-return and broken-chain candidates when
// a fulfillment handler returns.
func (a *Analyzer) reactionExit(fr aframe, ret vm.Value, thrown *vm.Thrown) {
	d := fr.dispatch
	role := a.regRole[d.RegSeq]
	if role != "fulfill" {
		return
	}
	derived := a.regDerived[d.RegSeq]
	if thrown != nil {
		return
	}
	if retP, ok := ret.(*promise.Promise); ok {
		// Returned promises join the chain; drop them from floats.
		for i, f := range fr.floats {
			if f == retP.ID() {
				fr.floats = append(fr.floats[:i], fr.floats[i+1:]...)
				break
			}
		}
		return
	}
	if !vm.IsUndefined(ret) {
		return
	}
	at := fr.fn.Loc
	if node := a.b.NodeByRegSeq(d.RegSeq); node != nil {
		a.mrCands = append(a.mrCands, mrCandidate{derived: derived, node: node.ID, at: at})
	} else {
		a.mrCands = append(a.mrCands, mrCandidate{derived: derived, node: asyncgraph.NoNode, at: at})
	}
	for _, f := range fr.floats {
		a.bcCands = append(a.bcCands, bcCandidate{float: f, derived: derived, at: at})
	}
}

// sortedPromises returns the promise states in object-id order, so
// post-hoc warnings are emitted deterministically run after run. The
// returned slice aliases the analyzer's scratch buffer, reused across
// runs; it is only valid until the next call.
func (a *Analyzer) sortedPromises() []*pState {
	out := a.pSorted[:0]
	for _, st := range a.promises {
		out = append(out, st)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].id < out[j].id })
	a.pSorted = out
	return out
}

// finishPromises runs the post-hoc promise analyses.
func (a *Analyzer) finishPromises() {
	ordered := a.sortedPromises()
	for _, st := range ordered {
		node := a.g.ObjNode(st.id)
		// §VI-A.3(a): dead promises — never settled. Warn on chain
		// roots only: a pending derived promise of a dead parent is a
		// consequence, not a cause.
		if !st.settled {
			parent, hasParent := a.promises[st.parent]
			if !hasParent || st.parent == 0 || parent.settled {
				a.g.AddWarning(node, CatDeadPromise,
					"promise was never resolved or rejected during this execution",
					st.createdAt)
			}
			continue
		}
		// §VI-A.3(b): settled promises no one ever reacts to. Derived
		// promises (then/catch/finally results) are excluded: an unused
		// chain end is the missing-reject-handler case below.
		if !st.hasReaction && !isDerivedKind(st.kind) {
			a.g.AddWarning(node, CatMissingReaction,
				fmt.Sprintf("promise (%s) settled but has no reaction: no then, catch, or await ever observes it", st.kind),
				st.createdAt)
		}
	}
	// §VI-A.3(c): every promise chain must end with a reject reaction.
	// The check is structural: no exception needs to be thrown.
	for _, st := range ordered {
		if len(st.children) > 0 || !isDerivedKind(st.kind) {
			continue
		}
		if st.kind == "catch" || st.createdWithReject || st.awaited {
			continue
		}
		a.g.AddWarning(a.g.ObjNode(st.id), CatMissingRejectHandler,
			"promise chain ends without a rejection handler: an exception in the chain would be silently lost",
			st.createdAt)
	}
	// §VI-A.3(d): fulfillment handlers that returned undefined while the
	// chain continues past their derived promise.
	for _, c := range a.mrCands {
		st, ok := a.promises[c.derived]
		if !ok {
			continue
		}
		if st.valueConsumed {
			a.g.AddWarning(c.node, CatMissingReturn,
				"then callback returns undefined but the chain continues: the next reaction receives undefined (missing return?)",
				c.at)
		}
	}
	// §VI-B.2: broken chains — a promise created inside a reaction,
	// neither returned nor awaited nor linked, while the handler
	// returned undefined.
	for _, c := range a.bcCands {
		st, ok := a.promises[c.float]
		if !ok || st.linked || st.awaited {
			continue
		}
		a.g.AddWarning(a.g.ObjNode(c.float), CatBrokenChain,
			"promise created inside a then callback but not returned: it is disconnected from the enclosing chain (broken promise chain)",
			c.at)
	}
}

// isDerivedKind reports whether the promise was produced by a chaining
// API rather than created by user code or a combinator.
func isDerivedKind(kind string) bool {
	switch kind {
	case "then", "catch", "finally":
		return true
	default:
		return false
	}
}
