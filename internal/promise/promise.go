// Package promise implements ECMAScript-style promises on the simulated
// event loop, including then/catch/finally chaining, thenable adoption,
// the standard combinators (all, race, allSettled, any), and async/await.
//
// Reaction jobs go through the loop's promise microtask queue, so their
// ordering relative to process.nextTick, timers, immediates and I/O
// matches the Node.js semantics of the paper's Fig. 2. Every creation,
// registration, settlement and chain relation is announced through probe
// events, which is what lets the Async Graph model promise chains (the
// △⇠then⇠△ and △⇠link⇠△ edges of §IV-A).
package promise

import (
	"fmt"

	"asyncg/internal/eventloop"
	"asyncg/internal/loc"
	"asyncg/internal/vm"
)

// API names announced through probe events. APICreate is the Object
// Binding event for every new promise; its Event field carries the kind
// ("constructor", "then", "async", "all", ...).
const (
	APICreate      = "promise.create"
	APIExecutor    = "promise.executor"
	APIResolve     = "promise.resolve"
	APIReject      = "promise.reject"
	APIThen        = "promise.then"
	APICatch       = "promise.catch"
	APIFinally     = "promise.finally"
	APIAwait       = "await"
	APILink        = "promise.link"
	APIPassthrough = "promise.passthrough"
	APIAll         = "Promise.all"
	APIRace        = "Promise.race"
	APIAllSettled  = "Promise.allSettled"
	APIAny         = "Promise.any"
	APIAsync       = "async function"
)

// State is a promise's lifecycle state.
type State int

// Promise states.
const (
	Pending State = iota
	Fulfilled
	Rejected
)

// String names the settlement state ("pending", "fulfilled",
// "rejected").
func (s State) String() string {
	switch s {
	case Pending:
		return "pending"
	case Fulfilled:
		return "fulfilled"
	case Rejected:
		return "rejected"
	default:
		return fmt.Sprintf("State(%d)", int(s))
	}
}

// reaction is one registered then/catch/finally/await continuation.
type reaction struct {
	onFulfilled *vm.Function // nil: pass value through
	onRejected  *vm.Function // nil: pass reason through
	derived     *Promise     // settled from the handler result; nil for await
	regFul      uint64
	regRej      uint64
	api         string
	after       func(ret vm.Value, thrown *vm.Thrown) // overrides derived settling (await)
}

// Promise is a simulated JavaScript promise.
type Promise struct {
	loop       *eventloop.Loop
	id         uint64
	state      State
	value      vm.Value // fulfillment value or rejection reason
	reactions  []*reaction
	settleTrig uint64
	createdAt  loc.Loc
}

// passThrough carries the settled value through a reaction slot that has
// no handler for the relevant state (e.g. the fulfilled path of catch).
var passThrough = vm.NewFuncAt("(passthrough)", loc.Internal, func(args []vm.Value) vm.Value {
	return vm.Arg(args, 0)
})

// New creates a promise and synchronously invokes executor with the
// promise as its single argument, as the Promise constructor does. An
// exception thrown by the executor rejects the promise.
func New(l *eventloop.Loop, at loc.Loc, executor *vm.Function) *Promise {
	p := newPromise(l, at, "constructor", nil)
	if executor != nil {
		seq := l.NextRegSeq()
		ev := l.BorrowAPIEvent()
		ev.API = APIExecutor
		ev.Loc = executor.Loc
		ev.Receiver = p.Ref()
		ev.SetOneReg(vm.Registration{Seq: seq, Callback: executor, Phase: "sync", Once: true, Role: "executor"})
		l.EmitAPIEvent(ev)
		l.ReturnAPIEvent(ev)
		d := l.NewDispatch()
		d.API = APIExecutor
		d.RegSeq = seq
		d.Obj = p.Ref()
		_, thrown := l.Invoke(executor, []vm.Value{p}, d)
		l.RecycleDispatch(d)
		if thrown != nil {
			p.settle(thrown.Loc, Rejected, thrown.Value, APIReject)
		}
	}
	return p
}

// Resolved creates an already-fulfilled promise (Promise.resolve).
func Resolved(l *eventloop.Loop, at loc.Loc, v vm.Value) *Promise {
	p := newPromise(l, at, "Promise.resolve", nil)
	p.Resolve(at, v)
	return p
}

// RejectedP creates an already-rejected promise (Promise.reject).
func RejectedP(l *eventloop.Loop, at loc.Loc, reason vm.Value) *Promise {
	p := newPromise(l, at, "Promise.reject", nil)
	p.Reject(at, reason)
	return p
}

// newPromise allocates a promise from the loop's arena and announces its
// Object Binding node. kind describes how the promise came to be;
// related carries relation edges (the source promise of a then, the
// inputs of a combinator).
func newPromise(l *eventloop.Loop, at loc.Loc, kind string, related []vm.ObjRef) *Promise {
	p := arenaFor(l).alloc()
	p.loop = l
	p.id = l.NextObjID()
	p.createdAt = at
	ev := l.BorrowAPIEvent()
	ev.API = APICreate
	ev.Event = kind
	ev.Loc = at
	ev.Receiver = p.Ref()
	ev.Related = related
	l.EmitAPIEvent(ev)
	l.ReturnAPIEvent(ev)
	return p
}

// Ref returns the probe-protocol reference for this promise.
func (p *Promise) Ref() vm.ObjRef { return vm.ObjRef{ID: p.id, Kind: vm.ObjPromise} }

// ID returns the promise's runtime-object identity.
func (p *Promise) ID() uint64 { return p.id }

// State returns the current lifecycle state.
func (p *Promise) State() State { return p.state }

// Value returns the fulfillment value or rejection reason; it is only
// meaningful once the promise is settled.
func (p *Promise) Value() vm.Value { return p.value }

// CreatedAt returns the creation site.
func (p *Promise) CreatedAt() loc.Loc { return p.createdAt }

// String renders the promise as "Promise#id(state)".
func (p *Promise) String() string {
	return fmt.Sprintf("Promise#%d(%s)", p.id, p.state)
}

// Resolve fulfills the promise with v. If v is itself a promise, p adopts
// its eventual state instead (thenable adoption). Resolving an already
// settled promise has no effect beyond an API event marked
// "already-settled" — the paper's Double Resolve bug.
func (p *Promise) Resolve(at loc.Loc, v vm.Value) {
	if inner, ok := v.(*Promise); ok {
		if inner == p {
			// Self-resolution is a chaining cycle; ECMAScript rejects
			// with a TypeError.
			p.settle(at, Rejected, "TypeError: chaining cycle detected for promise", APIReject)
			return
		}
		p.adopt(at, inner)
		return
	}
	p.settle(at, Fulfilled, v, APIResolve)
}

// Reject rejects the promise with reason.
func (p *Promise) Reject(at loc.Loc, reason vm.Value) {
	p.settle(at, Rejected, reason, APIReject)
}

func (p *Promise) settle(at loc.Loc, state State, v vm.Value, api string) {
	trig := p.loop.NextTrigSeq()
	ev := p.loop.BorrowAPIEvent()
	ev.API = api
	ev.Loc = at
	ev.Receiver = p.Ref()
	ev.TriggerSeq = trig
	ev.SetOneArg(v)
	if p.state != Pending {
		ev.Event = "already-settled"
		p.loop.EmitAPIEvent(ev)
		p.loop.ReturnAPIEvent(ev)
		return
	}
	p.loop.EmitAPIEvent(ev)
	p.loop.ReturnAPIEvent(ev)
	p.state = state
	p.value = v
	p.settleTrig = trig
	pending := p.reactions
	// Truncate rather than nil: nothing is ever appended to a settled
	// promise's reaction list, and the backing array (arena-owned
	// entries) is kept for the slot's next life.
	p.reactions = pending[:0]
	for _, r := range pending {
		p.scheduleReaction(r)
	}
}

// adopt makes p settle the way inner eventually settles. The adoption
// reactions are engine-internal; the Async Graph links the two promises
// with a "link" relation edge instead of showing the plumbing.
func (p *Promise) adopt(at loc.Loc, inner *Promise) {
	ev := p.loop.BorrowAPIEvent()
	ev.API = APILink
	ev.Loc = at
	ev.Receiver = inner.Ref()
	ev.SetOneRelated(p.Ref())
	p.loop.EmitAPIEvent(ev)
	p.loop.ReturnAPIEvent(ev)
	r := arenaFor(p.loop).allocReaction()
	r.api = APIPassthrough
	r.after = func(ret vm.Value, thrown *vm.Thrown) {
		switch inner.state {
		case Fulfilled:
			p.settle(loc.Internal, Fulfilled, inner.value, APIResolve)
		case Rejected:
			p.settle(loc.Internal, Rejected, inner.value, APIReject)
		}
	}
	inner.addReaction(loc.Internal, r)
}

// Then registers fulfillment and rejection handlers and returns the
// derived promise. Either handler may be nil, giving the usual
// pass-through behaviour.
func (p *Promise) Then(at loc.Loc, onFulfilled, onRejected *vm.Function) *Promise {
	return p.chain(at, APIThen, "then", onFulfilled, onRejected)
}

// Catch registers a rejection handler (promise.catch).
func (p *Promise) Catch(at loc.Loc, onRejected *vm.Function) *Promise {
	return p.chain(at, APICatch, "catch", nil, onRejected)
}

// Finally registers a handler invoked on settlement either way; the
// derived promise repeats p's outcome unless the handler throws.
func (p *Promise) Finally(at loc.Loc, onFinally *vm.Function) *Promise {
	derived := newPromise(p.loop, at, "finally", nil)
	seq := p.loop.NextRegSeq()
	ev := p.loop.BorrowAPIEvent()
	ev.API = APIFinally
	ev.Loc = at
	ev.Receiver = p.Ref()
	ev.Event = "finally"
	ev.SetOneRelated(derived.Ref())
	ev.SetOneReg(vm.Registration{Seq: seq, Callback: onFinally, Phase: string(eventloop.PhasePromise), Once: true, Role: "finally"})
	p.loop.EmitAPIEvent(ev)
	p.loop.ReturnAPIEvent(ev)
	r := arenaFor(p.loop).allocReaction()
	r.onFulfilled = onFinally
	r.onRejected = onFinally
	r.regFul = seq
	r.regRej = seq
	r.api = APIFinally
	r.after = func(ret vm.Value, thrown *vm.Thrown) {
		switch {
		case thrown != nil:
			derived.settle(loc.Internal, Rejected, thrown.Value, APIReject)
		case p.state == Fulfilled:
			derived.settle(loc.Internal, Fulfilled, p.value, APIResolve)
		default:
			derived.settle(loc.Internal, Rejected, p.value, APIReject)
		}
	}
	p.addReaction(at, r)
	return derived
}

// chain implements Then/Catch: it creates the derived promise, announces
// the registration with a relation edge, and wires result propagation.
func (p *Promise) chain(at loc.Loc, api, relation string, onFulfilled, onRejected *vm.Function) *Promise {
	derived := newPromise(p.loop, at, relation, nil)
	r := arenaFor(p.loop).allocReaction()
	r.onFulfilled = onFulfilled
	r.onRejected = onRejected
	r.derived = derived
	r.api = api
	ev := p.loop.BorrowAPIEvent()
	ev.API = api
	ev.Loc = at
	ev.Receiver = p.Ref()
	ev.Event = relation
	ev.SetOneRelated(derived.Ref())
	switch {
	case onFulfilled != nil && onRejected != nil:
		r.regFul = p.loop.NextRegSeq()
		r.regRej = p.loop.NextRegSeq()
		ev.Regs = []vm.Registration{
			{Seq: r.regFul, Callback: onFulfilled, Phase: string(eventloop.PhasePromise), Once: true, Role: "fulfill"},
			{Seq: r.regRej, Callback: onRejected, Phase: string(eventloop.PhasePromise), Once: true, Role: "reject"},
		}
	case onFulfilled != nil:
		r.regFul = p.loop.NextRegSeq()
		ev.SetOneReg(vm.Registration{Seq: r.regFul, Callback: onFulfilled, Phase: string(eventloop.PhasePromise), Once: true, Role: "fulfill"})
	case onRejected != nil:
		r.regRej = p.loop.NextRegSeq()
		ev.SetOneReg(vm.Registration{Seq: r.regRej, Callback: onRejected, Phase: string(eventloop.PhasePromise), Once: true, Role: "reject"})
	}
	p.loop.EmitAPIEvent(ev)
	p.loop.ReturnAPIEvent(ev)
	p.addReaction(at, r)
	return derived
}

// addReaction queues (or, if already settled, schedules) a reaction.
func (p *Promise) addReaction(at loc.Loc, r *reaction) {
	if p.state == Pending {
		p.reactions = append(p.reactions, r)
		return
	}
	p.scheduleReaction(r)
}

// scheduleReaction enqueues the reaction job for the settled state.
func (p *Promise) scheduleReaction(r *reaction) {
	handler := r.onFulfilled
	regSeq := r.regFul
	if p.state == Rejected {
		handler = r.onRejected
		regSeq = r.regRej
	}
	api := r.api
	if handler == nil {
		handler = passThrough
		api = APIPassthrough
		regSeq = 0
	}
	after := r.after
	if after == nil {
		state := p.state
		after = func(ret vm.Value, thrown *vm.Thrown) {
			if r.derived == nil {
				return
			}
			switch {
			case thrown != nil:
				r.derived.settle(thrown.Loc, Rejected, thrown.Value, APIReject)
			case handler == passThrough:
				// No handler for this path: the derived promise repeats
				// the outcome (value or reason) unchanged.
				if state == Rejected {
					r.derived.settle(loc.Internal, Rejected, p.value, APIReject)
				} else {
					r.derived.settle(loc.Internal, Fulfilled, p.value, APIResolve)
				}
			default:
				r.derived.Resolve(loc.Internal, ret)
			}
		}
	}
	d := p.loop.NewDispatch()
	d.API = api
	d.RegSeq = regSeq
	d.Obj = p.Ref()
	d.TriggerSeq = p.settleTrig
	p.loop.SchedulePromiseJob(handler, []vm.Value{p.value}, d, after)
}
