package promise

import (
	"strings"
	"testing"

	"asyncg/internal/eventloop"
	"asyncg/internal/loc"
	"asyncg/internal/vm"
)

// run executes program on a fresh loop; it fails the test on loop error.
func run(t *testing.T, program func(l *eventloop.Loop)) *eventloop.Loop {
	t.Helper()
	l := eventloop.New(eventloop.Options{})
	main := vm.NewFunc("main", func([]vm.Value) vm.Value {
		program(l)
		return vm.Undefined
	})
	if err := l.Run(main); err != nil {
		t.Fatal(err)
	}
	return l
}

// handler builds a then-handler that records its argument.
func handler(name string, out *[]vm.Value) *vm.Function {
	return vm.NewFunc(name, func(args []vm.Value) vm.Value {
		*out = append(*out, vm.Arg(args, 0))
		return vm.Undefined
	})
}

func TestThenRunsAsynchronously(t *testing.T) {
	var order []string
	run(t, func(l *eventloop.Loop) {
		p := Resolved(l, loc.Here(), 1)
		p.Then(loc.Here(), vm.NewFunc("h", func(args []vm.Value) vm.Value {
			order = append(order, "then")
			return vm.Undefined
		}), nil)
		order = append(order, "sync")
	})
	if len(order) != 2 || order[0] != "sync" || order[1] != "then" {
		t.Fatalf("order = %v", order)
	}
}

func TestThenReceivesResolutionValue(t *testing.T) {
	var got []vm.Value
	run(t, func(l *eventloop.Loop) {
		Resolved(l, loc.Here(), "payload").Then(loc.Here(), handler("h", &got), nil)
	})
	if len(got) != 1 || got[0] != "payload" {
		t.Fatalf("got = %v", got)
	}
}

func TestExecutorRunsSynchronously(t *testing.T) {
	ran := false
	run(t, func(l *eventloop.Loop) {
		New(l, loc.Here(), vm.NewFunc("exec", func(args []vm.Value) vm.Value {
			ran = true
			return vm.Undefined
		}))
		if !ran {
			t.Error("executor did not run synchronously")
		}
	})
}

func TestResolveFromExecutor(t *testing.T) {
	var got []vm.Value
	run(t, func(l *eventloop.Loop) {
		p := New(l, loc.Here(), vm.NewFunc("exec", func(args []vm.Value) vm.Value {
			args[0].(*Promise).Resolve(loc.Here(), 7)
			return vm.Undefined
		}))
		p.Then(loc.Here(), handler("h", &got), nil)
	})
	if len(got) != 1 || got[0] != 7 {
		t.Fatalf("got = %v", got)
	}
}

func TestThrowInExecutorRejects(t *testing.T) {
	var got []vm.Value
	run(t, func(l *eventloop.Loop) {
		p := New(l, loc.Here(), vm.NewFunc("exec", func(args []vm.Value) vm.Value {
			vm.Throw("exec-bug")
			return vm.Undefined
		}))
		p.Catch(loc.Here(), handler("c", &got))
	})
	if len(got) != 1 || got[0] != "exec-bug" {
		t.Fatalf("got = %v", got)
	}
}

func TestChainPropagatesReturnValues(t *testing.T) {
	var got []vm.Value
	run(t, func(l *eventloop.Loop) {
		Resolved(l, loc.Here(), 1).
			Then(loc.Here(), vm.NewFunc("inc", func(args []vm.Value) vm.Value {
				return args[0].(int) + 1
			}), nil).
			Then(loc.Here(), vm.NewFunc("dbl", func(args []vm.Value) vm.Value {
				return args[0].(int) * 10
			}), nil).
			Then(loc.Here(), handler("h", &got), nil)
	})
	if len(got) != 1 || got[0] != 20 {
		t.Fatalf("got = %v", got)
	}
}

func TestRejectionSkipsFulfillmentHandlers(t *testing.T) {
	var fulfilled, caught []vm.Value
	run(t, func(l *eventloop.Loop) {
		RejectedP(l, loc.Here(), "boom").
			Then(loc.Here(), handler("f", &fulfilled), nil).
			Then(loc.Here(), handler("f2", &fulfilled), nil).
			Catch(loc.Here(), handler("c", &caught))
	})
	if len(fulfilled) != 0 {
		t.Fatalf("fulfillment handlers ran: %v", fulfilled)
	}
	if len(caught) != 1 || caught[0] != "boom" {
		t.Fatalf("caught = %v", caught)
	}
}

func TestCatchRecoversTheChain(t *testing.T) {
	var got []vm.Value
	run(t, func(l *eventloop.Loop) {
		RejectedP(l, loc.Here(), "boom").
			Catch(loc.Here(), vm.NewFunc("c", func(args []vm.Value) vm.Value {
				return "recovered"
			})).
			Then(loc.Here(), handler("h", &got), nil)
	})
	if len(got) != 1 || got[0] != "recovered" {
		t.Fatalf("got = %v", got)
	}
}

func TestThrowInHandlerRejectsDerived(t *testing.T) {
	var got []vm.Value
	run(t, func(l *eventloop.Loop) {
		Resolved(l, loc.Here(), 1).
			Then(loc.Here(), vm.NewFunc("bad", func(args []vm.Value) vm.Value {
				vm.Throw("handler-bug")
				return vm.Undefined
			}), nil).
			Catch(loc.Here(), handler("c", &got))
	})
	if len(got) != 1 || got[0] != "handler-bug" {
		t.Fatalf("got = %v", got)
	}
}

func TestThenOnPendingPromiseRunsAfterSettle(t *testing.T) {
	var got []vm.Value
	run(t, func(l *eventloop.Loop) {
		p := New(l, loc.Here(), nil)
		p.Then(loc.Here(), handler("h", &got), nil)
		l.SetTimeout(loc.Here(), vm.NewFunc("resolver", func([]vm.Value) vm.Value {
			p.Resolve(loc.Here(), "late")
			return vm.Undefined
		}), 5_000_000)
	})
	if len(got) != 1 || got[0] != "late" {
		t.Fatalf("got = %v", got)
	}
}

func TestReturnedPromiseIsAdopted(t *testing.T) {
	var got []vm.Value
	run(t, func(l *eventloop.Loop) {
		inner := New(l, loc.Here(), nil)
		Resolved(l, loc.Here(), 0).
			Then(loc.Here(), vm.NewFunc("h", func(args []vm.Value) vm.Value {
				return inner
			}), nil).
			Then(loc.Here(), handler("h2", &got), nil)
		l.SetTimeout(loc.Here(), vm.NewFunc("r", func([]vm.Value) vm.Value {
			inner.Resolve(loc.Here(), "inner-value")
			return vm.Undefined
		}), 1_000_000)
	})
	if len(got) != 1 || got[0] != "inner-value" {
		t.Fatalf("got = %v", got)
	}
}

func TestResolveWithPromiseAdoptsRejection(t *testing.T) {
	var got []vm.Value
	run(t, func(l *eventloop.Loop) {
		inner := RejectedP(l, loc.Here(), "inner-err")
		outer := New(l, loc.Here(), nil)
		outer.Resolve(loc.Here(), inner)
		outer.Catch(loc.Here(), handler("c", &got))
	})
	if len(got) != 1 || got[0] != "inner-err" {
		t.Fatalf("got = %v", got)
	}
}

func TestDoubleResolveIsIgnored(t *testing.T) {
	var got []vm.Value
	l := run(t, func(l *eventloop.Loop) {
		p := New(l, loc.Here(), nil)
		p.Resolve(loc.Here(), "first")
		p.Resolve(loc.Here(), "second")
		p.Reject(loc.Here(), "third")
		p.Then(loc.Here(), handler("h", &got), nil)
	})
	_ = l
	if len(got) != 1 || got[0] != "first" {
		t.Fatalf("got = %v", got)
	}
}

func TestDoubleSettleEmitsMarkedAPIEvent(t *testing.T) {
	l := eventloop.New(eventloop.Options{})
	rec := &apiRecorder{}
	l.Probes().Attach(rec)
	main := vm.NewFunc("main", func([]vm.Value) vm.Value {
		p := New(l, loc.Here(), nil)
		p.Resolve(loc.Here(), 1)
		p.Resolve(loc.Here(), 2)
		return vm.Undefined
	})
	if err := l.Run(main); err != nil {
		t.Fatal(err)
	}
	var marked int
	for _, ev := range rec.events {
		if ev.API == APIResolve && ev.Event == "already-settled" {
			marked++
		}
	}
	if marked != 1 {
		t.Fatalf("already-settled events = %d, want 1", marked)
	}
}

func TestFinallyRunsOnBothOutcomes(t *testing.T) {
	var runs []string
	run(t, func(l *eventloop.Loop) {
		fin := func(tag string) *vm.Function {
			return vm.NewFunc("fin", func([]vm.Value) vm.Value {
				runs = append(runs, tag)
				return vm.Undefined
			})
		}
		Resolved(l, loc.Here(), 1).Finally(loc.Here(), fin("ok"))
		RejectedP(l, loc.Here(), "e").Finally(loc.Here(), fin("err")).Catch(loc.Here(), vm.NewFunc("c", func([]vm.Value) vm.Value { return vm.Undefined }))
	})
	if len(runs) != 2 {
		t.Fatalf("finally runs = %v", runs)
	}
}

func TestFinallyPreservesOutcome(t *testing.T) {
	var got []vm.Value
	run(t, func(l *eventloop.Loop) {
		Resolved(l, loc.Here(), "kept").
			Finally(loc.Here(), vm.NewFunc("fin", func([]vm.Value) vm.Value {
				return "ignored"
			})).
			Then(loc.Here(), handler("h", &got), nil)
	})
	if len(got) != 1 || got[0] != "kept" {
		t.Fatalf("got = %v", got)
	}
}

func TestPromiseJobsRunAfterNextTickJobs(t *testing.T) {
	var order []string
	run(t, func(l *eventloop.Loop) {
		Resolved(l, loc.Here(), 0).Then(loc.Here(), vm.NewFunc("p", func([]vm.Value) vm.Value {
			order = append(order, "promise")
			return vm.Undefined
		}), nil)
		l.NextTick(loc.Here(), vm.NewFunc("t", func([]vm.Value) vm.Value {
			order = append(order, "nextTick")
			return vm.Undefined
		}))
	})
	if len(order) != 2 || order[0] != "nextTick" || order[1] != "promise" {
		t.Fatalf("order = %v", order)
	}
}

func TestMotivationExampleOrdering(t *testing.T) {
	// The §III snippet: promise.then (L2), setTimeout (L5), nextTick
	// (L8) registered in that order execute L8, L2, L5.
	var order []string
	run(t, func(l *eventloop.Loop) {
		Resolved(l, loc.Here(), vm.Undefined).Then(loc.Here(), vm.NewFunc("L2", func([]vm.Value) vm.Value {
			order = append(order, "L2-promise")
			return vm.Undefined
		}), nil)
		l.SetTimeout(loc.Here(), vm.NewFunc("L5", func([]vm.Value) vm.Value {
			order = append(order, "L5-timeout")
			return vm.Undefined
		}), 0)
		l.NextTick(loc.Here(), vm.NewFunc("L8", func([]vm.Value) vm.Value {
			order = append(order, "L8-nextTick")
			return vm.Undefined
		}))
	})
	want := []string{"L8-nextTick", "L2-promise", "L5-timeout"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestSelfResolutionRejectsWithChainingCycle(t *testing.T) {
	var reason vm.Value
	run(t, func(l *eventloop.Loop) {
		p := New(l, loc.Here(), nil)
		p.Resolve(loc.Here(), p) // resolve with itself
		p.Catch(loc.Here(), vm.NewFunc("c", func(args []vm.Value) vm.Value {
			reason = args[0]
			return vm.Undefined
		}))
	})
	if s, ok := reason.(string); !ok || !strings.Contains(s, "chaining cycle") {
		t.Fatalf("reason = %v", reason)
	}
}

func TestFinallyThrowRejectsDerived(t *testing.T) {
	var reason []vm.Value
	run(t, func(l *eventloop.Loop) {
		Resolved(l, loc.Here(), "ok").
			Finally(loc.Here(), vm.NewFunc("fin", func([]vm.Value) vm.Value {
				vm.Throw("cleanup-bug")
				return vm.Undefined
			})).
			Catch(loc.Here(), handler("c", &reason))
	})
	if len(reason) != 1 || reason[0] != "cleanup-bug" {
		t.Fatalf("reason = %v", reason)
	}
}

type apiRecorder struct{ events []vm.APIEvent }

func (r *apiRecorder) FunctionEnter(*vm.Function, *vm.CallInfo)        {}
func (r *apiRecorder) FunctionExit(*vm.Function, vm.Value, *vm.Thrown) {}

// APICall deep-copies the event: payloads are scratch owned by the
// emitting API and are recycled after the hook returns.
func (r *apiRecorder) APICall(ev *vm.APIEvent) {
	cp := *ev
	cp.Regs = append([]vm.Registration(nil), ev.Regs...)
	cp.Args = append([]vm.Value(nil), ev.Args...)
	cp.Related = append([]vm.ObjRef(nil), ev.Related...)
	r.events = append(r.events, cp)
}
