package promise

// Property-based tests of promise laws: behavioural equivalences that
// must hold whatever the settlement order. Programs are generated from
// quick-provided seeds; settlement happens through randomized timer
// delays so microtask/macrotask interleavings vary across cases.

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"asyncg/internal/eventloop"
	"asyncg/internal/loc"
	"asyncg/internal/vm"
)

// outcome records how a promise settled.
type outcome struct {
	state State
	value vm.Value
}

// watch records p's outcome into out.
func watch(l *eventloop.Loop, p *Promise, out *outcome) {
	p.Then(loc.Here(), vm.NewFunc("obsF", func(args []vm.Value) vm.Value {
		*out = outcome{state: Fulfilled, value: args[0]}
		return vm.Undefined
	}), vm.NewFunc("obsR", func(args []vm.Value) vm.Value {
		*out = outcome{state: Rejected, value: args[0]}
		return vm.Undefined
	}))
}

// randomSource creates a promise settled by a timer after a random
// small delay, fulfilled or rejected per the seed.
func randomSource(l *eventloop.Loop, rng *rand.Rand, v vm.Value) *Promise {
	p := New(l, loc.Here(), nil)
	reject := rng.Intn(3) == 0
	delay := time.Duration(rng.Intn(5)+1) * time.Millisecond
	l.SetTimeout(loc.Here(), vm.NewFunc("settle", func([]vm.Value) vm.Value {
		if reject {
			p.Reject(loc.Here(), v)
		} else {
			p.Resolve(loc.Here(), v)
		}
		return vm.Undefined
	}), delay)
	return p
}

// runLaw executes program on a fresh loop and returns loop error.
func runLaw(program func(l *eventloop.Loop)) error {
	l := eventloop.New(eventloop.Options{TickLimit: 100_000})
	main := vm.NewFunc("main", func([]vm.Value) vm.Value {
		program(l)
		return vm.Undefined
	})
	return l.Run(main)
}

// TestQuickThenIdentity: p.then(x => x) settles exactly like p.
func TestQuickThenIdentity(t *testing.T) {
	f := func(seed int64, v int) bool {
		rng := rand.New(rand.NewSource(seed))
		var direct, chained outcome
		err := runLaw(func(l *eventloop.Loop) {
			p := randomSource(l, rng, v)
			identity := vm.NewFunc("id", func(args []vm.Value) vm.Value { return args[0] })
			watch(l, p, &direct)
			watch(l, p.Then(loc.Here(), identity, nil), &chained)
		})
		return err == nil && direct == chained
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickCatchOfFulfilledIsIdentity: catch does not disturb the
// fulfillment path.
func TestQuickCatchOfFulfilledIsIdentity(t *testing.T) {
	f := func(seed int64, v int) bool {
		rng := rand.New(rand.NewSource(seed))
		var direct, caught outcome
		err := runLaw(func(l *eventloop.Loop) {
			p := randomSource(l, rng, v)
			watch(l, p, &direct)
			handler := vm.NewFunc("h", func(args []vm.Value) vm.Value { return "handled" })
			watch(l, p.Catch(loc.Here(), handler), &caught)
		})
		if err != nil {
			return false
		}
		if direct.state == Fulfilled {
			return caught == direct
		}
		// Rejections are converted to fulfillment with the handler's
		// return value.
		return caught.state == Fulfilled && caught.value == "handled"
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickThenComposition: p.then(f).then(g) equals p.then(x => g(f(x)))
// on the fulfillment path.
func TestQuickThenComposition(t *testing.T) {
	fFn := func(x int) int { return x + 7 }
	gFn := func(x int) int { return x * 3 }
	f := func(seed int64, v int) bool {
		rng := rand.New(rand.NewSource(seed))
		var split, fused outcome
		err := runLaw(func(l *eventloop.Loop) {
			p := randomSource(l, rng, v)
			fv := vm.NewFunc("f", func(args []vm.Value) vm.Value { return fFn(args[0].(int)) })
			gv := vm.NewFunc("g", func(args []vm.Value) vm.Value { return gFn(args[0].(int)) })
			gofv := vm.NewFunc("gof", func(args []vm.Value) vm.Value { return gFn(fFn(args[0].(int))) })
			watch(l, p.Then(loc.Here(), fv, nil).Then(loc.Here(), gv, nil), &split)
			watch(l, p.Then(loc.Here(), gofv, nil), &fused)
		})
		return err == nil && split == fused
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickRejectionPropagatesThroughHandlerlessLinks: a rejection
// reaches the first rejection handler unchanged, regardless of how many
// fulfillment-only links sit in between.
func TestQuickRejectionPropagatesThroughHandlerlessLinks(t *testing.T) {
	f := func(seed int64, hops uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(hops%5) + 1
		var got outcome
		err := runLaw(func(l *eventloop.Loop) {
			p := New(l, loc.Here(), nil)
			delay := time.Duration(rng.Intn(4)+1) * time.Millisecond
			l.SetTimeout(loc.Here(), vm.NewFunc("rej", func([]vm.Value) vm.Value {
				p.Reject(loc.Here(), "deep-error")
				return vm.Undefined
			}), delay)
			chain := p
			for i := 0; i < n; i++ {
				chain = chain.Then(loc.Here(), vm.NewFunc("skip", func(args []vm.Value) vm.Value {
					return args[0]
				}), nil)
			}
			watch(l, chain, &got)
		})
		return err == nil && got.state == Rejected && got.value == "deep-error"
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickAllAgreesWithIndividualOutcomes: Promise.all fulfills iff
// every input fulfills, and rejects with the reason of the first input
// to reject (in settlement order).
func TestQuickAllAgreesWithIndividualOutcomes(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(4) + 1
		outs := make([]outcome, n)
		var all outcome
		err := runLaw(func(l *eventloop.Loop) {
			ps := make([]*Promise, n)
			for i := 0; i < n; i++ {
				ps[i] = randomSource(l, rng, i)
				watch(l, ps[i], &outs[i])
			}
			watch(l, All(l, loc.Here(), ps...), &all)
		})
		if err != nil {
			return false
		}
		anyRejected := false
		for _, o := range outs {
			if o.state == Rejected {
				anyRejected = true
			}
		}
		if anyRejected {
			return all.state == Rejected
		}
		if all.state != Fulfilled {
			return false
		}
		values := all.value.([]vm.Value)
		for i, o := range outs {
			if values[i] != o.value {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickRaceSettlesLikeSomeInput: race's outcome matches one of its
// inputs' outcomes.
func TestQuickRaceSettlesLikeSomeInput(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(4) + 1
		outs := make([]outcome, n)
		var raced outcome
		err := runLaw(func(l *eventloop.Loop) {
			ps := make([]*Promise, n)
			for i := 0; i < n; i++ {
				ps[i] = randomSource(l, rng, i*10)
				watch(l, ps[i], &outs[i])
			}
			watch(l, Race(l, loc.Here(), ps...), &raced)
		})
		if err != nil {
			return false
		}
		for _, o := range outs {
			if o == raced {
				return true
			}
		}
		return false
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickAwaitEquivalentToThen: awaiting a promise inside an async
// function observes the same outcome a then/catch observer does.
func TestQuickAwaitEquivalentToThen(t *testing.T) {
	f := func(seed int64, v int) bool {
		rng := rand.New(rand.NewSource(seed))
		var viaThen, viaAwait outcome
		err := runLaw(func(l *eventloop.Loop) {
			p := randomSource(l, rng, v)
			watch(l, p, &viaThen)
			Go(l, loc.Here(), "awaiter", func(aw *Awaiter) vm.Value {
				thrown := vm.CatchThrown(func() {
					viaAwait = outcome{state: Fulfilled, value: aw.Await(loc.Here(), p)}
				})
				if thrown != nil {
					viaAwait = outcome{state: Rejected, value: thrown.Value}
				}
				return vm.Undefined
			})
		})
		return err == nil && viaThen == viaAwait
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
