package promise

import (
	"testing"
	"time"

	"asyncg/internal/eventloop"
	"asyncg/internal/loc"
	"asyncg/internal/vm"
)

func TestAsyncBodyStartsSynchronously(t *testing.T) {
	var order []string
	run(t, func(l *eventloop.Loop) {
		Go(l, loc.Here(), "af", func(aw *Awaiter) vm.Value {
			order = append(order, "body-start")
			return vm.Undefined
		})
		order = append(order, "after-call")
	})
	if len(order) != 2 || order[0] != "body-start" || order[1] != "after-call" {
		t.Fatalf("order = %v", order)
	}
}

func TestAsyncResultSettlesWithReturnValue(t *testing.T) {
	var got []vm.Value
	run(t, func(l *eventloop.Loop) {
		p := Go(l, loc.Here(), "af", func(aw *Awaiter) vm.Value {
			return "result"
		})
		p.Then(loc.Here(), handler("h", &got), nil)
	})
	if len(got) != 1 || got[0] != "result" {
		t.Fatalf("got = %v", got)
	}
}

func TestAwaitSuspendsUntilPromiseSettles(t *testing.T) {
	var order []string
	run(t, func(l *eventloop.Loop) {
		inner := New(l, loc.Here(), nil)
		Go(l, loc.Here(), "af", func(aw *Awaiter) vm.Value {
			order = append(order, "before-await")
			v := aw.Await(loc.Here(), inner)
			order = append(order, "after-await:"+vm.ToString(v))
			return vm.Undefined
		})
		order = append(order, "main-continues")
		l.SetTimeout(loc.Here(), vm.NewFunc("r", func([]vm.Value) vm.Value {
			order = append(order, "resolving")
			inner.Resolve(loc.Here(), "x")
			return vm.Undefined
		}), time.Millisecond)
	})
	want := []string{"before-await", "main-continues", "resolving", "after-await:x"}
	if len(order) != len(want) {
		t.Fatalf("order = %v", order)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestAwaitOnResolvedPromiseYieldsToMicrotasks(t *testing.T) {
	// Even an already-settled awaited promise resumes asynchronously.
	var order []string
	run(t, func(l *eventloop.Loop) {
		done := Resolved(l, loc.Here(), 1)
		Go(l, loc.Here(), "af", func(aw *Awaiter) vm.Value {
			aw.Await(loc.Here(), done)
			order = append(order, "resumed")
			return vm.Undefined
		})
		order = append(order, "sync")
	})
	if len(order) != 2 || order[0] != "sync" || order[1] != "resumed" {
		t.Fatalf("order = %v", order)
	}
}

func TestSequentialAwaits(t *testing.T) {
	var sum int
	run(t, func(l *eventloop.Loop) {
		a := Resolved(l, loc.Here(), 1)
		b := Resolved(l, loc.Here(), 2)
		c := Resolved(l, loc.Here(), 3)
		Go(l, loc.Here(), "af", func(aw *Awaiter) vm.Value {
			sum += aw.Await(loc.Here(), a).(int)
			sum += aw.Await(loc.Here(), b).(int)
			sum += aw.Await(loc.Here(), c).(int)
			return vm.Undefined
		})
	})
	if sum != 6 {
		t.Fatalf("sum = %d", sum)
	}
}

func TestAwaitRejectionThrowsIntoBody(t *testing.T) {
	var caught vm.Value
	run(t, func(l *eventloop.Loop) {
		bad := RejectedP(l, loc.Here(), "await-err")
		Go(l, loc.Here(), "af", func(aw *Awaiter) vm.Value {
			thrown := vm.CatchThrown(func() {
				aw.Await(loc.Here(), bad)
			})
			if thrown != nil {
				caught = thrown.Value
			}
			return vm.Undefined
		})
	})
	if caught != "await-err" {
		t.Fatalf("caught = %v", caught)
	}
}

func TestUncaughtAwaitRejectionRejectsResult(t *testing.T) {
	var reason []vm.Value
	run(t, func(l *eventloop.Loop) {
		bad := RejectedP(l, loc.Here(), "bubbles")
		p := Go(l, loc.Here(), "af", func(aw *Awaiter) vm.Value {
			aw.Await(loc.Here(), bad)
			t.Error("body continued past rejected await")
			return vm.Undefined
		})
		p.Catch(loc.Here(), handler("c", &reason))
	})
	if len(reason) != 1 || reason[0] != "bubbles" {
		t.Fatalf("reason = %v", reason)
	}
}

func TestThrowInBodyRejectsResult(t *testing.T) {
	var reason []vm.Value
	run(t, func(l *eventloop.Loop) {
		p := Go(l, loc.Here(), "af", func(aw *Awaiter) vm.Value {
			vm.Throw("body-bug")
			return vm.Undefined
		})
		p.Catch(loc.Here(), handler("c", &reason))
	})
	if len(reason) != 1 || reason[0] != "body-bug" {
		t.Fatalf("reason = %v", reason)
	}
}

func TestAsyncReturningPromiseIsAdopted(t *testing.T) {
	var got []vm.Value
	run(t, func(l *eventloop.Loop) {
		inner := New(l, loc.Here(), nil)
		p := Go(l, loc.Here(), "af", func(aw *Awaiter) vm.Value {
			return inner
		})
		p.Then(loc.Here(), handler("h", &got), nil)
		settleLater(l, inner, 1, false, "adopted")
	})
	if len(got) != 1 || got[0] != "adopted" {
		t.Fatalf("got = %v", got)
	}
}

func TestNestedAsyncFunctions(t *testing.T) {
	var got []vm.Value
	run(t, func(l *eventloop.Loop) {
		fetch := func(v vm.Value, delay time.Duration) *Promise {
			p := New(l, loc.Here(), nil)
			l.SetTimeout(loc.Here(), vm.NewFunc("io", func([]vm.Value) vm.Value {
				p.Resolve(loc.Here(), v)
				return vm.Undefined
			}), delay)
			return p
		}
		outer := Go(l, loc.Here(), "outer", func(aw *Awaiter) vm.Value {
			inner := Go(l, loc.Here(), "inner", func(aw2 *Awaiter) vm.Value {
				a := aw2.Await(loc.Here(), fetch(10, time.Millisecond)).(int)
				return a * 2
			})
			b := aw.Await(loc.Here(), inner).(int)
			return b + 1
		})
		outer.Then(loc.Here(), handler("h", &got), nil)
	})
	if len(got) != 1 || got[0] != 21 {
		t.Fatalf("got = %v", got)
	}
}

func TestAwaitRegistrationEmitsAPIEvent(t *testing.T) {
	l := eventloop.New(eventloop.Options{})
	rec := &apiRecorder{}
	l.Probes().Attach(rec)
	main := vm.NewFunc("main", func([]vm.Value) vm.Value {
		p := Resolved(l, loc.Here(), 1)
		Go(l, loc.Here(), "af", func(aw *Awaiter) vm.Value {
			aw.Await(loc.Here(), p)
			return vm.Undefined
		})
		return vm.Undefined
	})
	if err := l.Run(main); err != nil {
		t.Fatal(err)
	}
	var sawAsync, sawAwait bool
	for _, ev := range rec.events {
		switch ev.API {
		case APIAsync:
			sawAsync = true
		case APIAwait:
			sawAwait = true
			if len(ev.Regs) != 1 || ev.Regs[0].Callback == nil {
				t.Errorf("await event missing registration: %+v", ev)
			}
		}
	}
	if !sawAsync || !sawAwait {
		t.Fatalf("async=%v await=%v", sawAsync, sawAwait)
	}
}

func TestAwaitInterleavesWithNextTick(t *testing.T) {
	// await resumption is a promise job: a nextTick scheduled before the
	// resumption runs first.
	var order []string
	run(t, func(l *eventloop.Loop) {
		done := Resolved(l, loc.Here(), 1)
		Go(l, loc.Here(), "af", func(aw *Awaiter) vm.Value {
			aw.Await(loc.Here(), done)
			order = append(order, "await-resume")
			return vm.Undefined
		})
		l.NextTick(loc.Here(), vm.NewFunc("t", func([]vm.Value) vm.Value {
			order = append(order, "nextTick")
			return vm.Undefined
		}))
	})
	if len(order) != 2 || order[0] != "nextTick" || order[1] != "await-resume" {
		t.Fatalf("order = %v", order)
	}
}
