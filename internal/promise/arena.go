package promise

import (
	"asyncg/internal/eventloop"
)

// arenaChunk is the number of Promise structs per slab.
const arenaChunk = 256

// arenaKey is the loop-substrate key under which the package keeps its
// per-loop arena.
var arenaKey byte

// arena bump-allocates Promise and reaction structs for one loop. It is
// registered as a loop substrate: the structures persist across loop
// resets, and the loop's reset hook rewinds the arena wholesale — no
// promise is ever freed individually, which is safe because a reset
// abandons every object the previous run created.
type arena struct {
	chunks [][]Promise
	count  int // promises handed out since the last rewind

	reacts []*reaction // every reaction ever created, bump-reused
	rused  int
}

// arenaFor returns (creating on first use) the loop's promise arena.
func arenaFor(l *eventloop.Loop) *arena {
	return l.Substrate(&arenaKey, func() any {
		a := &arena{}
		l.OnReset(a.rewind)
		return a
	}).(*arena)
}

// alloc returns a zeroed Promise slot (its reactions slice keeps the
// capacity it grew in earlier runs).
func (a *arena) alloc() *Promise {
	chunk, used := a.count/arenaChunk, a.count%arenaChunk
	if chunk == len(a.chunks) {
		a.chunks = append(a.chunks, make([]Promise, arenaChunk))
	}
	a.count++
	return &a.chunks[chunk][used]
}

// allocReaction returns a zeroed reaction.
func (a *arena) allocReaction() *reaction {
	if a.rused < len(a.reacts) {
		r := a.reacts[a.rused]
		a.rused++
		return r
	}
	r := &reaction{}
	a.reacts = append(a.reacts, r)
	a.rused++
	return r
}

// rewind zeroes every slot handed out since the last rewind and makes
// them available again. Reaction-slice backing arrays are kept (their
// entries are arena-owned reactions, cleared here for GC hygiene).
func (a *arena) rewind() {
	n := a.count
	for _, chunk := range a.chunks {
		if n == 0 {
			break
		}
		live := chunk
		if n < len(live) {
			live = live[:n]
		}
		for i := range live {
			p := &live[i]
			rs := p.reactions[:cap(p.reactions)]
			for j := range rs {
				rs[j] = nil
			}
			*p = Promise{reactions: rs[:0]}
		}
		n -= len(live)
	}
	a.count = 0
	for i := 0; i < a.rused; i++ {
		*a.reacts[i] = reaction{}
	}
	a.rused = 0
}
