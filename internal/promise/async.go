package promise

import (
	"asyncg/internal/eventloop"
	"asyncg/internal/loc"
	"asyncg/internal/vm"
)

// Awaiter is the handle an async function body uses to await promises.
// It is only valid inside the body it was passed to.
type Awaiter struct{ f *frame }

// yieldMsg flows body → loop: either an await request or completion.
type yieldMsg struct {
	await   *Promise
	at      loc.Loc
	done    bool
	ret     vm.Value
	thrown  *vm.Thrown
	crashed any // non-Thrown panic: re-raised on the loop goroutine
}

// resumeMsg flows loop → body after the awaited promise settles.
type resumeMsg struct {
	val    vm.Value
	thrown *vm.Thrown
}

// frame is one live async-function activation. The body runs on its own
// goroutine, but execution strictly alternates with the loop goroutine
// via the two unbuffered channels — exactly one of them is ever running,
// preserving Node's run-to-completion semantics.
type frame struct {
	loop   *eventloop.Loop
	result *Promise
	name   string
	yield  chan yieldMsg
	resume chan resumeMsg
}

// Go invokes an async function: body starts executing synchronously (as
// JavaScript async functions do) until its first Await, and the returned
// promise settles with the body's result. A Thrown escaping the body
// rejects the promise.
//
// Inside body, use aw.Await to suspend on a promise; a rejected awaited
// promise re-throws into the body (catchable with vm.CatchThrown,
// modelling try/await/catch).
func Go(l *eventloop.Loop, at loc.Loc, name string, body func(aw *Awaiter) vm.Value) *Promise {
	result := newPromise(l, at, "async", nil)
	f := &frame{
		loop:   l,
		result: result,
		name:   name,
		yield:  make(chan yieldMsg),
		resume: make(chan resumeMsg),
	}
	seq := l.NextRegSeq()
	start := vm.NewFuncAt(name, at, func(args []vm.Value) vm.Value {
		go f.run(body)
		f.pump()
		return vm.Undefined
	})
	ev := l.BorrowAPIEvent()
	ev.API = APIAsync
	ev.Loc = at
	ev.Receiver = result.Ref()
	ev.SetOneReg(vm.Registration{Seq: seq, Callback: start, Phase: "sync", Once: true, Role: "async"})
	l.EmitAPIEvent(ev)
	l.ReturnAPIEvent(ev)
	d := l.NewDispatch()
	d.API = APIAsync
	d.RegSeq = seq
	d.Obj = result.Ref()
	_, thrown := l.Invoke(start, nil, d)
	l.RecycleDispatch(d)
	if thrown != nil {
		// Cannot happen through the protocol (body throws are routed
		// through yield), but keep the invariant visible.
		result.settle(thrown.Loc, Rejected, thrown.Value, APIReject)
	}
	return result
}

// run executes the body on its own goroutine, reporting completion (or a
// throw) through the yield channel.
func (f *frame) run(body func(aw *Awaiter) vm.Value) {
	defer func() {
		if r := recover(); r != nil {
			if t, ok := r.(*vm.Thrown); ok {
				f.yield <- yieldMsg{done: true, thrown: t}
				return
			}
			f.yield <- yieldMsg{done: true, crashed: r}
		}
	}()
	ret := body(&Awaiter{f: f})
	if ret == nil {
		ret = vm.Undefined
	}
	f.yield <- yieldMsg{done: true, ret: ret}
}

// pump runs on the loop goroutine: it waits for the body's next yield
// and either settles the result promise or registers the await reaction
// whose job resumes the body.
func (f *frame) pump() {
	msg := <-f.yield
	if msg.done {
		if msg.crashed != nil {
			panic(msg.crashed) // genuine Go panic: crash loudly
		}
		if msg.thrown != nil {
			f.result.settle(msg.thrown.Loc, Rejected, msg.thrown.Value, APIReject)
			return
		}
		f.result.Resolve(loc.Internal, msg.ret)
		return
	}
	awaited := msg.await
	at := msg.at
	seq := f.loop.NextRegSeq()
	resumeFn := vm.NewFuncAt(f.name+":resume", at, func(args []vm.Value) vm.Value {
		var rm resumeMsg
		if awaited.state == Rejected {
			rm.thrown = &vm.Thrown{Value: awaited.value, Loc: at}
		} else {
			rm.val = awaited.value
		}
		f.resume <- rm
		f.pump() // body continues inside this callback execution
		return vm.Undefined
	})
	ev := f.loop.BorrowAPIEvent()
	ev.API = APIAwait
	ev.Loc = at
	ev.Receiver = awaited.Ref()
	ev.Event = "await"
	ev.SetOneReg(vm.Registration{Seq: seq, Callback: resumeFn, Phase: string(eventloop.PhasePromise), Once: true, Role: "await"})
	f.loop.EmitAPIEvent(ev)
	f.loop.ReturnAPIEvent(ev)
	r := arenaFor(f.loop).allocReaction()
	r.onFulfilled = resumeFn
	r.onRejected = resumeFn
	r.regFul = seq
	r.regRej = seq
	r.api = APIAwait
	awaited.addReaction(at, r)
}

// Await suspends the async body until p settles, returning the
// fulfillment value or re-throwing the rejection reason into the body.
// It must be called from the body goroutine it belongs to.
func (aw *Awaiter) Await(at loc.Loc, p *Promise) vm.Value {
	aw.f.yield <- yieldMsg{await: p, at: at}
	rm := <-aw.f.resume
	if rm.thrown != nil {
		panic(rm.thrown)
	}
	return rm.val
}
