package promise

import (
	"testing"
	"time"

	"asyncg/internal/eventloop"
	"asyncg/internal/loc"
	"asyncg/internal/vm"
)

// settleLater resolves or rejects p from a timer after delayMs of
// virtual time.
func settleLater(l *eventloop.Loop, p *Promise, delayMs int, reject bool, v vm.Value) {
	l.SetTimeout(loc.Here(), vm.NewFunc("settler", func([]vm.Value) vm.Value {
		if reject {
			p.Reject(loc.Here(), v)
		} else {
			p.Resolve(loc.Here(), v)
		}
		return vm.Undefined
	}), time.Duration(delayMs)*time.Millisecond)
}

func TestAllResolvesWithAllValues(t *testing.T) {
	var got vm.Value
	run(t, func(l *eventloop.Loop) {
		a := New(l, loc.Here(), nil)
		b := New(l, loc.Here(), nil)
		c := Resolved(l, loc.Here(), "c")
		All(l, loc.Here(), a, b, c).Then(loc.Here(), vm.NewFunc("h", func(args []vm.Value) vm.Value {
			got = args[0]
			return vm.Undefined
		}), nil)
		settleLater(l, a, 2, false, "a")
		settleLater(l, b, 1, false, "b")
	})
	values, ok := got.([]vm.Value)
	if !ok || len(values) != 3 {
		t.Fatalf("got = %#v", got)
	}
	if values[0] != "a" || values[1] != "b" || values[2] != "c" {
		t.Fatalf("values = %v (order must follow inputs, not settle order)", values)
	}
}

func TestAllRejectsOnFirstRejection(t *testing.T) {
	var reason vm.Value
	var fulfilled bool
	run(t, func(l *eventloop.Loop) {
		a := New(l, loc.Here(), nil)
		b := New(l, loc.Here(), nil)
		All(l, loc.Here(), a, b).Then(loc.Here(),
			vm.NewFunc("f", func([]vm.Value) vm.Value { fulfilled = true; return vm.Undefined }),
			vm.NewFunc("r", func(args []vm.Value) vm.Value { reason = args[0]; return vm.Undefined }))
		settleLater(l, a, 1, true, "first-error")
		settleLater(l, b, 2, false, "late-ok")
	})
	if fulfilled {
		t.Fatal("All fulfilled despite a rejection")
	}
	if reason != "first-error" {
		t.Fatalf("reason = %v", reason)
	}
}

func TestAllOfNothingResolvesEmpty(t *testing.T) {
	var got vm.Value
	run(t, func(l *eventloop.Loop) {
		All(l, loc.Here()).Then(loc.Here(), vm.NewFunc("h", func(args []vm.Value) vm.Value {
			got = args[0]
			return vm.Undefined
		}), nil)
	})
	values, ok := got.([]vm.Value)
	if !ok || len(values) != 0 {
		t.Fatalf("got = %#v", got)
	}
}

func TestRaceSettlesWithFirst(t *testing.T) {
	var got vm.Value
	run(t, func(l *eventloop.Loop) {
		a := New(l, loc.Here(), nil)
		b := New(l, loc.Here(), nil)
		Race(l, loc.Here(), a, b).Then(loc.Here(), vm.NewFunc("h", func(args []vm.Value) vm.Value {
			got = args[0]
			return vm.Undefined
		}), nil)
		settleLater(l, a, 5, false, "slow")
		settleLater(l, b, 1, false, "fast")
	})
	if got != "fast" {
		t.Fatalf("got = %v", got)
	}
}

func TestRaceRejectsWithFirstRejection(t *testing.T) {
	var reason vm.Value
	run(t, func(l *eventloop.Loop) {
		a := New(l, loc.Here(), nil)
		b := New(l, loc.Here(), nil)
		Race(l, loc.Here(), a, b).Catch(loc.Here(), vm.NewFunc("c", func(args []vm.Value) vm.Value {
			reason = args[0]
			return vm.Undefined
		}))
		settleLater(l, a, 1, true, "fast-error")
		settleLater(l, b, 5, false, "slow-ok")
	})
	if reason != "fast-error" {
		t.Fatalf("reason = %v", reason)
	}
}

func TestAllSettledNeverRejects(t *testing.T) {
	var got vm.Value
	run(t, func(l *eventloop.Loop) {
		a := Resolved(l, loc.Here(), "ok")
		b := RejectedP(l, loc.Here(), "bad")
		AllSettled(l, loc.Here(), a, b).Then(loc.Here(), vm.NewFunc("h", func(args []vm.Value) vm.Value {
			got = args[0]
			return vm.Undefined
		}), nil)
	})
	outcomes, ok := got.([]Settlement)
	if !ok || len(outcomes) != 2 {
		t.Fatalf("got = %#v", got)
	}
	if outcomes[0].Status != Fulfilled || outcomes[0].Value != "ok" {
		t.Fatalf("outcomes[0] = %+v", outcomes[0])
	}
	if outcomes[1].Status != Rejected || outcomes[1].Value != "bad" {
		t.Fatalf("outcomes[1] = %+v", outcomes[1])
	}
}

func TestAnyResolvesWithFirstFulfillment(t *testing.T) {
	var got vm.Value
	run(t, func(l *eventloop.Loop) {
		a := New(l, loc.Here(), nil)
		b := New(l, loc.Here(), nil)
		Any(l, loc.Here(), a, b).Then(loc.Here(), vm.NewFunc("h", func(args []vm.Value) vm.Value {
			got = args[0]
			return vm.Undefined
		}), nil)
		settleLater(l, a, 1, true, "err")
		settleLater(l, b, 2, false, "winner")
	})
	if got != "winner" {
		t.Fatalf("got = %v", got)
	}
}

func TestAnyRejectsWithAggregateError(t *testing.T) {
	var reason vm.Value
	run(t, func(l *eventloop.Loop) {
		a := RejectedP(l, loc.Here(), "e1")
		b := RejectedP(l, loc.Here(), "e2")
		Any(l, loc.Here(), a, b).Catch(loc.Here(), vm.NewFunc("c", func(args []vm.Value) vm.Value {
			reason = args[0]
			return vm.Undefined
		}))
	})
	agg, ok := reason.(*AggregateError)
	if !ok || len(agg.Reasons) != 2 {
		t.Fatalf("reason = %#v", reason)
	}
	if agg.Reasons[0] != "e1" || agg.Reasons[1] != "e2" {
		t.Fatalf("reasons = %v", agg.Reasons)
	}
}

func TestCombinatorCreateEventCarriesInputRelations(t *testing.T) {
	l := eventloop.New(eventloop.Options{})
	rec := &apiRecorder{}
	l.Probes().Attach(rec)
	var inputIDs []uint64
	main := vm.NewFunc("main", func([]vm.Value) vm.Value {
		a := Resolved(l, loc.Here(), 1)
		b := Resolved(l, loc.Here(), 2)
		inputIDs = []uint64{a.ID(), b.ID()}
		All(l, loc.Here(), a, b)
		return vm.Undefined
	})
	if err := l.Run(main); err != nil {
		t.Fatal(err)
	}
	var found *vm.APIEvent
	for i := range rec.events {
		if rec.events[i].API == APICreate && rec.events[i].Event == "all" {
			found = &rec.events[i]
		}
	}
	if found == nil {
		t.Fatal("no Promise.all create event")
	}
	if len(found.Related) != 2 || found.Related[0].ID != inputIDs[0] || found.Related[1].ID != inputIDs[1] {
		t.Fatalf("Related = %+v, want inputs %v", found.Related, inputIDs)
	}
}
