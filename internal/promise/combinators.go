package promise

import (
	"fmt"

	"asyncg/internal/eventloop"
	"asyncg/internal/loc"
	"asyncg/internal/vm"
)

// Settlement describes one input's outcome in AllSettled results.
type Settlement struct {
	Status State
	Value  vm.Value // fulfillment value or rejection reason
}

// AggregateError is the rejection reason produced by Any when every
// input rejects.
type AggregateError struct {
	Reasons []vm.Value
}

// Error summarizes the aggregate rejection, mirroring the JS
// AggregateError message.
func (e *AggregateError) Error() string {
	return fmt.Sprintf("AggregateError: all %d promises were rejected", len(e.Reasons))
}

func refs(ps []*Promise) []vm.ObjRef {
	out := make([]vm.ObjRef, len(ps))
	for i, p := range ps {
		out[i] = p.Ref()
	}
	return out
}

// observe attaches an internal reaction to p that calls done with the
// outcome once p settles. Combinators count as handling rejections.
func observe(p *Promise, done func(state State, v vm.Value)) {
	r := arenaFor(p.loop).allocReaction()
	r.api = APIPassthrough
	r.after = func(ret vm.Value, thrown *vm.Thrown) {
		done(p.state, p.value)
	}
	p.addReaction(loc.Internal, r)
}

// All resolves with the slice of fulfillment values once every input
// fulfills, or rejects with the first rejection reason.
func All(l *eventloop.Loop, at loc.Loc, ps ...*Promise) *Promise {
	result := newPromise(l, at, "all", refs(ps))
	if len(ps) == 0 {
		result.Resolve(at, []vm.Value{})
		return result
	}
	values := make([]vm.Value, len(ps))
	remaining := len(ps)
	for i, p := range ps {
		i := i
		observe(p, func(state State, v vm.Value) {
			if state == Rejected {
				result.settle(loc.Internal, Rejected, v, APIReject)
				return
			}
			values[i] = v
			remaining--
			if remaining == 0 {
				result.settle(loc.Internal, Fulfilled, values, APIResolve)
			}
		})
	}
	return result
}

// Race settles with the outcome of the first input to settle.
func Race(l *eventloop.Loop, at loc.Loc, ps ...*Promise) *Promise {
	result := newPromise(l, at, "race", refs(ps))
	for _, p := range ps {
		observe(p, func(state State, v vm.Value) {
			if state == Rejected {
				result.settle(loc.Internal, Rejected, v, APIReject)
			} else {
				result.settle(loc.Internal, Fulfilled, v, APIResolve)
			}
		})
	}
	return result
}

// AllSettled resolves with a []Settlement once every input settles; it
// never rejects.
func AllSettled(l *eventloop.Loop, at loc.Loc, ps ...*Promise) *Promise {
	result := newPromise(l, at, "allSettled", refs(ps))
	if len(ps) == 0 {
		result.Resolve(at, []Settlement{})
		return result
	}
	outcomes := make([]Settlement, len(ps))
	remaining := len(ps)
	for i, p := range ps {
		i := i
		observe(p, func(state State, v vm.Value) {
			outcomes[i] = Settlement{Status: state, Value: v}
			remaining--
			if remaining == 0 {
				result.settle(loc.Internal, Fulfilled, outcomes, APIResolve)
			}
		})
	}
	return result
}

// Any resolves with the first fulfillment value, or rejects with an
// AggregateError when every input rejects.
func Any(l *eventloop.Loop, at loc.Loc, ps ...*Promise) *Promise {
	result := newPromise(l, at, "any", refs(ps))
	if len(ps) == 0 {
		result.Reject(at, &AggregateError{})
		return result
	}
	reasons := make([]vm.Value, len(ps))
	remaining := len(ps)
	for i, p := range ps {
		i := i
		observe(p, func(state State, v vm.Value) {
			if state == Fulfilled {
				result.settle(loc.Internal, Fulfilled, v, APIResolve)
				return
			}
			reasons[i] = v
			remaining--
			if remaining == 0 {
				result.settle(loc.Internal, Rejected, &AggregateError{Reasons: reasons}, APIReject)
			}
		})
	}
	return result
}
