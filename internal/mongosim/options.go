package mongosim

import (
	"sort"

	"asyncg/internal/loc"
	"asyncg/internal/vm"
)

// FindOptions refine a query: sort key, direction, offset and limit —
// the subset of the driver's cursor modifiers the benchmark uses.
type FindOptions struct {
	// SortBy is a (possibly dotted) field path; empty means insertion
	// order.
	SortBy string
	// Descending flips the sort direction.
	Descending bool
	// Skip drops the first N results.
	Skip int
	// Limit caps the result count; 0 means unlimited.
	Limit int
}

// apply orders and windows a result set.
func (o FindOptions) apply(docs []Document) []Document {
	if o.SortBy != "" {
		sorted := append([]Document(nil), docs...)
		sort.SliceStable(sorted, func(i, j int) bool {
			less := docLess(sorted[i], sorted[j], o.SortBy)
			if o.Descending {
				return !less && !docEqual(sorted[i], sorted[j], o.SortBy)
			}
			return less
		})
		docs = sorted
	}
	if o.Skip > 0 {
		if o.Skip >= len(docs) {
			return nil
		}
		docs = docs[o.Skip:]
	}
	if o.Limit > 0 && o.Limit < len(docs) {
		docs = docs[:o.Limit]
	}
	return docs
}

// docLess compares two documents on a field path. Numbers compare
// numerically, strings lexicographically; missing fields sort first;
// mismatched types compare by type name for stability.
func docLess(a, b Document, path string) bool {
	av, aok := a.Get(path)
	bv, bok := b.Get(path)
	if !aok || !bok {
		return !aok && bok
	}
	an, aIsNum := toFloat(av)
	bn, bIsNum := toFloat(bv)
	if aIsNum && bIsNum {
		return an < bn
	}
	as, aIsStr := av.(string)
	bs, bIsStr := bv.(string)
	if aIsStr && bIsStr {
		return as < bs
	}
	return typeName(av) < typeName(bv)
}

func docEqual(a, b Document, path string) bool {
	return !docLess(a, b, path) && !docLess(b, a, path)
}

func typeName(v any) string {
	switch v.(type) {
	case bool:
		return "bool"
	case string:
		return "string"
	case int, int32, int64, float32, float64:
		return "number"
	default:
		return "other"
	}
}

// FindWith queries with options and calls cb(err, []Document).
func (c *Collection) FindWith(at loc.Loc, query string, opts FindOptions, cb *vm.Function) {
	api := "db." + c.name + ".find"
	seq := c.registerCallback(at, api, cb)
	c.run(api, c.ioKey(), func() result {
		docs, err := c.findSync(query)
		if err == nil {
			docs = opts.apply(docs)
		}
		return result{err: err, docs: docs}
	}, func(res result) {
		c.dispatchCallback(api, seq, cb, errValue(res.err), res.docs)
	})
}

// Distinct collects the distinct values of a field among matching
// documents and calls cb(err, []any) with values in first-seen order.
func (c *Collection) Distinct(at loc.Loc, field, query string, cb *vm.Function) {
	api := "db." + c.name + ".distinct"
	seq := c.registerCallback(at, api, cb)
	c.run(api, c.ioKey(), func() result {
		docs, err := c.findSync(query)
		if err != nil {
			return result{err: err}
		}
		seen := make(map[any]bool)
		var values []any
		for _, doc := range docs {
			v, ok := doc.Get(field)
			if !ok {
				continue
			}
			if _, hashable := v.(Document); hashable {
				continue // nested documents are not comparable keys
			}
			if !seen[v] {
				seen[v] = true
				values = append(values, v)
			}
		}
		return result{docs: nil, n: len(values), distinct: values}
	}, func(res result) {
		c.dispatchCallback(api, seq, cb, errValue(res.err), res.distinct)
	})
}
