package mongosim

import (
	"testing"

	"asyncg/internal/eventloop"
	"asyncg/internal/instrument"
	"asyncg/internal/loc"
	"asyncg/internal/promise"
	"asyncg/internal/vm"
)

func run(t *testing.T, program func(l *eventloop.Loop, db *DB)) *eventloop.Loop {
	t.Helper()
	l := eventloop.New(eventloop.Options{TickLimit: 100_000})
	db := New(l, Options{})
	main := vm.NewFunc("main", func([]vm.Value) vm.Value {
		program(l, db)
		return vm.Undefined
	})
	if err := l.Run(main); err != nil {
		t.Fatal(err)
	}
	if got := l.Uncaught(); len(got) != 0 {
		t.Fatalf("uncaught: %v", got)
	}
	return l
}

func cb(name string, f func(err vm.Value, res vm.Value)) *vm.Function {
	return vm.NewFunc(name, func(args []vm.Value) vm.Value {
		f(vm.Arg(args, 0), vm.Arg(args, 1))
		return vm.Undefined
	})
}

func TestInsertAndFind(t *testing.T) {
	var found []Document
	run(t, func(l *eventloop.Loop, db *DB) {
		c := db.C("flights")
		c.Insert(loc.Here(), Document{"from": "SFO", "to": "JFK", "price": 300}, nil)
		c.Insert(loc.Here(), Document{"from": "SFO", "to": "LAX", "price": 120}, cb("ins", func(err, res vm.Value) {
			c.Find(loc.Here(), `from == "SFO" && price < 200`, cb("find", func(err, res vm.Value) {
				if !vm.IsUndefined(err) {
					t.Errorf("find err = %v", err)
				}
				found = res.([]Document)
			}))
		}))
	})
	if len(found) != 1 || found[0]["to"] != "LAX" {
		t.Fatalf("found = %v", found)
	}
}

func TestCallbacksAreAsynchronous(t *testing.T) {
	var order []string
	run(t, func(l *eventloop.Loop, db *DB) {
		db.C("x").Insert(loc.Here(), Document{"a": 1}, cb("ins", func(err, res vm.Value) {
			order = append(order, "callback")
		}))
		order = append(order, "sync")
	})
	if len(order) != 2 || order[0] != "sync" {
		t.Fatalf("order = %v", order)
	}
}

func TestFindOne(t *testing.T) {
	var got vm.Value
	run(t, func(l *eventloop.Loop, db *DB) {
		c := db.C("users")
		c.InsertSync(Document{"name": "fred", "age": 30})
		c.InsertSync(Document{"name": "ginger", "age": 40})
		c.FindOne(loc.Here(), `age > 35`, cb("f1", func(err, res vm.Value) { got = res }))
	})
	doc, ok := got.(Document)
	if !ok || doc["name"] != "ginger" {
		t.Fatalf("got = %#v", got)
	}
}

func TestFindOneNoMatchYieldsUndefined(t *testing.T) {
	var got vm.Value = "sentinel"
	run(t, func(l *eventloop.Loop, db *DB) {
		db.C("users").FindOne(loc.Here(), `name == "nobody"`, cb("f1", func(err, res vm.Value) { got = res }))
	})
	if !vm.IsUndefined(got) {
		t.Fatalf("got = %#v", got)
	}
}

func TestUpdateMergesFields(t *testing.T) {
	var n vm.Value
	var after []Document
	run(t, func(l *eventloop.Loop, db *DB) {
		c := db.C("bookings")
		c.InsertSync(Document{"user": "fred", "state": "open"})
		c.InsertSync(Document{"user": "fred", "state": "open"})
		c.InsertSync(Document{"user": "ginger", "state": "open"})
		c.Update(loc.Here(), `user == "fred"`, Document{"state": "cancelled"}, cb("u", func(err, res vm.Value) {
			n = res
			c.Find(loc.Here(), `state == "cancelled"`, cb("f", func(err, res vm.Value) {
				after = res.([]Document)
			}))
		}))
	})
	if n != 2 || len(after) != 2 {
		t.Fatalf("n=%v after=%v", n, after)
	}
}

func TestRemove(t *testing.T) {
	var n vm.Value
	run(t, func(l *eventloop.Loop, db *DB) {
		c := db.C("sessions")
		c.InsertSync(Document{"id": 1})
		c.InsertSync(Document{"id": 2})
		c.Remove(loc.Here(), `id == 1`, cb("rm", func(err, res vm.Value) { n = res }))
	})
	if n != 1 {
		t.Fatalf("n = %v", n)
	}
}

func TestCount(t *testing.T) {
	var n vm.Value
	run(t, func(l *eventloop.Loop, db *DB) {
		c := db.C("flights")
		for i := 0; i < 5; i++ {
			c.InsertSync(Document{"price": 100 * i})
		}
		c.Count(loc.Here(), `price >= 200`, cb("cnt", func(err, res vm.Value) { n = res }))
	})
	if n != 3 {
		t.Fatalf("n = %v", n)
	}
}

func TestBadQueryDeliversError(t *testing.T) {
	var gotErr vm.Value
	run(t, func(l *eventloop.Loop, db *DB) {
		db.C("x").Find(loc.Here(), `broken ==`, cb("f", func(err, res vm.Value) { gotErr = err }))
	})
	if vm.IsUndefined(gotErr) || gotErr == nil {
		t.Fatal("no error delivered for bad query")
	}
}

func TestCursorStreamsDocuments(t *testing.T) {
	var seen int
	var ended bool
	run(t, func(l *eventloop.Loop, db *DB) {
		c := db.C("flights")
		for i := 0; i < 4; i++ {
			c.InsertSync(Document{"i": i})
		}
		cur := c.FindCursor(loc.Here(), `i < 3`)
		cur.On(loc.Here(), "data", vm.NewFunc("onData", func(args []vm.Value) vm.Value {
			seen++
			return vm.Undefined
		}))
		cur.On(loc.Here(), "end", vm.NewFunc("onEnd", func(args []vm.Value) vm.Value {
			ended = true
			return vm.Undefined
		}))
	})
	if seen != 3 || !ended {
		t.Fatalf("seen=%d ended=%v", seen, ended)
	}
}

func TestPromiseInterface(t *testing.T) {
	var got vm.Value
	run(t, func(l *eventloop.Loop, db *DB) {
		c := db.C("customers")
		c.InsertSync(Document{"id": "fred", "status": "gold"})
		c.FindOneP(loc.Here(), `id == "fred"`).
			Then(loc.Here(), vm.NewFunc("use", func(args []vm.Value) vm.Value {
				got = args[0]
				return vm.Undefined
			}), nil).
			Catch(loc.Here(), vm.NewFunc("err", func(args []vm.Value) vm.Value {
				t.Errorf("rejected: %v", args[0])
				return vm.Undefined
			}))
	})
	doc, ok := got.(Document)
	if !ok || doc["status"] != "gold" {
		t.Fatalf("got = %#v", got)
	}
}

func TestPromiseRejectionOnBadQuery(t *testing.T) {
	var reason vm.Value
	run(t, func(l *eventloop.Loop, db *DB) {
		db.C("x").FindP(loc.Here(), `bad ==`).Catch(loc.Here(),
			vm.NewFunc("c", func(args []vm.Value) vm.Value {
				reason = args[0]
				return vm.Undefined
			}))
	})
	if reason == nil {
		t.Fatal("no rejection")
	}
}

func TestPromiseChainAcrossOperations(t *testing.T) {
	var final vm.Value
	run(t, func(l *eventloop.Loop, db *DB) {
		c := db.C("bookings")
		c.InsertP(loc.Here(), Document{"user": "fred", "flight": "SFO-JFK"}).
			Then(loc.Here(), vm.NewFunc("thenFind", func(args []vm.Value) vm.Value {
				return c.FindP(loc.Here(), `user == "fred"`)
			}), nil).
			Then(loc.Here(), vm.NewFunc("thenCount", func(args []vm.Value) vm.Value {
				return len(args[0].([]Document))
			}), nil).
			Then(loc.Here(), vm.NewFunc("final", func(args []vm.Value) vm.Value {
				final = args[0]
				return vm.Undefined
			}), nil).
			Catch(loc.Here(), vm.NewFunc("err", func(args []vm.Value) vm.Value {
				t.Errorf("rejected: %v", args[0])
				return vm.Undefined
			}))
	})
	if final != 1 {
		t.Fatalf("final = %v", final)
	}
}

func TestAwaitOnDBPromises(t *testing.T) {
	var count int
	run(t, func(l *eventloop.Loop, db *DB) {
		c := db.C("flights")
		c.InsertSync(Document{"from": "SFO"})
		c.InsertSync(Document{"from": "SFO"})
		promise.Go(l, loc.Here(), "handler", func(aw *promise.Awaiter) vm.Value {
			docs := aw.Await(loc.Here(), c.FindP(loc.Here(), `from == "SFO"`)).([]Document)
			count = len(docs)
			return vm.Undefined
		})
	})
	if count != 2 {
		t.Fatalf("count = %d", count)
	}
}

func TestDriverTicksGenerateNextTickActivity(t *testing.T) {
	l := eventloop.New(eventloop.Options{TickLimit: 10_000})
	db := New(l, Options{DriverTicks: 3})
	counter := instrument.NewCounter()
	l.Probes().Attach(counter)
	main := vm.NewFunc("main", func([]vm.Value) vm.Value {
		db.C("x").Find(loc.Here(), ``, cb("f", func(err, res vm.Value) {}))
		return vm.Undefined
	})
	if err := l.Run(main); err != nil {
		t.Fatal(err)
	}
	if counter.NextTick != 3 {
		t.Fatalf("driver nextTick executions = %d, want 3", counter.NextTick)
	}
}

func TestUpdateIDRejected(t *testing.T) {
	var gotErr vm.Value
	run(t, func(l *eventloop.Loop, db *DB) {
		c := db.C("x")
		c.InsertSync(Document{"a": 1})
		c.Update(loc.Here(), ``, Document{"_id": 99}, cb("u", func(err, res vm.Value) { gotErr = err }))
	})
	if vm.IsUndefined(gotErr) {
		t.Fatal("updating _id succeeded")
	}
}

func TestFindWithSortAndLimit(t *testing.T) {
	var got []Document
	run(t, func(l *eventloop.Loop, db *DB) {
		c := db.C("flights")
		for _, price := range []int{300, 100, 500, 200, 400} {
			c.InsertSync(Document{"price": price})
		}
		c.FindWith(loc.Here(), ``, FindOptions{SortBy: "price", Limit: 3},
			cb("f", func(err, res vm.Value) {
				got = res.([]Document)
			}))
	})
	if len(got) != 3 {
		t.Fatalf("got %d docs", len(got))
	}
	for i, want := range []int{100, 200, 300} {
		if got[i]["price"] != want {
			t.Fatalf("got[%d] = %v, want %d", i, got[i]["price"], want)
		}
	}
}

func TestFindWithDescendingAndSkip(t *testing.T) {
	var got []Document
	run(t, func(l *eventloop.Loop, db *DB) {
		c := db.C("x")
		for _, name := range []string{"b", "d", "a", "c"} {
			c.InsertSync(Document{"name": name})
		}
		c.FindWith(loc.Here(), ``, FindOptions{SortBy: "name", Descending: true, Skip: 1},
			cb("f", func(err, res vm.Value) {
				got = res.([]Document)
			}))
	})
	want := []string{"c", "b", "a"}
	if len(got) != len(want) {
		t.Fatalf("got = %v", got)
	}
	for i := range want {
		if got[i]["name"] != want[i] {
			t.Fatalf("got[%d] = %v", i, got[i]["name"])
		}
	}
}

func TestFindWithSkipPastEnd(t *testing.T) {
	var got vm.Value = "sentinel"
	run(t, func(l *eventloop.Loop, db *DB) {
		c := db.C("x")
		c.InsertSync(Document{"a": 1})
		c.FindWith(loc.Here(), ``, FindOptions{Skip: 10},
			cb("f", func(err, res vm.Value) { got = res }))
	})
	docs, _ := got.([]Document)
	if len(docs) != 0 {
		t.Fatalf("got = %v", got)
	}
}

func TestFindWithSortStability(t *testing.T) {
	// Equal keys keep insertion order (stable sort).
	var got []Document
	run(t, func(l *eventloop.Loop, db *DB) {
		c := db.C("x")
		c.InsertSync(Document{"k": 1, "tag": "first"})
		c.InsertSync(Document{"k": 1, "tag": "second"})
		c.InsertSync(Document{"k": 0, "tag": "zero"})
		c.FindWith(loc.Here(), ``, FindOptions{SortBy: "k"},
			cb("f", func(err, res vm.Value) { got = res.([]Document) }))
	})
	if got[0]["tag"] != "zero" || got[1]["tag"] != "first" || got[2]["tag"] != "second" {
		t.Fatalf("got = %v", got)
	}
}

func TestDistinct(t *testing.T) {
	var got []any
	run(t, func(l *eventloop.Loop, db *DB) {
		c := db.C("flights")
		for _, from := range []string{"SFO", "JFK", "SFO", "LAX", "JFK"} {
			c.InsertSync(Document{"from": from})
		}
		c.Distinct(loc.Here(), "from", ``, cb("d", func(err, res vm.Value) {
			got = res.([]any)
		}))
	})
	want := []any{"SFO", "JFK", "LAX"}
	if len(got) != len(want) {
		t.Fatalf("got = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got = %v, want %v", got, want)
		}
	}
}

func TestDistinctWithQuery(t *testing.T) {
	var got []any
	run(t, func(l *eventloop.Loop, db *DB) {
		c := db.C("flights")
		c.InsertSync(Document{"from": "SFO", "price": 100})
		c.InsertSync(Document{"from": "JFK", "price": 900})
		c.InsertSync(Document{"from": "LAX", "price": 150})
		c.Distinct(loc.Here(), "from", `price < 500`, cb("d", func(err, res vm.Value) {
			got = res.([]any)
		}))
	})
	if len(got) != 2 || got[0] != "SFO" || got[1] != "LAX" {
		t.Fatalf("got = %v", got)
	}
}
