package mongosim

import (
	"strings"
	"testing"
	"testing/quick"
)

func mustMatch(t *testing.T, query string, doc Document, want bool) {
	t.Helper()
	e, err := Compile(query)
	if err != nil {
		t.Fatalf("Compile(%q): %v", query, err)
	}
	if got := e.Match(doc); got != want {
		t.Fatalf("Match(%q, %v) = %v, want %v", query, doc, got, want)
	}
}

func TestCompileComparisons(t *testing.T) {
	doc := Document{"price": 450, "from": "SFO", "firstClass": true}
	cases := []struct {
		q    string
		want bool
	}{
		{`price == 450`, true},
		{`price != 450`, false},
		{`price < 500`, true},
		{`price <= 450`, true},
		{`price > 450`, false},
		{`price >= 451`, false},
		{`from == "SFO"`, true},
		{`from == 'SFO'`, true},
		{`from != "JFK"`, true},
		{`from ~ "SF"`, true},
		{`from ~ "LA"`, false},
		{`firstClass == true`, true},
		{`firstClass != true`, false},
	}
	for _, tc := range cases {
		mustMatch(t, tc.q, doc, tc.want)
	}
}

func TestCompileBooleanStructure(t *testing.T) {
	doc := Document{"a": 1, "b": 2}
	cases := []struct {
		q    string
		want bool
	}{
		{`a == 1 && b == 2`, true},
		{`a == 1 && b == 3`, false},
		{`a == 9 || b == 2`, true},
		{`a == 9 || b == 9`, false},
		{`!(a == 9)`, true},
		{`!(a == 1)`, false},
		{`(a == 9 || b == 2) && a == 1`, true},
		{`a == 1 && b == 2 || a == 9`, true}, // && binds tighter than ||
		{`true`, true},
		{`false`, false},
		{`!false`, true},
	}
	for _, tc := range cases {
		mustMatch(t, tc.q, doc, tc.want)
	}
}

func TestEmptyQueryMatchesAll(t *testing.T) {
	mustMatch(t, "", Document{"x": 1}, true)
	mustMatch(t, "   ", Document{}, true)
}

func TestDottedPaths(t *testing.T) {
	doc := Document{"addr": Document{"city": "Lugano", "zip": 6900}}
	mustMatch(t, `addr.city == "Lugano"`, doc, true)
	mustMatch(t, `addr.zip == 6900`, doc, true)
	mustMatch(t, `addr.country == "CH"`, doc, false)
}

func TestMissingFieldNeverMatches(t *testing.T) {
	mustMatch(t, `ghost == 1`, Document{"x": 1}, false)
	mustMatch(t, `ghost != 1`, Document{"x": 1}, false) // mongo-style: absent ≠ comparable
}

func TestTypeMismatchNeverMatches(t *testing.T) {
	doc := Document{"x": "string"}
	mustMatch(t, `x == 5`, doc, false)
	mustMatch(t, `x < 5`, doc, false)
}

func TestNumericTypesCoerce(t *testing.T) {
	for _, v := range []any{int(7), int32(7), int64(7), float32(7), float64(7)} {
		mustMatch(t, `x == 7`, Document{"x": v}, true)
	}
}

func TestNegativeNumbers(t *testing.T) {
	mustMatch(t, `x == -3`, Document{"x": -3}, true)
	mustMatch(t, `x < -1`, Document{"x": -3}, true)
}

func TestStringEscapes(t *testing.T) {
	mustMatch(t, `x == "a\"b"`, Document{"x": `a"b`}, true)
}

func TestCompileErrors(t *testing.T) {
	bad := []string{
		`price =`,
		`price = 5`,
		`== 5`,
		`price == `,
		`(price == 5`,
		`price == 5)`,
		`price & 5`,
		`price | 5`,
		`price == "unterminated`,
		`price == 5 extra`,
		`price === 5`,
		`firstClass > true`,
		`$ == 1`,
	}
	for _, q := range bad {
		if _, err := Compile(q); err == nil {
			t.Errorf("Compile(%q) succeeded, want error", q)
		}
	}
}

func TestExprStringRendersAndReparses(t *testing.T) {
	queries := []string{
		`a == 1 && b == 2`,
		`a == 9 || !(b < 3)`,
		`name ~ "fred" && age >= 21`,
		`ok == true`,
	}
	for _, q := range queries {
		e, err := Compile(q)
		if err != nil {
			t.Fatal(err)
		}
		again, err := Compile(e.String())
		if err != nil {
			t.Fatalf("re-parse of %q (from %q): %v", e.String(), q, err)
		}
		if again.String() != e.String() {
			t.Fatalf("not a fixed point: %q → %q", e.String(), again.String())
		}
	}
}

// Property: rendering a compiled expression and re-compiling it yields
// semantically identical matching on arbitrary numeric documents.
func TestQuickRenderRoundTripSemantics(t *testing.T) {
	f := func(a, b, threshold int8) bool {
		doc := Document{"a": int(a), "b": int(b)}
		q := "a <= " + itoa(int(threshold)) + " || b > " + itoa(int(threshold))
		e1, err := Compile(q)
		if err != nil {
			return false
		}
		e2, err := Compile(e1.String())
		if err != nil {
			return false
		}
		return e1.Match(doc) == e2.Match(doc)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: De Morgan — !(p && q) matches exactly when !p || !q does.
func TestQuickDeMorgan(t *testing.T) {
	f := func(a, b int8) bool {
		doc := Document{"a": int(a), "b": int(b)}
		lhs := MustCompile(`!(a > 0 && b > 0)`)
		rhs := MustCompile(`!(a > 0) || !(b > 0)`)
		return lhs.Match(doc) == rhs.Match(doc)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: string containment query agrees with strings.Contains.
func TestQuickContains(t *testing.T) {
	f := func(hay, needle string) bool {
		if strings.ContainsAny(needle, `"\`) || strings.ContainsAny(hay, `"\`) {
			return true // quoting edge cases covered elsewhere
		}
		doc := Document{"s": hay}
		e, err := Compile(`s ~ "` + needle + `"`)
		if err != nil {
			return false
		}
		return e.Match(doc) == strings.Contains(hay, needle)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func itoa(n int) string {
	if n < 0 {
		return "-" + itoa(-n)
	}
	if n < 10 {
		return string(rune('0' + n))
	}
	return itoa(n/10) + string(rune('0'+n%10))
}

func TestMustCompilePanicsOnBadQuery(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustCompile did not panic")
		}
	}()
	MustCompile(`broken ==`)
}

func TestDocumentClone(t *testing.T) {
	orig := Document{"a": 1, "nested": Document{"b": 2}}
	cp := orig.Clone()
	cp["a"] = 99
	cp["nested"].(Document)["b"] = 99
	if orig["a"] != 1 || orig["nested"].(Document)["b"] != 2 {
		t.Fatalf("clone aliases original: %v", orig)
	}
}
