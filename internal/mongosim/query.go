// Package mongosim simulates the MongoDB dependency of the AcmeAir
// benchmark: an in-memory document store with asynchronous access
// through the event loop, offering both the classic callback interface
// and the promise interface (the paper modified AcmeAir to use the
// promise-version mongodb interface to exercise AsyncG's promise
// tracking). Queries use a small expression language compiled by the
// lexer/parser in this file.
package mongosim

import (
	"fmt"
	"strconv"
	"strings"
)

// Document is one stored record.
type Document map[string]any

// Get resolves a (possibly dotted) field path.
func (d Document) Get(path string) (any, bool) {
	cur := any(d)
	for _, part := range strings.Split(path, ".") {
		m, ok := cur.(Document)
		if !ok {
			if mm, ok2 := cur.(map[string]any); ok2 {
				m = Document(mm)
			} else {
				return nil, false
			}
		}
		v, ok := m[part]
		if !ok {
			return nil, false
		}
		cur = v
	}
	return cur, true
}

// Clone deep-copies one level of the document (values are shared except
// nested Documents, which are cloned recursively).
func (d Document) Clone() Document {
	out := make(Document, len(d))
	for k, v := range d {
		if sub, ok := v.(Document); ok {
			out[k] = sub.Clone()
		} else {
			out[k] = v
		}
	}
	return out
}

// --- Query language ---
//
// Grammar:
//
//	expr    := or
//	or      := and ( "||" and )*
//	and     := unary ( "&&" unary )*
//	unary   := "!" unary | primary
//	primary := "(" expr ")" | path op literal | "true" | "false"
//	op      := "==" | "!=" | "<" | "<=" | ">" | ">=" | "~" (contains)
//	literal := number | quoted string | true | false
//	path    := ident ( "." ident )*

// tokKind enumerates lexer token kinds.
type tokKind int

const (
	tokEOF tokKind = iota
	tokIdent
	tokNumber
	tokString
	tokOp     // comparison operators
	tokAndAnd // &&
	tokOrOr   // ||
	tokBang   // !
	tokLParen
	tokRParen
	tokBool
)

type token struct {
	kind tokKind
	text string
	pos  int
}

// lexer tokenizes a query string.
type lexer struct {
	src []byte
	pos int
}

func (lx *lexer) error(pos int, format string, args ...any) error {
	return fmt.Errorf("mongosim: query syntax error at %d: %s", pos, fmt.Sprintf(format, args...))
}

func (lx *lexer) next() (token, error) {
	for lx.pos < len(lx.src) && (lx.src[lx.pos] == ' ' || lx.src[lx.pos] == '\t') {
		lx.pos++
	}
	if lx.pos >= len(lx.src) {
		return token{kind: tokEOF, pos: lx.pos}, nil
	}
	start := lx.pos
	c := lx.src[lx.pos]
	switch {
	case c == '(':
		lx.pos++
		return token{kind: tokLParen, text: "(", pos: start}, nil
	case c == ')':
		lx.pos++
		return token{kind: tokRParen, text: ")", pos: start}, nil
	case c == '&':
		if lx.pos+1 < len(lx.src) && lx.src[lx.pos+1] == '&' {
			lx.pos += 2
			return token{kind: tokAndAnd, text: "&&", pos: start}, nil
		}
		return token{}, lx.error(start, "expected '&&'")
	case c == '|':
		if lx.pos+1 < len(lx.src) && lx.src[lx.pos+1] == '|' {
			lx.pos += 2
			return token{kind: tokOrOr, text: "||", pos: start}, nil
		}
		return token{}, lx.error(start, "expected '||'")
	case c == '!':
		if lx.pos+1 < len(lx.src) && lx.src[lx.pos+1] == '=' {
			lx.pos += 2
			return token{kind: tokOp, text: "!=", pos: start}, nil
		}
		lx.pos++
		return token{kind: tokBang, text: "!", pos: start}, nil
	case c == '=':
		if lx.pos+1 < len(lx.src) && lx.src[lx.pos+1] == '=' {
			lx.pos += 2
			return token{kind: tokOp, text: "==", pos: start}, nil
		}
		return token{}, lx.error(start, "expected '=='")
	case c == '<' || c == '>':
		op := string(c)
		lx.pos++
		if lx.pos < len(lx.src) && lx.src[lx.pos] == '=' {
			op += "="
			lx.pos++
		}
		return token{kind: tokOp, text: op, pos: start}, nil
	case c == '~':
		lx.pos++
		return token{kind: tokOp, text: "~", pos: start}, nil
	case c == '"' || c == '\'':
		quote := c
		lx.pos++
		var sb strings.Builder
		for lx.pos < len(lx.src) && lx.src[lx.pos] != quote {
			if lx.src[lx.pos] == '\\' && lx.pos+1 < len(lx.src) {
				lx.pos++
			}
			sb.WriteByte(lx.src[lx.pos])
			lx.pos++
		}
		if lx.pos >= len(lx.src) {
			return token{}, lx.error(start, "unterminated string")
		}
		lx.pos++ // closing quote
		return token{kind: tokString, text: sb.String(), pos: start}, nil
	case c >= '0' && c <= '9' || c == '-':
		lx.pos++
		for lx.pos < len(lx.src) && (lx.src[lx.pos] >= '0' && lx.src[lx.pos] <= '9' || lx.src[lx.pos] == '.') {
			lx.pos++
		}
		return token{kind: tokNumber, text: string(lx.src[start:lx.pos]), pos: start}, nil
	case isIdentStart(c):
		lx.pos++
		for lx.pos < len(lx.src) && isIdentPart(lx.src[lx.pos]) {
			lx.pos++
		}
		text := string(lx.src[start:lx.pos])
		if text == "true" || text == "false" {
			return token{kind: tokBool, text: text, pos: start}, nil
		}
		return token{kind: tokIdent, text: text, pos: start}, nil
	default:
		return token{}, lx.error(start, "unexpected character %q", string(c))
	}
}

func isIdentStart(c byte) bool {
	return c == '_' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z'
}

func isIdentPart(c byte) bool { return isIdentStart(c) || c >= '0' && c <= '9' || c == '.' }

// Expr is a compiled query expression.
type Expr interface {
	Match(doc Document) bool
	String() string
}

type boolLit bool

func (b boolLit) Match(Document) bool { return bool(b) }
func (b boolLit) String() string      { return strconv.FormatBool(bool(b)) }

type notExpr struct{ inner Expr }

func (n notExpr) Match(d Document) bool { return !n.inner.Match(d) }
func (n notExpr) String() string        { return "!(" + n.inner.String() + ")" }

type binExpr struct {
	or    bool
	left  Expr
	right Expr
}

func (b binExpr) Match(d Document) bool {
	if b.or {
		return b.left.Match(d) || b.right.Match(d)
	}
	return b.left.Match(d) && b.right.Match(d)
}

func (b binExpr) String() string {
	op := "&&"
	if b.or {
		op = "||"
	}
	return "(" + b.left.String() + " " + op + " " + b.right.String() + ")"
}

// cmpExpr compares a document field to a literal.
type cmpExpr struct {
	path string
	op   string
	num  float64
	str  string
	b    bool
	kind tokKind // literal kind
}

func (c cmpExpr) String() string {
	switch c.kind {
	case tokString:
		return fmt.Sprintf("%s %s %q", c.path, c.op, c.str)
	case tokBool:
		return fmt.Sprintf("%s %s %v", c.path, c.op, c.b)
	default:
		return fmt.Sprintf("%s %s %v", c.path, c.op, c.num)
	}
}

func (c cmpExpr) Match(d Document) bool {
	v, ok := d.Get(c.path)
	if !ok {
		return false
	}
	switch c.kind {
	case tokString:
		s, ok := v.(string)
		if !ok {
			return false
		}
		switch c.op {
		case "==":
			return s == c.str
		case "!=":
			return s != c.str
		case "~":
			return strings.Contains(s, c.str)
		case "<":
			return s < c.str
		case "<=":
			return s <= c.str
		case ">":
			return s > c.str
		case ">=":
			return s >= c.str
		}
	case tokBool:
		bv, ok := v.(bool)
		if !ok {
			return false
		}
		switch c.op {
		case "==":
			return bv == c.b
		case "!=":
			return bv != c.b
		}
	case tokNumber:
		n, ok := toFloat(v)
		if !ok {
			return false
		}
		switch c.op {
		case "==":
			return n == c.num
		case "!=":
			return n != c.num
		case "<":
			return n < c.num
		case "<=":
			return n <= c.num
		case ">":
			return n > c.num
		case ">=":
			return n >= c.num
		}
	}
	return false
}

func toFloat(v any) (float64, bool) {
	switch t := v.(type) {
	case int:
		return float64(t), true
	case int32:
		return float64(t), true
	case int64:
		return float64(t), true
	case float32:
		return float64(t), true
	case float64:
		return t, true
	default:
		return 0, false
	}
}

// parser is a recursive-descent parser over the token stream.
type parser struct {
	lx  *lexer
	cur token
}

// Compile parses a query expression. The empty query matches everything.
func Compile(query string) (Expr, error) {
	query = strings.TrimSpace(query)
	if query == "" {
		return boolLit(true), nil
	}
	p := &parser{lx: &lexer{src: []byte(query)}}
	if err := p.advance(); err != nil {
		return nil, err
	}
	e, err := p.parseOr()
	if err != nil {
		return nil, err
	}
	if p.cur.kind != tokEOF {
		return nil, p.lx.error(p.cur.pos, "unexpected trailing %q", p.cur.text)
	}
	return e, nil
}

// MustCompile is Compile that panics on error, for static queries.
func MustCompile(query string) Expr {
	e, err := Compile(query)
	if err != nil {
		panic(err)
	}
	return e
}

func (p *parser) advance() error {
	t, err := p.lx.next()
	if err != nil {
		return err
	}
	p.cur = t
	return nil
}

func (p *parser) parseOr() (Expr, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.cur.kind == tokOrOr {
		if err := p.advance(); err != nil {
			return nil, err
		}
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		left = binExpr{or: true, left: left, right: right}
	}
	return left, nil
}

func (p *parser) parseAnd() (Expr, error) {
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for p.cur.kind == tokAndAnd {
		if err := p.advance(); err != nil {
			return nil, err
		}
		right, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		left = binExpr{left: left, right: right}
	}
	return left, nil
}

func (p *parser) parseUnary() (Expr, error) {
	if p.cur.kind == tokBang {
		if err := p.advance(); err != nil {
			return nil, err
		}
		inner, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return notExpr{inner: inner}, nil
	}
	return p.parsePrimary()
}

func (p *parser) parsePrimary() (Expr, error) {
	switch p.cur.kind {
	case tokLParen:
		if err := p.advance(); err != nil {
			return nil, err
		}
		e, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		if p.cur.kind != tokRParen {
			return nil, p.lx.error(p.cur.pos, "expected ')'")
		}
		return e, p.advance()
	case tokBool:
		lit := boolLit(p.cur.text == "true")
		return lit, p.advance()
	case tokIdent:
		path := p.cur.text
		if err := p.advance(); err != nil {
			return nil, err
		}
		if p.cur.kind != tokOp {
			return nil, p.lx.error(p.cur.pos, "expected comparison operator after %q", path)
		}
		op := p.cur.text
		if err := p.advance(); err != nil {
			return nil, err
		}
		c := cmpExpr{path: path, op: op, kind: p.cur.kind}
		switch p.cur.kind {
		case tokNumber:
			n, err := strconv.ParseFloat(p.cur.text, 64)
			if err != nil {
				return nil, p.lx.error(p.cur.pos, "bad number %q", p.cur.text)
			}
			c.num = n
		case tokString:
			c.str = p.cur.text
		case tokBool:
			c.b = p.cur.text == "true"
			if op != "==" && op != "!=" {
				return nil, p.lx.error(p.cur.pos, "operator %q not defined on booleans", op)
			}
		default:
			return nil, p.lx.error(p.cur.pos, "expected literal after %q", op)
		}
		return c, p.advance()
	default:
		return nil, p.lx.error(p.cur.pos, "unexpected %q", p.cur.text)
	}
}
