package mongosim

import (
	"fmt"
	"time"

	"asyncg/internal/eventloop"
	"asyncg/internal/events"
	"asyncg/internal/loc"
	"asyncg/internal/promise"
	"asyncg/internal/vm"
)

// Options configures the simulated database.
type Options struct {
	// Latency is the virtual I/O latency per operation.
	Latency time.Duration
	// DriverTicks is the number of internal process.nextTick hops the
	// driver performs per operation before delivering the result,
	// modelling the real mongodb driver's internal deferrals. These
	// hops are what makes nextTick the most-executed async API per
	// AcmeAir request in the paper's Fig. 6(b).
	DriverTicks int
}

// Defaults applied when Options fields are zero.
const (
	DefaultLatency     = 800 * time.Microsecond
	DefaultDriverTicks = 4
)

// DB is a simulated MongoDB instance bound to one event loop.
type DB struct {
	loop        *eventloop.Loop
	opts        Options
	collections map[string]*Collection
	idSeq       int64
}

// New creates a database.
func New(l *eventloop.Loop, opts Options) *DB {
	if opts.Latency == 0 {
		opts.Latency = DefaultLatency
	}
	if opts.DriverTicks == 0 {
		opts.DriverTicks = DefaultDriverTicks
	}
	return &DB{
		loop:        l,
		opts:        opts,
		collections: make(map[string]*Collection),
	}
}

// C returns (creating on first use) the named collection.
func (db *DB) C(name string) *Collection {
	col, ok := db.collections[name]
	if !ok {
		col = &Collection{db: db, name: name}
		db.collections[name] = col
	}
	return col
}

// Collection is one document collection.
type Collection struct {
	db   *DB
	name string
	docs []Document
	key  uint64 // independence key for read-only ops (POR)
}

// Name returns the collection name.
func (c *Collection) Name() string { return c.name }

// Len returns the number of stored documents (synchronous; test helper).
func (c *Collection) Len() int { return len(c.docs) }

// InsertSync stores a document synchronously — for data loaders that
// populate the DB before the benchmark starts (the AcmeAir loader).
func (c *Collection) InsertSync(doc Document) Document {
	stored := doc.Clone()
	if _, ok := stored["_id"]; !ok {
		c.db.idSeq++
		stored["_id"] = c.db.idSeq
	}
	c.docs = append(c.docs, stored)
	return stored
}

// result carries an operation outcome to its callback.
type result struct {
	err      error
	docs     []Document
	doc      Document
	n        int
	distinct []any
}

// ioKey returns the collection's independence key, allocating on first
// use. Only read-only operations carry it: reads on distinct collections
// touch disjoint document sets, so their completion order commutes.
// Writes always pass key 0 — every insert draws from the DB-wide _id
// sequence, so even writes to different collections do not commute.
func (c *Collection) ioKey() uint64 {
	if c.key == 0 {
		c.key = c.db.loop.NextIOKey()
	}
	return c.key
}

// run schedules the operation op on the I/O phase after the DB latency,
// hops through the driver's internal nextTicks, and finally delivers via
// deliver. api names the user-facing operation in probe events. key is
// the independence key of the completion (see ioKey).
func (c *Collection) run(api string, key uint64, op func() result, deliver func(result)) {
	l := c.db.loop
	ticks := c.db.opts.DriverTicks
	ioFn := vm.NewFuncAt("(db.io)", loc.Internal, func([]vm.Value) vm.Value {
		res := op()
		// Internal driver deferrals: each hop is a real nextTick with
		// an internal-library source location.
		var hop func(k int)
		hop = func(k int) {
			if k == 0 {
				deliver(res)
				return
			}
			l.NextTick(loc.Internal, vm.NewFuncAt("(driver.hop)", loc.Internal,
				func([]vm.Value) vm.Value {
					hop(k - 1)
					return vm.Undefined
				}))
		}
		hop(ticks)
		return vm.Undefined
	})
	l.ScheduleIOKeyedAt(l.Now()+l.PerturbLatency(c.db.opts.Latency), key, ioFn, nil, &vm.Dispatch{API: api})
}

// registerCallback announces the user callback registration under the
// operation's API name and returns the registration sequence.
func (c *Collection) registerCallback(at loc.Loc, api string, cb *vm.Function) uint64 {
	seq := c.db.loop.NextRegSeq()
	c.db.loop.EmitAPIEvent(&vm.APIEvent{
		API:  api,
		Loc:  at,
		Regs: []vm.Registration{{Seq: seq, Callback: cb, Phase: string(eventloop.PhaseNextTick), Once: true, Role: "callback"}},
	})
	return seq
}

// dispatchCallback delivers (err, payload...) to cb on the nextTick
// queue under the operation's API name.
func (c *Collection) dispatchCallback(api string, seq uint64, cb *vm.Function, args ...vm.Value) {
	c.db.loop.ScheduleTickJob(cb, args, &vm.Dispatch{API: api, RegSeq: seq})
}

// errValue renders an error for callback delivery (nil → Undefined).
func errValue(err error) vm.Value {
	if err == nil {
		return vm.Undefined
	}
	return err.Error()
}

// Insert stores a document and calls cb(err, doc).
func (c *Collection) Insert(at loc.Loc, doc Document, cb *vm.Function) {
	api := "db." + c.name + ".insert"
	var seq uint64
	if cb != nil {
		seq = c.registerCallback(at, api, cb)
	}
	c.run(api, 0, func() result {
		return result{doc: c.InsertSync(doc)}
	}, func(res result) {
		if cb != nil {
			c.dispatchCallback(api, seq, cb, errValue(res.err), res.doc)
		}
	})
}

// Find queries documents and calls cb(err, []Document).
func (c *Collection) Find(at loc.Loc, query string, cb *vm.Function) {
	api := "db." + c.name + ".find"
	seq := c.registerCallback(at, api, cb)
	c.run(api, c.ioKey(), func() result {
		docs, err := c.findSync(query)
		return result{err: err, docs: docs}
	}, func(res result) {
		c.dispatchCallback(api, seq, cb, errValue(res.err), res.docs)
	})
}

// FindOne queries the first matching document and calls cb(err, doc);
// doc is Undefined when nothing matches.
func (c *Collection) FindOne(at loc.Loc, query string, cb *vm.Function) {
	api := "db." + c.name + ".findOne"
	seq := c.registerCallback(at, api, cb)
	c.run(api, c.ioKey(), func() result {
		docs, err := c.findSync(query)
		res := result{err: err}
		if len(docs) > 0 {
			res.doc = docs[0]
		}
		return res
	}, func(res result) {
		var doc vm.Value = vm.Undefined
		if res.doc != nil {
			doc = res.doc
		}
		c.dispatchCallback(api, seq, cb, errValue(res.err), doc)
	})
}

// Update merges set into every matching document and calls cb(err, n).
func (c *Collection) Update(at loc.Loc, query string, set Document, cb *vm.Function) {
	api := "db." + c.name + ".update"
	var seq uint64
	if cb != nil {
		seq = c.registerCallback(at, api, cb)
	}
	c.run(api, 0, func() result {
		n, err := c.updateSync(query, set)
		return result{err: err, n: n}
	}, func(res result) {
		if cb != nil {
			c.dispatchCallback(api, seq, cb, errValue(res.err), res.n)
		}
	})
}

// Remove deletes matching documents and calls cb(err, n).
func (c *Collection) Remove(at loc.Loc, query string, cb *vm.Function) {
	api := "db." + c.name + ".remove"
	var seq uint64
	if cb != nil {
		seq = c.registerCallback(at, api, cb)
	}
	c.run(api, 0, func() result {
		n, err := c.removeSync(query)
		return result{err: err, n: n}
	}, func(res result) {
		if cb != nil {
			c.dispatchCallback(api, seq, cb, errValue(res.err), res.n)
		}
	})
}

// Count calls cb(err, n) with the number of matching documents.
func (c *Collection) Count(at loc.Loc, query string, cb *vm.Function) {
	api := "db." + c.name + ".count"
	seq := c.registerCallback(at, api, cb)
	c.run(api, c.ioKey(), func() result {
		docs, err := c.findSync(query)
		return result{err: err, n: len(docs)}
	}, func(res result) {
		c.dispatchCallback(api, seq, cb, errValue(res.err), res.n)
	})
}

// FindCursor queries documents and streams them through an emitter:
// 'data' per document, 'end' after the last, 'error' on a bad query —
// the driver's cursor interface, whose emitter traffic is part of the
// per-request emitter executions of Fig. 6(b).
func (c *Collection) FindCursor(at loc.Loc, query string) *events.Emitter {
	cursor := events.New(c.db.loop, "cursor:"+c.name, at)
	api := "db." + c.name + ".findCursor"
	c.run(api, c.ioKey(), func() result {
		docs, err := c.findSync(query)
		return result{err: err, docs: docs}
	}, func(res result) {
		if res.err != nil {
			cursor.Emit(loc.Internal, "error", res.err.Error())
			return
		}
		for _, doc := range res.docs {
			cursor.Emit(loc.Internal, "data", doc)
		}
		cursor.Emit(loc.Internal, "end", len(res.docs))
	})
	return cursor
}

// --- Promise interface (the paper's modified AcmeAir uses this) ---

// FindP returns a promise of []Document.
func (c *Collection) FindP(at loc.Loc, query string) *promise.Promise {
	p := promise.New(c.db.loop, at, nil)
	c.run("db."+c.name+".findP", c.ioKey(), func() result {
		docs, err := c.findSync(query)
		return result{err: err, docs: docs}
	}, func(res result) {
		if res.err != nil {
			p.Reject(loc.Internal, res.err.Error())
			return
		}
		p.Resolve(loc.Internal, res.docs)
	})
	return p
}

// FindOneP returns a promise of a Document (Undefined when no match).
func (c *Collection) FindOneP(at loc.Loc, query string) *promise.Promise {
	p := promise.New(c.db.loop, at, nil)
	c.run("db."+c.name+".findOneP", c.ioKey(), func() result {
		docs, err := c.findSync(query)
		res := result{err: err}
		if len(docs) > 0 {
			res.doc = docs[0]
		}
		return res
	}, func(res result) {
		switch {
		case res.err != nil:
			p.Reject(loc.Internal, res.err.Error())
		case res.doc != nil:
			p.Resolve(loc.Internal, res.doc)
		default:
			p.Resolve(loc.Internal, vm.Undefined)
		}
	})
	return p
}

// InsertP returns a promise of the stored Document.
func (c *Collection) InsertP(at loc.Loc, doc Document) *promise.Promise {
	p := promise.New(c.db.loop, at, nil)
	c.run("db."+c.name+".insertP", 0, func() result {
		return result{doc: c.InsertSync(doc)}
	}, func(res result) {
		p.Resolve(loc.Internal, res.doc)
	})
	return p
}

// UpdateP returns a promise of the number of updated documents.
func (c *Collection) UpdateP(at loc.Loc, query string, set Document) *promise.Promise {
	p := promise.New(c.db.loop, at, nil)
	c.run("db."+c.name+".updateP", 0, func() result {
		n, err := c.updateSync(query, set)
		return result{err: err, n: n}
	}, func(res result) {
		if res.err != nil {
			p.Reject(loc.Internal, res.err.Error())
			return
		}
		p.Resolve(loc.Internal, res.n)
	})
	return p
}

// RemoveP returns a promise of the number of removed documents.
func (c *Collection) RemoveP(at loc.Loc, query string) *promise.Promise {
	p := promise.New(c.db.loop, at, nil)
	c.run("db."+c.name+".removeP", 0, func() result {
		n, err := c.removeSync(query)
		return result{err: err, n: n}
	}, func(res result) {
		if res.err != nil {
			p.Reject(loc.Internal, res.err.Error())
			return
		}
		p.Resolve(loc.Internal, res.n)
	})
	return p
}

// --- Synchronous core ---

func (c *Collection) findSync(query string) ([]Document, error) {
	expr, err := Compile(query)
	if err != nil {
		return nil, err
	}
	var out []Document
	for _, doc := range c.docs {
		if expr.Match(doc) {
			out = append(out, doc)
		}
	}
	// MongoDB's natural order is unspecified without a sort, so the
	// result order is an explorable (opt-in) choice point. It covers
	// every read path: Find, FindOne (docs[0]), cursors and promises.
	c.db.loop.Permute(eventloop.ChoiceDataOrder, len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
	return out, nil
}

func (c *Collection) updateSync(query string, set Document) (int, error) {
	expr, err := Compile(query)
	if err != nil {
		return 0, err
	}
	n := 0
	for _, doc := range c.docs {
		if expr.Match(doc) {
			for k, v := range set {
				if k == "_id" {
					return n, fmt.Errorf("mongosim: cannot update _id")
				}
				doc[k] = v
			}
			n++
		}
	}
	return n, nil
}

func (c *Collection) removeSync(query string) (int, error) {
	expr, err := Compile(query)
	if err != nil {
		return 0, err
	}
	kept := c.docs[:0]
	removed := 0
	for _, doc := range c.docs {
		if expr.Match(doc) {
			removed++
			continue
		}
		kept = append(kept, doc)
	}
	c.docs = kept
	return removed, nil
}
