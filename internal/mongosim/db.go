package mongosim

import (
	"fmt"
	"time"

	"asyncg/internal/eventloop"
	"asyncg/internal/events"
	"asyncg/internal/loc"
	"asyncg/internal/promise"
	"asyncg/internal/vm"
)

// Options configures the simulated database.
type Options struct {
	// Latency is the virtual I/O latency per operation.
	Latency time.Duration
	// DriverTicks is the number of internal process.nextTick hops the
	// driver performs per operation before delivering the result,
	// modelling the real mongodb driver's internal deferrals. These
	// hops are what makes nextTick the most-executed async API per
	// AcmeAir request in the paper's Fig. 6(b).
	DriverTicks int
}

// Defaults applied when Options fields are zero.
const (
	DefaultLatency     = 800 * time.Microsecond
	DefaultDriverTicks = 4
)

// DB is a simulated MongoDB instance bound to one event loop.
//
// The DB participates in the session Reset protocol: a loop reset
// empties every collection and restarts the _id sequence, while the
// collection objects themselves (and their interned API names) persist
// for the next run, as do pooled op/hop records and cursor emitters.
type DB struct {
	loop        *eventloop.Loop
	opts        Options
	collections map[string]*Collection
	idSeq       int64

	opFree     []*opRecord
	hopFree    []*hopper
	allCursors []*events.Emitter
	cursorFree []*events.Emitter
}

// New creates a database and registers its reset hook.
func New(l *eventloop.Loop, opts Options) *DB {
	if opts.Latency == 0 {
		opts.Latency = DefaultLatency
	}
	if opts.DriverTicks == 0 {
		opts.DriverTicks = DefaultDriverTicks
	}
	db := &DB{
		loop:        l,
		opts:        opts,
		collections: make(map[string]*Collection),
	}
	l.OnReset(db.reset)
	return db
}

func (db *DB) reset() {
	for _, col := range db.collections {
		for i := range col.docs {
			col.docs[i] = nil
		}
		col.docs = col.docs[:0]
		col.key = 0
	}
	db.idSeq = 0
	for i, cur := range db.allCursors {
		db.cursorFree = append(db.cursorFree, cur)
		db.allCursors[i] = nil
	}
	db.allCursors = db.allCursors[:0]
}

// C returns (creating on first use) the named collection.
func (db *DB) C(name string) *Collection {
	col, ok := db.collections[name]
	if !ok {
		col = &Collection{db: db, name: name}
		col.apis = colAPIs{
			insert:     "db." + name + ".insert",
			find:       "db." + name + ".find",
			findOne:    "db." + name + ".findOne",
			update:     "db." + name + ".update",
			remove:     "db." + name + ".remove",
			count:      "db." + name + ".count",
			findCursor: "db." + name + ".findCursor",
			findP:      "db." + name + ".findP",
			findOneP:   "db." + name + ".findOneP",
			insertP:    "db." + name + ".insertP",
			updateP:    "db." + name + ".updateP",
			removeP:    "db." + name + ".removeP",
			cursorName: "cursor:" + name,
		}
		db.collections[name] = col
	}
	return col
}

// colAPIs interns the per-operation API names, built once per collection.
type colAPIs struct {
	insert, find, findOne, update, remove, count, findCursor string
	findP, findOneP, insertP, updateP, removeP               string
	cursorName                                               string
}

// Collection is one document collection.
type Collection struct {
	db   *DB
	name string
	apis colAPIs
	docs []Document
	key  uint64 // independence key for read-only ops (POR)
}

// Name returns the collection name.
func (c *Collection) Name() string { return c.name }

// Len returns the number of stored documents (synchronous; test helper).
func (c *Collection) Len() int { return len(c.docs) }

// InsertSync stores a document synchronously — for data loaders that
// populate the DB before the benchmark starts (the AcmeAir loader).
func (c *Collection) InsertSync(doc Document) Document {
	stored := doc.Clone()
	if _, ok := stored["_id"]; !ok {
		c.db.idSeq++
		stored["_id"] = c.db.idSeq
	}
	c.docs = append(c.docs, stored)
	return stored
}

// result carries an operation outcome to its callback.
type result struct {
	err      error
	docs     []Document
	doc      Document
	n        int
	distinct []any
}

// ioKey returns the collection's independence key, allocating on first
// use. Only read-only operations carry it: reads on distinct collections
// touch disjoint document sets, so their completion order commutes.
// Writes always pass key 0 — every insert draws from the DB-wide _id
// sequence, so even writes to different collections do not commute.
func (c *Collection) ioKey() uint64 {
	if c.key == 0 {
		c.key = c.db.loop.NextIOKey()
	}
	return c.key
}

// opRecord is one pooled in-flight operation: the I/O-phase completion
// function is allocated once per record and closes over the record; the
// op/deliver closures are refilled per use and the record frees itself
// once it has handed the chain to a hopper.
type opRecord struct {
	db      *DB
	fn      *vm.Function
	op      func() result
	deliver func(result)
}

func (db *DB) borrowOp() *opRecord {
	if n := len(db.opFree); n > 0 {
		r := db.opFree[n-1]
		db.opFree[n-1] = nil
		db.opFree = db.opFree[:n-1]
		return r
	}
	r := &opRecord{db: db}
	r.fn = vm.NewFuncAt("(db.io)", loc.Internal, r.invoke)
	return r
}

func (r *opRecord) invoke([]vm.Value) vm.Value {
	res := r.op()
	h := r.db.borrowHopper()
	h.k = r.db.opts.DriverTicks
	h.res = res
	h.deliver = r.deliver
	r.op, r.deliver = nil, nil
	r.db.opFree = append(r.db.opFree, r)
	h.step()
	return vm.Undefined
}

// hopper walks an operation result through the driver's internal
// process.nextTick deferrals. Each hop schedules a distinct function
// (fns[k]) as the original per-hop closures did, so a hop never appears
// to reschedule itself to the recursive-microtask detector.
type hopper struct {
	db      *DB
	fns     []*vm.Function
	k       int
	res     result
	deliver func(result)
}

func (db *DB) borrowHopper() *hopper {
	if n := len(db.hopFree); n > 0 {
		h := db.hopFree[n-1]
		db.hopFree[n-1] = nil
		db.hopFree = db.hopFree[:n-1]
		return h
	}
	h := &hopper{db: db, fns: make([]*vm.Function, db.opts.DriverTicks)}
	for i := range h.fns {
		h.fns[i] = vm.NewFuncAt("(driver.hop)", loc.Internal, func([]vm.Value) vm.Value {
			h.step()
			return vm.Undefined
		})
	}
	return h
}

// step performs one driver deferral, or delivers and frees the hopper
// when the hops are exhausted. Internal driver deferrals are real
// nextTicks with an internal-library source location.
func (h *hopper) step() {
	if h.k == 0 {
		deliver, res := h.deliver, h.res
		h.deliver, h.res = nil, result{}
		h.db.hopFree = append(h.db.hopFree, h)
		deliver(res)
		return
	}
	h.k--
	h.db.loop.NextTick(loc.Internal, h.fns[h.k])
}

// run schedules the operation op on the I/O phase after the DB latency,
// hops through the driver's internal nextTicks, and finally delivers via
// deliver. api names the user-facing operation in probe events. key is
// the independence key of the completion (see ioKey).
func (c *Collection) run(api string, key uint64, op func() result, deliver func(result)) {
	l := c.db.loop
	r := c.db.borrowOp()
	r.op, r.deliver = op, deliver
	dp := l.ScheduleIOKeyedDispatch(l.Now()+l.PerturbLatency(c.db.opts.Latency), key, r.fn, nil)
	dp.API = api
}

// registerCallback announces the user callback registration under the
// operation's API name and returns the registration sequence.
func (c *Collection) registerCallback(at loc.Loc, api string, cb *vm.Function) uint64 {
	seq := c.db.loop.NextRegSeq()
	ev := c.db.loop.BorrowAPIEvent()
	ev.API = api
	ev.Loc = at
	ev.SetOneReg(vm.Registration{Seq: seq, Callback: cb, Phase: string(eventloop.PhaseNextTick), Once: true, Role: "callback"})
	c.db.loop.EmitAPIEvent(ev)
	c.db.loop.ReturnAPIEvent(ev)
	return seq
}

// dispatchCallback delivers (err, payload...) to cb on the nextTick
// queue under the operation's API name.
func (c *Collection) dispatchCallback(api string, seq uint64, cb *vm.Function, args ...vm.Value) {
	d := c.db.loop.NewDispatch()
	d.API = api
	d.RegSeq = seq
	c.db.loop.ScheduleTickJob(cb, args, d)
}

// errValue renders an error for callback delivery (nil → Undefined).
func errValue(err error) vm.Value {
	if err == nil {
		return vm.Undefined
	}
	return err.Error()
}

// Insert stores a document and calls cb(err, doc).
func (c *Collection) Insert(at loc.Loc, doc Document, cb *vm.Function) {
	api := c.apis.insert
	var seq uint64
	if cb != nil {
		seq = c.registerCallback(at, api, cb)
	}
	c.run(api, 0, func() result {
		return result{doc: c.InsertSync(doc)}
	}, func(res result) {
		if cb != nil {
			c.dispatchCallback(api, seq, cb, errValue(res.err), res.doc)
		}
	})
}

// Find queries documents and calls cb(err, []Document).
func (c *Collection) Find(at loc.Loc, query string, cb *vm.Function) {
	api := c.apis.find
	seq := c.registerCallback(at, api, cb)
	c.run(api, c.ioKey(), func() result {
		docs, err := c.findSync(query)
		return result{err: err, docs: docs}
	}, func(res result) {
		c.dispatchCallback(api, seq, cb, errValue(res.err), res.docs)
	})
}

// FindOne queries the first matching document and calls cb(err, doc);
// doc is Undefined when nothing matches.
func (c *Collection) FindOne(at loc.Loc, query string, cb *vm.Function) {
	api := c.apis.findOne
	seq := c.registerCallback(at, api, cb)
	c.run(api, c.ioKey(), func() result {
		docs, err := c.findSync(query)
		res := result{err: err}
		if len(docs) > 0 {
			res.doc = docs[0]
		}
		return res
	}, func(res result) {
		var doc vm.Value = vm.Undefined
		if res.doc != nil {
			doc = res.doc
		}
		c.dispatchCallback(api, seq, cb, errValue(res.err), doc)
	})
}

// Update merges set into every matching document and calls cb(err, n).
func (c *Collection) Update(at loc.Loc, query string, set Document, cb *vm.Function) {
	api := c.apis.update
	var seq uint64
	if cb != nil {
		seq = c.registerCallback(at, api, cb)
	}
	c.run(api, 0, func() result {
		n, err := c.updateSync(query, set)
		return result{err: err, n: n}
	}, func(res result) {
		if cb != nil {
			c.dispatchCallback(api, seq, cb, errValue(res.err), res.n)
		}
	})
}

// Remove deletes matching documents and calls cb(err, n).
func (c *Collection) Remove(at loc.Loc, query string, cb *vm.Function) {
	api := c.apis.remove
	var seq uint64
	if cb != nil {
		seq = c.registerCallback(at, api, cb)
	}
	c.run(api, 0, func() result {
		n, err := c.removeSync(query)
		return result{err: err, n: n}
	}, func(res result) {
		if cb != nil {
			c.dispatchCallback(api, seq, cb, errValue(res.err), res.n)
		}
	})
}

// Count calls cb(err, n) with the number of matching documents.
func (c *Collection) Count(at loc.Loc, query string, cb *vm.Function) {
	api := c.apis.count
	seq := c.registerCallback(at, api, cb)
	c.run(api, c.ioKey(), func() result {
		docs, err := c.findSync(query)
		return result{err: err, n: len(docs)}
	}, func(res result) {
		c.dispatchCallback(api, seq, cb, errValue(res.err), res.n)
	})
}

// FindCursor queries documents and streams them through an emitter:
// 'data' per document, 'end' after the last, 'error' on a bad query —
// the driver's cursor interface, whose emitter traffic is part of the
// per-request emitter executions of Fig. 6(b).
func (c *Collection) FindCursor(at loc.Loc, query string) *events.Emitter {
	var cursor *events.Emitter
	if n := len(c.db.cursorFree); n > 0 {
		cursor = c.db.cursorFree[n-1]
		c.db.cursorFree[n-1] = nil
		c.db.cursorFree = c.db.cursorFree[:n-1]
		cursor.Reinit(c.apis.cursorName, at)
	} else {
		cursor = events.New(c.db.loop, c.apis.cursorName, at)
	}
	c.db.allCursors = append(c.db.allCursors, cursor)
	api := c.apis.findCursor
	c.run(api, c.ioKey(), func() result {
		docs, err := c.findSync(query)
		return result{err: err, docs: docs}
	}, func(res result) {
		if res.err != nil {
			cursor.Emit(loc.Internal, "error", res.err.Error())
			return
		}
		for _, doc := range res.docs {
			cursor.Emit(loc.Internal, "data", doc)
		}
		cursor.Emit(loc.Internal, "end", len(res.docs))
	})
	return cursor
}

// --- Promise interface (the paper's modified AcmeAir uses this) ---

// FindP returns a promise of []Document.
func (c *Collection) FindP(at loc.Loc, query string) *promise.Promise {
	p := promise.New(c.db.loop, at, nil)
	c.run(c.apis.findP, c.ioKey(), func() result {
		docs, err := c.findSync(query)
		return result{err: err, docs: docs}
	}, func(res result) {
		if res.err != nil {
			p.Reject(loc.Internal, res.err.Error())
			return
		}
		p.Resolve(loc.Internal, res.docs)
	})
	return p
}

// FindOneP returns a promise of a Document (Undefined when no match).
func (c *Collection) FindOneP(at loc.Loc, query string) *promise.Promise {
	p := promise.New(c.db.loop, at, nil)
	c.run(c.apis.findOneP, c.ioKey(), func() result {
		docs, err := c.findSync(query)
		res := result{err: err}
		if len(docs) > 0 {
			res.doc = docs[0]
		}
		return res
	}, func(res result) {
		switch {
		case res.err != nil:
			p.Reject(loc.Internal, res.err.Error())
		case res.doc != nil:
			p.Resolve(loc.Internal, res.doc)
		default:
			p.Resolve(loc.Internal, vm.Undefined)
		}
	})
	return p
}

// InsertP returns a promise of the stored Document.
func (c *Collection) InsertP(at loc.Loc, doc Document) *promise.Promise {
	p := promise.New(c.db.loop, at, nil)
	c.run(c.apis.insertP, 0, func() result {
		return result{doc: c.InsertSync(doc)}
	}, func(res result) {
		p.Resolve(loc.Internal, res.doc)
	})
	return p
}

// UpdateP returns a promise of the number of updated documents.
func (c *Collection) UpdateP(at loc.Loc, query string, set Document) *promise.Promise {
	p := promise.New(c.db.loop, at, nil)
	c.run(c.apis.updateP, 0, func() result {
		n, err := c.updateSync(query, set)
		return result{err: err, n: n}
	}, func(res result) {
		if res.err != nil {
			p.Reject(loc.Internal, res.err.Error())
			return
		}
		p.Resolve(loc.Internal, res.n)
	})
	return p
}

// RemoveP returns a promise of the number of removed documents.
func (c *Collection) RemoveP(at loc.Loc, query string) *promise.Promise {
	p := promise.New(c.db.loop, at, nil)
	c.run(c.apis.removeP, 0, func() result {
		n, err := c.removeSync(query)
		return result{err: err, n: n}
	}, func(res result) {
		if res.err != nil {
			p.Reject(loc.Internal, res.err.Error())
			return
		}
		p.Resolve(loc.Internal, res.n)
	})
	return p
}

// --- Synchronous core ---

func (c *Collection) findSync(query string) ([]Document, error) {
	expr, err := Compile(query)
	if err != nil {
		return nil, err
	}
	var out []Document
	for _, doc := range c.docs {
		if expr.Match(doc) {
			out = append(out, doc)
		}
	}
	// MongoDB's natural order is unspecified without a sort, so the
	// result order is an explorable (opt-in) choice point. It covers
	// every read path: Find, FindOne (docs[0]), cursors and promises.
	c.db.loop.Permute(eventloop.ChoiceDataOrder, len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
	return out, nil
}

func (c *Collection) updateSync(query string, set Document) (int, error) {
	expr, err := Compile(query)
	if err != nil {
		return 0, err
	}
	n := 0
	for _, doc := range c.docs {
		if expr.Match(doc) {
			for k, v := range set {
				if k == "_id" {
					return n, fmt.Errorf("mongosim: cannot update _id")
				}
				doc[k] = v
			}
			n++
		}
	}
	return n, nil
}

func (c *Collection) removeSync(query string) (int, error) {
	expr, err := Compile(query)
	if err != nil {
		return 0, err
	}
	kept := c.docs[:0]
	removed := 0
	for _, doc := range c.docs {
		if expr.Match(doc) {
			removed++
			continue
		}
		kept = append(kept, doc)
	}
	c.docs = kept
	return removed, nil
}
