// Package fssim simulates Node's fs module: an in-memory file system
// whose asynchronous operations (readFile, writeFile, stat, readdir,
// unlink, appendFile) complete through the event loop's I/O poll phase —
// the paper's canonical example of external scheduling ("functions to
// read data from a file" in §II-B's I/O phase). Callback and promise
// interfaces are provided, mirroring fs and fs/promises.
package fssim

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"asyncg/internal/eventloop"
	"asyncg/internal/loc"
	"asyncg/internal/promise"
	"asyncg/internal/vm"
)

// Options configures the simulated file system.
type Options struct {
	// Latency is the virtual I/O latency per operation.
	Latency time.Duration
}

// DefaultLatency applies when Options.Latency is zero.
const DefaultLatency = 300 * time.Microsecond

// Stat describes a file, as delivered to stat callbacks.
type Stat struct {
	Name  string
	Size  int
	Mtime time.Duration // virtual time of last modification
}

// FS is an in-memory file system bound to one event loop.
type FS struct {
	loop    *eventloop.Loop
	latency time.Duration
	files   map[string][]byte
	mtimes  map[string]time.Duration
	keys    map[string]uint64 // per-path independence keys (POR)
}

// New creates an empty file system and registers its reset hook: when
// the loop is reset the file system empties itself (contents, mtimes and
// independence keys — key sequences restart with the loop), keeping the
// map storage for the next run.
func New(l *eventloop.Loop, opts Options) *FS {
	if opts.Latency == 0 {
		opts.Latency = DefaultLatency
	}
	f := &FS{
		loop:    l,
		latency: opts.Latency,
		files:   make(map[string][]byte),
		mtimes:  make(map[string]time.Duration),
		keys:    make(map[string]uint64),
	}
	l.OnReset(f.reset)
	return f
}

func (f *FS) reset() {
	clear(f.files)
	clear(f.mtimes)
	clear(f.keys)
}

// ioKey returns the path's independence key, allocating on first use.
// Operations on distinct paths touch disjoint file state, so their
// completion order commutes; operations spanning the namespace
// (Readdir) pass key 0 instead.
func (f *FS) ioKey(path string) uint64 {
	k, ok := f.keys[path]
	if !ok {
		k = f.loop.NextIOKey()
		f.keys[path] = k
	}
	return k
}

// Seed stores a file synchronously — for test and example setup.
func (f *FS) Seed(path string, data []byte) {
	f.files[path] = append([]byte(nil), data...)
	f.mtimes[path] = f.loop.Now()
}

// Exists reports whether the file exists (synchronous test helper).
func (f *FS) Exists(path string) bool {
	_, ok := f.files[path]
	return ok
}

// run schedules op through the I/O phase and delivers its result to the
// registered callback on the nextTick queue, like the network and DB
// substrates do.
func (f *FS) run(at loc.Loc, api string, key uint64, cb *vm.Function, op func() (vm.Value, error)) {
	var seq uint64
	if cb != nil {
		seq = f.loop.NextRegSeq()
		ev := f.loop.BorrowAPIEvent()
		ev.API = api
		ev.Loc = at
		ev.SetOneReg(vm.Registration{Seq: seq, Callback: cb, Phase: string(eventloop.PhaseNextTick), Once: true, Role: "callback"})
		f.loop.EmitAPIEvent(ev)
		f.loop.ReturnAPIEvent(ev)
	}
	ioFn := vm.NewFuncAt("(fs.io)", loc.Internal, func([]vm.Value) vm.Value {
		res, err := op()
		if cb == nil {
			return vm.Undefined
		}
		errVal := vm.Undefined
		if err != nil {
			errVal = err.Error()
			res = vm.Undefined
		}
		if res == nil {
			res = vm.Undefined
		}
		d := f.loop.NewDispatch()
		d.API = api
		d.RegSeq = seq
		f.loop.ScheduleTickJob(cb, []vm.Value{errVal, res}, d)
		return vm.Undefined
	})
	dp := f.loop.ScheduleIOKeyedDispatch(f.loop.Now()+f.loop.PerturbLatency(f.latency), key, ioFn, nil)
	dp.API = api
}

// runP is run with a promise result instead of a callback.
func (f *FS) runP(at loc.Loc, api string, key uint64, op func() (vm.Value, error)) *promise.Promise {
	p := promise.New(f.loop, at, nil)
	ioFn := vm.NewFuncAt("(fs.io)", loc.Internal, func([]vm.Value) vm.Value {
		res, err := op()
		if err != nil {
			p.Reject(loc.Internal, err.Error())
			return vm.Undefined
		}
		if res == nil {
			res = vm.Undefined
		}
		p.Resolve(loc.Internal, res)
		return vm.Undefined
	})
	dp := f.loop.ScheduleIOKeyedDispatch(f.loop.Now()+f.loop.PerturbLatency(f.latency), key, ioFn, nil)
	dp.API = api
	return p
}

func enoent(path string) error { return fmt.Errorf("ENOENT: no such file %q", path) }

// ReadFile reads a file; cb receives (err, []byte).
func (f *FS) ReadFile(at loc.Loc, path string, cb *vm.Function) {
	f.run(at, "fs.readFile", f.ioKey(path), cb, func() (vm.Value, error) { return f.readSync(path) })
}

// ReadFileP is the fs/promises variant.
func (f *FS) ReadFileP(at loc.Loc, path string) *promise.Promise {
	return f.runP(at, "fs.readFile", f.ioKey(path), func() (vm.Value, error) { return f.readSync(path) })
}

func (f *FS) readSync(path string) (vm.Value, error) {
	data, ok := f.files[path]
	if !ok {
		return nil, enoent(path)
	}
	return append([]byte(nil), data...), nil
}

// WriteFile replaces a file's contents; cb receives (err).
func (f *FS) WriteFile(at loc.Loc, path string, data []byte, cb *vm.Function) {
	buf := append([]byte(nil), data...)
	f.run(at, "fs.writeFile", f.ioKey(path), cb, func() (vm.Value, error) {
		f.files[path] = buf
		f.mtimes[path] = f.loop.Now()
		return vm.Undefined, nil
	})
}

// WriteFileP is the fs/promises variant.
func (f *FS) WriteFileP(at loc.Loc, path string, data []byte) *promise.Promise {
	buf := append([]byte(nil), data...)
	return f.runP(at, "fs.writeFile", f.ioKey(path), func() (vm.Value, error) {
		f.files[path] = buf
		f.mtimes[path] = f.loop.Now()
		return vm.Undefined, nil
	})
}

// AppendFile appends to a file, creating it if absent.
func (f *FS) AppendFile(at loc.Loc, path string, data []byte, cb *vm.Function) {
	buf := append([]byte(nil), data...)
	f.run(at, "fs.appendFile", f.ioKey(path), cb, func() (vm.Value, error) {
		f.files[path] = append(f.files[path], buf...)
		f.mtimes[path] = f.loop.Now()
		return vm.Undefined, nil
	})
}

// Stat delivers (err, Stat).
func (f *FS) Stat(at loc.Loc, path string, cb *vm.Function) {
	f.run(at, "fs.stat", f.ioKey(path), cb, func() (vm.Value, error) {
		data, ok := f.files[path]
		if !ok {
			return nil, enoent(path)
		}
		return Stat{Name: path, Size: len(data), Mtime: f.mtimes[path]}, nil
	})
}

// Unlink removes a file; cb receives (err).
func (f *FS) Unlink(at loc.Loc, path string, cb *vm.Function) {
	f.run(at, "fs.unlink", f.ioKey(path), cb, func() (vm.Value, error) {
		if _, ok := f.files[path]; !ok {
			return nil, enoent(path)
		}
		delete(f.files, path)
		delete(f.mtimes, path)
		return vm.Undefined, nil
	})
}

// Readdir delivers (err, []string) with the names under the prefix
// (treating "/"-separated paths as a flat namespace with directories as
// prefixes).
func (f *FS) Readdir(at loc.Loc, dir string, cb *vm.Function) {
	f.run(at, "fs.readdir", 0, cb, func() (vm.Value, error) {
		prefix := strings.TrimSuffix(dir, "/") + "/"
		seen := make(map[string]bool)
		var names []string
		for path := range f.files {
			if !strings.HasPrefix(path, prefix) {
				continue
			}
			rest := strings.TrimPrefix(path, prefix)
			if idx := strings.IndexByte(rest, '/'); idx >= 0 {
				rest = rest[:idx]
			}
			if !seen[rest] {
				seen[rest] = true
				names = append(names, rest)
			}
		}
		if len(names) == 0 {
			return nil, enoent(dir)
		}
		sort.Strings(names)
		return names, nil
	})
}
