package fssim

import (
	"strings"
	"testing"

	"asyncg/internal/eventloop"
	"asyncg/internal/loc"
	"asyncg/internal/vm"
)

func run(t *testing.T, program func(l *eventloop.Loop, fs *FS)) *eventloop.Loop {
	t.Helper()
	l := eventloop.New(eventloop.Options{TickLimit: 10_000})
	fs := New(l, Options{})
	main := vm.NewFunc("main", func([]vm.Value) vm.Value {
		program(l, fs)
		return vm.Undefined
	})
	if err := l.Run(main); err != nil {
		t.Fatal(err)
	}
	return l
}

func cb(name string, f func(err, res vm.Value)) *vm.Function {
	return vm.NewFunc(name, func(args []vm.Value) vm.Value {
		f(vm.Arg(args, 0), vm.Arg(args, 1))
		return vm.Undefined
	})
}

func TestReadSeededFile(t *testing.T) {
	var got string
	run(t, func(l *eventloop.Loop, fs *FS) {
		fs.Seed("/etc/config", []byte("key=value"))
		fs.ReadFile(loc.Here(), "/etc/config", cb("read", func(err, res vm.Value) {
			if !vm.IsUndefined(err) {
				t.Errorf("err = %v", err)
				return
			}
			got = string(res.([]byte))
		}))
	})
	if got != "key=value" {
		t.Fatalf("got = %q", got)
	}
}

func TestReadMissingFileDeliversENOENT(t *testing.T) {
	var errMsg string
	run(t, func(l *eventloop.Loop, fs *FS) {
		fs.ReadFile(loc.Here(), "/missing", cb("read", func(err, res vm.Value) {
			errMsg = vm.ToString(err)
		}))
	})
	if !strings.Contains(errMsg, "ENOENT") {
		t.Fatalf("err = %q", errMsg)
	}
}

func TestCallbackIsAsynchronousAndInIOFlow(t *testing.T) {
	var order []string
	run(t, func(l *eventloop.Loop, fs *FS) {
		fs.Seed("/f", []byte("x"))
		fs.ReadFile(loc.Here(), "/f", cb("read", func(err, res vm.Value) {
			order = append(order, "callback")
			if got := l.Phase(); got != eventloop.PhaseNextTick {
				t.Errorf("delivery phase = %s, want nextTick (driver deferral)", got)
			}
		}))
		order = append(order, "sync")
	})
	if len(order) != 2 || order[0] != "sync" {
		t.Fatalf("order = %v", order)
	}
}

func TestWriteThenRead(t *testing.T) {
	var got string
	run(t, func(l *eventloop.Loop, fs *FS) {
		fs.WriteFile(loc.Here(), "/out", []byte("written"), cb("write", func(err, _ vm.Value) {
			fs.ReadFile(loc.Here(), "/out", cb("read", func(err, res vm.Value) {
				got = string(res.([]byte))
			}))
		}))
	})
	if got != "written" {
		t.Fatalf("got = %q", got)
	}
}

func TestAppendFile(t *testing.T) {
	var got string
	run(t, func(l *eventloop.Loop, fs *FS) {
		fs.AppendFile(loc.Here(), "/log", []byte("a"), cb("a1", func(err, _ vm.Value) {
			fs.AppendFile(loc.Here(), "/log", []byte("b"), cb("a2", func(err, _ vm.Value) {
				fs.ReadFile(loc.Here(), "/log", cb("read", func(err, res vm.Value) {
					got = string(res.([]byte))
				}))
			}))
		}))
	})
	if got != "ab" {
		t.Fatalf("got = %q", got)
	}
}

func TestStat(t *testing.T) {
	var st Stat
	run(t, func(l *eventloop.Loop, fs *FS) {
		fs.Seed("/data", []byte("12345"))
		fs.Stat(loc.Here(), "/data", cb("stat", func(err, res vm.Value) {
			st = res.(Stat)
		}))
	})
	if st.Name != "/data" || st.Size != 5 {
		t.Fatalf("stat = %+v", st)
	}
}

func TestUnlink(t *testing.T) {
	var secondErr string
	run(t, func(l *eventloop.Loop, fs *FS) {
		fs.Seed("/tmp/x", []byte("x"))
		fs.Unlink(loc.Here(), "/tmp/x", cb("rm", func(err, _ vm.Value) {
			fs.Unlink(loc.Here(), "/tmp/x", cb("rm2", func(err, _ vm.Value) {
				secondErr = vm.ToString(err)
			}))
		}))
	})
	if !strings.Contains(secondErr, "ENOENT") {
		t.Fatalf("second unlink err = %q", secondErr)
	}
}

func TestReaddir(t *testing.T) {
	var names []string
	run(t, func(l *eventloop.Loop, fs *FS) {
		fs.Seed("/srv/a.txt", []byte("1"))
		fs.Seed("/srv/b.txt", []byte("2"))
		fs.Seed("/srv/sub/c.txt", []byte("3"))
		fs.Seed("/other/z.txt", []byte("4"))
		fs.Readdir(loc.Here(), "/srv", cb("ls", func(err, res vm.Value) {
			names = res.([]string)
		}))
	})
	want := []string{"a.txt", "b.txt", "sub"}
	if len(names) != len(want) {
		t.Fatalf("names = %v", names)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("names = %v, want %v", names, want)
		}
	}
}

func TestPromiseInterface(t *testing.T) {
	var got string
	var rejected string
	run(t, func(l *eventloop.Loop, fs *FS) {
		fs.Seed("/p", []byte("promised"))
		fs.ReadFileP(loc.Here(), "/p").
			Then(loc.Here(), vm.NewFunc("use", func(args []vm.Value) vm.Value {
				got = string(args[0].([]byte))
				return vm.Undefined
			}), nil).
			Catch(loc.Here(), vm.NewFunc("err", func(args []vm.Value) vm.Value { return vm.Undefined }))
		fs.ReadFileP(loc.Here(), "/absent").
			Catch(loc.Here(), vm.NewFunc("err", func(args []vm.Value) vm.Value {
				rejected = vm.ToString(args[0])
				return vm.Undefined
			}))
	})
	if got != "promised" {
		t.Fatalf("got = %q", got)
	}
	if !strings.Contains(rejected, "ENOENT") {
		t.Fatalf("rejected = %q", rejected)
	}
}

func TestWriteFilePReportsCompletion(t *testing.T) {
	done := false
	run(t, func(l *eventloop.Loop, fs *FS) {
		fs.WriteFileP(loc.Here(), "/wp", []byte("v")).
			Then(loc.Here(), vm.NewFunc("done", func(args []vm.Value) vm.Value {
				done = fs.Exists("/wp")
				return vm.Undefined
			}), nil).
			Catch(loc.Here(), vm.NewFunc("err", func(args []vm.Value) vm.Value { return vm.Undefined }))
	})
	if !done {
		t.Fatal("write not visible at fulfillment")
	}
}

func TestLatencyAdvancesClock(t *testing.T) {
	l := run(t, func(l *eventloop.Loop, fs *FS) {
		fs.Seed("/f", []byte("x"))
		fs.ReadFile(loc.Here(), "/f", cb("read", func(err, res vm.Value) {}))
	})
	if l.Now() < DefaultLatency {
		t.Fatalf("clock = %v", l.Now())
	}
}

func TestDataIsCopiedNotAliased(t *testing.T) {
	run(t, func(l *eventloop.Loop, fs *FS) {
		buf := []byte("original")
		fs.WriteFile(loc.Here(), "/f", buf, cb("w", func(err, _ vm.Value) {
			fs.ReadFile(loc.Here(), "/f", cb("r", func(err, res vm.Value) {
				got := res.([]byte)
				got[0] = 'X' // must not corrupt the stored file
				fs.ReadFile(loc.Here(), "/f", cb("r2", func(err, res vm.Value) {
					if string(res.([]byte)) != "original" {
						t.Errorf("stored file mutated: %q", res)
					}
					return
				}))
			}))
		}))
		buf[0] = 'Y' // must not affect the pending write
	})
}
