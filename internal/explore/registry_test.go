package explore

import (
	"strings"
	"testing"
)

func TestTargetByNameSpecs(t *testing.T) {
	ok := []struct {
		spec, wantName string
	}{
		{"acmeair", "acmeair[requests=50,clients=4,seed=1]"},
		{"acmeair:requests=3,clients=2,seed=7", "acmeair[requests=3,clients=2,seed=7]"},
		{"acmeair:requests=9", "acmeair[requests=9,clients=4,seed=1]"},
		{"case:SO-17894000", "SO-17894000 (buggy)"},
		{"SO-17894000", "SO-17894000 (buggy)"}, // bare-id CLI shorthand
	}
	for _, tc := range ok {
		tg, err := TargetByName(tc.spec)
		if err != nil {
			t.Errorf("TargetByName(%q): %v", tc.spec, err)
			continue
		}
		if tg.Name != tc.wantName {
			t.Errorf("TargetByName(%q).Name = %q, want %q", tc.spec, tg.Name, tc.wantName)
		}
	}

	bad := []string{
		"",
		"case:no-such-case",
		"no-such-case",
		"acmeair:requests=0",
		"acmeair:clients=-1",
		"acmeair:requests",
		"acmeair:bogus=1",
		"acmeair:requests=many",
	}
	for _, spec := range bad {
		if _, err := TargetByName(spec); err == nil {
			t.Errorf("TargetByName(%q) succeeded, want error", spec)
		}
	}
}

// TestTargetsAllResolve: the listing and the lookup agree — every name
// Targets advertises (the GET /v1/targets payload) resolves, and fixed
// variants only appear for cases that have one.
func TestTargetsAllResolve(t *testing.T) {
	infos := Targets()
	if len(infos) == 0 {
		t.Fatal("empty target registry")
	}
	if infos[0].Name != "acmeair" {
		t.Errorf("first target is %q, want acmeair", infos[0].Name)
	}
	sawFixed := false
	for _, info := range infos {
		if info.Title == "" {
			t.Errorf("target %q has no title", info.Name)
		}
		tg, err := TargetByName(info.Name)
		if err != nil {
			t.Errorf("listed target %q does not resolve: %v", info.Name, err)
			continue
		}
		if strings.HasSuffix(info.Name, ":fixed") {
			sawFixed = true
			if !strings.HasSuffix(tg.Name, "(fixed)") {
				t.Errorf("target %q resolved to %q, want a fixed variant", info.Name, tg.Name)
			}
		}
	}
	if !sawFixed {
		t.Error("no :fixed variants in the registry; the case studies include fixes")
	}
}
