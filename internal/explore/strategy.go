package explore

import (
	"fmt"
	"math/rand"

	"asyncg/internal/eventloop"
)

// Strategy selects how the engine walks the schedule space.
type Strategy string

// The exploration strategies.
const (
	// StrategyRandom draws every pick uniformly from its domain — the
	// fuzzing baseline. Run i uses seed Config.Seed+i.
	StrategyRandom Strategy = "random"
	// StrategyDelay perturbs the default schedule by at most
	// Config.DelayBound non-zero picks per run (delay-bounded search:
	// most schedule-dependent bugs need only a few reorderings, so
	// spending the budget near the default schedule finds them with far
	// fewer runs than uniform sampling).
	StrategyDelay Strategy = "delay"
	// StrategyExhaustive enumerates the choice tree breadth-first,
	// visiting every reachable pick vector once, up to Config.Runs. For
	// small programs this provably covers the whole schedule space (the
	// Result.Exhausted flag reports whether it finished).
	StrategyExhaustive Strategy = "exhaustive"
)

// ParseStrategy converts a CLI string to a Strategy.
func ParseStrategy(s string) (Strategy, error) {
	switch Strategy(s) {
	case StrategyRandom, StrategyDelay, StrategyExhaustive:
		return Strategy(s), nil
	default:
		return "", fmt.Errorf("explore: unknown strategy %q (random, delay, exhaustive)", s)
	}
}

// DefaultKinds is the choice-point classes explored unless configured
// otherwise: orderings real systems genuinely vary. ChoiceListenerOrder
// and ChoiceDataOrder are stricter than (respectively looser than) what
// most programs assume, so they are opt-in.
func DefaultKinds() []eventloop.ChoiceKind {
	return []eventloop.ChoiceKind{eventloop.ChoiceIOOrder, eventloop.ChoiceTimerTie, eventloop.ChoiceLatency}
}

// AllKinds returns every choice-point class. Replay uses it: a token
// stores picks by position, so the replaying scheduler must answer every
// choice point, whatever kinds produced the recording.
func AllKinds() []eventloop.ChoiceKind {
	return []eventloop.ChoiceKind{
		eventloop.ChoiceIOOrder, eventloop.ChoiceTimerTie, eventloop.ChoiceLatency,
		eventloop.ChoiceListenerOrder, eventloop.ChoiceDataOrder,
	}
}

// ParseKinds converts a comma-separated kind list ("io-order,latency").
func ParseKinds(s string) ([]eventloop.ChoiceKind, error) {
	if s == "" {
		return DefaultKinds(), nil
	}
	known := make(map[eventloop.ChoiceKind]bool)
	for _, k := range AllKinds() {
		known[k] = true
	}
	var kinds []eventloop.ChoiceKind
	for _, part := range splitComma(s) {
		k := eventloop.ChoiceKind(part)
		if !known[k] {
			return nil, fmt.Errorf("explore: unknown choice kind %q", part)
		}
		kinds = append(kinds, k)
	}
	return kinds, nil
}

func splitComma(s string) []string {
	var out []string
	start := 0
	for i := 0; i <= len(s); i++ {
		if i == len(s) || s[i] == ',' {
			if i > start {
				out = append(out, s[start:i])
			}
			start = i + 1
		}
	}
	return out
}

// chooser is the eventloop.Scheduler the engine installs for each run.
// It consults a strategy function for enabled kinds, forces the default
// pick for disabled ones, and records every pick with its effective
// domain — the recording is the run's replay token and the exhaustive
// strategy's branching information.
//
// Every Choose call appends exactly one pick, including disabled kinds
// (forced to 0 with domain 1), so pick positions line up between
// recording and replay regardless of which kinds were enabled.
type chooser struct {
	enabled map[eventloop.ChoiceKind]bool
	next    func(pos int, kind eventloop.ChoiceKind, n int) int

	picks   []int
	domains []int
}

func newChooser(kinds []eventloop.ChoiceKind, next func(pos int, kind eventloop.ChoiceKind, n int) int) *chooser {
	enabled := make(map[eventloop.ChoiceKind]bool, len(kinds))
	for _, k := range kinds {
		enabled[k] = true
	}
	return &chooser{enabled: enabled, next: next}
}

// Choose implements eventloop.Scheduler.
func (c *chooser) Choose(kind eventloop.ChoiceKind, n int) int {
	pick, domain := 0, 1
	if c.enabled[kind] {
		domain = n
		pick = c.next(len(c.picks), kind, n)
		if pick < 0 || pick >= n {
			pick = 0
		}
	}
	c.picks = append(c.picks, pick)
	c.domains = append(c.domains, domain)
	return pick
}

// Schedule returns the recorded pick sequence.
func (c *chooser) Schedule() Schedule { return Schedule{Picks: c.picks} }

// randomNext draws every pick uniformly.
func randomNext(rng *rand.Rand) func(pos int, kind eventloop.ChoiceKind, n int) int {
	return func(_ int, _ eventloop.ChoiceKind, n int) int { return rng.Intn(n) }
}

// delayNext perturbs the default schedule with at most bound non-default
// picks, each site deviating with probability 1/4.
func delayNext(rng *rand.Rand, bound int) func(pos int, kind eventloop.ChoiceKind, n int) int {
	budget := bound
	return func(_ int, _ eventloop.ChoiceKind, n int) int {
		if budget > 0 && rng.Intn(4) == 0 {
			budget--
			return 1 + rng.Intn(n-1)
		}
		return 0
	}
}

// playbackNext replays a recorded pick sequence, defaulting to 0 past
// its end (tokens trim trailing zeros, and a deviated prefix may make
// the run shorter or longer than the recording).
func playbackNext(picks []int) func(pos int, kind eventloop.ChoiceKind, n int) int {
	return func(pos int, _ eventloop.ChoiceKind, _ int) int {
		if pos < len(picks) {
			return picks[pos]
		}
		return 0
	}
}
