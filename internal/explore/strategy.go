package explore

import (
	"fmt"
	"math/rand"

	"asyncg/internal/eventloop"
)

// Names of the built-in strategies, as accepted by StrategyFor and
// reported by Result.Strategy.
const (
	// StrategyRandom draws every pick uniformly from its domain — the
	// fuzzing baseline. Run i uses seed base+i.
	StrategyRandom = "random"
	// StrategyDelay perturbs the default schedule by a bounded number of
	// non-zero picks per run (delay-bounded search: most
	// schedule-dependent bugs need only a few reorderings, so spending
	// the budget near the default schedule finds them with far fewer
	// runs than uniform sampling).
	StrategyDelay = "delay"
	// StrategyExhaustive enumerates the choice tree breadth-first,
	// visiting every reachable pick vector once, up to the run budget.
	// For small programs this provably covers the whole schedule space
	// (the Result.Exhausted flag reports whether it finished). With
	// partial-order reduction it skips sibling orders of commuting I/O
	// batches (see NewExhaustive).
	StrategyExhaustive = "exhaustive"
	// StrategyCoverage is the feedback-driven greybox walk: schedules
	// that discovered a new Async-Graph fingerprint join a corpus, and
	// later runs mutate corpus schedules (favoring recent discoveries)
	// instead of sampling blindly.
	StrategyCoverage = "coverage"
)

// PickFunc resolves one scheduling choice point of a single run: pos is
// the 0-based position in the run's pick sequence, kind the choice
// class, n the domain size (>= 2). Out-of-range returns are clamped to
// the default pick 0.
type PickFunc func(pos int, kind eventloop.ChoiceKind, n int) int

// PlanState is a Strategy's answer to "what should run i be?".
type PlanState int

const (
	// PlanReady: the returned PickFunc drives run i.
	PlanReady PlanState = iota
	// PlanWait: the strategy needs feedback from in-flight runs before
	// it can plan run i; the engine retries after the next Observe.
	PlanWait
	// PlanDone: the schedule space is finished; no run i will happen.
	PlanDone
)

// Feedback is what one completed run reports back to its strategy: the
// replay token, the raw pick/domain recording behind it, the
// independence flags for partial-order reduction, the run's WL
// fingerprint with its new-coverage flag, and the observable outcome.
type Feedback struct {
	// Index is the run's position in the exploration.
	Index int
	// Token replays the run (see Replay).
	Token string
	// Picks is the full recorded pick sequence (untrimmed, unlike the
	// token) and Domains the effective domain at each position (1 for
	// positions whose kind was not enabled).
	Picks   []int
	Domains []int
	// Independent flags positions that belong to a commuting permutation
	// batch: every element carried a distinct non-zero independence key,
	// so sibling picks at these positions yield equivalent executions.
	Independent []bool
	// Fingerprint is the run's canonical Async-Graph hash, and NewGraph
	// reports that no earlier run (in index order) produced it.
	Fingerprint string
	NewGraph    bool
	// Warnings, Err and Ticks mirror the RunResult fields.
	Warnings []string
	Err      string
	Ticks    int
}

// Strategy chooses which schedules to execute, using per-run feedback.
// It replaces the old closed string enum: a strategy is an object the
// engine converses with, not a label it switches on.
//
// The engine's contract, which holds for every worker count:
//
//   - Plan(i) is called with consecutive i starting at 0; each run is
//     dispatched at most once. Plan may be re-called with the same i
//     after answering PlanWait (it must keep answering consistently
//     until feedback arrives).
//   - Observe is called exactly once per completed run, strictly in
//     run-index order — with Workers=N a run's feedback may arrive
//     while later runs are already executing, but never before the
//     feedback of every earlier run.
//   - Plan and Observe are never called concurrently; strategies need
//     no locking.
//
// For the Result to stay byte-identical across worker counts, Plan(i)
// must depend only on i and on feedback the strategy could also have
// seen sequentially — in practice: gate Plan on Observe counts (return
// PlanWait), never on wall-clock completion order.
//
// A Strategy instance is stateful and single-use: build a fresh one per
// exploration.
type Strategy interface {
	// Name labels the strategy in Result.Strategy and reports.
	Name() string
	// Plan returns run i's PickFunc, or directs the engine to wait for
	// feedback or stop planning (see PlanState).
	Plan(i int) (PickFunc, PlanState)
	// Observe delivers run i's feedback, in run-index order.
	Observe(fb Feedback)
}

// SpaceReporter is an optional Strategy extension for strategies that
// can prove they covered the whole schedule space (exhaustive); the
// engine copies the flag into Result.Exhausted.
type SpaceReporter interface {
	Exhausted() bool
}

// CoverageStats is the feedback-economy census a strategy can expose:
// how many schedules sit in its mutation corpus and how many sibling
// picks partial-order reduction skipped. Zero values mean "not
// applicable".
type CoverageStats struct {
	// CorpusSize counts the corpus schedules (coverage strategy).
	CorpusSize int
	// PrunedPicks counts the sibling picks POR skipped — each one an
	// entire schedule subtree the unpruned enumeration would have
	// visited (exhaustive strategy with POR).
	PrunedPicks int
}

// CoverageReporter is an optional Strategy extension; the engine snaps
// the stats after each Observe (into RunResult) and once at the end
// (into Result).
type CoverageReporter interface {
	CoverageStats() CoverageStats
}

// StrategyParams carries the CLI/server-level strategy knobs; fields
// irrelevant to the named strategy are ignored.
type StrategyParams struct {
	// Seed feeds the random, delay and coverage strategies.
	Seed int64
	// DelayBound caps non-default picks per run for delay (0 means 2).
	DelayBound int
	// POR enables partial-order reduction for exhaustive.
	POR bool
}

// StrategyFor builds a built-in strategy by name (empty means random) —
// the bridge from flag/JSON surfaces to the Strategy interface.
func StrategyFor(name string, p StrategyParams) (Strategy, error) {
	switch name {
	case "", StrategyRandom:
		return NewRandom(p.Seed), nil
	case StrategyDelay:
		return NewDelay(p.Seed, p.DelayBound), nil
	case StrategyExhaustive:
		return NewExhaustive(p.POR), nil
	case StrategyCoverage:
		return NewCoverage(p.Seed), nil
	default:
		return nil, fmt.Errorf("explore: unknown strategy %q (random, delay, exhaustive, coverage)", name)
	}
}

// randomStrategy: uniform sampling; feedback is used only to recycle
// each run's generator.
type randomStrategy struct {
	seed int64

	// out and free pool the seeded generators (and the pick closures
	// bound to them): a generator is handed out at Plan, used by
	// exactly one in-flight run, and reclaimed when that run's
	// feedback arrives. Plan and Observe both execute on the
	// coordinator goroutine, so no locking is needed, and reseeding
	// with rand.Seed reproduces the exact state rand.NewSource would
	// build — pooled or fresh, run i draws the same pick sequence.
	out  map[int]*seededNext
	free []*seededNext
}

// seededNext is one pooled generator with its pick closure.
type seededNext struct {
	rng  *rand.Rand
	next PickFunc
}

// NewRandom returns the uniform-sampling strategy. Run i draws every
// pick from a generator seeded with seed+i, so runs are mutually
// independent and the exploration is reproducible.
func NewRandom(seed int64) Strategy { return &randomStrategy{seed: seed} }

func (s *randomStrategy) Name() string { return StrategyRandom }

func (s *randomStrategy) Plan(i int) (PickFunc, PlanState) {
	var e *seededNext
	if n := len(s.free); n > 0 {
		e = s.free[n-1]
		s.free = s.free[:n-1]
		e.rng.Seed(s.seed + int64(i))
	} else {
		e = &seededNext{rng: rand.New(rand.NewSource(s.seed + int64(i)))}
		e.next = randomNext(e.rng)
	}
	if s.out == nil {
		s.out = make(map[int]*seededNext)
	}
	s.out[i] = e
	return e.next, PlanReady
}

func (s *randomStrategy) Observe(fb Feedback) {
	if e, ok := s.out[fb.Index]; ok {
		delete(s.out, fb.Index)
		s.free = append(s.free, e)
	}
}

// delayStrategy: delay-bounded sampling; feedback is ignored.
type delayStrategy struct {
	seed  int64
	bound int
}

// NewDelay returns the delay-bounded strategy: each run deviates from
// the default schedule in at most bound positions (0 means 2), seeded
// like NewRandom.
func NewDelay(seed int64, bound int) Strategy {
	if bound <= 0 {
		bound = 2
	}
	return &delayStrategy{seed: seed, bound: bound}
}

func (s *delayStrategy) Name() string { return StrategyDelay }

func (s *delayStrategy) Plan(i int) (PickFunc, PlanState) {
	return delayNext(rand.New(rand.NewSource(s.seed+int64(i))), s.bound), PlanReady
}

func (s *delayStrategy) Observe(Feedback) {}

// exhaustiveStrategy owns the breadth-first frontier of forced pick
// prefixes. Each observed run exposes the branching domains along its
// schedule; unvisited siblings (non-zero picks at positions past the
// forced prefix) become new frontier entries. Every reachable pick
// vector is generated exactly once: a vector's canonical prefix is
// itself up to its last non-zero pick.
//
// With por, sibling expansion skips positions flagged independent: the
// whole permutation batch at such positions commutes (pairwise-distinct
// non-zero independence keys), so one order — the default — represents
// the equivalence class, and the skipped alternatives are counted in
// PrunedPicks.
type exhaustiveStrategy struct {
	por      bool
	queue    [][]int // discovered prefixes, in BFS order
	planned  int     // runs handed out (next plan index)
	observed int     // runs fed back
	pruned   int     // sibling picks POR skipped
}

// NewExhaustive returns the breadth-first enumeration strategy; por
// enables partial-order reduction. POR preserves the always/sometimes/
// never warning classification (commuting batches touch disjoint
// simulation state) but may merge fingerprint-distinct orders, so it is
// opt-in.
func NewExhaustive(por bool) Strategy {
	return &exhaustiveStrategy{por: por, queue: [][]int{nil}}
}

func (s *exhaustiveStrategy) Name() string { return StrategyExhaustive }

func (s *exhaustiveStrategy) Plan(i int) (PickFunc, PlanState) {
	if i < len(s.queue) {
		if i >= s.planned {
			s.planned = i + 1
		}
		return playbackNext(s.queue[i]), PlanReady
	}
	if s.observed >= s.planned {
		// Every dispatched run reported back and none grew the frontier
		// past i: the space is enumerated.
		return nil, PlanDone
	}
	return nil, PlanWait
}

func (s *exhaustiveStrategy) Observe(fb Feedback) {
	s.observed++
	prefix := s.queue[fb.Index]
	for pos := len(prefix); pos < len(fb.Domains); pos++ {
		if s.por && pos < len(fb.Independent) && fb.Independent[pos] {
			s.pruned += fb.Domains[pos] - 1
			continue
		}
		for v := 1; v < fb.Domains[pos]; v++ {
			child := make([]int, pos+1)
			copy(child, fb.Picks[:pos])
			child[pos] = v
			s.queue = append(s.queue, child)
		}
	}
}

// Exhausted implements SpaceReporter: true when every discovered prefix
// was executed and fed back within the budget.
func (s *exhaustiveStrategy) Exhausted() bool { return s.observed == len(s.queue) }

// CoverageStats implements CoverageReporter (PrunedPicks only).
func (s *exhaustiveStrategy) CoverageStats() CoverageStats {
	return CoverageStats{PrunedPicks: s.pruned}
}

// coverageGeneration is the coverage strategy's planning quantum: runs
// are planned in generations of this size, and generation g sees
// exactly the corpus accumulated from the runs of generations < g. The
// boundary is what keeps the corpus identical for every worker count —
// Plan never reads feedback that a different completion order could
// have delivered earlier or later.
const coverageGeneration = 8

// corpusEntry is one schedule that discovered a new fingerprint.
type corpusEntry struct {
	picks []int
}

// coverageStrategy is the greybox-fuzzer walk over schedule space:
// uniform sampling discovers seed schedules, every run that produced a
// new Async-Graph fingerprint joins the corpus, and subsequent
// generations mostly mutate corpus schedules instead of sampling
// blindly. Seed selection is energy-weighted by recency: the k-th
// corpus entry (0-based) is drawn with weight k+1, so fresh discoveries
// — whose neighborhoods are least explored — get the most mutation
// budget.
type coverageStrategy struct {
	seed       int64
	entries    []corpusEntry
	boundaries []int // corpus size visible to each generation
	observed   int
}

// NewCoverage returns the coverage-guided strategy (see
// StrategyCoverage), seeded like NewRandom.
func NewCoverage(seed int64) Strategy {
	return &coverageStrategy{seed: seed, boundaries: []int{0}}
}

func (s *coverageStrategy) Name() string { return StrategyCoverage }

func (s *coverageStrategy) Plan(i int) (PickFunc, PlanState) {
	g := i / coverageGeneration
	if g >= len(s.boundaries) {
		// Generation g opens only after every run of generations < g has
		// been observed.
		return nil, PlanWait
	}
	corpus := s.entries[:s.boundaries[g]]
	rng := rand.New(rand.NewSource(s.seed + int64(i)))
	// One run in four stays purely random so the walk keeps discovering
	// schedules no corpus neighborhood reaches.
	if len(corpus) == 0 || rng.Intn(4) == 0 {
		return randomNext(rng), PlanReady
	}
	seed := corpus[pickWeighted(rng, len(corpus))]
	return mutateNext(rng, seed.picks), PlanReady
}

func (s *coverageStrategy) Observe(fb Feedback) {
	if fb.NewGraph {
		s.entries = append(s.entries, corpusEntry{picks: append([]int(nil), fb.Picks...)})
	}
	s.observed++
	if s.observed%coverageGeneration == 0 {
		s.boundaries = append(s.boundaries, len(s.entries))
	}
}

// CoverageStats implements CoverageReporter (CorpusSize only).
func (s *coverageStrategy) CoverageStats() CoverageStats {
	return CoverageStats{CorpusSize: len(s.entries)}
}

// pickWeighted draws an index in [0, n) with weight k+1 — later entries
// proportionally more often.
func pickWeighted(rng *rand.Rand, n int) int {
	r := rng.Intn(n * (n + 1) / 2)
	for k := 0; k < n; k++ {
		r -= k + 1
		if r < 0 {
			return k
		}
	}
	return n - 1
}

// mutateNext replays a corpus schedule with light greybox mutation:
// each position deviates with probability 1/8 (drawing uniformly from
// the live domain); positions past the seed's end take the default
// pick. Replayed picks from a diverged schedule may exceed the current
// domain — the chooser clamps them to 0, exactly as token replay does.
func mutateNext(rng *rand.Rand, seed []int) PickFunc {
	return func(pos int, _ eventloop.ChoiceKind, n int) int {
		if rng.Intn(8) == 0 {
			return rng.Intn(n)
		}
		if pos < len(seed) {
			return seed[pos]
		}
		return 0
	}
}

// DefaultKinds is the choice-point classes explored unless configured
// otherwise: orderings real systems genuinely vary. ChoiceListenerOrder
// and ChoiceDataOrder are stricter than (respectively looser than) what
// most programs assume, so they are opt-in.
func DefaultKinds() []eventloop.ChoiceKind {
	return []eventloop.ChoiceKind{eventloop.ChoiceIOOrder, eventloop.ChoiceTimerTie, eventloop.ChoiceLatency}
}

// AllKinds returns every choice-point class. Replay uses it: a token
// stores picks by position, so the replaying scheduler must answer every
// choice point, whatever kinds produced the recording.
func AllKinds() []eventloop.ChoiceKind {
	return []eventloop.ChoiceKind{
		eventloop.ChoiceIOOrder, eventloop.ChoiceTimerTie, eventloop.ChoiceLatency,
		eventloop.ChoiceListenerOrder, eventloop.ChoiceDataOrder,
	}
}

// ParseKinds converts a comma-separated kind list ("io-order,latency").
func ParseKinds(s string) ([]eventloop.ChoiceKind, error) {
	if s == "" {
		return DefaultKinds(), nil
	}
	known := make(map[eventloop.ChoiceKind]bool)
	for _, k := range AllKinds() {
		known[k] = true
	}
	var kinds []eventloop.ChoiceKind
	for _, part := range splitComma(s) {
		k := eventloop.ChoiceKind(part)
		if !known[k] {
			return nil, fmt.Errorf("explore: unknown choice kind %q", part)
		}
		kinds = append(kinds, k)
	}
	return kinds, nil
}

func splitComma(s string) []string {
	var out []string
	start := 0
	for i := 0; i <= len(s); i++ {
		if i == len(s) || s[i] == ',' {
			if i > start {
				out = append(out, s[start:i])
			}
			start = i + 1
		}
	}
	return out
}

// chooser is the eventloop.Scheduler the engine installs for each run.
// It consults a strategy function for enabled kinds, forces the default
// pick for disabled ones, and records every pick with its effective
// domain — the recording is the run's replay token and the exhaustive
// strategy's branching information.
//
// Every Choose call appends exactly one pick, including disabled kinds
// (forced to 0 with domain 1), so pick positions line up between
// recording and replay regardless of which kinds were enabled.
//
// chooser also implements eventloop.IndependenceScheduler: when a
// permutation batch's independence keys are pairwise distinct and
// non-zero, the batch's pick positions are flagged in indep — the raw
// material of the exhaustive strategy's partial-order reduction.
type chooser struct {
	enabled map[eventloop.ChoiceKind]bool
	next    PickFunc

	picks   []int
	domains []int
	indep   []bool

	indepRun int // remaining picks of the current commuting batch
}

func newChooser(kinds []eventloop.ChoiceKind, next PickFunc) *chooser {
	enabled := make(map[eventloop.ChoiceKind]bool, len(kinds))
	for _, k := range kinds {
		enabled[k] = true
	}
	return &chooser{enabled: enabled, next: next}
}

// reset rewinds a pooled chooser for its next recording, keeping the
// enabled set (every run of an exploration perturbs the same kinds) and
// the recording slices' capacity. Callers must have consumed or copied
// the previous recording: the coordinator recycles a chooser only after
// the strategy's Observe call returned.
func (c *chooser) reset(next PickFunc) {
	c.next = next
	c.picks = c.picks[:0]
	c.domains = c.domains[:0]
	c.indep = c.indep[:0]
	c.indepRun = 0
}

// BeginPermute implements eventloop.IndependenceScheduler. The loop
// announces a batch's keys immediately before its len(keys)-1 Choose
// calls; the batch commutes only when every key is non-zero and no two
// are equal.
func (c *chooser) BeginPermute(_ eventloop.ChoiceKind, keys []uint64) {
	c.indepRun = 0
	if len(keys) < 2 {
		return
	}
	for i, k := range keys {
		if k == 0 {
			return
		}
		for j := 0; j < i; j++ {
			if keys[j] == k {
				return
			}
		}
	}
	c.indepRun = len(keys) - 1
}

// Choose implements eventloop.Scheduler.
func (c *chooser) Choose(kind eventloop.ChoiceKind, n int) int {
	pick, domain := 0, 1
	if c.enabled[kind] {
		domain = n
		pick = c.next(len(c.picks), kind, n)
		if pick < 0 || pick >= n {
			pick = 0
		}
	}
	ind := false
	if c.indepRun > 0 {
		c.indepRun--
		ind = true
	}
	c.picks = append(c.picks, pick)
	c.domains = append(c.domains, domain)
	c.indep = append(c.indep, ind)
	return pick
}

// Schedule returns the recorded pick sequence.
func (c *chooser) Schedule() Schedule { return Schedule{Picks: c.picks} }

// randomNext draws every pick uniformly.
func randomNext(rng *rand.Rand) PickFunc {
	return func(_ int, _ eventloop.ChoiceKind, n int) int { return rng.Intn(n) }
}

// delayNext perturbs the default schedule with at most bound non-default
// picks, each site deviating with probability 1/4.
func delayNext(rng *rand.Rand, bound int) PickFunc {
	budget := bound
	return func(_ int, _ eventloop.ChoiceKind, n int) int {
		if budget > 0 && rng.Intn(4) == 0 {
			budget--
			return 1 + rng.Intn(n-1)
		}
		return 0
	}
}

// playbackNext replays a recorded pick sequence, defaulting to 0 past
// its end (tokens trim trailing zeros, and a deviated prefix may make
// the run shorter or longer than the recording).
func playbackNext(picks []int) PickFunc {
	return func(pos int, _ eventloop.ChoiceKind, _ int) int {
		if pos < len(picks) {
			return picks[pos]
		}
		return 0
	}
}
