package explore

import (
	"asyncg"
	"asyncg/internal/asyncgraph"
	"asyncg/internal/provenance"
)

// annotateReport stamps provenance onto every warning of a replayed
// report: the replay token that reproduces the run, and the async
// causal chain walked backwards from the warning's graph node.
func annotateReport(report *asyncg.Report, token string) {
	if report == nil || report.Graph == nil {
		return
	}
	pw := provenance.NewWalker(report.Graph)
	for i := range report.Warnings {
		report.Warnings[i].ReplayToken = token
		report.Warnings[i].Chain = pw.Chain(report.Warnings[i].Node)
	}
}

// AttachChains fills WarningStat.Chain for every classified warning by
// replaying each distinct witness token once and walking the warning's
// async causal chain on the replayed graph. Chains are attached *after*
// aggregation on purpose: they are a pure, deterministic function of
// (target, witness token), so a fleet coordinator calling AttachChains
// on its merged Result produces byte-identical chains to a
// single-process exploration — the merge invariant survives. With
// debugStacks the replays run under asyncg.WithDebugStacks, so every
// hop carries its creation call site.
//
// A replay that fails or produces no graph leaves the affected chains
// empty — chains are additive diagnostics, never a reason to fail an
// exploration.
func AttachChains(t Target, res *Result, debugStacks bool) {
	// chains memoizes one replay per distinct witness token: token →
	// warning key → chain.
	chains := make(map[string]map[string][]asyncgraph.ChainHop)
	for i := range res.Warnings {
		ws := &res.Warnings[i]
		if ws.Witness == "" {
			continue
		}
		km, ok := chains[ws.Witness]
		if !ok {
			km = chainsForToken(t, ws.Witness, debugStacks)
			chains[ws.Witness] = km
		}
		ws.Chain = km[ws.Key]
	}
}

// chainsForToken replays one schedule and indexes every warning's chain
// by its exploration key.
func chainsForToken(t Target, token string, debugStacks bool) map[string][]asyncgraph.ChainHop {
	var extra []asyncg.Option
	if debugStacks {
		extra = append(extra, asyncg.WithDebugStacks())
	}
	_, report, err := Replay(t, token, extra...)
	if err != nil || report == nil || report.Graph == nil {
		return nil
	}
	out := make(map[string][]asyncgraph.ChainHop, len(report.Warnings))
	for _, w := range report.Warnings {
		key := warnKey(w)
		if _, dup := out[key]; !dup {
			out[key] = w.Chain
		}
	}
	return out
}
