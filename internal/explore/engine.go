package explore

import (
	"context"
	"fmt"
	"runtime"
	"sort"

	"asyncg"
	"asyncg/internal/acmeair"
	"asyncg/internal/asyncgraph"
	"asyncg/internal/casestudy"
	"asyncg/internal/detect"
	"asyncg/internal/eventloop"
	"asyncg/internal/loc"
	"asyncg/internal/mongosim"
	"asyncg/internal/netio"
	"asyncg/internal/trace"
	"asyncg/internal/workload"
)

// Target is a program the engine can run repeatedly. Every run starts
// from a cold runtime (schedules only compose with a cold start), but
// "cold" no longer has to mean "freshly allocated": a target that
// provides NewRunner hands each pool worker a reusable runtime that is
// Reset between runs, amortizing the session's allocation set across
// the whole exploration. The Run field remains the one-shot fallback —
// a fresh runtime per call — and the two are observationally identical:
// a Reset runner replays the same announcements, object ids, and
// registration sequences a fresh session would, so Results are
// byte-identical whichever path executes a schedule.
type Target struct {
	// Name labels the target in reports.
	Name string
	// Expect lists detector categories of interest (a case study's
	// Expect set); they are classified even when never observed.
	Expect []detect.Category
	// Run executes the program once on a fresh runtime and returns its
	// report, threading extra through to asyncg.New so the engine can
	// install its scheduler. A limit error (ErrTickLimit for starvation
	// bugs) is expected and recorded, not fatal. Optional when NewRunner
	// is set; required otherwise.
	Run func(extra ...asyncg.Option) (*asyncg.Report, error)
	// NewRunner, when set, creates a reusable runner. The engine gives
	// each pool worker its own runner (runners need not be safe for
	// concurrent use) and calls Reset between Runs.
	NewRunner func() Runner
}

// Runner executes a target repeatedly on a reusable runtime. Run
// requires a cold runner — freshly created or Reset since the previous
// Run — and threads per-run options (the engine's scheduler, context,
// metrics) into the underlying session; Reset rewinds the runtime while
// retaining its allocations. See asyncg.Session.Reset for the identity
// contract reusable runners rely on.
type Runner interface {
	Run(extra ...asyncg.Option) (*asyncg.Report, error)
	Reset()
}

// funcRunner adapts the fresh-runtime Run fallback to the Runner shape:
// every Run builds a new runtime, so Reset has nothing to do.
type funcRunner struct {
	run func(extra ...asyncg.Option) (*asyncg.Report, error)
}

func (f funcRunner) Run(extra ...asyncg.Option) (*asyncg.Report, error) { return f.run(extra...) }
func (funcRunner) Reset()                                               {}

// runner creates the reusable runner a pool worker owns.
func (t Target) runner() Runner {
	if t.NewRunner != nil {
		return t.NewRunner()
	}
	return funcRunner{run: t.Run}
}

// runFresh executes the target once on a cold runtime — the replay and
// chain-attachment path, which runs outside the worker pool.
func (t Target) runFresh(extra ...asyncg.Option) (*asyncg.Report, error) {
	if t.Run != nil {
		return t.Run(extra...)
	}
	return t.NewRunner().Run(extra...)
}

// CaseTarget wraps a casestudy case (its buggy or fixed version). Both
// the one-shot fallback and the reusable runner go through
// casestudy.NewRunner, so every schedule executes the same code path
// whichever the coordinator picks.
func CaseTarget(c casestudy.Case, fixed bool) Target {
	name := c.ID + " (buggy)"
	if fixed {
		name = c.ID + " (fixed)"
	}
	return Target{
		Name:   name,
		Expect: c.Expect,
		Run: func(extra ...asyncg.Option) (*asyncg.Report, error) {
			return casestudy.NewRunner(c, fixed).Run(extra...)
		},
		NewRunner: func() Runner { return casestudy.NewRunner(c, fixed) },
	}
}

// CaseTargetByID looks up a case study by ID and wraps it.
func CaseTargetByID(id string, fixed bool) (Target, error) {
	c, ok := casestudy.ByID(id)
	if !ok {
		return Target{}, fmt.Errorf("explore: unknown case %q", id)
	}
	if fixed && c.Fixed == nil {
		return Target{}, fmt.Errorf("explore: case %q has no fixed version", id)
	}
	return CaseTarget(c, fixed), nil
}

// AcmeAirTarget wraps the AcmeAir benchmark server under its workload
// driver (the Fig. 6 setup, scaled down): requests total requests from
// clients concurrent clients, with the driver's operation mix drawn from
// seed. Both the one-shot fallback and the reusable runner execute
// through acmeAirRunner, so every schedule runs the same code path (and
// the same source locations — graph labels and fingerprints depend on
// them) whichever the coordinator picks.
func AcmeAirTarget(requests, clients int, seed int64) Target {
	newRunner := func() Runner {
		return &acmeAirRunner{requests: requests, clients: clients, seed: seed}
	}
	return Target{
		Name: fmt.Sprintf("acmeair[requests=%d,clients=%d,seed=%d]", requests, clients, seed),
		Run: func(extra ...asyncg.Option) (*asyncg.Report, error) {
			return newRunner().Run(extra...)
		},
		NewRunner: newRunner,
	}
}

// acmeAirRunner reuses one session (loop, network, database, graph
// builder, detectors) across repeated AcmeAir executions. The sample
// data, application, and workload driver are rebuilt per run — Reset
// wipes the database and the network's connection state — but their
// storage comes back out of the session's pools warm.
type acmeAirRunner struct {
	requests, clients int
	seed              int64

	session *asyncg.Session
	net     *netio.Network
	db      *mongosim.DB
}

func (r *acmeAirRunner) Run(extra ...asyncg.Option) (*asyncg.Report, error) {
	if r.session == nil {
		opts := append([]asyncg.Option{asyncg.WithLoop(eventloop.Options{TickLimit: 100_000_000})}, extra...)
		r.session = asyncg.New(opts...)
		loop := r.session.Loop()
		r.net = netio.New(loop, netio.Options{})
		r.db = mongosim.New(loop, mongosim.Options{})
	} else {
		r.session.Apply(extra...)
	}
	acmeair.LoadSampleData(r.db, acmeair.DefaultDataSpec())
	app := acmeair.New(r.session.Loop(), r.net, r.db, acmeair.Config{UsePromises: true})
	driver := workload.NewDriver(r.net, workload.Options{
		Port:     app.Port(),
		Clients:  r.clients,
		Requests: r.requests,
		Seed:     r.seed,
	})
	return r.session.Run(func(*asyncg.Context) {
		if err := app.Listen(loc.Here()); err != nil {
			panic(err)
		}
		driver.Start()
	})
}

func (r *acmeAirRunner) Reset() {
	if r.session != nil {
		r.session.Reset()
	}
}

// config parameterizes an exploration; it is built through the
// functional options (WithRuns, WithStrategy, ...) passed to Run.
type config struct {
	// Runs bounds the number of executions. 0 means 32.
	Runs int
	// Seed is recorded in Result.Seed and seeds the default strategy
	// (strategies built explicitly — NewRandom(seed), NewCoverage(seed)
	// — own their seed; WithSeed does not reach into them).
	Seed int64
	// Strategy is the schedule-space walk; nil means NewRandom(Seed).
	Strategy Strategy
	// Kinds restricts which choice-point classes are perturbed; nil
	// means DefaultKinds.
	Kinds []eventloop.ChoiceKind
	// Workers is the number of schedules executed concurrently. 0 means
	// runtime.GOMAXPROCS(0); 1 preserves strictly sequential execution.
	//
	// Determinism guarantee: every run is an isolated single-threaded
	// simulation — a fresh runtime per call, or a pool worker's reusable
	// runner Reset to an observationally identical cold state — whose
	// outcome depends only on its
	// PickFunc, results and strategy feedback are processed strictly in
	// run-index order, and well-behaved strategies plan from feedback
	// counts, not completion order (see Strategy) — so the Result (runs,
	// warning classification, fingerprint census, corpus, witness and
	// counter-witness tokens) is byte-identical for any worker count.
	Workers int
	// Progress, when set, receives every completed RunResult in
	// run-index order (see WithProgress).
	Progress func(RunResult)
	// RunMetrics attaches the trace metrics registry to every run and
	// aggregates the snapshots into Result.Metrics (see WithRunMetrics).
	RunMetrics bool
	// Feedback copies each run's choice-point record (domain sizes,
	// independence flags) into its RunResult (see WithRunFeedback).
	Feedback bool
	// Chains attaches async causal chains to the classified warnings
	// after aggregation (see WithChains and AttachChains).
	Chains bool
	// DebugStacks turns on creation-stack capture inside every run and
	// witness replay (see WithDebugStacks).
	DebugStacks bool
}

func (c config) withDefaults() config {
	if c.Runs == 0 {
		c.Runs = 32
	}
	if c.Strategy == nil {
		c.Strategy = NewRandom(c.Seed)
	}
	if c.Kinds == nil {
		c.Kinds = DefaultKinds()
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	return c
}

// Outcome classifies a warning across the explored schedules.
type Outcome string

// Warning outcomes.
const (
	// OutcomeAlways: present in every explored schedule — the bug (or
	// detector finding) is schedule-independent.
	OutcomeAlways Outcome = "always"
	// OutcomeSometimes: present in some schedules and absent in others —
	// the finding is schedule-dependent; Witness and CounterWitness
	// reproduce one run of each.
	OutcomeSometimes Outcome = "sometimes"
	// OutcomeNever: an expected category that no explored schedule
	// produced.
	OutcomeNever Outcome = "never"
)

// RunResult summarizes one executed schedule.
type RunResult struct {
	// Index is the run's position in the exploration (0-based); for the
	// exhaustive strategy it is the breadth-first enumeration order.
	Index int `json:"index"`
	// Token replays this run (see Replay and asyncg explore -replay).
	Token string `json:"token"`
	// Fingerprint is the canonical Async-Graph hash of the run.
	Fingerprint string `json:"fingerprint"`
	// Warnings lists the run's warning keys ("category @ location"),
	// sorted and deduplicated.
	Warnings []string `json:"warnings,omitempty"`
	// Err records a run-limit error (tick/time limit), if any.
	Err string `json:"err,omitempty"`
	// Ticks is the number of top-level callbacks executed.
	Ticks int `json:"ticks"`
	// NewGraph marks the first run (in index order) that produced its
	// fingerprint — the coverage signal fed back to the strategy.
	NewGraph bool `json:"newGraph,omitempty"`
	// NewGraphs is the running count of distinct fingerprints up to and
	// including this run.
	NewGraphs int `json:"newGraphs,omitempty"`
	// CorpusSize is the coverage strategy's corpus size after this run's
	// feedback was absorbed (0 for strategies without a corpus).
	CorpusSize int `json:"corpusSize,omitempty"`
	// PrunedPicks is the running total of sibling picks partial-order
	// reduction skipped (0 without POR).
	PrunedPicks int `json:"prunedPicks,omitempty"`
	// Domains records the domain size of every choice point the run hit,
	// in pick order. Populated only under WithRunFeedback — it is the
	// fleet coordinator's input for expanding the exhaustive frontier
	// remotely — and stripped before results are merged or compared.
	Domains []int `json:"domains,omitempty"`
	// Independent records, per choice point, whether the pick permutes
	// independent alternatives (the partial-order-reduction signal).
	// Populated only under WithRunFeedback, alongside Domains.
	Independent []bool `json:"independent,omitempty"`
}

// WarningStat classifies one warning key across all runs.
type WarningStat struct {
	// Key is the "category @ location" warning identity.
	Key string `json:"key"`
	// Category is the detector category parsed back out of Key.
	Category detect.Category `json:"category"`
	// Outcome is the always/sometimes/never classification.
	Outcome Outcome `json:"outcome"`
	// Runs counts the runs that produced the warning.
	Runs int `json:"runs"`
	// Witness replays a run that produced the warning — the warning's
	// replay token (`asyncg explore -replay <witness>` reproduces it
	// deterministically).
	Witness string `json:"witness,omitempty"`
	// CounterWitness replays a run that did not (sometimes only). Both
	// tokens are always emitted together on every surface (text,
	// NDJSON, serve, fleet): a schedule-dependent finding without its
	// counter-example is half a diagnosis.
	CounterWitness string `json:"counterWitness,omitempty"`
	// Chain is the warning's async causal chain, walked on a replay of
	// the Witness schedule (see AttachChains). Populated only when
	// chains were requested (WithChains / -chains / jobSpec.chains);
	// additive on every stream and result surface.
	Chain []asyncgraph.ChainHop `json:"chain,omitempty"`
}

// CategoryStat classifies one detector category across all runs
// (coarser than WarningStat: any warning of the category counts).
type CategoryStat struct {
	// Category is the detector category being classified.
	Category detect.Category `json:"category"`
	// Outcome is the always/sometimes/never classification.
	Outcome Outcome `json:"outcome"`
	// Runs counts the runs that produced any warning of the category.
	Runs int `json:"runs"`
	// Expected marks categories in the target's Expect set.
	Expected bool `json:"expected"`
	// Witness replays a run that produced the category.
	Witness string `json:"witness,omitempty"`
	// CounterWitness replays a run that did not (sometimes only).
	CounterWitness string `json:"counterWitness,omitempty"`
}

// FingerprintStat counts the runs that produced one graph shape.
type FingerprintStat struct {
	// Fingerprint is the canonical Async-Graph hash (Graph.Fingerprint).
	Fingerprint string `json:"fingerprint"`
	// Runs counts the runs that produced this shape.
	Runs int `json:"runs"`
	// Token reproduces the first run that hit this shape.
	Token string `json:"token"`
}

// Result is a completed exploration.
type Result struct {
	// Target names the explored program (Target.Name).
	Target string `json:"target"`
	// Strategy names the walk that produced the runs (Strategy.Name).
	Strategy string `json:"strategy"`
	// Seed is the base seed the random/delay strategies derived their
	// per-run generators from.
	Seed int64 `json:"seed"`
	// Requested is the run budget the exploration was configured with
	// (Config.Runs). For StrategyExhaustive len(Runs) may be smaller —
	// the space was exhausted first — or the budget may have truncated
	// the enumeration (see Exhausted).
	Requested int `json:"requested"`
	// Exhausted reports that StrategyExhaustive enumerated the entire
	// choice tree within the run budget.
	Exhausted bool `json:"exhausted,omitempty"`
	// Runs records every executed schedule, in run-index order.
	Runs []RunResult `json:"runs"`
	// Fingerprints is the census of distinct Async-Graph shapes.
	Fingerprints []FingerprintStat `json:"fingerprints"`
	// Warnings classifies each warning key across all runs.
	Warnings []WarningStat `json:"warnings"`
	// Categories classifies each detector category across all runs.
	Categories []CategoryStat `json:"categories"`
	// NewGraphs counts the distinct Async-Graph fingerprints discovered
	// (== len(Fingerprints); duplicated for stream consumers).
	NewGraphs int `json:"newGraphs,omitempty"`
	// CorpusSize is the coverage strategy's final corpus size.
	CorpusSize int `json:"corpusSize,omitempty"`
	// PrunedPicks is the total sibling picks partial-order reduction
	// skipped — schedules the unpruned exhaustive enumeration would
	// have queued.
	PrunedPicks int `json:"prunedPicks,omitempty"`
	// Metrics is the aggregate observability snapshot over all runs
	// (nil unless WithRunMetrics was set).
	Metrics *trace.Snapshot `json:"metrics,omitempty"`
}

// Sometimes returns the schedule-dependent warning stats.
func (r *Result) Sometimes() []WarningStat {
	var out []WarningStat
	for _, w := range r.Warnings {
		if w.Outcome == OutcomeSometimes {
			out = append(out, w)
		}
	}
	return out
}

// Run explores the target's schedule space under the given options.
// With WithWorkers(n > 1) the schedules execute concurrently (each on a
// fully isolated runtime); the Result is identical for any worker count.
//
// Cancellation: ctx is polled between runs and, through
// asyncg.WithContext, at every tick boundary inside each run, so a
// cancelled or expired context stops the exploration promptly — workers
// are drained, never abandoned. Run then returns ctx's error together
// with a partial Result covering the completed run prefix (truncated
// runs are discarded: their fingerprints and warning sets describe an
// incomplete execution and would poison the always/sometimes
// classification).
//
// Panics: a panicking target never crashes the process — not even with
// WithWorkers(n > 1), where runs execute on pool goroutines. The panic
// is recovered at the run boundary, the exploration shuts down along
// the cancellation path, and Run returns the panic as an error with a
// partial Result.
func Run(ctx context.Context, t Target, opts ...Option) (*Result, error) {
	var cfg config
	for _, opt := range opts {
		opt(&cfg)
	}
	return runExploration(ctx, t, cfg)
}

// runExploration runs the coordinator and folds the strategy's own
// reporting (space exhaustion, coverage stats) into the Result.
func runExploration(ctx context.Context, t Target, cfg config) (*Result, error) {
	cfg = cfg.withDefaults()
	if ctx == nil {
		ctx = context.Background()
	}
	res := &Result{Target: t.Name, Strategy: cfg.Strategy.Name(), Seed: cfg.Seed, Requested: cfg.Runs}
	err := runCoordinator(ctx, t, cfg, res)
	if err == nil {
		if sr, ok := cfg.Strategy.(SpaceReporter); ok {
			res.Exhausted = sr.Exhausted()
		}
	}
	if cr, ok := cfg.Strategy.(CoverageReporter); ok {
		stats := cr.CoverageStats()
		res.CorpusSize = stats.CorpusSize
		res.PrunedPicks = stats.PrunedPicks
	}
	aggregate(t, res)
	res.NewGraphs = len(res.Fingerprints)
	if err == nil && cfg.Chains {
		AttachChains(t, res, cfg.DebugStacks)
	}
	return res, err
}

// emitRun appends one completed run to the result in run-index order:
// the per-run record, the metrics aggregate, and the progress callback
// all advance together, so a streaming consumer sees exactly the prefix
// the final Result will contain.
func emitRun(res *Result, cfg *config, rr RunResult, snap *trace.Snapshot) {
	res.Runs = append(res.Runs, rr)
	if snap != nil {
		if res.Metrics == nil {
			res.Metrics = &trace.Snapshot{}
		}
		res.Metrics.Merge(snap)
	}
	if cfg.Progress != nil {
		cfg.Progress(rr)
	}
}

// intern is one pool worker's scratch state. Warning keys recur across
// thousands of schedules of the same target, so the rendered
// "category @ location" strings are cached by identity; the per-run
// dedup set is reused (cleared, not reallocated) between runs.
type intern struct {
	keys map[internKey]string
	seen map[string]bool
}

// internKey is a warning's identity without its message — exactly the
// information warnKey renders.
type internKey struct {
	cat asyncgraph.Category
	loc loc.Loc
}

func newIntern() *intern {
	return &intern{keys: make(map[internKey]string), seen: make(map[string]bool)}
}

// key returns the warning's exploration identity, cached.
func (in *intern) key(w asyncgraph.Warning) string {
	id := internKey{cat: w.Category, loc: w.Loc}
	if s, ok := in.keys[id]; ok {
		return s
	}
	s := warnKey(w)
	in.keys[id] = s
	return s
}

// schedProxy is the scheduler a worker's option slice captures once:
// re-aiming it at each run's chooser lets the worker reuse one slice
// (and one set of option closures) for the whole exploration instead of
// rebuilding options per run. It forwards IndependenceScheduler too —
// every chooser implements it, and the loop type-asserts the installed
// scheduler to discover independence support.
type schedProxy struct{ ch *chooser }

func (p *schedProxy) Choose(kind eventloop.ChoiceKind, n int) int { return p.ch.Choose(kind, n) }

func (p *schedProxy) BeginPermute(kind eventloop.ChoiceKind, keys []uint64) {
	p.ch.BeginPermute(kind, keys)
}

// workerExtras builds the per-run option slice a worker hands to every
// Run call: the proxy's chooser is swapped per run, everything else
// (context bound, metrics, debug stacks) is fixed for the exploration.
func workerExtras(ctx context.Context, proxy *schedProxy, cfg *config) []asyncg.Option {
	extra := []asyncg.Option{asyncg.WithScheduler(proxy)}
	if ctx != nil {
		extra = append(extra, asyncg.WithContext(ctx))
	}
	if cfg.RunMetrics {
		extra = append(extra, asyncg.WithMetrics())
	}
	if cfg.DebugStacks {
		extra = append(extra, asyncg.WithDebugStacks())
	}
	return extra
}

// runOnce executes the target under one scheduler — on run, a pool
// worker's reusable runner or the fresh-runtime fallback — and
// summarizes it. Everything the result needs (token, fingerprint,
// warning keys) is copied out of the report before returning, so the
// caller may Reset the runner immediately afterwards. extras is the
// worker's prebuilt option slice, whose scheduler proxy must already
// point at ch; a nil extras builds a one-shot slice (the tests' cold
// path). The run's own ticks honor ctx through asyncg.WithContext; a
// cancelled run comes back with rr.Err set to the context error, and
// callers drop it from the Result. A panicking target is recovered
// here — the one place every execution path shares, including the pool
// workers of the parallel coordinator — and surfaced as err;
// coordinators treat it as fatal to the exploration, so a panic fails
// the caller's job without ever killing a worker goroutine (or the
// process).
func runOnce(ctx context.Context, run func(extra ...asyncg.Option) (*asyncg.Report, error), idx int, ch *chooser, extras []asyncg.Option, cfg *config, in *intern) (rr RunResult, snap *trace.Snapshot, err error) {
	defer func() {
		if p := recover(); p != nil {
			rr, snap = RunResult{}, nil
			err = fmt.Errorf("explore: target panicked on run %d: %v", idx, p)
		}
	}()
	if extras == nil {
		extras = workerExtras(ctx, &schedProxy{ch: ch}, cfg)
	}
	report, rerr := run(extras...)
	rr = RunResult{Index: idx, Token: ch.Schedule().Token()}
	if rerr != nil {
		rr.Err = rerr.Error()
	}
	if report == nil {
		return rr, nil, nil
	}
	rr.Ticks = report.Ticks
	if report.Graph != nil {
		rr.Fingerprint = report.Graph.Fingerprint()
	}
	clear(in.seen)
	for _, w := range report.Warnings {
		key := in.key(w)
		if !in.seen[key] {
			in.seen[key] = true
			rr.Warnings = append(rr.Warnings, key)
		}
	}
	sort.Strings(rr.Warnings)
	return rr, report.Metrics, nil
}

// Replay runs the target once under a recorded schedule token; extra
// options (tracing, metrics, asyncg.WithDebugStacks) ride along, so a
// witness schedule can be re-examined with the full observability stack
// attached. Every warning of the replayed report is annotated with its
// provenance: ReplayToken is stamped with token and Chain with the
// async causal chain walked back from the warning's graph node.
func Replay(t Target, token string, extra ...asyncg.Option) (RunResult, *asyncg.Report, error) {
	sched, err := ParseToken(token)
	if err != nil {
		return RunResult{}, nil, err
	}
	ch := newChooser(AllKinds(), playbackNext(sched.Picks))
	opts := append([]asyncg.Option{asyncg.WithScheduler(ch)}, extra...)
	report, rerr := t.runFresh(opts...)
	rr := RunResult{Token: token}
	if rerr != nil {
		rr.Err = rerr.Error()
	}
	if report != nil {
		rr.Ticks = report.Ticks
		if report.Graph != nil {
			rr.Fingerprint = report.Graph.Fingerprint()
		}
		annotateReport(report, token)
		seen := make(map[string]bool)
		for _, w := range report.Warnings {
			key := warnKey(w)
			if !seen[key] {
				seen[key] = true
				rr.Warnings = append(rr.Warnings, key)
			}
		}
		sort.Strings(rr.Warnings)
	}
	return rr, report, nil
}

// aggregate fills the result's fingerprint census and warning/category
// classification from the per-run records.
func aggregate(t Target, res *Result) {
	total := len(res.Runs)
	fpCount := make(map[string]int)
	fpToken := make(map[string]string)
	warnCount := make(map[string]int)
	warnWitness := make(map[string]string)
	catCount := make(map[detect.Category]int)
	catWitness := make(map[detect.Category]string)
	for _, rr := range res.Runs {
		if fpCount[rr.Fingerprint] == 0 {
			fpToken[rr.Fingerprint] = rr.Token
		}
		fpCount[rr.Fingerprint]++
		cats := make(map[detect.Category]bool)
		for _, key := range rr.Warnings {
			if warnCount[key] == 0 {
				warnWitness[key] = rr.Token
			}
			warnCount[key]++
			cats[warnKeyCategory(key)] = true
		}
		for cat := range cats {
			if catCount[cat] == 0 {
				catWitness[cat] = rr.Token
			}
			catCount[cat]++
		}
	}

	counterFor := func(has func(RunResult) bool) string {
		for _, rr := range res.Runs {
			if !has(rr) {
				return rr.Token
			}
		}
		return ""
	}
	outcomeOf := func(count int) Outcome {
		switch {
		case count == 0:
			return OutcomeNever
		case count == total:
			return OutcomeAlways
		default:
			return OutcomeSometimes
		}
	}

	for key, count := range warnCount {
		ws := WarningStat{
			Key:      key,
			Category: warnKeyCategory(key),
			Outcome:  outcomeOf(count),
			Runs:     count,
			Witness:  warnWitness[key],
		}
		if ws.Outcome == OutcomeSometimes {
			k := key
			ws.CounterWitness = counterFor(func(rr RunResult) bool {
				for _, w := range rr.Warnings {
					if w == k {
						return true
					}
				}
				return false
			})
		}
		res.Warnings = append(res.Warnings, ws)
	}
	sort.Slice(res.Warnings, func(i, j int) bool { return res.Warnings[i].Key < res.Warnings[j].Key })

	// Category classification covers the union of observed categories
	// and the target's expected set, so "never" is expressible.
	expected := make(map[detect.Category]bool)
	for _, cat := range t.Expect {
		expected[cat] = true
		if _, ok := catCount[cat]; !ok {
			catCount[cat] = 0
		}
	}
	for cat, count := range catCount {
		cs := CategoryStat{
			Category: cat,
			Outcome:  outcomeOf(count),
			Runs:     count,
			Expected: expected[cat],
			Witness:  catWitness[cat],
		}
		if cs.Outcome == OutcomeSometimes {
			c := cat
			cs.CounterWitness = counterFor(func(rr RunResult) bool {
				for _, w := range rr.Warnings {
					if warnKeyCategory(w) == c {
						return true
					}
				}
				return false
			})
		}
		res.Categories = append(res.Categories, cs)
	}
	sort.Slice(res.Categories, func(i, j int) bool { return res.Categories[i].Category < res.Categories[j].Category })

	for fp, count := range fpCount {
		res.Fingerprints = append(res.Fingerprints, FingerprintStat{Fingerprint: fp, Runs: count, Token: fpToken[fp]})
	}
	sort.Slice(res.Fingerprints, func(i, j int) bool {
		a, b := res.Fingerprints[i], res.Fingerprints[j]
		if a.Runs != b.Runs {
			return a.Runs > b.Runs
		}
		return a.Fingerprint < b.Fingerprint
	})
}

// warnKey renders a warning's exploration identity: "category @ location".
func warnKey(w asyncgraph.Warning) string {
	return fmt.Sprintf("%s @ %s", w.Category, w.Loc)
}

// warnKeyCategory recovers the category from a "category @ location"
// warning key.
func warnKeyCategory(key string) detect.Category {
	for i := 0; i+3 <= len(key); i++ {
		if key[i:i+3] == " @ " {
			return detect.Category(key[:i])
		}
	}
	return detect.Category(key)
}
