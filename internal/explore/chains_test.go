package explore

import (
	"bufio"
	"bytes"
	"encoding/json"
	"reflect"
	"testing"
)

// TestChainsAttached: WithChains must leave every witnessed warning stat
// carrying a non-empty async causal chain, and replaying the witness
// token must reproduce the identical warning set and the identical
// chain — the chain is a deterministic function of (target, token).
func TestChainsAttached(t *testing.T) {
	tg := caseTarget(t, "fig4")
	res := mustRun(t, tg, WithRuns(8), WithSeed(1), WithChains())
	if len(res.Warnings) == 0 {
		t.Fatal("no warnings classified")
	}
	for _, ws := range res.Warnings {
		if ws.Witness == "" {
			continue
		}
		if len(ws.Chain) == 0 {
			t.Errorf("%s: witnessed warning has no chain", ws.Key)
			continue
		}
		_, report, err := Replay(tg, ws.Witness)
		if err != nil {
			t.Fatalf("%s: replay %s: %v", ws.Key, ws.Witness, err)
		}
		found := false
		for _, w := range report.Warnings {
			if warnKey(w) != ws.Key {
				continue
			}
			found = true
			if w.ReplayToken != ws.Witness {
				t.Errorf("%s: replayed warning carries token %q, want %q", ws.Key, w.ReplayToken, ws.Witness)
			}
			if !reflect.DeepEqual(w.Chain, ws.Chain) {
				t.Errorf("%s: replayed chain differs from classified chain:\nreplay:   %+v\nclassify: %+v",
					ws.Key, w.Chain, ws.Chain)
			}
		}
		if !found {
			t.Errorf("%s: witness replay did not reproduce the warning", ws.Key)
		}
	}
}

// TestChainsIdenticalAcrossWorkers: the chain attachment happens after
// aggregation, so the classified output — chains included — must be
// byte-identical regardless of how many workers executed the schedules.
func TestChainsIdenticalAcrossWorkers(t *testing.T) {
	tg := caseTarget(t, "SO-17894000")
	seq := mustRun(t, tg, WithRuns(16), WithSeed(3), WithWorkers(1), WithChains())
	par := mustRun(t, tg, WithRuns(16), WithSeed(3), WithWorkers(4), WithChains())
	sj, err := json.Marshal(seq.Warnings)
	if err != nil {
		t.Fatal(err)
	}
	pj, err := json.Marshal(par.Warnings)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(sj, pj) {
		t.Errorf("warning stats differ across worker counts:\nworkers=1: %s\nworkers=4: %s", sj, pj)
	}
}

// TestNDJSONSometimesCarriesBothTokens is the regression test for the
// token contract: every sometimes-classified warning line in the NDJSON
// stream must carry BOTH its witness and its counter-witness replay
// token. A consumer debugging a schedule-dependent warning needs the
// pair — one schedule that shows the bug and one that does not.
func TestNDJSONSometimesCarriesBothTokens(t *testing.T) {
	tg := caseTarget(t, "SO-17894000")
	res := mustRun(t, tg, WithRuns(24), WithSeed(3), WithChains())
	var buf bytes.Buffer
	if err := res.WriteNDJSON(&buf); err != nil {
		t.Fatal(err)
	}
	sometimes := 0
	scanner := bufio.NewScanner(&buf)
	for scanner.Scan() {
		var line struct {
			Kind           string `json:"kind"`
			Key            string `json:"key"`
			Outcome        string `json:"outcome"`
			Witness        string `json:"witness"`
			CounterWitness string `json:"counterWitness"`
			Chain          []any  `json:"chain"`
		}
		if err := json.Unmarshal(scanner.Bytes(), &line); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", scanner.Text(), err)
		}
		if line.Kind != KindWarning || line.Outcome != string(OutcomeSometimes) {
			continue
		}
		sometimes++
		if line.Witness == "" {
			t.Errorf("%s: sometimes warning line without witness token", line.Key)
		}
		if line.CounterWitness == "" {
			t.Errorf("%s: sometimes warning line without counter-witness token", line.Key)
		}
		if len(line.Chain) == 0 {
			t.Errorf("%s: sometimes warning line without chain (explored with WithChains)", line.Key)
		}
	}
	if err := scanner.Err(); err != nil {
		t.Fatal(err)
	}
	if sometimes == 0 {
		t.Fatal("no sometimes-classified warning line in the stream; the regression test exercised nothing")
	}
}
