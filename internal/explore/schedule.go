package explore

import (
	"encoding/base64"
	"encoding/binary"
	"fmt"
	"strings"
)

// tokenPrefix versions the token encoding; bump it if the pick encoding
// or the set of choice points changes incompatibly.
const tokenPrefix = "s1."

// Schedule is the record of one run's scheduling decisions: the i-th
// pick answers the i-th call to Scheduler.Choose. A program replayed
// under the same picks executes byte-for-byte identically, because every
// source of nondeterminism is routed through Choose.
type Schedule struct {
	// Picks holds one choice per Scheduler.Choose call, in call order.
	Picks []int
}

// Token renders the schedule as a compact printable string: the pick
// sequence, trailing zeros trimmed (replay treats positions past the end
// as zero), uvarint-packed and base64url-encoded under an "s1." version
// prefix.
func (s Schedule) Token() string {
	picks := s.Picks
	for len(picks) > 0 && picks[len(picks)-1] == 0 {
		picks = picks[:len(picks)-1]
	}
	buf := make([]byte, 0, len(picks)+8)
	var tmp [binary.MaxVarintLen64]byte
	for _, p := range picks {
		if p < 0 {
			p = 0
		}
		n := binary.PutUvarint(tmp[:], uint64(p))
		buf = append(buf, tmp[:n]...)
	}
	return tokenPrefix + base64.RawURLEncoding.EncodeToString(buf)
}

// ParseToken decodes a schedule token produced by Token.
func ParseToken(tok string) (Schedule, error) {
	if !strings.HasPrefix(tok, tokenPrefix) {
		return Schedule{}, fmt.Errorf("explore: schedule token %q: missing %q prefix", tok, tokenPrefix)
	}
	raw, err := base64.RawURLEncoding.DecodeString(strings.TrimPrefix(tok, tokenPrefix))
	if err != nil {
		return Schedule{}, fmt.Errorf("explore: schedule token %q: %v", tok, err)
	}
	var picks []int
	for len(raw) > 0 {
		v, n := binary.Uvarint(raw)
		if n <= 0 {
			return Schedule{}, fmt.Errorf("explore: schedule token %q: truncated pick sequence", tok)
		}
		if v > 1<<31 {
			return Schedule{}, fmt.Errorf("explore: schedule token %q: pick %d out of range", tok, v)
		}
		picks = append(picks, int(v))
		raw = raw[n:]
	}
	return Schedule{Picks: picks}, nil
}
