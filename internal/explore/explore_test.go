package explore

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"asyncg/internal/detect"
	"asyncg/internal/eventloop"
)

func caseTarget(t *testing.T, id string) Target {
	t.Helper()
	tg, err := CaseTargetByID(id, false)
	if err != nil {
		t.Fatal(err)
	}
	return tg
}

// mustRun explores under a background context, failing the test on a
// (never expected) cancellation error.
func mustRun(t *testing.T, tg Target, opts ...Option) *Result {
	t.Helper()
	res, err := Run(context.Background(), tg, opts...)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestTokenRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 200; i++ {
		picks := make([]int, rng.Intn(40))
		for j := range picks {
			picks[j] = rng.Intn(6)
		}
		tok := Schedule{Picks: picks}.Token()
		back, err := ParseToken(tok)
		if err != nil {
			t.Fatalf("ParseToken(%q): %v", tok, err)
		}
		// Trailing zeros are trimmed by design; replay treats positions
		// past the end as zero, so pad before comparing.
		padded := append([]int{}, back.Picks...)
		for len(padded) < len(picks) {
			padded = append(padded, 0)
		}
		if !reflect.DeepEqual(padded, picks) {
			t.Fatalf("roundtrip %v -> %q -> %v", picks, tok, back.Picks)
		}
	}
	if _, err := ParseToken("bogus"); err == nil {
		t.Fatal("ParseToken accepted a token without prefix")
	}
	if _, err := ParseToken("s1.!!!"); err == nil {
		t.Fatal("ParseToken accepted invalid base64")
	}
}

// TestReplayDeterminism is the replay-fidelity property of the
// acceptance criteria: across at least 100 random seeds, replaying a
// run's token reproduces the identical Async-Graph fingerprint and the
// identical warning set.
func TestReplayDeterminism(t *testing.T) {
	cases := []string{"SO-17894000", "GH-vuex-2"}
	for _, id := range cases {
		tg := caseTarget(t, id)
		for seed := int64(0); seed < 50; seed++ {
			rng := rand.New(rand.NewSource(seed))
			orig, _, _ := runOnce(context.Background(), tg.runFresh, 0, newChooser(AllKinds(), randomNext(rng)), nil, &config{}, newIntern())
			rep, _, err := Replay(tg, orig.Token)
			if err != nil {
				t.Fatalf("%s seed %d: replay: %v", id, seed, err)
			}
			if rep.Fingerprint != orig.Fingerprint {
				t.Errorf("%s seed %d: fingerprint %s != %s (token %s)",
					id, seed, rep.Fingerprint, orig.Fingerprint, orig.Token)
			}
			if !reflect.DeepEqual(rep.Warnings, orig.Warnings) {
				t.Errorf("%s seed %d: warnings %v != %v (token %s)",
					id, seed, rep.Warnings, orig.Warnings, orig.Token)
			}
		}
	}
}

// TestSometimesClassification checks the paper-derived SO-17894000 case
// (listener added within a listener) is schedule-dependent: the 'data'
// and 'end' deliveries become ready at the same instant, so the I/O
// completion order decides whether the inner listener registration ever
// happens. The engine must classify it sometimes, with working witness
// and counter-witness tokens.
func TestSometimesClassification(t *testing.T) {
	tg := caseTarget(t, "SO-17894000")
	res := mustRun(t, tg, WithRuns(24), WithSeed(3))
	var found *WarningStat
	for i := range res.Warnings {
		if res.Warnings[i].Category == detect.CatListenerInListener {
			found = &res.Warnings[i]
			break
		}
	}
	if found == nil {
		t.Fatalf("no %s warning observed in %d runs", detect.CatListenerInListener, len(res.Runs))
	}
	if found.Outcome != OutcomeSometimes {
		t.Fatalf("%s classified %s, want %s", found.Key, found.Outcome, OutcomeSometimes)
	}
	if found.Witness == "" || found.CounterWitness == "" {
		t.Fatalf("sometimes warning missing tokens: witness=%q counter=%q", found.Witness, found.CounterWitness)
	}

	wit, _, err := Replay(tg, found.Witness)
	if err != nil {
		t.Fatal(err)
	}
	if !hasKey(wit.Warnings, found.Key) {
		t.Errorf("witness %s does not reproduce %s (got %v)", found.Witness, found.Key, wit.Warnings)
	}
	cnt, _, err := Replay(tg, found.CounterWitness)
	if err != nil {
		t.Fatal(err)
	}
	if hasKey(cnt.Warnings, found.Key) {
		t.Errorf("counter-witness %s still shows %s", found.CounterWitness, found.Key)
	}

	// The category-level classification must agree and mark the
	// case study's expected category.
	for _, cs := range res.Categories {
		if cs.Category == detect.CatListenerInListener {
			if cs.Outcome != OutcomeSometimes || !cs.Expected {
				t.Errorf("category stat = %+v, want expected sometimes", cs)
			}
		}
	}
}

// TestExhaustiveCoversRandom: on a small case the exhaustive strategy
// must terminate within budget and visit every distinct fingerprint that
// random sampling finds.
func TestExhaustiveCoversRandom(t *testing.T) {
	tg := caseTarget(t, "SO-17894000")
	kinds := []eventloop.ChoiceKind{eventloop.ChoiceIOOrder, eventloop.ChoiceLatency}
	ex := mustRun(t, tg, WithRuns(400), WithStrategy(NewExhaustive(false)), WithKinds(kinds...))
	if !ex.Exhausted {
		t.Fatalf("exhaustive strategy did not finish in %d runs", len(ex.Runs))
	}
	covered := make(map[string]bool)
	for _, fp := range ex.Fingerprints {
		covered[fp.Fingerprint] = true
	}
	rnd := mustRun(t, tg, WithRuns(60), WithSeed(11), WithKinds(kinds...))
	for _, fp := range rnd.Fingerprints {
		if !covered[fp.Fingerprint] {
			t.Errorf("random found fingerprint %s (token %s) missed by exhaustive enumeration", fp.Fingerprint, fp.Token)
		}
	}
	if len(ex.Fingerprints) < 2 {
		t.Errorf("expected schedule-dependent graph shapes, got %d fingerprint(s)", len(ex.Fingerprints))
	}
}

// TestDelayBound: the delay strategy deviates from the default schedule
// in at most DelayBound positions per run.
func TestDelayBound(t *testing.T) {
	tg := caseTarget(t, "SO-17894000")
	const bound = 2
	for seed := int64(0); seed < 10; seed++ {
		rng := rand.New(rand.NewSource(seed))
		ch := newChooser(DefaultKinds(), delayNext(rng, bound))
		runOnce(context.Background(), tg.runFresh, 0, ch, nil, &config{}, newIntern())
		nonzero := 0
		for _, p := range ch.picks {
			if p != 0 {
				nonzero++
			}
		}
		if nonzero > bound {
			t.Fatalf("seed %d: %d non-default picks, bound %d", seed, nonzero, bound)
		}
	}
}

// TestDefaultScheduleMatchesNoScheduler: the all-zero schedule must
// reproduce the historical deterministic order, so exploration results
// always include the unperturbed baseline.
func TestDefaultScheduleMatchesNoScheduler(t *testing.T) {
	for _, id := range []string{"SO-17894000", "GH-npm-12754", "fig4"} {
		tg := caseTarget(t, id)
		base, err := tg.Run()
		if err != nil && err != eventloop.ErrTickLimit {
			t.Fatalf("%s: %v", id, err)
		}
		zero, _, rerr := Replay(tg, Schedule{}.Token())
		if rerr != nil {
			t.Fatalf("%s: %v", id, rerr)
		}
		if base.Graph.Fingerprint() != zero.Fingerprint {
			t.Errorf("%s: zero schedule fingerprint %s != unscheduled %s", id, zero.Fingerprint, base.Graph.Fingerprint())
		}
	}
}

// TestAlwaysClassification: GH-npm-12754's recursive-microtask drain is
// schedule-independent (the starvation happens before any I/O or timer
// choice can matter), so exploration must classify it always.
func TestAlwaysClassification(t *testing.T) {
	tg := caseTarget(t, "GH-npm-12754")
	res := mustRun(t, tg, WithRuns(8), WithSeed(5))
	found := false
	for _, cs := range res.Categories {
		if cs.Category == detect.CatRecursiveMicrotask {
			found = true
			if cs.Outcome != OutcomeAlways {
				t.Errorf("recursive-microtask classified %s, want always", cs.Outcome)
			}
		}
	}
	if !found {
		t.Fatal("recursive-microtask not classified at all")
	}
}

func TestAcmeAirExploreAndReplay(t *testing.T) {
	if testing.Short() {
		t.Skip("acmeair exploration in -short mode")
	}
	tg := AcmeAirTarget(30, 3, 1)
	res := mustRun(t, tg, WithRuns(2), WithSeed(9))
	if len(res.Runs) != 2 {
		t.Fatalf("got %d runs", len(res.Runs))
	}
	for _, rr := range res.Runs {
		if rr.Err != "" {
			t.Fatalf("run %d failed: %s", rr.Index, rr.Err)
		}
		rep, _, err := Replay(tg, rr.Token)
		if err != nil {
			t.Fatal(err)
		}
		if rep.Fingerprint != rr.Fingerprint {
			t.Errorf("run %d: replay fingerprint %s != %s", rr.Index, rep.Fingerprint, rr.Fingerprint)
		}
	}
}

func TestWriteNDJSON(t *testing.T) {
	tg := caseTarget(t, "SO-17894000")
	res := mustRun(t, tg, WithRuns(6), WithSeed(1))
	var buf bytes.Buffer
	if err := res.WriteNDJSON(&buf); err != nil {
		t.Fatal(err)
	}
	scanner := bufio.NewScanner(&buf)
	kinds := make(map[string]int)
	var lastKind string
	for scanner.Scan() {
		var line map[string]any
		if err := json.Unmarshal(scanner.Bytes(), &line); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", scanner.Text(), err)
		}
		kind, _ := line["kind"].(string)
		kinds[kind]++
		lastKind = kind
	}
	if kinds[KindRun] != 6 {
		t.Errorf("got %d %s lines, want 6", kinds[KindRun], KindRun)
	}
	if kinds[KindSummary] != 1 || lastKind != KindSummary {
		t.Errorf("summary line count=%d last=%q", kinds[KindSummary], lastKind)
	}
	if kinds[KindWarning] == 0 {
		t.Error("no warning lines")
	}

	var text strings.Builder
	if err := res.WriteText(&text); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(text.String(), "distinct async-graph fingerprints") {
		t.Errorf("text report missing fingerprint census:\n%s", text.String())
	}
}

func hasKey(keys []string, key string) bool {
	for _, k := range keys {
		if k == key {
			return true
		}
	}
	return false
}
