package explore

import (
	"context"
	"reflect"
	"runtime"
	"testing"
	"time"

	"asyncg"
	"asyncg/internal/eventloop"
)

// spinTarget is a program whose every run is an unbounded setImmediate
// chain: left alone it would grind until an absurd tick limit, so the
// only way an exploration of it finishes quickly is the context
// interrupt firing at a tick boundary inside the run. It makes in-run
// cancellation (as opposed to the cheap between-run poll) observable.
func spinTarget() Target {
	return Target{
		Name: "spin (endless immediates)",
		Run: func(extra ...asyncg.Option) (*asyncg.Report, error) {
			opts := append([]asyncg.Option{asyncg.WithLoop(eventloop.Options{TickLimit: 1 << 40})}, extra...)
			s := asyncg.New(opts...)
			return s.Run(func(ctx *asyncg.Context) {
				var spin *asyncg.Function
				spin = asyncg.F("spin", func(args []asyncg.Value) asyncg.Value {
					ctx.SetImmediate(spin)
					return asyncg.Undefined
				})
				ctx.SetImmediate(spin)
			})
		},
	}
}

// TestRunPreCancelled: a context cancelled before Run is called returns
// promptly with zero completed runs for every strategy and worker
// count — the acceptance bar for job cancellation in the server.
func TestRunPreCancelled(t *testing.T) {
	tg := caseTarget(t, "SO-17894000")
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	strategies := []func() Strategy{
		func() Strategy { return NewRandom(0) },
		func() Strategy { return NewDelay(0, 2) },
		func() Strategy { return NewExhaustive(false) },
		func() Strategy { return NewCoverage(0) },
	}
	for _, mk := range strategies {
		for _, workers := range []int{1, 4} {
			strat := mk()
			res, err := Run(ctx, tg, WithRuns(50), WithStrategy(strat), WithWorkers(workers))
			if err != context.Canceled {
				t.Errorf("%s/workers=%d: err = %v, want context.Canceled", strat.Name(), workers, err)
			}
			if len(res.Runs) != 0 {
				t.Errorf("%s/workers=%d: %d runs completed under a pre-cancelled context", strat.Name(), workers, len(res.Runs))
			}
		}
	}
}

// TestRunCancelMidway cancels from the progress callback a few runs in:
// the exploration must stop early, report the context error, and the
// partial Result must be exactly a prefix of the uncancelled sequential
// exploration — cancellation never emits a truncated run.
func TestRunCancelMidway(t *testing.T) {
	tg := caseTarget(t, "SO-17894000")
	const budget = 500
	full := mustRun(t, tg, WithRuns(64), WithSeed(2))

	for _, workers := range []int{1, 4} {
		ctx, cancel := context.WithCancel(context.Background())
		seen := 0
		res, err := Run(ctx, tg, WithRuns(budget), WithSeed(2), WithWorkers(workers),
			WithProgress(func(RunResult) {
				seen++
				if seen == 5 {
					cancel()
				}
			}))
		cancel()
		if err != context.Canceled {
			t.Fatalf("workers=%d: err = %v, want context.Canceled", workers, err)
		}
		if len(res.Runs) < 5 || len(res.Runs) == budget {
			t.Fatalf("workers=%d: %d runs completed, want a proper prefix of %d with at least 5", workers, len(res.Runs), budget)
		}
		for i, rr := range res.Runs {
			if rr.Index != i {
				t.Fatalf("workers=%d: run %d has index %d; partial result is not a contiguous prefix", workers, i, rr.Index)
			}
			if i < len(full.Runs) && !reflect.DeepEqual(rr, full.Runs[i]) {
				t.Fatalf("workers=%d: run %d diverges from the uncancelled exploration:\n got %+v\nwant %+v", workers, i, rr, full.Runs[i])
			}
		}
	}
}

// TestRunCancelStopsSpinningRun: cancellation must reach inside a run,
// not just between runs — a deadline expiring mid-spin stops the
// endless-immediate target at its next tick boundary, workers drain,
// and the truncated runs are discarded.
func TestRunCancelStopsSpinningRun(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	start := time.Now()
	res, err := Run(ctx, spinTarget(), WithRuns(4), WithWorkers(2))
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("cancellation took %v; the in-run interrupt is not firing", elapsed)
	}
	if err != context.DeadlineExceeded {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	if len(res.Runs) != 0 {
		t.Fatalf("%d truncated spin runs leaked into the result", len(res.Runs))
	}
}

// TestRunCancelNoGoroutineLeak: after cancelled parallel explorations
// (including exhaustive) the coordinator must have drained every
// worker — the goroutine count returns to its baseline.
func TestRunCancelNoGoroutineLeak(t *testing.T) {
	tg := caseTarget(t, "SO-17894000")
	before := runtime.NumGoroutine()

	for _, mk := range []func() Strategy{
		func() Strategy { return NewRandom(0) },
		func() Strategy { return NewExhaustive(false) },
		func() Strategy { return NewCoverage(0) },
	} {
		strat := mk()
		ctx, cancel := context.WithCancel(context.Background())
		seen := 0
		_, err := Run(ctx, tg, WithRuns(500), WithStrategy(strat), WithWorkers(4),
			WithProgress(func(RunResult) {
				seen++
				if seen == 3 {
					cancel()
				}
			}))
		cancel()
		if err != context.Canceled {
			t.Fatalf("%s: err = %v, want context.Canceled", strat.Name(), err)
		}
	}
	// Cancelled spin runs exercise the interrupt-drain path too.
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	Run(ctx, spinTarget(), WithRuns(4), WithWorkers(4))
	cancel()

	// Workers unwind asynchronously after the coordinator returns only
	// in the sense of scheduler latency; give them a moment.
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= before {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines: %d before, %d after cancelled explorations", before, runtime.NumGoroutine())
		}
		time.Sleep(20 * time.Millisecond)
	}
}
