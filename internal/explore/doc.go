// Package explore is the schedule-space exploration engine: it runs a
// program under N systematically-varied schedules — every unspecified
// ordering in the simulated Node.js runtime (I/O poll completion order,
// same-deadline timer ties, I/O latency jitter, and opt-in listener and
// result-set orders) is reduced to a discrete choice point — and reports
// which detector warnings are schedule-dependent.
//
// Each run is summarized by a replayable Schedule token and a canonical
// Async-Graph fingerprint; aggregation classifies each warning as
// always, sometimes (with witness and counter-witness tokens), or never.
// The approach follows the systematic-testing framing of Ganty &
// Majumdar's "Algorithmic Verification of Asynchronous Programs": our
// deterministic event loop makes every schedule reproducible, so
// exploring the schedule space is just enumerating pick vectors.
//
// # Debug options: one semantics table
//
// Three options spread debugging detail across the two API layers —
// [asyncg.WithDebugStacks] on a single session, and [WithDebugStacks]
// and [WithChains] on an exploration. This table is the canonical
// statement of their semantics; each option's doc comment refers back
// here. All three are observing probes: none perturbs scheduling,
// fingerprints, or warning classification, so enabling them never
// changes which bugs are found or a Result's canonical identity.
//
//	Option                    Layer        Applies to                       Cost                              Output surface
//	[asyncg.WithDebugStacks]  session      the one Run of that Session      stack capture + symbolization     Warning provenance frames
//	                                                                        per tracked API call              (asyncg.Report.Warnings)
//	[WithDebugStacks]         exploration  every schedule executed, plus    the session cost times every      frames on every chain hop
//	                                       every witness replay             run — the dominant builder cost   (WarningStat.Chain)
//	[WithChains]              exploration  aggregation only                 one extra replay per distinct     WarningStat.Chain with
//	                                                                        witness token                     location-labelled hops
//
// The composition rules fall out of the table: [WithDebugStacks] is
// exactly [asyncg.WithDebugStacks] applied uniformly to every run the
// exploration makes, so a Target never needs to thread the session
// option itself; [WithChains] alone yields chains whose hops carry
// source locations; adding [WithDebugStacks] upgrades those hops with
// the captured Go frames. Chains are a deterministic function of
// (target, witness token), which keeps Results byte-identical for any
// worker count and across fleet merges.
package explore
