package explore

import (
	"asyncg/internal/eventloop"
)

// Option configures an exploration, mirroring the asyncg.New functional
// options. Options are applied in order; later options win. The zero
// configuration (no options) explores 32 random schedules with seed 0 —
// see config for the per-field defaults.
type Option func(*config)

// WithRuns bounds the number of executed schedules (the exhaustive
// strategy treats it as a budget and may stop earlier).
func WithRuns(n int) Option {
	return func(c *config) { c.Runs = n }
}

// WithSeed sets the base seed recorded in Result.Seed and consumed by
// the default strategy (random); run i derives its generator from
// seed+i, so explorations are reproducible. A strategy installed with
// WithStrategy owns its seed — pass it to the constructor instead.
func WithSeed(seed int64) Option {
	return func(c *config) { c.Seed = seed }
}

// WithStrategy installs the schedule-space walk — a built-in strategy
// (NewRandom, NewDelay, NewExhaustive, NewCoverage, or StrategyFor for
// name-based construction) or any custom Strategy implementation.
// Strategy instances are stateful and single-use: build a fresh one per
// exploration. Without this option the engine uses NewRandom(seed).
func WithStrategy(s Strategy) Option {
	return func(c *config) { c.Strategy = s }
}

// WithKinds restricts which choice-point classes are perturbed; without
// it DefaultKinds applies.
func WithKinds(kinds ...eventloop.ChoiceKind) Option {
	return func(c *config) { c.Kinds = kinds }
}

// WithWorkers sets how many schedules execute concurrently (0 means
// GOMAXPROCS, 1 strictly sequential). The Result is byte-identical for
// any worker count.
func WithWorkers(n int) Option {
	return func(c *config) { c.Workers = n }
}

// WithProgress registers a callback that receives every completed
// RunResult in run-index order, as soon as all earlier runs have also
// completed — the hook the analysis server and the CLI use to stream
// NDJSON run lines while the exploration is still going. The callback
// runs on the coordinating goroutine (never concurrently with itself)
// and must not block for long: with multiple workers a slow callback
// stalls result emission, though never the schedule executions.
func WithProgress(fn func(RunResult)) Option {
	return func(c *config) { c.Progress = fn }
}

// WithRunFeedback copies each run's choice-point record — the domain
// size and independence flag of every pick — into RunResult.Domains and
// RunResult.Independent. This is the exhaustive strategy's Observe input
// exported over the wire: a fleet coordinator dispatching prefix shards
// to remote workers needs it to expand the breadth-first frontier
// exactly as a local exploration would. Off by default; the fields are
// stripped again before merged results are compared, so enabling it
// never changes a Result's canonical JSON.
func WithRunFeedback() Option {
	return func(c *config) { c.Feedback = true }
}

// WithChains attaches async causal chains to the classified warnings:
// after aggregation, each distinct witness token is replayed once and
// every warning's chain is walked backwards on the replayed graph
// (WarningStat.Chain, rendered by the CLI's -chains flag and carried
// additively through NDJSON and the serve/fleet surfaces). See the
// package comment's "Debug options: one semantics table" for how it
// relates to [WithDebugStacks] and [asyncg.WithDebugStacks].
func WithChains() Option {
	return func(c *config) { c.Chains = true }
}

// WithDebugStacks runs every schedule (and every witness replay) under
// [asyncg.WithDebugStacks]: the graph builder captures the Go call
// stack at each promise/emitter creation, trigger, and registration,
// and chain hops carry the frames. Opt-in — stack symbolization per
// tracked API call dominates the builder's cost (see EXPERIMENTS.md).
// See the package comment's "Debug options: one semantics table" for
// scope, cost, and composition with [WithChains].
func WithDebugStacks() Option {
	return func(c *config) { c.DebugStacks = true }
}

// WithRunMetrics attaches the trace metrics registry to every run and
// aggregates the per-run snapshots into Result.Metrics (merge order is
// irrelevant — see trace.Snapshot.Merge — so the aggregate is identical
// for any worker count). The registry is an observing probe only; it
// never perturbs scheduling.
func WithRunMetrics() Option {
	return func(c *config) { c.RunMetrics = true }
}
