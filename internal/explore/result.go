package explore

import (
	"fmt"
	"io"

	"asyncg/internal/provenance"
)

// BudgetNote describes a mismatch between the requested run budget and
// the enumerated schedule space — only meaningful for the exhaustive
// strategy, where the space has a definite size: the empty string when
// the budget matched, otherwise a one-line warning that the space was
// exhausted early (fewer runs than requested) or truncated (the space
// is larger than the budget).
func (r *Result) BudgetNote() string {
	if r.Strategy != StrategyExhaustive || r.Requested == 0 {
		return ""
	}
	switch {
	case r.Exhausted && len(r.Runs) < r.Requested:
		return fmt.Sprintf("schedule space exhausted after %d run(s), fewer than the %d requested",
			len(r.Runs), r.Requested)
	case !r.Exhausted:
		return fmt.Sprintf("schedule space larger than the %d-run budget; enumeration truncated (increase -runs to finish)",
			r.Requested)
	}
	return ""
}

// WriteText renders the exploration summary as a human-readable report.
func (r *Result) WriteText(w io.Writer) error {
	distinct := len(r.Fingerprints)
	exhausted := ""
	if r.Strategy == StrategyExhaustive {
		exhausted = " exhausted=false"
		if r.Exhausted {
			exhausted = " exhausted=true"
		}
	}
	if _, err := fmt.Fprintf(w, "explored %s: %d runs, strategy=%s, seed=%d%s\n",
		r.Target, len(r.Runs), r.Strategy, r.Seed, exhausted); err != nil {
		return err
	}
	if note := r.BudgetNote(); note != "" {
		fmt.Fprintf(w, "note: %s\n", note)
	}
	fmt.Fprintf(w, "\ndistinct async-graph fingerprints: %d\n", distinct)
	for _, fp := range r.Fingerprints {
		fmt.Fprintf(w, "  %-22s %4d run(s)   replay %s\n", fp.Fingerprint, fp.Runs, fp.Token)
	}
	fmt.Fprintf(w, "\nwarnings (%d distinct):\n", len(r.Warnings))
	if len(r.Warnings) == 0 {
		fmt.Fprintf(w, "  none observed in any schedule\n")
	}
	for _, ws := range r.Warnings {
		fmt.Fprintf(w, "  [%-9s] %-60s %d/%d runs\n", ws.Outcome, ws.Key, ws.Runs, len(r.Runs))
		if ws.Outcome == OutcomeSometimes {
			fmt.Fprintf(w, "              witness         %s\n", ws.Witness)
			fmt.Fprintf(w, "              counter-witness %s\n", ws.CounterWitness)
		} else if ws.Witness != "" && len(ws.Chain) > 0 {
			fmt.Fprintf(w, "              replay          %s\n", ws.Witness)
		}
		if len(ws.Chain) > 0 {
			fmt.Fprintf(w, "              async stack trace:\n")
			if err := provenance.Render(w, ws.Chain, "                "); err != nil {
				return err
			}
		}
	}
	fmt.Fprintf(w, "\ncategories (* = expected by the case study):\n")
	for _, cs := range r.Categories {
		mark := " "
		if cs.Expected {
			mark = "*"
		}
		if _, err := fmt.Fprintf(w, " %s[%-9s] %-40s %d/%d runs\n", mark, cs.Outcome, cs.Category, cs.Runs, len(r.Runs)); err != nil {
			return err
		}
	}
	return nil
}
