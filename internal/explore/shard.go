package explore

import (
	"fmt"
	"math/rand"
)

// This file is the sharding surface of the exploration engine: the
// exported description of one deterministic slice of a strategy's
// schedule space (ShardSpec), the Strategy that executes exactly that
// slice (ShardStrategy), and the merge primitive (Finalize) that
// rebuilds a Result's aggregate sections after shard results have been
// stitched back into global run order. Together they let a fleet
// coordinator fan one exploration across many asyncg serve workers and
// still produce output byte-identical to a single-process Run at the
// same budget.

// CoverageGenerationSize is the coverage strategy's planning quantum:
// runs are planned in generations of this many, and generation g sees
// exactly the corpus accumulated from generations < g. A coverage
// ShardSpec must stay inside one generation — the corpus snapshot it
// carries is only constant within the generation.
const CoverageGenerationSize = coverageGeneration

// ShardSpec describes one deterministic slice of an exploration: the
// shard's runs are the global run indices [Start, Start+Runs), planned
// exactly as the named full-exploration strategy would plan them. The
// strategy-specific payload makes the shard self-contained:
//
//   - random/delay need only the base Seed — run i derives its generator
//     from Seed+i, so any index range is independently computable.
//   - coverage additionally carries Corpus, the replay tokens of the
//     mutation corpus visible to the shard's generation (the schedules
//     that discovered a new fingerprint in generations before it).
//   - exhaustive carries Prefixes, the breadth-first forced pick
//     prefixes (as replay tokens) for each of the shard's runs; the
//     coordinator owns the frontier and expands it from run feedback.
type ShardSpec struct {
	// Strategy names the sharded walk (StrategyRandom, StrategyDelay,
	// StrategyCoverage, StrategyExhaustive).
	Strategy string `json:"strategy"`
	// Seed is the exploration's base seed (random, delay, coverage).
	Seed int64 `json:"seed,omitempty"`
	// Start is the global run index of the shard's first run.
	Start int `json:"start"`
	// Runs is the number of runs in the shard.
	Runs int `json:"runs"`
	// DelayBound caps non-default picks per run (delay; 0 means 2).
	DelayBound int `json:"delayBound,omitempty"`
	// Prefixes holds one forced pick prefix per run, as replay tokens
	// (exhaustive only; len(Prefixes) == Runs).
	Prefixes []string `json:"prefixes,omitempty"`
	// Corpus holds the mutation-corpus schedules visible to the shard's
	// generation, as replay tokens in discovery order (coverage only).
	Corpus []string `json:"corpus,omitempty"`
}

// Validate checks the spec's internal coherence: a known strategy, a
// positive in-range window, and a strategy payload that matches (and a
// coverage window that stays inside its generation).
func (s ShardSpec) Validate() error {
	if s.Runs <= 0 {
		return fmt.Errorf("explore: shard needs a positive run count, got %d", s.Runs)
	}
	if s.Start < 0 {
		return fmt.Errorf("explore: negative shard start %d", s.Start)
	}
	switch s.Strategy {
	case StrategyRandom, StrategyDelay:
		if len(s.Prefixes) != 0 || len(s.Corpus) != 0 {
			return fmt.Errorf("explore: %s shard carries no prefixes or corpus", s.Strategy)
		}
	case StrategyCoverage:
		if len(s.Prefixes) != 0 {
			return fmt.Errorf("explore: coverage shard carries no prefixes")
		}
		if s.Start/coverageGeneration != (s.Start+s.Runs-1)/coverageGeneration {
			return fmt.Errorf("explore: coverage shard [%d,%d) crosses a generation boundary (size %d)",
				s.Start, s.Start+s.Runs, coverageGeneration)
		}
	case StrategyExhaustive:
		if len(s.Prefixes) != s.Runs {
			return fmt.Errorf("explore: exhaustive shard has %d prefixes for %d runs", len(s.Prefixes), s.Runs)
		}
		if len(s.Corpus) != 0 {
			return fmt.Errorf("explore: exhaustive shard carries no corpus")
		}
	default:
		return fmt.Errorf("explore: unknown shard strategy %q", s.Strategy)
	}
	return nil
}

// ShardStrategy builds the Strategy that executes exactly the spec's
// slice of the global exploration: local run j is planned as global run
// Start+j would be under the full strategy. The result is feedback-free
// by construction — all cross-run feedback (coverage corpus growth,
// exhaustive frontier expansion, NewGraph flags) belongs to the
// coordinator that issued the shard — so a shard's runs are identical
// at any worker count and any shard decomposition.
func ShardStrategy(spec ShardSpec) (Strategy, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	s := &shardStrategy{spec: spec}
	for _, tok := range spec.Corpus {
		sched, err := ParseToken(tok)
		if err != nil {
			return nil, fmt.Errorf("explore: shard corpus: %v", err)
		}
		s.corpus = append(s.corpus, sched.Picks)
	}
	for _, tok := range spec.Prefixes {
		sched, err := ParseToken(tok)
		if err != nil {
			return nil, fmt.Errorf("explore: shard prefix: %v", err)
		}
		s.prefixes = append(s.prefixes, sched.Picks)
	}
	return s, nil
}

// shardStrategy plans one ShardSpec's runs (see ShardStrategy).
type shardStrategy struct {
	spec     ShardSpec
	corpus   [][]int // coverage: parsed corpus schedules, discovery order
	prefixes [][]int // exhaustive: parsed forced prefixes, one per run
}

func (s *shardStrategy) Name() string { return s.spec.Strategy }

func (s *shardStrategy) Plan(j int) (PickFunc, PlanState) {
	if j >= s.spec.Runs {
		return nil, PlanDone
	}
	global := int64(s.spec.Start + j)
	switch s.spec.Strategy {
	case StrategyRandom:
		return randomNext(rand.New(rand.NewSource(s.spec.Seed + global))), PlanReady
	case StrategyDelay:
		bound := s.spec.DelayBound
		if bound <= 0 {
			bound = 2
		}
		return delayNext(rand.New(rand.NewSource(s.spec.Seed+global)), bound), PlanReady
	case StrategyCoverage:
		// Mirrors coverageStrategy.Plan exactly, with the generation's
		// corpus snapshot frozen into the spec: same rng derivation, same
		// exploration/exploitation draw, same energy weighting.
		rng := rand.New(rand.NewSource(s.spec.Seed + global))
		if len(s.corpus) == 0 || rng.Intn(4) == 0 {
			return randomNext(rng), PlanReady
		}
		return mutateNext(rng, s.corpus[pickWeighted(rng, len(s.corpus))]), PlanReady
	default: // StrategyExhaustive — Validate guarantees the prefix exists.
		return playbackNext(s.prefixes[j]), PlanReady
	}
}

func (s *shardStrategy) Observe(Feedback) {}

// Finalize re-derives a Result's aggregate sections — the fingerprint
// census, the warning and category classification, and NewGraphs — from
// its Runs, replacing whatever was there. It is the merge primitive of
// the fleet coordinator: after shard results are stitched back into
// global run order (indices rewritten, NewGraph flags recomputed against
// the global fingerprint set), Finalize rebuilds exactly the aggregates
// a single-process Run would have produced, because aggregation is a
// pure function of the ordered run records and the target's Expect set.
func Finalize(t Target, res *Result) {
	res.Fingerprints, res.Warnings, res.Categories = nil, nil, nil
	aggregate(t, res)
	res.NewGraphs = len(res.Fingerprints)
}
