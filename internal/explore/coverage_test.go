package explore

import (
	"context"
	"math/rand"
	"reflect"
	"testing"

	"asyncg/internal/eventloop"
)

// TestMutatedScheduleRoundTrip is the greybox-mutation determinism
// property: mutating a corpus seed schedule is a pure function of the
// rng, and whatever schedule a mutated run actually followed is fully
// captured by its replay token — the mutation loop can never produce a
// run it cannot reproduce.
func TestMutatedScheduleRoundTrip(t *testing.T) {
	tg := caseTarget(t, "SO-17894000")
	for seed := int64(0); seed < 25; seed++ {
		// A random run donates its recorded picks as the corpus seed.
		base, _, _ := runOnce(context.Background(), tg.runFresh, 0,
			newChooser(AllKinds(), randomNext(rand.New(rand.NewSource(seed)))), nil, &config{}, newIntern())
		sched, err := ParseToken(base.Token)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}

		// Two mutations from the same generator state must agree on
		// every pick, hence on the token and the resulting graph.
		mut := func() (RunResult, []int) {
			ch := newChooser(AllKinds(), mutateNext(rand.New(rand.NewSource(seed+1000)), sched.Picks))
			rr, _, _ := runOnce(context.Background(), tg.runFresh, 0, ch, nil, &config{}, newIntern())
			return rr, ch.picks
		}
		rr1, picks1 := mut()
		rr2, picks2 := mut()
		if rr1.Token != rr2.Token || !reflect.DeepEqual(picks1, picks2) {
			t.Fatalf("seed %d: mutation not deterministic: %q/%v vs %q/%v",
				seed, rr1.Token, picks1, rr2.Token, picks2)
		}
		if rr1.Fingerprint != rr2.Fingerprint {
			t.Fatalf("seed %d: mutated fingerprints diverge: %s vs %s", seed, rr1.Fingerprint, rr2.Fingerprint)
		}

		// The mutated run's token replays to the identical graph and
		// warning set.
		rep, _, err := Replay(tg, rr1.Token)
		if err != nil {
			t.Fatalf("seed %d: replay %q: %v", seed, rr1.Token, err)
		}
		if rep.Fingerprint != rr1.Fingerprint {
			t.Errorf("seed %d: replayed mutation fingerprint %s != %s (token %s)",
				seed, rep.Fingerprint, rr1.Fingerprint, rr1.Token)
		}
		if !reflect.DeepEqual(rep.Warnings, rr1.Warnings) {
			t.Errorf("seed %d: replayed mutation warnings %v != %v", seed, rep.Warnings, rr1.Warnings)
		}
	}
}

// outcomeMaps projects a Result onto its schedule-space classification:
// warning key → outcome and category → outcome. Witness tokens and run
// counts are deliberately excluded — different enumeration orders
// legitimately pick different witnesses.
func outcomeMaps(r *Result) (map[string]Outcome, map[string]Outcome) {
	warns := make(map[string]Outcome, len(r.Warnings))
	for _, ws := range r.Warnings {
		warns[ws.Key] = ws.Outcome
	}
	cats := make(map[string]Outcome, len(r.Categories))
	for _, cs := range r.Categories {
		cats[string(cs.Category)] = cs.Outcome
	}
	return warns, cats
}

// TestPORSoundness is the partial-order-reduction acceptance property:
// on every case the pruned exhaustive enumeration produces exactly the
// always/sometimes/never classification of the unpruned one while never
// executing more schedules — and on the fan-out case, whose I/O
// completions are pairwise independent, it executes measurably fewer
// with a non-zero PrunedPicks count.
func TestPORSoundness(t *testing.T) {
	kinds := []eventloop.ChoiceKind{eventloop.ChoiceIOOrder, eventloop.ChoiceLatency}
	for _, id := range []string{"SO-17894000", "GH-vuex-2", "GH-flock-13", "SO-50996870", "fanout-join"} {
		tg := caseTarget(t, id)
		full := mustRun(t, tg, WithRuns(3000), WithStrategy(NewExhaustive(false)), WithKinds(kinds...))
		pruned := mustRun(t, tg, WithRuns(3000), WithStrategy(NewExhaustive(true)), WithKinds(kinds...))
		if !full.Exhausted || !pruned.Exhausted {
			t.Fatalf("%s: enumeration truncated (full=%v pruned=%v); raise the budget", id, full.Exhausted, pruned.Exhausted)
		}
		fw, fc := outcomeMaps(full)
		pw, pc := outcomeMaps(pruned)
		if !reflect.DeepEqual(fw, pw) {
			t.Errorf("%s: POR changed warning classification\nfull:   %v\npruned: %v", id, fw, pw)
		}
		if !reflect.DeepEqual(fc, pc) {
			t.Errorf("%s: POR changed category classification\nfull:   %v\npruned: %v", id, fc, pc)
		}
		if len(pruned.Runs) > len(full.Runs) {
			t.Errorf("%s: POR executed more schedules (%d) than the full enumeration (%d)",
				id, len(pruned.Runs), len(full.Runs))
		}
		if id == "fanout-join" {
			if len(pruned.Runs) >= len(full.Runs) {
				t.Errorf("fanout-join: POR did not reduce the schedule count (%d vs %d)",
					len(pruned.Runs), len(full.Runs))
			}
			if pruned.PrunedPicks == 0 {
				t.Error("fanout-join: PrunedPicks = 0, want the pruned siblings counted")
			}
		}
	}
}

// TestCoverageBeatsRandom is the coverage-strategy acceptance property:
// at an equal run budget and pinned seeds, the fingerprint-corpus
// strategy discovers at least as many distinct Async-Graph shapes as
// blind random sampling on every case, and strictly more in aggregate
// thanks to the AcmeAir workload's large schedule space.
func TestCoverageBeatsRandom(t *testing.T) {
	targets := []Target{
		caseTarget(t, "SO-17894000"),
		caseTarget(t, "GH-vuex-2"),
		caseTarget(t, "fig4"),
		caseTarget(t, "GH-flock-13"),
		caseTarget(t, "fanout-join"),
	}
	runs := 40
	if !testing.Short() {
		targets = append(targets, AcmeAirTarget(20, 3, 1))
	}
	totalRandom, totalCoverage := 0, 0
	for _, tg := range targets {
		rnd := mustRun(t, tg, WithRuns(runs), WithSeed(1))
		cov := mustRun(t, tg, WithRuns(runs), WithStrategy(NewCoverage(1)))
		if cov.NewGraphs < rnd.NewGraphs {
			t.Errorf("%s: coverage found %d fingerprints, random found %d at the same %d-run budget",
				tg.Name, cov.NewGraphs, rnd.NewGraphs, runs)
		}
		if cov.CorpusSize == 0 {
			t.Errorf("%s: coverage finished with an empty corpus", tg.Name)
		}
		totalRandom += rnd.NewGraphs
		totalCoverage += cov.NewGraphs
	}
	if !testing.Short() && totalCoverage <= totalRandom {
		t.Errorf("suite aggregate: coverage %d fingerprints vs random %d, want strictly more", totalCoverage, totalRandom)
	}
}
