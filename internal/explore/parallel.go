package explore

import (
	"context"

	"asyncg/internal/trace"
)

// This file implements the engine's single coordinator: one loop drives
// every strategy at every worker count.
//
// Every run is an isolated single-threaded simulation: Target.Run builds
// a fresh session (event loop, VM object-identity counters, graph
// builder, detectors, scheduler) per call, and nothing about a run's
// RunResult depends on cross-run state. That makes the schedule space
// embarrassingly parallel — the coordinator's work is asking the
// strategy what to run next, handing each worker its PickFunc, and
// reassembling results in run-index order so the aggregate Result is
// byte-identical to a sequential exploration.
//
// The feedback loop is the part that must not race: strategies plan
// from what they have observed (the exhaustive frontier grows out of
// completed runs; the coverage corpus accumulates new-fingerprint
// schedules). Observe is therefore called strictly in run-index order,
// from the same in-order drain that emits results — a run completing
// early never reaches the strategy before its predecessors. When a
// strategy needs feedback that is still in flight it answers PlanWait,
// and the coordinator holds planning until the next completion lands —
// the sliding window that reproduces the sequential schedule exactly,
// whatever the completion interleaving.
//
// Cancellation discipline: the context is polled before every dispatch
// and at every result receipt; once it fires, no new work is
// dispatched, in-flight runs stop at their next tick boundary (the
// loop-level interrupt), and the coordinator drains every worker before
// returning — cancellation never abandons a goroutine. Runs delivered
// after the cancel observation are discarded as possibly truncated, so
// the partial Result covers only complete runs.
//
// Panic discipline: a panicking target is recovered inside runOnce (so
// it can never kill a worker goroutine) and arrives at the coordinator
// as doneRun.err. The first such error cancels the coordinator's
// internal context — stopping dispatch and interrupting in-flight runs
// exactly like an external cancel — and is returned after the pool
// drains, so a panic fails the exploration, not the process.

// doneRun carries one finished schedule back to the coordinator; ch
// holds the recording (picks, domains, independence flags) that becomes
// the strategy's feedback.
type doneRun struct {
	idx  int
	rr   RunResult
	snap *trace.Snapshot
	ch   *chooser
	err  error // a recovered target panic; fatal to the exploration
}

// runCoordinator executes the exploration: plan → dispatch → observe →
// emit, with up to cfg.Workers runs in flight.
func runCoordinator(ctx context.Context, t Target, cfg config, res *Result) error {
	// The internal cancel lets a panicking run stop the exploration the
	// same way an external cancel does (halt dispatch, interrupt
	// in-flight runs at their next tick boundary, drain the pool).
	ctx, stop := context.WithCancel(ctx)
	defer stop()

	done := make(chan doneRun)
	pending := make(map[int]doneRun)
	seen := make(map[string]bool) // fingerprints, in run-index order
	inFlight := 0
	nextPlan, nextEmit := 0, 0
	planDone := false
	var panicErr error

	for {
		for !planDone && panicErr == nil && ctx.Err() == nil &&
			inFlight < cfg.Workers && nextPlan < cfg.Runs {
			next, state := cfg.Strategy.Plan(nextPlan)
			if state == PlanWait {
				// With nothing in flight a waiting strategy can never
				// unblock; treat it as done rather than livelock. A
				// correct strategy only waits on in-flight feedback.
				if inFlight == 0 {
					planDone = true
				}
				break
			}
			if state == PlanDone {
				planDone = true
				break
			}
			idx := nextPlan
			nextPlan++
			inFlight++
			go func() {
				ch := newChooser(cfg.Kinds, next)
				rr, snap, err := runOnce(ctx, t, idx, ch, cfg.RunMetrics, cfg.DebugStacks)
				done <- doneRun{idx: idx, rr: rr, snap: snap, ch: ch, err: err}
			}()
		}
		if inFlight == 0 {
			break
		}
		d := <-done
		inFlight--
		if d.err != nil && panicErr == nil {
			panicErr = d.err
			stop()
		}
		if panicErr != nil || ctx.Err() != nil {
			continue // drain in-flight runs; they stop at a tick boundary
		}
		pending[d.idx] = d
		for {
			nd, ok := pending[nextEmit]
			if !ok {
				break
			}
			delete(pending, nextEmit)
			nextEmit++
			rr := nd.rr
			if !seen[rr.Fingerprint] {
				seen[rr.Fingerprint] = true
				rr.NewGraph = true
			}
			rr.NewGraphs = len(seen)
			if cfg.Feedback {
				rr.Domains = append([]int(nil), nd.ch.domains...)
				rr.Independent = append([]bool(nil), nd.ch.indep...)
			}
			cfg.Strategy.Observe(Feedback{
				Index:       rr.Index,
				Token:       rr.Token,
				Picks:       nd.ch.picks,
				Domains:     nd.ch.domains,
				Independent: nd.ch.indep,
				Fingerprint: rr.Fingerprint,
				NewGraph:    rr.NewGraph,
				Warnings:    rr.Warnings,
				Err:         rr.Err,
				Ticks:       rr.Ticks,
			})
			if cr, ok := cfg.Strategy.(CoverageReporter); ok {
				stats := cr.CoverageStats()
				rr.CorpusSize = stats.CorpusSize
				rr.PrunedPicks = stats.PrunedPicks
			}
			emitRun(res, &cfg, rr, nd.snap)
		}
	}
	if panicErr != nil {
		return panicErr
	}
	return ctx.Err()
}
