package explore

import (
	"context"

	"asyncg/internal/trace"
)

// This file implements the engine's single coordinator: one loop drives
// every strategy at every worker count.
//
// Every run is an isolated single-threaded simulation, and nothing
// about a run's RunResult depends on cross-run state. That makes the
// schedule space embarrassingly parallel — the coordinator's work is
// asking the strategy what to run next, handing the job to a pool
// worker, and reassembling results in run-index order so the aggregate
// Result is byte-identical to a sequential exploration.
//
// Workers are persistent: each pool goroutine owns one Runner for the
// whole exploration (Target.NewRunner when the target provides it, the
// fresh-runtime fallback otherwise) and Resets it between jobs, so the
// session's allocation set — event loop queues, graph nodes, detector
// state, emitter and promise pools — is paid for once per worker, not
// once per schedule. The Reset contract (asyncg.Session.Reset) makes a
// reused runtime observationally identical to a fresh one, which is
// what keeps the worker-count and runner-reuse invariants equivalent:
// the Result is byte-identical at any worker count, with or without
// reusable runners.
//
// The feedback loop is the part that must not race: strategies plan
// from what they have observed (the exhaustive frontier grows out of
// completed runs; the coverage corpus accumulates new-fingerprint
// schedules). Observe is therefore called strictly in run-index order,
// from the same in-order drain that emits results — a run completing
// early never reaches the strategy before its predecessors. When a
// strategy needs feedback that is still in flight it answers PlanWait,
// and the coordinator holds planning until the next completion lands —
// the sliding window that reproduces the sequential schedule exactly,
// whatever the completion interleaving.
//
// Choosers are pooled on the coordinator goroutine: a recording is
// handed out at dispatch and recycled after its feedback has been
// consumed (Observe called, WithRunFeedback copies taken), never
// earlier — out-of-order completions park in pending with their
// recordings intact. The pool is capped at 2×Workers: in flight plus
// parked is bounded by that, so a larger pool could never be touched.
//
// Cancellation discipline: the context is polled before every dispatch
// and at every result receipt; once it fires, no new work is
// dispatched, in-flight runs stop at their next tick boundary (the
// loop-level interrupt), and the coordinator drains every worker before
// returning — cancellation never abandons a goroutine. Runs delivered
// after the cancel observation are discarded as possibly truncated, so
// the partial Result covers only complete runs.
//
// Panic discipline: a panicking target is recovered inside runOnce (so
// it can never kill a worker goroutine) and arrives at the coordinator
// as doneRun.err. The first such error cancels the coordinator's
// internal context — stopping dispatch and interrupting in-flight runs
// exactly like an external cancel — and is returned after the pool
// drains, so a panic fails the exploration, not the process. A worker
// whose runner panicked replaces it with a fresh one before taking the
// next job: the old runtime's state is unknowable mid-panic, and the
// exploration is ending anyway.

// job is one schedule dispatched to a pool worker.
type job struct {
	idx int
	ch  *chooser
}

// doneRun carries one finished schedule back to the coordinator; ch
// holds the recording (picks, domains, independence flags) that becomes
// the strategy's feedback.
type doneRun struct {
	idx  int
	rr   RunResult
	snap *trace.Snapshot
	ch   *chooser
	err  error // a recovered target panic; fatal to the exploration
}

// runCoordinator executes the exploration: plan → dispatch → observe →
// emit, with up to cfg.Workers runs in flight on persistent workers.
func runCoordinator(ctx context.Context, t Target, cfg config, res *Result) error {
	// The internal cancel lets a panicking run stop the exploration the
	// same way an external cancel does (halt dispatch, interrupt
	// in-flight runs at their next tick boundary, drain the pool).
	ctx, stop := context.WithCancel(ctx)
	defer stop()

	jobs := make(chan job)
	done := make(chan doneRun)
	defer close(jobs)
	for w := 0; w < cfg.Workers; w++ {
		go func() {
			runner := t.runner()
			in := newIntern()
			proxy := &schedProxy{}
			extras := workerExtras(ctx, proxy, &cfg)
			for j := range jobs {
				runner.Reset() // no-op on a cold runner
				proxy.ch = j.ch
				rr, snap, err := runOnce(ctx, runner.Run, j.idx, j.ch, extras, &cfg, in)
				if err != nil {
					// The runtime is mid-panic state; start over.
					runner = t.runner()
				}
				done <- doneRun{idx: j.idx, rr: rr, snap: snap, ch: j.ch, err: err}
			}
		}()
	}

	var chooserPool []*chooser
	takeChooser := func(next PickFunc) *chooser {
		if n := len(chooserPool); n > 0 {
			ch := chooserPool[n-1]
			chooserPool = chooserPool[:n-1]
			ch.reset(next)
			return ch
		}
		return newChooser(cfg.Kinds, next)
	}
	putChooser := func(ch *chooser) {
		if len(chooserPool) < 2*cfg.Workers {
			chooserPool = append(chooserPool, ch)
		}
	}

	pending := make(map[int]doneRun)
	seen := make(map[string]bool) // fingerprints, in run-index order
	inFlight := 0
	nextPlan, nextEmit := 0, 0
	planDone := false
	var panicErr error

	for {
		for !planDone && panicErr == nil && ctx.Err() == nil &&
			inFlight < cfg.Workers && nextPlan < cfg.Runs {
			next, state := cfg.Strategy.Plan(nextPlan)
			if state == PlanWait {
				// With nothing in flight a waiting strategy can never
				// unblock; treat it as done rather than livelock. A
				// correct strategy only waits on in-flight feedback.
				if inFlight == 0 {
					planDone = true
				}
				break
			}
			if state == PlanDone {
				planDone = true
				break
			}
			idx := nextPlan
			nextPlan++
			inFlight++
			// inFlight < Workers guaranteed an idle worker; the send
			// blocks at most until it loops back to the jobs receive.
			jobs <- job{idx: idx, ch: takeChooser(next)}
		}
		if inFlight == 0 {
			break
		}
		d := <-done
		inFlight--
		if d.err != nil && panicErr == nil {
			panicErr = d.err
			stop()
		}
		if panicErr != nil || ctx.Err() != nil {
			continue // drain in-flight runs; they stop at a tick boundary
		}
		pending[d.idx] = d
		for {
			nd, ok := pending[nextEmit]
			if !ok {
				break
			}
			delete(pending, nextEmit)
			nextEmit++
			rr := nd.rr
			if !seen[rr.Fingerprint] {
				seen[rr.Fingerprint] = true
				rr.NewGraph = true
			}
			rr.NewGraphs = len(seen)
			if cfg.Feedback {
				rr.Domains = append([]int(nil), nd.ch.domains...)
				rr.Independent = append([]bool(nil), nd.ch.indep...)
			}
			cfg.Strategy.Observe(Feedback{
				Index:       rr.Index,
				Token:       rr.Token,
				Picks:       nd.ch.picks,
				Domains:     nd.ch.domains,
				Independent: nd.ch.indep,
				Fingerprint: rr.Fingerprint,
				NewGraph:    rr.NewGraph,
				Warnings:    rr.Warnings,
				Err:         rr.Err,
				Ticks:       rr.Ticks,
			})
			putChooser(nd.ch)
			if cr, ok := cfg.Strategy.(CoverageReporter); ok {
				stats := cr.CoverageStats()
				rr.CorpusSize = stats.CorpusSize
				rr.PrunedPicks = stats.PrunedPicks
			}
			emitRun(res, &cfg, rr, nd.snap)
		}
	}
	if panicErr != nil {
		return panicErr
	}
	return ctx.Err()
}
