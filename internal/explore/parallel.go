package explore

import (
	"context"
	"sync"

	"asyncg/internal/trace"
)

// This file implements the parallel execution mode of the engine.
//
// Every run is an isolated single-threaded simulation: Target.Run builds
// a fresh session (event loop, VM object-identity counters, graph
// builder, detectors, scheduler) per call, and nothing about a run's
// RunResult depends on cross-run state. That makes the schedule space
// embarrassingly parallel — the only work is handing each worker its
// schedule seed and reassembling the results in run-index order so the
// aggregate Result is byte-identical to a sequential exploration.
//
// Two shapes of parallelism are used:
//
//   - random/delay: run i is fully determined by (Config.Seed, i), so
//     run indices are farmed to a fixed worker pool over a channel and
//     completed runs are emitted as the in-order prefix grows
//     (runParallel).
//   - exhaustive: the choice tree is discovered during execution (a
//     run's branching domains are only known after it finishes), so the
//     coordinator enumerates choice-pick prefixes in breadth-first
//     order, farms prefix completions to workers, and expands children
//     strictly in run-index order — a sliding window that reproduces
//     the sequential BFS frontier exactly, whatever the completion
//     interleaving (runExhaustiveParallel).
//
// Cancellation discipline, shared by both: the context is polled before
// every dispatch and at every result receipt; once it fires, no new
// work is dispatched, in-flight runs stop at their next tick boundary
// (the loop-level interrupt), and the coordinator drains every worker
// before returning — cancellation never abandons a goroutine. Runs
// delivered after the cancel observation are discarded as possibly
// truncated, so the partial Result covers only complete runs.
//
// Panic discipline: a panicking target is recovered inside runOnce (so
// it can never kill a pool worker goroutine) and arrives at the
// coordinator as doneRun.err. The first such error cancels the
// coordinator's internal context — stopping dispatch and interrupting
// in-flight runs exactly like an external cancel — and is returned
// after the pool drains, so a panic fails the exploration, not the
// process.

// doneRun carries one finished schedule back to a coordinator.
type doneRun struct {
	idx  int
	rr   RunResult
	snap *trace.Snapshot
	err  error // a recovered target panic; fatal to the exploration
}

// runParallel executes the random/delay strategies on cfg.Workers
// goroutines. Each worker owns the full runtime of whichever run it
// executes; determinism comes from run i deriving its generator from
// Config.Seed+i exactly as the sequential path does. Results are
// emitted (appended, merged, streamed to Progress) strictly in
// run-index order as the completed prefix grows.
func runParallel(ctx context.Context, t Target, cfg Config, res *Result) error {
	// The internal cancel lets a panicking run stop the exploration the
	// same way an external cancel does (halt dispatch, interrupt
	// in-flight runs at their next tick boundary, drain the pool).
	ctx, stop := context.WithCancel(ctx)
	defer stop()
	jobs := make(chan int)
	done := make(chan doneRun, cfg.Workers)
	var wg sync.WaitGroup
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				rr, snap, err := runOnce(ctx, t, i, newChooser(cfg.Kinds, cfg.nextFunc(i)), cfg.RunMetrics)
				done <- doneRun{idx: i, rr: rr, snap: snap, err: err}
			}
		}()
	}
	go func() {
		defer close(jobs)
		for i := 0; i < cfg.Runs; i++ {
			select {
			case jobs <- i:
			case <-ctx.Done():
				return
			}
		}
	}()
	go func() { wg.Wait(); close(done) }()

	pending := make(map[int]doneRun)
	next := 0
	var panicErr error
	for d := range done {
		if d.err != nil && panicErr == nil {
			panicErr = d.err
			stop()
		}
		if panicErr != nil || ctx.Err() != nil {
			continue // drain the pool; late arrivals may be truncated
		}
		pending[d.idx] = d
		for {
			nd, ok := pending[next]
			if !ok {
				break
			}
			delete(pending, next)
			emitRun(res, &cfg, nd.rr, nd.snap)
			next++
		}
	}
	if panicErr != nil {
		return panicErr
	}
	return ctx.Err()
}

// exhaustiveDone carries one finished prefix run back to the coordinator
// together with the branching information discovered along the way.
type exhaustiveDone struct {
	doneRun
	picks     []int
	domains   []int
	prefixLen int
}

// runExhaustiveParallel is the worker-pool version of runExhaustive. The
// coordinator owns the breadth-first queue of pick-vector prefixes;
// workers execute prefixes; children are enqueued only when every
// earlier run has been expanded, so the queue grows in exactly the
// order the sequential enumeration would produce and the run budget
// cuts it at exactly the same point.
func runExhaustiveParallel(ctx context.Context, t Target, cfg Config, res *Result) error {
	// See runParallel: the internal cancel turns a target panic into the
	// external-cancel shutdown path.
	ctx, stop := context.WithCancel(ctx)
	defer stop()
	queue := [][]int{nil} // discovered prefixes, in BFS order
	done := make(chan exhaustiveDone, cfg.Workers)
	pending := make(map[int]exhaustiveDone)
	inFlight := 0
	nextDispatch, nextExpand := 0, 0
	var panicErr error

	expand := func(d exhaustiveDone) {
		emitRun(res, &cfg, d.rr, d.snap)
		for pos := d.prefixLen; pos < len(d.domains); pos++ {
			for v := 1; v < d.domains[pos]; v++ {
				child := make([]int, pos+1)
				copy(child, d.picks[:pos])
				child[pos] = v
				queue = append(queue, child)
			}
		}
	}

	for {
		for ctx.Err() == nil && inFlight < cfg.Workers && nextDispatch < len(queue) && nextDispatch < cfg.Runs {
			idx, prefix := nextDispatch, queue[nextDispatch]
			nextDispatch++
			inFlight++
			go func() {
				ch := newChooser(cfg.Kinds, playbackNext(prefix))
				rr, snap, err := runOnce(ctx, t, idx, ch, cfg.RunMetrics)
				done <- exhaustiveDone{
					doneRun: doneRun{idx: idx, rr: rr, snap: snap, err: err},
					picks:   ch.picks, domains: ch.domains, prefixLen: len(prefix),
				}
			}()
		}
		if inFlight == 0 {
			break
		}
		d := <-done
		inFlight--
		if d.err != nil && panicErr == nil {
			panicErr = d.err
			stop()
		}
		if panicErr != nil || ctx.Err() != nil {
			continue // drain in-flight runs; they stop at a tick boundary
		}
		pending[d.idx] = d
		for {
			next, ok := pending[nextExpand]
			if !ok {
				break
			}
			delete(pending, nextExpand)
			expand(next)
			nextExpand++
		}
	}
	if panicErr != nil {
		return panicErr
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	// Mirrors the sequential invariant: the space was exhausted exactly
	// when every discovered prefix was executed within the budget.
	res.Exhausted = len(queue) == len(res.Runs)
	return nil
}
