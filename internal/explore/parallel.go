package explore

import "sync"

// This file implements the parallel execution mode of the engine.
//
// Every run is an isolated single-threaded simulation: Target.Run builds
// a fresh session (event loop, VM object-identity counters, graph
// builder, detectors, scheduler) per call, and nothing about a run's
// RunResult depends on cross-run state. That makes the schedule space
// embarrassingly parallel — the only work is handing each worker its
// schedule seed and reassembling the results in run-index order so the
// aggregate Result is byte-identical to a sequential exploration.
//
// Two shapes of parallelism are used:
//
//   - random/delay: run i is fully determined by (Config.Seed, i), so
//     run indices are farmed to a fixed worker pool over a channel and
//     results land in a preallocated slice slot per index (runParallel).
//   - exhaustive: the choice tree is discovered during execution (a
//     run's branching domains are only known after it finishes), so the
//     coordinator enumerates choice-pick prefixes in breadth-first
//     order, farms prefix completions to workers, and expands children
//     strictly in run-index order — a sliding window that reproduces
//     the sequential BFS frontier exactly, whatever the completion
//     interleaving (runExhaustiveParallel).

// runParallel executes the random/delay strategies on cfg.Workers
// goroutines. Each worker owns the full runtime of whichever run it
// executes; determinism comes from run i deriving its generator from
// Config.Seed+i exactly as the sequential path does.
func runParallel(t Target, cfg Config, res *Result) {
	results := make([]RunResult, cfg.Runs)
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				results[i] = runOnce(t, i, newChooser(cfg.Kinds, cfg.nextFunc(i)))
			}
		}()
	}
	for i := 0; i < cfg.Runs; i++ {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	res.Runs = results
}

// exhaustiveDone carries one finished prefix run back to the coordinator
// together with the branching information discovered along the way.
type exhaustiveDone struct {
	idx       int
	rr        RunResult
	picks     []int
	domains   []int
	prefixLen int
}

// runExhaustiveParallel is the worker-pool version of runExhaustive. The
// coordinator owns the breadth-first queue of pick-vector prefixes;
// workers execute prefixes; children are enqueued only when every
// earlier run has been expanded, so the queue grows in exactly the
// order the sequential enumeration would produce and the run budget
// cuts it at exactly the same point.
func runExhaustiveParallel(t Target, cfg Config, res *Result) {
	queue := [][]int{nil} // discovered prefixes, in BFS order
	done := make(chan exhaustiveDone)
	pending := make(map[int]exhaustiveDone)
	inFlight := 0
	nextDispatch, nextExpand := 0, 0
	var runs []RunResult

	expand := func(d exhaustiveDone) {
		runs = append(runs, d.rr)
		for pos := d.prefixLen; pos < len(d.domains); pos++ {
			for v := 1; v < d.domains[pos]; v++ {
				child := make([]int, pos+1)
				copy(child, d.picks[:pos])
				child[pos] = v
				queue = append(queue, child)
			}
		}
	}

	for {
		for inFlight < cfg.Workers && nextDispatch < len(queue) && nextDispatch < cfg.Runs {
			idx, prefix := nextDispatch, queue[nextDispatch]
			nextDispatch++
			inFlight++
			go func() {
				ch := newChooser(cfg.Kinds, playbackNext(prefix))
				rr := runOnce(t, idx, ch)
				done <- exhaustiveDone{
					idx: idx, rr: rr,
					picks: ch.picks, domains: ch.domains, prefixLen: len(prefix),
				}
			}()
		}
		if inFlight == 0 {
			break
		}
		d := <-done
		inFlight--
		pending[d.idx] = d
		for {
			next, ok := pending[nextExpand]
			if !ok {
				break
			}
			delete(pending, nextExpand)
			expand(next)
			nextExpand++
		}
	}
	res.Runs = runs
	// Mirrors the sequential invariant: the space was exhausted exactly
	// when every discovered prefix was executed within the budget.
	res.Exhausted = len(queue) == len(runs)
}
