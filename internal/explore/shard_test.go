package explore

import (
	"strings"
	"testing"

	"asyncg/internal/eventloop"
)

// shardWindows cuts [0, total) into consecutive windows of size at most
// width.
func shardWindows(total, width int) [][2]int {
	var out [][2]int
	for start := 0; start < total; start += width {
		n := width
		if start+n > total {
			n = total - start
		}
		out = append(out, [2]int{start, n})
	}
	return out
}

// runShard executes one ShardSpec against tg and returns the shard's
// runs (locally indexed 0..spec.Runs-1).
func runShard(t *testing.T, tg Target, spec ShardSpec, kinds []eventloop.ChoiceKind) []RunResult {
	t.Helper()
	strat, err := ShardStrategy(spec)
	if err != nil {
		t.Fatalf("ShardStrategy(%+v): %v", spec, err)
	}
	opts := []Option{WithStrategy(strat), WithRuns(spec.Runs), WithWorkers(2)}
	if kinds != nil {
		opts = append(opts, WithKinds(kinds...))
	}
	return mustRun(t, tg, opts...).Runs
}

// checkShardRun compares a shard-local run against the full
// exploration's run at the same global index: the schedule itself
// (token) and everything derived from a single execution must match;
// cross-run aggregates (NewGraph, NewGraphs, CorpusSize, PrunedPicks)
// are the coordinator's job and intentionally differ.
func checkShardRun(t *testing.T, global int, want, got RunResult) {
	t.Helper()
	if got.Token != want.Token {
		t.Errorf("run %d: token = %q, want %q", global, got.Token, want.Token)
	}
	if got.Fingerprint != want.Fingerprint {
		t.Errorf("run %d: fingerprint = %q, want %q", global, got.Fingerprint, want.Fingerprint)
	}
	if got.Ticks != want.Ticks || got.Err != want.Err {
		t.Errorf("run %d: ticks/err = %d/%q, want %d/%q", global, got.Ticks, got.Err, want.Ticks, want.Err)
	}
	if strings.Join(got.Warnings, "|") != strings.Join(want.Warnings, "|") {
		t.Errorf("run %d: warnings = %v, want %v", global, got.Warnings, want.Warnings)
	}
}

// TestShardStrategySeeded: for the strategies whose run i depends only
// on seed+i (random, delay), any [Start, Start+Runs) window planned
// through ShardStrategy reproduces exactly the full exploration's runs
// at those global indices — the invariant that makes seed-range
// sharding across a fleet sound.
func TestShardStrategySeeded(t *testing.T) {
	tg := caseTarget(t, "SO-17894000")
	const total = 16
	cases := []struct {
		name string
		full []Option
		spec func(start, n int) ShardSpec
	}{
		{
			"random", []Option{WithSeed(3), WithRuns(total)},
			func(start, n int) ShardSpec {
				return ShardSpec{Strategy: StrategyRandom, Seed: 3, Start: start, Runs: n}
			},
		},
		{
			"delay", []Option{WithStrategy(NewDelay(7, 2)), WithRuns(total)},
			func(start, n int) ShardSpec {
				return ShardSpec{Strategy: StrategyDelay, Seed: 7, Start: start, Runs: n, DelayBound: 2}
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			full := mustRun(t, tg, tc.full...)
			for _, width := range []int{1, 5, total} {
				for _, w := range shardWindows(total, width) {
					runs := runShard(t, tg, tc.spec(w[0], w[1]), nil)
					for j, got := range runs {
						checkShardRun(t, w[0]+j, full.Runs[w[0]+j], got)
					}
				}
			}
		})
	}
}

// TestShardStrategyCoverage: a coverage generation's runs depend on the
// corpus snapshot from earlier generations. Reconstructing that snapshot
// from the full exploration's NewGraph tokens and freezing it into a
// ShardSpec must reproduce each generation's runs exactly — including
// that replay tokens (trailing zeros trimmed) are a faithful corpus wire
// format, because mutation treats positions past the seed's end as the
// default pick anyway.
func TestShardStrategyCoverage(t *testing.T) {
	tg := caseTarget(t, "SO-17894000")
	const total = 40
	full := mustRun(t, tg, WithStrategy(NewCoverage(11)), WithRuns(total))
	for _, width := range []int{3, CoverageGenerationSize} {
		// Windows are cut inside each generation — a shard must never
		// straddle the corpus-snapshot boundary.
		for gen := 0; gen*CoverageGenerationSize < total; gen++ {
			var corpus []string
			for _, rr := range full.Runs[:gen*CoverageGenerationSize] {
				if rr.NewGraph {
					corpus = append(corpus, rr.Token)
				}
			}
			genRuns := CoverageGenerationSize
			if rest := total - gen*CoverageGenerationSize; rest < genRuns {
				genRuns = rest
			}
			for _, w := range shardWindows(genRuns, width) {
				start := gen*CoverageGenerationSize + w[0]
				spec := ShardSpec{Strategy: StrategyCoverage, Seed: 11, Start: start, Runs: w[1], Corpus: corpus}
				runs := runShard(t, tg, spec, nil)
				for j, got := range runs {
					checkShardRun(t, start+j, full.Runs[start+j], got)
				}
			}
		}
	}
}

// TestShardStrategyExhaustive: an exhaustive run's forced prefix ends in
// its last non-zero pick, and playback pads with defaults — so a run's
// replay token IS its canonical prefix, and a prefix-range shard fed the
// full exploration's tokens reproduces those runs exactly.
func TestShardStrategyExhaustive(t *testing.T) {
	tg := caseTarget(t, "SO-17894000")
	kinds := []eventloop.ChoiceKind{eventloop.ChoiceIOOrder, eventloop.ChoiceLatency}
	full := mustRun(t, tg, WithStrategy(NewExhaustive(false)), WithRuns(60), WithKinds(kinds...))
	if !full.Exhausted {
		t.Fatal("60-run budget should exhaust the reduced-kind space")
	}
	total := len(full.Runs)
	for _, w := range shardWindows(total, 7) {
		var prefixes []string
		for _, rr := range full.Runs[w[0] : w[0]+w[1]] {
			prefixes = append(prefixes, rr.Token)
		}
		spec := ShardSpec{Strategy: StrategyExhaustive, Start: w[0], Runs: w[1], Prefixes: prefixes}
		runs := runShard(t, tg, spec, kinds)
		for j, got := range runs {
			checkShardRun(t, w[0]+j, full.Runs[w[0]+j], got)
		}
	}
}

// TestWithRunFeedback: the option populates Domains and Independent on
// every run (the fleet coordinator's frontier-expansion input), the
// default leaves them empty, and the recorded domains are consistent
// with the replay token's pick positions.
func TestWithRunFeedback(t *testing.T) {
	tg := caseTarget(t, "SO-17894000")
	plain := mustRun(t, tg, WithRuns(4), WithSeed(3))
	for _, rr := range plain.Runs {
		if rr.Domains != nil || rr.Independent != nil {
			t.Fatalf("run %d: feedback fields populated without WithRunFeedback", rr.Index)
		}
	}
	fb := mustRun(t, tg, WithRuns(4), WithSeed(3), WithRunFeedback())
	for i, rr := range fb.Runs {
		if len(rr.Domains) == 0 || len(rr.Domains) != len(rr.Independent) {
			t.Fatalf("run %d: domains/independent = %d/%d entries", i, len(rr.Domains), len(rr.Independent))
		}
		sched, err := ParseToken(rr.Token)
		if err != nil {
			t.Fatal(err)
		}
		if len(sched.Picks) > len(rr.Domains) {
			t.Errorf("run %d: token has %d picks but only %d domains recorded", i, len(sched.Picks), len(rr.Domains))
		}
		stripped := rr
		stripped.Domains, stripped.Independent = nil, nil
		if got, want := stripped, plain.Runs[i]; got.Token != want.Token || got.Fingerprint != want.Fingerprint {
			t.Errorf("run %d: feedback option changed the run (token %q vs %q)", i, got.Token, want.Token)
		}
	}
}

// TestShardSpecValidate: the error cases a fleet coordinator (or a
// version-skewed worker) must be told about loudly.
func TestShardSpecValidate(t *testing.T) {
	bad := []ShardSpec{
		{Strategy: StrategyRandom, Start: 0, Runs: 0},
		{Strategy: StrategyRandom, Start: -1, Runs: 2},
		{Strategy: "anneal", Start: 0, Runs: 2},
		{Strategy: StrategyRandom, Start: 0, Runs: 2, Corpus: []string{"s1."}},
		{Strategy: StrategyDelay, Start: 0, Runs: 2, Prefixes: []string{"s1.", "s1."}},
		{Strategy: StrategyCoverage, Start: 6, Runs: 4}, // crosses generation 0→1
		{Strategy: StrategyCoverage, Start: 0, Runs: 2, Prefixes: []string{"s1.", "s1."}},
		{Strategy: StrategyExhaustive, Start: 0, Runs: 2, Prefixes: []string{"s1."}},
		{Strategy: StrategyExhaustive, Start: 0, Runs: 1, Prefixes: []string{"s1."}, Corpus: []string{"s1."}},
	}
	for _, spec := range bad {
		if err := spec.Validate(); err == nil {
			t.Errorf("Validate(%+v) = nil, want error", spec)
		}
	}
	good := []ShardSpec{
		{Strategy: StrategyRandom, Seed: 9, Start: 5, Runs: 3},
		{Strategy: StrategyDelay, Start: 0, Runs: 4, DelayBound: 3},
		{Strategy: StrategyCoverage, Start: 8, Runs: 8, Corpus: []string{"s1.AQ"}},
		{Strategy: StrategyExhaustive, Start: 2, Runs: 2, Prefixes: []string{"s1.AQ", "s1.Ag"}},
	}
	for _, spec := range good {
		if err := spec.Validate(); err != nil {
			t.Errorf("Validate(%+v) = %v, want nil", spec, err)
		}
	}
	if _, err := ShardStrategy(ShardSpec{Strategy: StrategyExhaustive, Start: 0, Runs: 1, Prefixes: []string{"bogus"}}); err == nil {
		t.Error("ShardStrategy with an unparseable prefix token: want error")
	}
}

// TestFinalize: rebuilding the aggregates from stitched runs matches the
// single-process aggregation — the merge invariant the fleet
// coordinator's byte-identical guarantee rests on.
func TestFinalize(t *testing.T) {
	tg := caseTarget(t, "SO-17894000")
	full := mustRun(t, tg, WithRuns(12), WithSeed(3))
	want := resultJSON(t, full)

	rebuilt := &Result{
		Target:    full.Target,
		Strategy:  full.Strategy,
		Seed:      full.Seed,
		Requested: full.Requested,
		Runs:      append([]RunResult(nil), full.Runs...),
		// Poison the aggregates to prove Finalize rebuilds them.
		Fingerprints: []FingerprintStat{{Fingerprint: "bogus"}},
		Warnings:     []WarningStat{{Key: "bogus"}},
		Categories:   []CategoryStat{{Category: "bogus"}},
		NewGraphs:    999,
	}
	Finalize(tg, rebuilt)
	if got := resultJSON(t, rebuilt); got != want {
		t.Errorf("Finalize mismatch\nwant: %s\ngot:  %s", want, got)
	}
}
