package explore

import (
	"context"
	"encoding/json"
	"strings"
	"sync/atomic"
	"testing"

	"asyncg"
	"asyncg/internal/eventloop"
)

// resultJSON marshals a Result for byte-level comparison.
func resultJSON(t *testing.T, r *Result) string {
	t.Helper()
	b, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestParallelDeterminism is the acceptance property of the parallel
// execution mode: for the same seed, exploring with 1, 2, and 8 workers
// produces byte-identical Result JSON — runs, warning classification,
// fingerprint census, coverage corpus, and witness/counter-witness
// tokens included. Run it under -race: it is also the proof that
// concurrent runs share no mutable state.
//
// The coverage and POR cases are the ones the feedback loop makes hard:
// the corpus (and the POR-pruned frontier) is built from run feedback,
// so any completion-order leak into planning would show up here as a
// worker-count-dependent Result.
func TestParallelDeterminism(t *testing.T) {
	kinds := []eventloop.ChoiceKind{eventloop.ChoiceIOOrder, eventloop.ChoiceLatency}
	configs := []struct {
		name string
		runs int
		opts func() []Option // fresh options (and strategy) per Run call
	}{
		{"random", 16, func() []Option { return []Option{WithSeed(3)} }},
		{"delay", 16, func() []Option { return []Option{WithStrategy(NewDelay(7, 2))} }},
		{"random+metrics", 12, func() []Option { return []Option{WithSeed(3), WithRunMetrics()} }},
		{"exhaustive", 60, func() []Option {
			return []Option{WithStrategy(NewExhaustive(false)), WithKinds(kinds...)}
		}},
		{"exhaustive-por", 60, func() []Option {
			return []Option{WithStrategy(NewExhaustive(true)), WithKinds(kinds...)}
		}},
		{"coverage", 40, func() []Option { return []Option{WithStrategy(NewCoverage(11))} }},
	}
	for _, tc := range configs {
		t.Run(tc.name, func(t *testing.T) {
			tg := caseTarget(t, "SO-17894000")
			var want string
			for _, workers := range []int{1, 2, 8} {
				opts := append(tc.opts(), WithRuns(tc.runs), WithWorkers(workers))
				got := resultJSON(t, mustRun(t, tg, opts...))
				if workers == 1 {
					want = got
					continue
				}
				if got != want {
					t.Errorf("workers=%d: Result JSON differs from sequential\nseq: %s\npar: %s",
						workers, want, got)
				}
			}
		})
	}
}

// TestPanicBecomesError: a panicking target fails the exploration with
// an error instead of killing the process — critically on the pool
// goroutines of the parallel coordinator, where an unrecovered panic
// cannot be caught by any caller of Run.
func TestPanicBecomesError(t *testing.T) {
	boom := Target{
		Name: "boom",
		Run: func(extra ...asyncg.Option) (*asyncg.Report, error) {
			panic("deliberate test panic")
		},
	}
	for _, tc := range []struct {
		name string
		opts func() []Option
	}{
		{"sequential", func() []Option { return []Option{WithRuns(4), WithWorkers(1)} }},
		{"parallel", func() []Option { return []Option{WithRuns(8), WithWorkers(4)} }},
		{"delay-parallel", func() []Option {
			return []Option{WithRuns(8), WithStrategy(NewDelay(0, 2)), WithWorkers(4)}
		}},
		{"exhaustive", func() []Option {
			return []Option{WithRuns(8), WithStrategy(NewExhaustive(false)), WithWorkers(1)}
		}},
		{"exhaustive-parallel", func() []Option {
			return []Option{WithRuns(8), WithStrategy(NewExhaustive(false)), WithWorkers(4)}
		}},
		{"coverage-parallel", func() []Option {
			return []Option{WithRuns(8), WithStrategy(NewCoverage(0)), WithWorkers(4)}
		}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			res, err := Run(context.Background(), boom, tc.opts()...)
			if err == nil || !strings.Contains(err.Error(), "panicked") {
				t.Fatalf("Run error = %v, want a target-panicked error", err)
			}
			if res == nil || len(res.Runs) != 0 {
				t.Errorf("result = %+v, want an empty partial result", res)
			}
		})
	}
}

// TestPanicMidExploration: when only a later run panics, the completed
// prefix survives as the partial result and the pool drains cleanly.
func TestPanicMidExploration(t *testing.T) {
	good := caseTarget(t, "SO-17894000")
	var calls atomic.Int64
	flaky := Target{
		Name: good.Name,
		Run: func(extra ...asyncg.Option) (*asyncg.Report, error) {
			if calls.Add(1) > 2 {
				panic("deliberate test panic")
			}
			return good.Run(extra...)
		},
	}
	res, err := Run(context.Background(), flaky, WithRuns(8), WithWorkers(1))
	if err == nil || !strings.Contains(err.Error(), "panicked") {
		t.Fatalf("Run error = %v, want a target-panicked error", err)
	}
	if len(res.Runs) != 2 {
		t.Errorf("partial result has %d runs, want the 2 completed before the panic", len(res.Runs))
	}
}

// TestParallelExhaustiveTruncation: when the budget cuts the
// enumeration, the parallel coordinator must stop at exactly the same
// breadth-first point as the sequential loop (same runs, same
// Exhausted=false flag).
func TestParallelExhaustiveTruncation(t *testing.T) {
	tg := caseTarget(t, "SO-17894000")
	kinds := []eventloop.ChoiceKind{eventloop.ChoiceIOOrder, eventloop.ChoiceLatency}
	seq := mustRun(t, tg, WithRuns(7), WithStrategy(NewExhaustive(false)), WithKinds(kinds...), WithWorkers(1))
	if seq.Exhausted {
		t.Fatal("budget of 7 unexpectedly exhausted the space")
	}
	par := mustRun(t, tg, WithRuns(7), WithStrategy(NewExhaustive(false)), WithKinds(kinds...), WithWorkers(4))
	if got, want := resultJSON(t, par), resultJSON(t, seq); got != want {
		t.Errorf("truncated parallel exhaustive differs\nseq: %s\npar: %s", want, got)
	}
}

// TestBudgetNote: the exhaustive strategy reports when the enumerated
// space is smaller or larger than the requested run budget, and stays
// silent when the budget matched or the strategy has no definite space.
func TestBudgetNote(t *testing.T) {
	tg := caseTarget(t, "SO-17894000")
	kinds := []eventloop.ChoiceKind{eventloop.ChoiceIOOrder, eventloop.ChoiceLatency}

	small := mustRun(t, tg, WithRuns(400), WithStrategy(NewExhaustive(false)), WithKinds(kinds...))
	if !small.Exhausted {
		t.Fatal("400-run budget should exhaust the reduced-kind space")
	}
	if note := small.BudgetNote(); !strings.Contains(note, "exhausted after") {
		t.Errorf("undershoot note = %q, want mention of early exhaustion", note)
	}

	big := mustRun(t, tg, WithRuns(5), WithStrategy(NewExhaustive(false)), WithKinds(kinds...))
	if big.Exhausted {
		t.Fatal("5-run budget should truncate the space")
	}
	if note := big.BudgetNote(); !strings.Contains(note, "larger than") {
		t.Errorf("overshoot note = %q, want mention of truncation", note)
	}

	rnd := mustRun(t, tg, WithRuns(4), WithSeed(1))
	if note := rnd.BudgetNote(); note != "" {
		t.Errorf("random strategy produced a budget note: %q", note)
	}

	var text strings.Builder
	if err := big.WriteText(&text); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(text.String(), "note: ") {
		t.Errorf("text report missing the budget note:\n%s", text.String())
	}
}
