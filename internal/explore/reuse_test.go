package explore

import (
	"testing"
)

// TestRunnerReuseMatchesFresh is the Runner contract's observational
// half: a pool worker that keeps one runner alive and interleaves
// Reset+Run across many schedules must produce byte-identical Results
// to fresh-session-per-run execution, at every worker count. The two
// variants are forced by stripping the Target down to one path each —
// Run-only falls back to funcRunner (cold runtime every schedule),
// NewRunner-only reuses pooled loop/graph/detector state. Run under
// -race this also exercises the handoff of pooled choosers and RNGs
// between the coordinator and worker goroutines.
func TestRunnerReuseMatchesFresh(t *testing.T) {
	tg := caseTarget(t, "SO-17894000")
	fresh := tg
	fresh.NewRunner = nil // one-shot fallback only
	reused := tg
	reused.Run = nil // pooled runner only

	// Options are rebuilt per exploration: strategies like coverage are
	// stateful objects, and sharing one instance across explorations
	// would leak corpus from run to run.
	configs := []struct {
		name string
		opts func() []Option
	}{
		{"random", func() []Option { return []Option{WithSeed(5), WithRuns(24)} }},
		{"random-metrics", func() []Option { return []Option{WithSeed(5), WithRuns(12), WithRunMetrics()} }},
		{"delay", func() []Option { return []Option{WithStrategy(NewDelay(9, 2)), WithRuns(16)} }},
		{"coverage", func() []Option { return []Option{WithStrategy(NewCoverage(11)), WithRuns(24)} }},
	}
	for _, tc := range configs {
		t.Run(tc.name, func(t *testing.T) {
			var want string
			for _, workers := range []int{1, 4, 8} {
				freshOpts := append(tc.opts(), WithWorkers(workers))
				reuseOpts := append(tc.opts(), WithWorkers(workers))
				freshJSON := resultJSON(t, mustRun(t, fresh, freshOpts...))
				reuseJSON := resultJSON(t, mustRun(t, reused, reuseOpts...))
				if reuseJSON != freshJSON {
					t.Fatalf("workers=%d: reused-runner result differs from fresh-session result\nfresh:  %s\nreused: %s",
						workers, freshJSON, reuseJSON)
				}
				if want == "" {
					want = freshJSON
				} else if freshJSON != want {
					t.Fatalf("workers=%d: result differs from workers=1\nwant: %s\ngot:  %s", workers, want, freshJSON)
				}
			}
		})
	}
}

// TestRunnerReuseFleetMerge is the distributed version of the same
// contract: shard a seeded exploration into windows, run every shard on
// reused runners at varying worker counts, stitch the runs back in
// global order exactly the way the fleet coordinator's absorb does
// (re-index, recompute NewGraph against the global census, strip
// wire-only feedback), and Finalize. The merged Result must be
// byte-identical to the single-process exploration.
func TestRunnerReuseFleetMerge(t *testing.T) {
	tg := caseTarget(t, "SO-17894000")
	reused := tg
	reused.Run = nil

	const total, seed = 16, 3
	full := mustRun(t, tg, WithSeed(seed), WithRuns(total))
	want := resultJSON(t, full)

	merged := &Result{
		Target:    full.Target,
		Strategy:  full.Strategy,
		Seed:      full.Seed,
		Requested: full.Requested,
	}
	seen := make(map[string]bool)
	workerCycle := []int{1, 4, 8}
	for i, w := range shardWindows(total, 5) {
		spec := ShardSpec{Strategy: StrategyRandom, Seed: seed, Start: w[0], Runs: w[1]}
		strat, err := ShardStrategy(spec)
		if err != nil {
			t.Fatalf("ShardStrategy(%+v): %v", spec, err)
		}
		shard := mustRun(t, reused, WithStrategy(strat), WithRuns(spec.Runs),
			WithWorkers(workerCycle[i%len(workerCycle)]))
		for j, rr := range shard.Runs {
			rr.Index = w[0] + j
			rr.NewGraph = false
			if !seen[rr.Fingerprint] {
				seen[rr.Fingerprint] = true
				rr.NewGraph = true
			}
			rr.NewGraphs = len(seen)
			rr.Domains, rr.Independent = nil, nil
			merged.Runs = append(merged.Runs, rr)
		}
	}
	Finalize(reused, merged)
	if got := resultJSON(t, merged); got != want {
		t.Errorf("fleet-style merge on reused runners differs from single-process run\nwant: %s\ngot:  %s", want, got)
	}
}

// TestAcmeAirRunnerSteadyStateAllocs gates the runner contract's
// allocation claim on the heaviest target: once an acmeAirRunner is
// warm, Reset+Run must recycle the session's arenas instead of
// rebuilding them. Per-run state (sample data, app wiring, workload
// driver) legitimately allocates on every run whichever path executes,
// so the gate is relative: a warm runner must allocate measurably less
// than a fresh session per run. A Reset regression that stops recycling
// pushes the ratio to ~1.0; the warm path measures ~0.82 on this
// workload.
func TestAcmeAirRunnerSteadyStateAllocs(t *testing.T) {
	if testing.Short() {
		t.Skip("acmeair steady-state allocation gate in -short mode")
	}
	tg := AcmeAirTarget(20, 3, 1)
	runner := tg.NewRunner()
	for i := 0; i < 4; i++ { // warm the pools past cold-start growth
		runner.Reset()
		if _, err := runner.Run(); err != nil {
			t.Fatalf("warmup run %d: %v", i, err)
		}
	}
	steady := testing.AllocsPerRun(5, func() {
		runner.Reset()
		if _, err := runner.Run(); err != nil {
			t.Fatalf("measured run: %v", err)
		}
	})
	fresh := testing.AllocsPerRun(3, func() {
		if _, err := tg.NewRunner().Run(); err != nil {
			t.Fatalf("fresh run: %v", err)
		}
	})
	if ratio := steady / fresh; ratio > 0.95 {
		t.Errorf("steady-state AllocsPerRun = %.0f vs fresh-session %.0f (ratio %.2f, want <= 0.95): runner reuse regressed to fresh-session allocation", steady, fresh, ratio)
	}
}
