package explore

import (
	"bufio"
	"encoding/json"
	"io"

	"asyncg/internal/trace"
)

// NDJSON record kinds. The stream shares the shape of the trace
// exporter's NDJSON output — one self-describing JSON object per line,
// discriminated by a "kind" field — so the same tooling can consume
// both.
const (
	KindRun     = "explore-run"
	KindWarning = "explore-warning"
	KindSummary = "explore-summary"
)

// runLine is one executed schedule.
type runLine struct {
	Kind   string `json:"kind"`
	Target string `json:"target"`
	RunResult
}

// warningLine is one classified warning key.
type warningLine struct {
	Kind   string `json:"kind"`
	Target string `json:"target"`
	WarningStat
}

// summaryLine closes the stream.
type summaryLine struct {
	Kind         string            `json:"kind"`
	Target       string            `json:"target"`
	Strategy     string            `json:"strategy"`
	Seed         int64             `json:"seed"`
	Runs         int               `json:"runs"`
	Requested    int               `json:"requested"`
	Exhausted    bool              `json:"exhausted,omitempty"`
	NewGraphs    int               `json:"newGraphs,omitempty"`
	CorpusSize   int               `json:"corpusSize,omitempty"`
	PrunedPicks  int               `json:"prunedPicks,omitempty"`
	Fingerprints []FingerprintStat `json:"fingerprints"`
	Categories   []CategoryStat    `json:"categories"`
	Metrics      *trace.Snapshot   `json:"metrics,omitempty"`
}

// NDJSONStream encodes an exploration incrementally: one explore-run
// line per completed schedule (feed it from WithProgress to stream a
// live exploration), then Finish for the warning classification and the
// closing summary. Every line is flushed as soon as it is encoded —
// including on error paths — so a consumer reading mid-stream (or a
// file left behind by an aborted run) always ends on a complete line,
// never a silently truncated one.
type NDJSONStream struct {
	bw     *bufio.Writer
	enc    *json.Encoder
	target string
}

// NewNDJSONStream starts a stream for the named target.
func NewNDJSONStream(w io.Writer, target string) *NDJSONStream {
	bw := bufio.NewWriter(w)
	return &NDJSONStream{bw: bw, enc: json.NewEncoder(bw), target: target}
}

// Run writes and flushes one explore-run line.
func (s *NDJSONStream) Run(rr RunResult) error {
	if err := s.enc.Encode(runLine{Kind: KindRun, Target: s.target, RunResult: rr}); err != nil {
		s.bw.Flush()
		return err
	}
	return s.bw.Flush()
}

// Finish writes the classification lines and the closing summary. It
// flushes whatever was encoded even when a line fails mid-way.
func (s *NDJSONStream) Finish(r *Result) error {
	for _, ws := range r.Warnings {
		if err := s.enc.Encode(warningLine{Kind: KindWarning, Target: s.target, WarningStat: ws}); err != nil {
			s.bw.Flush()
			return err
		}
	}
	if err := s.enc.Encode(summaryLine{
		Kind: KindSummary, Target: s.target, Strategy: r.Strategy, Seed: r.Seed,
		Runs: len(r.Runs), Requested: r.Requested, Exhausted: r.Exhausted,
		NewGraphs: r.NewGraphs, CorpusSize: r.CorpusSize, PrunedPicks: r.PrunedPicks,
		Fingerprints: r.Fingerprints, Categories: r.Categories, Metrics: r.Metrics,
	}); err != nil {
		s.bw.Flush()
		return err
	}
	return s.bw.Flush()
}

// WriteNDJSON streams the completed exploration as newline-delimited
// JSON: one explore-run line per schedule, one explore-warning line per
// classified warning, and a final explore-summary line with the
// fingerprint census and category classification.
func (r *Result) WriteNDJSON(w io.Writer) error {
	s := NewNDJSONStream(w, r.Target)
	for _, rr := range r.Runs {
		if err := s.Run(rr); err != nil {
			return err
		}
	}
	return s.Finish(r)
}
