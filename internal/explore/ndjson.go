package explore

import (
	"bufio"
	"encoding/json"
	"io"
)

// NDJSON record kinds. The stream shares the shape of the trace
// exporter's NDJSON output — one self-describing JSON object per line,
// discriminated by a "kind" field — so the same tooling can consume
// both.
const (
	KindRun     = "explore-run"
	KindWarning = "explore-warning"
	KindSummary = "explore-summary"
)

// runLine is one executed schedule.
type runLine struct {
	Kind   string `json:"kind"`
	Target string `json:"target"`
	RunResult
}

// warningLine is one classified warning key.
type warningLine struct {
	Kind   string `json:"kind"`
	Target string `json:"target"`
	WarningStat
}

// summaryLine closes the stream.
type summaryLine struct {
	Kind         string            `json:"kind"`
	Target       string            `json:"target"`
	Strategy     Strategy          `json:"strategy"`
	Seed         int64             `json:"seed"`
	Runs         int               `json:"runs"`
	Requested    int               `json:"requested"`
	Exhausted    bool              `json:"exhausted,omitempty"`
	Fingerprints []FingerprintStat `json:"fingerprints"`
	Categories   []CategoryStat    `json:"categories"`
}

// WriteNDJSON streams the exploration as newline-delimited JSON: one
// explore-run line per schedule, one explore-warning line per classified
// warning, and a final explore-summary line with the fingerprint census
// and category classification.
func (r *Result) WriteNDJSON(w io.Writer) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, rr := range r.Runs {
		if err := enc.Encode(runLine{Kind: KindRun, Target: r.Target, RunResult: rr}); err != nil {
			return err
		}
	}
	for _, ws := range r.Warnings {
		if err := enc.Encode(warningLine{Kind: KindWarning, Target: r.Target, WarningStat: ws}); err != nil {
			return err
		}
	}
	if err := enc.Encode(summaryLine{
		Kind: KindSummary, Target: r.Target, Strategy: r.Strategy, Seed: r.Seed,
		Runs: len(r.Runs), Requested: r.Requested, Exhausted: r.Exhausted,
		Fingerprints: r.Fingerprints, Categories: r.Categories,
	}); err != nil {
		return err
	}
	return bw.Flush()
}
