package explore

import (
	"fmt"
	"strconv"
	"strings"

	"asyncg/internal/casestudy"
)

// This file is the target registry: one name-to-Target lookup shared by
// every front end (the asyncg explore CLI, the analysis server's
// POST /v1/jobs, GET /v1/targets) instead of each of them re-parsing
// flags into Target constructors.

// TargetInfo describes one registry entry for listings (GET /v1/targets,
// future CLI discovery).
type TargetInfo struct {
	// Name is the spec string TargetByName accepts.
	Name string `json:"name"`
	// Title is a human-readable summary.
	Title string `json:"title"`
	// Category is the paper's Table I classification (case studies only).
	Category string `json:"category,omitempty"`
}

// Targets lists every resolvable target: the AcmeAir workload and each
// case study (with a :fixed variant when the paper shows a fix).
func Targets() []TargetInfo {
	out := []TargetInfo{{
		Name:  "acmeair",
		Title: "AcmeAir benchmark server under the workload driver (acmeair:requests=N,clients=N,seed=N)",
	}}
	for _, c := range casestudy.All() {
		out = append(out, TargetInfo{Name: "case:" + c.ID, Title: c.Title, Category: c.Category})
		if c.Fixed != nil {
			out = append(out, TargetInfo{Name: "case:" + c.ID + ":fixed", Title: c.Title + " (fixed)", Category: c.Category})
		}
	}
	return out
}

// TargetByName resolves a target spec string:
//
//	case:<id>          case study, buggy version (bare <id> also works)
//	case:<id>:fixed    case study, fixed version
//	acmeair            AcmeAir workload with the default load
//	acmeair:k=v,...    parameterized (requests=N, clients=N, seed=N)
//
// Unknown names and malformed parameters are configuration errors.
func TargetByName(spec string) (Target, error) {
	switch {
	case spec == "":
		return Target{}, fmt.Errorf("explore: empty target spec")
	case spec == "acmeair":
		return AcmeAirTarget(50, 4, 1), nil
	case strings.HasPrefix(spec, "acmeair:"):
		return acmeAirFromSpec(strings.TrimPrefix(spec, "acmeair:"))
	case strings.HasPrefix(spec, "case:"):
		rest := strings.TrimPrefix(spec, "case:")
		if id, ok := strings.CutSuffix(rest, ":fixed"); ok {
			return CaseTargetByID(id, true)
		}
		return CaseTargetByID(rest, false)
	default:
		// Bare case id, the common CLI shorthand.
		return CaseTargetByID(spec, false)
	}
}

// acmeAirFromSpec parses the "requests=N,clients=N,seed=N" parameter
// list of an acmeair spec; unset keys keep their defaults.
func acmeAirFromSpec(params string) (Target, error) {
	requests, clients, seed := 50, 4, int64(1)
	for _, part := range strings.Split(params, ",") {
		if part == "" {
			continue
		}
		key, val, ok := strings.Cut(part, "=")
		if !ok {
			return Target{}, fmt.Errorf("explore: acmeair parameter %q is not key=value", part)
		}
		n, err := strconv.ParseInt(val, 10, 64)
		if err != nil {
			return Target{}, fmt.Errorf("explore: acmeair parameter %s=%q: %v", key, val, err)
		}
		switch key {
		case "requests":
			requests = int(n)
		case "clients":
			clients = int(n)
		case "seed":
			seed = n
		default:
			return Target{}, fmt.Errorf("explore: unknown acmeair parameter %q (requests, clients, seed)", key)
		}
	}
	if requests <= 0 || clients <= 0 {
		return Target{}, fmt.Errorf("explore: acmeair requires positive requests and clients (got %d, %d)", requests, clients)
	}
	return AcmeAirTarget(requests, clients, seed), nil
}
