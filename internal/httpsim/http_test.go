package httpsim

import (
	"testing"

	"asyncg/internal/eventloop"
	"asyncg/internal/loc"
	"asyncg/internal/netio"
	"asyncg/internal/vm"
)

// serve runs program with a loop + network; the program sets up servers
// and clients.
func serve(t *testing.T, program func(l *eventloop.Loop, n *netio.Network)) *eventloop.Loop {
	t.Helper()
	l := eventloop.New(eventloop.Options{TickLimit: 50_000})
	n := netio.New(l, netio.Options{})
	main := vm.NewFunc("main", func([]vm.Value) vm.Value {
		program(l, n)
		return vm.Undefined
	})
	if err := l.Run(main); err != nil {
		t.Fatal(err)
	}
	return l
}

func fn(name string, f func(args []vm.Value)) *vm.Function {
	return vm.NewFunc(name, func(args []vm.Value) vm.Value {
		f(args)
		return vm.Undefined
	})
}

func TestHelloWorldExchange(t *testing.T) {
	var status int
	var body string
	serve(t, func(l *eventloop.Loop, n *netio.Network) {
		srv := CreateServer(n, loc.Here(), fn("handler", func(args []vm.Value) {
			res := args[1].(*ServerResponse)
			res.EndString(loc.Here(), "Hello World!")
		}))
		if err := srv.Listen(loc.Here(), 5000); err != nil {
			t.Fatal(err)
		}
		Get(n, loc.Here(), 5000, "/", fn("onResp", func(args []vm.Value) {
			resp := args[0].(*IncomingMessage)
			status = resp.StatusCode
			CollectBody(resp, func(b []byte) { body = string(b) })
		}))
	})
	if status != 200 || body != "Hello World!" {
		t.Fatalf("status=%d body=%q", status, body)
	}
}

func TestRequestBodyStreamsToServer(t *testing.T) {
	// The §II-A example: accept data chunks, defer processing with
	// setImmediate, respond with the processed body.
	var echoed string
	serve(t, func(l *eventloop.Loop, n *netio.Network) {
		srv := CreateServer(n, loc.Here(), fn("accept", func(args []vm.Value) {
			req := args[0].(*IncomingMessage)
			res := args[1].(*ServerResponse)
			var chunks []byte
			req.On(loc.Here(), "data", fn("data", func(args []vm.Value) {
				chunks = append(chunks, args[0].([]byte)...)
			}))
			req.On(loc.Here(), "end", fn("end", func([]vm.Value) {
				l.SetImmediate(loc.Here(), fn("defer", func([]vm.Value) {
					res.EndString(loc.Here(), "processed:"+string(chunks))
				}))
			}))
		}))
		if err := srv.Listen(loc.Here(), 5000); err != nil {
			t.Fatal(err)
		}
		Request(n, loc.Here(), RequestOptions{
			Port: 5000, Method: "POST", Path: "/submit", Body: []byte("abc"),
		}, fn("onResp", func(args []vm.Value) {
			CollectBody(args[0].(*IncomingMessage), func(b []byte) { echoed = string(b) })
		}))
	})
	if echoed != "processed:abc" {
		t.Fatalf("echoed = %q", echoed)
	}
}

func TestRequestToClosedPortEmitsError(t *testing.T) {
	var gotErr bool
	serve(t, func(l *eventloop.Loop, n *netio.Network) {
		req := Get(n, loc.Here(), 1234, "/", nil)
		req.On(loc.Here(), "error", fn("err", func([]vm.Value) { gotErr = true }))
	})
	if !gotErr {
		t.Fatal("no error event for refused connection")
	}
}

func TestServerSeesMethodPathHeaders(t *testing.T) {
	var method, path, token string
	serve(t, func(l *eventloop.Loop, n *netio.Network) {
		srv := CreateServer(n, loc.Here(), fn("h", func(args []vm.Value) {
			req := args[0].(*IncomingMessage)
			method, path, token = req.Method, req.Path, req.Headers["x-token"]
			args[1].(*ServerResponse).WriteHead(204).End(loc.Here(), nil)
		}))
		if err := srv.Listen(loc.Here(), 5000); err != nil {
			t.Fatal(err)
		}
		Request(n, loc.Here(), RequestOptions{
			Port: 5000, Method: "DELETE", Path: "/rest/api/thing/9",
			Headers: map[string]string{"x-token": "t0k"},
		}, nil)
	})
	if method != "DELETE" || path != "/rest/api/thing/9" || token != "t0k" {
		t.Fatalf("method=%q path=%q token=%q", method, path, token)
	}
}

func TestMultipleSequentialRequests(t *testing.T) {
	var served int
	var responses int
	serve(t, func(l *eventloop.Loop, n *netio.Network) {
		srv := CreateServer(n, loc.Here(), fn("h", func(args []vm.Value) {
			served++
			args[1].(*ServerResponse).EndString(loc.Here(), "ok")
		}))
		if err := srv.Listen(loc.Here(), 5000); err != nil {
			t.Fatal(err)
		}
		var issue func(k int)
		issue = func(k int) {
			if k == 0 {
				return
			}
			Get(n, loc.Here(), 5000, "/", fn("resp", func(args []vm.Value) {
				responses++
				issue(k - 1)
			}))
		}
		issue(5)
	})
	if served != 5 || responses != 5 {
		t.Fatalf("served=%d responses=%d", served, responses)
	}
}

func TestConcurrentClients(t *testing.T) {
	var served int
	serve(t, func(l *eventloop.Loop, n *netio.Network) {
		srv := CreateServer(n, loc.Here(), fn("h", func(args []vm.Value) {
			served++
			args[1].(*ServerResponse).EndString(loc.Here(), "ok")
		}))
		if err := srv.Listen(loc.Here(), 5000); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 10; i++ {
			Get(n, loc.Here(), 5000, "/", nil)
		}
	})
	if served != 10 {
		t.Fatalf("served = %d", served)
	}
}

func TestStatusCodePropagates(t *testing.T) {
	var status int
	serve(t, func(l *eventloop.Loop, n *netio.Network) {
		srv := CreateServer(n, loc.Here(), fn("h", func(args []vm.Value) {
			args[1].(*ServerResponse).WriteHead(404).EndString(loc.Here(), "nope")
		}))
		if err := srv.Listen(loc.Here(), 5000); err != nil {
			t.Fatal(err)
		}
		Get(n, loc.Here(), 5000, "/missing", fn("resp", func(args []vm.Value) {
			status = args[0].(*IncomingMessage).StatusCode
		}))
	})
	if status != 404 {
		t.Fatalf("status = %d", status)
	}
}

func TestResponseHeadersArrive(t *testing.T) {
	var ctype string
	serve(t, func(l *eventloop.Loop, n *netio.Network) {
		srv := CreateServer(n, loc.Here(), fn("h", func(args []vm.Value) {
			res := args[1].(*ServerResponse)
			res.SetHeader("content-type", "application/json")
			res.EndString(loc.Here(), "{}")
		}))
		if err := srv.Listen(loc.Here(), 5000); err != nil {
			t.Fatal(err)
		}
		Get(n, loc.Here(), 5000, "/", fn("resp", func(args []vm.Value) {
			ctype = args[0].(*IncomingMessage).Headers["content-type"]
		}))
	})
	if ctype != "application/json" {
		t.Fatalf("content-type = %q", ctype)
	}
}

func TestHandlerRunsInIOTick(t *testing.T) {
	serve(t, func(l *eventloop.Loop, n *netio.Network) {
		srv := CreateServer(n, loc.Here(), fn("h", func(args []vm.Value) {
			if got := l.Phase(); got != eventloop.PhaseIO {
				t.Errorf("handler phase = %s, want io", got)
			}
			args[1].(*ServerResponse).EndString(loc.Here(), "ok")
		}))
		if err := srv.Listen(loc.Here(), 5000); err != nil {
			t.Fatal(err)
		}
		Get(n, loc.Here(), 5000, "/", nil)
	})
}

func TestKeepAlivePipelinedRequests(t *testing.T) {
	// Two requests sent on one connection with keep-alive: the server
	// responds to both on the same socket, and the parser separates the
	// pipelined responses.
	var bodies []string
	serve(t, func(l *eventloop.Loop, n *netio.Network) {
		srv := CreateServer(n, loc.Here(), fn("h", func(args []vm.Value) {
			req := args[0].(*IncomingMessage)
			args[1].(*ServerResponse).EndString(loc.Here(), "echo:"+req.Path)
		}))
		if err := srv.Listen(loc.Here(), 5000); err != nil {
			t.Fatal(err)
		}
		// Hand-rolled client: one socket, two pipelined requests.
		sock := n.Connect(loc.Here(), 5000)
		parser := NewParser()
		var body []byte
		parser.OnBody = func(chunk []byte) { body = append(body, chunk...) }
		parser.OnComplete = func() {
			bodies = append(bodies, string(body))
			body = nil
			if len(bodies) == 2 {
				sock.End(loc.Here(), nil)
			}
		}
		sock.On(loc.Here(), netio.EventConnect, fn("send", func([]vm.Value) {
			wire := EncodeRequest("GET", "/a", map[string]string{"connection": "keep-alive"}, nil)
			wire = append(wire, EncodeRequest("GET", "/b", map[string]string{"connection": "keep-alive"}, nil)...)
			sock.Write(loc.Here(), wire)
		}))
		sock.On(loc.Here(), netio.EventData, fn("recv", func(args []vm.Value) {
			if err := parser.Feed(args[0].([]byte)); err != nil {
				t.Error(err)
			}
		}))
	})
	if len(bodies) != 2 || bodies[0] != "echo:/a" || bodies[1] != "echo:/b" {
		t.Fatalf("bodies = %v", bodies)
	}
}

func TestMalformedRequestGets400(t *testing.T) {
	var status int
	serve(t, func(l *eventloop.Loop, n *netio.Network) {
		srv := CreateServer(n, loc.Here(), fn("h", func(args []vm.Value) {
			t.Error("handler ran for malformed request")
		}))
		if err := srv.Listen(loc.Here(), 5000); err != nil {
			t.Fatal(err)
		}
		sock := n.Connect(loc.Here(), 5000)
		parser := NewParser()
		parser.OnHead = func(h *Head) { status = h.Status }
		sock.On(loc.Here(), netio.EventConnect, fn("send", func([]vm.Value) {
			sock.WriteString(loc.Here(), "GARBAGE\r\n\r\n")
		}))
		sock.On(loc.Here(), netio.EventData, fn("recv", func(args []vm.Value) {
			if err := parser.Feed(args[0].([]byte)); err != nil {
				t.Error(err)
			}
		}))
	})
	if status != 400 {
		t.Fatalf("status = %d, want 400", status)
	}
}
