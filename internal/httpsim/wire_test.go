package httpsim

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"
)

// collectParser gathers parser callbacks for assertions.
type collectParser struct {
	p        *Parser
	heads    []*Head
	bodies   [][]byte
	complete int
}

func newCollectParser() *collectParser {
	c := &collectParser{p: NewParser()}
	c.p.OnHead = func(h *Head) { c.heads = append(c.heads, h) }
	c.p.OnBody = func(b []byte) { c.bodies = append(c.bodies, append([]byte(nil), b...)) }
	c.p.OnComplete = func() { c.complete++ }
	return c
}

func (c *collectParser) body() string {
	var all []byte
	for _, b := range c.bodies {
		all = append(all, b...)
	}
	return string(all)
}

func TestParseSimpleRequest(t *testing.T) {
	c := newCollectParser()
	wire := "POST /rest/api/login HTTP/1.1\r\nContent-Length: 9\r\nHost: x\r\n\r\nuser=fred"
	if err := c.p.Feed([]byte(wire)); err != nil {
		t.Fatal(err)
	}
	if len(c.heads) != 1 || c.complete != 1 {
		t.Fatalf("heads=%d complete=%d", len(c.heads), c.complete)
	}
	h := c.heads[0]
	if h.Kind != RequestMessage || h.Method != "POST" || h.Path != "/rest/api/login" {
		t.Fatalf("head = %+v", h)
	}
	if h.Headers["host"] != "x" {
		t.Fatalf("headers = %v", h.Headers)
	}
	if c.body() != "user=fred" {
		t.Fatalf("body = %q", c.body())
	}
}

func TestParseResponse(t *testing.T) {
	c := newCollectParser()
	wire := "HTTP/1.1 404 Not Found\r\nContent-Length: 4\r\n\r\ngone"
	if err := c.p.Feed([]byte(wire)); err != nil {
		t.Fatal(err)
	}
	h := c.heads[0]
	if h.Kind != ResponseMessage || h.Status != 404 || h.StatusText != "Not Found" {
		t.Fatalf("head = %+v", h)
	}
	if c.body() != "gone" {
		t.Fatalf("body = %q", c.body())
	}
}

func TestParseRequestWithoutBody(t *testing.T) {
	c := newCollectParser()
	if err := c.p.Feed([]byte("GET / HTTP/1.1\r\n\r\n")); err != nil {
		t.Fatal(err)
	}
	if c.complete != 1 || len(c.bodies) != 0 {
		t.Fatalf("complete=%d bodies=%d", c.complete, len(c.bodies))
	}
}

func TestParseByteAtATime(t *testing.T) {
	c := newCollectParser()
	wire := "POST /x HTTP/1.1\r\nContent-Length: 5\r\n\r\nhello"
	for i := 0; i < len(wire); i++ {
		if err := c.p.Feed([]byte{wire[i]}); err != nil {
			t.Fatal(err)
		}
	}
	if c.complete != 1 || c.body() != "hello" {
		t.Fatalf("complete=%d body=%q", c.complete, c.body())
	}
}

func TestParsePipelinedMessages(t *testing.T) {
	c := newCollectParser()
	wire := "GET /a HTTP/1.1\r\n\r\nGET /b HTTP/1.1\r\n\r\n" +
		"POST /c HTTP/1.1\r\nContent-Length: 2\r\n\r\nok"
	if err := c.p.Feed([]byte(wire)); err != nil {
		t.Fatal(err)
	}
	if len(c.heads) != 3 || c.complete != 3 {
		t.Fatalf("heads=%d complete=%d", len(c.heads), c.complete)
	}
	if c.heads[0].Path != "/a" || c.heads[1].Path != "/b" || c.heads[2].Path != "/c" {
		t.Fatalf("paths = %v %v %v", c.heads[0].Path, c.heads[1].Path, c.heads[2].Path)
	}
}

func TestParseMalformedStartLine(t *testing.T) {
	c := newCollectParser()
	if err := c.p.Feed([]byte("NONSENSE\r\n\r\n")); err == nil {
		t.Fatal("malformed start line accepted")
	}
	if err := c.p.Feed([]byte("GET / HTTP/1.1\r\n\r\n")); err == nil {
		t.Fatal("poisoned parser kept accepting input")
	}
}

func TestParseMalformedHeader(t *testing.T) {
	c := newCollectParser()
	if err := c.p.Feed([]byte("GET / HTTP/1.1\r\nbroken header\r\n\r\n")); err == nil {
		t.Fatal("malformed header accepted")
	}
}

func TestHeadKeepAlive(t *testing.T) {
	cases := []struct {
		proto, conn string
		want        bool
	}{
		{"HTTP/1.1", "", true},
		{"HTTP/1.1", "close", false},
		{"HTTP/1.1", "keep-alive", true},
		{"HTTP/1.0", "", false},
		{"HTTP/1.0", "keep-alive", true},
	}
	for _, tc := range cases {
		h := &Head{Proto: tc.proto, Headers: map[string]string{}}
		if tc.conn != "" {
			h.Headers["connection"] = tc.conn
		}
		if got := h.KeepAlive(); got != tc.want {
			t.Errorf("KeepAlive(%s, %q) = %v, want %v", tc.proto, tc.conn, got, tc.want)
		}
	}
}

func TestEncodeRequestRoundTrip(t *testing.T) {
	wire := EncodeRequest("POST", "/api", map[string]string{"x-token": "abc"}, []byte("payload"))
	c := newCollectParser()
	if err := c.p.Feed(wire); err != nil {
		t.Fatal(err)
	}
	h := c.heads[0]
	if h.Method != "POST" || h.Path != "/api" || h.Headers["x-token"] != "abc" {
		t.Fatalf("head = %+v", h)
	}
	if c.body() != "payload" {
		t.Fatalf("body = %q", c.body())
	}
}

func TestEncodeResponseRoundTrip(t *testing.T) {
	wire := EncodeResponse(201, map[string]string{"content-type": "application/json"}, []byte(`{"ok":1}`))
	c := newCollectParser()
	if err := c.p.Feed(wire); err != nil {
		t.Fatal(err)
	}
	h := c.heads[0]
	if h.Status != 201 || h.Headers["content-type"] != "application/json" {
		t.Fatalf("head = %+v", h)
	}
	if c.body() != `{"ok":1}` {
		t.Fatalf("body = %q", c.body())
	}
}

// TestQuickRoundTripAnyBody: property — any body survives an
// encode/parse round trip regardless of how the wire is fragmented.
func TestQuickRoundTripAnyBody(t *testing.T) {
	f := func(body []byte, cut uint8) bool {
		wire := EncodeRequest("POST", "/p", nil, body)
		c := newCollectParser()
		// Split the wire at an arbitrary point.
		split := int(cut) % (len(wire) + 1)
		if err := c.p.Feed(wire[:split]); err != nil {
			return false
		}
		if err := c.p.Feed(wire[split:]); err != nil {
			return false
		}
		return c.complete == 1 && bytes.Equal([]byte(c.body()), body)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickHeadersRoundTrip: property — header maps with printable
// token keys survive the round trip.
func TestQuickHeadersRoundTrip(t *testing.T) {
	f := func(vals []string) bool {
		headers := make(map[string]string)
		for i, v := range vals {
			if i >= 8 {
				break
			}
			v = strings.Map(func(r rune) rune {
				if r < 0x20 || r > 0x7e || r == ':' {
					return 'x'
				}
				return r
			}, v)
			headers["x-h"+string(rune('a'+i))] = strings.TrimSpace(v)
		}
		wire := EncodeRequest("GET", "/", headers, nil)
		c := newCollectParser()
		if err := c.p.Feed(wire); err != nil {
			return false
		}
		if len(c.heads) != 1 {
			return false
		}
		for k, v := range headers {
			if c.heads[0].Headers[strings.ToLower(k)] != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestStatusTextCoverage(t *testing.T) {
	for _, code := range []int{200, 201, 204, 400, 401, 403, 404, 405, 500, 503} {
		if StatusText(code) == "Unknown" {
			t.Errorf("StatusText(%d) = Unknown", code)
		}
	}
	if StatusText(599) != "Unknown" {
		t.Error("unexpected text for 599")
	}
}
