package httpsim

import (
	"asyncg/internal/events"
	"asyncg/internal/loc"
	"asyncg/internal/netio"
	"asyncg/internal/vm"
)

// RequestOptions parameterizes an outgoing request.
type RequestOptions struct {
	Port    int
	Method  string
	Path    string
	Headers map[string]string
	Body    []byte
}

// ClientRequest is an in-flight outgoing request: an event emitter with
// 'response' (an *IncomingMessage whose 'data'/'end' stream the body),
// 'error', and 'close'.
type ClientRequest struct {
	*events.Emitter
	sock *netio.Socket
}

// Request opens a connection, sends the request, and parses the
// response. onResponse, if non-nil, is registered as a 'response'
// listener (the http.request callback idiom).
//
// Each request uses its own connection with "Connection: close", so a
// full exchange exercises the I/O poll phase (connect, data) and the
// close-handlers phase, as the paper's event-loop walkthrough describes.
func Request(n *netio.Network, at loc.Loc, opts RequestOptions, onResponse *vm.Function) *ClientRequest {
	if opts.Method == "" {
		opts.Method = "GET"
	}
	if opts.Headers == nil {
		opts.Headers = make(map[string]string)
	}
	opts.Headers["connection"] = "close"
	req := &ClientRequest{
		Emitter: events.New(n.Loop(), "httpClientRequest", at),
		sock:    n.Connect(at, opts.Port),
	}
	req.SetZone("client")
	if onResponse != nil {
		req.OnWithAPI(at, APIRequest, "response", onResponse)
	}

	parser := NewParser()
	var current *IncomingMessage
	parser.OnHead = func(h *Head) {
		if h.Kind != ResponseMessage {
			req.sock.Destroy(loc.Internal)
			req.Emit(loc.Internal, "error", "malformed response")
			return
		}
		current = newIncoming(n.Loop(), "httpResponse", h)
		current.SetZone("client")
		req.Emit(loc.Internal, "response", current)
	}
	parser.OnBody = func(chunk []byte) {
		if current != nil {
			current.Emit(loc.Internal, "data", chunk)
		}
	}
	parser.OnComplete = func() {
		if current != nil {
			current.Emit(loc.Internal, "end")
			current = nil
		}
	}

	wire := EncodeRequest(opts.Method, opts.Path, opts.Headers, opts.Body)
	req.sock.On(loc.Internal, netio.EventConnect, vm.NewFuncAt("(http.send)", loc.Internal,
		func(args []vm.Value) vm.Value {
			req.sock.Write(loc.Internal, wire)
			return vm.Undefined
		}))
	req.sock.On(loc.Internal, netio.EventData, vm.NewFuncAt("(http.parseResp)", loc.Internal,
		func(args []vm.Value) vm.Value {
			if err := parser.Feed(args[0].([]byte)); err != nil {
				req.Emit(loc.Internal, "error", err.Error())
				req.sock.Destroy(loc.Internal)
			}
			return vm.Undefined
		}))
	req.sock.On(loc.Internal, netio.EventError, vm.NewFuncAt("(http.connError)", loc.Internal,
		func(args []vm.Value) vm.Value {
			req.Emit(loc.Internal, "error", vm.Arg(args, 0))
			return vm.Undefined
		}))
	req.sock.On(loc.Internal, netio.EventClose, vm.NewFuncAt("(http.clientClose)", loc.Internal,
		func(args []vm.Value) vm.Value {
			req.Emit(loc.Internal, "close")
			return vm.Undefined
		}))
	return req
}

// Get issues a GET request.
func Get(n *netio.Network, at loc.Loc, port int, path string, onResponse *vm.Function) *ClientRequest {
	return Request(n, at, RequestOptions{Port: port, Path: path}, onResponse)
}

// CollectBody registers internal 'data'/'end' listeners on msg and calls
// done with the full body once it completes — the common
// body-accumulation idiom from the paper's §II-A example, packaged.
func CollectBody(msg *IncomingMessage, done func(body []byte)) {
	var body []byte
	msg.On(loc.Internal, "data", vm.NewFuncAt("(collect.data)", loc.Internal,
		func(args []vm.Value) vm.Value {
			body = append(body, args[0].([]byte)...)
			return vm.Undefined
		}))
	msg.On(loc.Internal, "end", vm.NewFuncAt("(collect.end)", loc.Internal,
		func(args []vm.Value) vm.Value {
			done(body)
			return vm.Undefined
		}))
}
