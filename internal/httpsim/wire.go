// Package httpsim implements a small HTTP/1.1 layer over the simulated
// network: createServer / request with 'request', 'response', 'data',
// 'end' and 'close' events, backed by a real incremental wire parser.
// It reproduces the emitter-based I/O chains of the paper's §II-A
// example (http-request → data receiving → ... → response), so Async
// Graphs of HTTP programs look like the paper's figures.
package httpsim

import (
	"fmt"
	"strconv"
	"strings"
)

// MessageKind distinguishes request and response wire messages.
type MessageKind int

// Wire message kinds.
const (
	RequestMessage MessageKind = iota
	ResponseMessage
)

// Head is a parsed start line plus headers.
type Head struct {
	Kind MessageKind
	// Request fields.
	Method string
	Path   string
	// Response fields.
	Status     int
	StatusText string

	Proto   string
	Headers map[string]string
}

// ContentLength returns the declared body length (0 when absent).
func (h *Head) ContentLength() int {
	v, ok := h.Headers["content-length"]
	if !ok {
		return 0
	}
	n, err := strconv.Atoi(strings.TrimSpace(v))
	if err != nil || n < 0 {
		return 0
	}
	return n
}

// KeepAlive reports whether the peer asked to keep the connection open.
// HTTP/1.1 defaults to keep-alive unless "Connection: close" is present.
func (h *Head) KeepAlive() bool {
	c := strings.ToLower(h.Headers["connection"])
	if h.Proto == "HTTP/1.0" {
		return c == "keep-alive"
	}
	return c != "close"
}

// parser states.
const (
	stateStartLine = iota
	stateHeaders
	stateBody
)

// Parser is an incremental HTTP/1.1 message parser. Feed it network
// chunks in any fragmentation; it invokes OnHead once per message head,
// OnBody per body fragment, and OnComplete at each message end, then
// resets for the next pipelined message.
type Parser struct {
	// OnHead is called with the parsed start line and headers.
	OnHead func(*Head)
	// OnBody is called with each decoded body fragment.
	OnBody func([]byte)
	// OnComplete is called when the message (including body) ends.
	OnComplete func()

	buf       []byte
	state     int
	head      *Head
	remaining int
}

// NewParser creates a parser.
func NewParser() *Parser { return &Parser{} }

// Feed consumes a chunk. It returns an error on malformed input; the
// parser is then poisoned and further feeding keeps failing.
func (p *Parser) Feed(data []byte) error {
	if p.state < 0 {
		return fmt.Errorf("httpsim: parser previously failed")
	}
	p.buf = append(p.buf, data...)
	for {
		switch p.state {
		case stateStartLine:
			line, ok := p.takeLine()
			if !ok {
				return nil
			}
			if line == "" {
				continue // tolerate leading CRLF between messages
			}
			head, err := parseStartLine(line)
			if err != nil {
				p.state = -1
				return err
			}
			p.head = head
			p.state = stateHeaders
		case stateHeaders:
			line, ok := p.takeLine()
			if !ok {
				return nil
			}
			if line == "" {
				p.remaining = p.head.ContentLength()
				if p.OnHead != nil {
					p.OnHead(p.head)
				}
				if p.remaining == 0 {
					p.finishMessage()
					continue
				}
				p.state = stateBody
				continue
			}
			key, val, err := parseHeaderLine(line)
			if err != nil {
				p.state = -1
				return err
			}
			p.head.Headers[key] = val
		case stateBody:
			if len(p.buf) == 0 {
				return nil
			}
			n := p.remaining
			if n > len(p.buf) {
				n = len(p.buf)
			}
			chunk := p.buf[:n]
			p.buf = p.buf[n:]
			p.remaining -= n
			if p.OnBody != nil {
				p.OnBody(chunk)
			}
			if p.remaining == 0 {
				p.finishMessage()
			}
		}
	}
}

func (p *Parser) finishMessage() {
	p.head = nil
	p.state = stateStartLine
	if p.OnComplete != nil {
		p.OnComplete()
	}
}

// takeLine pops one CRLF-terminated line from the buffer.
func (p *Parser) takeLine() (string, bool) {
	idx := -1
	for i := 0; i+1 < len(p.buf); i++ {
		if p.buf[i] == '\r' && p.buf[i+1] == '\n' {
			idx = i
			break
		}
	}
	if idx < 0 {
		return "", false
	}
	line := string(p.buf[:idx])
	p.buf = p.buf[idx+2:]
	return line, true
}

// parseStartLine parses either "GET /x HTTP/1.1" or "HTTP/1.1 200 OK".
func parseStartLine(line string) (*Head, error) {
	parts := strings.SplitN(line, " ", 3)
	if len(parts) < 3 {
		return nil, fmt.Errorf("httpsim: malformed start line %q", line)
	}
	h := &Head{Headers: make(map[string]string)}
	if strings.HasPrefix(parts[0], "HTTP/") {
		h.Kind = ResponseMessage
		h.Proto = parts[0]
		status, err := strconv.Atoi(parts[1])
		if err != nil {
			return nil, fmt.Errorf("httpsim: malformed status in %q", line)
		}
		h.Status = status
		h.StatusText = parts[2]
		return h, nil
	}
	h.Kind = RequestMessage
	h.Method = parts[0]
	h.Path = parts[1]
	h.Proto = parts[2]
	if !strings.HasPrefix(h.Proto, "HTTP/") {
		return nil, fmt.Errorf("httpsim: malformed protocol in %q", line)
	}
	return h, nil
}

func parseHeaderLine(line string) (key, val string, err error) {
	idx := strings.IndexByte(line, ':')
	if idx <= 0 {
		return "", "", fmt.Errorf("httpsim: malformed header %q", line)
	}
	return strings.ToLower(strings.TrimSpace(line[:idx])), strings.TrimSpace(line[idx+1:]), nil
}

// EncodeRequest serializes a request message.
func EncodeRequest(method, path string, headers map[string]string, body []byte) []byte {
	var b strings.Builder
	fmt.Fprintf(&b, "%s %s HTTP/1.1\r\n", method, path)
	writeHeaders(&b, headers, len(body))
	b.Write(body)
	return []byte(b.String())
}

// EncodeResponse serializes a response message.
func EncodeResponse(status int, headers map[string]string, body []byte) []byte {
	var b strings.Builder
	fmt.Fprintf(&b, "HTTP/1.1 %d %s\r\n", status, StatusText(status))
	writeHeaders(&b, headers, len(body))
	b.Write(body)
	return []byte(b.String())
}

func writeHeaders(b *strings.Builder, headers map[string]string, bodyLen int) {
	seenCL := false
	// Deterministic header order: sorted keys.
	keys := make([]string, 0, len(headers))
	for k := range headers {
		keys = append(keys, k)
	}
	sortStrings(keys)
	for _, k := range keys {
		if strings.EqualFold(k, "content-length") {
			seenCL = true
		}
		fmt.Fprintf(b, "%s: %s\r\n", k, headers[k])
	}
	if !seenCL && bodyLen > 0 {
		fmt.Fprintf(b, "Content-Length: %d\r\n", bodyLen)
	}
	b.WriteString("\r\n")
}

// sortStrings is insertion sort: header maps are tiny and this keeps the
// hot path free of sort's interface allocations.
func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// StatusText returns the reason phrase for common status codes.
func StatusText(status int) string {
	switch status {
	case 200:
		return "OK"
	case 201:
		return "Created"
	case 204:
		return "No Content"
	case 400:
		return "Bad Request"
	case 401:
		return "Unauthorized"
	case 403:
		return "Forbidden"
	case 404:
		return "Not Found"
	case 405:
		return "Method Not Allowed"
	case 500:
		return "Internal Server Error"
	case 503:
		return "Service Unavailable"
	default:
		return "Unknown"
	}
}
