package httpsim

import (
	"fmt"

	"asyncg/internal/eventloop"
	"asyncg/internal/events"
	"asyncg/internal/loc"
	"asyncg/internal/netio"
	"asyncg/internal/vm"
)

// API names announced through probe events.
const (
	APICreateServer = "http.createServer"
	APIRequest      = "http.request"
)

// IncomingMessage is a received request (server side) or response
// (client side). It is an event emitter: 'data' per body chunk, 'end'
// when the body completes, 'close' when the connection closes.
type IncomingMessage struct {
	*events.Emitter
	// Request-side fields.
	Method string
	Path   string
	// Response-side field.
	StatusCode int

	Headers map[string]string
}

func newIncoming(l *eventloop.Loop, name string, h *Head) *IncomingMessage {
	return &IncomingMessage{
		Emitter:    events.New(l, name, loc.Internal),
		Method:     h.Method,
		Path:       h.Path,
		StatusCode: h.Status,
		Headers:    h.Headers,
	}
}

// ServerResponse accumulates the response for one request and writes it
// to the connection on End. Responses are buffered whole (no chunked
// transfer encoding in the simulation).
type ServerResponse struct {
	sock      *netio.Socket
	loop      *eventloop.Loop
	status    int
	headers   map[string]string
	body      []byte
	finished  bool
	keepAlive bool
}

// WriteHead sets the response status.
func (r *ServerResponse) WriteHead(status int) *ServerResponse {
	r.status = status
	return r
}

// SetHeader sets one response header.
func (r *ServerResponse) SetHeader(key, value string) *ServerResponse {
	r.headers[key] = value
	return r
}

// Write appends body bytes.
func (r *ServerResponse) Write(data []byte) *ServerResponse {
	r.body = append(r.body, data...)
	return r
}

// End finishes the response, optionally appending final body data, and
// writes it to the socket. Without keep-alive the connection is closed.
func (r *ServerResponse) End(at loc.Loc, data []byte) {
	if r.finished {
		return
	}
	r.finished = true
	r.body = append(r.body, data...)
	wire := EncodeResponse(r.status, r.headers, r.body)
	if r.keepAlive {
		r.sock.Write(at, wire)
		return
	}
	r.sock.End(at, wire)
}

// EndString is End for string bodies.
func (r *ServerResponse) EndString(at loc.Loc, body string) { r.End(at, []byte(body)) }

// Finished reports whether End was called.
func (r *ServerResponse) Finished() bool { return r.finished }

// Server is a simulated http.Server: an event emitter whose 'request'
// event fires with (req *IncomingMessage, res *ServerResponse) per
// parsed request; 'connection' fires with each accepted socket and
// 'close' when the listener shuts down.
type Server struct {
	*events.Emitter
	net   *netio.Network
	inner *netio.Server
}

// CreateServer creates an HTTP server. As in Node, the optional handler
// is registered as a listener for the 'request' event on the server's
// internal emitter — which is exactly how the paper's Fig. 3 graph
// shows http.createServer (□-L7 bound to the internal emitter E1).
func CreateServer(n *netio.Network, at loc.Loc, handler *vm.Function) *Server {
	s := &Server{
		Emitter: events.New(n.Loop(), "httpServer", at),
		net:     n,
	}
	if handler != nil {
		s.OnWithAPI(at, APICreateServer, "request", handler)
	}
	return s
}

// Listen binds the server to a port.
func (s *Server) Listen(at loc.Loc, port int) error {
	inner, err := s.net.Listen(at, port)
	if err != nil {
		return err
	}
	s.inner = inner
	server := s
	inner.On(loc.Internal, netio.EventConnection, vm.NewFuncAt("(http.accept)", loc.Internal,
		func(args []vm.Value) vm.Value {
			sock := args[0].(*netio.Socket)
			server.Emit(loc.Internal, "connection", sock)
			server.handleConnection(sock)
			return vm.Undefined
		}))
	inner.On(loc.Internal, netio.EventClose, vm.NewFuncAt("(http.closed)", loc.Internal,
		func(args []vm.Value) vm.Value {
			server.Emit(loc.Internal, "close")
			return vm.Undefined
		}))
	return nil
}

// Close shuts the listener down.
func (s *Server) Close(at loc.Loc) {
	if s.inner != nil {
		s.inner.Close(at)
	}
}

// handleConnection wires a per-connection parser that turns wire bytes
// into 'request' emissions and per-request 'data'/'end' events.
func (s *Server) handleConnection(sock *netio.Socket) {
	parser := NewParser()
	var current *IncomingMessage
	parser.OnHead = func(h *Head) {
		if h.Kind != RequestMessage {
			sock.Destroy(loc.Internal)
			return
		}
		req := newIncoming(s.net.Loop(), "httpRequest", h)
		res := &ServerResponse{
			sock:      sock,
			loop:      s.net.Loop(),
			status:    200,
			headers:   make(map[string]string),
			keepAlive: h.KeepAlive(),
		}
		current = req
		s.Emit(loc.Internal, "request", req, res)
	}
	parser.OnBody = func(chunk []byte) {
		if current != nil {
			current.Emit(loc.Internal, "data", chunk)
		}
	}
	parser.OnComplete = func() {
		if current != nil {
			current.Emit(loc.Internal, "end")
			current = nil
		}
	}
	sock.On(loc.Internal, netio.EventData, vm.NewFuncAt("(http.parse)", loc.Internal,
		func(args []vm.Value) vm.Value {
			if err := parser.Feed(args[0].([]byte)); err != nil {
				resp := EncodeResponse(400, map[string]string{}, []byte(fmt.Sprintf("bad request: %v", err)))
				sock.End(loc.Internal, resp)
			}
			return vm.Undefined
		}))
	sock.On(loc.Internal, netio.EventClose, vm.NewFuncAt("(http.connClose)", loc.Internal,
		func(args []vm.Value) vm.Value {
			if current != nil {
				current.Emit(loc.Internal, "close")
				current = nil
			}
			return vm.Undefined
		}))
}
