package state

import (
	"testing"

	"asyncg/internal/eventloop"
	"asyncg/internal/loc"
	"asyncg/internal/vm"
)

type apiRecorder struct{ events []*vm.APIEvent }

func (r *apiRecorder) FunctionEnter(*vm.Function, *vm.CallInfo)        {}
func (r *apiRecorder) FunctionExit(*vm.Function, vm.Value, *vm.Thrown) {}
func (r *apiRecorder) APICall(ev *vm.APIEvent)                         { r.events = append(r.events, ev) }

func TestCellValueSemantics(t *testing.T) {
	l := eventloop.New(eventloop.Options{})
	main := vm.NewFunc("main", func([]vm.Value) vm.Value {
		c := NewCell(l, "x", loc.Here(), nil)
		if !vm.IsUndefined(c.Get(loc.Here())) {
			t.Error("nil initial not normalized to Undefined")
		}
		c.Set(loc.Here(), 42)
		if c.Get(loc.Here()) != 42 {
			t.Errorf("Get = %v", c.Get(loc.Here()))
		}
		c.Set(loc.Here(), nil)
		if !vm.IsUndefined(c.Get(loc.Here())) {
			t.Error("nil write not normalized")
		}
		return vm.Undefined
	})
	if err := l.Run(main); err != nil {
		t.Fatal(err)
	}
}

func TestCellAnnouncesAccesses(t *testing.T) {
	l := eventloop.New(eventloop.Options{})
	rec := &apiRecorder{}
	l.Probes().Attach(rec)
	var cellID uint64
	main := vm.NewFunc("main", func([]vm.Value) vm.Value {
		c := NewCell(l, "shared", loc.Here(), 1)
		cellID = c.Ref().ID
		_ = c.Get(loc.Here())
		c.Set(loc.Here(), 2)
		return vm.Undefined
	})
	if err := l.Run(main); err != nil {
		t.Fatal(err)
	}
	want := []string{APINew, APIGet, APISet}
	if len(rec.events) != len(want) {
		t.Fatalf("events = %d, want %d", len(rec.events), len(want))
	}
	for i, api := range want {
		ev := rec.events[i]
		if ev.API != api {
			t.Errorf("event %d = %s, want %s", i, ev.API, api)
		}
		if ev.Receiver.ID != cellID || ev.Receiver.Kind != vm.ObjCell {
			t.Errorf("event %d receiver = %+v", i, ev.Receiver)
		}
	}
	if name := rec.events[0].Args[0]; name != "shared" {
		t.Errorf("new event name = %v", name)
	}
}

func TestCellStringAndName(t *testing.T) {
	l := eventloop.New(eventloop.Options{})
	main := vm.NewFunc("main", func([]vm.Value) vm.Value {
		c := NewCell(l, "counter", loc.Here(), 0)
		if c.Name() != "counter" {
			t.Errorf("Name = %q", c.Name())
		}
		if s := c.String(); s == "" {
			t.Error("empty String()")
		}
		return vm.Undefined
	})
	if err := l.Run(main); err != nil {
		t.Fatal(err)
	}
}
