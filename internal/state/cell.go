// Package state provides observable shared state for the race-detection
// extension the paper announces as ongoing research (§IX: "extending
// AsyncG with data flow analysis to automatically detect race conditions
// caused by non-deterministic event ordering"). A Cell is one shared
// variable whose reads and writes are announced through probe events, so
// the analysis can correlate accesses with the Async Graph's causal
// structure.
package state

import (
	"fmt"

	"asyncg/internal/eventloop"
	"asyncg/internal/loc"
	"asyncg/internal/vm"
)

// API names announced through probe events.
const (
	APINew = "cell.new"
	APIGet = "cell.get"
	APISet = "cell.set"
)

// Cell is one shared variable.
type Cell struct {
	loop  *eventloop.Loop
	id    uint64
	name  string
	value vm.Value
}

// NewCell creates a shared variable with an initial value.
func NewCell(l *eventloop.Loop, name string, at loc.Loc, initial vm.Value) *Cell {
	if initial == nil {
		initial = vm.Undefined
	}
	c := &Cell{loop: l, id: l.NextObjID(), name: name, value: initial}
	l.EmitAPIEvent(&vm.APIEvent{
		API:      APINew,
		Loc:      at,
		Receiver: c.Ref(),
		Args:     []vm.Value{name},
	})
	return c
}

// Ref returns the probe-protocol reference for this cell.
func (c *Cell) Ref() vm.ObjRef { return vm.ObjRef{ID: c.id, Kind: vm.ObjCell} }

// Name returns the diagnostic label.
func (c *Cell) Name() string { return c.name }

// String renders the cell as "Cell(name#id)".
func (c *Cell) String() string { return fmt.Sprintf("Cell(%s#%d)", c.name, c.id) }

// Get reads the cell, announcing the access.
func (c *Cell) Get(at loc.Loc) vm.Value {
	c.loop.EmitAPIEvent(&vm.APIEvent{
		API:      APIGet,
		Loc:      at,
		Receiver: c.Ref(),
	})
	return c.value
}

// Set writes the cell, announcing the access.
func (c *Cell) Set(at loc.Loc, v vm.Value) {
	if v == nil {
		v = vm.Undefined
	}
	c.loop.EmitAPIEvent(&vm.APIEvent{
		API:      APISet,
		Loc:      at,
		Receiver: c.Ref(),
		Args:     []vm.Value{v},
	})
	c.value = v
}
