package acmeair

import (
	"encoding/json"
	"strings"
	"testing"

	"asyncg/internal/eventloop"
	"asyncg/internal/httpsim"
	"asyncg/internal/loc"
	"asyncg/internal/mongosim"
	"asyncg/internal/netio"
	"asyncg/internal/vm"
)

// env bundles a running AcmeAir instance for tests.
type env struct {
	l   *eventloop.Loop
	n   *netio.Network
	db  *mongosim.DB
	app *App
}

// serve boots the app and runs program against it.
func serve(t *testing.T, usePromises bool, program func(e *env)) *env {
	t.Helper()
	l := eventloop.New(eventloop.Options{TickLimit: 500_000})
	n := netio.New(l, netio.Options{})
	db := mongosim.New(l, mongosim.Options{})
	LoadSampleData(db, DataSpec{Customers: 10, FlightsPerSegment: 3})
	app := New(l, n, db, Config{Port: 9080, UsePromises: usePromises})
	e := &env{l: l, n: n, db: db, app: app}
	main := vm.NewFunc("main", func([]vm.Value) vm.Value {
		if err := app.Listen(loc.Here()); err != nil {
			t.Error(err)
			return vm.Undefined
		}
		program(e)
		return vm.Undefined
	})
	if err := l.Run(main); err != nil {
		t.Fatal(err)
	}
	if got := l.Uncaught(); len(got) != 0 {
		t.Fatalf("uncaught: %v", got)
	}
	return e
}

// call issues a request and hands (status, parsed JSON) to done.
func (e *env) call(method, path, body, session string, done func(status int, payload map[string]any)) {
	headers := map[string]string{}
	if session != "" {
		headers["x-session"] = session
	}
	httpsim.Request(e.n, loc.Here(), httpsim.RequestOptions{
		Port: 9080, Method: method, Path: path,
		Headers: headers, Body: []byte(body),
	}, vm.NewFunc("testResp", func(args []vm.Value) vm.Value {
		resp := args[0].(*httpsim.IncomingMessage)
		httpsim.CollectBody(resp, func(b []byte) {
			var payload map[string]any
			_ = json.Unmarshal(b, &payload)
			done(resp.StatusCode, payload)
		})
		return vm.Undefined
	}))
}

// login authenticates uid0 and hands the session id to next.
func (e *env) login(t *testing.T, user string, next func(session string)) {
	e.call("POST", "/rest/api/login", "login="+user+"&password=password", "",
		func(status int, payload map[string]any) {
			if status != 200 {
				t.Errorf("login status = %d (%v)", status, payload)
				return
			}
			next(payload["sessionid"].(string))
		})
}

func TestLoginSuccess(t *testing.T) {
	var sid string
	serve(t, false, func(e *env) {
		e.login(t, "uid0", func(session string) { sid = session })
	})
	if sid == "" {
		t.Fatal("no session id")
	}
}

func TestLoginWrongPassword(t *testing.T) {
	var status int
	serve(t, false, func(e *env) {
		e.call("POST", "/rest/api/login", "login=uid0&password=wrong", "",
			func(s int, _ map[string]any) { status = s })
	})
	if status != 401 {
		t.Fatalf("status = %d", status)
	}
}

func TestLoginUnknownUser(t *testing.T) {
	var status int
	serve(t, false, func(e *env) {
		e.call("POST", "/rest/api/login", "login=nobody&password=password", "",
			func(s int, _ map[string]any) { status = s })
	})
	if status != 401 {
		t.Fatalf("status = %d", status)
	}
}

func TestQueryFlightsReturnsSegmentFlights(t *testing.T) {
	for _, mode := range []bool{false, true} {
		var flights []any
		serve(t, mode, func(e *env) {
			e.call("POST", "/rest/api/flights/queryflights",
				"fromAirport=SFO&toAirport=JFK", "",
				func(status int, payload map[string]any) {
					if status != 200 {
						t.Errorf("status = %d (%v)", status, payload)
						return
					}
					flights, _ = payload["flights"].([]any)
				})
		})
		if len(flights) != 3 {
			t.Fatalf("mode promises=%v: flights = %d, want 3", mode, len(flights))
		}
	}
}

func TestQueryFlightsUnknownRoute(t *testing.T) {
	var flights any = "unset"
	serve(t, false, func(e *env) {
		e.call("POST", "/rest/api/flights/queryflights",
			"fromAirport=XXX&toAirport=YYY", "",
			func(status int, payload map[string]any) {
				flights = payload["flights"]
			})
	})
	list, ok := flights.([]any)
	if !ok || len(list) != 0 {
		t.Fatalf("flights = %#v", flights)
	}
}

func TestBookingLifecycle(t *testing.T) {
	for _, mode := range []bool{false, true} {
		var bookingID string
		var listed, removed float64
		e := serve(t, mode, func(e *env) {
			e.login(t, "uid1", func(session string) {
				e.call("POST", "/rest/api/bookings/bookflights",
					"flightId=AA1-0&userid=uid1", session,
					func(status int, payload map[string]any) {
						if status != 200 {
							t.Errorf("book status = %d (%v)", status, payload)
							return
						}
						bookingID = payload["bookingId"].(string)
						e.call("GET", "/rest/api/bookings/byuser/uid1", "", session,
							func(status int, payload map[string]any) {
								listed = float64(len(payload["bookings"].([]any)))
								e.call("POST", "/rest/api/bookings/cancelbooking",
									"number="+bookingID+"&userid=uid1", session,
									func(status int, payload map[string]any) {
										removed, _ = payload["removed"].(float64)
									})
							})
					})
			})
		})
		if bookingID == "" || listed != 1 || removed != 1 {
			t.Fatalf("promises=%v: booking=%q listed=%v removed=%v", mode, bookingID, listed, removed)
		}
		if e.db.C(ColBookings).Len() != 0 {
			t.Fatalf("bookings left over: %d", e.db.C(ColBookings).Len())
		}
	}
}

func TestSessionRequiredForBookings(t *testing.T) {
	var status int
	serve(t, false, func(e *env) {
		e.call("GET", "/rest/api/bookings/byuser/uid0", "", "",
			func(s int, _ map[string]any) { status = s })
	})
	if status != 403 {
		t.Fatalf("status = %d, want 403", status)
	}
}

func TestInvalidSessionRejected(t *testing.T) {
	var status int
	serve(t, false, func(e *env) {
		e.call("GET", "/rest/api/customer/byid/uid0", "", "s999",
			func(s int, _ map[string]any) { status = s })
	})
	if status != 403 {
		t.Fatalf("status = %d, want 403", status)
	}
}

func TestCustomerViewAndUpdate(t *testing.T) {
	for _, mode := range []bool{false, true} {
		var statusField string
		var updated float64
		var phoneAfter string
		serve(t, mode, func(e *env) {
			e.login(t, "uid2", func(session string) {
				e.call("GET", "/rest/api/customer/byid/uid2", "", session,
					func(status int, payload map[string]any) {
						statusField, _ = payload["status"].(string)
						e.call("POST", "/rest/api/customer/byid/uid2",
							"phoneNumber=555-000", session,
							func(status int, payload map[string]any) {
								updated, _ = payload["updated"].(float64)
								e.call("GET", "/rest/api/customer/byid/uid2", "", session,
									func(status int, payload map[string]any) {
										phoneAfter, _ = payload["phoneNumber"].(string)
									})
							})
					})
			})
		})
		if statusField != "GOLD" || updated != 1 || phoneAfter != "555-000" {
			t.Fatalf("promises=%v: status=%q updated=%v phone=%q", mode, statusField, updated, phoneAfter)
		}
	}
}

func TestLogoutInvalidatesSession(t *testing.T) {
	var secondStatus int
	serve(t, false, func(e *env) {
		e.login(t, "uid3", func(session string) {
			e.call("GET", "/rest/api/login/logout?login=uid3", "", "",
				func(status int, _ map[string]any) {
					e.call("GET", "/rest/api/customer/byid/uid3", "", session,
						func(s int, _ map[string]any) { secondStatus = s })
				})
		})
	})
	if secondStatus != 403 {
		t.Fatalf("status after logout = %d, want 403", secondStatus)
	}
}

func TestUnknownEndpoint404(t *testing.T) {
	var status int
	serve(t, false, func(e *env) {
		e.call("GET", "/rest/api/nothing", "", "",
			func(s int, _ map[string]any) { status = s })
	})
	if status != 404 {
		t.Fatalf("status = %d", status)
	}
}

func TestBookUnknownFlight(t *testing.T) {
	for _, mode := range []bool{false, true} {
		var status int
		serve(t, mode, func(e *env) {
			e.login(t, "uid4", func(session string) {
				e.call("POST", "/rest/api/bookings/bookflights",
					"flightId=ZZZ-9&userid=uid4", session,
					func(s int, _ map[string]any) { status = s })
			})
		})
		if status != 404 {
			t.Fatalf("promises=%v: status = %d, want 404", mode, status)
		}
	}
}

func TestServedCounterAdvances(t *testing.T) {
	e := serve(t, false, func(e *env) {
		e.call("POST", "/rest/api/flights/queryflights",
			"fromAirport=SFO&toAirport=JFK", "", func(int, map[string]any) {})
		e.call("POST", "/rest/api/flights/queryflights",
			"fromAirport=JFK&toAirport=SFO", "", func(int, map[string]any) {})
	})
	if e.app.Served() != 2 {
		t.Fatalf("served = %d", e.app.Served())
	}
}

func TestFormRoundTrip(t *testing.T) {
	in := map[string]string{
		"login":    "uid0",
		"password": "p@ss word+1",
		"empty":    "",
		"sym":      "a&b=c%d",
	}
	out := parseForm([]byte(encodeForm(in)))
	if len(out) != len(in) {
		t.Fatalf("out = %v", out)
	}
	for k, v := range in {
		if out[k] != v {
			t.Errorf("field %q = %q, want %q", k, out[k], v)
		}
	}
}

func TestParseFormTolerance(t *testing.T) {
	out := parseForm([]byte("a=1&&b&c=x=y"))
	if out["a"] != "1" || out["b"] != "" || out["c"] != "x=y" {
		t.Fatalf("out = %v", out)
	}
}

func TestSampleDataShape(t *testing.T) {
	l := eventloop.New(eventloop.Options{})
	db := mongosim.New(l, mongosim.Options{})
	LoadSampleData(db, DataSpec{Customers: 5, FlightsPerSegment: 2})
	nAirports := len(Airports())
	wantSegments := nAirports * (nAirports - 1)
	if got := db.C(ColSegments).Len(); got != wantSegments {
		t.Errorf("segments = %d, want %d", got, wantSegments)
	}
	if got := db.C(ColFlights).Len(); got != wantSegments*2 {
		t.Errorf("flights = %d, want %d", got, wantSegments*2)
	}
	if got := db.C(ColCustomers).Len(); got != 5 {
		t.Errorf("customers = %d, want 5", got)
	}
}

func TestEscapeIsLossless(t *testing.T) {
	for _, s := range []string{"", "plain", "with space", "sym&=%+~", strings.Repeat("x%", 40)} {
		if got := unescape(escape(s)); got != s {
			t.Errorf("unescape(escape(%q)) = %q", s, got)
		}
	}
}

func TestConfigCountEndpoints(t *testing.T) {
	var customers, flights float64
	var unknown int
	serve(t, false, func(e *env) {
		e.call("GET", "/rest/api/config/countCustomers", "", "",
			func(status int, payload map[string]any) {
				customers, _ = payload["count"].(float64)
			})
		e.call("GET", "/rest/api/config/countFlights", "", "",
			func(status int, payload map[string]any) {
				flights, _ = payload["count"].(float64)
			})
		e.call("GET", "/rest/api/config/countNonsense", "", "",
			func(status int, payload map[string]any) { unknown = status })
	})
	if customers != 10 {
		t.Errorf("countCustomers = %v", customers)
	}
	nAirports := len(Airports())
	if want := float64(nAirports * (nAirports - 1) * 3); flights != want {
		t.Errorf("countFlights = %v, want %v", flights, want)
	}
	if unknown != 404 {
		t.Errorf("unknown count status = %d", unknown)
	}
}

func TestLoaderEndpointReloadsData(t *testing.T) {
	var status int
	var customersAfter float64
	e := serve(t, false, func(e *env) {
		e.call("GET", "/rest/api/loader/load?numCustomers=25", "", "",
			func(s int, payload map[string]any) {
				status = s
				e.call("GET", "/rest/api/config/countCustomers", "", "",
					func(s int, payload map[string]any) {
						customersAfter, _ = payload["count"].(float64)
					})
			})
	})
	if status != 200 {
		t.Fatalf("loader status = %d", status)
	}
	if customersAfter != 25 {
		t.Fatalf("customers after reload = %v, want 25", customersAfter)
	}
	if e.db.C(ColBookings).Len() != 0 {
		t.Fatal("bookings not wiped")
	}
}

func TestLoaderEndpointIgnoresBadCount(t *testing.T) {
	var customersAfter float64
	serve(t, false, func(e *env) {
		e.call("GET", "/rest/api/loader/load?numCustomers=bogus", "", "",
			func(s int, payload map[string]any) {
				e.call("GET", "/rest/api/config/countCustomers", "", "",
					func(s int, payload map[string]any) {
						customersAfter, _ = payload["count"].(float64)
					})
			})
	})
	if customersAfter != float64(DefaultDataSpec().Customers) {
		t.Fatalf("customers = %v, want default %d", customersAfter, DefaultDataSpec().Customers)
	}
}
