// Package acmeair reimplements the AcmeAir flight-booking benchmark —
// the server the paper's evaluation (§VII-B) measures — on top of the
// simulated HTTP, network and MongoDB layers. The service exposes the
// benchmark's REST endpoints (login, query flights, book, cancel, view
// bookings, customer profile) and can run its data access either through
// the classic callback interface or through the promise interface, the
// two configurations the paper compares.
package acmeair

import "strings"

// parseForm decodes an application/x-www-form-urlencoded body
// ("login=uid0&password=pw") into a map. It implements the subset the
// benchmark driver produces: %XX escapes and '+' for space.
func parseForm(body []byte) map[string]string {
	out := make(map[string]string)
	for _, pair := range strings.Split(string(body), "&") {
		if pair == "" {
			continue
		}
		key, val := pair, ""
		if idx := strings.IndexByte(pair, '='); idx >= 0 {
			key, val = pair[:idx], pair[idx+1:]
		}
		out[unescape(key)] = unescape(val)
	}
	return out
}

// encodeForm is the inverse of parseForm, used by the workload driver.
func encodeForm(fields map[string]string) string {
	// Deterministic order keeps wire bytes reproducible.
	keys := make([]string, 0, len(fields))
	for k := range fields {
		keys = append(keys, k)
	}
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	var sb strings.Builder
	for i, k := range keys {
		if i > 0 {
			sb.WriteByte('&')
		}
		sb.WriteString(escape(k))
		sb.WriteByte('=')
		sb.WriteString(escape(fields[k]))
	}
	return sb.String()
}

func unescape(s string) string {
	var sb strings.Builder
	for i := 0; i < len(s); i++ {
		switch {
		case s[i] == '+':
			sb.WriteByte(' ')
		case s[i] == '%' && i+2 < len(s):
			hi, ok1 := unhex(s[i+1])
			lo, ok2 := unhex(s[i+2])
			if ok1 && ok2 {
				sb.WriteByte(hi<<4 | lo)
				i += 2
			} else {
				sb.WriteByte(s[i])
			}
		default:
			sb.WriteByte(s[i])
		}
	}
	return sb.String()
}

func escape(s string) string {
	const hexDigits = "0123456789ABCDEF"
	var sb strings.Builder
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9',
			c == '-' || c == '_' || c == '.' || c == '~':
			sb.WriteByte(c)
		case c == ' ':
			sb.WriteByte('+')
		default:
			sb.WriteByte('%')
			sb.WriteByte(hexDigits[c>>4])
			sb.WriteByte(hexDigits[c&0xf])
		}
	}
	return sb.String()
}

func unhex(c byte) (byte, bool) {
	switch {
	case c >= '0' && c <= '9':
		return c - '0', true
	case c >= 'a' && c <= 'f':
		return c - 'a' + 10, true
	case c >= 'A' && c <= 'F':
		return c - 'A' + 10, true
	default:
		return 0, false
	}
}
