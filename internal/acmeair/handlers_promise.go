package acmeair

import (
	"fmt"

	"asyncg/internal/httpsim"
	"asyncg/internal/loc"
	"asyncg/internal/mongosim"
	"asyncg/internal/promise"
	"asyncg/internal/vm"
)

// Promise-interface variants of the data-heavy endpoints — the paper's
// modified AcmeAir ("we slightly modify AcmeAir's source code to use the
// promise-version interface for mongodb access"). bookFlightsP uses
// async/await; the others use then-chains, so both ECMAScript styles are
// exercised.

// queryFlightsP is queryFlights over promise chains.
func (a *App) queryFlightsP(res *httpsim.ServerResponse, form map[string]string) {
	from, to := form["fromAirport"], form["toAirport"]
	flightsCol := a.db.C(ColFlights)
	a.db.C(ColSegments).FindOneP(loc.Here(),
		`originPort == "`+from+`" && destPort == "`+to+`"`).
		Then(loc.Here(), vm.NewFunc("segmentThen", func(args []vm.Value) vm.Value {
			seg := vm.Arg(args, 0)
			if vm.IsUndefined(seg) {
				return []mongosim.Document(nil)
			}
			sid := seg.(mongosim.Document)["segmentId"].(string)
			return flightsCol.FindP(loc.Here(), `flightSegmentId == "`+sid+`"`)
		}), nil).
		Then(loc.Here(), vm.NewFunc("flightsThen", func(args []vm.Value) vm.Value {
			flights, _ := args[0].([]mongosim.Document)
			a.respond(res, 200, map[string]any{"flights": flights})
			return vm.Undefined
		}), nil).
		Catch(loc.Here(), vm.NewFunc("queryErr", func(args []vm.Value) vm.Value {
			a.fail(res, 500, vm.ToString(args[0]))
			return vm.Undefined
		}))
}

// bookFlightsP is bookFlights written with async/await.
func (a *App) bookFlightsP(res *httpsim.ServerResponse, customer string, form map[string]string) {
	flightID := form["flightId"]
	app := a
	promise.Go(a.loop, loc.Here(), "bookFlightsP", func(aw *promise.Awaiter) vm.Value {
		flight := aw.Await(loc.Here(), app.db.C(ColFlights).FindOneP(loc.Here(), `flightId == "`+flightID+`"`))
		if vm.IsUndefined(flight) {
			app.fail(res, 404, "no such flight "+flightID)
			return vm.Undefined
		}
		app.bookingSeq++
		bid := fmt.Sprintf("b%d", app.bookingSeq)
		aw.Await(loc.Here(), app.db.C(ColBookings).InsertP(loc.Here(), mongosim.Document{
			"bookingId":  bid,
			"customerId": customer,
			"flightId":   flightID,
		}))
		aw.Await(loc.Here(), app.db.C(ColCustomers).UpdateP(loc.Here(),
			`username == "`+customer+`"`, mongosim.Document{"miles_ytd": 2000}))
		app.respond(res, 200, map[string]string{"bookingId": bid})
		return vm.Undefined
	}).Catch(loc.Here(), vm.NewFunc("bookErr", func(args []vm.Value) vm.Value {
		a.fail(res, 500, vm.ToString(args[0]))
		return vm.Undefined
	}))
}

// customerByIDP is customerByID over a promise chain.
func (a *App) customerByIDP(res *httpsim.ServerResponse, id string) {
	a.db.C(ColCustomers).FindOneP(loc.Here(), `username == "`+id+`"`).
		Then(loc.Here(), vm.NewFunc("customerThen", func(args []vm.Value) vm.Value {
			doc := vm.Arg(args, 0)
			if vm.IsUndefined(doc) {
				a.fail(res, 404, "no such customer "+id)
				return vm.Undefined
			}
			a.respond(res, 200, doc.(mongosim.Document))
			return vm.Undefined
		}), nil).
		Catch(loc.Here(), vm.NewFunc("customerErr", func(args []vm.Value) vm.Value {
			a.fail(res, 500, vm.ToString(args[0]))
			return vm.Undefined
		}))
}
