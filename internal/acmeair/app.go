package acmeair

import (
	"encoding/json"
	"fmt"
	"strings"

	"asyncg/internal/eventloop"
	"asyncg/internal/httpsim"
	"asyncg/internal/loc"
	"asyncg/internal/mongosim"
	"asyncg/internal/netio"
	"asyncg/internal/vm"
)

// Config configures the AcmeAir server.
type Config struct {
	Port int
	// UsePromises selects the promise-version data-access interface
	// (the paper's modified AcmeAir); false selects classic callbacks.
	UsePromises bool
}

// App is the AcmeAir server instance.
type App struct {
	loop   *eventloop.Loop
	net    *netio.Network
	db     *mongosim.DB
	cfg    Config
	server *httpsim.Server

	sessionSeq int
	bookingSeq int
	served     int64
}

// New assembles the application; call Listen from inside the loop's main
// program to start serving.
func New(l *eventloop.Loop, n *netio.Network, db *mongosim.DB, cfg Config) *App {
	if cfg.Port == 0 {
		cfg.Port = 9080
	}
	return &App{loop: l, net: n, db: db, cfg: cfg}
}

// Served returns the number of requests that have received a response.
func (a *App) Served() int64 { return a.served }

// Port returns the listening port.
func (a *App) Port() int { return a.cfg.Port }

// Listen starts the HTTP server.
func (a *App) Listen(at loc.Loc) error {
	app := a
	handler := vm.NewFuncAt("acmeairRouter", at, func(args []vm.Value) vm.Value {
		req := args[0].(*httpsim.IncomingMessage)
		res := args[1].(*httpsim.ServerResponse)
		httpsim.CollectBody(req, func(body []byte) {
			app.route(req, res, body)
		})
		return vm.Undefined
	})
	a.server = httpsim.CreateServer(a.net, at, handler)
	return a.server.Listen(at, a.cfg.Port)
}

// Close shuts the server down.
func (a *App) Close(at loc.Loc) {
	if a.server != nil {
		a.server.Close(at)
	}
}

// route dispatches one request to its endpoint handler.
func (a *App) route(req *httpsim.IncomingMessage, res *httpsim.ServerResponse, body []byte) {
	path, query := splitQuery(req.Path)
	form := parseForm(body)
	switch {
	case req.Method == "POST" && path == "/rest/api/login":
		a.login(res, form)
	case req.Method == "GET" && path == "/rest/api/login/logout":
		a.logout(res, parseForm([]byte(query)))
	case req.Method == "POST" && path == "/rest/api/flights/queryflights":
		a.queryFlights(res, form)
	case req.Method == "POST" && path == "/rest/api/bookings/bookflights":
		a.bookFlights(req, res, form)
	case req.Method == "GET" && strings.HasPrefix(path, "/rest/api/bookings/byuser/"):
		a.bookingsByUser(req, res, strings.TrimPrefix(path, "/rest/api/bookings/byuser/"))
	case req.Method == "POST" && path == "/rest/api/bookings/cancelbooking":
		a.cancelBooking(req, res, form)
	case req.Method == "GET" && strings.HasPrefix(path, "/rest/api/customer/byid/"):
		a.customerByID(req, res, strings.TrimPrefix(path, "/rest/api/customer/byid/"))
	case req.Method == "POST" && strings.HasPrefix(path, "/rest/api/customer/byid/"):
		a.updateCustomer(req, res, strings.TrimPrefix(path, "/rest/api/customer/byid/"), form)
	case req.Method == "GET" && strings.HasPrefix(path, "/rest/api/config/count"):
		a.countConfig(res, strings.TrimPrefix(path, "/rest/api/config/count"))
	case req.Method == "GET" && path == "/rest/api/loader/load":
		a.loadData(res, parseForm([]byte(query)))
	default:
		a.fail(res, 404, "no such endpoint: "+req.Method+" "+path)
	}
}

func splitQuery(path string) (string, string) {
	if idx := strings.IndexByte(path, '?'); idx >= 0 {
		return path[:idx], path[idx+1:]
	}
	return path, ""
}

// --- Response helpers ---

func (a *App) respond(res *httpsim.ServerResponse, status int, payload any) {
	a.served++
	data, err := json.Marshal(payload)
	if err != nil {
		data = []byte(fmt.Sprintf(`{"error":%q}`, err.Error()))
		status = 500
	}
	res.SetHeader("content-type", "application/json")
	res.WriteHead(status).End(loc.Internal, data)
}

func (a *App) fail(res *httpsim.ServerResponse, status int, msg string) {
	a.respond(res, status, map[string]string{"error": msg})
}

// dbFail maps a DB error (callback err argument) to a 500.
func (a *App) dbFail(res *httpsim.ServerResponse, err vm.Value) bool {
	if vm.IsUndefined(err) || err == nil {
		return false
	}
	a.fail(res, 500, vm.ToString(err))
	return true
}

// cb wraps a Go closure as a DB callback function value.
func cb(name string, f func(err, res vm.Value)) *vm.Function {
	return vm.NewFunc(name, func(args []vm.Value) vm.Value {
		f(vm.Arg(args, 0), vm.Arg(args, 1))
		return vm.Undefined
	})
}

// validateSession checks the request's session header against the
// session store and calls next(customerID) on success. Endpoints under
// /bookings and /customer require a valid session, adding the
// per-request session lookup the real benchmark performs.
func (a *App) validateSession(req *httpsim.IncomingMessage, res *httpsim.ServerResponse, next func(customer string)) {
	sid := req.Headers["x-session"]
	if sid == "" {
		a.fail(res, 403, "missing session")
		return
	}
	a.db.C(ColSessions).FindOne(loc.Here(), `sessionid == "`+sid+`"`,
		cb("sessionCheck", func(err, doc vm.Value) {
			if a.dbFail(res, err) {
				return
			}
			if vm.IsUndefined(doc) {
				a.fail(res, 403, "invalid session")
				return
			}
			next(doc.(mongosim.Document)["customerid"].(string))
		}))
}

// --- Endpoints (callback data access; promise variants live in
// handlers_promise.go and are selected by Config.UsePromises) ---

// login authenticates the customer and creates a session.
func (a *App) login(res *httpsim.ServerResponse, form map[string]string) {
	user, pass := form["login"], form["password"]
	a.db.C(ColCustomers).FindOne(loc.Here(), `username == "`+user+`"`,
		cb("loginLookup", func(err, doc vm.Value) {
			if a.dbFail(res, err) {
				return
			}
			if vm.IsUndefined(doc) || doc.(mongosim.Document)["password"] != pass {
				a.fail(res, 401, "invalid credentials")
				return
			}
			a.sessionSeq++
			sid := fmt.Sprintf("s%d", a.sessionSeq)
			a.db.C(ColSessions).Insert(loc.Here(), mongosim.Document{
				"sessionid":  sid,
				"customerid": user,
			}, cb("sessionInsert", func(err, _ vm.Value) {
				if a.dbFail(res, err) {
					return
				}
				a.respond(res, 200, map[string]string{"status": "logged in", "sessionid": sid})
			}))
		}))
}

// logout removes the customer's sessions.
func (a *App) logout(res *httpsim.ServerResponse, query map[string]string) {
	user := query["login"]
	a.db.C(ColSessions).Remove(loc.Here(), `customerid == "`+user+`"`,
		cb("logout", func(err, n vm.Value) {
			if a.dbFail(res, err) {
				return
			}
			a.respond(res, 200, map[string]any{"status": "logged out", "sessions": n})
		}))
}

// queryFlights finds the segment for the requested airport pair and
// streams its flights through a cursor (the driver's cursor interface,
// as the real data layer does for multi-document results).
func (a *App) queryFlights(res *httpsim.ServerResponse, form map[string]string) {
	if a.cfg.UsePromises {
		a.queryFlightsP(res, form)
		return
	}
	from, to := form["fromAirport"], form["toAirport"]
	a.db.C(ColSegments).FindOne(loc.Here(),
		`originPort == "`+from+`" && destPort == "`+to+`"`,
		cb("segmentLookup", func(err, seg vm.Value) {
			if a.dbFail(res, err) {
				return
			}
			if vm.IsUndefined(seg) {
				a.respond(res, 200, map[string]any{"flights": []any{}})
				return
			}
			sid := seg.(mongosim.Document)["segmentId"].(string)
			cursor := a.db.C(ColFlights).FindCursor(loc.Here(), `flightSegmentId == "`+sid+`"`)
			var flights []mongosim.Document
			cursor.On(loc.Here(), "data", vm.NewFunc("flightRow", func(args []vm.Value) vm.Value {
				flights = append(flights, args[0].(mongosim.Document))
				return vm.Undefined
			}))
			cursor.On(loc.Here(), "end", vm.NewFunc("flightsDone", func(args []vm.Value) vm.Value {
				a.respond(res, 200, map[string]any{
					"segment": seg,
					"flights": flights,
				})
				return vm.Undefined
			}))
		}))
}

// bookFlights books a flight for the session's customer and credits
// miles.
func (a *App) bookFlights(req *httpsim.IncomingMessage, res *httpsim.ServerResponse, form map[string]string) {
	a.validateSession(req, res, func(customer string) {
		if a.cfg.UsePromises {
			a.bookFlightsP(res, customer, form)
			return
		}
		flightID := form["flightId"]
		a.db.C(ColFlights).FindOne(loc.Here(), `flightId == "`+flightID+`"`,
			cb("flightLookup", func(err, flight vm.Value) {
				if a.dbFail(res, err) {
					return
				}
				if vm.IsUndefined(flight) {
					a.fail(res, 404, "no such flight "+flightID)
					return
				}
				a.bookingSeq++
				bid := fmt.Sprintf("b%d", a.bookingSeq)
				a.db.C(ColBookings).Insert(loc.Here(), mongosim.Document{
					"bookingId":  bid,
					"customerId": customer,
					"flightId":   flightID,
				}, cb("bookingInsert", func(err, _ vm.Value) {
					if a.dbFail(res, err) {
						return
					}
					a.db.C(ColCustomers).Update(loc.Here(), `username == "`+customer+`"`,
						mongosim.Document{"miles_ytd": 2000},
						cb("milesUpdate", func(err, _ vm.Value) {
							if a.dbFail(res, err) {
								return
							}
							a.respond(res, 200, map[string]string{"bookingId": bid})
						}))
				}))
			}))
	})
}

// bookingsByUser lists the customer's bookings.
func (a *App) bookingsByUser(req *httpsim.IncomingMessage, res *httpsim.ServerResponse, user string) {
	a.validateSession(req, res, func(customer string) {
		a.db.C(ColBookings).FindWith(loc.Here(), `customerId == "`+user+`"`,
			mongosim.FindOptions{SortBy: "bookingId"},
			cb("bookingList", func(err, docs vm.Value) {
				if a.dbFail(res, err) {
					return
				}
				list, _ := docs.([]mongosim.Document)
				a.respond(res, 200, map[string]any{"bookings": list})
			}))
	})
}

// cancelBooking removes one booking.
func (a *App) cancelBooking(req *httpsim.IncomingMessage, res *httpsim.ServerResponse, form map[string]string) {
	a.validateSession(req, res, func(customer string) {
		number := form["number"]
		a.db.C(ColBookings).Remove(loc.Here(),
			`bookingId == "`+number+`" && customerId == "`+customer+`"`,
			cb("cancel", func(err, n vm.Value) {
				if a.dbFail(res, err) {
					return
				}
				a.respond(res, 200, map[string]any{"removed": n})
			}))
	})
}

// customerByID returns a customer profile.
func (a *App) customerByID(req *httpsim.IncomingMessage, res *httpsim.ServerResponse, id string) {
	a.validateSession(req, res, func(customer string) {
		if a.cfg.UsePromises {
			a.customerByIDP(res, id)
			return
		}
		a.db.C(ColCustomers).FindOne(loc.Here(), `username == "`+id+`"`,
			cb("customerLookup", func(err, doc vm.Value) {
				if a.dbFail(res, err) {
					return
				}
				if vm.IsUndefined(doc) {
					a.fail(res, 404, "no such customer "+id)
					return
				}
				a.respond(res, 200, doc.(mongosim.Document))
			}))
	})
}

// countConfig serves the benchmark's config endpoints
// (/rest/api/config/countCustomers and friends), which report collection
// sizes — the loader's sanity checks.
func (a *App) countConfig(res *httpsim.ServerResponse, what string) {
	col := map[string]string{
		"Customers":      ColCustomers,
		"Sessions":       ColSessions,
		"Flights":        ColFlights,
		"FlightSegments": ColSegments,
		"Bookings":       ColBookings,
	}[what]
	if col == "" {
		a.fail(res, 404, "unknown count "+what)
		return
	}
	a.db.C(col).Count(loc.Here(), ``, cb("count", func(err, n vm.Value) {
		if a.dbFail(res, err) {
			return
		}
		a.respond(res, 200, map[string]any{"count": n})
	}))
}

// loadData serves the benchmark's loader endpoint
// (/rest/api/loader/load?numCustomers=N): it wipes the customer-facing
// collections and regenerates the sample data set asynchronously,
// responding once the wipe completes.
func (a *App) loadData(res *httpsim.ServerResponse, query map[string]string) {
	spec := DefaultDataSpec()
	if n, ok := query["numCustomers"]; ok {
		count := 0
		for _, ch := range n {
			if ch < '0' || ch > '9' {
				count = 0
				break
			}
			count = count*10 + int(ch-'0')
		}
		if count > 0 {
			spec.Customers = count
		}
	}
	wipe := func(col string, next *vm.Function) {
		a.db.C(col).Remove(loc.Here(), ``, next)
	}
	app := a
	finish := cb("loadFinish", func(err, _ vm.Value) {
		if app.dbFail(res, err) {
			return
		}
		LoadSampleData(app.db, spec)
		app.respond(res, 200, map[string]any{
			"status":    "loaded",
			"customers": spec.Customers,
		})
	})
	// Chain the wipes; the final one triggers the reload.
	wipe(ColBookings, cb("w1", func(err, _ vm.Value) {
		wipe(ColSessions, cb("w2", func(err, _ vm.Value) {
			wipe(ColCustomers, cb("w3", func(err, _ vm.Value) {
				wipe(ColFlights, cb("w4", func(err, _ vm.Value) {
					wipe(ColSegments, finish)
				}))
			}))
		}))
	}))
}

// updateCustomer merges profile fields.
func (a *App) updateCustomer(req *httpsim.IncomingMessage, res *httpsim.ServerResponse, id string, form map[string]string) {
	a.validateSession(req, res, func(customer string) {
		set := mongosim.Document{}
		for k, v := range form {
			set[k] = v
		}
		a.db.C(ColCustomers).Update(loc.Here(), `username == "`+id+`"`, set,
			cb("customerUpdate", func(err, n vm.Value) {
				if a.dbFail(res, err) {
					return
				}
				a.respond(res, 200, map[string]any{"updated": n})
			}))
	})
}
