package acmeair

import (
	"fmt"

	"asyncg/internal/mongosim"
)

// Collection names, matching the acmeair-nodejs schema.
const (
	ColCustomers = "customer"
	ColSessions  = "customerSession"
	ColFlights   = "flight"
	ColSegments  = "flightSegment"
	ColBookings  = "booking"
)

// airports used by the sample data generator (the benchmark's default
// data set uses a fixed airport list).
var airports = []string{
	"SFO", "JFK", "LAX", "ORD", "CDG", "FRA", "NRT", "SIN", "SYD", "GRU",
}

// DataSpec sizes the generated sample data.
type DataSpec struct {
	Customers         int
	FlightsPerSegment int
}

// DefaultDataSpec mirrors a small AcmeAir default load.
func DefaultDataSpec() DataSpec {
	return DataSpec{Customers: 200, FlightsPerSegment: 5}
}

// LoadSampleData populates the database deterministically: every ordered
// airport pair becomes a flight segment with FlightsPerSegment flights,
// and Customers customers named uid0..uidN-1 with password "password"
// (the benchmark's convention).
func LoadSampleData(db *mongosim.DB, spec DataSpec) {
	segments := db.C(ColSegments)
	flights := db.C(ColFlights)
	customers := db.C(ColCustomers)

	segID := 0
	for _, from := range airports {
		for _, to := range airports {
			if from == to {
				continue
			}
			segID++
			sid := fmt.Sprintf("AA%d", segID)
			miles := 500 + (segID*137)%9000
			segments.InsertSync(mongosim.Document{
				"segmentId":  sid,
				"originPort": from,
				"destPort":   to,
				"miles":      miles,
			})
			for f := 0; f < spec.FlightsPerSegment; f++ {
				flights.InsertSync(mongosim.Document{
					"flightId":        fmt.Sprintf("%s-%d", sid, f),
					"flightSegmentId": sid,
					"scheduledHour":   (6 + f*4) % 24,
					"price":           100 + (segID*31+f*97)%900,
					"firstClassPrice": 500 + (segID*53+f*11)%2000,
					"numSeats":        180,
				})
			}
		}
	}
	for i := 0; i < spec.Customers; i++ {
		customers.InsertSync(mongosim.Document{
			"username":    fmt.Sprintf("uid%d", i),
			"password":    "password",
			"status":      "GOLD",
			"total_miles": 1_000_000,
			"miles_ytd":   1000,
			"address": mongosim.Document{
				"streetAddress1": "123 Main St.",
				"city":           "Anytown",
				"stateProvince":  "NC",
				"country":        "USA",
				"postalCode":     "27617",
			},
			"phoneNumber":     "919-123-4567",
			"phoneNumberType": "BUSINESS",
		})
	}
}

// Airports returns the airport codes the sample data uses.
func Airports() []string {
	out := make([]string, len(airports))
	copy(out, airports)
	return out
}
