package eventloop

import "asyncg/internal/vm"

// task is one scheduled callback execution. after, when set, receives the
// callback's result and owns any simulated exception (the loop does not
// record it as uncaught); the promise layer uses it to settle derived
// promises from reaction results.
type task struct {
	fn       *vm.Function
	args     []vm.Value
	dispatch *vm.Dispatch
	after    func(ret vm.Value, thrown *vm.Thrown)
}

// fifo is an amortized O(1) queue of tasks. The head index avoids
// reslicing on every pop; storage is compacted when the head outgrows
// half the backing slice.
type fifo struct {
	items []task
	head  int
}

func (q *fifo) push(t task) { q.items = append(q.items, t) }

func (q *fifo) pop() (task, bool) {
	if q.head >= len(q.items) {
		return task{}, false
	}
	t := q.items[q.head]
	q.items[q.head] = task{} // release references
	q.head++
	if q.head > 64 && q.head*2 >= len(q.items) {
		n := copy(q.items, q.items[q.head:])
		q.items = q.items[:n]
		q.head = 0
	}
	return t, true
}

func (q *fifo) len() int { return len(q.items) - q.head }

// reset empties the queue, dropping task references, while keeping the
// backing storage for reuse.
func (q *fifo) reset() {
	for i := q.head; i < len(q.items); i++ {
		q.items[i] = task{}
	}
	q.items = q.items[:0]
	q.head = 0
}
