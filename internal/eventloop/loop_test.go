package eventloop

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"asyncg/internal/loc"
	"asyncg/internal/vm"
)

// runTrace runs a program and returns the order in which labelled
// callbacks executed.
func runTrace(t *testing.T, opts Options, program func(l *Loop, log func(string))) ([]string, error) {
	t.Helper()
	l := New(opts)
	var trace []string
	log := func(s string) { trace = append(trace, s) }
	main := vm.NewFunc("main", func(args []vm.Value) vm.Value {
		program(l, log)
		return vm.Undefined
	})
	err := l.Run(main)
	return trace, err
}

func step(l *Loop, log func(string), label string) *vm.Function {
	return vm.NewFunc(label, func(args []vm.Value) vm.Value {
		log(label)
		return vm.Undefined
	})
}

func wantTrace(t *testing.T, got, want []string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("trace length = %d, want %d\n got: %v\nwant: %v", len(got), len(want), got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("trace[%d] = %q, want %q\n got: %v\nwant: %v", i, got[i], want[i], got, want)
		}
	}
}

func TestMicrotaskPriorityOverMacrotasks(t *testing.T) {
	// The motivating snippet of §III: promise, setTimeout, nextTick
	// registered in that order execute as nextTick, promise, timeout.
	trace, err := runTrace(t, Options{}, func(l *Loop, log func(string)) {
		l.SchedulePromiseJob(step(l, log, "promise"), nil, nil, nil)
		l.SetTimeout(loc.Here(), step(l, log, "timeout"), 0)
		l.NextTick(loc.Here(), step(l, log, "nextTick"))
	})
	if err != nil {
		t.Fatal(err)
	}
	wantTrace(t, trace, []string{"nextTick", "promise", "timeout"})
}

func TestNextTickBeatsPromiseEvenWhenRegisteredLater(t *testing.T) {
	trace, err := runTrace(t, Options{}, func(l *Loop, log func(string)) {
		l.SchedulePromiseJob(step(l, log, "p1"), nil, nil, nil)
		l.SchedulePromiseJob(step(l, log, "p2"), nil, nil, nil)
		l.NextTick(loc.Here(), step(l, log, "t1"))
		l.NextTick(loc.Here(), step(l, log, "t2"))
	})
	if err != nil {
		t.Fatal(err)
	}
	wantTrace(t, trace, []string{"t1", "t2", "p1", "p2"})
}

func TestMicrotasksScheduleEachOther(t *testing.T) {
	// A promise job scheduling a nextTick job: the nextTick job runs
	// before the next promise job (Fig. 2(b)).
	trace, err := runTrace(t, Options{}, func(l *Loop, log func(string)) {
		first := vm.NewFunc("p1", func(args []vm.Value) vm.Value {
			log("p1")
			l.NextTick(loc.Here(), step(l, log, "tick-from-p1"))
			return vm.Undefined
		})
		l.SchedulePromiseJob(first, nil, nil, nil)
		l.SchedulePromiseJob(step(l, log, "p2"), nil, nil, nil)
	})
	if err != nil {
		t.Fatal(err)
	}
	wantTrace(t, trace, []string{"p1", "tick-from-p1", "p2"})
}

func TestRecursiveNextTickStarvesTimersAndHitsTickLimit(t *testing.T) {
	// The Fig. 1 bug pattern: compute reschedules itself with nextTick,
	// so the timer never fires and the loop stops at the tick limit.
	var computeRuns int
	timerRan := false
	l := New(Options{TickLimit: 50})
	var compute *vm.Function
	compute = vm.NewFunc("compute", func(args []vm.Value) vm.Value {
		computeRuns++
		l.NextTick(loc.Here(), compute)
		return vm.Undefined
	})
	main := vm.NewFunc("main", func(args []vm.Value) vm.Value {
		l.SetTimeout(loc.Here(), vm.NewFunc("timer", func([]vm.Value) vm.Value {
			timerRan = true
			return vm.Undefined
		}), time.Millisecond)
		l.NextTick(loc.Here(), compute)
		return vm.Undefined
	})
	err := l.Run(main)
	if !errors.Is(err, ErrTickLimit) {
		t.Fatalf("err = %v, want ErrTickLimit", err)
	}
	if timerRan {
		t.Fatal("timer ran despite recursive nextTick starvation")
	}
	if computeRuns < 40 {
		t.Fatalf("computeRuns = %d, want ~49", computeRuns)
	}
}

func TestRecursiveSetImmediateDoesNotStarveTimers(t *testing.T) {
	// The Fig. 1 fix: with setImmediate the timer gets its turn.
	timerRan := false
	rounds := 0
	l := New(Options{TickLimit: 500})
	var compute *vm.Function
	compute = vm.NewFunc("compute", func(args []vm.Value) vm.Value {
		rounds++
		if !timerRan {
			l.SetImmediate(loc.Here(), compute)
		}
		return vm.Undefined
	})
	main := vm.NewFunc("main", func(args []vm.Value) vm.Value {
		l.SetTimeout(loc.Here(), vm.NewFunc("timer", func([]vm.Value) vm.Value {
			timerRan = true
			return vm.Undefined
		}), time.Millisecond)
		l.SetImmediate(loc.Here(), compute)
		return vm.Undefined
	})
	if err := l.Run(main); err != nil {
		t.Fatal(err)
	}
	if !timerRan {
		t.Fatal("timer never ran")
	}
	if rounds == 0 {
		t.Fatal("compute never ran")
	}
}

func TestTimerOrderByDeadlineThenRegistration(t *testing.T) {
	trace, err := runTrace(t, Options{}, func(l *Loop, log func(string)) {
		l.SetTimeout(loc.Here(), step(l, log, "b-100"), 100*time.Millisecond)
		l.SetTimeout(loc.Here(), step(l, log, "a-50"), 50*time.Millisecond)
		l.SetTimeout(loc.Here(), step(l, log, "c-100"), 100*time.Millisecond)
	})
	if err != nil {
		t.Fatal(err)
	}
	wantTrace(t, trace, []string{"a-50", "b-100", "c-100"})
}

func TestTimeoutOrderInversionWithInterveningWork(t *testing.T) {
	// §VI-A(c): setTimeout(foo, 101) registered before heavy work and
	// setTimeout(bar, 100) registered after it. foo's absolute deadline
	// is earlier, so the callback with the *larger* timeout runs first —
	// the unexpected order the paper's detector warns about.
	trace, err := runTrace(t, Options{}, func(l *Loop, log func(string)) {
		l.SetTimeout(loc.Here(), step(l, log, "foo-101"), 101*time.Millisecond)
		l.Work(5 * time.Millisecond)
		l.SetTimeout(loc.Here(), step(l, log, "bar-100"), 100*time.Millisecond)
	})
	if err != nil {
		t.Fatal(err)
	}
	wantTrace(t, trace, []string{"foo-101", "bar-100"})
}

func TestSetIntervalRepeatsUntilCleared(t *testing.T) {
	var runs int
	l := New(Options{})
	var id uint64
	main := vm.NewFunc("main", func(args []vm.Value) vm.Value {
		id = l.SetInterval(loc.Here(), vm.NewFunc("tick", func([]vm.Value) vm.Value {
			runs++
			if runs == 3 {
				l.ClearInterval(loc.Here(), id)
			}
			return vm.Undefined
		}), 10*time.Millisecond)
		return vm.Undefined
	})
	if err := l.Run(main); err != nil {
		t.Fatal(err)
	}
	if runs != 3 {
		t.Fatalf("interval ran %d times, want 3", runs)
	}
	if l.Now() < 30*time.Millisecond {
		t.Fatalf("virtual clock = %v, want >= 30ms", l.Now())
	}
}

func TestClearTimeoutPreventsExecution(t *testing.T) {
	trace, err := runTrace(t, Options{}, func(l *Loop, log func(string)) {
		id := l.SetTimeout(loc.Here(), step(l, log, "cancelled"), 10*time.Millisecond)
		l.SetTimeout(loc.Here(), step(l, log, "kept"), 20*time.Millisecond)
		l.ClearTimeout(loc.Here(), id)
	})
	if err != nil {
		t.Fatal(err)
	}
	wantTrace(t, trace, []string{"kept"})
}

func TestClearImmediatePreventsExecution(t *testing.T) {
	trace, err := runTrace(t, Options{}, func(l *Loop, log func(string)) {
		id := l.SetImmediate(loc.Here(), step(l, log, "cancelled"))
		l.SetImmediate(loc.Here(), step(l, log, "kept"))
		l.ClearImmediate(loc.Here(), id)
	})
	if err != nil {
		t.Fatal(err)
	}
	wantTrace(t, trace, []string{"kept"})
}

func TestImmediateScheduledByImmediateRunsNextIteration(t *testing.T) {
	// Node's check-phase snapshot: an immediate scheduled during the
	// immediate phase runs in the following loop iteration, after any
	// I/O that becomes ready.
	trace, err := runTrace(t, Options{}, func(l *Loop, log func(string)) {
		outer := vm.NewFunc("outer", func(args []vm.Value) vm.Value {
			log("outer")
			l.SetImmediate(loc.Here(), step(l, log, "inner"))
			l.ScheduleIOAt(l.Now(), step(l, log, "io"), nil, nil)
			return vm.Undefined
		})
		l.SetImmediate(loc.Here(), outer)
	})
	if err != nil {
		t.Fatal(err)
	}
	wantTrace(t, trace, []string{"outer", "io", "inner"})
}

func TestIOPhaseRunsBeforeImmediatePhase(t *testing.T) {
	trace, err := runTrace(t, Options{}, func(l *Loop, log func(string)) {
		l.SetImmediate(loc.Here(), step(l, log, "immediate"))
		l.ScheduleIOAt(l.Now(), step(l, log, "io"), nil, nil)
	})
	if err != nil {
		t.Fatal(err)
	}
	wantTrace(t, trace, []string{"io", "immediate"})
}

func TestClosePhaseRunsLastInIteration(t *testing.T) {
	trace, err := runTrace(t, Options{}, func(l *Loop, log func(string)) {
		l.ScheduleClose(step(l, log, "close"), nil, nil)
		l.SetImmediate(loc.Here(), step(l, log, "immediate"))
		l.ScheduleIOAt(l.Now(), step(l, log, "io"), nil, nil)
		l.SetTimeout(loc.Here(), step(l, log, "timer"), 0)
	})
	if err != nil {
		t.Fatal(err)
	}
	// timer has a 1ms clamp, so the first iteration runs io, immediate,
	// close at t=0... except the clock only advances when nothing is
	// runnable. io(t=0) is ready, so iteration 1: io, immediate, close;
	// iteration 2 jumps to 1ms and runs the timer.
	wantTrace(t, trace, []string{"io", "immediate", "close", "timer"})
}

func TestClockJumpsToNextDeadlineWhenIdle(t *testing.T) {
	l := New(Options{})
	main := vm.NewFunc("main", func(args []vm.Value) vm.Value {
		l.SetTimeout(loc.Here(), vm.NewFunc("late", func([]vm.Value) vm.Value {
			return vm.Undefined
		}), 5*time.Second)
		return vm.Undefined
	})
	start := time.Now()
	if err := l.Run(main); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("virtual clock did not jump; wall time %v", elapsed)
	}
	if l.Now() != 5*time.Second {
		t.Fatalf("Now() = %v, want 5s", l.Now())
	}
}

func TestUncaughtExceptionRecordedAndLoopContinues(t *testing.T) {
	l := New(Options{})
	ran := false
	main := vm.NewFunc("main", func(args []vm.Value) vm.Value {
		l.SetTimeout(loc.Here(), vm.NewFunc("boom", func([]vm.Value) vm.Value {
			vm.Throw("kaboom")
			return vm.Undefined
		}), time.Millisecond)
		l.SetTimeout(loc.Here(), vm.NewFunc("after", func([]vm.Value) vm.Value {
			ran = true
			return vm.Undefined
		}), 2*time.Millisecond)
		return vm.Undefined
	})
	if err := l.Run(main); err != nil {
		t.Fatal(err)
	}
	if len(l.Uncaught()) != 1 {
		t.Fatalf("uncaught = %d, want 1", len(l.Uncaught()))
	}
	if got := vm.ToString(l.Uncaught()[0].Thrown.Value); got != "kaboom" {
		t.Fatalf("uncaught value = %q", got)
	}
	if !ran {
		t.Fatal("loop stopped after uncaught exception despite StopOnUncaught=false")
	}
}

func TestStopOnUncaughtHaltsTheLoop(t *testing.T) {
	l := New(Options{StopOnUncaught: true})
	ran := false
	main := vm.NewFunc("main", func(args []vm.Value) vm.Value {
		l.SetTimeout(loc.Here(), vm.NewFunc("boom", func([]vm.Value) vm.Value {
			vm.Throw("kaboom")
			return vm.Undefined
		}), time.Millisecond)
		l.SetTimeout(loc.Here(), vm.NewFunc("after", func([]vm.Value) vm.Value {
			ran = true
			return vm.Undefined
		}), 2*time.Millisecond)
		return vm.Undefined
	})
	err := l.Run(main)
	var ue UncaughtError
	if !errors.As(err, &ue) {
		t.Fatalf("err = %v, want UncaughtError", err)
	}
	if ran {
		t.Fatal("callback ran after StopOnUncaught halt")
	}
}

func TestThrowInMainIsUncaught(t *testing.T) {
	l := New(Options{})
	main := vm.NewFunc("main", func(args []vm.Value) vm.Value {
		vm.Throw("main-crash")
		return vm.Undefined
	})
	if err := l.Run(main); err != nil {
		t.Fatal(err)
	}
	if len(l.Uncaught()) != 1 || l.Uncaught()[0].Phase != PhaseMain {
		t.Fatalf("uncaught = %+v", l.Uncaught())
	}
}

func TestStopEndsRunCleanly(t *testing.T) {
	l := New(Options{})
	count := 0
	main := vm.NewFunc("main", func(args []vm.Value) vm.Value {
		var again *vm.Function
		again = vm.NewFunc("again", func([]vm.Value) vm.Value {
			count++
			if count == 5 {
				l.Stop()
				return vm.Undefined
			}
			l.SetImmediate(loc.Here(), again)
			return vm.Undefined
		})
		l.SetImmediate(loc.Here(), again)
		return vm.Undefined
	})
	if err := l.Run(main); err != nil {
		t.Fatal(err)
	}
	if count != 5 {
		t.Fatalf("count = %d, want 5", count)
	}
}

func TestRunIsNotReentrant(t *testing.T) {
	l := New(Options{})
	var inner error
	main := vm.NewFunc("main", func(args []vm.Value) vm.Value {
		inner = l.Run(vm.NewFunc("nested", func([]vm.Value) vm.Value { return vm.Undefined }))
		return vm.Undefined
	})
	if err := l.Run(main); err != nil {
		t.Fatal(err)
	}
	if !errors.Is(inner, ErrReentrant) {
		t.Fatalf("nested Run err = %v, want ErrReentrant", inner)
	}
}

func TestCallbackCostAdvancesVirtualClock(t *testing.T) {
	l := New(Options{CallbackCost: time.Millisecond})
	main := vm.NewFunc("main", func(args []vm.Value) vm.Value {
		l.NextTick(loc.Here(), vm.NewFunc("t", func([]vm.Value) vm.Value { return vm.Undefined }))
		return vm.Undefined
	})
	if err := l.Run(main); err != nil {
		t.Fatal(err)
	}
	if l.Now() != 2*time.Millisecond { // main + one nextTick
		t.Fatalf("Now() = %v, want 2ms", l.Now())
	}
}

func TestVirtualTimeLimit(t *testing.T) {
	l := New(Options{TimeLimit: 100 * time.Millisecond})
	runs := 0
	main := vm.NewFunc("main", func(args []vm.Value) vm.Value {
		l.SetInterval(loc.Here(), vm.NewFunc("i", func([]vm.Value) vm.Value {
			runs++
			return vm.Undefined
		}), 10*time.Millisecond)
		return vm.Undefined
	})
	err := l.Run(main)
	if !errors.Is(err, ErrTimeLimit) {
		t.Fatalf("err = %v, want ErrTimeLimit", err)
	}
	if runs == 0 || runs > 11 {
		t.Fatalf("interval runs = %d, want ~10", runs)
	}
}

func TestTickCountsTopLevelCallbacksOnly(t *testing.T) {
	l := New(Options{})
	main := vm.NewFunc("main", func(args []vm.Value) vm.Value {
		// A nested invocation must not count as a tick.
		nested := vm.NewFunc("nested", func([]vm.Value) vm.Value { return vm.Undefined })
		l.Invoke(nested, nil, nil)
		l.NextTick(loc.Here(), vm.NewFunc("t", func([]vm.Value) vm.Value { return vm.Undefined }))
		return vm.Undefined
	})
	if err := l.Run(main); err != nil {
		t.Fatal(err)
	}
	if l.Tick() != 2 { // main + nextTick
		t.Fatalf("Tick() = %d, want 2", l.Tick())
	}
}

func TestProbeEventsFireForSchedulingAPIs(t *testing.T) {
	l := New(Options{})
	rec := &recordingHooks{}
	l.Probes().Attach(rec)
	main := vm.NewFunc("main", func(args []vm.Value) vm.Value {
		l.NextTick(loc.Here(), vm.NewFunc("a", func([]vm.Value) vm.Value { return vm.Undefined }))
		id := l.SetTimeout(loc.Here(), vm.NewFunc("b", func([]vm.Value) vm.Value { return vm.Undefined }), time.Millisecond)
		l.ClearTimeout(loc.Here(), id)
		l.SetImmediate(loc.Here(), vm.NewFunc("c", func([]vm.Value) vm.Value { return vm.Undefined }))
		return vm.Undefined
	})
	if err := l.Run(main); err != nil {
		t.Fatal(err)
	}
	apis := rec.apiNames()
	want := []string{APINextTick, APISetTimeout, APIClearTimeout, APISetImmediate}
	if len(apis) != len(want) {
		t.Fatalf("APIs = %v, want %v", apis, want)
	}
	for i := range want {
		if apis[i] != want[i] {
			t.Fatalf("APIs = %v, want %v", apis, want)
		}
	}
	// main, nextTick callback, immediate callback are top-level.
	if rec.topLevelEnters != 3 {
		t.Fatalf("topLevelEnters = %d, want 3", rec.topLevelEnters)
	}
	// Every enter has a matching exit.
	if rec.enters != rec.exits {
		t.Fatalf("enters=%d exits=%d", rec.enters, rec.exits)
	}
}

func TestDispatchCarriesRegistrationSeq(t *testing.T) {
	l := New(Options{})
	rec := &recordingHooks{}
	l.Probes().Attach(rec)
	main := vm.NewFunc("main", func(args []vm.Value) vm.Value {
		l.NextTick(loc.Here(), vm.NewFunc("cb", func([]vm.Value) vm.Value { return vm.Undefined }))
		return vm.Undefined
	})
	if err := l.Run(main); err != nil {
		t.Fatal(err)
	}
	var regSeq uint64
	for _, ev := range rec.apiEvents {
		if ev.API == APINextTick {
			regSeq = ev.Regs[0].Seq
		}
	}
	if regSeq == 0 {
		t.Fatal("no registration seq recorded")
	}
	found := false
	for _, d := range rec.dispatches {
		if d.API == APINextTick && d.RegSeq == regSeq {
			found = true
		}
	}
	if !found {
		t.Fatalf("no dispatch carried regSeq %d: %+v", regSeq, rec.dispatches)
	}
}

func TestDetachedProbesSeeNothing(t *testing.T) {
	l := New(Options{})
	rec := &recordingHooks{}
	l.Probes().Attach(rec)
	l.Probes().Detach(rec)
	main := vm.NewFunc("main", func(args []vm.Value) vm.Value {
		l.NextTick(loc.Here(), vm.NewFunc("t", func([]vm.Value) vm.Value { return vm.Undefined }))
		return vm.Undefined
	})
	if err := l.Run(main); err != nil {
		t.Fatal(err)
	}
	if rec.enters != 0 || len(rec.apiEvents) != 0 {
		t.Fatalf("detached hook observed events: enters=%d apis=%d", rec.enters, len(rec.apiEvents))
	}
}

func TestAttachMidRunSeesOnlySubsequentEvents(t *testing.T) {
	l := New(Options{})
	rec := &recordingHooks{}
	main := vm.NewFunc("main", func(args []vm.Value) vm.Value {
		l.NextTick(loc.Here(), vm.NewFunc("before", func([]vm.Value) vm.Value {
			l.Probes().Attach(rec)
			l.NextTick(loc.Here(), vm.NewFunc("after", func([]vm.Value) vm.Value { return vm.Undefined }))
			return vm.Undefined
		}))
		return vm.Undefined
	})
	if err := l.Run(main); err != nil {
		t.Fatal(err)
	}
	if len(rec.apiEvents) != 1 || rec.apiEvents[0].API != APINextTick {
		t.Fatalf("apiEvents = %+v, want one nextTick", rec.apiEvents)
	}
	if rec.topLevelEnters != 1 {
		t.Fatalf("topLevelEnters = %d, want 1 (the 'after' callback)", rec.topLevelEnters)
	}
}

// recordingHooks is a minimal vm.Hooks for tests. Hook payloads are
// pooled scratch that the loop reclaims after each hook returns, so the
// recorder deep-copies what it keeps (the vm.Hooks contract).
type recordingHooks struct {
	enters, exits, topLevelEnters int
	apiEvents                     []vm.APIEvent
	dispatches                    []vm.Dispatch
	phases                        []string
}

func (r *recordingHooks) FunctionEnter(fn *vm.Function, info *vm.CallInfo) {
	r.enters++
	if info.TopLevel {
		r.topLevelEnters++
	}
	var d vm.Dispatch
	if info.Dispatch != nil {
		d = *info.Dispatch
	}
	r.dispatches = append(r.dispatches, d)
	r.phases = append(r.phases, info.Phase)
}

func (r *recordingHooks) FunctionExit(fn *vm.Function, ret vm.Value, thrown *vm.Thrown) {
	r.exits++
}

func (r *recordingHooks) APICall(ev *vm.APIEvent) {
	cp := *ev
	cp.Regs = append([]vm.Registration(nil), ev.Regs...)
	cp.Args = append([]vm.Value(nil), ev.Args...)
	cp.Related = append([]vm.ObjRef(nil), ev.Related...)
	r.apiEvents = append(r.apiEvents, cp)
}

func (r *recordingHooks) apiNames() []string {
	names := make([]string, len(r.apiEvents))
	for i, ev := range r.apiEvents {
		names[i] = ev.API
	}
	return names
}

func TestQueueMicrotaskPriority(t *testing.T) {
	// queueMicrotask shares the promise-job queue: it runs after every
	// pending nextTick but before timers.
	trace, err := runTrace(t, Options{}, func(l *Loop, log func(string)) {
		l.QueueMicrotask(loc.Here(), step(l, log, "micro"))
		l.NextTick(loc.Here(), step(l, log, "tick"))
		l.SetTimeout(loc.Here(), step(l, log, "timer"), 0)
	})
	if err != nil {
		t.Fatal(err)
	}
	wantTrace(t, trace, []string{"tick", "micro", "timer"})
}

func TestQueueMicrotaskFIFOWithPromiseJobs(t *testing.T) {
	trace, err := runTrace(t, Options{}, func(l *Loop, log func(string)) {
		l.SchedulePromiseJob(step(l, log, "job1"), nil, nil, nil)
		l.QueueMicrotask(loc.Here(), step(l, log, "micro"))
		l.SchedulePromiseJob(step(l, log, "job2"), nil, nil, nil)
	})
	if err != nil {
		t.Fatal(err)
	}
	wantTrace(t, trace, []string{"job1", "micro", "job2"})
}

func TestClearIntervalFromAnotherTimer(t *testing.T) {
	l := New(Options{})
	runs := 0
	main := vm.NewFunc("main", func([]vm.Value) vm.Value {
		id := l.SetInterval(loc.Here(), vm.NewFunc("i", func([]vm.Value) vm.Value {
			runs++
			return vm.Undefined
		}), 10*time.Millisecond)
		l.SetTimeout(loc.Here(), vm.NewFunc("killer", func([]vm.Value) vm.Value {
			l.ClearInterval(loc.Here(), id)
			return vm.Undefined
		}), 35*time.Millisecond)
		return vm.Undefined
	})
	if err := l.Run(main); err != nil {
		t.Fatal(err)
	}
	if runs != 3 { // fires at 10, 20, 30; cleared at 35
		t.Fatalf("interval ran %d times, want 3", runs)
	}
}

func TestClearTimerInSamePhaseBatch(t *testing.T) {
	// Two timers due together: the first clears the second before it
	// runs, even though both were collected for this timer phase.
	trace, err := runTrace(t, Options{}, func(l *Loop, log func(string)) {
		var second uint64
		l.SetTimeout(loc.Here(), vm.NewFunc("first", func([]vm.Value) vm.Value {
			log("first")
			l.ClearTimeout(loc.Here(), second)
			return vm.Undefined
		}), 10*time.Millisecond)
		second = l.SetTimeout(loc.Here(), step(l, log, "second"), 10*time.Millisecond)
	})
	if err != nil {
		t.Fatal(err)
	}
	wantTrace(t, trace, []string{"first"})
}

func TestClearImmediateDuringImmediatePhase(t *testing.T) {
	trace, err := runTrace(t, Options{}, func(l *Loop, log func(string)) {
		var second uint64
		l.SetImmediate(loc.Here(), vm.NewFunc("first", func([]vm.Value) vm.Value {
			log("first")
			l.ClearImmediate(loc.Here(), second)
			return vm.Undefined
		}))
		second = l.SetImmediate(loc.Here(), step(l, log, "second"))
	})
	if err != nil {
		t.Fatal(err)
	}
	wantTrace(t, trace, []string{"first"})
}

func TestIOScheduledInPastRunsImmediately(t *testing.T) {
	trace, err := runTrace(t, Options{}, func(l *Loop, log func(string)) {
		l.Work(10 * time.Millisecond)
		// readyAt before now is clamped to now.
		l.ScheduleIOAt(0, step(l, log, "io"), nil, nil)
	})
	if err != nil {
		t.Fatal(err)
	}
	wantTrace(t, trace, []string{"io"})
}

func TestCloseScheduledDuringClosePhaseRunsNextIteration(t *testing.T) {
	trace, err := runTrace(t, Options{}, func(l *Loop, log func(string)) {
		l.ScheduleClose(vm.NewFunc("outer", func([]vm.Value) vm.Value {
			log("outer")
			l.ScheduleClose(step(l, log, "inner"), nil, nil)
			return vm.Undefined
		}), nil, nil)
	})
	if err != nil {
		t.Fatal(err)
	}
	wantTrace(t, trace, []string{"outer", "inner"})
}

func TestWorkInsideCallbackDelaysLaterTimers(t *testing.T) {
	// A slow callback (virtual Work) pushes the loop past several timer
	// deadlines; they then all fire in the same phase, deadline order.
	trace, err := runTrace(t, Options{}, func(l *Loop, log func(string)) {
		l.SetTimeout(loc.Here(), vm.NewFunc("slow", func([]vm.Value) vm.Value {
			log("slow")
			l.Work(100 * time.Millisecond)
			return vm.Undefined
		}), time.Millisecond)
		l.SetTimeout(loc.Here(), step(l, log, "t10"), 10*time.Millisecond)
		l.SetTimeout(loc.Here(), step(l, log, "t20"), 20*time.Millisecond)
	})
	if err != nil {
		t.Fatal(err)
	}
	wantTrace(t, trace, []string{"slow", "t10", "t20"})
}

func TestInvokeReturnsValueAndThrown(t *testing.T) {
	l := New(Options{})
	main := vm.NewFunc("main", func([]vm.Value) vm.Value {
		ret, thrown := l.Invoke(vm.NewFunc("v", func(args []vm.Value) vm.Value {
			return args[0]
		}), []vm.Value{"echo"}, nil)
		if thrown != nil || ret != "echo" {
			t.Errorf("ret=%v thrown=%v", ret, thrown)
		}
		ret, thrown = l.Invoke(vm.NewFunc("t", func([]vm.Value) vm.Value {
			vm.Throw("nested")
			return vm.Undefined
		}), nil, nil)
		if thrown == nil || vm.ToString(thrown.Value) != "nested" {
			t.Errorf("thrown = %v", thrown)
		}
		_ = ret
		return vm.Undefined
	})
	if err := l.Run(main); err != nil {
		t.Fatal(err)
	}
	if len(l.Uncaught()) != 0 {
		t.Fatalf("nested throw leaked to uncaught: %v", l.Uncaught())
	}
}

func TestManyTimersSameDeadlineFIFO(t *testing.T) {
	var got []string
	l := New(Options{})
	main := vm.NewFunc("main", func([]vm.Value) vm.Value {
		for i := 0; i < 20; i++ {
			label := fmt.Sprintf("t%02d", i)
			l.SetTimeout(loc.Here(), vm.NewFunc(label, func([]vm.Value) vm.Value {
				got = append(got, label)
				return vm.Undefined
			}), 5*time.Millisecond)
		}
		return vm.Undefined
	})
	if err := l.Run(main); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if got[i] != fmt.Sprintf("t%02d", i) {
			t.Fatalf("order broken at %d: %v", i, got)
		}
	}
}
