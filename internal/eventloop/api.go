package eventloop

import (
	"time"

	"asyncg/internal/loc"
	"asyncg/internal/vm"
)

// API names announced through probe events for the loop-level scheduling
// primitives.
const (
	APINextTick       = "process.nextTick"
	APIQueueMicrotask = "queueMicrotask"
	APISetTimeout     = "setTimeout"
	APISetInterval    = "setInterval"
	APISetImmediate   = "setImmediate"
	APIClearTimeout   = "clearTimeout"
	APIClearInterval  = "clearInterval"
	APIClearImmediate = "clearImmediate"
)

// minTimeout mirrors Node's clamp: setTimeout delays below 1ms become 1ms.
const minTimeout = time.Millisecond

// NextTick schedules fn on the nextTick microtask queue (highest
// priority). at is the user call site recorded in the Async Graph.
func (l *Loop) NextTick(at loc.Loc, fn *vm.Function, args ...vm.Value) {
	seq := l.NextRegSeq()
	if l.probes.Active() {
		ev := l.BorrowAPIEvent()
		ev.API = APINextTick
		ev.Loc = at
		ev.SetOneReg(vm.Registration{Seq: seq, Callback: fn, Phase: string(PhaseNextTick), Once: true, Role: "callback"})
		l.probes.APICall(ev)
		l.ReturnAPIEvent(ev)
	}
	d := l.NewDispatch()
	d.API = APINextTick
	d.RegSeq = seq
	l.nextTickQ.push(task{fn: fn, args: args, dispatch: d})
}

// QueueMicrotask schedules fn on the promise-job microtask queue — the
// modern JavaScript API that shares V8's microtask queue with promise
// reactions (lower priority than process.nextTick).
func (l *Loop) QueueMicrotask(at loc.Loc, fn *vm.Function, args ...vm.Value) {
	seq := l.NextRegSeq()
	if l.probes.Active() {
		ev := l.BorrowAPIEvent()
		ev.API = APIQueueMicrotask
		ev.Loc = at
		ev.SetOneReg(vm.Registration{Seq: seq, Callback: fn, Phase: string(PhasePromise), Once: true, Role: "callback"})
		l.probes.APICall(ev)
		l.ReturnAPIEvent(ev)
	}
	d := l.NewDispatch()
	d.API = APIQueueMicrotask
	d.RegSeq = seq
	l.promiseQ.push(task{fn: fn, args: args, dispatch: d})
}

// SetTimeout schedules fn once after delay of virtual time and returns
// the timer id for ClearTimeout.
func (l *Loop) SetTimeout(at loc.Loc, fn *vm.Function, delay time.Duration, args ...vm.Value) uint64 {
	return l.addTimer(at, APISetTimeout, fn, delay, 0, args)
}

// SetInterval schedules fn repeatedly every delay of virtual time and
// returns the timer id for ClearInterval.
func (l *Loop) SetInterval(at loc.Loc, fn *vm.Function, delay time.Duration, args ...vm.Value) uint64 {
	return l.addTimer(at, APISetInterval, fn, delay, delay, args)
}

func (l *Loop) addTimer(at loc.Loc, api string, fn *vm.Function, delay, interval time.Duration, args []vm.Value) uint64 {
	if delay < minTimeout {
		delay = minTimeout
	}
	if interval > 0 && interval < minTimeout {
		interval = minTimeout
	}
	l.timerSeq++
	id := l.timerSeq
	seq := l.NextRegSeq()
	if l.probes.Active() {
		ev := l.BorrowAPIEvent()
		ev.API = api
		ev.Loc = at
		ev.Receiver = vm.ObjRef{ID: id, Kind: vm.ObjTimer}
		ev.SetOneReg(vm.Registration{Seq: seq, Callback: fn, Phase: string(PhaseTimer), Once: interval == 0, Role: "callback"})
		ev.SetOneArg(delay)
		l.probes.APICall(ev)
		l.ReturnAPIEvent(ev)
	}
	l.orderSeq++
	t := l.borrowTimer()
	t.fn = fn
	t.args = args
	t.disp = vm.Dispatch{API: api, RegSeq: seq, Obj: vm.ObjRef{ID: id, Kind: vm.ObjTimer}}
	t.dispatch = &t.disp
	t.id = id
	t.due = l.now + delay
	t.interval = interval
	t.seq = l.orderSeq
	l.timers.add(t)
	l.timersByID[id] = t
	l.activeTimers++
	return id
}

// ClearTimeout cancels a pending timer; unknown or already-fired ids are
// ignored, as in Node.
func (l *Loop) ClearTimeout(at loc.Loc, id uint64) { l.clearTimer(at, APIClearTimeout, id) }

// ClearInterval cancels a repeating timer.
func (l *Loop) ClearInterval(at loc.Loc, id uint64) { l.clearTimer(at, APIClearInterval, id) }

func (l *Loop) clearTimer(at loc.Loc, api string, id uint64) {
	t, ok := l.timersByID[id]
	if l.probes.Active() {
		ev := l.BorrowAPIEvent()
		ev.API = api
		ev.Loc = at
		ev.Receiver = vm.ObjRef{ID: id, Kind: vm.ObjTimer}
		if ok && !t.cleared {
			// Identify the retired registration so tools can drop the
			// pending CR.
			ev.SetOneReg(vm.Registration{Seq: t.dispatch.RegSeq, Callback: t.fn, Phase: string(PhaseTimer), Once: t.interval == 0, Role: "callback"})
		}
		l.probes.APICall(ev)
		l.ReturnAPIEvent(ev)
	}
	if !ok || t.cleared {
		return
	}
	t.cleared = true
	l.activeTimers--
	delete(l.timersByID, id)
}

// SetImmediate schedules fn for the check phase of a following loop
// iteration and returns the immediate id for ClearImmediate.
func (l *Loop) SetImmediate(at loc.Loc, fn *vm.Function, args ...vm.Value) uint64 {
	l.timerSeq++
	id := l.timerSeq
	seq := l.NextRegSeq()
	if l.probes.Active() {
		ev := l.BorrowAPIEvent()
		ev.API = APISetImmediate
		ev.Loc = at
		ev.Receiver = vm.ObjRef{ID: id, Kind: vm.ObjTimer}
		ev.SetOneReg(vm.Registration{Seq: seq, Callback: fn, Phase: string(PhaseImmediate), Once: true, Role: "callback"})
		l.probes.APICall(ev)
		l.ReturnAPIEvent(ev)
	}
	im := l.borrowImmediate()
	im.fn = fn
	im.args = args
	im.disp = vm.Dispatch{API: APISetImmediate, RegSeq: seq, Obj: vm.ObjRef{ID: id, Kind: vm.ObjTimer}}
	im.dispatch = &im.disp
	im.id = id
	l.immediates = append(l.immediates, im)
	l.immediatesByID[id] = im
	l.activeImmediate++
	return id
}

// ClearImmediate cancels a pending immediate.
func (l *Loop) ClearImmediate(at loc.Loc, id uint64) {
	im, ok := l.immediatesByID[id]
	if l.probes.Active() {
		ev := l.BorrowAPIEvent()
		ev.API = APIClearImmediate
		ev.Loc = at
		ev.Receiver = vm.ObjRef{ID: id, Kind: vm.ObjTimer}
		if ok && !im.cleared {
			ev.SetOneReg(vm.Registration{Seq: im.dispatch.RegSeq, Callback: im.fn, Phase: string(PhaseImmediate), Once: true, Role: "callback"})
		}
		l.probes.APICall(ev)
		l.ReturnAPIEvent(ev)
	}
	if !ok || im.cleared {
		return
	}
	im.cleared = true
	l.activeImmediate--
	delete(l.immediatesByID, id)
}

// ScheduleTickJob enqueues a job on the nextTick microtask queue without
// announcing a process.nextTick API event — for library layers (e.g. the
// simulated DB driver) whose user-facing API already announced the
// registration under its own name and now dispatches the callback.
func (l *Loop) ScheduleTickJob(fn *vm.Function, args []vm.Value, dispatch *vm.Dispatch) {
	l.nextTickQ.push(task{fn: fn, args: args, dispatch: dispatch})
}

// SchedulePromiseJob enqueues a promise reaction job on the promise
// microtask queue. The promise layer announces its own API events; this
// entry point only schedules. after, when non-nil, receives the job's
// result and owns any exception thrown by it.
func (l *Loop) SchedulePromiseJob(fn *vm.Function, args []vm.Value, dispatch *vm.Dispatch, after func(ret vm.Value, thrown *vm.Thrown)) {
	l.promiseQ.push(task{fn: fn, args: args, dispatch: dispatch, after: after})
}

// ScheduleIOAt delivers an external event through the I/O poll phase at
// the given absolute virtual time (clamped to now). The simulated
// network layer uses it; user-level registrations are announced by that
// layer. The event carries independence key 0 — see ScheduleIOKeyedAt.
func (l *Loop) ScheduleIOAt(readyAt time.Duration, fn *vm.Function, args []vm.Value, dispatch *vm.Dispatch) {
	l.ScheduleIOKeyedAt(readyAt, 0, fn, args, dispatch)
}

// ScheduleIOKeyedAt is ScheduleIOAt with an independence key attached
// (see NextIOKey). Substrate layers key each event by the state it
// touches — a connection, a file path, a DB collection — so the
// exhaustive explorer can recognize commuting poll batches and explore
// only one of their orders (partial-order reduction). Key 0 means "may
// touch anything" and disables the reduction for its batch.
func (l *Loop) ScheduleIOKeyedAt(readyAt time.Duration, key uint64, fn *vm.Function, args []vm.Value, dispatch *vm.Dispatch) {
	e := l.scheduleIO(readyAt, key, fn, args)
	e.dispatch = dispatch
}

// ScheduleIOKeyedDispatch is ScheduleIOKeyedAt with the dispatch stored
// inline in the loop's pooled event record: the caller fills the
// returned dispatch before yielding to the loop, and the record —
// dispatch included — is reclaimed after the event's callback finishes
// (hooks may read it until FunctionExit returns). Substrate layers use
// it to schedule completions without allocating a dispatch per delivery.
func (l *Loop) ScheduleIOKeyedDispatch(readyAt time.Duration, key uint64, fn *vm.Function, args []vm.Value) *vm.Dispatch {
	e := l.scheduleIO(readyAt, key, fn, args)
	e.dispatch = &e.disp
	return &e.disp
}

func (l *Loop) scheduleIO(readyAt time.Duration, key uint64, fn *vm.Function, args []vm.Value) *ioEvent {
	if readyAt < l.now {
		readyAt = l.now
	}
	l.orderSeq++
	e := l.borrowIOEvent()
	e.fn = fn
	e.args = args
	e.readyAt = readyAt
	e.seq = l.orderSeq
	e.key = key
	l.io.add(e)
	return e
}

// ScheduleClose enqueues a close handler for the close phase of the
// current or next loop iteration.
func (l *Loop) ScheduleClose(fn *vm.Function, args []vm.Value, dispatch *vm.Dispatch) {
	l.closeQ.push(task{fn: fn, args: args, dispatch: dispatch})
}
