package eventloop

import (
	"container/heap"
	"time"

	"asyncg/internal/vm"
)

// timer is a pending setTimeout/setInterval registration. disp backs
// task.dispatch so a pooled timer carries its dispatch inline.
type timer struct {
	task
	id       uint64
	due      time.Duration // virtual deadline
	interval time.Duration // repeat period; 0 for one-shot
	seq      uint64        // tie-breaker: registration order
	index    int           // heap index, -1 when popped
	cleared  bool
	disp     vm.Dispatch
}

// timerHeap orders timers by (due, seq). It implements container/heap.
type timerHeap []*timer

func (h timerHeap) Len() int { return len(h) }

func (h timerHeap) Less(i, j int) bool {
	if h[i].due != h[j].due {
		return h[i].due < h[j].due
	}
	return h[i].seq < h[j].seq
}

func (h timerHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}

func (h *timerHeap) Push(x any) {
	t := x.(*timer)
	t.index = len(*h)
	*h = append(*h, t)
}

func (h *timerHeap) Pop() any {
	old := *h
	n := len(old)
	t := old[n-1]
	old[n-1] = nil
	t.index = -1
	*h = old[:n-1]
	return t
}

// peek returns the earliest timer without removing it, or nil.
func (h timerHeap) peek() *timer {
	if len(h) == 0 {
		return nil
	}
	return h[0]
}

func (h *timerHeap) add(t *timer) { heap.Push(h, t) }
func (h *timerHeap) removeMin() *timer {
	return heap.Pop(h).(*timer)
}
