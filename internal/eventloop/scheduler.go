package eventloop

import "time"

// ChoiceKind names a class of scheduling choice point. Every place where
// the Node.js spec leaves ordering or timing unspecified — the order the
// OS reports poll completions, ties between timers with the same
// deadline, I/O latency, and the few spots where listener order is not
// contractual — is reduced to a discrete pick so schedule exploration
// can enumerate, record, and replay it.
type ChoiceKind string

const (
	// ChoiceIOOrder permutes the batch of I/O completions delivered in
	// one poll phase. Real epoll/kqueue report ready events in an order
	// the program must not rely on.
	ChoiceIOOrder ChoiceKind = "io-order"
	// ChoiceTimerTie permutes timers that share one deadline. Node
	// documents insertion order for equal timeouts loosely enough that
	// libuv versions have differed here.
	ChoiceTimerTie ChoiceKind = "timer-tie"
	// ChoiceLatency scales a simulated I/O latency, modelling network,
	// disk, or database jitter.
	ChoiceLatency ChoiceKind = "latency"
	// ChoiceListenerOrder permutes emitter listener invocation. This is
	// stricter than Node's contract (listeners run in registration
	// order), so it is opt-in: it finds programs that would break under
	// prependListener-style reorderings.
	ChoiceListenerOrder ChoiceKind = "listener-order"
	// ChoiceDataOrder permutes result-set order from the database
	// simulator, modelling MongoDB's unspecified natural order.
	ChoiceDataOrder ChoiceKind = "data-order"
)

// LatencySteps is the domain size of every ChoiceLatency pick: pick k in
// [0, LatencySteps) scales a base latency to base*(1 + k/2).
const LatencySteps = 4

// Scheduler resolves scheduling choice points. Choose is called with the
// kind of choice and the domain size n (always >= 2) and must return a
// pick in [0, n); out-of-range picks are clamped to 0. A nil Scheduler
// (the default) resolves every choice to 0, which reproduces the loop's
// historical deterministic order exactly.
//
// Schedulers run on the loop goroutine and may be stateful; the explore
// package uses that to record the pick sequence as a replayable token.
type Scheduler interface {
	Choose(kind ChoiceKind, n int) int
}

// Choose resolves one scheduling choice. Choices with fewer than two
// alternatives consume nothing and return 0, so the pick sequence of a
// run only contains genuine branching points.
func (l *Loop) Choose(kind ChoiceKind, n int) int {
	if l.opts.Scheduler == nil || n < 2 {
		return 0
	}
	k := l.opts.Scheduler.Choose(kind, n)
	if k < 0 || k >= n {
		return 0
	}
	return k
}

// IndependenceScheduler is an optional Scheduler extension for partial-
// order reduction. When the loop is about to permute a batch whose
// elements carry independence keys, it announces the keys through
// BeginPermute immediately before the batch's Choose calls (exactly
// len(keys)-1 of them, uninterrupted). Two elements with distinct
// non-zero keys touch disjoint simulation state, so exchanging them
// yields an equivalent execution; key 0 means "may touch anything" and
// is never independent of anything.
type IndependenceScheduler interface {
	Scheduler
	BeginPermute(kind ChoiceKind, keys []uint64)
}

// Permute applies a scheduler-driven permutation to n elements through
// swap (a selection shuffle: position i receives the element the
// scheduler picks from the remaining suffix). With a nil scheduler it is
// the identity and performs no calls at all.
func (l *Loop) Permute(kind ChoiceKind, n int, swap func(i, j int)) {
	l.PermuteKeyed(kind, nil, n, swap)
}

// PermuteKeyed is Permute with per-element independence keys attached
// (len(keys) == n, or nil for no metadata). The keys are announced to an
// IndependenceScheduler before the picks; they never influence the
// permutation itself, so keyed and unkeyed runs choose identically.
func (l *Loop) PermuteKeyed(kind ChoiceKind, keys []uint64, n int, swap func(i, j int)) {
	if l.opts.Scheduler == nil || n < 2 {
		return
	}
	if is, ok := l.opts.Scheduler.(IndependenceScheduler); ok {
		is.BeginPermute(kind, keys)
	}
	for i := 0; i < n-1; i++ {
		if j := i + l.Choose(kind, n-i); j != i {
			swap(i, j)
		}
	}
}

// PerturbLatency scales a base latency by a scheduler-chosen jitter
// factor in {1, 1.5, 2, 2.5}. With a nil scheduler it returns base
// unchanged, keeping default runs identical to the pre-exploration
// behaviour.
func (l *Loop) PerturbLatency(base time.Duration) time.Duration {
	if l.opts.Scheduler == nil || base <= 0 {
		return base
	}
	k := l.Choose(ChoiceLatency, LatencySteps)
	return base + base*time.Duration(k)/2
}
