package eventloop

import (
	"errors"
	"testing"

	"asyncg/internal/loc"
	"asyncg/internal/vm"
)

// TestInterruptStopsAtTickBoundary: a non-nil Interrupt result stops the
// loop before the next top-level callback dispatches, and Run returns
// the interrupt error verbatim.
func TestInterruptStopsAtTickBoundary(t *testing.T) {
	errStop := errors.New("deadline reached")
	ticks := 0
	l := New(Options{Interrupt: func() error {
		if ticks >= 3 {
			return errStop
		}
		return nil
	}})
	var spin *vm.Function
	spin = vm.NewFunc("spin", func([]vm.Value) vm.Value {
		ticks++
		l.SetImmediate(loc.Here(), spin)
		return vm.Undefined
	})
	main := vm.NewFunc("main", func([]vm.Value) vm.Value {
		ticks++
		l.SetImmediate(loc.Here(), spin)
		return vm.Undefined
	})
	if err := l.Run(main); err != errStop {
		t.Fatalf("Run = %v, want %v", err, errStop)
	}
	if ticks != 3 {
		t.Fatalf("executed %d ticks before the interrupt, want 3", ticks)
	}
	if got := l.Tick(); got != 3 {
		t.Fatalf("Tick() = %d, want 3", got)
	}
}

// TestInterruptPreCancelled: an interrupt that fires immediately stops
// the run before the main tick executes.
func TestInterruptPreCancelled(t *testing.T) {
	errStop := errors.New("already cancelled")
	l := New(Options{Interrupt: func() error { return errStop }})
	ran := false
	main := vm.NewFunc("main", func([]vm.Value) vm.Value {
		ran = true
		return vm.Undefined
	})
	if err := l.Run(main); err != errStop {
		t.Fatalf("Run = %v, want %v", err, errStop)
	}
	if ran {
		t.Fatal("main tick executed despite a pre-cancelled interrupt")
	}
}

// TestInterruptNeverFiringIsInert: a nil-returning Interrupt must not
// change the run in any observable way.
func TestInterruptNeverFiringIsInert(t *testing.T) {
	run := func(opts Options) ([]string, error) {
		return runTrace(t, opts, func(l *Loop, log func(string)) {
			l.SetTimeout(loc.Here(), step(l, log, "timeout"), 5)
			l.SetImmediate(loc.Here(), step(l, log, "immediate"))
			l.NextTick(loc.Here(), step(l, log, "tick"))
		})
	}
	base, err := run(Options{})
	if err != nil {
		t.Fatal(err)
	}
	polled, err := run(Options{Interrupt: func() error { return nil }})
	if err != nil {
		t.Fatal(err)
	}
	wantTrace(t, polled, base)
}
