package eventloop

import (
	"testing"
	"time"

	"asyncg/internal/loc"
	"asyncg/internal/vm"
)

// scripted is a Scheduler that replays a fixed pick sequence and then
// returns 0 forever, recording every call it receives.
type scripted struct {
	picks []int
	calls []ChoiceKind
}

func (s *scripted) Choose(kind ChoiceKind, n int) int {
	s.calls = append(s.calls, kind)
	if len(s.picks) == 0 {
		return 0
	}
	k := s.picks[0]
	s.picks = s.picks[1:]
	return k
}

func TestTimerTiePermutation(t *testing.T) {
	// Two timers at the same deadline: the default order is insertion
	// order; a timer-tie pick of 1 swaps them. A third timer at a later
	// deadline must never join the tie group.
	run := func(sched Scheduler) []string {
		l := New(Options{Scheduler: sched})
		var trace []string
		log := func(s string) { trace = append(trace, s) }
		main := vm.NewFunc("main", func([]vm.Value) vm.Value {
			l.SetTimeout(loc.Here(), step(l, log, "a"), 5*time.Millisecond)
			l.SetTimeout(loc.Here(), step(l, log, "b"), 5*time.Millisecond)
			l.SetTimeout(loc.Here(), step(l, log, "late"), 10*time.Millisecond)
			return vm.Undefined
		})
		if err := l.Run(main); err != nil {
			t.Fatal(err)
		}
		return trace
	}
	wantTrace(t, run(nil), []string{"a", "b", "late"})
	wantTrace(t, run(&scripted{picks: []int{1}}), []string{"b", "a", "late"})
}

func TestIOOrderPermutation(t *testing.T) {
	// Two I/O completions ready in the same poll: pick 1 delivers the
	// second-scheduled one first.
	run := func(sched Scheduler) []string {
		l := New(Options{Scheduler: sched})
		var trace []string
		log := func(s string) { trace = append(trace, s) }
		main := vm.NewFunc("main", func([]vm.Value) vm.Value {
			l.ScheduleIOAt(time.Millisecond, step(l, log, "first"), nil, nil)
			l.ScheduleIOAt(time.Millisecond, step(l, log, "second"), nil, nil)
			return vm.Undefined
		})
		if err := l.Run(main); err != nil {
			t.Fatal(err)
		}
		return trace
	}
	wantTrace(t, run(nil), []string{"first", "second"})
	wantTrace(t, run(&scripted{picks: []int{1}}), []string{"second", "first"})
}

func TestPerturbLatencySteps(t *testing.T) {
	base := 10 * time.Millisecond
	for k, want := range []time.Duration{
		10 * time.Millisecond, // 1.0×
		15 * time.Millisecond, // 1.5×
		20 * time.Millisecond, // 2.0×
		25 * time.Millisecond, // 2.5×
	} {
		l := New(Options{Scheduler: &scripted{picks: []int{k}}})
		if got := l.PerturbLatency(base); got != want {
			t.Errorf("pick %d: PerturbLatency(%v) = %v, want %v", k, base, got, want)
		}
	}
	// Nil scheduler and non-positive latency pass through untouched.
	l := New(Options{})
	if got := l.PerturbLatency(base); got != base {
		t.Errorf("nil scheduler perturbed latency: %v", got)
	}
	l = New(Options{Scheduler: &scripted{picks: []int{3}}})
	if got := l.PerturbLatency(0); got != 0 {
		t.Errorf("zero latency perturbed: %v", got)
	}
}

func TestChooseClampsAndSkipsTrivialDomains(t *testing.T) {
	s := &scripted{picks: []int{99, -1, 1}}
	l := New(Options{Scheduler: s})
	if got := l.Choose(ChoiceIOOrder, 3); got != 0 {
		t.Errorf("out-of-range pick not clamped: %d", got)
	}
	if got := l.Choose(ChoiceIOOrder, 3); got != 0 {
		t.Errorf("negative pick not clamped: %d", got)
	}
	// Domains of size < 2 must not consume a pick at the loop layer.
	if got := l.Choose(ChoiceIOOrder, 1); got != 0 {
		t.Errorf("trivial domain returned %d", got)
	}
	if len(s.calls) != 2 {
		t.Errorf("trivial domain consulted the scheduler: %d calls", len(s.calls))
	}
	if got := l.Choose(ChoiceIOOrder, 2); got != 1 {
		t.Errorf("in-range pick altered: %d", got)
	}
}

func TestPermuteSelectionShuffle(t *testing.T) {
	// Picks (2, 1) on [a b c d]: position 0 takes index 2 → [c b a d];
	// position 1 takes index 1+1 → [c a b d]; position 2 keeps.
	l := New(Options{Scheduler: &scripted{picks: []int{2, 1, 0}}})
	elems := []string{"a", "b", "c", "d"}
	l.Permute(ChoiceIOOrder, len(elems), func(i, j int) {
		elems[i], elems[j] = elems[j], elems[i]
	})
	wantTrace(t, elems, []string{"c", "a", "b", "d"})

	// Nil scheduler: identity, zero swap calls.
	l = New(Options{})
	swaps := 0
	l.Permute(ChoiceIOOrder, 4, func(i, j int) { swaps++ })
	if swaps != 0 {
		t.Errorf("nil scheduler performed %d swaps", swaps)
	}
}
