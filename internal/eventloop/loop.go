package eventloop

import (
	"errors"
	"time"

	"asyncg/internal/vm"
)

// Limit errors returned by Run. A tick-limit stop is the expected way to
// truncate non-terminating programs (such as the paper's recursive
// nextTick bug in Fig. 1, whose Async Graph "grows infinitely").
var (
	ErrTickLimit = errors.New("eventloop: tick limit reached")
	ErrTimeLimit = errors.New("eventloop: virtual time limit reached")
	ErrReentrant = errors.New("eventloop: Run called while loop is running")
	ErrStopped   = errors.New("eventloop: stopped by program")
)

// Options configures a Loop.
type Options struct {
	// TickLimit bounds the number of top-level callback executions
	// (ticks). 0 means DefaultTickLimit. Run returns ErrTickLimit when
	// the bound is hit; the work done so far (and its Async Graph)
	// remains observable.
	TickLimit int
	// TimeLimit bounds virtual time. 0 means no limit.
	TimeLimit time.Duration
	// CallbackCost is virtual time charged per top-level callback,
	// modelling the non-zero duration of real callback execution.
	CallbackCost time.Duration
	// IterationCost is virtual time charged per event-loop iteration,
	// modelling the real duration of a loop turn. Without it a
	// recursive setImmediate would freeze the virtual clock and starve
	// timers, which real Node does not do. 0 means
	// DefaultIterationCost; negative disables the charge.
	IterationCost time.Duration
	// StopOnUncaught makes Run stop at the first uncaught exception
	// instead of recording it and continuing (the default keeps
	// analysing, like a debugger with an uncaughtException handler).
	StopOnUncaught bool
	// Scheduler resolves scheduling choice points (I/O completion
	// order, same-deadline timer ties, latency jitter). nil keeps the
	// historical deterministic order. See Scheduler and the explore
	// package.
	Scheduler Scheduler
	// Interrupt, when set, is polled at every tick boundary (before the
	// next top-level callback dispatches) and at the top of every loop
	// iteration. A non-nil return stops the loop: Run returns that error
	// and the work done so far remains observable, exactly like a limit
	// stop. asyncg.WithContext wires a context.Context's Err here, which
	// is how job deadlines and client-disconnect cancellation reach the
	// simulation. The check never perturbs scheduling, so runs that are
	// not interrupted are byte-identical with and without it.
	Interrupt func() error
}

// DefaultTickLimit is the tick bound applied when Options.TickLimit is 0.
const DefaultTickLimit = 1_000_000

// DefaultIterationCost is the virtual time charged per loop iteration
// when Options.IterationCost is 0.
const DefaultIterationCost = 100 * time.Microsecond

// UncaughtError records a simulated exception that escaped a top-level
// callback.
type UncaughtError struct {
	// Thrown is the escaped exception value.
	Thrown *vm.Thrown
	// Phase is the loop phase whose callback threw.
	Phase Phase
	// Tick is the 1-based tick index of the throwing callback.
	Tick int
}

// Error reports the thrown value's message, making UncaughtError an
// error.
func (u UncaughtError) Error() string { return u.Thrown.Error() }

// Loop is the event-loop simulator. Create one with New, schedule the
// main program with Run, and interact with it only from callbacks running
// on it. All methods must be called from the loop goroutine (or before
// Run starts).
type Loop struct {
	probes vm.Probes
	opts   Options

	now   time.Duration
	phase Phase
	depth int

	nextTickQ    fifo
	promiseQ     fifo
	timers       timerHeap
	timersByID   map[uint64]*timer
	activeTimers int

	immediates      []*immediate
	immHead         int
	immediatesByID  map[uint64]*immediate
	activeImmediate int

	io     ioHeap
	closeQ fifo

	timerSeq  uint64 // ids for timers and immediates
	orderSeq  uint64 // scheduling tie-breakers
	regSeq    uint64 // callback-registration sequence (probe protocol)
	trigSeq   uint64 // trigger sequence (probe protocol)
	objSeq    uint64 // object identity (emitters, promises, sockets)
	ioKeySeq  uint64 // I/O independence keys (partial-order reduction)
	iteration uint64 // loop-iteration count (probe protocol)

	ticksRun int
	uncaught []UncaughtError
	stopErr  error
	running  bool

	// Free lists and scratch buffers that survive Reset, so one
	// allocation set serves a whole stream of runs (the zero-allocation
	// run path). callInfo is the single FunctionEnter payload: probe
	// dispatch completes before the callback body runs, so one scratch
	// struct serves arbitrarily nested invocations.
	callInfo     vm.CallInfo
	dispFree     []*vm.Dispatch
	evFree       []*vm.APIEvent
	timerFree    []*timer
	immFree      []*immediate
	ioFree       []*ioEvent
	dueScratch   []*timer
	readyScratch []*ioEvent
	keyScratch   []uint64

	resetHooks []func()
	substrates map[any]any
}

// immediate is a pending setImmediate registration. disp backs
// task.dispatch so a pooled immediate carries its dispatch inline.
type immediate struct {
	task
	id      uint64
	cleared bool
	disp    vm.Dispatch
}

// New creates a loop with the given options.
func New(opts Options) *Loop {
	if opts.TickLimit == 0 {
		opts.TickLimit = DefaultTickLimit
	}
	if opts.IterationCost == 0 {
		opts.IterationCost = DefaultIterationCost
	} else if opts.IterationCost < 0 {
		opts.IterationCost = 0
	}
	return &Loop{
		opts:           opts,
		phase:          PhaseMain,
		timersByID:     make(map[uint64]*timer),
		immediatesByID: make(map[uint64]*immediate),
	}
}

// Probes exposes the probe dispatcher so tools can attach and detach
// hooks — before Run or from inside callbacks (AsyncG is pluggable at
// runtime).
func (l *Loop) Probes() *vm.Probes { return &l.probes }

// SetScheduler swaps the scheduling-choice resolver. Reusable sessions
// install a fresh recording per run between Reset and Run; the rest of
// Options stays fixed at construction. Must not be called mid-run.
func (l *Loop) SetScheduler(s Scheduler) { l.opts.Scheduler = s }

// SetInterrupt swaps the tick-boundary interrupt poll (see
// Options.Interrupt). Must not be called mid-run.
func (l *Loop) SetInterrupt(f func() error) { l.opts.Interrupt = f }

// Reset returns the loop to its cold-start state while retaining its
// allocation set: queues, heaps, sequence counters, virtual time, and
// recorded errors are cleared, but free lists, scratch buffers, attached
// probes, substrate state, and the configured Options survive. A
// freshly-Reset loop behaves byte-identically to a newly-constructed one
// under the same program. Reset must not be called while Run is active;
// registered reset hooks (OnReset) fire last, in registration order.
func (l *Loop) Reset() {
	// Recycle everything still queued so the free lists stay warm even
	// after a truncated (limit-stopped or interrupted) run.
	for {
		t := l.timers.peek()
		if t == nil {
			break
		}
		l.recycleTimer(l.timers.removeMin())
	}
	for {
		e := l.io.peek()
		if e == nil {
			break
		}
		l.recycleIOEvent(l.io.removeMin())
	}
	for i := l.immHead; i < len(l.immediates); i++ {
		if im := l.immediates[i]; im != nil {
			l.recycleImmediate(im)
		}
		l.immediates[i] = nil
	}
	l.immediates = l.immediates[:0]
	l.immHead = 0
	l.activeImmediate = 0
	clear(l.immediatesByID)
	clear(l.timersByID)
	l.activeTimers = 0
	l.drainRecycle(&l.nextTickQ)
	l.drainRecycle(&l.promiseQ)
	l.drainRecycle(&l.closeQ)

	l.now = 0
	l.phase = PhaseMain
	l.depth = 0
	l.timerSeq, l.orderSeq, l.regSeq, l.trigSeq, l.objSeq, l.ioKeySeq = 0, 0, 0, 0, 0, 0
	l.iteration = 0
	l.ticksRun = 0
	for i := range l.uncaught {
		l.uncaught[i] = UncaughtError{}
	}
	l.uncaught = l.uncaught[:0]
	l.stopErr = nil
	l.running = false
	l.callInfo = vm.CallInfo{}

	for _, hook := range l.resetHooks {
		hook()
	}
}

// OnReset registers a hook invoked at the end of every Reset, after the
// loop's own state is cleared. Substrate layers (network, DB, file
// system, promise arenas) use it to return their per-run state to
// cold-start while keeping their allocation pools.
func (l *Loop) OnReset(hook func()) {
	l.resetHooks = append(l.resetHooks, hook)
}

// Substrate returns per-loop auxiliary state registered under key,
// creating it with init on first use. The state persists across Reset —
// init typically registers an OnReset hook for the per-run portion.
// Library layers use it for per-loop allocation arenas without the loop
// knowing their types.
func (l *Loop) Substrate(key any, init func() any) any {
	if s, ok := l.substrates[key]; ok {
		return s
	}
	if l.substrates == nil {
		l.substrates = make(map[any]any)
	}
	s := init()
	l.substrates[key] = s
	return s
}

// NewDispatch returns a cleared dispatch from the loop's free list,
// marked Pooled. The loop reclaims it automatically after the top-level
// callback it is attached to finishes executing; for dispatches used
// with a direct Invoke, the caller returns it with RecycleDispatch.
func (l *Loop) NewDispatch() *vm.Dispatch {
	if n := len(l.dispFree); n > 0 {
		d := l.dispFree[n-1]
		l.dispFree = l.dispFree[:n-1]
		return d
	}
	return &vm.Dispatch{Pooled: true}
}

// RecycleDispatch clears a pooled dispatch and returns it to the free
// list. Only dispatches obtained from NewDispatch may be recycled, and
// only once their callback execution (FunctionExit included) is over.
func (l *Loop) RecycleDispatch(d *vm.Dispatch) {
	if d == nil || !d.Pooled {
		return
	}
	*d = vm.Dispatch{Pooled: true}
	l.dispFree = append(l.dispFree, d)
}

// BorrowAPIEvent returns a cleared probe event from the loop's free
// list. Emitting layers fill it, pass it to EmitAPIEvent, and hand it
// back with ReturnAPIEvent once the hooks have run — hooks copy what
// they keep (see vm.Hooks), so the event is single-dispatch scratch.
func (l *Loop) BorrowAPIEvent() *vm.APIEvent {
	if n := len(l.evFree); n > 0 {
		ev := l.evFree[n-1]
		l.evFree = l.evFree[:n-1]
		return ev
	}
	return &vm.APIEvent{}
}

// ReturnAPIEvent clears ev and returns it to the free list; the caller
// must not touch it afterwards.
func (l *Loop) ReturnAPIEvent(ev *vm.APIEvent) {
	*ev = vm.APIEvent{}
	l.evFree = append(l.evFree, ev)
}

// drainRecycle empties a task queue, returning pooled dispatches to the
// free list so truncated runs keep the pools warm.
func (l *Loop) drainRecycle(q *fifo) {
	for {
		t, ok := q.pop()
		if !ok {
			break
		}
		if d := t.dispatch; d != nil && d.Pooled {
			l.RecycleDispatch(d)
		}
	}
	q.reset()
}

// recycleTimer clears a retired timer and returns it to the free list.
func (l *Loop) recycleTimer(t *timer) {
	*t = timer{}
	l.timerFree = append(l.timerFree, t)
}

// borrowTimer returns a zeroed timer from the free list.
func (l *Loop) borrowTimer() *timer {
	if n := len(l.timerFree); n > 0 {
		t := l.timerFree[n-1]
		l.timerFree = l.timerFree[:n-1]
		return t
	}
	return &timer{}
}

// recycleImmediate clears a retired immediate and returns it to the pool.
func (l *Loop) recycleImmediate(im *immediate) {
	*im = immediate{}
	l.immFree = append(l.immFree, im)
}

// borrowImmediate returns a zeroed immediate from the free list.
func (l *Loop) borrowImmediate() *immediate {
	if n := len(l.immFree); n > 0 {
		im := l.immFree[n-1]
		l.immFree = l.immFree[:n-1]
		return im
	}
	return &immediate{}
}

// recycleIOEvent clears a delivered I/O event and returns it to the pool.
func (l *Loop) recycleIOEvent(e *ioEvent) {
	*e = ioEvent{}
	l.ioFree = append(l.ioFree, e)
}

// borrowIOEvent returns a zeroed I/O event from the free list.
func (l *Loop) borrowIOEvent() *ioEvent {
	if n := len(l.ioFree); n > 0 {
		e := l.ioFree[n-1]
		l.ioFree = l.ioFree[:n-1]
		return e
	}
	return &ioEvent{}
}

// Now returns the current virtual time.
func (l *Loop) Now() time.Duration { return l.now }

// Work advances virtual time by d, modelling synchronous computation
// ("performSomeComputation()" in the paper's Fig. 1).
func (l *Loop) Work(d time.Duration) {
	if d > 0 {
		l.now += d
	}
}

// Phase returns the phase of the callback currently executing.
func (l *Loop) Phase() Phase { return l.phase }

// Tick returns the number of top-level callbacks executed so far.
func (l *Loop) Tick() int { return l.ticksRun }

// Uncaught returns the exceptions that escaped top-level callbacks.
func (l *Loop) Uncaught() []UncaughtError { return l.uncaught }

// Stop makes the loop wind down after the current callback; Run returns
// ErrStopped. Pending work is abandoned.
func (l *Loop) Stop() {
	if l.stopErr == nil {
		l.stopErr = ErrStopped
	}
}

// Identity and sequence generators used by the promise, emitter and I/O
// layers to participate in the probe protocol.

// NextObjID allocates a fresh runtime-object identity.
func (l *Loop) NextObjID() uint64 { l.objSeq++; return l.objSeq }

// NextRegSeq allocates a fresh callback-registration sequence number.
func (l *Loop) NextRegSeq() uint64 { l.regSeq++; return l.regSeq }

// NextTrigSeq allocates a fresh trigger sequence number.
func (l *Loop) NextTrigSeq() uint64 { l.trigSeq++; return l.trigSeq }

// NextIOKey allocates a fresh I/O independence key (for
// ScheduleIOKeyedAt). Keys live in their own sequence — deliberately not
// NextObjID, whose values feed graph object identity — so attaching
// independence metadata never perturbs fingerprints.
func (l *Loop) NextIOKey() uint64 { l.ioKeySeq++; return l.ioKeySeq }

// EmitAPIEvent announces an async-API call to attached hooks.
func (l *Loop) EmitAPIEvent(ev *vm.APIEvent) {
	if l.probes.Active() {
		l.probes.APICall(ev)
	}
}

// ProbesActive reports whether any instrumentation hook is attached.
func (l *Loop) ProbesActive() bool { return l.probes.Active() }

// Invoke performs a nested synchronous call: probes see functionEnter and
// functionExit, and a simulated exception is returned rather than
// propagated. Callers that need JS throw-propagation semantics re-raise
// the returned Thrown with panic.
func (l *Loop) Invoke(fn *vm.Function, args []vm.Value, dispatch *vm.Dispatch) (vm.Value, *vm.Thrown) {
	l.depth++
	active := l.probes.Active()
	if active {
		// callInfo is single-dispatch scratch: FunctionEnter completes
		// before the callback body runs, so nested invocations may reuse
		// it freely (hooks copy what they keep, see vm.Hooks).
		l.callInfo.Phase = string(l.phase)
		l.callInfo.TopLevel = l.depth == 1
		l.callInfo.Dispatch = dispatch
		l.probes.FunctionEnter(fn, &l.callInfo)
	}
	var ret vm.Value
	thrown := vm.CatchThrown(func() { ret = fn.Invoke(args) })
	if active {
		l.probes.FunctionExit(fn, ret, thrown)
	}
	l.depth--
	return ret, thrown
}

// invokeTop dispatches one top-level callback in the given phase,
// enforcing tick and time limits and recording uncaught exceptions.
func (l *Loop) invokeTop(t task, phase Phase) {
	if d := t.dispatch; d != nil && d.Pooled {
		// A pooled dispatch is consumed by its dispatch attempt: hooks may
		// read it until FunctionExit returns, nothing retains it after.
		defer l.RecycleDispatch(d)
	}
	if l.stopErr != nil {
		return
	}
	if l.checkInterrupt() {
		return
	}
	if l.ticksRun >= l.opts.TickLimit {
		l.stopErr = ErrTickLimit
		return
	}
	l.ticksRun++
	prev := l.phase
	l.phase = phase
	if l.opts.CallbackCost > 0 {
		l.now += l.opts.CallbackCost
	}
	ret, thrown := l.Invoke(t.fn, t.args, t.dispatch)
	l.phase = prev
	if t.after != nil {
		t.after(ret, thrown)
		thrown = nil // consumed by the completion hook
	}
	if thrown != nil {
		l.uncaught = append(l.uncaught, UncaughtError{Thrown: thrown, Phase: phase, Tick: l.ticksRun})
		if l.opts.StopOnUncaught && l.stopErr == nil {
			l.stopErr = UncaughtError{Thrown: thrown, Phase: phase, Tick: l.ticksRun}
		}
	}
	if l.opts.TimeLimit > 0 && l.now > l.opts.TimeLimit && l.stopErr == nil {
		l.stopErr = ErrTimeLimit
	}
}

// checkInterrupt polls Options.Interrupt and converts a non-nil error
// into a loop stop. It reports whether the loop is (now) stopping.
func (l *Loop) checkInterrupt() bool {
	if l.opts.Interrupt == nil {
		return false
	}
	if err := l.opts.Interrupt(); err != nil {
		if l.stopErr == nil {
			l.stopErr = err
		}
		return true
	}
	return false
}

// drainMicro runs microtasks to exhaustion: all nextTick jobs first, then
// promise jobs, re-checking the nextTick queue after every promise job
// (Fig. 2(b): nextTick has priority, and the two queues can schedule each
// other). Recursive micro-scheduling therefore starves the macro phases,
// which is exactly the Fig. 1 bug.
func (l *Loop) drainMicro() {
	for l.stopErr == nil {
		if t, ok := l.nextTickQ.pop(); ok {
			l.invokeTop(t, PhaseNextTick)
			continue
		}
		if t, ok := l.promiseQ.pop(); ok {
			l.invokeTop(t, PhasePromise)
			continue
		}
		return
	}
}

// hasWork reports whether any queue can still produce a callback.
func (l *Loop) hasWork() bool {
	return l.nextTickQ.len() > 0 ||
		l.promiseQ.len() > 0 ||
		l.activeTimers > 0 ||
		l.io.Len() > 0 ||
		l.activeImmediate > 0 ||
		l.closeQ.len() > 0
}

// peekActiveTimer returns the earliest non-cleared timer, discarding
// cleared entries lazily.
func (l *Loop) peekActiveTimer() *timer {
	for {
		t := l.timers.peek()
		if t == nil {
			return nil
		}
		if t.cleared {
			l.recycleTimer(l.timers.removeMin())
			continue
		}
		return t
	}
}

// advanceClock jumps virtual time to the next scheduled deadline when
// nothing is runnable right now, modelling the loop blocking in poll.
func (l *Loop) advanceClock() {
	if l.activeImmediate > 0 || l.closeQ.len() > 0 {
		return // runnable this iteration at the current time
	}
	var next time.Duration = -1
	if t := l.peekActiveTimer(); t != nil {
		next = t.due
	}
	if e := l.io.peek(); e != nil {
		if next < 0 || e.readyAt < next {
			next = e.readyAt
		}
	}
	if next > l.now {
		l.now = next
	}
}

// Run executes main as the program's first tick ("t1: main"), then
// processes the event loop until no work remains or a limit stops it.
func (l *Loop) Run(main *vm.Function, args ...vm.Value) error {
	if l.running {
		return ErrReentrant
	}
	l.running = true
	defer func() { l.running = false }()

	d := l.NewDispatch()
	d.API = "main"
	l.invokeTop(task{fn: main, args: args, dispatch: d}, PhaseMain)
	l.drainMicro()
	for l.stopErr == nil && l.hasWork() {
		if l.checkInterrupt() {
			break
		}
		l.iteration++
		l.now += l.opts.IterationCost
		l.advanceClock()
		if l.probes.WantLoop() {
			l.probes.LoopIteration(&vm.LoopInfo{
				Iteration: l.iteration, Now: l.now, Depths: l.Depths(),
			})
		}
		l.runTimerPhase()
		l.runIOPhase()
		l.runImmediatePhase()
		l.runClosePhase()
	}
	if l.stopErr == ErrStopped {
		return nil
	}
	return l.stopErr
}

// phaseEnter announces a macro-phase entry when probes subscribe and the
// phase has runnable work; it reports whether a matching phaseExit is
// owed. Skipping idle phases keeps trace volume proportional to work.
func (l *Loop) phaseEnter(phase Phase, runnable int) bool {
	if runnable == 0 || !l.probes.WantPhases() {
		return false
	}
	l.probes.PhaseEnter(&vm.PhaseInfo{
		Phase: string(phase), Now: l.now, Iteration: l.iteration, Runnable: runnable,
	})
	return true
}

// phaseExit closes a phase span opened by phaseEnter.
func (l *Loop) phaseExit(phase Phase, runnable int) {
	l.probes.PhaseExit(&vm.PhaseInfo{
		Phase: string(phase), Now: l.now, Iteration: l.iteration, Runnable: runnable,
	})
}

// runTimerPhase executes every timer whose deadline has passed, in
// (deadline, registration) order. Timers scheduled during the phase run
// in a later iteration, even if already due.
func (l *Loop) runTimerPhase() {
	due := l.dueScratch[:0]
	for {
		t := l.peekActiveTimer()
		if t == nil || t.due > l.now {
			break
		}
		due = append(due, l.timers.removeMin())
	}
	l.permuteTimerTies(due)
	span := l.phaseEnter(PhaseTimer, len(due))
	wantFires := l.probes.WantTimers()
	for i, t := range due {
		due[i] = nil
		if l.stopErr != nil {
			// Not executed: put it back so hasWork stays truthful.
			l.timers.add(t)
			continue
		}
		if t.cleared { // cleared by an earlier callback in this phase
			l.recycleTimer(t)
			continue
		}
		if wantFires {
			l.probes.TimerFired(&vm.TimerFire{
				ID: t.id, Scheduled: t.due, Fired: l.now, Interval: t.interval > 0,
			})
		}
		l.invokeTop(t.task, PhaseTimer)
		if t.interval > 0 && !t.cleared {
			t.due += t.interval
			if t.due <= l.now {
				t.due = l.now + t.interval
			}
			l.timers.add(t)
		} else {
			l.activeTimers--
			delete(l.timersByID, t.id)
			l.recycleTimer(t)
		}
		l.drainMicro()
	}
	if span {
		l.phaseExit(PhaseTimer, len(due))
	}
	l.dueScratch = due[:0]
}

// permuteTimerTies lets the scheduler reorder timers that share one
// deadline. Only equal-deadline runs are permutable — deadline order
// itself is contractual.
func (l *Loop) permuteTimerTies(due []*timer) {
	if l.opts.Scheduler == nil {
		return
	}
	for lo := 0; lo < len(due); {
		hi := lo + 1
		for hi < len(due) && due[hi].due == due[lo].due {
			hi++
		}
		group := due[lo:hi]
		l.Permute(ChoiceTimerTie, len(group), func(i, j int) { group[i], group[j] = group[j], group[i] })
		lo = hi
	}
}

// runIOPhase delivers external events whose virtual arrival time has
// passed (the poll phase).
func (l *Loop) runIOPhase() {
	ready := l.readyScratch[:0]
	for {
		e := l.io.peek()
		if e == nil || e.readyAt > l.now {
			break
		}
		ready = append(ready, l.io.removeMin())
	}
	// The whole poll batch is permutable: the OS reports completions
	// that became ready by now in arbitrary order. The events'
	// independence keys ride along so a POR-aware scheduler can tell
	// when the batch commutes.
	var keys []uint64
	if l.opts.Scheduler != nil && len(ready) >= 2 {
		keys = l.keyScratch[:0]
		for _, e := range ready {
			keys = append(keys, e.key)
		}
		l.keyScratch = keys
	}
	l.PermuteKeyed(ChoiceIOOrder, keys, len(ready), func(i, j int) { ready[i], ready[j] = ready[j], ready[i] })
	span := l.phaseEnter(PhaseIO, len(ready))
	for i, e := range ready {
		ready[i] = nil
		if l.stopErr != nil {
			l.io.add(e)
			continue
		}
		l.invokeTop(e.task, PhaseIO)
		l.recycleIOEvent(e)
		l.drainMicro()
	}
	if span {
		l.phaseExit(PhaseIO, len(ready))
	}
	l.readyScratch = ready[:0]
}

// runImmediatePhase executes the immediates queued before the phase
// started; immediates scheduled by an immediate run next iteration
// (Node's check-phase snapshot semantics).
func (l *Loop) runImmediatePhase() {
	n := len(l.immediates)
	span := l.phaseEnter(PhaseImmediate, n-l.immHead)
	runnable := n - l.immHead
	for l.immHead < n {
		im := l.immediates[l.immHead]
		l.immediates[l.immHead] = nil
		l.immHead++
		if im.cleared {
			l.recycleImmediate(im)
			continue
		}
		l.activeImmediate--
		delete(l.immediatesByID, im.id)
		if l.stopErr != nil {
			l.recycleImmediate(im)
			continue
		}
		l.invokeTop(im.task, PhaseImmediate)
		l.recycleImmediate(im)
		l.drainMicro()
	}
	if l.immHead >= len(l.immediates) {
		l.immediates = l.immediates[:0]
		l.immHead = 0
	}
	if span {
		l.phaseExit(PhaseImmediate, runnable)
	}
}

// runClosePhase executes close handlers queued before the phase started.
func (l *Loop) runClosePhase() {
	n := l.closeQ.len()
	span := l.phaseEnter(PhaseClose, n)
	for i := 0; i < n; i++ {
		t, ok := l.closeQ.pop()
		if !ok {
			break
		}
		if l.stopErr != nil {
			continue
		}
		l.invokeTop(t, PhaseClose)
		l.drainMicro()
	}
	if span {
		l.phaseExit(PhaseClose, n)
	}
}
