package eventloop

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"asyncg/internal/loc"
	"asyncg/internal/vm"
)

// schedEvent is one observation from the validating hook.
type schedEvent struct {
	exec   bool // execution (vs registration)
	api    string
	regSeq uint64
	phase  string
	due    time.Duration // registration: absolute deadline for timers
	order  int           // stream position
}

// schedRecorder collects registrations and top-level executions.
type schedRecorder struct {
	loop   *Loop
	events []schedEvent
}

func (r *schedRecorder) FunctionEnter(fn *vm.Function, info *vm.CallInfo) {
	if !info.TopLevel || info.Dispatch == nil || info.Dispatch.API == "main" {
		return
	}
	r.events = append(r.events, schedEvent{
		exec:   true,
		api:    info.Dispatch.API,
		regSeq: info.Dispatch.RegSeq,
		phase:  info.Phase,
		order:  len(r.events),
	})
}

func (r *schedRecorder) FunctionExit(*vm.Function, vm.Value, *vm.Thrown) {}

func (r *schedRecorder) APICall(ev *vm.APIEvent) {
	for _, reg := range ev.Regs {
		e := schedEvent{
			api:    ev.API,
			regSeq: reg.Seq,
			phase:  reg.Phase,
			order:  len(r.events),
		}
		if ev.API == APISetTimeout || ev.API == APISetInterval {
			if d, ok := ev.Args[0].(time.Duration); ok {
				if d < minTimeout {
					d = minTimeout
				}
				e.due = r.loop.Now() + d
			}
		}
		r.events = append(r.events, e)
	}
}

// randomSchedule schedules a random operation mix with nesting.
func randomSchedule(l *Loop, seed int64, ops int) *vm.Function {
	rng := rand.New(rand.NewSource(seed))
	var oneOp func(budget *int)
	nest := func(budget *int) *vm.Function {
		return vm.NewFunc("cb", func([]vm.Value) vm.Value {
			for i := rng.Intn(3); i > 0 && *budget > 0; i-- {
				oneOp(budget)
			}
			return vm.Undefined
		})
	}
	oneOp = func(budget *int) {
		if *budget <= 0 {
			return
		}
		*budget--
		switch rng.Intn(6) {
		case 0:
			l.NextTick(loc.Here(), nest(budget))
		case 1:
			l.SetTimeout(loc.Here(), nest(budget), time.Duration(rng.Intn(4))*time.Millisecond)
		case 2:
			l.SetImmediate(loc.Here(), nest(budget))
		case 3:
			l.ScheduleIOAt(l.Now()+time.Duration(rng.Intn(3))*time.Millisecond, nest(budget), nil,
				&vm.Dispatch{API: "net.test"})
		case 4:
			l.ScheduleClose(nest(budget), nil, &vm.Dispatch{API: "socket.close"})
		case 5:
			l.Work(time.Duration(rng.Intn(500)) * time.Microsecond)
		}
	}
	return vm.NewFunc("main", func([]vm.Value) vm.Value {
		budget := ops
		for budget > 0 {
			oneOp(&budget)
		}
		return vm.Undefined
	})
}

// runRandom executes a random schedule under the recorder.
func runRandom(t *testing.T, seed int64, ops int) *schedRecorder {
	t.Helper()
	l := New(Options{TickLimit: 100_000})
	rec := &schedRecorder{loop: l}
	l.Probes().Attach(rec)
	if err := l.Run(randomSchedule(l, seed, ops)); err != nil {
		t.Fatalf("seed %d: %v", seed, err)
	}
	return rec
}

// TestQuickNextTickBeatsMacroPhases: a nextTick registration always
// executes before the next macro-phase callback that follows it in the
// event stream (micro queues are drained between all other phases).
func TestQuickNextTickBeatsMacroPhases(t *testing.T) {
	isMacro := func(phase string) bool {
		switch Phase(phase) {
		case PhaseTimer, PhaseIO, PhaseImmediate, PhaseClose:
			return true
		}
		return false
	}
	f := func(seed int64) bool {
		rec := runRandom(t, seed, 50)
		execAt := make(map[uint64]int)
		for _, e := range rec.events {
			if e.exec {
				if _, dup := execAt[e.regSeq]; !dup {
					execAt[e.regSeq] = e.order
				}
			}
		}
		for _, e := range rec.events {
			if e.exec || e.api != APINextTick {
				continue
			}
			tickExec, ran := execAt[e.regSeq]
			if !ran {
				return false // nextTicks always run (loop drains them)
			}
			// No macro execution may occur between the registration
			// and the tick's execution... except the macro callback
			// that *made* the registration is still on stack; macro
			// executions strictly after the registration and before
			// the tick execution are violations.
			for _, other := range rec.events {
				if other.exec && isMacro(other.phase) &&
					other.order > e.order && other.order < tickExec {
					t.Logf("seed %d: macro %s at %d between nextTick reg %d and exec %d",
						seed, other.api, other.order, e.order, tickExec)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickNextTickFIFO: nextTick executions occur in registration
// order.
func TestQuickNextTickFIFO(t *testing.T) {
	f := func(seed int64) bool {
		rec := runRandom(t, seed, 60)
		var regOrder, execOrder []uint64
		for _, e := range rec.events {
			if e.api != APINextTick {
				continue
			}
			if e.exec {
				execOrder = append(execOrder, e.regSeq)
			} else {
				regOrder = append(regOrder, e.regSeq)
			}
		}
		if len(regOrder) != len(execOrder) {
			return false
		}
		for i := range regOrder {
			if regOrder[i] != execOrder[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickTimersFireInDeadlineOrder: timer executions respect
// (deadline, registration) order.
func TestQuickTimersFireInDeadlineOrder(t *testing.T) {
	f := func(seed int64) bool {
		rec := runRandom(t, seed, 60)
		due := make(map[uint64]time.Duration)
		regPos := make(map[uint64]int)
		for _, e := range rec.events {
			if !e.exec && e.api == APISetTimeout {
				due[e.regSeq] = e.due
				regPos[e.regSeq] = e.order
			}
		}
		var fired []uint64
		for _, e := range rec.events {
			if e.exec && e.api == APISetTimeout {
				fired = append(fired, e.regSeq)
			}
		}
		// Among timers that fired consecutively, an earlier-deadline
		// timer must not fire after a later-deadline one *if both were
		// registered before either fired*. Check pairwise on the fired
		// sequence: for i<j, not (due[j] < due[i] and reg[j] < exec-of-i).
		for i := 0; i < len(fired); i++ {
			for j := i + 1; j < len(fired); j++ {
				a, b := fired[i], fired[j]
				if due[b] < due[a] && regPos[b] < regPos[a] {
					// b had an earlier deadline and was registered
					// earlier, yet fired later.
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickOnceRegistrationsFireAtMostOnce: every once-registration
// (nextTick, setTimeout, setImmediate) executes at most one time.
func TestQuickOnceRegistrationsFireAtMostOnce(t *testing.T) {
	f := func(seed int64) bool {
		rec := runRandom(t, seed, 80)
		counts := make(map[uint64]int)
		for _, e := range rec.events {
			if e.exec {
				counts[e.regSeq]++
			}
		}
		for _, e := range rec.events {
			if !e.exec && counts[e.regSeq] > 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickExecutionPhaseMatchesRegistration: callbacks execute in the
// phase their registration promised.
func TestQuickExecutionPhaseMatchesRegistration(t *testing.T) {
	f := func(seed int64) bool {
		rec := runRandom(t, seed, 60)
		regPhase := make(map[uint64]string)
		for _, e := range rec.events {
			if !e.exec && e.phase != "" {
				regPhase[e.regSeq] = e.phase
			}
		}
		for _, e := range rec.events {
			if !e.exec {
				continue
			}
			want, ok := regPhase[e.regSeq]
			if !ok || want == "any" || want == "sync" {
				continue
			}
			if e.phase != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickVirtualClockMonotonic: Now() never goes backwards.
func TestQuickVirtualClockMonotonic(t *testing.T) {
	f := func(seed int64) bool {
		l := New(Options{TickLimit: 100_000})
		var last time.Duration
		monotonic := true
		check := &clockHook{loop: l, last: &last, ok: &monotonic}
		l.Probes().Attach(check)
		if err := l.Run(randomSchedule(l, seed, 50)); err != nil {
			return false
		}
		return monotonic
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

type clockHook struct {
	loop *Loop
	last *time.Duration
	ok   *bool
}

func (c *clockHook) FunctionEnter(*vm.Function, *vm.CallInfo) {
	now := c.loop.Now()
	if now < *c.last {
		*c.ok = false
	}
	*c.last = now
}
func (c *clockHook) FunctionExit(*vm.Function, vm.Value, *vm.Thrown) {}
func (c *clockHook) APICall(*vm.APIEvent)                            {}
