package eventloop

import "asyncg/internal/vm"

// Probe is the single hook surface every observability consumer attaches
// through — the Async Graph builder, the bug detectors, the instrument
// tracer/counter, and the streaming trace exporter and metrics registry
// all implement it and attach via Loop.Probes().Attach.
//
// The required methods are the NodeProf-style core of the paper's
// instrumentation:
//
//	FunctionEnter(fn, info)  — a callback (top-level or nested) starts
//	FunctionExit(fn, ret, thrown) — it returns or throws
//	APICall(ev)              — an async API registers/triggers/binds
//
// A Probe may additionally implement any of the optional extension
// interfaces, discovered once at Attach time (attaching a plain Probe
// costs nothing extra):
//
//	PhaseProbe — PhaseEnter/PhaseExit at macro-phase boundaries
//	LoopProbe  — LoopIteration once per loop turn, with queue depths
//	TimerProbe — TimerFired with scheduled-vs-fired timestamps
//
// All probe methods run synchronously on the loop goroutine; they may
// read Loop state (Now, Phase, Tick) but must not schedule work or block.
type Probe = vm.Hooks

// Optional Probe extensions and their event payloads, re-exported from
// the vm probe protocol so consumers only import eventloop.
type (
	// PhaseProbe observes macro-phase boundaries. Phases with nothing
	// runnable are skipped, keeping event volume proportional to work.
	PhaseProbe = vm.PhaseHooks
	// LoopProbe observes one event per loop iteration.
	LoopProbe = vm.LoopHooks
	// TimerProbe observes timer dispatches and their loop lag.
	TimerProbe = vm.TimerHooks

	// PhaseInfo accompanies PhaseEnter/PhaseExit.
	PhaseInfo = vm.PhaseInfo
	// LoopInfo accompanies LoopIteration.
	LoopInfo = vm.LoopInfo
	// TimerFire accompanies TimerFired.
	TimerFire = vm.TimerFire
	// QueueDepths is the per-queue backlog census carried by LoopInfo.
	QueueDepths = vm.QueueDepths
)

// Depths returns the current per-queue backlog. Probes receive the same
// census in LoopInfo; this accessor serves pull-style consumers.
func (l *Loop) Depths() QueueDepths {
	return QueueDepths{
		NextTick:  l.nextTickQ.len(),
		Promise:   l.promiseQ.len(),
		Timer:     l.activeTimers,
		IO:        l.io.Len(),
		Immediate: l.activeImmediate,
		Close:     l.closeQ.len(),
	}
}
