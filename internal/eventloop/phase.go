// Package eventloop implements a deterministic simulation of the Node.js
// event loop: the phase machine of the paper's Fig. 2 (main → microtasks →
// timers → I/O poll → immediates → close handlers), the two microtask
// queues with nextTick priority over promise jobs, a virtual clock, and
// probe points announcing every callback dispatch and async-API call to
// attached instrumentation hooks.
//
// The loop is single-threaded: all user callbacks, all probe hooks, and
// all API calls run on the goroutine that called Run. Determinism comes
// from the virtual clock — time only advances via explicit Work calls and
// idle jumps to the next scheduled event — so a given program always
// produces the same Async Graph.
package eventloop

// Phase names the event-loop phase a callback executes in. These are the
// tick types of the Async Graph ("t3:io", "t2:nextTick", ...).
type Phase string

// Event-loop phases, in dispatch order within one loop iteration. The two
// microtask phases are drained between any other phases (after every
// top-level callback), with nextTick taking priority over promise jobs.
const (
	PhaseMain      Phase = "main"
	PhaseNextTick  Phase = "nextTick"
	PhasePromise   Phase = "promise"
	PhaseTimer     Phase = "timer"
	PhaseIO        Phase = "io"
	PhaseImmediate Phase = "immediate"
	PhaseClose     Phase = "close"
)

// IsMicro reports whether the phase is one of the two microtask phases.
func (p Phase) IsMicro() bool { return p == PhaseNextTick || p == PhasePromise }

// AllPhases lists every phase in dispatch order, for tools that iterate
// over phase kinds.
var AllPhases = []Phase{
	PhaseMain, PhaseNextTick, PhasePromise,
	PhaseTimer, PhaseIO, PhaseImmediate, PhaseClose,
}
