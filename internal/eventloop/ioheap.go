package eventloop

import (
	"container/heap"
	"time"

	"asyncg/internal/vm"
)

// ioEvent is an external event that becomes deliverable at a virtual
// time; the I/O poll phase dispatches events whose readyAt has passed.
// The simulated network and file-system layers schedule these. disp
// backs task.dispatch for events scheduled via ScheduleIOKeyedDispatch,
// so a pooled event carries its dispatch inline.
type ioEvent struct {
	task
	readyAt time.Duration
	seq     uint64
	// key is the independence key for partial-order reduction: events
	// with distinct non-zero keys touch disjoint simulation state, so a
	// poll batch of such events commutes. 0 (the default) opts out.
	key  uint64
	disp vm.Dispatch
}

// ioHeap orders events by (readyAt, seq).
type ioHeap []*ioEvent

func (h ioHeap) Len() int { return len(h) }

func (h ioHeap) Less(i, j int) bool {
	if h[i].readyAt != h[j].readyAt {
		return h[i].readyAt < h[j].readyAt
	}
	return h[i].seq < h[j].seq
}

func (h ioHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }

func (h *ioHeap) Push(x any) { *h = append(*h, x.(*ioEvent)) }

func (h *ioHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

func (h ioHeap) peek() *ioEvent {
	if len(h) == 0 {
		return nil
	}
	return h[0]
}

func (h *ioHeap) add(e *ioEvent)      { heap.Push(h, e) }
func (h *ioHeap) removeMin() *ioEvent { return heap.Pop(h).(*ioEvent) }
