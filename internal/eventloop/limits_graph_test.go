package eventloop_test

// External-package tests for the loop's limit paths with an Async
// Graph builder attached: when a run is cut short by the tick limit,
// the virtual-time limit, or StopOnUncaught, the partial graph built
// so far stays observable — the tool's answer to "what was the loop
// doing when we killed it".

import (
	"errors"
	"testing"
	"time"

	"asyncg/internal/asyncgraph"
	"asyncg/internal/eventloop"
	"asyncg/internal/loc"
	"asyncg/internal/vm"
)

// buildRun executes program on a fresh loop with a graph builder
// attached and returns the run error and the partial graph.
func buildRun(t *testing.T, opts eventloop.Options, program func(l *eventloop.Loop)) (error, *asyncgraph.Graph) {
	t.Helper()
	l := eventloop.New(opts)
	b := asyncgraph.NewBuilder(asyncgraph.DefaultConfig())
	l.Probes().Attach(b)
	main := vm.NewFunc("main", func([]vm.Value) vm.Value {
		program(l)
		return vm.Undefined
	})
	err := l.Run(main)
	l.Probes().Detach(b)
	return err, b.Graph()
}

func countKind(g *asyncgraph.Graph, k asyncgraph.NodeKind) int {
	n := 0
	for _, node := range g.Nodes {
		if node.Kind == k {
			n++
		}
	}
	return n
}

func TestTickLimitLeavesPendingMicrotasksAndPartialGraph(t *testing.T) {
	// A self-rescheduling nextTick chain hits the tick limit with work
	// still queued: more callback registrations (CR) than executions
	// (CE) in the partial graph.
	var reschedule *vm.Function
	var l0 *eventloop.Loop
	reschedule = vm.NewFunc("spin", func([]vm.Value) vm.Value {
		l0.NextTick(loc.Here(), reschedule)
		return vm.Undefined
	})
	err, g := buildRun(t, eventloop.Options{TickLimit: 10}, func(l *eventloop.Loop) {
		l0 = l
		l.NextTick(loc.Here(), reschedule)
	})
	if !errors.Is(err, eventloop.ErrTickLimit) {
		t.Fatalf("err = %v, want ErrTickLimit", err)
	}
	cr, ce := countKind(g, asyncgraph.CR), countKind(g, asyncgraph.CE)
	if ce == 0 {
		t.Fatal("no callback executions recorded before the limit")
	}
	if cr <= ce {
		t.Fatalf("expected pending registrations: CR=%d CE=%d", cr, ce)
	}
	if len(g.Ticks) == 0 {
		t.Fatal("no ticks committed to the partial graph")
	}
}

func TestTimeLimitLeavesPartialGraph(t *testing.T) {
	// Each timer callback burns 30ms of virtual CPU and re-arms itself;
	// the 100ms budget stops the run after a few firings.
	fired := 0
	var rearm *vm.Function
	var l0 *eventloop.Loop
	rearm = vm.NewFunc("tick", func([]vm.Value) vm.Value {
		fired++
		l0.Work(30 * time.Millisecond)
		l0.SetTimeout(loc.Here(), rearm, time.Millisecond)
		return vm.Undefined
	})
	err, g := buildRun(t, eventloop.Options{TimeLimit: 100 * time.Millisecond}, func(l *eventloop.Loop) {
		l0 = l
		l.SetTimeout(loc.Here(), rearm, time.Millisecond)
	})
	if !errors.Is(err, eventloop.ErrTimeLimit) {
		t.Fatalf("err = %v, want ErrTimeLimit", err)
	}
	if fired == 0 || fired > 10 {
		t.Fatalf("fired %d times under a 100ms budget of 30ms callbacks", fired)
	}
	if countKind(g, asyncgraph.CE) < fired {
		t.Fatalf("graph lost executions: CE=%d, fired=%d", countKind(g, asyncgraph.CE), fired)
	}
}

func TestStopOnUncaughtTruncatesGraphAtTheCrash(t *testing.T) {
	// Two timers; the first throws. With StopOnUncaught the second never
	// executes, but its registration is already in the graph.
	ranSecond := false
	err, g := buildRun(t, eventloop.Options{StopOnUncaught: true}, func(l *eventloop.Loop) {
		l.SetTimeout(loc.Here(), vm.NewFunc("boom", func([]vm.Value) vm.Value {
			vm.Throw("kaboom")
			return vm.Undefined
		}), time.Millisecond)
		l.SetTimeout(loc.Here(), vm.NewFunc("after", func([]vm.Value) vm.Value {
			ranSecond = true
			return vm.Undefined
		}), 2*time.Millisecond)
	})
	if err == nil {
		t.Fatal("StopOnUncaught run returned nil error")
	}
	if errors.Is(err, eventloop.ErrTickLimit) || errors.Is(err, eventloop.ErrTimeLimit) {
		t.Fatalf("unexpected limit error: %v", err)
	}
	if ranSecond {
		t.Fatal("callback ran after the uncaught exception")
	}
	if cr := countKind(g, asyncgraph.CR); cr < 2 {
		t.Fatalf("second timer's registration missing from partial graph: CR=%d", cr)
	}

	// Default behaviour: the loop keeps going and the error is only
	// recorded, so the second callback executes.
	ranSecond = false
	l := eventloop.New(eventloop.Options{})
	main := vm.NewFunc("main", func([]vm.Value) vm.Value {
		l.SetTimeout(loc.Here(), vm.NewFunc("boom", func([]vm.Value) vm.Value {
			vm.Throw("kaboom")
			return vm.Undefined
		}), time.Millisecond)
		l.SetTimeout(loc.Here(), vm.NewFunc("after", func([]vm.Value) vm.Value {
			ranSecond = true
			return vm.Undefined
		}), 2*time.Millisecond)
		return vm.Undefined
	})
	if err := l.Run(main); err != nil {
		t.Fatalf("default run failed: %v", err)
	}
	if !ranSecond {
		t.Fatal("default run skipped the second callback")
	}
	if got := l.Uncaught(); len(got) != 1 {
		t.Fatalf("uncaught count = %d", len(got))
	}
}
