// Package experiments implements the paper's evaluation harness (§VII):
// the AcmeAir overhead measurement of Fig. 6(a) — server throughput with
// AsyncG disabled, tracking everything but promises, and tracking
// everything — and the per-request async-API usage of Fig. 6(b), plus
// the Table II capability matrix. The same entry points back the
// regeneration binary (cmd/acmeair-bench) and the root bench suite.
package experiments

import (
	"fmt"
	"io"
	"time"

	"asyncg/internal/acmeair"
	"asyncg/internal/asyncgraph"
	"asyncg/internal/detect"
	"asyncg/internal/eventloop"
	"asyncg/internal/instrument"
	"asyncg/internal/mongosim"
	"asyncg/internal/netio"
	"asyncg/internal/trace"
	"asyncg/internal/vm"
	"asyncg/internal/workload"
)

// Setting names one Fig. 6(a) configuration, matching the artifact's
// log names.
type Setting string

// The three Fig. 6(a) settings.
const (
	Baseline    Setting = "baseline"    // AsyncG disabled
	NoPromise   Setting = "nopromise"   // AsyncG without promise tracking
	WithPromise Setting = "withpromise" // full AsyncG
)

// Settings lists the Fig. 6(a) configurations in presentation order.
var Settings = []Setting{Baseline, NoPromise, WithPromise}

// LoadSpec parameterizes one benchmark run.
type LoadSpec struct {
	Requests int
	Clients  int
	Seed     int64
	Data     acmeair.DataSpec
}

// DefaultLoad is a laptop-scale workload.
func DefaultLoad() LoadSpec {
	return LoadSpec{
		Requests: 2000,
		Clients:  16,
		Seed:     1,
		Data:     acmeair.DefaultDataSpec(),
	}
}

// Fig6aRow is one measured configuration.
type Fig6aRow struct {
	Setting    Setting
	Requests   int
	Failed     int
	Elapsed    time.Duration // wall-clock time of the run
	Throughput float64       // requests per wall-clock second
	Slowdown   float64       // relative to the baseline row
	// AvgLatency and P95Latency are per-request *virtual-time*
	// latencies; identical across settings by construction (the
	// instrumentation costs wall-clock time, not simulated time), so
	// they sanity-check that the tool does not perturb the simulation.
	AvgLatency time.Duration
	P95Latency time.Duration
}

// RunSetting executes one AcmeAir run under the given setting and
// returns the measured row (Slowdown unset) plus the counter when one
// was attached.
func RunSetting(setting Setting, load LoadSpec) (Fig6aRow, error) {
	loop := eventloop.New(eventloop.Options{TickLimit: 100_000_000})
	switch setting {
	case Baseline:
		// No hooks: probes cost one branch per site.
	case NoPromise:
		cfg := asyncgraph.DefaultConfig()
		cfg.Promises = false
		cfg.ChainAnalysis = false
		b := asyncgraph.NewBuilder(cfg)
		d := detect.DefaultConfig()
		d.Promises = false
		loop.Probes().Attach(b)
		loop.Probes().Attach(detect.NewAnalyzer(b, d))
	case WithPromise:
		b := asyncgraph.NewBuilder(asyncgraph.DefaultConfig())
		loop.Probes().Attach(b)
		loop.Probes().Attach(detect.NewAnalyzer(b, detect.DefaultConfig()))
	default:
		return Fig6aRow{}, fmt.Errorf("experiments: unknown setting %q", setting)
	}

	net := netio.New(loop, netio.Options{})
	db := mongosim.New(loop, mongosim.Options{})
	acmeair.LoadSampleData(db, load.Data)
	app := acmeair.New(loop, net, db, acmeair.Config{UsePromises: true})
	driver := workload.NewDriver(net, workload.Options{
		Port:     app.Port(),
		Clients:  load.Clients,
		Requests: load.Requests,
		Seed:     load.Seed,
	})
	main := vm.NewFuncAt("benchMain", locHere(), func([]vm.Value) vm.Value {
		if err := app.Listen(locHere()); err != nil {
			panic(err)
		}
		driver.Start()
		return vm.Undefined
	})
	start := time.Now()
	if err := loop.Run(main); err != nil {
		return Fig6aRow{}, fmt.Errorf("experiments: %s run: %w", setting, err)
	}
	elapsed := time.Since(start)
	stats := driver.Stats()
	if stats.Completed != load.Requests {
		return Fig6aRow{}, fmt.Errorf("experiments: %s completed %d/%d requests",
			setting, stats.Completed, load.Requests)
	}
	return Fig6aRow{
		Setting:    setting,
		Requests:   stats.Completed,
		Failed:     stats.Failed,
		Elapsed:    elapsed,
		Throughput: float64(stats.Completed) / elapsed.Seconds(),
		AvgLatency: stats.AvgLatency(),
		P95Latency: stats.Percentile(95),
	}, nil
}

// RunFig6a measures all three settings and fills in slowdowns relative
// to the baseline.
func RunFig6a(load LoadSpec) ([]Fig6aRow, error) {
	rows := make([]Fig6aRow, 0, len(Settings))
	for _, s := range Settings {
		row, err := RunSetting(s, load)
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	base := rows[0].Throughput
	for i := range rows {
		if rows[i].Throughput > 0 {
			rows[i].Slowdown = base / rows[i].Throughput
		}
	}
	return rows, nil
}

// Fig6bRow is the per-request async-API usage of Fig. 6(b).
type Fig6bRow struct {
	Requests int
	NextTick float64 // executions per client request (paper: 8.70)
	Emitter  float64 // (paper: 4.31)
	Promise  float64 // (paper: 1.31)
}

// RunFig6b drives AcmeAir with the usage counter attached.
func RunFig6b(load LoadSpec) (Fig6bRow, error) {
	row, _, _, err := RunFig6bDetailed(load)
	return row, err
}

// RunFig6bDetailed drives AcmeAir with both the Fig. 6(b) usage counter
// and the trace metrics registry attached, returning the row plus the
// snapshot and the raw counter so callers can cross-validate the two
// measurement paths (their per-API execution counts must agree exactly)
// or print the full metrics report next to the figure.
func RunFig6bDetailed(load LoadSpec) (Fig6bRow, *trace.Snapshot, *instrument.Counter, error) {
	loop := eventloop.New(eventloop.Options{TickLimit: 100_000_000})
	counter := instrument.NewCounter()
	loop.Probes().Attach(counter)
	metrics := trace.NewMetrics(loop, trace.MetricsConfig{})
	loop.Probes().Attach(metrics)
	net := netio.New(loop, netio.Options{})
	db := mongosim.New(loop, mongosim.Options{})
	acmeair.LoadSampleData(db, load.Data)
	app := acmeair.New(loop, net, db, acmeair.Config{UsePromises: true})
	driver := workload.NewDriver(net, workload.Options{
		Port:     app.Port(),
		Clients:  load.Clients,
		Requests: load.Requests,
		Seed:     load.Seed,
	})
	main := vm.NewFuncAt("benchMain", locHere(), func([]vm.Value) vm.Value {
		if err := app.Listen(locHere()); err != nil {
			panic(err)
		}
		driver.Start()
		return vm.Undefined
	})
	if err := loop.Run(main); err != nil {
		return Fig6bRow{}, nil, nil, err
	}
	n := float64(driver.Stats().Completed)
	if n == 0 {
		return Fig6bRow{}, nil, nil, fmt.Errorf("experiments: no requests completed")
	}
	row := Fig6bRow{
		Requests: driver.Stats().Completed,
		NextTick: float64(counter.NextTick) / n,
		Emitter:  float64(counter.Emitter) / n,
		Promise:  float64(counter.Promise) / n,
	}
	return row, metrics.Snapshot(), counter, nil
}

// WriteFig6a renders the Fig. 6(a) rows as the harness's table.
func WriteFig6a(w io.Writer, rows []Fig6aRow) {
	fmt.Fprintf(w, "Fig. 6(a) — AcmeAir throughput under AsyncG (paper: nopromise ≈ 2x, withpromise ≈ 10x slower)\n")
	fmt.Fprintf(w, "%-12s %10s %12s %14s %10s %14s\n", "setting", "requests", "elapsed", "req/s", "slowdown", "vlat avg/p95")
	for _, r := range rows {
		fmt.Fprintf(w, "%-12s %10d %12s %14.0f %9.2fx %6s/%s\n",
			r.Setting, r.Requests, r.Elapsed.Round(time.Millisecond), r.Throughput, r.Slowdown,
			r.AvgLatency.Round(10*time.Microsecond), r.P95Latency.Round(10*time.Microsecond))
	}
}

// WriteFig6b renders the Fig. 6(b) row.
func WriteFig6b(w io.Writer, row Fig6bRow) {
	fmt.Fprintf(w, "Fig. 6(b) — async-API callback executions per client request (%d requests)\n", row.Requests)
	fmt.Fprintf(w, "%-10s %10s %10s\n", "nextTick", "emitter", "promise")
	fmt.Fprintf(w, "%-10.2f %10.2f %10.2f\n", row.NextTick, row.Emitter, row.Promise)
	fmt.Fprintf(w, "(paper:    8.70       4.31       1.31)\n")
}
