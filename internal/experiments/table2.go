package experiments

import (
	"fmt"
	"io"
)

// Table2Row is one tool of the paper's related-work comparison
// (Table II).
type Table2Row struct {
	Work         string
	Method       string
	EventLoop    bool
	Emitter      bool
	Promise      bool
	AsyncAwait   bool
	Available    string // "Y", "N", or "/" (not applicable)
	FullCoverage string
	AutoBugs     bool
}

// Table2 reproduces the paper's Table II verbatim; the AsyncG row is
// what this repository implements (every capability is exercised by the
// test suite).
func Table2() []Table2Row {
	return []Table2Row{
		{"Semantics [16]", "Modelling", true, false, false, false, "/", "/", false},
		{"PromiseKeeper [26]", "Dynamic", false, false, true, false, "Y", "N", true},
		{"Radar [10]", "Static", false, true, false, false, "N", "Y", true},
		{"Clematis [22]", "Dynamic", false, false, false, false, "Y", "N", false},
		{"Sahand [12]", "Dynamic", false, false, false, false, "Y", "N", false},
		{"Domino [13]", "Dynamic", false, false, true, false, "N", "N", false},
		{"Jardis [14]", "Dynamic", false, true, true, false, "Y", "Y", false},
		{"AsyncG", "Dynamic", true, true, true, true, "Y", "Y", true},
	}
}

func yn(b bool) string {
	if b {
		return "Y"
	}
	return "N"
}

// WriteTable2 renders the comparison matrix.
func WriteTable2(w io.Writer) {
	fmt.Fprintf(w, "Table II — comparison with related work\n")
	fmt.Fprintf(w, "%-20s %-10s %-10s %-8s %-8s %-12s %-13s %-13s %-9s\n",
		"Work", "Methods", "EventLoop", "Emitter", "Promise", "Async/Await",
		"Availability", "FullCoverage", "AutoBugs")
	for _, r := range Table2() {
		fmt.Fprintf(w, "%-20s %-10s %-10s %-8s %-8s %-12s %-13s %-13s %-9s\n",
			r.Work, r.Method, yn(r.EventLoop), yn(r.Emitter), yn(r.Promise),
			yn(r.AsyncAwait), r.Available, r.FullCoverage, yn(r.AutoBugs))
	}
}
