package experiments

import (
	"strings"
	"testing"

	"asyncg/internal/acmeair"
)

// smallLoad keeps unit tests fast; benchmarks use DefaultLoad.
func smallLoad() LoadSpec {
	return LoadSpec{
		Requests: 300,
		Clients:  8,
		Seed:     7,
		Data:     acmeair.DataSpec{Customers: 20, FlightsPerSegment: 3},
	}
}

func TestFig6aShape(t *testing.T) {
	if testing.Short() {
		t.Skip("overhead measurement in -short mode")
	}
	rows, err := RunFig6a(smallLoad())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	base, nop, full := rows[0], rows[1], rows[2]
	if base.Setting != Baseline || nop.Setting != NoPromise || full.Setting != WithPromise {
		t.Fatalf("settings out of order: %+v", rows)
	}
	for _, r := range rows {
		if r.Failed != 0 {
			t.Fatalf("%s: %d failed requests", r.Setting, r.Failed)
		}
	}
	// The paper's shape: full tracking is the slowest, the no-promise
	// setting in between. Wall-clock noise at this scale can blur
	// baseline-vs-nopromise, but full tracking must cost measurably
	// more than the baseline.
	if full.Throughput >= base.Throughput {
		t.Errorf("withpromise (%.0f req/s) not slower than baseline (%.0f req/s)",
			full.Throughput, base.Throughput)
	}
	if full.Throughput > nop.Throughput {
		t.Errorf("withpromise (%.0f req/s) faster than nopromise (%.0f req/s)",
			full.Throughput, nop.Throughput)
	}
	t.Logf("baseline=%.0f req/s nopromise=%.0f (%.2fx) withpromise=%.0f (%.2fx)",
		base.Throughput, nop.Throughput, nop.Slowdown, full.Throughput, full.Slowdown)
}

func TestFig6bMatchesPaperShape(t *testing.T) {
	row, err := RunFig6b(smallLoad())
	if err != nil {
		t.Fatal(err)
	}
	if !(row.NextTick > row.Emitter && row.Emitter > row.Promise) {
		t.Fatalf("ordering: nextTick=%.2f emitter=%.2f promise=%.2f", row.NextTick, row.Emitter, row.Promise)
	}
	// Magnitudes within a factor ~2 of the paper's 8.70 / 4.31 / 1.31.
	within := func(got, paper float64) bool { return got > paper/2 && got < paper*2 }
	if !within(row.NextTick, 8.70) || !within(row.Emitter, 4.31) || !within(row.Promise, 1.31) {
		t.Fatalf("magnitudes off: nextTick=%.2f emitter=%.2f promise=%.2f", row.NextTick, row.Emitter, row.Promise)
	}
	t.Logf("nextTick=%.2f emitter=%.2f promise=%.2f (paper: 8.70 / 4.31 / 1.31)", row.NextTick, row.Emitter, row.Promise)
}

func TestWriteHelpers(t *testing.T) {
	var sb strings.Builder
	WriteFig6a(&sb, []Fig6aRow{{Setting: Baseline, Requests: 10, Throughput: 100, Slowdown: 1}})
	if !strings.Contains(sb.String(), "baseline") {
		t.Fatalf("fig6a output: %s", sb.String())
	}
	sb.Reset()
	WriteFig6b(&sb, Fig6bRow{Requests: 10, NextTick: 8, Emitter: 4, Promise: 1})
	if !strings.Contains(sb.String(), "nextTick") {
		t.Fatalf("fig6b output: %s", sb.String())
	}
	sb.Reset()
	WriteTable2(&sb)
	out := sb.String()
	if !strings.Contains(out, "AsyncG") || !strings.Contains(out, "Radar") {
		t.Fatalf("table2 output: %s", out)
	}
	if strings.Count(out, "\n") != 10 { // header x2 + 8 rows
		t.Fatalf("table2 rows: %q", out)
	}
}

func TestRunSettingRejectsUnknown(t *testing.T) {
	if _, err := RunSetting(Setting("bogus"), smallLoad()); err == nil {
		t.Fatal("unknown setting accepted")
	}
}

// TestFig6bMetricsParity is the acceptance check for the metrics
// registry: on the same AcmeAir run, its per-API execution counts must
// exactly equal the Fig. 6(b) instrument.Counter — two independent
// probes measuring the same population.
func TestFig6bMetricsParity(t *testing.T) {
	row, snapshot, counter, err := RunFig6bDetailed(smallLoad())
	if err != nil {
		t.Fatal(err)
	}
	if row.Requests == 0 {
		t.Fatal("no requests completed")
	}
	if snapshot == nil || counter == nil {
		t.Fatal("detailed run lost the snapshot or counter")
	}
	got := snapshot.APIExecutions()
	if len(got) != len(counter.ByAPI) {
		t.Errorf("metrics track %d APIs, counter tracks %d", len(got), len(counter.ByAPI))
	}
	for api, want := range counter.ByAPI {
		if got[api] != want {
			t.Errorf("API %q: metrics count %d, counter %d", api, got[api], want)
		}
	}
	for api := range got {
		if _, ok := counter.ByAPI[api]; !ok {
			t.Errorf("metrics track %q, counter does not", api)
		}
	}
	if snapshot.Executions != counter.Executions {
		t.Errorf("total executions: metrics %d, counter %d", snapshot.Executions, counter.Executions)
	}
	// AcmeAir is purely I/O-driven: no timers should fire at all.
	if snapshot.TimerLag.Count != 0 {
		t.Errorf("unexpected timer fires on AcmeAir: %d", snapshot.TimerLag.Count)
	}
	if snapshot.Iterations == 0 {
		t.Error("no loop iterations observed")
	}
}
