package experiments

import "asyncg/internal/loc"

// locHere captures the caller's location for benchmark-internal
// registrations (the label content is irrelevant for measurements).
func locHere() loc.Loc { return loc.Caller(0) }
