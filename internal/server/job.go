package server

import (
	"bytes"
	"context"
	"errors"
	"sync"
	"time"

	"asyncg/internal/explore"
)

// jobStatus is the lifecycle state of a submitted analysis job.
type jobStatus string

// Job lifecycle: queued → running → one of {done, cancelled, failed}.
// A queued job can jump straight to cancelled (DELETE before a worker
// picks it up, or a hard-stop during drain).
const (
	statusQueued    jobStatus = "queued"
	statusRunning   jobStatus = "running"
	statusDone      jobStatus = "done"
	statusCancelled jobStatus = "cancelled"
	statusFailed    jobStatus = "failed"
)

// jobSpec is the POST /v1/jobs request body. Zero values defer to the
// explore package defaults (32 runs, random strategy, GOMAXPROCS
// workers), mirroring the asyncg explore flags.
type jobSpec struct {
	// Target is a registry spec resolved through explore.TargetByName
	// (see GET /v1/targets).
	Target string `json:"target"`
	// Strategy is random, delay, exhaustive, or coverage (empty = random).
	Strategy string `json:"strategy,omitempty"`
	// Runs bounds the number of schedules (0 = 32).
	Runs int `json:"runs,omitempty"`
	// Seed feeds the random/delay strategies.
	Seed int64 `json:"seed,omitempty"`
	// Workers is the per-job schedule concurrency (0 = GOMAXPROCS);
	// results are identical for any value.
	Workers int `json:"workers,omitempty"`
	// DelayBound caps non-default picks for the delay strategy (0 = 2).
	DelayBound int `json:"delayBound,omitempty"`
	// POR enables partial-order reduction for the exhaustive strategy:
	// sibling branches proven equivalent by independence metadata are
	// pruned (Result.PrunedPicks counts the skipped picks).
	POR bool `json:"por,omitempty"`
	// Kinds restricts the perturbed choice kinds, comma-separated like
	// the CLI flag (empty = the default kinds).
	Kinds string `json:"kinds,omitempty"`
	// TimeoutMs overrides the server's default per-job deadline; capped
	// at the server default when that is set.
	TimeoutMs int64 `json:"timeoutMs,omitempty"`
	// NoMetrics opts this job out of per-run metrics aggregation (on by
	// default — the snapshots back GET /metrics).
	NoMetrics bool `json:"noMetrics,omitempty"`
	// Shard executes one deterministic slice of a larger exploration
	// instead of a standalone walk: the shard spec carries the strategy,
	// seed, global index window and strategy payload (corpus snapshot or
	// prefix list). The fleet coordinator's job shape. Shard jobs take
	// their strategy parameters from the spec — the outer strategy, seed,
	// delayBound and por fields must stay unset — and runs, when given,
	// must match the shard's window.
	Shard *explore.ShardSpec `json:"shard,omitempty"`
	// Feedback copies each run's choice-point record (domain sizes,
	// independence flags) into its stream line (explore.WithRunFeedback) —
	// how a fleet coordinator expands the exhaustive frontier remotely.
	Feedback bool `json:"feedback,omitempty"`
	// Chains attaches async causal chains to the classified warnings
	// (explore.WithChains): the explore-warning stream lines and the
	// /v1/jobs/{id}/result warnings carry a "chain" field, additively.
	// Fleet shard jobs leave this unset — the coordinator attaches
	// chains once, after the merge.
	Chains bool `json:"chains,omitempty"`
	// DebugStacks runs every schedule under creation-stack capture
	// (explore.WithDebugStacks), so chain hops carry the Go call site
	// that created each node. Measurable overhead; see EXPERIMENTS.md.
	DebugStacks bool `json:"debugStacks,omitempty"`
}

// job is one submitted exploration: the resolved target and options,
// the live NDJSON stream, and the terminal result.
type job struct {
	id      string
	spec    jobSpec
	target  explore.Target
	opts    []explore.Option
	timeout time.Duration

	// ctx is derived from the server's base context at submission, so a
	// queued job is cancellable (DELETE, hard-stop) before it runs.
	ctx    context.Context
	cancel context.CancelFunc

	stream *broadcaster
	done   chan struct{} // closed when the job reaches a terminal status

	mu       sync.Mutex
	status   jobStatus
	errMsg   string
	result   *explore.Result
	created  time.Time
	started  time.Time
	finished time.Time
}

// view is the JSON representation of a job in API responses.
type view struct {
	ID       string            `json:"id"`
	Target   string            `json:"target"`
	Status   jobStatus         `json:"status"`
	Error    string            `json:"error,omitempty"`
	Runs     int               `json:"runs,omitempty"`
	Created  time.Time         `json:"created"`
	Started  *time.Time        `json:"started,omitempty"`
	Finished *time.Time        `json:"finished,omitempty"`
	Links    map[string]string `json:"links"`
	Result   *explore.Result   `json:"result,omitempty"`
}

// snapshotView renders the job's current state; withResult embeds the
// full Result (single-job GETs only — list responses stay small).
func (j *job) snapshotView(withResult bool) view {
	j.mu.Lock()
	defer j.mu.Unlock()
	v := view{
		ID:      j.id,
		Target:  j.target.Name,
		Status:  j.status,
		Error:   j.errMsg,
		Created: j.created,
		Links: map[string]string{
			"self":   "/v1/jobs/" + j.id,
			"stream": "/v1/jobs/" + j.id + "/stream",
			"result": "/v1/jobs/" + j.id + "/result",
		},
	}
	if !j.started.IsZero() {
		t := j.started
		v.Started = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		v.Finished = &t
	}
	if j.result != nil {
		v.Runs = len(j.result.Runs)
		if withResult {
			v.Result = j.result
		}
	}
	return v
}

// terminal reports whether the job has finished (in any way).
func (j *job) terminal() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.status == statusDone || j.status == statusCancelled || j.status == statusFailed
}

// finish records the terminal status derived from the exploration's
// error: nil → done, context errors → cancelled (the partial result is
// kept), anything else (including a recovered panic) → failed.
func (j *job) finish(res *explore.Result, err error, now time.Time) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.result = res
	j.finished = now
	switch {
	case err == nil:
		j.status = statusDone
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		j.status = statusCancelled
		j.errMsg = err.Error()
	default:
		j.status = statusFailed
		j.errMsg = err.Error()
	}
}

// errClosedStream guards against writes after the job finished; the
// engine never does this, so it is purely defensive.
var errClosedStream = errors.New("server: write to closed job stream")

// broadcaster is the in-memory NDJSON fan-out for one job: the engine
// writes complete lines (the explore stream flushes per line), and any
// number of HTTP subscribers replay the buffer from the top and then
// follow live until the stream closes or they disconnect.
type broadcaster struct {
	mu     sync.Mutex
	buf    bytes.Buffer
	closed bool
	notify chan struct{} // closed and replaced on every write
}

func newBroadcaster() *broadcaster {
	return &broadcaster{notify: make(chan struct{})}
}

// Write appends one or more complete NDJSON lines and wakes subscribers.
func (b *broadcaster) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return 0, errClosedStream
	}
	n, err := b.buf.Write(p)
	close(b.notify)
	b.notify = make(chan struct{})
	return n, err
}

// Close ends the stream; subscribers drain whatever is buffered and
// return. Idempotent.
func (b *broadcaster) Close() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if !b.closed {
		b.closed = true
		close(b.notify)
		b.notify = make(chan struct{})
	}
}

// snapshot returns a copy of the bytes past off, whether the stream has
// closed, and a channel that signals the next write. The copy keeps
// subscribers independent of the writer's buffer growth.
func (b *broadcaster) snapshot(off int) (data []byte, closed bool, wait <-chan struct{}) {
	b.mu.Lock()
	defer b.mu.Unlock()
	all := b.buf.Bytes()
	if off < len(all) {
		data = append([]byte(nil), all[off:]...)
	}
	return data, b.closed, b.notify
}

// subscribe streams the job's NDJSON to w from the beginning, following
// live output until the stream closes or ctx (the client's request
// context) is done. flush is called after every chunk so lines reach
// slow consumers promptly.
func (b *broadcaster) subscribe(ctx context.Context, w interface{ Write([]byte) (int, error) }, flush func()) error {
	off := 0
	for {
		data, closed, wait := b.snapshot(off)
		if len(data) > 0 {
			if _, err := w.Write(data); err != nil {
				return err
			}
			if flush != nil {
				flush()
			}
			off += len(data)
			continue // re-snapshot: more may have arrived while writing
		}
		if closed {
			return nil
		}
		select {
		case <-wait:
		case <-ctx.Done():
			return ctx.Err()
		}
	}
}
