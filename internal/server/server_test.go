package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"asyncg"
	"asyncg/internal/eventloop"
	"asyncg/internal/explore"
)

// spinTarget never finishes a run on its own: an endless setImmediate
// chain under an absurd tick limit. Jobs built on it only end through
// cancellation (DELETE, deadline, disconnect, hard-stop), which makes
// queue pressure and drain behavior deterministic in tests.
func spinTarget(string) (explore.Target, error) {
	return explore.Target{
		Name: "spin",
		Run: func(extra ...asyncg.Option) (*asyncg.Report, error) {
			opts := append([]asyncg.Option{asyncg.WithLoop(eventloop.Options{TickLimit: 1 << 40})}, extra...)
			s := asyncg.New(opts...)
			return s.Run(func(ctx *asyncg.Context) {
				var spin *asyncg.Function
				spin = asyncg.F("spin", func(args []asyncg.Value) asyncg.Value {
					ctx.SetImmediate(spin)
					return asyncg.Undefined
				})
				ctx.SetImmediate(spin)
			})
		},
	}, nil
}

// panicTarget blows up mid-run; the worker must survive it.
func panicTarget(string) (explore.Target, error) {
	return explore.Target{
		Name: "panic",
		Run: func(extra ...asyncg.Option) (*asyncg.Report, error) {
			panic("deliberate test panic")
		},
	}, nil
}

// leakCheck fails the test if the goroutine count has not returned to
// its starting level by the end; worker unwinding gets a grace period.
func leakCheck(t *testing.T) {
	t.Helper()
	before := runtime.NumGoroutine()
	t.Cleanup(func() {
		deadline := time.Now().Add(5 * time.Second)
		for {
			runtime.GC()
			if n := runtime.NumGoroutine(); n <= before {
				return
			}
			if time.Now().After(deadline) {
				buf := make([]byte, 1<<20)
				n := runtime.Stack(buf, true)
				t.Fatalf("goroutine leak: %d before, %d after\n%s", before, runtime.NumGoroutine(), buf[:n])
			}
			time.Sleep(20 * time.Millisecond)
		}
	})
}

func postJob(t *testing.T, ts *httptest.Server, spec string) (int, view) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(spec))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var v view
	if resp.StatusCode == http.StatusAccepted || resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
			t.Fatalf("decoding job view: %v", err)
		}
	}
	return resp.StatusCode, v
}

func getJSON(t *testing.T, url string, out any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("GET %s: %v", url, err)
		}
	}
	return resp.StatusCode
}

// waitStatus polls a job until it reaches a terminal status.
func waitStatus(t *testing.T, ts *httptest.Server, id string, want jobStatus) view {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for {
		var v view
		if code := getJSON(t, ts.URL+"/v1/jobs/"+id, &v); code != http.StatusOK {
			t.Fatalf("GET job %s: status %d", id, code)
		}
		if v.Status == want {
			return v
		}
		if v.Status == statusDone || v.Status == statusFailed || v.Status == statusCancelled {
			t.Fatalf("job %s reached %s, want %s (error: %s)", id, v.Status, want, v.Error)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck at %s, want %s", id, v.Status, want)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestJobLifecycle: submit a real case-study exploration, watch it
// finish, and check the service's Result JSON is byte-identical to the
// same exploration run directly through the options API.
func TestJobLifecycle(t *testing.T) {
	leakCheck(t)
	s := New(Config{QueueSize: 4, Workers: 2})
	defer s.Shutdown(context.Background())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	code, v := postJob(t, ts, `{"target":"case:SO-17894000","runs":8,"seed":3}`)
	if code != http.StatusAccepted {
		t.Fatalf("POST: status %d", code)
	}
	if v.ID == "" || v.Status != statusQueued {
		t.Fatalf("POST view: %+v", v)
	}
	waitStatus(t, ts, v.ID, statusDone)

	resp, err := http.Get(ts.URL + "/v1/jobs/" + v.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	got, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET result: status %d: %s", resp.StatusCode, got)
	}

	tg, err := explore.TargetByName("case:SO-17894000")
	if err != nil {
		t.Fatal(err)
	}
	res, err := explore.Run(context.Background(), tg,
		explore.WithRuns(8), explore.WithSeed(3), explore.WithRunMetrics())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	enc.Encode(res)
	if !bytes.Equal(bytes.TrimSpace(got), bytes.TrimSpace(buf.Bytes())) {
		t.Errorf("service result differs from direct explore.Run:\n service: %s\n direct:  %s", got, buf.Bytes())
	}
}

// TestJobChains: a job submitted with "chains" must return a result
// whose witnessed warning stats carry their async causal chains and
// replay tokens, byte-identical to a direct explore.Run with WithChains.
func TestJobChains(t *testing.T) {
	leakCheck(t)
	s := New(Config{QueueSize: 4, Workers: 2})
	defer s.Shutdown(context.Background())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	code, v := postJob(t, ts, `{"target":"case:fig4","runs":4,"seed":1,"chains":true}`)
	if code != http.StatusAccepted {
		t.Fatalf("POST: status %d", code)
	}
	waitStatus(t, ts, v.ID, statusDone)

	var got explore.Result
	if code := getJSON(t, ts.URL+"/v1/jobs/"+v.ID+"/result", &got); code != http.StatusOK {
		t.Fatalf("GET result: status %d", code)
	}
	chained := 0
	for _, ws := range got.Warnings {
		if ws.Witness == "" {
			continue
		}
		chained++
		if len(ws.Chain) == 0 {
			t.Errorf("%s: witnessed warning in service result has no chain", ws.Key)
		}
	}
	if chained == 0 {
		t.Fatal("result has no witnessed warnings; chains never exercised")
	}
}

// TestStreamNDJSON: the stream endpoint replays every explore-run line
// and ends with the explore-summary — the same format the CLI writes.
func TestStreamNDJSON(t *testing.T) {
	leakCheck(t)
	s := New(Config{QueueSize: 4, Workers: 1})
	defer s.Shutdown(context.Background())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	_, v := postJob(t, ts, `{"target":"case:SO-17894000","runs":6,"seed":1}`)
	resp, err := http.Get(ts.URL + "/v1/jobs/" + v.ID + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("stream Content-Type = %q", ct)
	}
	runs, lastKind := 0, ""
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var line struct {
			Kind string `json:"kind"`
		}
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		if line.Kind == explore.KindRun {
			runs++
		}
		lastKind = line.Kind
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if runs != 6 {
		t.Errorf("streamed %d run lines, want 6", runs)
	}
	if lastKind != explore.KindSummary {
		t.Errorf("stream ended with kind %q, want %q", lastKind, explore.KindSummary)
	}
}

// TestQueueOverflow is the acceptance load test: 200 concurrent
// submissions against queue capacity 8 and a single worker pinned by
// never-ending jobs. No submission may block; the overflow must be
// refused with 429 + Retry-After; everything cancels cleanly afterward.
func TestQueueOverflow(t *testing.T) {
	leakCheck(t)
	s := New(Config{QueueSize: 8, Workers: 1, LookupTarget: spinTarget})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	const submissions = 200
	var (
		mu       sync.Mutex
		accepted []string
		rejected int
	)
	var wg sync.WaitGroup
	for i := 0; i < submissions; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/v1/jobs", "application/json",
				strings.NewReader(`{"target":"spin","runs":2}`))
			if err != nil {
				t.Error(err)
				return
			}
			defer resp.Body.Close()
			switch resp.StatusCode {
			case http.StatusAccepted:
				var v view
				json.NewDecoder(resp.Body).Decode(&v)
				mu.Lock()
				accepted = append(accepted, v.ID)
				mu.Unlock()
			case http.StatusTooManyRequests:
				if resp.Header.Get("Retry-After") == "" {
					t.Error("429 without Retry-After")
				}
				mu.Lock()
				rejected++
				mu.Unlock()
			default:
				t.Errorf("unexpected status %d", resp.StatusCode)
			}
		}()
	}
	wg.Wait()

	if len(accepted)+rejected != submissions {
		t.Fatalf("accepted %d + rejected %d != %d", len(accepted), rejected, submissions)
	}
	// One running + 8 queued must be admitted; with a spinning worker the
	// queue can only drain by cancellation, so acceptance stays close to
	// capacity.
	if len(accepted) < 9 {
		t.Errorf("accepted %d < capacity+1", len(accepted))
	}
	if rejected < submissions-2*(s.cfg.QueueSize+1) {
		t.Errorf("only %d rejections for %d submissions over a full queue", rejected, submissions)
	}

	// Cancel everything; every accepted job must reach cancelled.
	client := &http.Client{}
	for _, id := range accepted {
		req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+id, nil)
		resp, err := client.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}
	for _, id := range accepted {
		waitStatus(t, ts, id, statusCancelled)
	}
	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatalf("Shutdown after cancel-all: %v", err)
	}
}

// TestJobDeadline: a per-job timeoutMs cuts a never-ending job off.
func TestJobDeadline(t *testing.T) {
	leakCheck(t)
	s := New(Config{QueueSize: 2, Workers: 1, LookupTarget: spinTarget})
	defer s.Shutdown(context.Background())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	start := time.Now()
	_, v := postJob(t, ts, `{"target":"spin","runs":2,"timeoutMs":100}`)
	got := waitStatus(t, ts, v.ID, statusCancelled)
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("deadline took %v to fire", elapsed)
	}
	if !strings.Contains(got.Error, "deadline") {
		t.Errorf("cancelled job error = %q, want a deadline error", got.Error)
	}
}

// TestWaitClientDisconnect: in ?wait=1 mode the client connection owns
// the job — dropping it cancels the exploration.
func TestWaitClientDisconnect(t *testing.T) {
	leakCheck(t)
	s := New(Config{QueueSize: 2, Workers: 1, LookupTarget: spinTarget})
	defer s.Shutdown(context.Background())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	reqCtx, cancelReq := context.WithCancel(context.Background())
	req, _ := http.NewRequestWithContext(reqCtx, http.MethodPost, ts.URL+"/v1/jobs?wait=1",
		strings.NewReader(`{"target":"spin","runs":2}`))
	errc := make(chan error, 1)
	go func() {
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			resp.Body.Close()
		}
		errc <- err
	}()

	// Wait for the job to exist and start spinning, then hang up.
	var id string
	deadline := time.Now().Add(5 * time.Second)
	for id == "" {
		var list struct{ Jobs []view }
		getJSON(t, ts.URL+"/v1/jobs", &list)
		if len(list.Jobs) > 0 && list.Jobs[0].Status == statusRunning {
			id = list.Jobs[0].ID
		}
		if time.Now().After(deadline) {
			t.Fatal("job never started")
		}
		time.Sleep(5 * time.Millisecond)
	}
	cancelReq()
	if err := <-errc; err == nil {
		t.Error("request succeeded despite disconnect")
	}
	waitStatus(t, ts, id, statusCancelled)
}

// TestShutdownDrain: a graceful shutdown lets short jobs finish and
// refuses new work with 503.
func TestShutdownDrain(t *testing.T) {
	leakCheck(t)
	s := New(Config{QueueSize: 4, Workers: 2})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	_, v := postJob(t, ts, `{"target":"case:SO-17894000","runs":4}`)
	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	var got view
	getJSON(t, ts.URL+"/v1/jobs/"+v.ID, &got)
	if got.Status != statusDone {
		t.Errorf("drained job status = %s (error %q), want done", got.Status, got.Error)
	}
	if code, _ := postJob(t, ts, `{"target":"case:SO-17894000"}`); code != http.StatusServiceUnavailable {
		t.Errorf("POST during drain: status %d, want 503", code)
	}
	if code := getJSON(t, ts.URL+"/healthz", nil); code != http.StatusServiceUnavailable {
		t.Errorf("healthz during drain: status %d, want 503", code)
	}
}

// TestShutdownHardStop: when the drain deadline expires, outstanding
// never-ending jobs are cancelled rather than waited for, and no worker
// goroutine is left behind.
func TestShutdownHardStop(t *testing.T) {
	leakCheck(t)
	s := New(Config{QueueSize: 4, Workers: 2, LookupTarget: spinTarget})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	_, v1 := postJob(t, ts, `{"target":"spin","runs":2}`)
	_, v2 := postJob(t, ts, `{"target":"spin","runs":2}`)

	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	start := time.Now()
	err := s.Shutdown(ctx)
	if err != context.DeadlineExceeded {
		t.Fatalf("Shutdown = %v, want context.DeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("hard stop took %v", elapsed)
	}
	for _, id := range []string{v1.ID, v2.ID} {
		var got view
		getJSON(t, ts.URL+"/v1/jobs/"+id, &got)
		if got.Status != statusCancelled {
			t.Errorf("job %s after hard stop: %s, want cancelled", id, got.Status)
		}
	}
}

// TestPanicIsolation: a panicking target fails its job but the worker
// pool keeps serving.
func TestPanicIsolation(t *testing.T) {
	leakCheck(t)
	lookup := func(spec string) (explore.Target, error) {
		if spec == "panic" {
			return panicTarget(spec)
		}
		return explore.TargetByName(spec)
	}
	s := New(Config{QueueSize: 4, Workers: 1, LookupTarget: lookup})
	defer s.Shutdown(context.Background())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	_, bad := postJob(t, ts, `{"target":"panic","runs":2}`)
	got := waitStatus(t, ts, bad.ID, statusFailed)
	if !strings.Contains(got.Error, "panicked") {
		t.Errorf("failed job error = %q, want a panic message", got.Error)
	}
	if code := getJSON(t, ts.URL+"/v1/jobs/"+bad.ID+"/result", nil); code != http.StatusInternalServerError {
		t.Errorf("result of failed job: status %d, want 500", code)
	}

	// With workers > 1 the panic fires on a schedule-pool goroutine, not
	// the job's coordinator — it must still fail only the job, never the
	// process (regression: an unrecovered pool panic killed the binary).
	_, bad4 := postJob(t, ts, `{"target":"panic","runs":4,"workers":4}`)
	got4 := waitStatus(t, ts, bad4.ID, statusFailed)
	if !strings.Contains(got4.Error, "panicked") {
		t.Errorf("failed multi-worker job error = %q, want a panic message", got4.Error)
	}

	_, ok := postJob(t, ts, `{"target":"case:SO-17894000","runs":4}`)
	waitStatus(t, ts, ok.ID, statusDone)
}

// TestFinishedJobEviction: terminal jobs beyond MaxFinishedJobs are
// evicted oldest-first — their results and stream buffers released, the
// IDs answering 404 — while newer jobs stay queryable, so a long-lived
// service holds a bounded job table.
func TestFinishedJobEviction(t *testing.T) {
	leakCheck(t)
	s := New(Config{QueueSize: 4, Workers: 1, MaxFinishedJobs: 2})
	defer s.Shutdown(context.Background())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	var ids []string
	for i := 0; i < 4; i++ {
		_, v := postJob(t, ts, `{"target":"case:SO-17894000","runs":2}`)
		waitStatus(t, ts, v.ID, statusDone)
		ids = append(ids, v.ID)
	}

	// Eviction runs just after the terminal status becomes visible, so
	// poll the listing down to the retention bound.
	deadline := time.Now().Add(5 * time.Second)
	for {
		var list struct{ Jobs []view }
		getJSON(t, ts.URL+"/v1/jobs", &list)
		if len(list.Jobs) == 2 {
			if list.Jobs[0].ID != ids[2] || list.Jobs[1].ID != ids[3] {
				t.Fatalf("retained jobs = %s, %s; want the newest two %s, %s",
					list.Jobs[0].ID, list.Jobs[1].ID, ids[2], ids[3])
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job table never shrank to 2 (have %d)", len(list.Jobs))
		}
		time.Sleep(5 * time.Millisecond)
	}
	for _, id := range ids[:2] {
		if code := getJSON(t, ts.URL+"/v1/jobs/"+id, nil); code != http.StatusNotFound {
			t.Errorf("evicted job %s: status %d, want 404", id, code)
		}
	}
	for _, id := range ids[2:] {
		if code := getJSON(t, ts.URL+"/v1/jobs/"+id, nil); code != http.StatusOK {
			t.Errorf("retained job %s: status %d, want 200", id, code)
		}
	}
}

// TestBadSubmissions: validation failures are 400s with a message, not
// accepted jobs.
func TestBadSubmissions(t *testing.T) {
	s := New(Config{QueueSize: 2, Workers: 1})
	defer s.Shutdown(context.Background())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	for _, body := range []string{
		`not json`,
		`{"target":""}`,
		`{"target":"case:no-such-case"}`,
		`{"target":"case:SO-17894000","strategy":"bogus"}`,
		`{"target":"case:SO-17894000","kinds":"bogus-kind"}`,
		`{"target":"case:SO-17894000","runs":-1}`,
	} {
		if code, _ := postJob(t, ts, body); code != http.StatusBadRequest {
			t.Errorf("POST %s: status %d, want 400", body, code)
		}
	}
	if code := getJSON(t, ts.URL+"/v1/jobs/nope", nil); code != http.StatusNotFound {
		t.Errorf("GET unknown job: status %d, want 404", code)
	}
}

// TestTargetsHealthzMetrics covers the discovery and observability
// endpoints end to end: the registry listing, liveness, and the merged
// per-run metrics snapshot after a completed job.
func TestTargetsHealthzMetrics(t *testing.T) {
	leakCheck(t)
	s := New(Config{QueueSize: 4, Workers: 1})
	defer s.Shutdown(context.Background())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	var targets struct{ Targets []explore.TargetInfo }
	if code := getJSON(t, ts.URL+"/v1/targets", &targets); code != http.StatusOK {
		t.Fatalf("GET /v1/targets: %d", code)
	}
	if len(targets.Targets) == 0 || targets.Targets[0].Name != "acmeair" {
		t.Errorf("targets listing: %+v", targets.Targets)
	}

	var health struct {
		Status   string `json:"status"`
		Capacity int    `json:"capacity"`
	}
	if code := getJSON(t, ts.URL+"/healthz", &health); code != http.StatusOK {
		t.Fatalf("GET /healthz: %d", code)
	}
	if health.Status != "ok" || health.Capacity != 4 {
		t.Errorf("healthz: %+v", health)
	}

	_, v := postJob(t, ts, `{"target":"case:SO-17894000","runs":4}`)
	waitStatus(t, ts, v.ID, statusDone)

	var metrics struct {
		Jobs         map[string]int64 `json:"jobs"`
		RunsExplored int64            `json:"runsExplored"`
		Explore      struct {
			Ticks int64 `json:"ticks"`
		} `json:"explore"`
	}
	if code := getJSON(t, ts.URL+"/metrics", &metrics); code != http.StatusOK {
		t.Fatalf("GET /metrics: %d", code)
	}
	if metrics.Jobs["accepted"] != 1 || metrics.Jobs["done"] != 1 {
		t.Errorf("job counters: %+v", metrics.Jobs)
	}
	if metrics.RunsExplored != 4 {
		t.Errorf("runsExplored = %d, want 4", metrics.RunsExplored)
	}
	if metrics.Explore.Ticks == 0 {
		t.Error("merged explore snapshot has zero ticks; per-run metrics are not aggregating")
	}
}

// TestStreamFollowsLive: a subscriber attached mid-job receives lines
// as they are produced, not only at the end.
func TestStreamFollowsLive(t *testing.T) {
	leakCheck(t)
	block := make(chan struct{})
	release := sync.OnceFunc(func() { close(block) })
	defer release()
	// A target whose second run blocks until released, so the stream
	// provably has a "mid-job" window.
	lookup := func(string) (explore.Target, error) {
		tg, err := explore.TargetByName("case:SO-17894000")
		if err != nil {
			return tg, err
		}
		inner := tg.Run
		n := 0
		var mu sync.Mutex
		tg.Run = func(extra ...asyncg.Option) (*asyncg.Report, error) {
			mu.Lock()
			n++
			wait := n > 1
			mu.Unlock()
			if wait {
				<-block
			}
			return inner(extra...)
		}
		return tg, nil
	}
	s := New(Config{QueueSize: 2, Workers: 1, LookupTarget: lookup})
	defer s.Shutdown(context.Background())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	_, v := postJob(t, ts, `{"target":"x","runs":3,"workers":1}`)
	resp, err := http.Get(ts.URL + "/v1/jobs/" + v.ID + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	if !sc.Scan() {
		t.Fatalf("no first line while the job is still running: %v", sc.Err())
	}
	var first struct {
		Kind  string `json:"kind"`
		Index int    `json:"index"`
	}
	if err := json.Unmarshal(sc.Bytes(), &first); err != nil {
		t.Fatal(err)
	}
	if first.Kind != explore.KindRun || first.Index != 0 {
		t.Errorf("first live line = %+v", first)
	}
	release()
	for sc.Scan() {
	}
	waitStatus(t, ts, v.ID, statusDone)
}

// TestUnknownFieldRejected: jobSpec decoding refuses unknown fields and
// names the offender in a structured body, so a version-skewed fleet
// coordinator fails fast instead of silently running a default job.
func TestUnknownFieldRejected(t *testing.T) {
	s := New(Config{QueueSize: 2, Workers: 1})
	defer s.Shutdown(context.Background())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json",
		strings.NewReader(`{"target":"case:SO-17894000","shardSeed":9}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("POST with unknown field: status %d, want 400", resp.StatusCode)
	}
	var body struct {
		Error string `json:"error"`
		Field string `json:"field"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if body.Field != "shardSeed" || !strings.Contains(body.Error, `"shardSeed"`) {
		t.Errorf("error body = %+v, want the bad field named", body)
	}
}

// TestShardJob: a shard-scoped job executes exactly its window of the
// global exploration — the runs match the full walk at the shifted
// indices — and conflicting outer strategy fields are refused.
func TestShardJob(t *testing.T) {
	leakCheck(t)
	s := New(Config{QueueSize: 4, Workers: 1})
	defer s.Shutdown(context.Background())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	tg, err := explore.TargetByName("case:SO-17894000")
	if err != nil {
		t.Fatal(err)
	}
	full, err := explore.Run(context.Background(), tg, explore.WithRuns(8), explore.WithSeed(3))
	if err != nil {
		t.Fatal(err)
	}

	code, v := postJob(t, ts,
		`{"target":"case:SO-17894000","feedback":true,"shard":{"strategy":"random","seed":3,"start":4,"runs":4}}`)
	if code != http.StatusAccepted {
		t.Fatalf("POST shard job: status %d", code)
	}
	waitStatus(t, ts, v.ID, statusDone)
	var res explore.Result
	if code := getJSON(t, ts.URL+"/v1/jobs/"+v.ID+"/result", &res); code != http.StatusOK {
		t.Fatalf("GET shard result: %d", code)
	}
	if len(res.Runs) != 4 {
		t.Fatalf("shard result has %d runs, want 4", len(res.Runs))
	}
	for j, got := range res.Runs {
		want := full.Runs[4+j]
		if got.Token != want.Token || got.Fingerprint != want.Fingerprint {
			t.Errorf("shard run %d: token/fp = %q/%q, want global run %d's %q/%q",
				j, got.Token, got.Fingerprint, 4+j, want.Token, want.Fingerprint)
		}
		if len(got.Domains) == 0 || len(got.Domains) != len(got.Independent) {
			t.Errorf("shard run %d: feedback=true but domains/independent = %d/%d",
				j, len(got.Domains), len(got.Independent))
		}
	}

	for _, body := range []string{
		`{"target":"case:SO-17894000","strategy":"random","shard":{"strategy":"random","start":0,"runs":2}}`,
		`{"target":"case:SO-17894000","seed":7,"shard":{"strategy":"random","start":0,"runs":2}}`,
		`{"target":"case:SO-17894000","runs":5,"shard":{"strategy":"random","start":0,"runs":2}}`,
		`{"target":"case:SO-17894000","shard":{"strategy":"coverage","start":6,"runs":4}}`,
	} {
		if code, _ := postJob(t, ts, body); code != http.StatusBadRequest {
			t.Errorf("POST %s: status %d, want 400", body, code)
		}
	}
}

// TestHealthzJobCounts: /healthz exposes queued/running/finished job
// counts — the fleet coordinator's liveness and capacity probe.
func TestHealthzJobCounts(t *testing.T) {
	leakCheck(t)
	s := New(Config{QueueSize: 4, Workers: 1})
	defer s.Shutdown(context.Background())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	_, v := postJob(t, ts, `{"target":"case:SO-17894000","runs":2}`)
	waitStatus(t, ts, v.ID, statusDone)

	var health struct {
		Status   string           `json:"status"`
		Queued   int              `json:"queued"`
		Running  int              `json:"running"`
		Finished int64            `json:"finished"`
		Jobs     map[string]int64 `json:"jobs"`
		Workers  int              `json:"workers"`
	}
	if code := getJSON(t, ts.URL+"/healthz", &health); code != http.StatusOK {
		t.Fatalf("GET /healthz: %d", code)
	}
	if health.Finished != 1 || health.Jobs["done"] != 1 {
		t.Errorf("healthz finished counts: %+v", health)
	}
	if health.Workers != 1 || health.Queued != 0 || health.Running != 0 {
		t.Errorf("healthz pool counts: %+v", health)
	}
}
